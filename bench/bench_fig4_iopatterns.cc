// Figure 4: throughput on five IO patterns — sequential read, random read,
// sequential (over)write, random write, append — 4 KB ops over a 128 MB file
// (the whole file read/written once, as in §5.6; no periodic fsync), grouped by
// guarantee level and normalized to each group's baseline:
//   POSIX:  SplitFS-POSIX  vs ext4-DAX
//   sync:   SplitFS-sync   vs PMFS
//   strict: SplitFS-strict vs NOVA-strict and Strata
//
// Paper shape: SplitFS >= baseline everywhere; appends gain the most (up to 7.85x
// vs ext4), reads the least (~27%); strict-mode random writes up to 5.8x vs NOVA.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/workloads/microbench.h"

namespace {

constexpr uint64_t kFileBytes = 128 * common::kMiB;
constexpr uint64_t kOp = common::kBlockSize;
constexpr uint64_t kOps = kFileBytes / kOp;

struct Row {
  const char* pattern;
  double mops[8];  // Indexed by FsKind order below.
};

const std::vector<bench::FsKind> kKinds = {
    bench::FsKind::kExt4Dax,     bench::FsKind::kSplitPosix,
    bench::FsKind::kPmfs,        bench::FsKind::kSplitSync,
    bench::FsKind::kNovaStrict,  bench::FsKind::kStrata,
    bench::FsKind::kSplitStrict,
};

}  // namespace

int main() {
  bench::PrintHeader("Figure 4: throughput by IO pattern (Mops/s, 4 KB ops, 128 MB)",
                     "SplitFS (SOSP'19) Figure 4");
  // pattern -> fs -> Mops.
  std::vector<std::vector<double>> table(5, std::vector<double>(kKinds.size(), 0));
  const char* patterns[5] = {"seq-read", "rand-read", "seq-write", "rand-write",
                             "append"};
  for (size_t k = 0; k < kKinds.size(); ++k) {
    bench::Testbed bed(kKinds[k]);
    vfs::FileSystem* fs = bed.fs();
    sim::Clock* clock = &bed.ctx()->clock;
    wl::PrepareFile(fs, "/f4", kFileBytes);
    table[0][k] = wl::RunSeqRead(fs, clock, "/f4", kFileBytes, kOp).MopsPerSec();
    table[1][k] = wl::RunRandRead(fs, clock, "/f4", kFileBytes, kOp, kOps, 13).MopsPerSec();
    table[2][k] = wl::RunSeqOverwrite(fs, clock, "/f4", kFileBytes, kOp, 0).MopsPerSec();
    table[3][k] =
        wl::RunRandOverwrite(fs, clock, "/f4", kFileBytes, kOp, kOps, 0, 17).MopsPerSec();
    table[4][k] = wl::RunAppend(fs, clock, "/f4-append", kFileBytes, kOp, 0).MopsPerSec();
  }

  std::printf("%-11s", "pattern");
  for (auto kind : kKinds) {
    std::printf(" %13s", bench::FsKindName(kind));
  }
  std::printf("\n");
  for (int p = 0; p < 5; ++p) {
    std::printf("%-11s", patterns[p]);
    for (size_t k = 0; k < kKinds.size(); ++k) {
      std::printf(" %13.3f", table[p][k]);
    }
    std::printf("\n");
  }

  std::printf("\nNormalized within guarantee groups (paper Figure 4 layout):\n");
  std::printf("%-11s | POSIX: SplitFS/ext4 | sync: SplitFS/PMFS | strict: SplitFS/NOVA  SplitFS/Strata\n",
              "pattern");
  for (int p = 0; p < 5; ++p) {
    double vs_ext4 = table[p][1] / table[p][0];
    double vs_pmfs = table[p][3] / table[p][2];
    double vs_nova = table[p][6] / table[p][4];
    double vs_strata = table[p][6] / table[p][5];
    std::printf("%-11s | %18.2fx | %17.2fx | %16.2fx %15.2fx\n", patterns[p], vs_ext4,
                vs_pmfs, vs_nova, vs_strata);
  }
  return 0;
}
