// Multi-tenant QoS bench: N namespace-rooted tenants behind one TenantRouter, a
// strict-mode tenant running an fsync storm against POSIX-mode neighbors, with the
// per-tenant journal-credit throttle on vs off.
//
// Time model: every worker binds a sim::Clock::Lane and runs a CLOSED LOOP against
// a fixed virtual-time window — it issues operations until its own lane passes the
// deadline. That is what makes the QoS comparison meaningful: the shared journal
// renders one second of commit service per second (ResourceStamp busy-time), so
// within a fixed window an unthrottled storm can fill the entire window with commit
// service — every neighbor's fsync fast-forwards past it (starvation bounded only
// by the storm's real-time rate). With credits on, the storm's own lane is paced to
// its refill horizon, capping the commit service it can inject per virtual second;
// the neighbor's p99 degrades by a bounded factor instead.
//
//   bench_multitenant [--json] [--schema-check]
//     --json          additionally writes BENCH_multitenant.json (schema_version 2:
//                     per-tenant latency percentiles + contention ledger +
//                     p99 degradation factors vs the storm-free baseline)
//     --schema-check  validates the committed BENCH_multitenant.json against the
//                     schema_version 2 key set; nonzero exit on a regression
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/threading.h"
#include "src/obs/histogram.h"
#include "src/tenant/tenant_router.h"

namespace {

constexpr uint64_t kWindowNs = 10'000'000;  // 10 ms of virtual time per run.
constexpr uint64_t kAppOpBytes = 4096;
constexpr uint64_t kAppFsyncEvery = 32;
// The storm tenant always runs 4 threads — a misbehaving multi-threaded tenant —
// regardless of how many threads the well-behaved app tenants run.
constexpr int kStormThreads = 4;
// QoS-on pacing for the storm tenant: 5000 forced commits per virtual second
// (50 per window), burst 4.
constexpr double kStormCreditsPerSec = 5000.0;
constexpr double kStormCreditBurst = 4.0;

enum class Variant { kSolo, kQosOff, kQosOn };

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kSolo:
      return "solo";
    case Variant::kQosOff:
      return "qos_off";
    case Variant::kQosOn:
      return "qos_on";
  }
  return "?";
}

struct WorkerResult {
  uint64_t ops = 0;
  uint64_t errors = 0;
  uint64_t elapsed_ns = 0;  // Lane delta: deadline loops end just past the window.
  obs::LatencyHistogram latency;
  // App workers only: latency of the write+fsync ops. The fsync is the operation
  // that commits through the SHARED journal, so its tail — not the all-ops tail,
  // which the 31 staging-only appends between fsyncs dilute — is where cross-tenant
  // interference lands.
  obs::LatencyHistogram fsync_latency;
};

struct TenantResult {
  std::string id;
  std::string mode;
  uint64_t ops = 0;
  uint64_t errors = 0;
  uint64_t elapsed_ns = 0;  // max over the tenant's workers
  obs::LatencyHistogram latency;
  obs::LatencyHistogram fsync_latency;
  double OpsPerSec() const {
    return elapsed_ns == 0
               ? 0
               : static_cast<double>(ops) * 1e9 / static_cast<double>(elapsed_ns);
  }
};

struct RunResult {
  std::vector<TenantResult> tenants;
  std::vector<std::pair<std::string, obs::ContentionLedger::Entry>> contention;
  // Aggregate across the POSIX app tenants (the neighbors the storm degrades).
  obs::LatencyHistogram app_latency;
  obs::LatencyHistogram app_fsync_latency;
  uint64_t app_ops = 0;
  uint64_t errors = 0;
};

// Closed-loop app worker: append kAppOpBytes, fsync every kAppFsyncEvery ops,
// until the worker's own lane passes the virtual deadline. The periodic fsync
// relinks through the SHARED journal (relink ends in a running-transaction
// commit), which is the surface the storm contends on.
void RunAppWorker(tenant::TenantRouter* router, sim::Clock* clock,
                  const std::string& path, size_t lane_index, WorkerResult* out) {
  common::ScopedThreadLane pin(lane_index);
  sim::Clock::Lane lane(clock);
  const uint64_t t0 = lane.Now();
  const uint64_t deadline = t0 + kWindowNs;
  int fd = router->Open(path, vfs::kCreate | vfs::kRdWr | vfs::kAppend);
  if (fd < 0) {
    out->errors += 1;
    return;
  }
  std::string buf(kAppOpBytes, 'm');
  while (lane.Now() < deadline) {
    uint64_t s = lane.Now();
    if (router->Write(fd, buf.data(), buf.size()) !=
        static_cast<ssize_t>(buf.size())) {
      out->errors += 1;
    }
    out->ops += 1;
    bool synced = out->ops % kAppFsyncEvery == 0;
    if (synced && router->Fsync(fd) != 0) {
      out->errors += 1;
    }
    uint64_t d = lane.Now() - s;
    out->latency.Record(d);
    if (synced) {
      out->fsync_latency.Record(d);
    }
  }
  router->Close(fd);
  out->elapsed_ns = lane.Now() - t0;
}

// Closed-loop storm worker: strict-mode fsync storm — 4 KiB append + fsync every
// op with synchronous publication, so every single op relinks and commits through
// the SHARED journal. Unthrottled, the storm streams commit service into the
// shared commit stamp for its whole window; every neighbor fsync that lands
// behind it fast-forwards past that service. The relink commit is the path the
// per-tenant journal credit throttles.
void RunStormWorker(tenant::TenantRouter* router, sim::Clock* clock,
                    const std::string& tenant, size_t lane_index,
                    WorkerResult* out) {
  common::ScopedThreadLane pin(lane_index);
  sim::Clock::Lane lane(clock);
  const uint64_t t0 = lane.Now();
  const uint64_t deadline = t0 + kWindowNs;
  std::string path = "/" + tenant + "/storm-" + std::to_string(lane_index);
  int fd = router->Open(path, vfs::kCreate | vfs::kRdWr | vfs::kAppend);
  if (fd < 0) {
    out->errors += 1;
    return;
  }
  std::string buf(kAppOpBytes, 's');
  while (lane.Now() < deadline) {
    uint64_t s = lane.Now();
    if (router->Write(fd, buf.data(), buf.size()) !=
        static_cast<ssize_t>(buf.size())) {
      out->errors += 1;
    }
    if (router->Fsync(fd) != 0) {
      out->errors += 1;
    }
    out->ops += 1;
    out->latency.Record(lane.Now() - s);
  }
  router->Close(fd);
  out->elapsed_ns = lane.Now() - t0;
}

tenant::TenantOptions AppTenant() {
  tenant::TenantOptions t;
  t.fs.mode = splitfs::Mode::kPosix;
  t.fs.num_staging_files = 3;
  t.fs.staging_file_bytes = 8 * common::kMiB;
  t.fs.oplog_bytes = 4 * common::kMiB;
  t.fs.replenish_thread = true;  // Shared replenisher pool.
  // Synchronous publication: the neighbor's periodic fsync relinks and commits
  // through the SHARED journal, which is exactly the surface the storm contends
  // on. (async_relink would ack at the intent fence and hide the interference.)
  t.fs.async_relink = false;
  return t;
}

tenant::TenantOptions StormTenant(bool qos) {
  tenant::TenantOptions t;
  t.fs.mode = splitfs::Mode::kStrict;
  t.fs.num_staging_files = 3;
  t.fs.staging_file_bytes = 8 * common::kMiB;
  t.fs.oplog_bytes = 4 * common::kMiB;
  t.fs.replenish_thread = true;
  // Synchronous publication: every fsync forces its commit through the shared
  // journal on the worker's own timeline — the §5 storm shape.
  t.fs.async_relink = false;
  if (qos) {
    t.journal_credits_per_sec = kStormCreditsPerSec;
    t.journal_credit_burst = kStormCreditBurst;
  }
  return t;
}

// One scenario cell: `app_tenants` POSIX tenants (plus one strict storm tenant in
// the storm variants), `threads` workers per tenant, all through one router.
RunResult RunScenario(int app_tenants, int threads, Variant variant) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 2 * common::kGiB);
  ext4sim::Ext4Dax kfs(&dev);
  // Caller-side journal commits: each committer renders its commit's service time
  // on its own lane, into the shared commit stamp. That is the sharpest honest
  // model of the contended journal — the storm's threads stream service into the
  // stamp in parallel, and every neighbor commit fast-forwards past it. (The
  // shared commit service thread is exercised by tenant_test; routing the bench
  // through it would bottleneck the *storm* on cross-thread handshakes and
  // understate the interference being measured.)
  tenant::RouterOptions ropts;
  ropts.journal_service = false;
  tenant::TenantRouter router(&kfs, ropts);

  const bool storm = variant != Variant::kSolo;
  if (storm) {
    router.Mount("noisy", StormTenant(variant == Variant::kQosOn));
  }
  for (int t = 0; t < app_tenants; ++t) {
    router.Mount("app" + std::to_string(t), AppTenant());
  }
  ctx.Reset();  // Setup (mounts, staging pre-creation) is not part of the window.

  struct Job {
    std::string tenant;
    bool is_storm;
    std::vector<WorkerResult> results;
  };
  std::vector<Job> jobs;
  if (storm) {
    jobs.push_back({"noisy", /*is_storm=*/true, {}});
  }
  for (int t = 0; t < app_tenants; ++t) {
    jobs.push_back({"app" + std::to_string(t), /*is_storm=*/false, {}});
  }
  for (Job& job : jobs) {
    job.results.resize(job.is_storm ? kStormThreads : threads);
  }

  std::vector<std::thread> workers;
  size_t lane_index = 0;
  for (Job& job : jobs) {
    for (size_t w = 0; w < job.results.size(); ++w) {
      if (job.is_storm) {
        workers.emplace_back(RunStormWorker, &router, &ctx.clock, job.tenant,
                             lane_index++, &job.results[w]);
      } else {
        std::string path = "/" + job.tenant + "/bench-w" + std::to_string(w);
        workers.emplace_back(RunAppWorker, &router, &ctx.clock, path,
                             lane_index++, &job.results[w]);
      }
    }
  }
  for (std::thread& w : workers) {
    w.join();
  }
  router.DrainAllPublishes();

  RunResult run;
  for (Job& job : jobs) {
    TenantResult tr;
    tr.id = job.tenant;
    tr.mode = job.tenant == "noisy" ? "strict" : "posix";
    for (const WorkerResult& w : job.results) {
      tr.ops += w.ops;
      tr.errors += w.errors;
      tr.elapsed_ns = std::max(tr.elapsed_ns, w.elapsed_ns);
      tr.latency.MergeFrom(w.latency);
      tr.fsync_latency.MergeFrom(w.fsync_latency);
    }
    run.errors += tr.errors;
    if (job.tenant != "noisy") {
      run.app_ops += tr.ops;
      run.app_latency.MergeFrom(tr.latency);
      run.app_fsync_latency.MergeFrom(tr.fsync_latency);
    }
    run.tenants.push_back(std::move(tr));
  }
  run.contention = ctx.obs.ledger.Snapshot();
  return run;
}

struct Cell {
  int app_tenants = 0;
  int threads = 0;
  Variant variant = Variant::kSolo;
  RunResult run;
};

// Real-thread interleaving makes a single closed-loop run's tail noisy; each cell
// reports the run with the median app-fsync p99 out of three.
RunResult RunScenarioMedian(int app_tenants, int threads, Variant variant) {
  std::vector<RunResult> runs;
  for (int i = 0; i < 3; ++i) {
    runs.push_back(RunScenario(app_tenants, threads, variant));
  }
  std::sort(runs.begin(), runs.end(), [](const RunResult& a, const RunResult& b) {
    return a.app_fsync_latency.Percentile(0.99) <
           b.app_fsync_latency.Percentile(0.99);
  });
  return std::move(runs[1]);
}

int SchemaCheck() {
  FILE* f = std::fopen("BENCH_multitenant.json", "r");
  if (f == nullptr) {
    std::fprintf(stderr, "FAIL schema-check: BENCH_multitenant.json not found\n");
    return 1;
  }
  std::string blob;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    blob.append(buf, n);
  }
  std::fclose(f);
  int rc = 0;
  for (const char* key :
       {"\"schema_version\": 2", "\"bench\": \"multitenant\"", "\"window_ns\"",
        "\"app_tenants\"", "\"threads_per_tenant\"", "\"variant\"", "\"per_tenant\"",
        "\"latency_ns\"", "\"p99\"", "\"fsync_p99_ns\"", "\"contention\"",
        "\"degradation_p99\"", "\"errors\"", "qos_off", "qos_on"}) {
    if (blob.find(key) == std::string::npos) {
      std::fprintf(stderr, "FAIL schema-check: missing %s\n", key);
      rc = 1;
    }
  }
  if (rc == 0) {
    std::printf("schema-check: PASS\n");
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool schema_check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--schema-check") == 0) {
      schema_check = true;
    }
  }
  if (schema_check && !json) {
    return SchemaCheck();
  }

  bench::PrintHeader(
      "Multi-tenant QoS: strict fsync storm vs POSIX neighbors (TenantRouter)",
      "tenants x threads x mode mix; closed loops over a fixed virtual window");

  const int kAppTenantCounts[] = {1, 3, 7};  // +1 storm tenant in storm variants
  const int kThreadCounts[] = {1, 2};
  const Variant kVariants[] = {Variant::kSolo, Variant::kQosOff, Variant::kQosOn};

  std::vector<Cell> cells;
  std::printf("%-8s %8s %9s %12s %12s %14s %14s %10s\n", "variant", "tenants",
              "threads", "app ops", "app p99", "app fsync p99", "fsync degrade",
              "errors");
  for (int app_tenants : kAppTenantCounts) {
    uint64_t solo_fp99 = 0;
    for (int threads : kThreadCounts) {
      for (Variant variant : kVariants) {
        Cell cell;
        cell.app_tenants = app_tenants;
        cell.threads = threads;
        cell.variant = variant;
        cell.run = RunScenarioMedian(app_tenants, threads, variant);
        uint64_t fp99 = cell.run.app_fsync_latency.Percentile(0.99);
        if (variant == Variant::kSolo) {
          solo_fp99 = fp99;
        }
        double degrade = solo_fp99 > 0 ? static_cast<double>(fp99) /
                                             static_cast<double>(solo_fp99)
                                       : 0.0;
        std::printf("%-8s %8d %9d %12llu %12llu %14llu %13.1fx %10llu\n",
                    VariantName(variant), app_tenants + (variant == Variant::kSolo ? 0 : 1),
                    threads, static_cast<unsigned long long>(cell.run.app_ops),
                    static_cast<unsigned long long>(cell.run.app_latency.Percentile(0.99)),
                    static_cast<unsigned long long>(fp99), degrade,
                    static_cast<unsigned long long>(cell.run.errors));
        std::fflush(stdout);
        cells.push_back(std::move(cell));
      }
    }
  }

  // The acceptance claim, printed where it can be eyeballed: the app fsync is the
  // op that commits through the shared journal. With credits on, its p99
  // degradation stays a bounded factor; with them off, the storm's commit service
  // lands in the neighbors' fsync tail.
  std::printf("\n--- app fsync p99 degradation (vs storm-free baseline, same cell) ---\n");
  for (size_t i = 0; i < cells.size(); i += 3) {
    uint64_t solo = cells[i].run.app_fsync_latency.Percentile(0.99);
    uint64_t off = cells[i + 1].run.app_fsync_latency.Percentile(0.99);
    uint64_t on = cells[i + 2].run.app_fsync_latency.Percentile(0.99);
    std::printf("apps=%d threads=%d: qos_off %.1fx, qos_on %.1fx\n",
                cells[i].app_tenants, cells[i].threads,
                solo > 0 ? static_cast<double>(off) / solo : 0.0,
                solo > 0 ? static_cast<double>(on) / solo : 0.0);
  }

  if (json) {
    FILE* f = std::fopen("BENCH_multitenant.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_multitenant.json\n");
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"multitenant\",\n  \"schema_version\": 2,\n");
    std::fprintf(f, "  \"window_ns\": %llu,\n",
                 static_cast<unsigned long long>(kWindowNs));
    std::fprintf(f, "  \"time_model\": \"simulated per-thread lanes; closed loops "
                    "against a fixed virtual deadline\",\n");
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      // Baseline cell of this (app_tenants, threads) group: variant order is
      // solo, qos_off, qos_on.
      uint64_t solo_p99 = cells[i - (i % 3)].run.app_fsync_latency.Percentile(0.99);
      uint64_t p99 = c.run.app_fsync_latency.Percentile(0.99);
      std::fprintf(f,
                   "    {\"app_tenants\": %d, \"threads_per_tenant\": %d, "
                   "\"variant\": \"%s\",\n",
                   c.app_tenants, c.threads, VariantName(c.variant));
      std::fprintf(f, "     \"degradation_p99\": %.2f, \"errors\": %llu,\n",
                   solo_p99 > 0 ? static_cast<double>(p99) / solo_p99 : 0.0,
                   static_cast<unsigned long long>(c.run.errors));
      std::fprintf(f, "     \"per_tenant\": [\n");
      for (size_t t = 0; t < c.run.tenants.size(); ++t) {
        const TenantResult& tr = c.run.tenants[t];
        std::fprintf(f,
                     "      {\"id\": \"%s\", \"mode\": \"%s\", \"ops\": %llu, "
                     "\"ops_per_sec\": %.0f, \"latency_ns\": {\"p50\": %llu, "
                     "\"p95\": %llu, \"p99\": %llu, \"max\": %llu}, "
                     "\"fsync_p99_ns\": %llu}%s\n",
                     tr.id.c_str(), tr.mode.c_str(),
                     static_cast<unsigned long long>(tr.ops), tr.OpsPerSec(),
                     static_cast<unsigned long long>(tr.latency.Percentile(0.50)),
                     static_cast<unsigned long long>(tr.latency.Percentile(0.95)),
                     static_cast<unsigned long long>(tr.latency.Percentile(0.99)),
                     static_cast<unsigned long long>(tr.latency.Max()),
                     static_cast<unsigned long long>(
                         tr.fsync_latency.Percentile(0.99)),
                     t + 1 == c.run.tenants.size() ? "" : ",");
      }
      std::fprintf(f, "     ],\n     \"contention\": [");
      for (size_t k = 0; k < c.run.contention.size(); ++k) {
        const auto& [resource, e] = c.run.contention[k];
        std::fprintf(f,
                     "%s{\"resource\": \"%s\", \"waits\": %llu, "
                     "\"waited_ns\": %llu}",
                     k == 0 ? "" : ", ", resource.c_str(),
                     static_cast<unsigned long long>(e.waits),
                     static_cast<unsigned long long>(e.waited_ns));
      }
      std::fprintf(f, "]}%s\n", i + 1 == cells.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_multitenant.json\n");
  }
  if (schema_check) {
    return SchemaCheck();
  }
  return 0;
}
