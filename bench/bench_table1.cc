// Table 1: software overhead of appending one 4 KB block, per file system.
//
// Paper numbers (ns): raw PM write 671; ext4 DAX 9002 (overhead 8331, 1241%),
// PMFS 4150 (3479, 518%), NOVA-strict 3021 (2350, 350%), SplitFS-strict 1251 (580,
// 86%), SplitFS-POSIX 1160 (488, 73%).
//
// Method (§1): append 4 KB blocks to a file, 128 MB total, measure mean time per
// append and subtract the PM media time for the payload.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/workloads/microbench.h"

namespace {

struct PaperRow {
  bench::FsKind kind;
  double paper_total_ns;
  double paper_overhead_ns;
};

constexpr double kPmWrite4kNs = 671.0;

void RunOne(const PaperRow& row) {
  bench::Testbed bed(row.kind);
  const uint64_t kTotal = 128 * common::kMiB;
  wl::IoResult r = wl::RunAppend(bed.fs(), &bed.ctx()->clock, "/t1-append", kTotal,
                                 common::kBlockSize, /*fsync_every=*/0);
  double per_op = r.NsPerOp();
  double overhead = per_op - kPmWrite4kNs;
  std::printf("%-15s %10.0f %12.0f %10.0f%% | paper: %6.0f %9.0f %8.0f%%\n",
              bench::FsKindName(row.kind), per_op, overhead,
              100.0 * overhead / kPmWrite4kNs, row.paper_total_ns,
              row.paper_overhead_ns, 100.0 * row.paper_overhead_ns / kPmWrite4kNs);
  // The append path should read almost nothing from PM; nonzero metadata/journal
  // read bytes here are the block-allocation and journaling machinery at work.
  bench::PrintPmReadSplit(bench::FsKindName(row.kind), bed.ctx()->stats);
}

}  // namespace

int main() {
  bench::PrintHeader("Table 1: Software overhead of a 4 KB append",
                     "SplitFS (SOSP'19) Table 1");
  std::printf("%-15s %10s %12s %11s | %s\n", "File system", "append/ns", "overhead/ns",
              "overhead/%", "paper (total, overhead, %)");
  std::printf("raw 4 KB PM write (calibration anchor): %.0f ns\n", kPmWrite4kNs);
  const std::vector<PaperRow> rows = {
      {bench::FsKind::kExt4Dax, 9002, 8331},
      {bench::FsKind::kPmfs, 4150, 3479},
      {bench::FsKind::kNovaStrict, 3021, 2350},
      {bench::FsKind::kSplitStrict, 1251, 580},
      {bench::FsKind::kSplitPosix, 1160, 488},
  };
  for (const auto& row : rows) {
    RunOne(row);
  }
  return 0;
}
