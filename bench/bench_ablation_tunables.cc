// §3.6 tunables ablation: how SplitFS's configuration knobs move performance.
// Sweeps the three documented tunables on write-heavy microworkloads:
//   * mmap region size (2 MB default .. 512 MB)   — overwrite-heavy workload;
//   * staging files at startup (default 10)       — append burst absorbs pre-allocation;
//   * op-log size (default 128 MB)                — checkpoint frequency in strict mode.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/workloads/microbench.h"

namespace {

using common::kMiB;

double OverwriteMops(uint64_t mmap_size) {
  // Few ops spread over a large cold file: region-creation cost (mmap + pre-fault)
  // is on the measured path, so the mmap-size tradeoff is visible — small regions
  // pay one mmap per touched 2 MB, large regions pre-fault more than they use.
  splitfs::Options o;
  o.mmap_size = mmap_size;
  bench::Testbed bed(bench::FsKind::kSplitPosix, 4 * common::kGiB, o);
  // Prepare the file through K-Split directly so U-Split sees it cold (a file
  // written through U-Split would already be fully mapped via relink retention).
  wl::PrepareFile(bed.ext4(), "/f", 512 * kMiB);
  return wl::RunRandOverwrite(bed.fs(), &bed.ctx()->clock, "/f", 512 * kMiB,
                              common::kBlockSize, 8192, 0, 21)
      .MopsPerSec();
}

struct StagingPoint {
  double startup_ms = 0;   // Pre-allocation cost paid at instance start.
  double burst_mops = 0;   // Steady-state append throughput.
};

StagingPoint AppendBurst(uint32_t staging_files, uint64_t staging_bytes) {
  // The §3.6 tradeoff: more/larger staging files cost startup time and space but
  // keep replenishment off the critical path during bursts.
  StagingPoint out;
  splitfs::Options o;
  o.num_staging_files = staging_files;
  o.staging_file_bytes = staging_bytes;
  sim::Context ctx;
  pmem::Device dev(&ctx, 4 * common::kGiB);
  ext4sim::Ext4Dax kfs(&dev);
  uint64_t t0 = ctx.clock.Now();
  splitfs::SplitFs fs(&kfs, o);
  out.startup_ms = static_cast<double>(ctx.clock.Now() - t0) * 1e-6;
  out.burst_mops = wl::RunAppend(&fs, &ctx.clock, "/f", 256 * kMiB,
                                 common::kBlockSize, 10)
                       .MopsPerSec();
  return out;
}

double StrictSmallWriteMops(uint64_t oplog_bytes) {
  splitfs::Options o;
  o.mode = splitfs::Mode::kStrict;
  o.oplog_bytes = oplog_bytes;
  bench::Testbed bed(bench::FsKind::kSplitStrict, 4 * common::kGiB, o);
  wl::IoResult r = wl::RunAppend(bed.fs(), &bed.ctx()->clock, "/f", 32 * kMiB,
                                 /*op_bytes=*/256, /*fsync_every=*/0);
  std::printf("    (checkpoints: %llu)\n",
              static_cast<unsigned long long>(bed.split()->Checkpoints()));
  return r.MopsPerSec();
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: SplitFS tunable parameters (§3.6)",
                     "SplitFS (SOSP'19) §3.6 design-choice knobs");

  std::printf("\n[1] mmap() region size — 64K random 4K overwrites over 512 MB:\n");
  std::printf("%12s %14s\n", "mmap size", "Mops/s");
  for (uint64_t sz : {2 * kMiB, 8 * kMiB, 32 * kMiB, 128 * kMiB, 512 * kMiB}) {
    std::printf("%9lluMB %14.3f\n", static_cast<unsigned long long>(sz / kMiB),
                OverwriteMops(sz));
  }
  std::printf("(larger regions amortize mmap setup over more data; 2 MB is the paper's\n"
              " default because it maps to one huge page.)\n");

  std::printf("\n[2] staging files at startup — 256 MB append burst (fsync/10):\n");
  std::printf("%8s x %6s %14s %14s\n", "files", "size", "startup ms", "burst Mops/s");
  struct P {
    uint32_t n;
    uint64_t bytes;
  };
  for (P p : std::vector<P>{{2, 16 * kMiB}, {4, 64 * kMiB}, {10, 160 * kMiB},
                            {20, 160 * kMiB}}) {
    StagingPoint sp = AppendBurst(p.n, p.bytes);
    std::printf("%8u x %4lluMB %14.2f %14.3f\n", p.n,
                static_cast<unsigned long long>(p.bytes / kMiB), sp.startup_ms,
                sp.burst_mops);
  }
  std::printf("(throughput is flat because replenishment runs on the background thread;\n"
              " the cost of more pre-allocation shows up as startup time and space —\n"
              " the paper found 10 files the right balance, §3.6.)\n");

  std::printf("\n[3] op-log size (strict mode) — 128K cache-line appends, no fsync:\n");
  std::printf("%12s %14s\n", "log size", "Mops/s");
  for (uint64_t sz : {8 * kMiB, 32 * kMiB, 128 * kMiB}) {
    std::printf("%9lluMB %14.3f\n", static_cast<unsigned long long>(sz / kMiB),
                StrictSmallWriteMops(sz));
  }
  std::printf("(small logs checkpoint mid-burst; 128 MB holds 2M ops, §3.6.)\n");
  return 0;
}
