// Figure 5: relative file-system software overhead in applications, per guarantee
// level, on write-heavy workloads: YCSB Load A and Run A (LevelDB-like store) and
// TPC-C (SQLite-like WAL store).
//
// Software overhead = total simulated time - time spent moving user payload on PM
// media (§5.7). The paper reports each baseline's overhead relative to the SplitFS
// mode with the same guarantees (lower is better; SplitFS == 1.0):
// ext4 DAX up to 3.6x, NOVA-relaxed up to 7.4x (TPCC), PMFS lowest at ~1.9x.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/workloads/tpcc_lite.h"
#include "src/workloads/ycsb.h"

namespace {

struct Overheads {
  double load_a = 0;
  double run_a = 0;
  double tpcc = 0;
};

Overheads Measure(bench::FsKind kind) {
  Overheads out;
  {
    bench::Testbed bed(kind);
    apps::KvLsmOptions kopts;
    kopts.clock = &bed.ctx()->clock;
    apps::KvLsm store(bed.fs(), "/ycsb", kopts);
    wl::YcsbConfig cfg;
    cfg.record_count = 20000;
    cfg.op_count = 20000;
    wl::Ycsb ycsb(&store, cfg);
    uint64_t t0 = bed.ctx()->clock.Now();
    uint64_t m0 = bed.ctx()->stats.data_media_ns();
    ycsb.Load(&bed.ctx()->clock);
    out.load_a = static_cast<double>((bed.ctx()->clock.Now() - t0) -
                                     (bed.ctx()->stats.data_media_ns() - m0));
    t0 = bed.ctx()->clock.Now();
    m0 = bed.ctx()->stats.data_media_ns();
    ycsb.Run(wl::YcsbWorkload::kA, &bed.ctx()->clock);
    out.run_a = static_cast<double>((bed.ctx()->clock.Now() - t0) -
                                    (bed.ctx()->stats.data_media_ns() - m0));
    std::string label = std::string(bench::FsKindName(kind)) + " (YCSB)";
    bench::PrintPmReadSplit(label.c_str(), bed.ctx()->stats);
  }
  {
    bench::Testbed bed(kind);
    apps::WalDb db(bed.fs(), "/tpcc.db");
    wl::TpccLite tpcc(&db, {});
    tpcc.Load(&bed.ctx()->clock);
    uint64_t t0 = bed.ctx()->clock.Now();
    uint64_t m0 = bed.ctx()->stats.data_media_ns();
    tpcc.Run(4000, &bed.ctx()->clock);
    out.tpcc = static_cast<double>((bed.ctx()->clock.Now() - t0) -
                                   (bed.ctx()->stats.data_media_ns() - m0));
    std::string label = std::string(bench::FsKindName(kind)) + " (TPCC)";
    bench::PrintPmReadSplit(label.c_str(), bed.ctx()->stats);
  }
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 5: relative FS software overhead in applications (SplitFS = 1.0)",
      "SplitFS (SOSP'19) Figure 5");
  Overheads sp = Measure(bench::FsKind::kSplitPosix);
  Overheads ss = Measure(bench::FsKind::kSplitSync);
  Overheads st = Measure(bench::FsKind::kSplitStrict);
  Overheads e4 = Measure(bench::FsKind::kExt4Dax);
  Overheads pm = Measure(bench::FsKind::kPmfs);
  Overheads nr = Measure(bench::FsKind::kNovaRelaxed);
  Overheads ns = Measure(bench::FsKind::kNovaStrict);

  std::printf("%-24s %10s %10s %10s   (relative overhead, lower is better)\n",
              "file system (vs mode)", "LoadA", "RunA", "TPCC");
  auto row = [](const char* name, const Overheads& x, const Overheads& base) {
    std::printf("%-24s %9.2fx %9.2fx %9.2fx\n", name, x.load_a / base.load_a,
                x.run_a / base.run_a, x.tpcc / base.tpcc);
  };
  std::printf("-- POSIX guarantees --\n");
  row("SplitFS-POSIX", sp, sp);
  row("ext4-DAX", e4, sp);
  std::printf("-- sync guarantees --\n");
  row("SplitFS-sync", ss, ss);
  row("PMFS", pm, ss);
  row("NOVA-relaxed", nr, ss);
  std::printf("-- strict guarantees --\n");
  row("SplitFS-strict", st, st);
  row("NOVA-strict", ns, st);
  std::printf("\npaper: ext4 up to 3.6x, NOVA-relaxed up to 7.4x (TPCC), PMFS ~1.9x;\n"
              "SplitFS lowest overhead in every group.\n");
  return 0;
}
