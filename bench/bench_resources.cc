// §5.10 resource consumption: U-Split DRAM footprint and background work.
//
// Paper: SplitFS uses <= 100 MB of DRAM for file metadata / mmap bookkeeping plus
// ~40 MB extra in strict mode, and one background thread for deferred work (staging
// replenishment), occasionally adding 100% of one core.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/workloads/microbench.h"

namespace {

void Measure(bench::FsKind kind) {
  bench::Testbed bed(kind);
  splitfs::SplitFs* fs = bed.split();
  // A metadata-and-data-heavy session: 400 files, writes, reads, fsyncs.
  std::vector<uint8_t> buf(32 * common::kKiB, 0x42);
  for (int i = 0; i < 400; ++i) {
    std::string path = "/r" + std::to_string(i);
    int fd = fs->Open(path, vfs::kRdWr | vfs::kCreate);
    fs->Pwrite(fd, buf.data(), buf.size(), 0);
    fs->Fsync(fd);
    fs->Pread(fd, buf.data(), buf.size(), 0);
    fs->Close(fd);
  }
  std::printf("%-15s: U-Split DRAM %8.2f MB | staging files created %3llu "
              "(background %llu) | op-log entries %llu\n",
              bench::FsKindName(kind),
              static_cast<double>(fs->MemoryUsageBytes()) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(fs->staging_pool().FilesCreated()),
              static_cast<unsigned long long>(fs->staging_pool().BackgroundCreations()),
              static_cast<unsigned long long>(fs->OpLogEntries()));
}

}  // namespace

int main() {
  bench::PrintHeader("Resource consumption of U-Split",
                     "SplitFS (SOSP'19) §5.10");
  Measure(bench::FsKind::kSplitPosix);
  Measure(bench::FsKind::kSplitSync);
  Measure(bench::FsKind::kSplitStrict);
  std::printf("\npaper: <= 100 MB DRAM metadata (+~40 MB in strict mode); a background\n"
              "thread handles staging replenishment and deferred closes.\n");
  return 0;
}
