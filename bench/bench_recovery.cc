// §5.3 recovery experiment: time to replay the SplitFS operation log after a crash.
//
// Paper: real-workload crashes replayed at most ~18,000 valid entries in ~3 s on
// emulated PM; the worst case — 2M valid entries (a full 128 MB log of cache-line
// writes) — took ~6 s. The shape to reproduce: replay time grows linearly in valid
// entries, and even the worst case stays within seconds.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/split_fs.h"

namespace {

using common::kMiB;

// Builds a strict-mode instance, performs `entries` logged cache-line appends without
// fsync, crashes, and measures simulated recovery time.
double MeasureRecoverySeconds(uint64_t entries) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 3 * common::kGiB);
  ext4sim::Ext4Dax kfs(&dev);
  splitfs::Options o;
  o.mode = splitfs::Mode::kStrict;
  o.oplog_bytes = 128 * kMiB;  // Paper default: holds 2M entries.
  o.num_staging_files = 4;
  o.staging_file_bytes = 64 * kMiB;
  splitfs::SplitFs fs(&kfs, o);

  std::vector<uint8_t> line(64, 0x77);
  int fd = fs.Open("/victim", vfs::kRdWr | vfs::kCreate);
  fs.Fsync(fd);
  for (uint64_t i = 0; i < entries; ++i) {
    fs.Pwrite(fd, line.data(), line.size(), i * line.size());
  }
  // Crash without fsync: every logged op must be replayed.
  kfs.Recover();
  uint64_t t0 = ctx.clock.Now();
  fs.Recover();
  return static_cast<double>(ctx.clock.Now() - t0) * 1e-9;
}

}  // namespace

int main() {
  std::printf("\n=============================================================================\n");
  std::printf("Recovery: op-log replay time after a crash (strict mode)\n");
  std::printf("Reproduces: SplitFS (SOSP'19) §5.3\n");
  std::printf("=============================================================================\n");
  std::printf("%12s %18s | paper reference\n", "log entries", "replay (sim s)");
  struct Point {
    uint64_t entries;
    const char* ref;
  };
  const Point points[] = {
      {1000, ""},
      {6000, ""},
      {18000, "~3 s (max seen in real-workload crashes)"},
      {100000, ""},
      {500000, ""},
      {2000000, "~6 s (worst case: full 128 MB log)"},
  };
  double t18k = 0, t2m = 0;
  for (const auto& p : points) {
    double secs = MeasureRecoverySeconds(p.entries);
    if (p.entries == 18000) {
      t18k = secs;
    }
    if (p.entries == 2000000) {
      t2m = secs;
    }
    std::printf("%12llu %18.3f | %s\n", static_cast<unsigned long long>(p.entries),
                secs, p.ref);
  }
  std::printf("\nlinearity check: t(2M)/t(18K) = %.1f (entries ratio 111.1)\n",
              t18k > 0 ? t2m / t18k : 0.0);
  std::printf("Our replay is faster per entry than the paper's (their replay re-walks\n"
              "paths through the kernel; ours opens by inode) — the linear shape and\n"
              "seconds-scale worst case are the reproduced claims.\n");
  return 0;
}
