// §5.3 recovery experiment: time to replay the SplitFS operation log after a crash.
//
// Paper: real-workload crashes replayed at most ~18,000 valid entries in ~3 s on
// emulated PM; the worst case — 2M valid entries (a full 128 MB log of cache-line
// writes) — took ~6 s. The shape to reproduce: replay time grows linearly in valid
// entries, and even the worst case stays within seconds.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/split_fs.h"
#include "src/crash/crash_runner.h"

namespace {

using common::kMiB;

// Builds a strict-mode instance, performs `entries` logged cache-line appends without
// fsync, crashes, and measures simulated recovery time.
double MeasureRecoverySeconds(uint64_t entries) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 3 * common::kGiB);
  ext4sim::Ext4Dax kfs(&dev);
  splitfs::Options o;
  o.mode = splitfs::Mode::kStrict;
  o.oplog_bytes = 128 * kMiB;  // Paper default: holds 2M entries.
  o.num_staging_files = 4;
  o.staging_file_bytes = 64 * kMiB;
  splitfs::SplitFs fs(&kfs, o);

  std::vector<uint8_t> line(64, 0x77);
  int fd = fs.Open("/victim", vfs::kRdWr | vfs::kCreate);
  fs.Fsync(fd);
  for (uint64_t i = 0; i < entries; ++i) {
    fs.Pwrite(fd, line.data(), line.size(), i * line.size());
  }
  // Crash without fsync: every logged op must be replayed.
  kfs.Recover();
  uint64_t t0 = ctx.clock.Now();
  fs.Recover();
  return static_cast<double>(ctx.clock.Now() - t0) * 1e-9;
}

}  // namespace

int main() {
  std::printf("\n=============================================================================\n");
  std::printf("Recovery: op-log replay time after a crash (strict mode)\n");
  std::printf("Reproduces: SplitFS (SOSP'19) §5.3\n");
  std::printf("=============================================================================\n");
  std::printf("%12s %18s | paper reference\n", "log entries", "replay (sim s)");
  struct Point {
    uint64_t entries;
    const char* ref;
  };
  const Point points[] = {
      {1000, ""},
      {6000, ""},
      {18000, "~3 s (max seen in real-workload crashes)"},
      {100000, ""},
      {500000, ""},
      {2000000, "~6 s (worst case: full 128 MB log)"},
  };
  double t18k = 0, t2m = 0;
  for (const auto& p : points) {
    double secs = MeasureRecoverySeconds(p.entries);
    if (p.entries == 18000) {
      t18k = secs;
    }
    if (p.entries == 2000000) {
      t2m = secs;
    }
    std::printf("%12llu %18.3f | %s\n", static_cast<unsigned long long>(p.entries),
                secs, p.ref);
  }
  std::printf("\nlinearity check: t(2M)/t(18K) = %.1f (entries ratio 111.1)\n",
              t18k > 0 ? t2m / t18k : 0.0);
  std::printf("Our replay is faster per entry than the paper's (their replay re-walks\n"
              "paths through the kernel; ours opens by inode) — the linear shape and\n"
              "seconds-scale worst case are the reproduced claims.\n");

  // --- Crash-state enumeration throughput (src/crash harness) -----------------------
  // Each state is a full fresh-world re-execution + crash image + recovery + oracle
  // sweep; this is the fixed cost every durability PR pays to regress against the
  // matrix, so its throughput is tracked here.
  std::printf("\n-----------------------------------------------------------------------------\n");
  std::printf("Crash-state enumeration: store/fence injection over SplitFS-strict\n");
  std::printf("%12s %14s %16s %18s\n", "workload", "crash states", "oracle failures",
              "states/sec (wall)");
  uint64_t total_states = 0;
  double total_secs = 0;
  for (const auto& script : crash::AllScripts(/*seed=*/20190727)) {
    crash::RunnerConfig cfg;
    cfg.seed = 20190727;
    crash::CrashRunner runner(crash::SplitFsWorldFactory(splitfs::Mode::kStrict),
                              script, crash::Guarantees::SplitFsStrict(), cfg);
    auto t0 = std::chrono::steady_clock::now();
    crash::MatrixStats stats = runner.Run();
    double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                      .count();
    total_states += stats.crash_states;
    total_secs += secs;
    std::printf("%12s %14llu %16llu %18.1f\n", script.name.c_str(),
                static_cast<unsigned long long>(stats.crash_states),
                static_cast<unsigned long long>(stats.oracle_failures),
                secs > 0 ? stats.crash_states / secs : 0.0);
  }
  std::printf("%12s %14llu %16s %18.1f\n", "total",
              static_cast<unsigned long long>(total_states), "-",
              total_secs > 0 ? total_states / total_secs : 0.0);
  return 0;
}
