// Table 3: the SplitFS mode/guarantee matrix, demonstrated by crash experiments.
//
// For each mode (POSIX / sync / strict) this bench runs four crash scenarios against
// a tracking-enabled PM device and reports the observed guarantee:
//   * synchronous data op:    overwrite without fsync -> survives the crash?
//   * atomic data op:         multi-block overwrite + torn crash -> old XOR new?
//   * synchronous metadata:   create without fsync -> file exists after crash?
//   * atomic metadata:        rename + crash -> exactly one name resolves?
// Appends are checked separately: atomic in every mode (all-or-nothing at fsync).
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/split_fs.h"

namespace {

using common::kBlockSize;
using common::kMiB;
using splitfs::Mode;

splitfs::Options Opts(Mode m) {
  splitfs::Options o;
  o.mode = m;
  o.num_staging_files = 2;
  o.staging_file_bytes = 8 * kMiB;
  o.oplog_bytes = 1 * kMiB;
  return o;
}

struct World {
  sim::Context ctx;
  std::unique_ptr<pmem::Device> dev;
  std::unique_ptr<ext4sim::Ext4Dax> kfs;
  std::unique_ptr<splitfs::SplitFs> fs;
  explicit World(Mode m) {
    dev = std::make_unique<pmem::Device>(&ctx, 512 * kMiB);
    kfs = std::make_unique<ext4sim::Ext4Dax>(dev.get());
    fs = std::make_unique<splitfs::SplitFs>(kfs.get(), Opts(m));
    dev->EnableCrashTracking(true);
  }
  void CrashAndRecover(common::Rng* rng = nullptr) {
    dev->Crash(rng);
    kfs->Recover();
    fs->Recover();
  }
};

bool SyncDataOp(Mode m) {
  World w(m);
  int fd = w.fs->Open("/f", vfs::kRdWr | vfs::kCreate);
  std::vector<uint8_t> a(kBlockSize, 0xAA), b(kBlockSize, 0xBB);
  w.fs->Pwrite(fd, a.data(), a.size(), 0);
  w.fs->Fsync(fd);
  w.fs->Pwrite(fd, b.data(), b.size(), 0);  // Overwrite, NO fsync.
  w.CrashAndRecover();
  int fd2 = w.fs->Open("/f", vfs::kRdWr);
  std::vector<uint8_t> back(kBlockSize);
  w.fs->Pread(fd2, back.data(), back.size(), 0);
  return back == b;  // Synchronous: the overwrite survived without fsync.
}

bool AtomicDataOp(Mode m) {
  // 8-block overwrite with a torn crash; atomic iff the file is all-old or all-new.
  World w(m);
  int fd = w.fs->Open("/f", vfs::kRdWr | vfs::kCreate);
  std::vector<uint8_t> a(8 * kBlockSize, 0xAA), b(8 * kBlockSize, 0xBB);
  w.fs->Pwrite(fd, a.data(), a.size(), 0);
  w.fs->Fsync(fd);
  w.fs->Pwrite(fd, b.data(), b.size(), 0);
  common::Rng rng(99);
  w.CrashAndRecover(&rng);  // Torn: random unfenced lines persist.
  int fd2 = w.fs->Open("/f", vfs::kRdWr);
  std::vector<uint8_t> back(8 * kBlockSize);
  w.fs->Pread(fd2, back.data(), back.size(), 0);
  return back == a || back == b;
}

bool SyncMetadataOp(Mode m) {
  World w(m);
  int fd = w.fs->Open("/created", vfs::kRdWr | vfs::kCreate);
  (void)fd;  // NO fsync.
  w.CrashAndRecover();
  vfs::StatBuf st;
  return w.fs->Stat("/created", &st) == 0;
}

bool AtomicMetadataOp(Mode m) {
  World w(m);
  int fd = w.fs->Open("/a", vfs::kRdWr | vfs::kCreate);
  w.fs->Pwrite(fd, "data", 4, 0);
  w.fs->Fsync(fd);
  w.fs->Close(fd);
  w.fs->Rename("/a", "/b");
  common::Rng rng(7);
  w.CrashAndRecover(&rng);
  vfs::StatBuf st;
  bool a_exists = w.fs->Stat("/a", &st) == 0;
  bool b_exists = w.fs->Stat("/b", &st) == 0;
  return a_exists != b_exists;  // Exactly one name: rename is all-or-nothing.
}

bool AtomicAppend(Mode m) {
  World w(m);
  int fd = w.fs->Open("/app", vfs::kRdWr | vfs::kCreate);
  w.fs->Fsync(fd);
  std::vector<uint8_t> b(2 * kBlockSize, 0xCC);
  w.fs->Pwrite(fd, b.data(), b.size(), 0);  // Append, no fsync.
  common::Rng rng(3);
  w.CrashAndRecover(&rng);
  int fd2 = w.fs->Open("/app", vfs::kRdWr);
  vfs::StatBuf st;
  w.fs->Fstat(fd2, &st);
  if (st.size == 0) {
    return true;  // Append vanished atomically.
  }
  if (st.size != b.size()) {
    return false;  // Partial size: torn append.
  }
  std::vector<uint8_t> back(b.size());
  w.fs->Pread(fd2, back.data(), back.size(), 0);
  return back == b;  // Fully present.
}

}  // namespace

int main() {
  std::printf("\n=============================================================================\n");
  std::printf("Table 3: SplitFS modes and guarantees (observed via crash injection)\n");
  std::printf("Reproduces: SplitFS (SOSP'19) Table 3\n");
  std::printf("=============================================================================\n");
  std::printf("%-8s %10s %10s %14s %14s %14s | paper row\n", "mode", "sync data",
              "atomic data", "sync metadata", "atomic metadata", "atomic append");
  struct PaperRow {
    Mode m;
    const char* expect;
  };
  const PaperRow rows[] = {
      {Mode::kPosix, "x x x ok (= ext4-DAX + atomic appends)"},
      {Mode::kSync, "ok x ok ok (= PMFS / NOVA-relaxed)"},
      {Mode::kStrict, "ok ok ok ok (= NOVA-strict / Strata)"},
  };
  for (const auto& row : rows) {
    std::printf("%-8s %10s %11s %14s %15s %14s | %s\n", ModeName(row.m),
                SyncDataOp(row.m) ? "yes" : "no", AtomicDataOp(row.m) ? "yes" : "no",
                SyncMetadataOp(row.m) ? "yes" : "no",
                AtomicMetadataOp(row.m) ? "yes" : "no",
                AtomicAppend(row.m) ? "yes" : "no", row.expect);
  }
  std::printf("\nNote: SplitFS-POSIX overwrites are in-place nt-stores, so 'sync data'\n"
              "reads yes even though POSIX mode does not promise it (the paper notes\n"
              "POSIX-mode overwrites are synchronous; the table's guarantee column is\n"
              "about what applications may rely on).\n");
  return 0;
}
