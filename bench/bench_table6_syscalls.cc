// Table 6: per-syscall latency (us) of SplitFS modes vs ext4 DAX, measured with the
// Varmail-like sequence of §5.4: create + 4x(4K append + fsync), close, open,
// read 16K, close, open+close, unlink.
//
// Paper (us):            strict  sync  POSIX  ext4-DAX
//   open                  2.09   2.08   1.82    1.54
//   close                 0.78   0.69   0.69    0.34
//   append                3.14   3.09   2.84   11.05
//   fsync                 6.85   6.80   6.80   28.98
//   read                  4.57   4.53   4.53    5.04
//   unlink               14.60  13.56  14.33    8.60
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/workloads/microbench.h"

int main() {
  bench::PrintHeader("Table 6: SplitFS system-call latencies (us)",
                     "SplitFS (SOSP'19) Table 6");
  const std::vector<bench::FsKind> kinds = {
      bench::FsKind::kSplitStrict,
      bench::FsKind::kSplitSync,
      bench::FsKind::kSplitPosix,
      bench::FsKind::kExt4Dax,
  };
  std::map<std::string, std::map<std::string, double>> results;
  for (auto kind : kinds) {
    bench::Testbed bed(kind);
    wl::SyscallLatencies lat =
        wl::RunVarmail(bed.fs(), &bed.ctx()->clock, /*iterations=*/500, "/varmail");
    for (const auto& [name, ns] : lat.mean_ns) {
      results[name][bench::FsKindName(kind)] = ns / 1000.0;
    }
  }
  const std::map<std::string, std::map<std::string, double>> paper = {
      {"open", {{"SplitFS-strict", 2.09}, {"SplitFS-sync", 2.08}, {"SplitFS-POSIX", 1.82}, {"ext4-DAX", 1.54}}},
      {"close", {{"SplitFS-strict", 0.78}, {"SplitFS-sync", 0.69}, {"SplitFS-POSIX", 0.69}, {"ext4-DAX", 0.34}}},
      {"append", {{"SplitFS-strict", 3.14}, {"SplitFS-sync", 3.09}, {"SplitFS-POSIX", 2.84}, {"ext4-DAX", 11.05}}},
      {"fsync", {{"SplitFS-strict", 6.85}, {"SplitFS-sync", 6.80}, {"SplitFS-POSIX", 6.80}, {"ext4-DAX", 28.98}}},
      {"read", {{"SplitFS-strict", 4.57}, {"SplitFS-sync", 4.53}, {"SplitFS-POSIX", 4.53}, {"ext4-DAX", 5.04}}},
      {"unlink", {{"SplitFS-strict", 14.60}, {"SplitFS-sync", 13.56}, {"SplitFS-POSIX", 14.33}, {"ext4-DAX", 8.60}}},
  };
  std::printf("%-8s | %14s %14s %14s %14s\n", "syscall", "SplitFS-strict",
              "SplitFS-sync", "SplitFS-POSIX", "ext4-DAX");
  for (const auto& [name, per_fs] : results) {
    std::printf("%-8s |", name.c_str());
    for (const char* fsname :
         {"SplitFS-strict", "SplitFS-sync", "SplitFS-POSIX", "ext4-DAX"}) {
      auto it = per_fs.find(fsname);
      std::printf(" %14.2f", it == per_fs.end() ? 0.0 : it->second);
    }
    std::printf("   (paper:");
    auto pit = paper.find(name);
    if (pit != paper.end()) {
      for (const char* fsname :
           {"SplitFS-strict", "SplitFS-sync", "SplitFS-POSIX", "ext4-DAX"}) {
        std::printf(" %.2f", pit->second.at(fsname));
      }
    }
    std::printf(")\n");
  }
  return 0;
}
