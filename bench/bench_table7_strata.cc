// Table 7: SplitFS-strict vs Strata, YCSB on the LevelDB-like store.
//
// Paper (small-scale YCSB: 1M records, 1M ops, 500K for E; Strata with a 20 GB
// private log; DRAM-emulated PM):
//   LoadA 1.73x, RunA 1.76x, RunB 2.16x, RunC 2.14x, RunD 2.25x,
//   LoadE 1.72x, RunE 2.03x, RunF 2.25x  (SplitFS-strict / Strata throughput).
// Also reproduces the §5.8 write-IO claim: Strata writes append-heavy data twice.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/workloads/ycsb.h"

namespace {

struct Numbers {
  double kops[8] = {};
  double pm_wear_gb = 0;
};

Numbers Measure(bench::FsKind kind) {
  Numbers out;
  {
    bench::Testbed bed(kind);
    apps::KvLsmOptions kopts;
    kopts.clock = &bed.ctx()->clock;
    apps::KvLsm store(bed.fs(), "/y", kopts);
    wl::YcsbConfig cfg;
    cfg.record_count = 20000;
    cfg.op_count = 20000;
    wl::Ycsb ycsb(&store, cfg);
    out.kops[0] = ycsb.Load(&bed.ctx()->clock).Kops();  // LoadA
    out.kops[1] = ycsb.Run(wl::YcsbWorkload::kA, &bed.ctx()->clock).Kops();
    out.kops[2] = ycsb.Run(wl::YcsbWorkload::kB, &bed.ctx()->clock).Kops();
    out.kops[3] = ycsb.Run(wl::YcsbWorkload::kC, &bed.ctx()->clock).Kops();
    out.kops[4] = ycsb.Run(wl::YcsbWorkload::kD, &bed.ctx()->clock).Kops();
    out.kops[7] = ycsb.Run(wl::YcsbWorkload::kF, &bed.ctx()->clock).Kops();
    out.pm_wear_gb = static_cast<double>(bed.ctx()->stats.TotalPmWear()) / 1e9;
  }
  {
    bench::Testbed bed(kind);
    apps::KvLsmOptions kopts;
    kopts.clock = &bed.ctx()->clock;
    apps::KvLsm store(bed.fs(), "/ye", kopts);
    wl::YcsbConfig cfg;
    cfg.record_count = 4000;
    cfg.op_count = 500;
    wl::Ycsb ycsb(&store, cfg);
    out.kops[5] = ycsb.Load(&bed.ctx()->clock).Kops();  // LoadE
    out.kops[6] = ycsb.Run(wl::YcsbWorkload::kE, &bed.ctx()->clock).Kops();
  }
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader("Table 7: SplitFS-strict vs Strata (YCSB on LSM store)",
                     "SplitFS (SOSP'19) Table 7 and the 2x write-IO claim of §5.8");
  Numbers strata = Measure(bench::FsKind::kStrata);
  Numbers split = Measure(bench::FsKind::kSplitStrict);
  const char* names[8] = {"Load A", "Run A", "Run B", "Run C",
                          "Run D", "Load E", "Run E", "Run F"};
  const double paper[8] = {1.73, 1.76, 2.16, 2.14, 2.25, 1.72, 2.03, 2.25};
  std::printf("%-8s %14s %18s %12s | %s\n", "workload", "Strata Kops/s",
              "SplitFS-strict rel", "measured", "paper");
  for (int i = 0; i < 8; ++i) {
    std::printf("%-8s %14.1f %18s %11.2fx | %.2fx\n", names[i], strata.kops[i], "",
                split.kops[i] / strata.kops[i], paper[i]);
  }
  std::printf("\nTotal PM wear over the main YCSB pass (all writes to media):\n");
  std::printf("  Strata:         %.2f GB\n", strata.pm_wear_gb);
  std::printf("  SplitFS-strict: %.2f GB   (paper: Strata writes up to 2x more on\n"
              "                              append-heavy workloads)\n",
              split.pm_wear_gb);
  return 0;
}
