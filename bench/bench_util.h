// Shared benchmark scaffolding: builds a "testbed" (device + one file system under
// test) and provides the paper-style reporting helpers.
//
// Every bench binary regenerates one table or figure from the paper's evaluation and
// prints the measured (simulated-time) values next to the paper's published numbers,
// so the reproduction quality is visible in the output itself.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/common/bytes.h"
#include "src/core/split_fs.h"
#include "src/ext4/ext4_dax.h"
#include "src/nova/nova.h"
#include "src/pmem/device.h"
#include "src/pmfs/pmfs.h"
#include "src/strata/strata.h"
#include "src/vfs/file_system.h"

namespace bench {

enum class FsKind {
  kExt4Dax,
  kPmfs,
  kNovaStrict,
  kNovaRelaxed,
  kStrata,
  kSplitPosix,
  kSplitSync,
  kSplitStrict,
};

inline const char* FsKindName(FsKind k) {
  switch (k) {
    case FsKind::kExt4Dax:
      return "ext4-DAX";
    case FsKind::kPmfs:
      return "PMFS";
    case FsKind::kNovaStrict:
      return "NOVA-strict";
    case FsKind::kNovaRelaxed:
      return "NOVA-relaxed";
    case FsKind::kStrata:
      return "Strata";
    case FsKind::kSplitPosix:
      return "SplitFS-POSIX";
    case FsKind::kSplitSync:
      return "SplitFS-sync";
    case FsKind::kSplitStrict:
      return "SplitFS-strict";
  }
  return "?";
}

// One device + one mounted file system. SplitFS testbeds layer U-Split over a private
// ext4-DAX instance, exactly as a deployed SplitFS process would.
class Testbed {
 public:
  explicit Testbed(FsKind kind, uint64_t device_bytes = 4 * common::kGiB,
                   splitfs::Options split_opts = {}, ext4sim::Ext4Options ext4_opts = {}) {
    dev_ = std::make_unique<pmem::Device>(&ctx_, device_bytes);
    switch (kind) {
      case FsKind::kExt4Dax:
        ext4_ = std::make_unique<ext4sim::Ext4Dax>(dev_.get(), ext4_opts);
        fs_ = ext4_.get();
        break;
      case FsKind::kPmfs:
        other_ = std::make_unique<pmfssim::Pmfs>(dev_.get());
        fs_ = other_.get();
        break;
      case FsKind::kNovaStrict:
        other_ = std::make_unique<novasim::Nova>(dev_.get(), /*strict=*/true);
        fs_ = other_.get();
        break;
      case FsKind::kNovaRelaxed:
        other_ = std::make_unique<novasim::Nova>(dev_.get(), /*strict=*/false);
        fs_ = other_.get();
        break;
      case FsKind::kStrata: {
        // Size the private log so digestion is part of steady state (the paper's
        // 20 GB log served multi-GB workloads; scale to this testbed's workloads).
        stratasim::StrataOptions so;
        so.private_log_bytes = 64 * common::kMiB;
        other_ = std::make_unique<stratasim::Strata>(dev_.get(), so);
        fs_ = other_.get();
        break;
      }
      case FsKind::kSplitPosix:
      case FsKind::kSplitSync:
      case FsKind::kSplitStrict: {
        split_opts.mode = kind == FsKind::kSplitPosix  ? splitfs::Mode::kPosix
                          : kind == FsKind::kSplitSync ? splitfs::Mode::kSync
                                                       : splitfs::Mode::kStrict;
        ext4_ = std::make_unique<ext4sim::Ext4Dax>(dev_.get(), ext4_opts);
        split_ = std::make_unique<splitfs::SplitFs>(ext4_.get(), split_opts);
        fs_ = split_.get();
        break;
      }
    }
    // Instance startup (staging pre-allocation, op-log zeroing) is not part of any
    // measured workload: reset the clock and counters.
    ctx_.Reset();
  }

  vfs::FileSystem* fs() { return fs_; }
  sim::Context* ctx() { return &ctx_; }
  splitfs::SplitFs* split() { return split_.get(); }
  ext4sim::Ext4Dax* ext4() { return ext4_.get(); }
  pmem::Device* device() { return dev_.get(); }

  // §5.7 definition: total time minus time spent moving user payload on PM media.
  uint64_t SoftwareOverheadNs() const {
    uint64_t total = ctx_.clock.Now();
    uint64_t media = ctx_.stats.data_media_ns();
    return total > media ? total - media : 0;
  }

 private:
  sim::Context ctx_;
  std::unique_ptr<pmem::Device> dev_;
  std::unique_ptr<ext4sim::Ext4Dax> ext4_;
  std::unique_ptr<splitfs::SplitFs> split_;
  std::unique_ptr<vfs::FileSystem> other_;
  vfs::FileSystem* fs_ = nullptr;
};

// PM read traffic decomposed by consumer — the read-side counterpart of the §5.7
// data/metadata split: user payload vs FS metadata vs journal vs log (op log,
// Strata private log) vs staging machinery (relink head/tail copies).
inline void PrintPmReadSplit(const char* label, const sim::Stats& stats) {
  std::printf("  %-28s PM reads: data %llu B, metadata %llu B, journal %llu B, "
              "log %llu B, staging %llu B\n",
              label, static_cast<unsigned long long>(stats.read_data_bytes()),
              static_cast<unsigned long long>(stats.read_metadata_bytes()),
              static_cast<unsigned long long>(stats.read_journal_bytes()),
              static_cast<unsigned long long>(stats.read_log_bytes()),
              static_cast<unsigned long long>(stats.read_staging_bytes()));
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n=============================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("All times are simulated nanoseconds from the calibrated PM cost model.\n");
  std::printf("=============================================================================\n");
}

}  // namespace bench

#endif  // BENCH_BENCH_UTIL_H_
