// Multithreaded scalability of the concurrent U-Split: sweeps 1..16 application
// threads over three workloads per consistency mode and reports aggregate ops/s.
//
// Not a figure from the paper — the paper's evaluation is single-application — but
// the workloads are its §5 staples (appends+fsync, random reads, YCSB-A over the
// LevelDB-shaped store). Time is the simulated clock's per-thread lane model: each
// worker accrues its own virtual timeline; elapsed = slowest worker; code serialized
// by real locks (K-Split's kernel lock, contended file ranges, the staging slow path)
// fast-forwards waiters, so the reported scaling honestly reflects the lock
// granularity of the implementation rather than the host's core count.
//
//   bench_scalability [--json] [--histograms] [--trace=<file>]
//     --json          additionally writes BENCH_scalability.json (schema_version 2:
//                     per-cell latency percentiles + per-series contention breakdown)
//     --histograms    prints a per-cell latency table (p50/p95/p99/max, virtual ns)
//     --trace=<file>  runs one traced fsync-storm pass (tracing on, fsync every op)
//                     and writes a Chrome-trace/Perfetto JSON to <file>; given
//                     alone, skips the scalability sweep entirely
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/obs.h"
#include "src/workloads/parallel.h"

namespace {

using bench::FsKind;
using bench::Testbed;

constexpr int kThreadCounts[] = {1, 2, 4, 8, 16};

struct Cell {
  int threads = 0;
  double ops_per_sec = 0;
  uint64_t errors = 0;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
};

struct Series {
  const char* workload;
  const char* mode;
  std::vector<Cell> cells;
  // Contention ledger snapshot of the 8-thread cell: which serial resource the
  // fast-forwarded wait time went to, per resource name.
  std::vector<std::pair<std::string, obs::ContentionLedger::Entry>> contention_at_8;
};

splitfs::Options ConcurrentOptions() {
  splitfs::Options o;
  // Real §3.5 replenisher thread: staging files are pre-created off the workers'
  // critical path. (Deterministic single-threaded tests keep it off; here the whole
  // point is concurrency.)
  o.replenish_thread = true;
  // Async relink publication: fsync returns once the relink intent is fenced; the
  // relink ioctls and their journal commit leave the workers' critical path. The
  // deterministic inline publisher (cost rewound, same accounting as the real
  // thread) keeps every cell reproducible run-to-run; the real publisher thread is
  // exercised under TSan by the concurrency test suite.
  o.async_relink = true;
  // Pre-size the pool for the 16-thread sweep point (16 lanes x one 16 MiB active
  // file): pool exhaustion mid-run would serialize every worker behind foreground
  // staging-file creation, which is exactly the §3.5 problem pre-creation solves.
  o.num_staging_files = 18;
  o.staging_file_bytes = 16 * common::kMiB;
  o.oplog_bytes = 16 * common::kMiB;  // 256 K entries; ample for every sweep point.
  return o;
}

wl::ParallelResult RunWorkload(const char* workload, Testbed* bed, int threads) {
  vfs::FileSystem* fs = bed->fs();
  sim::Clock* clock = &bed->ctx()->clock;
  if (std::strcmp(workload, "append_heavy") == 0) {
    // Disjoint-file appends, 4 KB ops, fsync every 256 ops: the acceptance workload.
    return wl::RunParallelAppend(fs, clock, threads, "/scal-append",
                                 /*bytes_per_thread=*/8 * common::kMiB,
                                 /*op_bytes=*/4096, /*fsync_every=*/256);
  }
  if (std::strcmp(workload, "read_heavy") == 0) {
    return wl::RunParallelRead(fs, clock, threads, "/scal-read",
                               /*file_bytes=*/8 * common::kMiB, /*op_bytes=*/4096,
                               /*ops_per_thread=*/4000, /*seed=*/42);
  }
  if (std::strcmp(workload, "ycsb_c") == 0) {
    // Read-heavy YCSB-C phase: 100% zipfian gets against pre-flushed SSTables —
    // every get walks U-Split's pread path and its lock-free mmap translation.
    return wl::RunParallelYcsbC(fs, clock, threads, "/scal-ycsbc",
                                /*records_per_thread=*/1000,
                                /*ops_per_thread=*/3000, /*seed=*/42);
  }
  return wl::RunParallelYcsbA(fs, clock, threads, "/scal-ycsb",
                              /*records_per_thread=*/1000, /*ops_per_thread=*/2000,
                              /*seed=*/42);
}

// Traced fsync-storm pass (--trace): every append fsyncs, so the journal pipeline,
// publisher, and wait spans all light up. Tracing must not perturb the timeline —
// the same workload with tracing off produces bit-identical virtual times.
int WriteStormTrace(const std::string& path) {
  splitfs::Options o = ConcurrentOptions();
  o.tracing = true;
  Testbed bed(FsKind::kSplitSync, 2 * common::kGiB, o);
  bed.ctx()->obs.tracer.Enable();
  wl::ParallelResult r =
      wl::RunParallelAppend(bed.fs(), &bed.ctx()->clock, /*threads=*/4, "/trace-append",
                            /*bytes_per_thread=*/2 * common::kMiB, /*op_bytes=*/4096,
                            /*fsync_every=*/1);
  if (r.errors != 0) {
    std::fprintf(stderr, "traced fsync-storm pass reported %llu errors\n",
                 static_cast<unsigned long long>(r.errors));
    return 1;
  }
  if (!bed.ctx()->obs.tracer.ExportChromeTrace(path)) {
    std::fprintf(stderr, "cannot write trace to %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s (%llu spans, %llu dropped) — load in Perfetto or "
              "chrome://tracing\n",
              path.c_str(), static_cast<unsigned long long>(bed.ctx()->obs.tracer.SpanCount()),
              static_cast<unsigned long long>(bed.ctx()->obs.tracer.Drops()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool histograms = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--histograms") == 0) {
      histograms = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    }
  }

  // A trace-only invocation wants the storm artifact, not a ten-minute sweep.
  if (!trace_path.empty() && !json && !histograms) {
    return WriteStormTrace(trace_path);
  }

  bench::PrintHeader("SplitFS multithreaded scalability (1..16 application threads)",
                     "concurrent U-Split refactor; workloads from §5.2/§5.5/§5.6");

  const FsKind kModes[] = {FsKind::kSplitPosix, FsKind::kSplitSync, FsKind::kSplitStrict};
  const char* kWorkloads[] = {"append_heavy", "read_heavy", "ycsb_a", "ycsb_c"};
  std::vector<Series> all;

  for (const char* workload : kWorkloads) {
    std::printf("\n--- %s ---\n", workload);
    std::printf("%-16s %8s %14s %10s %8s\n", "mode", "threads", "ops/s", "speedup", "errors");
    for (FsKind kind : kModes) {
      Series series;
      series.workload = workload;
      double base = 0;
      for (int threads : kThreadCounts) {
        // Fresh testbed per point: no cross-pollution of staging pools or caches.
        Testbed bed(kind, 2 * common::kGiB, ConcurrentOptions());
        series.mode = bed.fs()->Name() == "SplitFS-POSIX"  ? "posix"
                      : bed.fs()->Name() == "SplitFS-sync" ? "sync"
                                                           : "strict";
        wl::ParallelResult r = RunWorkload(workload, &bed, threads);
        double ops = r.OpsPerSec();
        if (threads == 1) {
          base = ops;
        }
        Cell cell;
        cell.threads = threads;
        cell.ops_per_sec = ops;
        cell.errors = r.errors;
        cell.p50_ns = r.latency.Percentile(0.50);
        cell.p95_ns = r.latency.Percentile(0.95);
        cell.p99_ns = r.latency.Percentile(0.99);
        cell.max_ns = r.latency.Max();
        series.cells.push_back(cell);
        if (threads == 8) {
          series.contention_at_8 = bed.ctx()->obs.ledger.Snapshot();
        }
        std::printf("%-16s %8d %14.0f %9.2fx %8llu\n", bed.fs()->Name().c_str(), threads,
                    ops, base > 0 ? ops / base : 0.0,
                    static_cast<unsigned long long>(r.errors));
        std::fflush(stdout);
      }
      all.push_back(std::move(series));
    }
  }

  if (histograms) {
    std::printf("\n--- per-op latency (virtual ns; log-bucket upper bounds) ---\n");
    std::printf("%-14s %-8s %8s %10s %10s %10s %10s\n", "workload", "mode", "threads",
                "p50", "p95", "p99", "max");
    for (const Series& s : all) {
      for (const Cell& c : s.cells) {
        std::printf("%-14s %-8s %8d %10llu %10llu %10llu %10llu\n", s.workload, s.mode,
                    c.threads, static_cast<unsigned long long>(c.p50_ns),
                    static_cast<unsigned long long>(c.p95_ns),
                    static_cast<unsigned long long>(c.p99_ns),
                    static_cast<unsigned long long>(c.max_ns));
      }
    }
    std::printf("\n--- contention at 8 threads (virtual-time fast-forwards by resource) ---\n");
    std::printf("%-14s %-8s %-28s %8s %14s %12s\n", "workload", "mode", "resource",
                "waits", "waited_ns", "max_wait_ns");
    for (const Series& s : all) {
      if (s.contention_at_8.empty()) {
        std::printf("%-14s %-8s %-28s %8s %14s %12s\n", s.workload, s.mode, "(none)", "-",
                    "-", "-");
        continue;
      }
      for (const auto& [resource, e] : s.contention_at_8) {
        std::printf("%-14s %-8s %-28s %8llu %14llu %12llu\n", s.workload, s.mode,
                    resource.c_str(), static_cast<unsigned long long>(e.waits),
                    static_cast<unsigned long long>(e.waited_ns),
                    static_cast<unsigned long long>(e.max_wait_ns));
      }
    }
  }

  if (json) {
    FILE* f = std::fopen("BENCH_scalability.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_scalability.json\n");
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"scalability\",\n  \"schema_version\": 2,\n");
    std::fprintf(f, "  \"threads\": [1, 2, 4, 8, 16],\n");
    std::fprintf(f, "  \"time_model\": \"simulated per-thread lanes (max over workers)\",\n");
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < all.size(); ++i) {
      const Series& s = all[i];
      std::fprintf(f, "    {\"workload\": \"%s\", \"mode\": \"%s\", \"ops_per_sec\": {",
                   s.workload, s.mode);
      for (size_t c = 0; c < s.cells.size(); ++c) {
        std::fprintf(f, "%s\"%d\": %.0f", c == 0 ? "" : ", ", s.cells[c].threads,
                     s.cells[c].ops_per_sec);
      }
      std::fprintf(f, "},\n     \"latency_ns\": {");
      for (size_t c = 0; c < s.cells.size(); ++c) {
        const Cell& cell = s.cells[c];
        std::fprintf(f,
                     "%s\"%d\": {\"p50\": %llu, \"p95\": %llu, \"p99\": %llu, "
                     "\"max\": %llu}",
                     c == 0 ? "" : ", ", cell.threads,
                     static_cast<unsigned long long>(cell.p50_ns),
                     static_cast<unsigned long long>(cell.p95_ns),
                     static_cast<unsigned long long>(cell.p99_ns),
                     static_cast<unsigned long long>(cell.max_ns));
      }
      std::fprintf(f, "},\n     \"contention_at_8\": [");
      for (size_t c = 0; c < s.contention_at_8.size(); ++c) {
        const auto& [resource, e] = s.contention_at_8[c];
        std::fprintf(f,
                     "%s{\"resource\": \"%s\", \"waits\": %llu, \"waited_ns\": %llu, "
                     "\"max_wait_ns\": %llu}",
                     c == 0 ? "" : ", ", resource.c_str(),
                     static_cast<unsigned long long>(e.waits),
                     static_cast<unsigned long long>(e.waited_ns),
                     static_cast<unsigned long long>(e.max_wait_ns));
      }
      double base = s.cells.empty() ? 0 : s.cells[0].ops_per_sec;
      double at8 = 0;
      uint64_t errors = 0;
      for (const Cell& c : s.cells) {
        if (c.threads == 8) {
          at8 = c.ops_per_sec;
        }
        errors += c.errors;
      }
      std::fprintf(f, "],\n     \"speedup_at_8\": %.2f, \"errors\": %llu}%s\n",
                   base > 0 ? at8 / base : 0.0, static_cast<unsigned long long>(errors),
                   i + 1 == all.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_scalability.json\n");
  }

  if (!trace_path.empty()) {
    int rc = WriteStormTrace(trace_path);
    if (rc != 0) {
      return rc;
    }
  }
  return 0;
}
