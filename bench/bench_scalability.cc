// Multithreaded scalability of the concurrent U-Split: sweeps 1..16 application
// threads over five workloads per consistency mode and reports aggregate ops/s.
// shared_hot_file is the range-granular inode-lock column: N threads overwrite
// disjoint 4 KB strides of ONE preallocated file, so its scaling is exactly the
// lock granularity of the shared-file write path.
//
// Not a figure from the paper — the paper's evaluation is single-application — but
// the workloads are its §5 staples (appends+fsync, random reads, YCSB-A over the
// LevelDB-shaped store). Time is the simulated clock's per-thread lane model: each
// worker accrues its own virtual timeline; elapsed = slowest worker; code serialized
// by real locks (K-Split's kernel lock, contended file ranges, the staging slow path)
// fast-forwards waiters, so the reported scaling honestly reflects the lock
// granularity of the implementation rather than the host's core count.
//
//   bench_scalability [--json] [--histograms] [--trace=<file>] [--repeat-check]
//                     [--schema-check]
//     --json          additionally writes BENCH_scalability.json (schema_version 2:
//                     per-cell latency percentiles + per-series contention breakdown)
//     --histograms    prints a per-cell latency table (p50/p95/p99/max, virtual ns)
//     --trace=<file>  runs one traced fsync-storm pass (tracing on, fsync every op,
//                     nonzero commit interval) and writes a Chrome-trace/Perfetto
//                     JSON to <file>; given alone, skips the scalability sweep.
//                     The pass self-checks: writeout spans must number fewer than
//                     fsyncs (commit coalescing merged them) and the per-thread
//                     reconciliation identity must hold — nonzero exit otherwise
//     --repeat-check  determinism gates: 1-thread cells (helpers off) must be
//                     bit-identical and 8-thread cells must repeat within 1%, for
//                     both the posix append cell (the PR 6 lane-hash wobble gate)
//                     and the shared_hot_file cell (strict solo / sync at 8 — the
//                     range-granular inode-lock gate)
//     --schema-check  validates the committed BENCH_scalability.json against the
//                     schema_version 2 key set; nonzero exit on a regression
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/ext4/ext4_dax.h"

#include "bench/bench_util.h"
#include "src/obs/obs.h"
#include "src/workloads/parallel.h"

namespace {

using bench::FsKind;
using bench::Testbed;

constexpr int kThreadCounts[] = {1, 2, 4, 8, 16};

struct Cell {
  int threads = 0;
  double ops_per_sec = 0;
  uint64_t errors = 0;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
};

struct Series {
  std::string workload;
  std::string mode;
  std::vector<Cell> cells;
  // Contention ledger snapshot of the 8-thread cell: which serial resource the
  // fast-forwarded wait time went to, per resource name.
  std::vector<std::pair<std::string, obs::ContentionLedger::Entry>> contention_at_8;
};

splitfs::Options ConcurrentOptions() {
  splitfs::Options o;
  // Real §3.5 replenisher thread: staging files are pre-created off the workers'
  // critical path. (Deterministic single-threaded tests keep it off; here the whole
  // point is concurrency.)
  o.replenish_thread = true;
  // Async relink publication: fsync returns once the relink intent is fenced; the
  // relink ioctls and their journal commit leave the workers' critical path. The
  // deterministic inline publisher (cost rewound, same accounting as the real
  // thread) keeps every cell reproducible run-to-run; the real publisher thread is
  // exercised under TSan by the concurrency test suite.
  o.async_relink = true;
  // Pre-size the pool for the 16-thread sweep point (16 lanes x one 16 MiB active
  // file): pool exhaustion mid-run would serialize every worker behind foreground
  // staging-file creation, which is exactly the §3.5 problem pre-creation solves.
  o.num_staging_files = 18;
  o.staging_file_bytes = 16 * common::kMiB;
  o.oplog_bytes = 16 * common::kMiB;  // 256 K entries; ample for every sweep point.
  return o;
}

wl::ParallelResult RunWorkload(const char* workload, Testbed* bed, int threads) {
  vfs::FileSystem* fs = bed->fs();
  sim::Clock* clock = &bed->ctx()->clock;
  if (std::strcmp(workload, "append_heavy") == 0) {
    // Disjoint-file appends, 4 KB ops, fsync every 256 ops: the acceptance workload.
    return wl::RunParallelAppend(fs, clock, threads, "/scal-append",
                                 /*bytes_per_thread=*/8 * common::kMiB,
                                 /*op_bytes=*/4096, /*fsync_every=*/256);
  }
  if (std::strcmp(workload, "read_heavy") == 0) {
    return wl::RunParallelRead(fs, clock, threads, "/scal-read",
                               /*file_bytes=*/8 * common::kMiB, /*op_bytes=*/4096,
                               /*ops_per_thread=*/4000, /*seed=*/42);
  }
  if (std::strcmp(workload, "shared_hot_file") == 0) {
    // One preallocated file, every thread overwriting disjoint 4 KB strides
    // in-size: the range-granular inode-lock acceptance workload. Pre-PR this
    // serialized on the whole-inode lock in sync and strict modes.
    return wl::RunParallelSharedHotFile(fs, clock, threads, "/scal-hot",
                                        /*bytes_per_thread=*/2 * common::kMiB,
                                        /*op_bytes=*/4096);
  }
  if (std::strcmp(workload, "ycsb_c") == 0) {
    // Read-heavy YCSB-C phase: 100% zipfian gets against pre-flushed SSTables —
    // every get walks U-Split's pread path and its lock-free mmap translation.
    return wl::RunParallelYcsbC(fs, clock, threads, "/scal-ycsbc",
                                /*records_per_thread=*/1000,
                                /*ops_per_thread=*/3000, /*seed=*/42);
  }
  return wl::RunParallelYcsbA(fs, clock, threads, "/scal-ycsb",
                              /*records_per_thread=*/1000, /*ops_per_thread=*/2000,
                              /*seed=*/42);
}

// Storm options: synchronous publish (no async intents), so every fsync drives the
// kernel journal on the worker's own lane — the traffic shape commit coalescing
// amortizes. The staging/replenisher knobs match ConcurrentOptions.
splitfs::Options StormOptions() {
  splitfs::Options o = ConcurrentOptions();
  o.async_relink = false;
  return o;
}

wl::ParallelResult RunFsyncStorm(Testbed* bed, int threads) {
  // 4 KB appends, fsync EVERY op: each op is a journal commit request.
  return wl::RunParallelAppend(bed->fs(), &bed->ctx()->clock, threads, "/storm",
                               /*bytes_per_thread=*/1 * common::kMiB,
                               /*op_bytes=*/4096, /*fsync_every=*/1);
}

// Traced fsync-storm pass (--trace): every append fsyncs, so the journal pipeline
// and wait spans all light up, and the nonzero commit interval merges racing
// commits. The pass validates two invariants and fails on a regression:
//   1. Merge identity: strictly fewer journal.writeout spans than fsync calls
//      (coalescing amortized the writeouts).
//   2. Reconciliation identity: per worker thread, Σ top-level span durations
//      matches that worker's share of virtual time — the slowest worker's sum must
//      reconcile with the reported elapsed within 5%.
int WriteStormTrace(const std::string& path) {
  splitfs::Options o = StormOptions();
  o.tracing = true;
  ext4sim::Ext4Options eo;
  eo.commit_interval_ns = 20'000;
  Testbed bed(FsKind::kSplitSync, 2 * common::kGiB, o, eo);
  bed.ctx()->obs.tracer.Enable();
  wl::ParallelResult r =
      wl::RunParallelAppend(bed.fs(), &bed.ctx()->clock, /*threads=*/4, "/trace-append",
                            /*bytes_per_thread=*/2 * common::kMiB, /*op_bytes=*/4096,
                            /*fsync_every=*/1);
  if (r.errors != 0) {
    std::fprintf(stderr, "traced fsync-storm pass reported %llu errors\n",
                 static_cast<unsigned long long>(r.errors));
    return 1;
  }
  if (!bed.ctx()->obs.tracer.ExportChromeTrace(path)) {
    std::fprintf(stderr, "cannot write trace to %s\n", path.c_str());
    return 1;
  }

  uint64_t fsyncs = 0;
  uint64_t writeouts = 0;
  uint64_t windows = 0;
  std::map<uint32_t, uint64_t> top_level_ns;  // tracer tid -> Σ depth-0 durations
  bed.ctx()->obs.tracer.ForEachSpan([&](const obs::SpanRecord& s) {
    if (std::strcmp(s.name, "splitfs.fsync") == 0) {
      ++fsyncs;
    } else if (std::strcmp(s.name, "journal.writeout") == 0) {
      ++writeouts;
    } else if (std::strcmp(s.name, "journal.commit_window") == 0) {
      ++windows;
    }
    if (s.depth == 0) {
      top_level_ns[s.tid] += s.end_ns - s.start_ns;
    }
  });
  std::printf("\nstorm trace: %llu fsyncs, %llu journal writeouts, %llu coalescing "
              "windows\n",
              static_cast<unsigned long long>(fsyncs),
              static_cast<unsigned long long>(writeouts),
              static_cast<unsigned long long>(windows));
  int rc = 0;
  if (writeouts == 0 || fsyncs == 0 || writeouts >= fsyncs) {
    std::fprintf(stderr,
                 "FAIL merge identity: expected 0 < writeouts < fsyncs, got "
                 "%llu writeouts / %llu fsyncs\n",
                 static_cast<unsigned long long>(writeouts),
                 static_cast<unsigned long long>(fsyncs));
    rc = 1;
  }
  uint64_t slowest = 0;
  for (const auto& [tid, ns] : top_level_ns) {
    slowest = std::max(slowest, ns);
  }
  double ratio = r.elapsed_ns > 0 ? static_cast<double>(slowest) /
                                        static_cast<double>(r.elapsed_ns)
                                  : 0.0;
  std::printf("reconciliation: slowest worker top-level spans %llu ns vs elapsed "
              "%llu ns (ratio %.4f)\n",
              static_cast<unsigned long long>(slowest),
              static_cast<unsigned long long>(r.elapsed_ns), ratio);
  if (ratio < 0.95 || ratio > 1.05) {
    std::fprintf(stderr, "FAIL reconciliation identity: ratio %.4f outside 5%%\n",
                 ratio);
    rc = 1;
  }
  std::printf("wrote %s (%llu spans, %llu dropped) — load in Perfetto or "
              "chrome://tracing\n",
              path.c_str(), static_cast<unsigned long long>(bed.ctx()->obs.tracer.SpanCount()),
              static_cast<unsigned long long>(bed.ctx()->obs.tracer.Drops()));
  return rc;
}

// --repeat-check: the PR 6 wobble gate for the posix append cell. PR 6's dominant
// nondeterminism was lane assignment hashing std::thread::id, so which workers
// shared a staging/op-log lane changed every run; RunWorkers now pins each worker
// to lane == worker index (common::ScopedThreadLane), which removed it.
//
// What remains — and is a DOCUMENTED EXCLUSION from bit-identity — is real-time
// scheduling order at shared virtual resources. Background helpers (the staging
// replenisher, the async-relink publisher) and workers contending on the journal's
// ResourceStamp resolve "who waits on whom" in OS arrival order, which virtual time
// cannot pin without a lockstep scheduler. Measured residual wobble on the 8-thread
// cell is up to ~0.6%, quantized to single contention charges (e.g. one 670 ns
// staging-allocation step).
//
// The gate therefore asserts two things:
//   1. A 1-thread cell with background helpers off — every charge lands on the
//      worker's own lane, no cross-thread interaction — is bit-identical. This
//      validates the lane-pinning machinery itself.
//   2. The 8-thread cell as-benched repeats with identical ops/errors and elapsed
//      within 1% (above the observed scheduling residue, well below the several-%
//      PR 6 lane-hash wobble it gates against).
int RepeatCheck() {
  auto run_cell = [](const char* workload, FsKind kind, int threads, bool helpers) {
    splitfs::Options o = ConcurrentOptions();
    if (!helpers) {
      o.replenish_thread = false;  // documented exclusion, see above
      o.async_relink = false;      // documented exclusion, see above
    }
    Testbed bed(kind, 2 * common::kGiB, o);
    return RunWorkload(workload, &bed, threads);
  };
  int rc = 0;

  // One bit-identity cell and one repeatability cell per gated workload:
  //   - append_heavy/posix: the PR 6 lane-hash gate (disjoint files).
  //   - shared_hot_file: the range-lock gate — one file, 8 range-locked writers.
  //     The 1-thread cell runs strict, so the per-range op-log path itself (entry
  //     logging, epoch gate, range stamps) must charge nothing extra solo; the
  //     8-thread cell runs sync, the mode the >=3x acceptance criterion targets.
  struct Gate {
    const char* workload;
    FsKind solo_kind;
    const char* solo_name;
    FsKind hot_kind;
    const char* hot_name;
  };
  const Gate kGates[] = {
      {"append_heavy", FsKind::kSplitPosix, "posix append",
       FsKind::kSplitPosix, "posix append"},
      {"shared_hot_file", FsKind::kSplitStrict, "strict shared-hot-file",
       FsKind::kSplitSync, "sync shared-hot-file"},
  };
  for (const Gate& g : kGates) {
    wl::ParallelResult s1 = run_cell(g.workload, g.solo_kind, 1, /*helpers=*/false);
    wl::ParallelResult s2 = run_cell(g.workload, g.solo_kind, 1, /*helpers=*/false);
    std::printf("repeat-check[1T %s]: run1 %llu ns / %llu ops, run2 %llu ns / %llu "
                "ops\n",
                g.solo_name, static_cast<unsigned long long>(s1.elapsed_ns),
                static_cast<unsigned long long>(s1.ops),
                static_cast<unsigned long long>(s2.elapsed_ns),
                static_cast<unsigned long long>(s2.ops));
    if (s1.elapsed_ns != s2.elapsed_ns || s1.ops != s2.ops ||
        s1.errors != s2.errors) {
      std::fprintf(stderr, "FAIL repeat-check: 1-thread %s cell is not "
                           "bit-identical\n",
                   g.solo_name);
      rc = 1;
    }

    wl::ParallelResult a = run_cell(g.workload, g.hot_kind, 8, /*helpers=*/true);
    wl::ParallelResult b = run_cell(g.workload, g.hot_kind, 8, /*helpers=*/true);
    double drift = a.elapsed_ns > b.elapsed_ns
                       ? static_cast<double>(a.elapsed_ns - b.elapsed_ns) /
                             static_cast<double>(b.elapsed_ns)
                       : static_cast<double>(b.elapsed_ns - a.elapsed_ns) /
                             static_cast<double>(a.elapsed_ns);
    std::printf("repeat-check[8T %s]: run1 %llu ns / %llu ops, run2 %llu ns / %llu "
                "ops (drift %.4f%%)\n",
                g.hot_name, static_cast<unsigned long long>(a.elapsed_ns),
                static_cast<unsigned long long>(a.ops),
                static_cast<unsigned long long>(b.elapsed_ns),
                static_cast<unsigned long long>(b.ops), drift * 100.0);
    if (a.ops != b.ops || a.errors != b.errors || drift > 0.01) {
      std::fprintf(stderr, "FAIL repeat-check: 8-thread %s cell wobbled beyond "
                           "the scheduling-residue bound\n",
                   g.hot_name);
      rc = 1;
    }
  }
  if (rc == 0) {
    std::printf("repeat-check: PASS (1T bit-identical, 8T within bound)\n");
  }
  return rc;
}

// --schema-check: cheap structural validation of the committed artifact — every
// schema_version 2 key the downstream tooling reads must be present.
int SchemaCheck() {
  FILE* f = std::fopen("BENCH_scalability.json", "r");
  if (f == nullptr) {
    std::fprintf(stderr, "FAIL schema-check: BENCH_scalability.json not found\n");
    return 1;
  }
  std::string blob;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    blob.append(buf, n);
  }
  std::fclose(f);
  int rc = 0;
  for (const char* key :
       {"\"schema_version\": 2", "\"threads\"", "\"ops_per_sec\"", "\"latency_ns\"",
        "\"contention_at_8\"", "\"speedup_at_8\"", "\"errors\"", "fsync_storm",
        "shared_hot_file"}) {
    if (blob.find(key) == std::string::npos) {
      std::fprintf(stderr, "FAIL schema-check: missing %s\n", key);
      rc = 1;
    }
  }
  if (rc == 0) {
    std::printf("schema-check: PASS\n");
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool histograms = false;
  bool repeat_check = false;
  bool schema_check = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--histograms") == 0) {
      histograms = true;
    } else if (std::strcmp(argv[i], "--repeat-check") == 0) {
      repeat_check = true;
    } else if (std::strcmp(argv[i], "--schema-check") == 0) {
      schema_check = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    }
  }

  // Check-only invocations want their verdict, not a ten-minute sweep.
  if ((repeat_check || schema_check || !trace_path.empty()) && !json && !histograms) {
    int rc = 0;
    if (!trace_path.empty()) {
      rc |= WriteStormTrace(trace_path);
    }
    if (repeat_check) {
      rc |= RepeatCheck();
    }
    if (schema_check) {
      rc |= SchemaCheck();
    }
    return rc;
  }

  bench::PrintHeader("SplitFS multithreaded scalability (1..16 application threads)",
                     "concurrent U-Split refactor; workloads from §5.2/§5.5/§5.6");

  const FsKind kModes[] = {FsKind::kSplitPosix, FsKind::kSplitSync, FsKind::kSplitStrict};
  const char* kWorkloads[] = {"append_heavy", "read_heavy", "shared_hot_file",
                              "ycsb_a", "ycsb_c"};
  std::vector<Series> all;

  for (const char* workload : kWorkloads) {
    std::printf("\n--- %s ---\n", workload);
    std::printf("%-16s %8s %14s %10s %8s\n", "mode", "threads", "ops/s", "speedup", "errors");
    for (FsKind kind : kModes) {
      Series series;
      series.workload = workload;
      double base = 0;
      for (int threads : kThreadCounts) {
        // Fresh testbed per point: no cross-pollution of staging pools or caches.
        Testbed bed(kind, 2 * common::kGiB, ConcurrentOptions());
        series.mode = bed.fs()->Name() == "SplitFS-POSIX"  ? "posix"
                      : bed.fs()->Name() == "SplitFS-sync" ? "sync"
                                                           : "strict";
        wl::ParallelResult r = RunWorkload(workload, &bed, threads);
        double ops = r.OpsPerSec();
        if (threads == 1) {
          base = ops;
        }
        Cell cell;
        cell.threads = threads;
        cell.ops_per_sec = ops;
        cell.errors = r.errors;
        cell.p50_ns = r.latency.Percentile(0.50);
        cell.p95_ns = r.latency.Percentile(0.95);
        cell.p99_ns = r.latency.Percentile(0.99);
        cell.max_ns = r.latency.Max();
        series.cells.push_back(cell);
        if (threads == 8) {
          series.contention_at_8 = bed.ctx()->obs.ledger.Snapshot();
        }
        std::printf("%-16s %8d %14.0f %9.2fx %8llu\n", bed.fs()->Name().c_str(), threads,
                    ops, base > 0 ? ops / base : 0.0,
                    static_cast<unsigned long long>(r.errors));
        std::fflush(stdout);
      }
      all.push_back(std::move(series));
    }
  }

  // --- fsync storm: threads × commit-interval × journal-size ------------------------
  // Every op fsyncs through the kernel journal on the worker's own lane (sync
  // publish, no intent path), so the sweep isolates what the jbd2 knobs buy: the
  // coalescing window amortizes writeouts across racing fsyncs, and the journal
  // size decides how often commit service stalls in checkpoint writeback (visible
  // as journal.checkpoint in the contention breakdown).
  {
    const uint64_t kIntervalsNs[] = {0, 5'000, 20'000};
    const uint64_t kJournalBlocks[] = {256, 2048};
    std::printf("\n--- fsync_storm (sync mode; 4 KB appends, fsync every op) ---\n");
    std::printf("%-26s %8s %14s %10s %8s\n", "series", "threads", "ops/s", "speedup",
                "errors");
    for (uint64_t jblocks : kJournalBlocks) {
      for (uint64_t interval : kIntervalsNs) {
        Series series;
        series.workload = "fsync_storm_j" + std::to_string(jblocks) + "_i" +
                          std::to_string(interval) + "ns";
        series.mode = "sync";
        double base = 0;
        for (int threads : kThreadCounts) {
          ext4sim::Ext4Options eo;
          eo.journal_blocks = jblocks;
          eo.commit_interval_ns = interval;
          Testbed bed(FsKind::kSplitSync, 2 * common::kGiB, StormOptions(), eo);
          wl::ParallelResult r = RunFsyncStorm(&bed, threads);
          double ops = r.OpsPerSec();
          if (threads == 1) {
            base = ops;
          }
          Cell cell;
          cell.threads = threads;
          cell.ops_per_sec = ops;
          cell.errors = r.errors;
          cell.p50_ns = r.latency.Percentile(0.50);
          cell.p95_ns = r.latency.Percentile(0.95);
          cell.p99_ns = r.latency.Percentile(0.99);
          cell.max_ns = r.latency.Max();
          series.cells.push_back(cell);
          if (threads == 8) {
            series.contention_at_8 = bed.ctx()->obs.ledger.Snapshot();
          }
          std::printf("%-26s %8d %14.0f %9.2fx %8llu\n", series.workload.c_str(),
                      threads, ops, base > 0 ? ops / base : 0.0,
                      static_cast<unsigned long long>(r.errors));
          std::fflush(stdout);
        }
        all.push_back(std::move(series));
      }
    }
  }

  if (histograms) {
    std::printf("\n--- per-op latency (virtual ns; log-bucket upper bounds) ---\n");
    std::printf("%-14s %-8s %8s %10s %10s %10s %10s\n", "workload", "mode", "threads",
                "p50", "p95", "p99", "max");
    for (const Series& s : all) {
      for (const Cell& c : s.cells) {
        std::printf("%-14s %-8s %8d %10llu %10llu %10llu %10llu\n", s.workload.c_str(), s.mode.c_str(),
                    c.threads, static_cast<unsigned long long>(c.p50_ns),
                    static_cast<unsigned long long>(c.p95_ns),
                    static_cast<unsigned long long>(c.p99_ns),
                    static_cast<unsigned long long>(c.max_ns));
      }
    }
    std::printf("\n--- contention at 8 threads (virtual-time fast-forwards by resource) ---\n");
    std::printf("%-14s %-8s %-28s %8s %14s %12s\n", "workload", "mode", "resource",
                "waits", "waited_ns", "max_wait_ns");
    for (const Series& s : all) {
      if (s.contention_at_8.empty()) {
        std::printf("%-14s %-8s %-28s %8s %14s %12s\n", s.workload.c_str(),
                    s.mode.c_str(), "(none)", "-", "-", "-");
        continue;
      }
      for (const auto& [resource, e] : s.contention_at_8) {
        std::printf("%-14s %-8s %-28s %8llu %14llu %12llu\n", s.workload.c_str(), s.mode.c_str(),
                    resource.c_str(), static_cast<unsigned long long>(e.waits),
                    static_cast<unsigned long long>(e.waited_ns),
                    static_cast<unsigned long long>(e.max_wait_ns));
      }
    }
  }

  if (json) {
    FILE* f = std::fopen("BENCH_scalability.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_scalability.json\n");
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"scalability\",\n  \"schema_version\": 2,\n");
    std::fprintf(f, "  \"threads\": [1, 2, 4, 8, 16],\n");
    std::fprintf(f, "  \"time_model\": \"simulated per-thread lanes (max over workers)\",\n");
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < all.size(); ++i) {
      const Series& s = all[i];
      std::fprintf(f, "    {\"workload\": \"%s\", \"mode\": \"%s\", \"ops_per_sec\": {",
                   s.workload.c_str(), s.mode.c_str());
      for (size_t c = 0; c < s.cells.size(); ++c) {
        std::fprintf(f, "%s\"%d\": %.0f", c == 0 ? "" : ", ", s.cells[c].threads,
                     s.cells[c].ops_per_sec);
      }
      std::fprintf(f, "},\n     \"latency_ns\": {");
      for (size_t c = 0; c < s.cells.size(); ++c) {
        const Cell& cell = s.cells[c];
        std::fprintf(f,
                     "%s\"%d\": {\"p50\": %llu, \"p95\": %llu, \"p99\": %llu, "
                     "\"max\": %llu}",
                     c == 0 ? "" : ", ", cell.threads,
                     static_cast<unsigned long long>(cell.p50_ns),
                     static_cast<unsigned long long>(cell.p95_ns),
                     static_cast<unsigned long long>(cell.p99_ns),
                     static_cast<unsigned long long>(cell.max_ns));
      }
      std::fprintf(f, "},\n     \"contention_at_8\": [");
      for (size_t c = 0; c < s.contention_at_8.size(); ++c) {
        const auto& [resource, e] = s.contention_at_8[c];
        std::fprintf(f,
                     "%s{\"resource\": \"%s\", \"waits\": %llu, \"waited_ns\": %llu, "
                     "\"max_wait_ns\": %llu}",
                     c == 0 ? "" : ", ", resource.c_str(),
                     static_cast<unsigned long long>(e.waits),
                     static_cast<unsigned long long>(e.waited_ns),
                     static_cast<unsigned long long>(e.max_wait_ns));
      }
      double base = s.cells.empty() ? 0 : s.cells[0].ops_per_sec;
      double at8 = 0;
      uint64_t errors = 0;
      for (const Cell& c : s.cells) {
        if (c.threads == 8) {
          at8 = c.ops_per_sec;
        }
        errors += c.errors;
      }
      std::fprintf(f, "],\n     \"speedup_at_8\": %.2f, \"errors\": %llu}%s\n",
                   base > 0 ? at8 / base : 0.0, static_cast<unsigned long long>(errors),
                   i + 1 == all.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_scalability.json\n");
  }

  if (!trace_path.empty()) {
    int rc = WriteStormTrace(trace_path);
    if (rc != 0) {
      return rc;
    }
  }
  return 0;
}
