// Multithreaded scalability of the concurrent U-Split: sweeps 1..16 application
// threads over three workloads per consistency mode and reports aggregate ops/s.
//
// Not a figure from the paper — the paper's evaluation is single-application — but
// the workloads are its §5 staples (appends+fsync, random reads, YCSB-A over the
// LevelDB-shaped store). Time is the simulated clock's per-thread lane model: each
// worker accrues its own virtual timeline; elapsed = slowest worker; code serialized
// by real locks (K-Split's kernel lock, contended file ranges, the staging slow path)
// fast-forwards waiters, so the reported scaling honestly reflects the lock
// granularity of the implementation rather than the host's core count.
//
//   bench_scalability [--json]    # --json additionally writes BENCH_scalability.json
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/workloads/parallel.h"

namespace {

using bench::FsKind;
using bench::Testbed;

constexpr int kThreadCounts[] = {1, 2, 4, 8, 16};

struct Cell {
  int threads = 0;
  double ops_per_sec = 0;
  uint64_t errors = 0;
};

struct Series {
  const char* workload;
  const char* mode;
  std::vector<Cell> cells;
};

splitfs::Options ConcurrentOptions() {
  splitfs::Options o;
  // Real §3.5 replenisher thread: staging files are pre-created off the workers'
  // critical path. (Deterministic single-threaded tests keep it off; here the whole
  // point is concurrency.)
  o.replenish_thread = true;
  // Async relink publication: fsync returns once the relink intent is fenced; the
  // relink ioctls and their journal commit leave the workers' critical path. The
  // deterministic inline publisher (cost rewound, same accounting as the real
  // thread) keeps every cell reproducible run-to-run; the real publisher thread is
  // exercised under TSan by the concurrency test suite.
  o.async_relink = true;
  // Pre-size the pool for the 16-thread sweep point (16 lanes x one 16 MiB active
  // file): pool exhaustion mid-run would serialize every worker behind foreground
  // staging-file creation, which is exactly the §3.5 problem pre-creation solves.
  o.num_staging_files = 18;
  o.staging_file_bytes = 16 * common::kMiB;
  o.oplog_bytes = 16 * common::kMiB;  // 256 K entries; ample for every sweep point.
  return o;
}

wl::ParallelResult RunWorkload(const char* workload, Testbed* bed, int threads) {
  vfs::FileSystem* fs = bed->fs();
  sim::Clock* clock = &bed->ctx()->clock;
  if (std::strcmp(workload, "append_heavy") == 0) {
    // Disjoint-file appends, 4 KB ops, fsync every 256 ops: the acceptance workload.
    return wl::RunParallelAppend(fs, clock, threads, "/scal-append",
                                 /*bytes_per_thread=*/8 * common::kMiB,
                                 /*op_bytes=*/4096, /*fsync_every=*/256);
  }
  if (std::strcmp(workload, "read_heavy") == 0) {
    return wl::RunParallelRead(fs, clock, threads, "/scal-read",
                               /*file_bytes=*/8 * common::kMiB, /*op_bytes=*/4096,
                               /*ops_per_thread=*/4000, /*seed=*/42);
  }
  if (std::strcmp(workload, "ycsb_c") == 0) {
    // Read-heavy YCSB-C phase: 100% zipfian gets against pre-flushed SSTables —
    // every get walks U-Split's pread path and its lock-free mmap translation.
    return wl::RunParallelYcsbC(fs, clock, threads, "/scal-ycsbc",
                                /*records_per_thread=*/1000,
                                /*ops_per_thread=*/3000, /*seed=*/42);
  }
  return wl::RunParallelYcsbA(fs, clock, threads, "/scal-ycsb",
                              /*records_per_thread=*/1000, /*ops_per_thread=*/2000,
                              /*seed=*/42);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    }
  }

  bench::PrintHeader("SplitFS multithreaded scalability (1..16 application threads)",
                     "concurrent U-Split refactor; workloads from §5.2/§5.5/§5.6");

  const FsKind kModes[] = {FsKind::kSplitPosix, FsKind::kSplitSync, FsKind::kSplitStrict};
  const char* kWorkloads[] = {"append_heavy", "read_heavy", "ycsb_a", "ycsb_c"};
  std::vector<Series> all;

  for (const char* workload : kWorkloads) {
    std::printf("\n--- %s ---\n", workload);
    std::printf("%-16s %8s %14s %10s %8s\n", "mode", "threads", "ops/s", "speedup", "errors");
    for (FsKind kind : kModes) {
      Series series;
      series.workload = workload;
      double base = 0;
      for (int threads : kThreadCounts) {
        // Fresh testbed per point: no cross-pollution of staging pools or caches.
        Testbed bed(kind, 2 * common::kGiB, ConcurrentOptions());
        series.mode = bed.fs()->Name() == "SplitFS-POSIX"  ? "posix"
                      : bed.fs()->Name() == "SplitFS-sync" ? "sync"
                                                           : "strict";
        wl::ParallelResult r = RunWorkload(workload, &bed, threads);
        double ops = r.OpsPerSec();
        if (threads == 1) {
          base = ops;
        }
        series.cells.push_back({threads, ops, r.errors});
        std::printf("%-16s %8d %14.0f %9.2fx %8llu\n", bed.fs()->Name().c_str(), threads,
                    ops, base > 0 ? ops / base : 0.0,
                    static_cast<unsigned long long>(r.errors));
        std::fflush(stdout);
      }
      all.push_back(std::move(series));
    }
  }

  if (json) {
    FILE* f = std::fopen("BENCH_scalability.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_scalability.json\n");
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"scalability\",\n  \"threads\": [1, 2, 4, 8, 16],\n");
    std::fprintf(f, "  \"time_model\": \"simulated per-thread lanes (max over workers)\",\n");
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < all.size(); ++i) {
      const Series& s = all[i];
      std::fprintf(f, "    {\"workload\": \"%s\", \"mode\": \"%s\", \"ops_per_sec\": {",
                   s.workload, s.mode);
      for (size_t c = 0; c < s.cells.size(); ++c) {
        std::fprintf(f, "%s\"%d\": %.0f", c == 0 ? "" : ", ", s.cells[c].threads,
                     s.cells[c].ops_per_sec);
      }
      double base = s.cells.empty() ? 0 : s.cells[0].ops_per_sec;
      double at8 = 0;
      uint64_t errors = 0;
      for (const Cell& c : s.cells) {
        if (c.threads == 8) {
          at8 = c.ops_per_sec;
        }
        errors += c.errors;
      }
      std::fprintf(f, "}, \"speedup_at_8\": %.2f, \"errors\": %llu}%s\n",
                   base > 0 ? at8 / base : 0.0, static_cast<unsigned long long>(errors),
                   i + 1 == all.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_scalability.json\n");
  }
  return 0;
}
