// Figure 3: contribution of each SplitFS technique, on two write-intensive
// microbenchmarks (sequential 4 KB overwrites; 4 KB appends), fsync every 10 ops.
//
// Configurations, cumulative left to right (paper, normalized to ext4 DAX):
//   ext4-DAX            baseline (1.0x)
//   split               data ops in user space, appends still via kernel
//   +staging            appends buffered in staging files, copied on fsync (~2x)
//   +relink             staged appends relinked, zero-copy (~5x on appends;
//                       sequential overwrites gain ~2x from the split alone).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/workloads/microbench.h"

namespace {

struct Config {
  std::string name;
  bool is_ext4;
  bool staging;
  bool relink;
};

double RunAppends(const Config& c) {
  splitfs::Options o;
  o.enable_staging = c.staging;
  o.enable_relink = c.relink;
  bench::Testbed bed(c.is_ext4 ? bench::FsKind::kExt4Dax : bench::FsKind::kSplitPosix,
                     4 * common::kGiB, o);
  wl::IoResult r = wl::RunAppend(bed.fs(), &bed.ctx()->clock, "/f3-append",
                                 128 * common::kMiB, common::kBlockSize,
                                 /*fsync_every=*/10);
  return r.MopsPerSec();
}

double RunOverwrites(const Config& c) {
  splitfs::Options o;
  o.enable_staging = c.staging;
  o.enable_relink = c.relink;
  bench::Testbed bed(c.is_ext4 ? bench::FsKind::kExt4Dax : bench::FsKind::kSplitPosix,
                     4 * common::kGiB, o);
  wl::PrepareFile(bed.fs(), "/f3-ow", 128 * common::kMiB);
  wl::IoResult r = wl::RunSeqOverwrite(bed.fs(), &bed.ctx()->clock, "/f3-ow",
                                       128 * common::kMiB, common::kBlockSize,
                                       /*fsync_every=*/10);
  return r.MopsPerSec();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 3: SplitFS technique breakdown (throughput, fsync every 10 ops)",
      "SplitFS (SOSP'19) Figure 3");
  const std::vector<Config> configs = {
      {"ext4-DAX", true, false, false},
      {"split", false, false, false},
      {"split+staging", false, true, false},
      {"split+staging+relink", false, true, true},
  };
  std::printf("%-22s %18s %12s %18s %12s\n", "config", "overwrite Mops/s", "(vs ext4)",
              "append Mops/s", "(vs ext4)");
  double ow_base = 0, ap_base = 0;
  for (const auto& c : configs) {
    double ow = RunOverwrites(c);
    double ap = RunAppends(c);
    if (c.is_ext4) {
      ow_base = ow;
      ap_base = ap;
    }
    std::printf("%-22s %18.3f %11.2fx %18.3f %11.2fx\n", c.name.c_str(), ow,
                ow / ow_base, ap, ap / ap_base);
  }
  std::printf("\npaper shape: overwrites ~2x from the split architecture alone;\n"
              "appends ~2x from staging and ~5x once relink removes the fsync copy.\n");
  return 0;
}
