// Table 2: PM device performance characteristics (Izraelevitz et al. numbers the
// cost model is calibrated against). This bench measures the *emulated* device and
// checks it reproduces the configured latencies and bandwidths.
//
// Paper values: seq read latency 169 ns, random read latency 305 ns,
// store+flush+fence 91 ns, read BW 39.4 GB/s (device aggregate; the model uses the
// single-thread effective rate), write BW 13.9 GB/s aggregate.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"

int main() {
  bench::PrintHeader("Table 2: emulated PM device characteristics",
                     "SplitFS (SOSP'19) Table 2 (from Izraelevitz et al.)");
  sim::Context ctx;
  pmem::Device dev(&ctx, 1 * common::kGiB);
  std::vector<uint8_t> buf(4096, 1);

  // Sequential read latency: first cache line of a fresh run.
  uint64_t t0 = ctx.clock.Now();
  dev.Load(0, buf.data(), 64, /*sequential=*/true, sim::PmReadKind::kMetadata);
  uint64_t seq_lat = ctx.clock.Now() - t0 -
                     static_cast<uint64_t>(64 * ctx.model.pm_read_ns_per_byte);
  t0 = ctx.clock.Now();
  dev.Load(512 * common::kMiB, buf.data(), 64, /*sequential=*/false, sim::PmReadKind::kMetadata);
  uint64_t rand_lat = ctx.clock.Now() - t0 -
                      static_cast<uint64_t>(64 * ctx.model.pm_read_ns_per_byte);

  // Store + fence persistence cost (64 B line).
  t0 = ctx.clock.Now();
  dev.StoreNt(0, buf.data(), 64, sim::PmWriteKind::kUserData);
  uint64_t store_fence = ctx.clock.Now() - t0 -
                         static_cast<uint64_t>(64 * ctx.model.pm_write_ns_per_byte);

  // Streaming bandwidths over 256 MB.
  const uint64_t kStream = 256 * common::kMiB;
  std::vector<uint8_t> big(1 * common::kMiB, 2);
  t0 = ctx.clock.Now();
  for (uint64_t off = 0; off < kStream; off += big.size()) {
    dev.Load(off, big.data(), big.size(), true, sim::PmReadKind::kMetadata);
  }
  double read_gbps = static_cast<double>(kStream) / static_cast<double>(ctx.clock.Now() - t0);
  t0 = ctx.clock.Now();
  for (uint64_t off = 0; off < kStream; off += big.size()) {
    dev.StoreNt(off, big.data(), big.size(), sim::PmWriteKind::kUserData);
  }
  double write_gbps = static_cast<double>(kStream) / static_cast<double>(ctx.clock.Now() - t0);

  std::printf("%-32s %10s | %s\n", "Property", "measured", "paper (device aggregate)");
  std::printf("%-32s %7llu ns | 169 ns\n", "Sequential read latency",
              static_cast<unsigned long long>(seq_lat));
  std::printf("%-32s %7llu ns | 305 ns\n", "Random read latency",
              static_cast<unsigned long long>(rand_lat));
  std::printf("%-32s %7llu ns | 91 ns\n", "Store + flush + fence",
              static_cast<unsigned long long>(store_fence));
  std::printf("%-32s %7.1f GB/s | 39.4 GB/s aggregate (model: 1-thread effective)\n",
              "Read bandwidth", read_gbps);
  std::printf("%-32s %7.1f GB/s | 13.9 GB/s aggregate (model: 1-thread effective)\n",
              "Write bandwidth", write_gbps);
  std::printf("\n4 KB nt-write end-to-end (Table 1 anchor, expect ~671 ns): ");
  uint64_t t1 = ctx.clock.Now();
  dev.StoreNt(0, buf.data(), 4096, sim::PmWriteKind::kUserData);
  std::printf("%llu ns\n", static_cast<unsigned long long>(ctx.clock.Now() - t1));
  return 0;
}
