// Figure 6: end-to-end application performance per guarantee level.
//   Data-intensive: YCSB A-F on the LevelDB-like store (Kops/s), Redis-like SET
//   (Kops/s), TPC-C on the SQLite-like store (Ktxns/s). Higher is better.
//   Metadata-heavy: git add/commit rounds, tar, rsync (seconds). Lower is better.
//
// Paper shape: SplitFS beats every same-guarantee baseline on all data-intensive
// workloads (up to 2.7x, biggest on write-heavy A/LoadA/Redis); on git/tar/rsync it
// loses by at most ~13-15%.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/aof_store.h"
#include "src/workloads/tpcc_lite.h"
#include "src/workloads/utilities.h"
#include "src/workloads/ycsb.h"

namespace {

struct AppRow {
  std::string name;
  double value = 0;  // Kops/s for data apps; seconds for utilities.
};

std::vector<AppRow> MeasureData(bench::FsKind kind) {
  std::vector<AppRow> rows;
  // YCSB on the LSM store.
  {
    bench::Testbed bed(kind);
    apps::KvLsmOptions kopts;
    kopts.clock = &bed.ctx()->clock;
    apps::KvLsm store(bed.fs(), "/ycsb", kopts);
    wl::YcsbConfig cfg;
    cfg.record_count = 20000;
    cfg.op_count = 20000;
    wl::Ycsb ycsb(&store, cfg);
    rows.push_back({"YCSB-LoadA", ycsb.Load(&bed.ctx()->clock).Kops()});
    for (auto w : {wl::YcsbWorkload::kA, wl::YcsbWorkload::kB, wl::YcsbWorkload::kC,
                   wl::YcsbWorkload::kD, wl::YcsbWorkload::kF}) {
      rows.push_back({std::string("YCSB-") + wl::YcsbName(w),
                      ycsb.Run(w, &bed.ctx()->clock).Kops()});
    }
  }
  // YCSB E (scans) on a smaller keyspace: scans are expensive.
  {
    bench::Testbed bed(kind);
    apps::KvLsmOptions kopts;
    kopts.clock = &bed.ctx()->clock;
    apps::KvLsm store(bed.fs(), "/ycsbe", kopts);
    wl::YcsbConfig cfg;
    cfg.record_count = 4000;
    cfg.op_count = 500;
    wl::Ycsb ycsb(&store, cfg);
    ycsb.Load(&bed.ctx()->clock);
    rows.push_back(
        {"YCSB-RunE", ycsb.Run(wl::YcsbWorkload::kE, &bed.ctx()->clock).Kops()});
  }
  // Redis-like SET workload: 100% writes, AOF mode (paper: 1M SETs; scaled).
  {
    bench::Testbed bed(kind);
    apps::AofOptions aopts;
    aopts.clock = &bed.ctx()->clock;
    apps::AofStore redis(bed.fs(), "/redis", aopts);
    common::Rng rng(5);
    uint64_t t0 = bed.ctx()->clock.Now();
    const uint64_t kSets = 50000;
    for (uint64_t i = 0; i < kSets; ++i) {
      std::string key = "key" + std::to_string(rng.Uniform(100000));
      redis.Set(key, std::string(64, static_cast<char>('a' + i % 26)));
    }
    uint64_t ns = bed.ctx()->clock.Now() - t0;
    rows.push_back({"Redis-SET", static_cast<double>(kSets) * 1e6 / ns});
  }
  // TPC-C.
  {
    bench::Testbed bed(kind);
    apps::WalDb db(bed.fs(), "/tpcc.db");
    wl::TpccLite tpcc(&db, {});
    tpcc.Load(&bed.ctx()->clock);
    rows.push_back({"SQLite-TPCC", tpcc.Run(4000, &bed.ctx()->clock).Ktps()});
  }
  return rows;
}

std::vector<AppRow> MeasureUtilities(bench::FsKind kind) {
  std::vector<AppRow> rows;
  wl::TreeSpec spec;
  spec.dirs = 24;
  spec.files_per_dir = 48;
  {
    bench::Testbed bed(kind);
    wl::BuildTree(bed.fs(), &bed.ctx()->clock, "/src", spec);
    rows.push_back({"git", wl::RunGit(bed.fs(), &bed.ctx()->clock, "/src", "/git", spec,
                                      /*rounds=*/10)
                               .Seconds()});
  }
  {
    bench::Testbed bed(kind);
    wl::BuildTree(bed.fs(), &bed.ctx()->clock, "/src", spec);
    rows.push_back({"tar", wl::RunTar(bed.fs(), &bed.ctx()->clock, "/src",
                                      "/archive.tar", spec)
                               .Seconds()});
  }
  {
    bench::Testbed bed(kind);
    wl::BuildTree(bed.fs(), &bed.ctx()->clock, "/src", spec);
    rows.push_back({"rsync", wl::RunRsync(bed.fs(), &bed.ctx()->clock, "/src", "/dst",
                                          spec)
                                 .Seconds()});
  }
  return rows;
}

void PrintGroup(const char* title, const std::vector<bench::FsKind>& kinds,
                bool utilities) {
  std::printf("\n--- %s ---\n", title);
  std::vector<std::vector<AppRow>> all;
  for (auto k : kinds) {
    all.push_back(utilities ? MeasureUtilities(k) : MeasureData(k));
  }
  std::printf("%-12s", utilities ? "utility(s)" : "app(Kops/s)");
  for (auto k : kinds) {
    std::printf(" %14s", bench::FsKindName(k));
  }
  std::printf("\n");
  for (size_t r = 0; r < all[0].size(); ++r) {
    std::printf("%-12s", all[0][r].name.c_str());
    for (size_t k = 0; k < kinds.size(); ++k) {
      std::printf(" %14.3f", all[k][r].value);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 6: application performance by guarantee level",
                     "SplitFS (SOSP'19) Figure 6");
  PrintGroup("POSIX guarantees (throughput; higher is better)",
             {bench::FsKind::kExt4Dax, bench::FsKind::kSplitPosix}, false);
  PrintGroup("sync guarantees",
             {bench::FsKind::kPmfs, bench::FsKind::kNovaRelaxed,
              bench::FsKind::kSplitSync},
             false);
  PrintGroup("strict guarantees",
             {bench::FsKind::kNovaStrict, bench::FsKind::kSplitStrict}, false);
  PrintGroup("metadata-heavy utilities, POSIX group (runtime seconds; lower is better)",
             {bench::FsKind::kExt4Dax, bench::FsKind::kSplitPosix}, true);
  PrintGroup("metadata-heavy utilities, strict group",
             {bench::FsKind::kNovaStrict, bench::FsKind::kSplitStrict}, true);
  std::printf("\npaper shape: SplitFS wins every data-intensive workload in its\n"
              "guarantee class (up to 2.7x on write-heavy ones) and degrades <= ~15%%\n"
              "on git/tar/rsync.\n");
  return 0;
}
