// Tenant router: thousands of namespaces over shared service pools with per-tenant
// QoS.
//
// One TenantRouter mounts N namespace-rooted SplitFs instances — each with its own
// Options (consistency mode, staging sizing, async relink) — behind a single
// vfs::FileSystem entry point. Paths route by their first component ("/db/x" goes
// to tenant "db", which serves the full path, so tenants stay disjoint subtrees of
// the shared K-Split namespace); descriptors route through a router-level fd table
// that maps each handed-out fd to its tenant and inner descriptor, and goes stale
// (EBADF) the moment the tenant unmounts.
//
// Service threads are the point: a per-instance publisher + replenisher thread
// model burns 2N threads for N tenants. The router owns three bounded pools — one
// publisher pool, one staging-replenisher pool, one journal-commit service — and
// every mounted instance registers work with them instead of spawning threads, so
// 64 tenants (or thousands) run on ServiceThreads() == 3 by default.
//
// QoS: per-tenant token buckets pace the two shared amplifiers — staging-file
// consumption and foreground journal commits — on the tenant's own virtual
// timeline. A strict-mode tenant's fsync storm then pays its own throttle waits
// (visible in the contention ledger as tenant.<id>.journal_throttle /
// tenant.<id>.staging_throttle) instead of starving a posix-mode neighbor.
// Zero rates mean unlimited.
//
// Determinism caveat: shared pool workers interleave tenants' background publishes
// in real-time arrival order, exactly like the private publisher thread they
// replace. Crash cells that need a deterministic store sequence run with
// RouterOptions::journal_service off and publishers paused, and drain through
// DrainAllPublishes() on the test thread.
#ifndef SRC_TENANT_TENANT_ROUTER_H_
#define SRC_TENANT_TENANT_ROUTER_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/service_pool.h"
#include "src/core/split_fs.h"
#include "src/ext4/ext4_dax.h"
#include "src/sim/token_bucket.h"
#include "src/vfs/file_system.h"

namespace tenant {

// Per-tenant configuration: the instance's own SplitFS options plus its QoS rates.
struct TenantOptions {
  splitfs::Options fs;
  // Journal-commit credits per second of simulated time (foreground commits:
  // fsync, synchronous metadata). 0 = unlimited.
  double journal_credits_per_sec = 0.0;
  double journal_credit_burst = 1.0;
  // Staging-file tokens per second of simulated time (one per staging file a lane
  // refills with). 0 = unlimited.
  double staging_tokens_per_sec = 0.0;
  double staging_token_burst = 1.0;
};

struct RouterOptions {
  int publisher_threads = 1;
  int replenisher_threads = 1;
  // Route the shared kernel journal's commits through a one-thread commit service
  // (callers sleep in log_wait_commit while the worker seals + writes out). Off for
  // deterministic crash cells, which need every store on the driving thread.
  bool journal_service = true;
};

class TenantRouter : public vfs::FileSystem {
 public:
  explicit TenantRouter(ext4sim::Ext4Dax* kfs, RouterOptions ropts = {});
  ~TenantRouter() override;

  TenantRouter(const TenantRouter&) = delete;
  TenantRouter& operator=(const TenantRouter&) = delete;

  // Mounts `tenant_id` (one path component, no '/') as the subtree "/<tenant_id>".
  // Creates the tenant root directory, constructs the SplitFs instance wired to the
  // shared pools and its QoS buckets, and registers the tenant.<id>.* gauges.
  // Returns 0, -EEXIST (already mounted), or -EINVAL (bad id).
  int Mount(const std::string& tenant_id, const TenantOptions& topts);

  // Unmounts a tenant: drains its queued publishes through the calling thread
  // (never a destructor — a crash signal must be catchable here), closes its
  // router fds, deregisters its gauges, and tears the instance down. Returns 0 or
  // -ENOENT.
  int Unmount(const std::string& tenant_id);

  bool IsMounted(const std::string& tenant_id) const;
  size_t TenantCount() const;
  // Shared service threads backing every mounted tenant.
  int ServiceThreads() const;
  // The mounted instance (introspection / tests); nullptr when not mounted. The
  // pointer is owned by the router and dies at Unmount.
  splitfs::SplitFs* tenant_fs(const std::string& tenant_id) const;
  // Quiesces every tenant's publish queue on the calling thread (tenant churn and
  // crash cells: a cross-tenant drain whose stores land on this thread).
  void DrainAllPublishes();

  std::string Name() const override;

  // --- vfs::FileSystem: path ops route by first component, fd ops by table -------
  int Open(const std::string& path, int flags) override;
  int Close(int fd) override;
  int Unlink(const std::string& path) override;
  int Rename(const std::string& from, const std::string& to) override;
  ssize_t Pread(int fd, void* buf, uint64_t n, uint64_t off) override;
  ssize_t Pwrite(int fd, const void* buf, uint64_t n, uint64_t off) override;
  ssize_t Read(int fd, void* buf, uint64_t n) override;
  ssize_t Write(int fd, const void* buf, uint64_t n) override;
  int64_t Lseek(int fd, int64_t off, vfs::Whence whence) override;
  int Fsync(int fd) override;
  int Ftruncate(int fd, uint64_t size) override;
  int Fallocate(int fd, uint64_t off, uint64_t len, bool keep_size) override;
  int Stat(const std::string& path, vfs::StatBuf* out) override;
  int Fstat(int fd, vfs::StatBuf* out) override;
  int Mkdir(const std::string& path) override;
  int Rmdir(const std::string& path) override;
  int ReadDir(const std::string& path, std::vector<std::string>* names) override;
  // Remounts every tenant's state from its durable artifacts (crash recovery).
  int Recover() override;

 private:
  struct Tenant {
    std::string id;
    // Buckets are declared before the instance: the instance (destroyed first)
    // borrows them through Services.
    std::unique_ptr<sim::TokenBucket> staging_tokens;
    std::unique_ptr<sim::TokenBucket> journal_credits;
    std::unique_ptr<splitfs::SplitFs> fs;
  };

  // First path component of "/<id>/..." (or "/<id>"), empty on malformed paths.
  static std::string TenantIdOf(const std::string& path);
  std::shared_ptr<Tenant> FindTenant(const std::string& id) const;
  std::shared_ptr<Tenant> RoutePath(const std::string& path) const;
  // Resolves a router fd; returns the tenant and sets *inner_fd. Null on EBADF.
  std::shared_ptr<Tenant> RouteFd(int fd, int* inner_fd) const;

  ext4sim::Ext4Dax* kfs_;
  sim::Context* ctx_;
  RouterOptions ropts_;

  // Shared bounded service pools (the <= 3 threads serving every tenant).
  common::ServicePool publisher_pool_;
  common::ServicePool replenisher_pool_;
  std::unique_ptr<common::ServicePool> journal_pool_;  // When journal_service.

  mutable std::shared_mutex tenants_mu_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;

  struct FdEntry {
    std::shared_ptr<Tenant> tenant;
    int inner_fd = -1;
  };
  mutable std::shared_mutex fds_mu_;
  std::unordered_map<int, FdEntry> fds_;
  int next_fd_ = 3;  // Guarded by fds_mu_.
};

}  // namespace tenant

#endif  // SRC_TENANT_TENANT_ROUTER_H_
