#include "src/tenant/tenant_router.h"

#include <utility>

#include "src/ext4/journal.h"
#include "src/obs/obs.h"

namespace tenant {

TenantRouter::TenantRouter(ext4sim::Ext4Dax* kfs, RouterOptions ropts)
    : kfs_(kfs),
      ctx_(kfs->context()),
      ropts_(ropts),
      publisher_pool_("tenant.publishers", ropts.publisher_threads),
      replenisher_pool_("tenant.replenishers", ropts.replenisher_threads) {
  if (ropts_.journal_service) {
    journal_pool_ = std::make_unique<common::ServicePool>("tenant.journal", 1);
    kfs_->journal_for_test()->SetServicePool(journal_pool_.get());
  }
}

TenantRouter::~TenantRouter() {
  // Tear tenants down while the pools are still alive: each instance's teardown
  // drains its registered passes (StopPublisher -> pool Drain). Gauges read
  // through tenant state, so they go first.
  {
    std::unique_lock<std::shared_mutex> tl(tenants_mu_);
    for (auto& [id, t] : tenants_) {
      ctx_->obs.metrics.DeregisterGauges("tenant." + id + ".");
      (void)t;
    }
    {
      std::unique_lock<std::shared_mutex> fl(fds_mu_);
      fds_.clear();
    }
    tenants_.clear();
  }
  // Detach the journal commit service (drains it) before the pool is destroyed.
  if (journal_pool_ != nullptr) {
    kfs_->journal_for_test()->SetServicePool(nullptr);
  }
}

std::string TenantRouter::Name() const { return "TenantRouter"; }

int TenantRouter::ServiceThreads() const {
  return publisher_pool_.threads() + replenisher_pool_.threads() +
         (journal_pool_ != nullptr ? journal_pool_->threads() : 0);
}

std::string TenantRouter::TenantIdOf(const std::string& path) {
  if (path.size() < 2 || path[0] != '/') {
    return {};
  }
  size_t slash = path.find('/', 1);
  return path.substr(1, slash == std::string::npos ? std::string::npos : slash - 1);
}

std::shared_ptr<TenantRouter::Tenant> TenantRouter::FindTenant(
    const std::string& id) const {
  std::shared_lock<std::shared_mutex> tl(tenants_mu_);
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second;
}

std::shared_ptr<TenantRouter::Tenant> TenantRouter::RoutePath(
    const std::string& path) const {
  return FindTenant(TenantIdOf(path));
}

std::shared_ptr<TenantRouter::Tenant> TenantRouter::RouteFd(int fd,
                                                            int* inner_fd) const {
  std::shared_lock<std::shared_mutex> fl(fds_mu_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return nullptr;
  }
  *inner_fd = it->second.inner_fd;
  return it->second.tenant;
}

int TenantRouter::Mount(const std::string& tenant_id, const TenantOptions& topts) {
  if (tenant_id.empty() || tenant_id.find('/') != std::string::npos) {
    return -EINVAL;
  }
  if (IsMounted(tenant_id)) {
    return -EEXIST;
  }
  auto t = std::make_shared<Tenant>();
  t->id = tenant_id;
  if (topts.staging_tokens_per_sec > 0.0) {
    t->staging_tokens = std::make_unique<sim::TokenBucket>(
        topts.staging_tokens_per_sec, topts.staging_token_burst);
  }
  if (topts.journal_credits_per_sec > 0.0) {
    t->journal_credits = std::make_unique<sim::TokenBucket>(
        topts.journal_credits_per_sec, topts.journal_credit_burst);
  }
  splitfs::Services svcs;
  svcs.publisher_pool = &publisher_pool_;
  svcs.replenisher_pool = &replenisher_pool_;
  svcs.staging_tokens = t->staging_tokens.get();
  svcs.journal_credits = t->journal_credits.get();

  // The tenant's namespace root. Idempotent; a remount after a crash finds it.
  kfs_->Mkdir("/" + tenant_id);
  t->fs = std::make_unique<splitfs::SplitFs>(kfs_, topts.fs, tenant_id, svcs);

  {
    std::unique_lock<std::shared_mutex> tl(tenants_mu_);
    auto [it, inserted] = tenants_.emplace(tenant_id, t);
    if (!inserted) {
      return -EEXIST;  // Lost a mount race; the constructed instance unwinds.
    }
  }
  obs::MetricsRegistry* m = &ctx_->obs.metrics;
  sim::TokenBucket* jc = t->journal_credits.get();
  sim::TokenBucket* st = t->staging_tokens.get();
  splitfs::SplitFs* fs = t->fs.get();
  m->RegisterGauge("tenant." + tenant_id + ".journal_credits", [jc]() -> uint64_t {
    return jc == nullptr ? 0 : static_cast<uint64_t>(jc->Available());
  });
  m->RegisterGauge("tenant." + tenant_id + ".staging_tokens", [st]() -> uint64_t {
    return st == nullptr ? 0 : static_cast<uint64_t>(st->Available());
  });
  m->RegisterGauge("tenant." + tenant_id + ".publish_queue_depth",
                   [fs]() -> uint64_t { return fs->PublishQueueDepth(); });
  // Shared-journal attribution: service time of coalesced commits that satisfied
  // this tenant's fsyncs/metadata syncs, split per tenant by the commit pipeline
  // (Journal::AttributeCommitService). The key is the instance tag the tenant's
  // SplitFs passes as `who` at its CommitJournal/Fsync call sites.
  ext4sim::Journal* journal = kfs_->journal_for_test();
  m->RegisterGauge("tenant." + tenant_id + ".commit_service_ns",
                   [journal, tenant_id]() -> uint64_t {
                     return journal->AttributedCommitServiceNs(tenant_id);
                   });
  return 0;
}

int TenantRouter::Unmount(const std::string& tenant_id) {
  std::shared_ptr<Tenant> t = FindTenant(tenant_id);
  if (t == nullptr) {
    return -ENOENT;
  }
  // Drain the tenant's queued publishes on THIS thread before anything is torn
  // down: the data its fsyncs acknowledged reaches K-Split, and a power cut here
  // is a catchable crash state (the tenant is still mounted if we unwind).
  t->fs->DrainQueuedPublishes();
  t->fs->WaitForPublishes();

  ctx_->obs.metrics.DeregisterGauges("tenant." + tenant_id + ".");
  // Invalidate the tenant's router fds; close their inner descriptors (close
  // publishes any straggler staged data, per §3.4).
  std::vector<int> inner;
  {
    std::unique_lock<std::shared_mutex> fl(fds_mu_);
    for (auto it = fds_.begin(); it != fds_.end();) {
      if (it->second.tenant == t) {
        inner.push_back(it->second.inner_fd);
        it = fds_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (int fd : inner) {
    t->fs->Close(fd);
  }
  {
    std::unique_lock<std::shared_mutex> tl(tenants_mu_);
    tenants_.erase(tenant_id);
  }
  // Drop our reference; the instance is destroyed here unless an in-flight call
  // still holds the tenant (it finishes on the live instance first).
  t.reset();
  return 0;
}

bool TenantRouter::IsMounted(const std::string& tenant_id) const {
  return FindTenant(tenant_id) != nullptr;
}

size_t TenantRouter::TenantCount() const {
  std::shared_lock<std::shared_mutex> tl(tenants_mu_);
  return tenants_.size();
}

splitfs::SplitFs* TenantRouter::tenant_fs(const std::string& tenant_id) const {
  std::shared_ptr<Tenant> t = FindTenant(tenant_id);
  return t == nullptr ? nullptr : t->fs.get();
}

void TenantRouter::DrainAllPublishes() {
  std::vector<std::shared_ptr<Tenant>> snapshot;
  {
    std::shared_lock<std::shared_mutex> tl(tenants_mu_);
    snapshot.reserve(tenants_.size());
    for (const auto& [id, t] : tenants_) {
      snapshot.push_back(t);
    }
  }
  for (const auto& t : snapshot) {
    t->fs->DrainQueuedPublishes();
  }
}

// --- vfs::FileSystem ----------------------------------------------------------------

int TenantRouter::Open(const std::string& path, int flags) {
  std::shared_ptr<Tenant> t = RoutePath(path);
  if (t == nullptr) {
    return -ENOENT;
  }
  int inner = t->fs->Open(path, flags);
  if (inner < 0) {
    return inner;
  }
  std::unique_lock<std::shared_mutex> fl(fds_mu_);
  int fd = next_fd_++;
  fds_.emplace(fd, FdEntry{std::move(t), inner});
  return fd;
}

int TenantRouter::Close(int fd) {
  FdEntry entry;
  {
    std::unique_lock<std::shared_mutex> fl(fds_mu_);
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      return -EBADF;
    }
    entry = std::move(it->second);
    fds_.erase(it);
  }
  return entry.tenant->fs->Close(entry.inner_fd);
}

int TenantRouter::Unlink(const std::string& path) {
  std::shared_ptr<Tenant> t = RoutePath(path);
  return t == nullptr ? -ENOENT : t->fs->Unlink(path);
}

int TenantRouter::Rename(const std::string& from, const std::string& to) {
  std::shared_ptr<Tenant> t = RoutePath(from);
  if (t == nullptr) {
    return -ENOENT;
  }
  if (TenantIdOf(to) != t->id) {
    return -EXDEV;  // Tenants are separate mounts; no cross-tenant rename.
  }
  return t->fs->Rename(from, to);
}

ssize_t TenantRouter::Pread(int fd, void* buf, uint64_t n, uint64_t off) {
  int inner = -1;
  std::shared_ptr<Tenant> t = RouteFd(fd, &inner);
  return t == nullptr ? -EBADF : t->fs->Pread(inner, buf, n, off);
}

ssize_t TenantRouter::Pwrite(int fd, const void* buf, uint64_t n, uint64_t off) {
  int inner = -1;
  std::shared_ptr<Tenant> t = RouteFd(fd, &inner);
  return t == nullptr ? -EBADF : t->fs->Pwrite(inner, buf, n, off);
}

ssize_t TenantRouter::Read(int fd, void* buf, uint64_t n) {
  int inner = -1;
  std::shared_ptr<Tenant> t = RouteFd(fd, &inner);
  return t == nullptr ? -EBADF : t->fs->Read(inner, buf, n);
}

ssize_t TenantRouter::Write(int fd, const void* buf, uint64_t n) {
  int inner = -1;
  std::shared_ptr<Tenant> t = RouteFd(fd, &inner);
  return t == nullptr ? -EBADF : t->fs->Write(inner, buf, n);
}

int64_t TenantRouter::Lseek(int fd, int64_t off, vfs::Whence whence) {
  int inner = -1;
  std::shared_ptr<Tenant> t = RouteFd(fd, &inner);
  return t == nullptr ? -EBADF : t->fs->Lseek(inner, off, whence);
}

int TenantRouter::Fsync(int fd) {
  int inner = -1;
  std::shared_ptr<Tenant> t = RouteFd(fd, &inner);
  return t == nullptr ? -EBADF : t->fs->Fsync(inner);
}

int TenantRouter::Ftruncate(int fd, uint64_t size) {
  int inner = -1;
  std::shared_ptr<Tenant> t = RouteFd(fd, &inner);
  return t == nullptr ? -EBADF : t->fs->Ftruncate(inner, size);
}

int TenantRouter::Fallocate(int fd, uint64_t off, uint64_t len, bool keep_size) {
  int inner = -1;
  std::shared_ptr<Tenant> t = RouteFd(fd, &inner);
  return t == nullptr ? -EBADF : t->fs->Fallocate(inner, off, len, keep_size);
}

int TenantRouter::Stat(const std::string& path, vfs::StatBuf* out) {
  std::shared_ptr<Tenant> t = RoutePath(path);
  return t == nullptr ? -ENOENT : t->fs->Stat(path, out);
}

int TenantRouter::Fstat(int fd, vfs::StatBuf* out) {
  int inner = -1;
  std::shared_ptr<Tenant> t = RouteFd(fd, &inner);
  return t == nullptr ? -EBADF : t->fs->Fstat(inner, out);
}

int TenantRouter::Mkdir(const std::string& path) {
  std::shared_ptr<Tenant> t = RoutePath(path);
  return t == nullptr ? -ENOENT : t->fs->Mkdir(path);
}

int TenantRouter::Rmdir(const std::string& path) {
  std::shared_ptr<Tenant> t = RoutePath(path);
  return t == nullptr ? -ENOENT : t->fs->Rmdir(path);
}

int TenantRouter::ReadDir(const std::string& path, std::vector<std::string>* names) {
  std::shared_ptr<Tenant> t = RoutePath(path);
  return t == nullptr ? -ENOENT : t->fs->ReadDir(path, names);
}

int TenantRouter::Recover() {
  // Crash recovery wiped the process: every tenant's DRAM state rebuilds from its
  // durable artifacts, and every pre-crash router fd goes stale.
  {
    std::unique_lock<std::shared_mutex> fl(fds_mu_);
    fds_.clear();
  }
  std::vector<std::shared_ptr<Tenant>> snapshot;
  {
    std::shared_lock<std::shared_mutex> tl(tenants_mu_);
    for (const auto& [id, t] : tenants_) {
      snapshot.push_back(t);
    }
  }
  int rc = 0;
  for (const auto& t : snapshot) {
    int r = t->fs->Recover();
    if (r != 0 && rc == 0) {
      rc = r;
    }
  }
  return rc;
}

}  // namespace tenant
