// IO and overhead accounting.
//
// The paper defines *file-system software overhead* as "the time taken to service a
// file-system call minus the time spent actually accessing data on the PM device"
// (§5.7). Stats therefore tracks, alongside raw counters, how much simulated time was
// spent moving user payload bytes to/from PM media; benches compute
//   overhead = clock.Now() - stats.data_media_ns
// to regenerate Table 1 and Figure 5.
#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <atomic>
#include <cstdint>

namespace sim {

// What a PM write is for; used both for wear accounting (write amplification vs Strata,
// §5.8) and for the software-overhead split.
enum class PmWriteKind {
  kUserData,  // The application's own payload bytes.
  kMetadata,  // Inodes, bitmaps, extent trees, directories.
  kJournal,   // ext4/PMFS journal blocks, commit records.
  kLog,       // NOVA inode logs, Strata private logs, SplitFS op log.
};

// What a PM read is for. kUserData (and only kUserData) counts toward
// data_media_ns_, preserving the §5.7 overhead split exactly as before the kinds
// existed; the other kinds refine what used to be the undifferentiated
// "non-user-data" bucket.
enum class PmReadKind {
  kUserData,  // Payload bytes served to the application.
  kMetadata,  // Inode tables, directories, extent trees.
  kJournal,   // Journal scan during recovery/checkpoint.
  kLog,       // Operation-log / inode-log replay reads.
  kStaging,   // SplitFS staging-file reads during relink/copy publication.
};

class Stats {
 public:
  Stats() = default;
  Stats(const Stats&) = delete;
  Stats& operator=(const Stats&) = delete;

  void AddPmWrite(PmWriteKind kind, uint64_t bytes, uint64_t media_ns) {
    pm_write_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    switch (kind) {
      case PmWriteKind::kUserData:
        data_bytes_.fetch_add(bytes, std::memory_order_relaxed);
        data_media_ns_.fetch_add(media_ns, std::memory_order_relaxed);
        break;
      case PmWriteKind::kMetadata:
        metadata_bytes_.fetch_add(bytes, std::memory_order_relaxed);
        break;
      case PmWriteKind::kJournal:
        journal_bytes_.fetch_add(bytes, std::memory_order_relaxed);
        break;
      case PmWriteKind::kLog:
        log_bytes_.fetch_add(bytes, std::memory_order_relaxed);
        break;
    }
  }

  void AddPmRead(PmReadKind kind, uint64_t bytes, uint64_t media_ns) {
    pm_read_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    switch (kind) {
      case PmReadKind::kUserData:
        read_data_bytes_.fetch_add(bytes, std::memory_order_relaxed);
        data_media_ns_.fetch_add(media_ns, std::memory_order_relaxed);
        break;
      case PmReadKind::kMetadata:
        read_metadata_bytes_.fetch_add(bytes, std::memory_order_relaxed);
        break;
      case PmReadKind::kJournal:
        read_journal_bytes_.fetch_add(bytes, std::memory_order_relaxed);
        break;
      case PmReadKind::kLog:
        read_log_bytes_.fetch_add(bytes, std::memory_order_relaxed);
        break;
      case PmReadKind::kStaging:
        read_staging_bytes_.fetch_add(bytes, std::memory_order_relaxed);
        break;
    }
  }

  void AddSyscall() { syscalls_.fetch_add(1, std::memory_order_relaxed); }
  void AddFence() { fences_.fetch_add(1, std::memory_order_relaxed); }
  void AddJournalCommit() { journal_commits_.fetch_add(1, std::memory_order_relaxed); }
  void AddPageFault(uint64_t n = 1) { page_faults_.fetch_add(n, std::memory_order_relaxed); }
  void AddRelink() { relinks_.fetch_add(1, std::memory_order_relaxed); }
  void AddLogEntry() { log_entries_.fetch_add(1, std::memory_order_relaxed); }

  uint64_t pm_write_bytes() const { return pm_write_bytes_.load(std::memory_order_relaxed); }
  uint64_t pm_read_bytes() const { return pm_read_bytes_.load(std::memory_order_relaxed); }
  uint64_t data_bytes() const { return data_bytes_.load(std::memory_order_relaxed); }
  uint64_t metadata_bytes() const { return metadata_bytes_.load(std::memory_order_relaxed); }
  uint64_t journal_bytes() const { return journal_bytes_.load(std::memory_order_relaxed); }
  uint64_t log_bytes() const { return log_bytes_.load(std::memory_order_relaxed); }
  uint64_t read_data_bytes() const { return read_data_bytes_.load(std::memory_order_relaxed); }
  uint64_t read_metadata_bytes() const { return read_metadata_bytes_.load(std::memory_order_relaxed); }
  uint64_t read_journal_bytes() const { return read_journal_bytes_.load(std::memory_order_relaxed); }
  uint64_t read_log_bytes() const { return read_log_bytes_.load(std::memory_order_relaxed); }
  uint64_t read_staging_bytes() const { return read_staging_bytes_.load(std::memory_order_relaxed); }
  uint64_t data_media_ns() const { return data_media_ns_.load(std::memory_order_relaxed); }
  uint64_t syscalls() const { return syscalls_.load(std::memory_order_relaxed); }
  uint64_t fences() const { return fences_.load(std::memory_order_relaxed); }
  uint64_t journal_commits() const { return journal_commits_.load(std::memory_order_relaxed); }
  uint64_t page_faults() const { return page_faults_.load(std::memory_order_relaxed); }
  uint64_t relinks() const { return relinks_.load(std::memory_order_relaxed); }
  uint64_t log_entries() const { return log_entries_.load(std::memory_order_relaxed); }

  // Total PM wear (every byte written to media, any purpose). Used for the Strata
  // write-amplification comparison.
  uint64_t TotalPmWear() const { return pm_write_bytes(); }

  void Reset() {
    pm_write_bytes_ = 0;
    pm_read_bytes_ = 0;
    data_bytes_ = 0;
    metadata_bytes_ = 0;
    journal_bytes_ = 0;
    log_bytes_ = 0;
    read_data_bytes_ = 0;
    read_metadata_bytes_ = 0;
    read_journal_bytes_ = 0;
    read_log_bytes_ = 0;
    read_staging_bytes_ = 0;
    data_media_ns_ = 0;
    syscalls_ = 0;
    fences_ = 0;
    journal_commits_ = 0;
    page_faults_ = 0;
    relinks_ = 0;
    log_entries_ = 0;
  }

 private:
  // Each counter gets its own cache line: with N worker threads hammering the hot
  // write-path counters, false sharing between adjacent atomics would serialize the
  // whole fleet on one line (measured on the scalability bench before padding).
  alignas(64) std::atomic<uint64_t> pm_write_bytes_{0};
  alignas(64) std::atomic<uint64_t> pm_read_bytes_{0};
  alignas(64) std::atomic<uint64_t> data_bytes_{0};
  alignas(64) std::atomic<uint64_t> metadata_bytes_{0};
  alignas(64) std::atomic<uint64_t> journal_bytes_{0};
  alignas(64) std::atomic<uint64_t> log_bytes_{0};
  // Read-kind split shares lines pairwise: reads are colder than the write-path
  // counters the padding exists for.
  alignas(64) std::atomic<uint64_t> read_data_bytes_{0};
  std::atomic<uint64_t> read_metadata_bytes_{0};
  alignas(64) std::atomic<uint64_t> read_journal_bytes_{0};
  std::atomic<uint64_t> read_log_bytes_{0};
  alignas(64) std::atomic<uint64_t> read_staging_bytes_{0};
  alignas(64) std::atomic<uint64_t> data_media_ns_{0};
  alignas(64) std::atomic<uint64_t> syscalls_{0};
  alignas(64) std::atomic<uint64_t> fences_{0};
  alignas(64) std::atomic<uint64_t> journal_commits_{0};
  alignas(64) std::atomic<uint64_t> page_faults_{0};
  alignas(64) std::atomic<uint64_t> relinks_{0};
  alignas(64) std::atomic<uint64_t> log_entries_{0};
};

}  // namespace sim

#endif  // SRC_SIM_STATS_H_
