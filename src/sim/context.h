// Bundle of simulation state shared by one "machine": clock + cost model + counters.
//
// Everything running against the same emulated PM device shares one Context, mirroring
// one physical host in the paper's testbed.
#ifndef SRC_SIM_CONTEXT_H_
#define SRC_SIM_CONTEXT_H_

#include "src/obs/obs.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/stats.h"

namespace sim {

struct Context {
  Clock clock;
  CostModel model;
  Stats stats;
  // Observability plane of this machine: span tracer, metrics registry, contention
  // ledger. Observes the clock, never drives it (see src/obs/obs.h).
  obs::Observability obs;

  // Convenience charge helpers used across the FS implementations. ------------------

  // One user<->kernel round trip.
  void ChargeSyscall() {
    clock.Advance(model.syscall_ns);
    stats.AddSyscall();
  }

  // CPU-only work (DRAM bookkeeping) in kernel or user space.
  void ChargeCpu(uint64_t ns) { clock.Advance(ns); }

  // A store fence not already accounted by a persisting write.
  void ChargeFence() {
    clock.Advance(model.fence_ns);
    stats.AddFence();
  }

  // Minor page faults while touching `pages` freshly-mapped pages.
  void ChargePageFaults(uint64_t pages) {
    clock.Advance(pages * model.page_fault_ns);
    stats.AddPageFault(pages);
  }

  // Faulting one pre-populated 2 MB huge-page mapping.
  void ChargeHugePageSetup() {
    clock.Advance(model.huge_page_fault_ns);
    stats.AddPageFault(1);
  }

  void Reset() {
    clock.Reset();
    stats.Reset();
    obs.Reset();
  }
};

}  // namespace sim

#endif  // SRC_SIM_CONTEXT_H_
