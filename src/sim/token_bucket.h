// Virtual-time token bucket — the per-tenant QoS primitive (ROADMAP item 1).
//
// A tenant's foreground operation pays for a unit of a shared service (one staging
// file taken, one journal commit forced) by taking a token. Tokens refill at
// `rate_per_sec` of *simulated* time up to `burst`; when the bucket is short, the
// caller's timeline advances to the refill point — the virtual-time image of being
// throttled. That is exactly the fairness mechanism: a strict-mode tenant's fsync
// storm burns its own journal credits and its own lanes absorb the pacing delay,
// while a posix tenant with its own bucket (or none) proceeds unpaced.
//
// Off-clock callers (background publishes, inline deterministic twins) are never
// paced: QoS charges foreground admission, not background service — and pacing an
// off-clock bracket would rewind away anyway.
#ifndef SRC_SIM_TOKEN_BUCKET_H_
#define SRC_SIM_TOKEN_BUCKET_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>

#include "src/sim/clock.h"

namespace sim {

class TokenBucket {
 public:
  // rate_per_sec == 0 disables pacing (unlimited); every Take returns 0.
  TokenBucket(double rate_per_sec, double burst)
      : tokens_per_ns_(rate_per_sec / 1e9),
        burst_(std::max(burst, 1.0)),
        tokens_(std::max(burst, 1.0)) {}
  TokenBucket(const TokenBucket&) = delete;
  TokenBucket& operator=(const TokenBucket&) = delete;

  // Takes `cost` tokens, advancing the caller's timeline past the refill point if
  // the bucket is short. Returns the virtual nanoseconds waited (0 when admitted
  // immediately) so the caller can attribute the throttle to its ledger resource.
  uint64_t Take(Clock* clock, double cost = 1.0) {
    if (tokens_per_ns_ <= 0.0 || Clock::OffClock()) {
      return 0;
    }
    std::lock_guard<std::mutex> lk(mu_);
    RefillLocked(clock->Now());
    if (tokens_ >= cost) {
      tokens_ -= cost;
      return 0;
    }
    // Lanes are private timelines, so "now" differs per thread; the bucket tracks
    // the furthest refill point it has granted and paces each lane from there.
    uint64_t wait_ns =
        static_cast<uint64_t>(std::ceil((cost - tokens_) / tokens_per_ns_));
    tokens_ = 0.0;
    last_refill_ns_ += wait_ns;
    uint64_t before = clock->Now();
    clock->FastForwardTo(last_refill_ns_);
    uint64_t now = clock->Now();
    return now > before ? now - before : 0;
  }

  // Current token count (metrics gauge; observation only, no refill).
  double Available() const {
    std::lock_guard<std::mutex> lk(mu_);
    return tokens_;
  }

 private:
  void RefillLocked(uint64_t now_ns) {
    if (now_ns > last_refill_ns_) {
      tokens_ = std::min(
          burst_, tokens_ + static_cast<double>(now_ns - last_refill_ns_) * tokens_per_ns_);
      last_refill_ns_ = now_ns;
    }
  }

  const double tokens_per_ns_;
  const double burst_;
  mutable std::mutex mu_;  // leaf lock: held only for arithmetic
  double tokens_;
  uint64_t last_refill_ns_ = 0;
};

}  // namespace sim

#endif  // SRC_SIM_TOKEN_BUCKET_H_
