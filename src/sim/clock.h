// Simulated nanosecond clock.
//
// Every layer of the stack charges time here instead of measuring wall-clock time: the
// emulated PM device charges media latency/bandwidth, the kernel-FS models charge trap
// and journaling costs, U-Split charges its user-space bookkeeping. Benchmarks report
// this clock, which is what makes the paper's relative results reproducible on DRAM.
//
// Multithreading model. By default every thread charges the one shared counter and the
// clock behaves exactly as a single global timeline (all existing single-threaded
// tests and the deterministic crash matrix run in this mode and are bit-identical).
// A worker thread of a parallel phase may bind a Clock::Lane: its charges then accrue
// to a private per-thread timeline, so the simulated elapsed time of an N-thread phase
// is max(lane time), not the sum — the virtual-time model of an N-core host. Code
// sections that are serialized by a real lock can make that serialization visible in
// virtual time with a ResourceStamp (below): acquire fast-forwards the lane past the
// previous holder's release time, exactly like waiting on the lock in real time.
#ifndef SRC_SIM_CLOCK_H_
#define SRC_SIM_CLOCK_H_

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace sim {

class Clock {
 public:
  Clock() = default;
  Clock(const Clock&) = delete;
  Clock& operator=(const Clock&) = delete;

  // Per-thread virtual timeline for parallel phases. Binding is RAII and per-thread:
  // while a Lane for this clock is live on the current thread, Advance/Now/Rewind act
  // on the lane. On destruction the lane folds back into the shared counter with
  // max() semantics (the parallel phase ends when its slowest worker ends).
  class Lane {
   public:
    explicit Lane(Clock* clock) : clock_(clock), prev_(tls_lane_) {
      ns_ = clock->now_.load(std::memory_order_relaxed);
      tls_lane_ = this;
    }
    ~Lane() {
      clock_->FoldIn(ns_);
      tls_lane_ = prev_;
    }
    Lane(const Lane&) = delete;
    Lane& operator=(const Lane&) = delete;

    uint64_t Now() const { return ns_; }

   private:
    friend class Clock;
    Clock* clock_;
    uint64_t ns_ = 0;
    Lane* prev_;
  };

  // Advances simulated time by `ns` and returns the new time.
  uint64_t Advance(uint64_t ns) {
    if (Lane* lane = BoundLane()) {
      lane->ns_ += ns;
      return lane->ns_;
    }
    return now_.fetch_add(ns, std::memory_order_relaxed) + ns;
  }

  uint64_t Now() const {
    if (const Lane* lane = BoundLane()) {
      return lane->ns_;
    }
    return now_.load(std::memory_order_relaxed);
  }

  // Rewinds simulated time by `ns`. Used to attribute work to a background thread:
  // the caller snapshots Now(), performs the work inline (keeping the simulation
  // deterministic), then rewinds the elapsed charge off the foreground clock.
  void Rewind(uint64_t ns) {
    if (Lane* lane = BoundLane()) {
      lane->ns_ -= std::min(lane->ns_, ns);
      return;
    }
    now_.fetch_sub(ns, std::memory_order_relaxed);
  }

  // Jumps the current timeline forward to at least `ns` (never backward). This is
  // how waiting on a contended resource is accounted in a lane; in the default
  // single-timeline mode resource stamps are always <= Now(), making this a no-op.
  void FastForwardTo(uint64_t ns) {
    if (Lane* lane = BoundLane()) {
      lane->ns_ = std::max(lane->ns_, ns);
      return;
    }
    uint64_t cur = now_.load(std::memory_order_relaxed);
    while (cur < ns &&
           !now_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
    }
  }

  void Reset() {
    now_.store(0, std::memory_order_relaxed);
    reset_seq_.fetch_add(1, std::memory_order_relaxed);
  }

  // True when the calling thread runs on a private lane of this clock.
  bool HasLane() const { return BoundLane() != nullptr; }
  // True while the calling thread is inside a ScopedOffClock bracket: its work
  // belongs to a background context of the simulated machine. Resource stamps
  // consult this so inline background work accumulates no busy time — a real
  // background thread has no lane and accumulates none, and the deterministic
  // inline twin must account identically.
  static bool OffClock() { return tls_off_clock_ > 0; }
  // Incremented by Reset(); lets ResourceStamp discard busy time from before a reset.
  uint64_t ResetSeq() const { return reset_seq_.load(std::memory_order_relaxed); }

 private:
  // Innermost lane of this thread bound to *this* clock; walks the nesting chain so
  // a thread driving two simulated machines charges each clock's own lane.
  Lane* BoundLane() const {
    for (Lane* lane = tls_lane_; lane != nullptr; lane = lane->prev_) {
      if (lane->clock_ == this) {
        return lane;
      }
    }
    return nullptr;
  }

  void FoldIn(uint64_t ns) {
    uint64_t cur = now_.load(std::memory_order_relaxed);
    while (cur < ns &&
           !now_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
    }
  }

  friend class ScopedOffClock;

  // One live binding per thread (a thread drives one simulated machine at a time;
  // nesting across clocks is supported by the saved `prev_` chain).
  static thread_local Lane* tls_lane_;
  // ScopedOffClock nesting depth of the calling thread (see OffClock()).
  static thread_local int tls_off_clock_;

  alignas(64) std::atomic<uint64_t> now_{0};
  std::atomic<uint64_t> reset_seq_{0};
};

inline thread_local Clock::Lane* Clock::tls_lane_ = nullptr;
inline thread_local int Clock::tls_off_clock_ = 0;

// Virtual-time model of a serially-reusable resource (a real mutex in the stack: the
// kernel's big lock, the staging pool's slow path, a contended file range). The
// holder of the real lock brackets its critical section with Acquire/Release; the
// stamp accumulates the resource's total *busy* (service) time, and Acquire
// fast-forwards the caller's lane to at least that total — a serial resource cannot
// render more than one second of service per second, so no acquirer's timeline may
// sit before the service time already rendered. Busy-time accounting is
// scheduling-insensitive: it gives the same answer whether the host interleaves the
// worker threads finely (true parallelism) or runs them in coarse slices (one core),
// unlike a release-timestamp model, which would chain absolute lane times and
// serialize everything on a time-sliced host.
//
// Both calls are no-ops on threads without a bound lane, so the default
// single-timeline mode — including the crash harness and every deterministic
// single-threaded test — is bit-identical with or without the stamps (this also
// sidesteps Clock::Rewind-based background attribution, which would otherwise leak
// into the busy total).
class ResourceStamp {
 public:
  // Returns the caller's timeline position at section entry; pass it to Release.
  // No-ops without a bound lane or inside a ScopedOffClock bracket: background
  // work — whether on a real background thread (no lane) or run inline with its
  // cost rewound — renders no foreground-visible service time.
  // `waited_ns`, when non-null, receives the fast-forward this acquisition consumed
  // (0 when uncontended) — the hook the contention ledger (src/obs) attributes
  // virtual-time waits through.
  uint64_t Acquire(Clock* clock, uint64_t* waited_ns = nullptr) {
    if (waited_ns != nullptr) {
      *waited_ns = 0;
    }
    if (!clock->HasLane() || Clock::OffClock()) {
      return 0;
    }
    Refresh(clock);
    uint64_t before = clock->Now();
    clock->FastForwardTo(busy_ns_.load(std::memory_order_relaxed));
    uint64_t now = clock->Now();
    if (waited_ns != nullptr && now > before) {
      *waited_ns = now - before;
    }
    return now;
  }
  void Release(Clock* clock, uint64_t t0) {
    if (!clock->HasLane() || Clock::OffClock()) {
      return;
    }
    Refresh(clock);
    uint64_t now = clock->Now();
    if (now > t0) {
      busy_ns_.fetch_add(now - t0, std::memory_order_relaxed);
    }
  }

  // Read-side entry of a reader/writer resource (per-inode locks; journal handles
  // that raced the commit seal window): a shared acquirer waits behind the service
  // time the exclusive side has rendered, but adds none of its own — concurrent
  // readers overlap, so charging their section durations into the busy total would
  // serialize them. Callers that did not actually wait (the pipelined journal's
  // uncontended handle fast path) skip even this. Returns the fast-forward consumed
  // (0 when uncontended), for contention-ledger attribution.
  uint64_t AcquireShared(Clock* clock) {
    if (!clock->HasLane() || Clock::OffClock()) {
      return 0;
    }
    Refresh(clock);
    uint64_t before = clock->Now();
    clock->FastForwardTo(busy_ns_.load(std::memory_order_relaxed));
    uint64_t now = clock->Now();
    return now > before ? now - before : 0;
  }

  // Credits `ns` of service rendered on behalf of this resource by another timeline:
  // the shared journal-commit service splits one coalesced writeout's measured
  // duration across the tenants whose fsyncs it satisfied, crediting each tenant's
  // stamp its share. Unlike Acquire/Release this is lane-independent — the rendering
  // thread brackets its own section; here we only record the pre-split duration.
  void AddBusy(Clock* clock, uint64_t ns) {
    Refresh(clock);
    busy_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  // Folds `other`'s accumulated service time into this stamp. Range-granular locks
  // (vfs::RangeLock) keep one stamp per contended byte range and merge stamps whose
  // ranges come to overlap; overlapping exclusive sections were serialized by the
  // real lock, so their service times add.
  void MergeFrom(ResourceStamp* other, Clock* clock) {
    Refresh(clock);
    other->Refresh(clock);
    busy_ns_.fetch_add(other->busy_ns_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }

  // Accumulated service time (metrics gauge: e.g. the journal's total commit
  // service / stall basis). Observation only.
  uint64_t busy_ns() const { return busy_ns_.load(std::memory_order_acquire); }

 private:
  // Busy time from before a Clock::Reset() must not leak into the next measured
  // phase (benches reset the clock after testbed setup).
  void Refresh(Clock* clock) {
    uint64_t seq = clock->ResetSeq();
    uint64_t cur = seen_reset_seq_.load(std::memory_order_relaxed);
    if (cur != seq &&
        seen_reset_seq_.compare_exchange_strong(cur, seq, std::memory_order_relaxed)) {
      busy_ns_.store(0, std::memory_order_relaxed);
    }
  }

  std::atomic<uint64_t> busy_ns_{0};
  std::atomic<uint64_t> seen_reset_seq_{0};
};

// Brackets work that really happens on the calling thread but belongs to a
// background context of the simulated machine — staging replenishment, retirement of
// epoch-reclaimed snapshots, the deterministic inline mode of the async relink
// publisher. The elapsed virtual charge is rewound on destruction, so foreground
// timelines are identical whether the background work runs inline (deterministic
// store sequence, what the crash harness needs) or on a real thread (whose charges
// land on the shared timeline that lane-based measurements ignore).
class ScopedOffClock {
 public:
  explicit ScopedOffClock(Clock* clock) : clock_(clock), t0_(clock->Now()) {
    ++Clock::tls_off_clock_;
  }
  ~ScopedOffClock() {
    --Clock::tls_off_clock_;
    uint64_t now = clock_->Now();
    if (now > t0_) {
      clock_->Rewind(now - t0_);
    }
  }
  ScopedOffClock(const ScopedOffClock&) = delete;
  ScopedOffClock& operator=(const ScopedOffClock&) = delete;

 private:
  Clock* clock_;
  uint64_t t0_;
};

// RAII bracket for a critical section already protected by a real lock.
class ScopedResourceTime {
 public:
  ScopedResourceTime(ResourceStamp* stamp, Clock* clock) : stamp_(stamp), clock_(clock) {
    t0_ = stamp_->Acquire(clock_, &waited_ns_);
  }
  ~ScopedResourceTime() { stamp_->Release(clock_, t0_); }
  ScopedResourceTime(const ScopedResourceTime&) = delete;
  ScopedResourceTime& operator=(const ScopedResourceTime&) = delete;

  // Fast-forward the acquisition consumed (0 when uncontended); callers feed this to
  // the contention ledger with their site's resource name.
  uint64_t waited_ns() const { return waited_ns_; }

 private:
  ResourceStamp* stamp_;
  Clock* clock_;
  uint64_t t0_ = 0;
  uint64_t waited_ns_ = 0;
};

}  // namespace sim

#endif  // SRC_SIM_CLOCK_H_
