// Simulated nanosecond clock.
//
// Every layer of the stack charges time here instead of measuring wall-clock time: the
// emulated PM device charges media latency/bandwidth, the kernel-FS models charge trap
// and journaling costs, U-Split charges its user-space bookkeeping. Benchmarks report
// this clock, which is what makes the paper's relative results reproducible on DRAM.
#ifndef SRC_SIM_CLOCK_H_
#define SRC_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace sim {

class Clock {
 public:
  Clock() = default;
  Clock(const Clock&) = delete;
  Clock& operator=(const Clock&) = delete;

  // Advances simulated time by `ns` and returns the new time.
  uint64_t Advance(uint64_t ns) { return now_.fetch_add(ns, std::memory_order_relaxed) + ns; }

  uint64_t Now() const { return now_.load(std::memory_order_relaxed); }

  // Rewinds simulated time by `ns`. Used to attribute work to a background thread:
  // the caller snapshots Now(), performs the work inline (keeping the simulation
  // deterministic), then rewinds the elapsed charge off the foreground clock.
  void Rewind(uint64_t ns) { now_.fetch_sub(ns, std::memory_order_relaxed); }

  void Reset() { now_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_{0};
};

}  // namespace sim

#endif  // SRC_SIM_CLOCK_H_
