// Cost model: the single place where "how long does X take" is defined.
//
// The defaults are calibrated against the paper's published measurements:
//   * Table 2 (Izraelevitz et al.): PM latency and bandwidth relative to DRAM.
//   * Table 1: 671 ns to write one 4 KB block to PM; per-FS 4 KB-append costs
//     (ext4-DAX 9002 ns, PMFS 4150, NOVA-strict 3021, SplitFS-strict 1251,
//     SplitFS-POSIX 1160).
//   * Table 6: per-syscall latencies for SplitFS modes vs ext4 DAX.
//
// Every file system charges costs only through these knobs, so the differences between
// ext4-DAX / PMFS / NOVA / Strata / SplitFS in the benches emerge from *what mechanical
// operations each design performs* (traps, allocations, journal commits, log writes,
// fences), not from per-FS fudge factors. The knob values are the model's statement of
// how expensive each mechanism is on the paper's testbed.
#ifndef SRC_SIM_COST_MODEL_H_
#define SRC_SIM_COST_MODEL_H_

#include <cstdint>

namespace sim {

struct CostModel {
  // --- PM media (Table 2) ------------------------------------------------------------
  uint64_t pm_read_seq_latency_ns = 169;   // First line of a sequential run.
  uint64_t pm_read_rand_latency_ns = 305;  // Random access.
  uint64_t pm_store_fence_ns = 91;         // Store + clwb/nt + fence persistence cost.
  // Streaming rates. Write rate anchors the Table 1 claim that a 4 KB nt-write costs
  // 671 ns (91 + 4096 * 0.1416 ≈ 671). Read rate anchors Table 6's 16 KB read in
  // ~4.5 us (169 + 16384 * 0.236 ≈ 4035 plus software).
  double pm_write_ns_per_byte = 0.1416;
  double pm_read_ns_per_byte = 0.236;
  double dram_ns_per_byte = 0.025;  // Cache-resident / DRAM copies.

  // --- CPU / kernel generic ----------------------------------------------------------
  uint64_t syscall_ns = 300;         // User->kernel->user trap + dispatch.
  uint64_t page_fault_ns = 1300;     // Minor fault, 4 KB page.
  uint64_t huge_page_fault_ns = 1800;  // Pre-populated 2 MB huge-page mapping setup.
  uint64_t mmap_syscall_ns = 1100;   // mmap() setup excluding faults.
  uint64_t munmap_ns = 2500;         // munmap + TLB shootdown per region.
  uint64_t kernel_work_ns = 120;     // One unit of in-kernel DRAM bookkeeping.
  uint64_t user_work_ns = 45;        // One unit of user-space DRAM bookkeeping.
  uint64_t fence_ns = 30;            // sfence with nothing to persist.
  uint64_t cas_ns = 20;              // CAS on a shared DRAM line (op-log tail).

  // --- ext4-DAX ------------------------------------------------------------------------
  uint64_t ext4_read_path_ns = 450;       // iomap read path beyond the trap.
  uint64_t ext4_write_path_ns = 900;      // dax_iomap_rw write path beyond the trap.
  uint64_t ext4_append_extra_ns = 1580;   // i_size/i_disksize update + orphan handling.
  uint64_t ext4_alloc_cpu_ns = 2850;      // mballoc search + group locking.
  uint64_t ext4_relink_alloc_cpu_ns = 1200;  // Goal-directed transient alloc in relink.
  uint64_t ext4_extent_cpu_ns = 1400;     // Extent-tree insert/remove.
  uint64_t ext4_journal_dirty_cpu_ns = 1300;  // jbd2 handle start/dirty/stop per op.
  uint64_t ext4_journal_commit_cpu_ns = 900;  // Commit bookkeeping.
  uint64_t ext4_fsync_barrier_ns = 23000;     // Commit-thread handshake + ordered wait.
  uint64_t ext4_checkpoint_cpu_ns = 6000;     // Checkpoint writeback: tail advance + list walk.
  uint64_t ext4_open_path_ns = 900;       // Path walk + inode load (cold dentry).
  uint64_t ext4_create_extra_ns = 900;    // Inode alloc + dir insert CPU.
  uint64_t ext4_dir_op_cpu_ns = 700;      // Dirent insert/remove.
  uint64_t ext4_unlink_extra_ns = 4800;   // Orphan processing + truncate path.
  uint64_t ext4_free_cpu_ns = 300;        // Per-extent deallocation.
  uint64_t ext4_swap_extent_cpu_ns = 350; // Per-inode extent swap CPU in MOVE_EXT.

  // --- PMFS ----------------------------------------------------------------------------
  uint64_t pmfs_write_path_ns = 1200;
  uint64_t pmfs_alloc_cpu_ns = 700;
  uint64_t pmfs_btree_cpu_ns = 500;
  uint64_t pmfs_journal_entry_cpu_ns = 120;  // Per 64 B undo-log entry, plus PM write.
  uint64_t pmfs_open_path_ns = 700;
  uint64_t pmfs_dir_op_cpu_ns = 600;

  // --- NOVA ----------------------------------------------------------------------------
  uint64_t nova_write_path_ns = 1250;
  uint64_t nova_alloc_cpu_ns = 220;    // Per-CPU free list: near-pointer-bump.
  uint64_t nova_log_cpu_ns = 150;      // Compose one log entry.
  uint64_t nova_mem_bookkeep_ns = 300; // Radix-tree update in DRAM.
  uint64_t nova_open_path_ns = 650;
  uint64_t nova_dir_op_cpu_ns = 500;

  // --- Strata --------------------------------------------------------------------------
  // Per-op LibFS software: log-header construction, coalescing-index update, lease
  // validation. Calibrated against Table 7 (SplitFS-strict beats Strata 1.7-2.25x on
  // YCSB even on read-only mixes, so Strata's per-op software cost is substantial).
  uint64_t strata_log_cpu_ns = 2200;
  uint64_t strata_digest_cpu_ns = 500;   // Per-block digest: coalesce + tree update.
  uint64_t strata_lease_cpu_ns = 400;    // Lease acquisition on first access.
  uint64_t strata_read_path_ns = 2200;   // LibFS read: log index + shared-tree walk.

  // --- SplitFS U-Split -----------------------------------------------------------------
  uint64_t usplit_data_op_cpu_ns = 250;   // Collection-of-mmaps lookup + dispatch.
  uint64_t usplit_append_cpu_ns = 490;    // Staging bookkeeping per append.
  uint64_t usplit_open_cpu_ns = 200;      // Attribute-cache setup on open.
  uint64_t usplit_reopen_cpu_ns = 150;    // Attribute-cache hit on reopen.
  uint64_t usplit_close_cpu_ns = 350;     // Bookkeeping retained on close.
  uint64_t usplit_fsync_cpu_ns = 200;     // Pre-relink staged-range collection.
  uint64_t usplit_unlink_cpu_ns = 300;    // Cache teardown (plus munmaps, charged each).
  uint64_t usplit_log_checkpoint_cpu_ns = 4000;  // Op-log full: relink-all + zero.

  // Derived helpers -------------------------------------------------------------------
  uint64_t PmWriteCost(uint64_t bytes) const {
    return pm_store_fence_ns + static_cast<uint64_t>(pm_write_ns_per_byte * bytes);
  }
  uint64_t PmReadCost(uint64_t bytes, bool sequential) const {
    uint64_t lat = sequential ? pm_read_seq_latency_ns : pm_read_rand_latency_ns;
    return lat + static_cast<uint64_t>(pm_read_ns_per_byte * bytes);
  }
};

}  // namespace sim

#endif  // SRC_SIM_COST_MODEL_H_
