// Shadow-recording layer for the crash-consistency harness.
//
// Installed as the pmem::Device observer during a *record run*, it journals every
// store, flush, and fence with epoch numbers (epoch = fences completed so far) and,
// at each fence, how many cachelines were still dirty-but-unpersisted. The crash-
// state generator reads this journal to decide where crash injection is interesting:
// a fence with zero pending lines cannot produce a new state, while one with N
// pending lines anchors up to 2^N drain subsets (sampled by fate policy).
#ifndef SRC_CRASH_SHADOW_LOG_H_
#define SRC_CRASH_SHADOW_LOG_H_

#include <cstdint>
#include <vector>

#include "src/pmem/device.h"

namespace crash {

enum class StoreKind : uint8_t { kTemporal, kNt, kClwb };

struct StoreRecord {
  uint64_t ordinal = 0;  // Global store counter (clwbs not included).
  uint64_t epoch = 0;    // Fences completed when the store issued.
  uint64_t off = 0;
  uint64_t len = 0;
  StoreKind kind = StoreKind::kTemporal;
};

struct FenceRecord {
  uint64_t epoch = 0;          // This fence's index.
  uint64_t stores_before = 0;  // Global store count when the fence issued.
  uint64_t pending_lines = 0;  // Dirty-but-unpersisted lines as the fence issued.
};

class ShadowLog : public pmem::DeviceObserver {
 public:
  // `dev` is only queried for its pending-line count at fences; the log does not
  // mutate the device. Crash tracking must be enabled for pending counts to be
  // meaningful.
  explicit ShadowLog(pmem::Device* dev) : dev_(dev) {}

  void OnStore(uint64_t off, uint64_t n, bool persists_at_fence) override;
  void OnClwb(uint64_t off, uint64_t n) override;
  void OnFence(uint64_t epoch) override;

  const std::vector<StoreRecord>& stores() const { return stores_; }
  const std::vector<FenceRecord>& fences() const { return fences_; }
  uint64_t store_count() const { return store_count_; }
  uint64_t fence_count() const { return fences_.size(); }

  // Fence epochs with at least one un-fenced store pending — the crash points where
  // injection can change the recovered state.
  std::vector<uint64_t> VulnerableFenceEpochs() const;

 private:
  pmem::Device* dev_;
  std::vector<StoreRecord> stores_;
  std::vector<FenceRecord> fences_;
  uint64_t store_count_ = 0;
};

}  // namespace crash

#endif  // SRC_CRASH_SHADOW_LOG_H_
