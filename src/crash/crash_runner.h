// Crash-state matrix driver.
//
// One CrashRunner owns a (file system × workload × guarantees) configuration and
// sweeps it through the crash-state space:
//
//   1. Record run: a fresh world executes the workload to completion under a
//      ShadowLog, journaling every store/fence. Vulnerable fence epochs (pending
//      un-fenced stores) and store ordinals become candidate crash points.
//   2. For each sampled point × fate policy: a fresh world re-executes the same
//      deterministic workload with a CrashInjector armed at the point. The injector
//      unwinds (power cut), the fate materializes the crash image on the device,
//      recovery remounts (ext4 journal rollback + SplitFS op-log replay, or the
//      baseline's own procedure), and the recovery oracles validate the result.
//
// Everything is seeded: the same MatrixConfig produces byte-identical crash states,
// oracle verdicts, and fingerprints on every run.
#ifndef SRC_CRASH_CRASH_RUNNER_H_
#define SRC_CRASH_CRASH_RUNNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/split_fs.h"
#include "src/crash/crash_plan.h"
#include "src/crash/oracles.h"
#include "src/crash/shadow_log.h"

namespace crash {

// --- Workload scripts ------------------------------------------------------------------

struct Step {
  enum class Kind : uint8_t { kOpenCreate, kWrite, kFsync, kClose, kRename };
  Kind kind = Kind::kOpenCreate;
  std::string file;  // Logical file id == creation path.
  std::string to;    // Rename target.
  uint64_t off = 0;
  uint64_t len = 0;
  uint8_t pattern = 0;
};

struct WorkloadScript {
  std::string name;
  std::vector<Step> steps;
};

// The three paper-relevant shapes: staged appends (relink), in-place + staged-overlap
// overwrites, and multi-entry metadata (rename) interleaved with data.
WorkloadScript MakeAppendScript(uint64_t seed);
WorkloadScript MakeOverwriteScript(uint64_t seed);
WorkloadScript MakeRenameScript(uint64_t seed);
std::vector<WorkloadScript> AllScripts(uint64_t seed);

// Executes `script` against `fs`, building the oracle trace. Steps are acknowledged
// in the trace only after the call returns, so a CrashSignal unwinding mid-step
// leaves that step marked in-flight.
void ExecuteScript(vfs::FileSystem* fs, const WorkloadScript& script,
                   TraceModel* trace);

// --- Worlds ----------------------------------------------------------------------------

// One simulated machine: device, the FS under test, and (for SplitFS) K-Split.
struct World {
  sim::Context ctx;
  std::unique_ptr<pmem::Device> dev;
  std::unique_ptr<ext4sim::Ext4Dax> kfs;  // Null for the PM baselines.
  std::unique_ptr<vfs::FileSystem> fs;

  int RecoverAll();
};

using WorldFactory = std::function<std::unique_ptr<World>()>;

// Small worlds sized for crash-state enumeration (64 MB device). `async_relink`
// builds the SplitFS instance with Options::async_relink on in its deterministic
// inline-publisher mode: fsync logs + fences relink intents before the (rewound)
// publish, so the injector can land between the intent fence and the publish — the
// async column of the matrix.
WorldFactory SplitFsWorldFactory(splitfs::Mode mode, bool async_relink = false);
// `which` is "nova", "pmfs", or "strata".
WorldFactory BaselineWorldFactory(const std::string& which);

// --- Matrix runner ---------------------------------------------------------------------

struct RunnerConfig {
  uint64_t seed = 42;
  // Crash points: vulnerable fences plus raw store ordinals, stride-sampled down to
  // these budgets (0 disables the class).
  int max_fence_points = 10;
  int max_store_points = 4;
  std::vector<FatePolicy> fates = {FatePolicy::kDropAll, FatePolicy::kSubset,
                                   FatePolicy::kTorn};
  bool check_fsck = true;          // SplitFS worlds: ext4 integrity after recovery.
  bool post_recovery_probe = true; // New file write/read-back after recovery.
};

struct MatrixStats {
  uint64_t crash_states = 0;   // Distinct (point, fate) states materialized.
  uint64_t fence_points = 0;
  uint64_t store_points = 0;
  uint64_t oracle_failures = 0;
  uint64_t fingerprint = 0;    // Order-sensitive digest of every recovered state.
  std::vector<std::string> failures;  // First few failure details, for diagnostics.
};

class CrashRunner {
 public:
  CrashRunner(WorldFactory factory, WorkloadScript script, Guarantees guarantees,
              RunnerConfig config = {});

  // Record pass + full point × fate sweep.
  MatrixStats Run();

 private:
  void RunOneState(const CrashPoint& point, FatePolicy fate, MatrixStats* stats);

  WorldFactory factory_;
  WorkloadScript script_;
  Guarantees guarantees_;
  RunnerConfig cfg_;
};

}  // namespace crash

#endif  // SRC_CRASH_CRASH_RUNNER_H_
