#include "src/crash/shadow_log.h"

namespace crash {

void ShadowLog::OnStore(uint64_t off, uint64_t n, bool persists_at_fence) {
  uint64_t epoch = fences_.size();
  stores_.push_back({store_count_, epoch, off, n,
                     persists_at_fence ? StoreKind::kNt : StoreKind::kTemporal});
  ++store_count_;
}

void ShadowLog::OnClwb(uint64_t off, uint64_t n) {
  // Flushes are journaled (they change *when* a store persists) but do not advance
  // the store ordinal: crash points are store/fence boundaries.
  stores_.push_back({store_count_, fences_.size(), off, n, StoreKind::kClwb});
}

void ShadowLog::OnFence(uint64_t epoch) {
  fences_.push_back({epoch, store_count_, dev_->UnpersistedLines()});
}

std::vector<uint64_t> ShadowLog::VulnerableFenceEpochs() const {
  std::vector<uint64_t> out;
  for (const auto& f : fences_) {
    if (f.pending_lines > 0) {
      out.push_back(f.epoch);
    }
  }
  return out;
}

}  // namespace crash
