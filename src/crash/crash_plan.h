// Crash-point taxonomy and failure fates for the crash-consistency harness.
//
// A crash *point* says where in the persistence-instruction stream the power is cut:
// at fence #k (before the fence persists anything) or immediately after store #n.
// A crash *fate* says what happens to the stores that had not reached their
// persistence point: dropped wholesale, an arbitrary seeded subset drained, or torn
// at sub-cacheline granularity (modeling partial write-combining-buffer drain — this
// is what produces torn 64 B op-log entries).
//
// point × fate = one crash state. The generator in crash_runner.cc sweeps both axes.
#ifndef SRC_CRASH_CRASH_PLAN_H_
#define SRC_CRASH_CRASH_PLAN_H_

#include <cstdint>
#include <string>

#include "src/common/random.h"
#include "src/pmem/device.h"

namespace crash {

// Thrown by CrashInjector to unwind out of the workload at the injected point. The
// simulated machine loses power here: every piece of DRAM state above the device is
// garbage from this moment on, and the harness discards it by running full recovery.
struct CrashSignal {
  uint64_t fence_epoch = 0;    // Fences completed when the crash hit.
  uint64_t store_ordinal = 0;  // Stores issued when the crash hit.
};

struct CrashPoint {
  enum class Trigger : uint8_t {
    kAtFence,     // Power cut as fence #index issues, before it persists anything.
    kAfterStore,  // Power cut right after store #index lands (mid-fence-interval).
  };
  Trigger trigger = Trigger::kAtFence;
  uint64_t index = 0;

  std::string Describe() const {
    return (trigger == Trigger::kAtFence ? "fence#" : "store#") + std::to_string(index);
  }
};

enum class FatePolicy : uint8_t {
  kDropAll,  // No un-fenced store drained: the clean "everything volatile lost" image.
  kSubset,   // Each un-fenced line survives whole with probability 1/2 (seeded).
  kTorn,     // Each un-fenced line drains a seeded subset of its 8-byte chunks.
};

inline const char* FateName(FatePolicy f) {
  switch (f) {
    case FatePolicy::kDropAll:
      return "drop-all";
    case FatePolicy::kSubset:
      return "subset";
    case FatePolicy::kTorn:
      return "torn";
  }
  return "?";
}

// Deterministic per-line fate for Device::CrashWith. The Rng is seeded per crash
// state, and CrashWith visits lines in ascending order, so the materialized image is
// a pure function of (workload, point, policy, seed).
inline pmem::Device::LineFateFn MakeFate(FatePolicy policy, uint64_t seed) {
  common::Rng rng(seed);
  return [policy, rng](uint64_t /*line*/, uint64_t /*ordinal*/) mutable -> uint8_t {
    switch (policy) {
      case FatePolicy::kDropAll:
        return 0x00;
      case FatePolicy::kSubset:
        return rng.OneIn(2) ? 0xFF : 0x00;
      case FatePolicy::kTorn:
        return static_cast<uint8_t>(rng.Next() & 0xFF);
    }
    return 0x00;
  };
}

// Counts stores and fences; throws CrashSignal when the configured point is reached.
// Install on the device for the injection run only — the record run uses ShadowLog.
class CrashInjector : public pmem::DeviceObserver {
 public:
  explicit CrashInjector(CrashPoint point) : point_(point) {}

  bool fired() const { return fired_; }

  void OnStore(uint64_t, uint64_t, bool) override {
    uint64_t ordinal = stores_++;
    if (!fired_ && point_.trigger == CrashPoint::Trigger::kAfterStore &&
        ordinal == point_.index) {
      fired_ = true;
      throw CrashSignal{fences_, stores_};
    }
  }

  void OnClwb(uint64_t, uint64_t) override {}

  void OnFence(uint64_t epoch) override {
    fences_ = epoch + 1;
    if (!fired_ && point_.trigger == CrashPoint::Trigger::kAtFence &&
        epoch == point_.index) {
      fired_ = true;
      throw CrashSignal{epoch, stores_};
    }
  }

 private:
  CrashPoint point_;
  uint64_t stores_ = 0;
  uint64_t fences_ = 0;
  bool fired_ = false;
};

}  // namespace crash

#endif  // SRC_CRASH_CRASH_PLAN_H_
