#include "src/crash/oracles.h"

#include <algorithm>
#include <set>

namespace crash {

namespace {

// Expected images rebuilt from the trace:
//   V — contents after every acknowledged write (what a crash-free run would read);
//   D — the durable floor: bytes recovery MUST reproduce, with a defined-mask
//       (bytes outside any durable write have no requirement beyond integrity).
struct ExpectedState {
  std::vector<uint8_t> v;
  std::vector<uint8_t> d;
  std::vector<bool> d_defined;
  uint64_t d_size = 0;    // Recovered size lower bound.
  uint64_t u_size = 0;    // Recovered size upper bound (includes the in-flight op).
  std::set<uint64_t> size_candidates;  // Legal publish-boundary sizes.
  const FileEvent* inflight = nullptr;
};

void GrowTo(ExpectedState* st, uint64_t size) {
  if (st->v.size() < size) {
    st->v.resize(size, 0);
  }
  if (st->d.size() < size) {
    st->d.resize(size, 0);
    st->d_defined.resize(size, false);
  }
}

ExpectedState ReplayTrace(const TraceFile& tf, const Guarantees& g) {
  ExpectedState st;
  st.size_candidates.insert(0);
  uint64_t pub_size = 0;  // Size the kernel/durable namespace last published.
  for (const FileEvent& e : tf.events) {
    if (!e.acked) {
      st.inflight = &e;
      if (e.kind == FileEvent::Kind::kPublish) {
        // The publish may have completed internally before the crash point.
        st.size_candidates.insert(st.v.size());
      }
      continue;  // At most the last event is un-acked; nothing follows it.
    }
    if (e.kind == FileEvent::Kind::kWrite) {
      GrowTo(&st, e.off + e.len);
      for (uint64_t i = 0; i < e.len; ++i) {
        uint64_t o = e.off + i;
        uint8_t val = PatternByte(e.pattern, i);
        st.v[o] = val;
        // In-place overwrites below the published size are synchronous in every
        // mode; everything is durable-on-ack when the system logs operations.
        if (o < pub_size || g.acked_data_durable) {
          st.d[o] = val;
          st.d_defined[o] = true;
        }
      }
      if (g.acked_data_durable) {
        st.d_size = std::max(st.d_size, e.off + e.len);
        st.size_candidates.insert(st.v.size());
      }
    } else {  // kPublish
      st.d = st.v;
      st.d_defined.assign(st.v.size(), true);
      st.d_size = st.v.size();
      pub_size = st.v.size();
      st.size_candidates.insert(st.v.size());
    }
  }
  st.u_size = st.v.size();
  if (st.inflight != nullptr && st.inflight->kind == FileEvent::Kind::kWrite) {
    st.u_size = std::max(st.u_size, st.inflight->off + st.inflight->len);
  }
  return st;
}

bool InflightCovers(const ExpectedState& st, uint64_t o) {
  return st.inflight != nullptr && st.inflight->kind == FileEvent::Kind::kWrite &&
         o >= st.inflight->off && o < st.inflight->off + st.inflight->len;
}

// Integrity: a recovered byte must be zero or a value some recorded write (acked or
// in-flight) put at this offset. Anything else was fabricated by crash + recovery.
bool ByteAllowed(const TraceFile& tf, uint64_t o, uint8_t got) {
  if (got == 0) {
    return true;
  }
  for (const FileEvent& e : tf.events) {
    if (e.kind == FileEvent::Kind::kWrite && o >= e.off && o < e.off + e.len &&
        got == PatternByte(e.pattern, o - e.off)) {
      return true;
    }
  }
  return false;
}

void CheckFile(vfs::FileSystem* fs, const TraceFile& tf, const Guarantees& g,
               OracleReport* report) {
  ExpectedState st = ReplayTrace(tf, g);

  // --- Existence / namespace ----------------------------------------------------------
  std::vector<std::string> existing;
  for (const std::string& path : tf.paths) {
    vfs::StatBuf sb;
    if (fs->Stat(path, &sb) == 0) {
      existing.push_back(path);
    }
  }
  bool must_exist = g.meta_sync_on_ack ? tf.create_acked : tf.ever_published_acked;
  if (existing.empty()) {
    if (must_exist) {
      report->Problem(tf.create_path + ": durable file missing after recovery");
    }
    return;  // Legitimately rolled back before its creation was durable.
  }
  if (existing.size() > 1) {
    report->Problem(tf.create_path + ": visible under " +
                    std::to_string(existing.size()) + " names after recovery");
    return;
  }
  const std::string& path = existing.front();
  if (g.meta_sync_on_ack && tf.has_renames && tf.last_rename_acked &&
      path != tf.current_path) {
    report->Problem(tf.create_path + ": acknowledged rename lost (found at " + path +
                    ", expected " + tf.current_path + ")");
  }

  // --- Size ---------------------------------------------------------------------------
  vfs::StatBuf sb;
  fs->Stat(path, &sb);
  uint64_t size = sb.size;
  bool range_legal = size >= st.d_size && size <= st.u_size;
  bool boundary_legal = st.size_candidates.count(size) > 0;
  bool size_ok = g.acked_data_durable || !g.append_sizes_at_publish_boundaries
                     ? (range_legal || boundary_legal)
                     : boundary_legal;
  if (!size_ok) {
    report->Problem(path + ": recovered size " + std::to_string(size) +
                    " not a legal durable boundary (floor " +
                    std::to_string(st.d_size) + ", ceiling " +
                    std::to_string(st.u_size) + ")");
    return;
  }

  // --- Contents -----------------------------------------------------------------------
  int fd = fs->Open(path, vfs::kRdOnly);
  if (fd < 0) {
    report->Problem(path + ": open failed after recovery (rc=" + std::to_string(fd) +
                    ")");
    return;
  }
  std::vector<uint8_t> got(size);
  ssize_t rc = size == 0 ? 0 : fs->Pread(fd, got.data(), size, 0);
  fs->Close(fd);
  if (rc != static_cast<ssize_t>(size)) {
    report->Problem(path + ": short read after recovery");
    return;
  }
  uint64_t durable_mismatches = 0, integrity_violations = 0;
  for (uint64_t o = 0; o < size; ++o) {
    bool inflight = InflightCovers(st, o);
    if (o < st.d.size() && st.d_defined[o] && !inflight) {
      if (got[o] != st.d[o]) {
        ++durable_mismatches;
      }
    } else if (!ByteAllowed(tf, o, got[o])) {
      ++integrity_violations;
    }
  }
  if (durable_mismatches > 0) {
    report->Problem(path + ": " + std::to_string(durable_mismatches) +
                    " durable byte(s) lost or corrupted");
  }
  if (integrity_violations > 0) {
    report->Problem(path + ": " + std::to_string(integrity_violations) +
                    " fabricated byte(s) after recovery");
  }
}

}  // namespace

OracleReport CheckRecoveredState(vfs::FileSystem* fs, const TraceModel& trace,
                                 const Guarantees& g) {
  OracleReport report;
  for (const auto& [create_path, tf] : trace.files()) {
    CheckFile(fs, tf, g, &report);
  }
  return report;
}

}  // namespace crash
