// Recovery oracles for the crash-consistency harness.
//
// The workload executor builds a TraceModel as it drives a file system: which writes
// and publishes (fsync/close) were *acknowledged* before the crash, which single
// operation was in flight, and every name each file ever had. After the crash image
// is materialized and recovery has run, CheckRecoveredState remounts the state
// through the vfs::FileSystem interface and validates it against the guarantees the
// system under test claims (Table 3 of the paper):
//
//   * existence   — a file whose creation reached a durable point must exist, and
//                   must be visible under exactly one of its names;
//   * durability  — bytes that were durable when acknowledged (in-place overwrites
//                   below the published size in every mode; everything in strict
//                   mode and in the PM baselines) must read back exactly;
//   * atomicity   — the recovered size must sit on a durable boundary (publish
//                   points for POSIX/sync appends; any acknowledged-op boundary for
//                   strict), never in the middle of a lost append;
//   * integrity   — every recovered byte must be either zero or a value some
//                   recorded write put at that offset: crash + recovery never
//                   fabricates data.
#ifndef SRC_CRASH_ORACLES_H_
#define SRC_CRASH_ORACLES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/vfs/file_system.h"

namespace crash {

// What the system under test promises about acknowledged operations.
struct Guarantees {
  // Acknowledged data writes are durable without fsync (strict-mode op logging; the
  // synchronous protocols of NOVA/PMFS/Strata).
  bool acked_data_durable = false;
  // Metadata operations (create, rename) are synchronous: durable once acknowledged.
  bool meta_sync_on_ack = false;
  // Appends only become visible at publish boundaries, so a recovered size must be a
  // publish-point size (SplitFS POSIX/sync). When false (or when acked_data_durable
  // holds), any size between the durable floor and the in-flight ceiling is legal.
  bool append_sizes_at_publish_boundaries = true;

  static Guarantees SplitFsPosix() { return {false, false, true}; }
  static Guarantees SplitFsSync() { return {false, true, true}; }
  static Guarantees SplitFsStrict() { return {true, true, true}; }
  // NOVA/PMFS/Strata: synchronous data + metadata; DRAM indices survive in the
  // model, so sizes are only bounded, not boundary-aligned.
  static Guarantees PmBaseline() { return {true, true, false}; }
};

struct FileEvent {
  enum class Kind : uint8_t { kWrite, kPublish };
  Kind kind = Kind::kWrite;
  uint64_t off = 0;
  uint64_t len = 0;
  uint8_t pattern = 0;  // Byte at offset o is PatternByte(pattern, o - off).
  bool acked = false;
};

// Deterministic payload generator shared by the executor and the oracle.
inline uint8_t PatternByte(uint8_t pattern, uint64_t i) {
  return static_cast<uint8_t>(pattern + i * 13);
}

struct TraceFile {
  std::string create_path;
  std::vector<std::string> paths;  // Every name ever given (create + rename targets).
  std::string current_path;        // Name after the last *acknowledged* rename.
  std::vector<FileEvent> events;   // Program order; at most the last is un-acked.
  bool create_acked = false;
  bool ever_published_acked = false;
  bool has_renames = false;
  bool last_rename_acked = true;
};

class TraceModel {
 public:
  TraceFile* Create(const std::string& path) {
    TraceFile& tf = files_[path];
    tf.create_path = path;
    tf.current_path = path;
    tf.paths.push_back(path);
    return &tf;
  }
  TraceFile* Get(const std::string& create_path) {
    auto it = files_.find(create_path);
    return it == files_.end() ? nullptr : &it->second;
  }
  const std::map<std::string, TraceFile>& files() const { return files_; }

 private:
  std::map<std::string, TraceFile> files_;  // Keyed by creation path.
};

struct OracleReport {
  std::vector<std::string> problems;
  bool ok() const { return problems.empty(); }
  void Problem(std::string what) { problems.push_back(std::move(what)); }
};

// Validates the post-recovery state of every traced file. `fs` must already have
// completed recovery; reads go through the ordinary Open/Pread path (the remount
// view), never through debug backdoors.
OracleReport CheckRecoveredState(vfs::FileSystem* fs, const TraceModel& trace,
                                 const Guarantees& g);

}  // namespace crash

#endif  // SRC_CRASH_ORACLES_H_
