#include "src/crash/crash_runner.h"

#include <numeric>

#include "src/common/bytes.h"
#include "src/ext4/fsck.h"
#include "src/nova/nova.h"
#include "src/pmfs/pmfs.h"
#include "src/strata/strata.h"

namespace crash {

using common::kBlockSize;
using common::kKiB;
using common::kMiB;

// --- Workload scripts ------------------------------------------------------------------

WorkloadScript MakeAppendScript(uint64_t seed) {
  common::Rng rng(seed ^ 0xA55A);
  WorkloadScript ws{"append", {}};
  const std::string f = "/a";
  ws.steps.push_back({Step::Kind::kOpenCreate, f, "", 0, 0, 0});
  ws.steps.push_back({Step::Kind::kFsync, f, "", 0, 0, 0});  // Create reaches disk.
  const uint64_t lens[] = {1000,          kBlockSize, 2 * kBlockSize + 37,
                           777,           kBlockSize + 501, 3 * kBlockSize};
  uint64_t size = 0;
  int i = 0;
  for (uint64_t len : lens) {
    ws.steps.push_back({Step::Kind::kWrite, f, "", size, len,
                        static_cast<uint8_t>(rng.Next())});
    size += len;
    if (i == 1 || i == 3) {
      ws.steps.push_back({Step::Kind::kFsync, f, "", 0, 0, 0});
    }
    ++i;
  }
  ws.steps.push_back({Step::Kind::kClose, f, "", 0, 0, 0});
  return ws;
}

WorkloadScript MakeOverwriteScript(uint64_t seed) {
  common::Rng rng(seed ^ 0x0E0E);
  WorkloadScript ws{"overwrite", {}};
  const std::string f = "/o";
  auto pat = [&rng] { return static_cast<uint8_t>(rng.Next()); };
  ws.steps.push_back({Step::Kind::kOpenCreate, f, "", 0, 0, 0});
  // Base image, published: subsequent overwrites below 16 KB are in-place.
  ws.steps.push_back({Step::Kind::kWrite, f, "", 0, 4 * kBlockSize, pat()});
  ws.steps.push_back({Step::Kind::kFsync, f, "", 0, 0, 0});
  ws.steps.push_back({Step::Kind::kWrite, f, "", 100, 300, pat()});  // Unaligned.
  ws.steps.push_back({Step::Kind::kWrite, f, "", kBlockSize, kBlockSize, pat()});
  // Staged append, then an overwrite that lands inside the staged range.
  ws.steps.push_back({Step::Kind::kWrite, f, "", 4 * kBlockSize, 1000, pat()});
  ws.steps.push_back({Step::Kind::kWrite, f, "", 4 * kBlockSize + 200, 600, pat()});
  ws.steps.push_back({Step::Kind::kFsync, f, "", 0, 0, 0});
  ws.steps.push_back({Step::Kind::kWrite, f, "", 0, 128, pat()});
  ws.steps.push_back({Step::Kind::kClose, f, "", 0, 0, 0});
  return ws;
}

WorkloadScript MakeRenameScript(uint64_t seed) {
  common::Rng rng(seed ^ 0x4E4E);
  WorkloadScript ws{"rename", {}};
  const std::string f = "/r0";
  auto pat = [&rng] { return static_cast<uint8_t>(rng.Next()); };
  ws.steps.push_back({Step::Kind::kOpenCreate, f, "", 0, 0, 0});
  ws.steps.push_back({Step::Kind::kWrite, f, "", 0, 2000, pat()});
  ws.steps.push_back({Step::Kind::kFsync, f, "", 0, 0, 0});
  ws.steps.push_back({Step::Kind::kRename, f, "/r1", 0, 0, 0});
  ws.steps.push_back({Step::Kind::kWrite, f, "", 2000, 3000, pat()});
  ws.steps.push_back({Step::Kind::kFsync, f, "", 0, 0, 0});
  ws.steps.push_back({Step::Kind::kRename, f, "/r2", 0, 0, 0});
  ws.steps.push_back({Step::Kind::kWrite, f, "", 100, 500, pat()});
  ws.steps.push_back({Step::Kind::kClose, f, "", 0, 0, 0});
  return ws;
}

std::vector<WorkloadScript> AllScripts(uint64_t seed) {
  return {MakeAppendScript(seed), MakeOverwriteScript(seed), MakeRenameScript(seed)};
}

void ExecuteScript(vfs::FileSystem* fs, const WorkloadScript& script,
                   TraceModel* trace) {
  std::map<std::string, int> fds;        // Logical file -> open descriptor.
  std::map<std::string, std::string> cur;  // Logical file -> current path.
  for (const Step& s : script.steps) {
    switch (s.kind) {
      case Step::Kind::kOpenCreate: {
        TraceFile* tf = trace->Create(s.file);
        cur[s.file] = s.file;
        int fd = fs->Open(s.file, vfs::kRdWr | vfs::kCreate);
        SPLITFS_CHECK(fd >= 0);
        fds[s.file] = fd;
        tf->create_acked = true;
        break;
      }
      case Step::Kind::kWrite: {
        TraceFile* tf = trace->Get(s.file);
        tf->events.push_back(
            {FileEvent::Kind::kWrite, s.off, s.len, s.pattern, /*acked=*/false});
        std::vector<uint8_t> buf(s.len);
        for (uint64_t i = 0; i < s.len; ++i) {
          buf[i] = PatternByte(s.pattern, i);
        }
        ssize_t rc = fs->Pwrite(fds.at(s.file), buf.data(), s.len, s.off);
        SPLITFS_CHECK(rc == static_cast<ssize_t>(s.len));
        tf->events.back().acked = true;
        break;
      }
      case Step::Kind::kFsync: {
        TraceFile* tf = trace->Get(s.file);
        tf->events.push_back({FileEvent::Kind::kPublish, 0, 0, 0, /*acked=*/false});
        SPLITFS_CHECK(fs->Fsync(fds.at(s.file)) == 0);
        tf->events.back().acked = true;
        tf->ever_published_acked = true;
        break;
      }
      case Step::Kind::kClose: {
        // Scripts only close after a prior fsync or with staged data outstanding, so
        // modeling close as a publish point is sound.
        TraceFile* tf = trace->Get(s.file);
        tf->events.push_back({FileEvent::Kind::kPublish, 0, 0, 0, /*acked=*/false});
        SPLITFS_CHECK(fs->Close(fds.at(s.file)) == 0);
        tf->events.back().acked = true;
        tf->ever_published_acked = true;
        fds.erase(s.file);
        break;
      }
      case Step::Kind::kRename: {
        TraceFile* tf = trace->Get(s.file);
        tf->has_renames = true;
        tf->last_rename_acked = false;
        tf->paths.push_back(s.to);  // Candidate name even if the rename is torn.
        SPLITFS_CHECK(fs->Rename(cur.at(s.file), s.to) == 0);
        cur[s.file] = s.to;
        tf->current_path = s.to;
        tf->last_rename_acked = true;
        break;
      }
    }
  }
}

// --- Worlds ----------------------------------------------------------------------------

int World::RecoverAll() {
  if (kfs != nullptr) {
    int rc = kfs->Recover();
    if (rc != 0) {
      return rc;
    }
  }
  return fs->Recover();
}

WorldFactory SplitFsWorldFactory(splitfs::Mode mode, bool async_relink) {
  return [mode, async_relink] {
    auto w = std::make_unique<World>();
    w->dev = std::make_unique<pmem::Device>(&w->ctx, 64 * kMiB);
    w->kfs = std::make_unique<ext4sim::Ext4Dax>(w->dev.get());
    splitfs::Options o;
    o.mode = mode;
    o.num_staging_files = 2;
    o.staging_file_bytes = 4 * kMiB;
    o.oplog_bytes = 256 * kKiB;
    o.async_relink = async_relink;  // Inline publisher: deterministic stores.
    w->fs = std::make_unique<splitfs::SplitFs>(w->kfs.get(), o);
    return w;
  };
}

WorldFactory BaselineWorldFactory(const std::string& which) {
  return [which] {
    auto w = std::make_unique<World>();
    w->dev = std::make_unique<pmem::Device>(&w->ctx, 64 * kMiB);
    if (which == "nova") {
      w->fs = std::make_unique<novasim::Nova>(w->dev.get(), /*strict=*/true);
    } else if (which == "pmfs") {
      w->fs = std::make_unique<pmfssim::Pmfs>(w->dev.get());
    } else if (which == "strata") {
      stratasim::StrataOptions so;
      so.private_log_bytes = 16 * kMiB;
      w->fs = std::make_unique<stratasim::Strata>(w->dev.get(), so);
    } else {
      SPLITFS_CHECK(false && "unknown baseline");
    }
    return w;
  };
}

// --- Matrix runner ---------------------------------------------------------------------

namespace {

void Mix(uint64_t* fp, uint64_t v) { *fp = (*fp ^ v) * 1099511628211ull; }

std::vector<uint64_t> StrideSample(const std::vector<uint64_t>& v, int max_n) {
  if (max_n <= 0 || v.empty()) {
    return {};
  }
  if (v.size() <= static_cast<size_t>(max_n)) {
    return v;
  }
  std::vector<uint64_t> out;
  out.reserve(max_n);
  for (int i = 0; i < max_n; ++i) {
    uint64_t pick = v[static_cast<size_t>(i) * v.size() / max_n];
    if (out.empty() || out.back() != pick) {
      out.push_back(pick);
    }
  }
  return out;
}

void ProbePostRecoveryService(vfs::FileSystem* fs, OracleReport* report) {
  // A recovered instance must keep serving: create, write, publish, read back.
  int fd = fs->Open("/__probe", vfs::kRdWr | vfs::kCreate);
  if (fd < 0) {
    report->Problem("post-recovery probe: open failed");
    return;
  }
  std::vector<uint8_t> out(3000);
  for (uint64_t i = 0; i < out.size(); ++i) {
    out[i] = PatternByte(0x5A, i);
  }
  if (fs->Pwrite(fd, out.data(), out.size(), 0) !=
          static_cast<ssize_t>(out.size()) ||
      fs->Fsync(fd) != 0) {
    report->Problem("post-recovery probe: write/fsync failed");
    fs->Close(fd);
    return;
  }
  std::vector<uint8_t> back(out.size());
  if (fs->Pread(fd, back.data(), back.size(), 0) !=
          static_cast<ssize_t>(back.size()) ||
      back != out) {
    report->Problem("post-recovery probe: read-back mismatch");
  }
  fs->Close(fd);
}

}  // namespace

CrashRunner::CrashRunner(WorldFactory factory, WorkloadScript script,
                         Guarantees guarantees, RunnerConfig config)
    : factory_(std::move(factory)),
      script_(std::move(script)),
      guarantees_(guarantees),
      cfg_(std::move(config)) {}

MatrixStats CrashRunner::Run() {
  MatrixStats stats;

  // --- Record run: journal the persistence traffic of a crash-free execution.
  auto rec_world = factory_();
  rec_world->dev->EnableCrashTracking(true);
  ShadowLog shadow(rec_world->dev.get());
  rec_world->dev->SetObserver(&shadow);
  TraceModel rec_trace;
  ExecuteScript(rec_world->fs.get(), script_, &rec_trace);
  rec_world->dev->SetObserver(nullptr);

  // --- Crash points: vulnerable fences + interior store ordinals.
  std::vector<CrashPoint> points;
  for (uint64_t e : StrideSample(shadow.VulnerableFenceEpochs(), cfg_.max_fence_points)) {
    points.push_back({CrashPoint::Trigger::kAtFence, e});
    ++stats.fence_points;
  }
  if (cfg_.max_store_points > 0 && shadow.store_count() > 0) {
    uint64_t prev = ~0ull;
    for (int i = 0; i < cfg_.max_store_points; ++i) {
      uint64_t ordinal = static_cast<uint64_t>(i + 1) * shadow.store_count() /
                         (cfg_.max_store_points + 1);
      if (ordinal != prev) {
        points.push_back({CrashPoint::Trigger::kAfterStore, ordinal});
        ++stats.store_points;
        prev = ordinal;
      }
    }
  }

  for (const CrashPoint& point : points) {
    for (FatePolicy fate : cfg_.fates) {
      RunOneState(point, fate, &stats);
    }
  }
  return stats;
}

void CrashRunner::RunOneState(const CrashPoint& point, FatePolicy fate,
                              MatrixStats* stats) {
  auto w = factory_();
  w->dev->EnableCrashTracking(true);
  CrashInjector injector(point);
  w->dev->SetObserver(&injector);
  TraceModel trace;
  try {
    ExecuteScript(w->fs.get(), script_, &trace);
  } catch (const CrashSignal&) {
    // Power cut: the unwound DRAM state above the device is dead; recovery below
    // rebuilds everything from the materialized crash image.
  }
  w->dev->SetObserver(nullptr);

  uint64_t fate_seed = cfg_.seed * 0x9E3779B97F4A7C15ull ^
                       (point.index * 1000003 + static_cast<uint64_t>(point.trigger)) ^
                       (static_cast<uint64_t>(fate) << 56);
  w->dev->CrashWith(MakeFate(fate, fate_seed | 1));

  OracleReport report;
  if (w->RecoverAll() != 0) {
    report.Problem("recovery returned nonzero");
  } else {
    report = CheckRecoveredState(w->fs.get(), trace, guarantees_);
    if (cfg_.check_fsck && w->kfs != nullptr) {
      ext4sim::FsckReport fsck = ext4sim::RunFsck(w->kfs.get());
      if (!fsck.clean) {
        report.Problem("fsck: " + fsck.problems.front());
      }
    }
    if (cfg_.post_recovery_probe) {
      ProbePostRecoveryService(w->fs.get(), &report);
    }
  }

  ++stats->crash_states;
  Mix(&stats->fingerprint, point.index * 2 + static_cast<uint64_t>(point.trigger));
  Mix(&stats->fingerprint, static_cast<uint64_t>(fate));
  for (const auto& [create_path, tf] : trace.files()) {
    for (const std::string& path : tf.paths) {
      vfs::StatBuf sb;
      Mix(&stats->fingerprint, w->fs->Stat(path, &sb) == 0 ? sb.size : ~0ull);
    }
  }
  if (!report.ok()) {
    ++stats->oracle_failures;
    if (stats->failures.size() < 20) {
      for (const std::string& p : report.problems) {
        stats->failures.push_back(script_.name + " @ " + point.Describe() + " / " +
                                  FateName(fate) + ": " + p);
      }
    }
  }
}

}  // namespace crash
