#include "src/ext4/fsck.h"

#include <map>
#include <set>
#include <shared_mutex>

#include "src/common/bytes.h"
#include "src/ext4/ext4_dax.h"

namespace ext4sim {

FsckReport RunFsck(Ext4Dax* fs) {
  FsckReport report;
  // Quiesce: the journal's pipeline slot plus the barrier held exclusively exclude
  // every metadata operation AND any in-flight commit writeout (whose deferred
  // actions mutate the allocator and inode table), so inode/namespace state can be
  // walked without per-inode locks (concurrent readers only touch the atomic
  // sequential-read hint).
  auto quiesce = fs->journal_.Quiesce();
  std::shared_lock<std::shared_mutex> itable(fs->itable_mu_);

  // Pass 1: walk every inode's extent tree; check bitmap agreement and aliasing.
  std::map<uint64_t, vfs::Ino> block_owner;  // phys block -> owning inode.
  uint64_t referenced_blocks = 0;
  for (const auto& [ino, inode] : fs->inodes_) {
    uint64_t mapped = 0;
    // FindRange over the whole space enumerates every extent.
    for (const auto& m : inode->extents.FindRange(0, UINT64_MAX / common::kBlockSize)) {
      mapped += m.count;
      for (uint64_t b = m.phys; b < m.phys + m.count; ++b) {
        if (!fs->alloc_.IsAllocated(b)) {
          report.Problem("inode " + std::to_string(ino) + " references free block " +
                         std::to_string(b));
        }
        auto [it, inserted] = block_owner.emplace(b, ino);
        if (!inserted) {
          report.Problem("block " + std::to_string(b) + " aliased by inodes " +
                         std::to_string(it->second) + " and " + std::to_string(ino));
        }
      }
    }
    referenced_blocks += mapped;
    if (mapped != inode->extents.MappedBlocks()) {
      report.Problem("inode " + std::to_string(ino) + " extent accounting mismatch");
    }
    // Size sanity: a regular file cannot map blocks wildly beyond its size unless
    // fallocated; we check the weaker invariant that size-covered blocks are <= maps
    // plus holes (sizes larger than mappings are fine — sparse files).
    if (inode->type == vfs::FileType::kRegular && inode->size > 0) {
      uint64_t last_needed = (inode->size - 1) / common::kBlockSize;
      for (const auto& m :
           inode->extents.FindRange(0, last_needed + 1)) {
        (void)m;  // Presence is fine; holes read as zeroes. Nothing to flag.
      }
    }
  }

  // Pass 2: allocator accounting. Every allocated block must be owned by exactly one
  // extent (journal/meta regions live outside the data allocator).
  uint64_t allocated = fs->alloc_.TotalBlocks() - fs->alloc_.FreeBlocks();
  if (allocated != referenced_blocks) {
    report.Problem("allocator says " + std::to_string(allocated) +
                   " blocks in use but extents reference " +
                   std::to_string(referenced_blocks) + " (leak or double-count)");
  }

  // Pass 3: directory graph. BFS from root; every dirent must point at a live inode;
  // no inode may be reached twice via directories (regular files may have nlink > 1 in
  // principle, but this model does not create hard links). Along the way, verify the
  // nlink invariants the metadata paths maintain:
  //   * directory nlink == 2 + number of subdirectories ('.' + parent entry + each
  //     child's '..');
  //   * each child directory's parent pointer names the directory it was found in;
  //   * reachable regular files have nlink == 1; orphans (unlinked) have nlink == 0.
  std::set<vfs::Ino> reachable;
  std::vector<vfs::Ino> queue{vfs::kRootIno};
  reachable.insert(vfs::kRootIno);
  while (!queue.empty()) {
    vfs::Ino cur = queue.back();
    queue.pop_back();
    auto it = fs->inodes_.find(cur);
    if (it == fs->inodes_.end()) {
      report.Problem("directory graph references missing inode " + std::to_string(cur));
      continue;
    }
    uint32_t subdirs = 0;
    for (const auto& [name, child] : it->second->dirents) {
      auto cit = fs->inodes_.find(child);
      if (cit == fs->inodes_.end()) {
        report.Problem("dirent '" + name + "' in inode " + std::to_string(cur) +
                       " points at missing inode " + std::to_string(child));
        continue;
      }
      if (!reachable.insert(child).second) {
        report.Problem("inode " + std::to_string(child) +
                       " reachable via multiple paths ('" + name + "')");
        continue;
      }
      if (cit->second->type == vfs::FileType::kDirectory) {
        ++subdirs;
        if (cit->second->parent != cur) {
          report.Problem("directory " + std::to_string(child) + " ('" + name +
                         "') has parent pointer " + std::to_string(cit->second->parent) +
                         " but lives in " + std::to_string(cur));
        }
        queue.push_back(child);
      } else if (cit->second->nlink != 1) {
        report.Problem("regular inode " + std::to_string(child) + " ('" + name +
                       "') has nlink " + std::to_string(cit->second->nlink) +
                       ", expected 1");
      }
    }
    uint32_t expected = 2 + subdirs;
    if (it->second->nlink != expected) {
      report.Problem("directory " + std::to_string(cur) + " has nlink " +
                     std::to_string(it->second->nlink) + ", expected " +
                     std::to_string(expected) + " (2 + " + std::to_string(subdirs) +
                     " subdirs)");
    }
  }
  for (const auto& [ino, inode] : fs->inodes_) {
    if (reachable.count(ino) == 0) {
      if (!inode->unlinked) {
        report.Problem("inode " + std::to_string(ino) +
                       " unreachable but not an orphan");
      } else if (inode->nlink != 0) {
        report.Problem("orphan inode " + std::to_string(ino) + " has nlink " +
                       std::to_string(inode->nlink) + ", expected 0");
      }
    }
  }

  // Pass 4: on-disk orphan list. Every live orphan must be listed (or its blocks
  // would leak if its deferred reclamation dies with a rolled-back transaction),
  // and every list entry must point at a live unlinked inode — after recovery the
  // list must have drained down to exactly the still-open orphans.
  {
    std::lock_guard<std::mutex> ol(fs->orphan_mu_);
    for (vfs::Ino ino : fs->orphans_) {
      auto it = fs->inodes_.find(ino);
      if (it == fs->inodes_.end()) {
        report.Problem("orphan list entry " + std::to_string(ino) +
                       " dangles (list failed to drain)");
      } else if (!it->second->unlinked) {
        report.Problem("orphan list entry " + std::to_string(ino) +
                       " references a linked inode");
      }
    }
    for (const auto& [ino, inode] : fs->inodes_) {
      if (inode->unlinked && reachable.count(ino) == 0 &&
          fs->orphans_.count(ino) == 0) {
        report.Problem("orphan inode " + std::to_string(ino) +
                       " missing from the on-disk orphan list");
      }
    }
  }
  return report;
}

}  // namespace ext4sim
