#include "src/ext4/extent_map.h"

#include <algorithm>

#include "src/common/status.h"

namespace ext4sim {

std::optional<MappedExtent> ExtentMap::Lookup(uint64_t logical) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = map_.upper_bound(logical);
  if (it == map_.begin()) {
    return std::nullopt;
  }
  --it;
  const MappedExtent& e = it->second;
  if (logical >= e.logical + e.count) {
    return std::nullopt;
  }
  uint64_t skip = logical - e.logical;
  return MappedExtent{logical, e.phys + skip, e.count - skip};
}

void ExtentMap::Insert(uint64_t logical, uint64_t phys, uint64_t count) {
  SPLITFS_CHECK(count > 0);
  std::unique_lock<std::shared_mutex> lk(mu_);
  // The target range must be a hole.
  SPLITFS_CHECK(FindRangeLocked(logical, count).empty());

  MappedExtent e{logical, phys, count};

  // Merge with predecessor if logically and physically contiguous.
  auto it = map_.lower_bound(logical);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    const MappedExtent& p = prev->second;
    if (p.logical + p.count == logical && p.phys + p.count == phys) {
      e.logical = p.logical;
      e.phys = p.phys;
      e.count += p.count;
      map_.erase(prev);
    }
  }
  // Merge with successor.
  it = map_.lower_bound(e.logical + 1);
  if (it != map_.end()) {
    const MappedExtent& s = it->second;
    if (e.logical + e.count == s.logical && e.phys + e.count == s.phys) {
      e.count += s.count;
      map_.erase(it);
    }
  }
  map_[e.logical] = e;
}

std::vector<PhysExtent> ExtentMap::RemoveRange(uint64_t logical, uint64_t count) {
  std::vector<PhysExtent> removed;
  if (count == 0) {
    return removed;
  }
  std::unique_lock<std::shared_mutex> lk(mu_);
  uint64_t end = logical + count;

  auto it = map_.upper_bound(logical);
  if (it != map_.begin()) {
    --it;
  }
  while (it != map_.end() && it->second.logical < end) {
    MappedExtent e = it->second;
    uint64_t e_end = e.logical + e.count;
    if (e_end <= logical) {
      ++it;
      continue;
    }
    // Overlap is [ov_start, ov_end).
    uint64_t ov_start = std::max(e.logical, logical);
    uint64_t ov_end = std::min(e_end, end);
    removed.push_back({e.phys + (ov_start - e.logical), ov_end - ov_start});

    it = map_.erase(it);
    if (e.logical < ov_start) {  // Left remainder survives.
      MappedExtent left{e.logical, e.phys, ov_start - e.logical};
      it = map_.insert({left.logical, left}).first;
      ++it;
    }
    if (ov_end < e_end) {  // Right remainder survives.
      MappedExtent right{ov_end, e.phys + (ov_end - e.logical), e_end - ov_end};
      it = map_.insert({right.logical, right}).first;
      ++it;
    }
  }
  return removed;
}

std::vector<MappedExtent> ExtentMap::FindRangeLocked(uint64_t logical,
                                                     uint64_t count) const {
  std::vector<MappedExtent> out;
  if (count == 0) {
    return out;
  }
  uint64_t end = logical + count;
  auto it = map_.upper_bound(logical);
  if (it != map_.begin()) {
    --it;
  }
  for (; it != map_.end() && it->second.logical < end; ++it) {
    const MappedExtent& e = it->second;
    uint64_t e_end = e.logical + e.count;
    if (e_end <= logical) {
      continue;
    }
    uint64_t ov_start = std::max(e.logical, logical);
    uint64_t ov_end = std::min(e_end, end);
    out.push_back({ov_start, e.phys + (ov_start - e.logical), ov_end - ov_start});
  }
  return out;
}

std::vector<MappedExtent> ExtentMap::FindRange(uint64_t logical, uint64_t count) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return FindRangeLocked(logical, count);
}

uint64_t ExtentMap::MappedBlocks() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  uint64_t total = 0;
  for (const auto& [k, e] : map_) {
    total += e.count;
  }
  return total;
}

size_t ExtentMap::ExtentCount() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return map_.size();
}

bool ExtentMap::Empty() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return map_.empty();
}

std::vector<PhysExtent> ExtentMap::Clear() {
  std::unique_lock<std::shared_mutex> lk(mu_);
  std::vector<PhysExtent> out;
  out.reserve(map_.size());
  for (const auto& [k, e] : map_) {
    out.push_back({e.phys, e.count});
  }
  map_.clear();
  return out;
}

}  // namespace ext4sim
