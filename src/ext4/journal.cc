#include "src/ext4/journal.h"

#include <array>

#include "src/common/bytes.h"

namespace ext4sim {

using common::kBlockSize;

Journal::Journal(pmem::Device* dev, uint64_t journal_start_block, uint64_t journal_blocks)
    : dev_(dev),
      ctx_(dev->context()),
      journal_start_(journal_start_block * kBlockSize),
      journal_bytes_(journal_blocks * kBlockSize) {
  SPLITFS_CHECK(journal_blocks >= 8);
}

void Journal::Dirty(uint64_t meta_block_id, std::function<void()> undo) {
  std::lock_guard<std::mutex> lock(state_mu_);
  running_dirty_.insert(meta_block_id);
  if (undo) {
    running_undo_.push_back(std::move(undo));
  }
}

void Journal::OnCommit(std::function<void()> action) {
  std::lock_guard<std::mutex> lock(state_mu_);
  running_on_commit_.push_back(std::move(action));
}

size_t Journal::RunningDirtyBlocks() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return running_dirty_.size();
}

bool Journal::RunningEmpty() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return running_dirty_.empty() && running_undo_.empty();
}

void Journal::ChargeCommitIo(size_t n_meta_blocks) {
  // JBD2 writes: one descriptor block, each logged metadata block, one commit record.
  // All land in the journal region of PM; the journal area is written with real bytes
  // so wear accounting and the write-amplification comparisons are honest.
  static thread_local std::array<uint8_t, kBlockSize> scratch{};
  size_t total_blocks = n_meta_blocks + 2;
  for (size_t i = 0; i < total_blocks; ++i) {
    if (write_cursor_ + kBlockSize > journal_bytes_) {
      write_cursor_ = 0;
    }
    dev_->StoreNt(journal_start_ + write_cursor_, scratch.data(), kBlockSize,
                  sim::PmWriteKind::kJournal);
    write_cursor_ += kBlockSize;
  }
  // Fence before the commit record, fence after (JBD2's ordering requirement).
  dev_->Fence();
  dev_->Fence();
  ctx_->ChargeCpu(ctx_->model.ext4_journal_commit_cpu_ns);
  ctx_->stats.AddJournalCommit();
  commits_.fetch_add(1, std::memory_order_relaxed);
}

void Journal::CommitRunning(bool fsync_barrier) {
  // The exclusive barrier waits for in-flight handles and blocks new ones: the
  // commit sees every joined operation complete, none half-done. On-commit actions
  // run under it, so they may inspect inode state without further locking beyond
  // what they take themselves.
  std::unique_lock<std::shared_mutex> barrier(handle_mu_);
  uint64_t t0 = commit_stamp_.Acquire(&ctx_->clock);
  std::vector<std::function<void()>> actions;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    if (running_dirty_.empty() && running_on_commit_.empty()) {
      return;  // Clean journal: fsync returns without the commit-thread handshake.
    }
    if (fsync_barrier) {
      ctx_->ChargeCpu(ctx_->model.ext4_fsync_barrier_ns);
    }
    ChargeCommitIo(running_dirty_.size());
    running_dirty_.clear();
    running_undo_.clear();  // Mutations are now durable.
    actions.swap(running_on_commit_);
  }
  // Deferred actions run after the state mutex drops (still under the exclusive
  // barrier, so the transaction boundary is unchanged): they take inode/allocator
  // locks, and operations take the state mutex *while holding* inode locks
  // (journal_.Dirty inside a write path) — running them under state_mu_ would
  // invert that order. Their time still counts as commit service time.
  for (auto& action : actions) {
    action();
  }
  commit_stamp_.Release(&ctx_->clock, t0);
}

void Journal::CommitStandalone(size_t n_meta_blocks) {
  std::lock_guard<std::mutex> state(state_mu_);
  sim::ScopedResourceTime commit_time(&commit_stamp_, &ctx_->clock);
  ChargeCommitIo(n_meta_blocks);
}

void Journal::RecoverDiscardRunning() {
  std::unique_lock<std::shared_mutex> barrier(handle_mu_);
  std::vector<std::function<void()>> undos;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    undos.swap(running_undo_);
    running_dirty_.clear();
    running_on_commit_.clear();  // Deferred frees die with the transaction.
  }
  // Undos run newest-first outside the state mutex (same discipline as commit
  // actions — they touch the inode table and allocator).
  for (auto it = undos.rbegin(); it != undos.rend(); ++it) {
    (*it)();
  }
}

}  // namespace ext4sim
