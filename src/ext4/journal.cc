#include "src/ext4/journal.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <thread>

#include "src/analysis/annotations.h"
#include "src/analysis/persist_checker.h"
#include "src/common/bytes.h"
#include "src/common/service_pool.h"

namespace ext4sim {

using common::kBlockSize;

namespace {
// Real-time grace inside the coalescing window: long enough for concurrently running
// application threads to reach log_start_commit and pile onto the delayed
// transaction, short enough to be invisible in wall-clock terms. The *virtual* cost
// of the window is commit_interval_ns, charged independently of this constant, so
// simulated timelines never depend on host scheduling.
constexpr std::chrono::microseconds kCommitWindowRealGrace(50);
}  // namespace

Journal::Journal(pmem::Device* dev, uint64_t journal_start_block, uint64_t journal_blocks,
                 uint64_t commit_interval_ns)
    : dev_(dev),
      ctx_(dev->context()),
      journal_start_(journal_start_block * kBlockSize),
      journal_bytes_(journal_blocks * kBlockSize),
      commit_interval_ns_(commit_interval_ns) {
  SPLITFS_CHECK(journal_blocks >= 8);
  running_ = std::make_unique<Transaction>();
  running_->tid = next_tid_++;

  // Pull-model gauges: evaluated only when the registry snapshots, reading through
  // this journal's own synchronization (acquire loads / state_mu_).
  obs::MetricsRegistry* m = &ctx_->obs.metrics;
  m->RegisterGauge("journal.pipeline_depth", [this]() -> uint64_t {
    std::lock_guard<std::mutex> state(state_mu_);
    return committing_tid_ != 0 ? 1 : 0;
  });
  m->RegisterGauge("journal.commits",
                   [this]() { return commits_.load(std::memory_order_acquire); });
  m->RegisterGauge("journal.committed_tid", [this]() { return CommittedTid(); });
  m->RegisterGauge("journal.commit_service_ns",
                   [this]() { return commit_stamp_.busy_ns(); });
  m->RegisterGauge("journal.running_dirty_blocks",
                   [this]() { return static_cast<uint64_t>(RunningDirtyBlocks()); });
  m->RegisterGauge("journal.free_space", [this]() { return FreeLogBytes(); });
  m->RegisterGauge("journal.checkpoint_stall", [this]() { return CheckpointStalls(); });
  m->RegisterGauge("journal.checkpoint_writeback_blocks", [this]() {
    return checkpoint_writeback_blocks_.load(std::memory_order_relaxed);
  });
  m->RegisterGauge("journal.commit_windows", [this]() {
    return coalesced_windows_.load(std::memory_order_relaxed);
  });
}

Journal::~Journal() { ctx_->obs.metrics.DeregisterGauges("journal."); }

void Journal::Dirty(uint64_t meta_block_id, std::function<void()> undo) {
  std::lock_guard<std::mutex> lock(state_mu_);
  analysis::ScopedLockNote note(analysis::LockWitness::Global(), StateSite());
  running_->dirty.insert(meta_block_id);
  if (undo) {
    running_->undo.push_back(std::move(undo));
  }
}

void Journal::OnCommit(std::function<void()> action) {
  std::lock_guard<std::mutex> lock(state_mu_);
  analysis::ScopedLockNote note(analysis::LockWitness::Global(), StateSite());
  running_->on_commit.push_back(std::move(action));
}

size_t Journal::RunningDirtyBlocks() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return running_->dirty.size();
}

bool Journal::RunningEmpty() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return running_->Empty();
}

uint64_t Journal::RunningTid() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return running_->tid;
}

void Journal::WaitForCommit(uint64_t tid) {
  if (CommittedTid() < tid) {
    std::unique_lock<std::mutex> wl(wait_mu_);
    commit_cv_.wait(wl, [this, tid] { return CommittedTid() >= tid; });
  }
  // The tid's writeout rendered commit service time while this thread slept; its
  // lane-bound virtual timeline resumes after that work, like the real wait did.
  uint64_t w = commit_stamp_.AcquireShared(&ctx_->clock);
  obs::ReportWait(&ctx_->obs, &ctx_->clock, "journal.tid_wait", w);
}

bool Journal::LogNearFullLocked() const {
  // "Near full": even after logging the current running transaction (descriptor +
  // dirty blocks + commit record, doubled for slack the way jbd2 reserves credits),
  // the log would overflow and the committer would stall in checkpoint writeback.
  // Holding the coalescing window open in that state only deepens the stall.
  uint64_t used = log_used_bytes_.load(std::memory_order_acquire);
  uint64_t running_cost = 2 * (RunningDirtyBlocks() + 2) * kBlockSize;
  return used + running_cost > journal_bytes_;
}

void Journal::EnsureLogSpaceLocked(uint64_t needed_bytes) {
  // Caller holds commit_mu_ (the single-committer pipeline slot), so the
  // checkpoint queue and cursor are stable. Fast path: the log still has room.
  if (log_used_bytes_.load(std::memory_order_acquire) + needed_bytes <= journal_bytes_ ||
      checkpoint_queue_.empty()) {
    return;
  }
  // Log full: jbd2 stalls the committer while checkpoint writeback copies still-live
  // logged metadata blocks to their home locations and advances the log tail
  // (Strata's log digestion is the same move). The stall is real commit service
  // time — it lands in commit_service_ns and every tid/pipeline waiter sits behind
  // it — and is attributed in the contention ledger under "journal.checkpoint".
  checkpoint_stalls_.fetch_add(1, std::memory_order_relaxed);
  uint64_t t0 = ctx_->clock.Now();
  obs::ScopedSpan span(&ctx_->obs.tracer, &ctx_->clock, "journal", "journal.checkpoint",
                       "needed_bytes", needed_bytes);
  if (checkpoint_hook_) {
    checkpoint_hook_();
  }
  static thread_local std::array<uint8_t, kBlockSize> scratch{};
  // Reclaim at least a quarter of the log per stall so a storm of maximal commits
  // doesn't checkpoint one transaction at a time.
  uint64_t reclaim_target = std::max(needed_bytes, journal_bytes_ / 4);
  uint64_t reclaimed = 0;
  uint64_t written_back = 0;
  while (reclaimed < reclaim_target && !checkpoint_queue_.empty()) {
    LoggedTx tx = std::move(checkpoint_queue_.front());
    checkpoint_queue_.pop_front();
    for (uint64_t id : tx.ids) {
      auto it = live_logged_.find(id);
      SPLITFS_CHECK(it != live_logged_.end() && it->second > 0);
      if (--it->second == 0) {
        live_logged_.erase(it);
        // Newest logged copy of this block: write it back to its home location.
        // Older copies were superseded in the log and are dropped for free — the
        // dedup that makes a bigger journal absorb metadata rewrites.
        dev_->StoreNt(journal_start_, scratch.data(), kBlockSize,
                      sim::PmWriteKind::kMetadata);
        ++written_back;
      }
    }
    for (uint64_t i = 0; i < tx.anon_blocks; ++i) {
      // Standalone commits log blocks with no identity; every copy is live.
      dev_->StoreNt(journal_start_, scratch.data(), kBlockSize,
                    sim::PmWriteKind::kMetadata);
      ++written_back;
    }
    reclaimed += tx.blocks * kBlockSize;
  }
  // Advance the log tail durably (jbd2 updates the journal superblock), then
  // account the bookkeeping CPU.
  dev_->StoreNt(journal_start_, scratch.data(), kBlockSize, sim::PmWriteKind::kJournal);
  dev_->Fence();
  ctx_->ChargeCpu(ctx_->model.ext4_checkpoint_cpu_ns);
  checkpoint_writeback_blocks_.fetch_add(written_back, std::memory_order_relaxed);
  log_used_bytes_.fetch_sub(std::min(
      reclaimed, log_used_bytes_.load(std::memory_order_acquire)),
      std::memory_order_acq_rel);
  obs::ReportWait(&ctx_->obs, &ctx_->clock, "journal.checkpoint",
                  ctx_->clock.Now() - t0);
}

void Journal::ChargeCommitIo(const std::set<uint64_t>* dirty_ids, size_t n_anon_blocks) {
  // JBD2 writes: one descriptor block, each logged metadata block, one commit record.
  // All land in the journal region of PM; the journal area is written with real bytes
  // so wear accounting and the write-amplification comparisons are honest.
  static thread_local std::array<uint8_t, kBlockSize> scratch{};
  analysis::ScopedLintSite lint("journal.commit");
  size_t n_meta_blocks = (dirty_ids != nullptr ? dirty_ids->size() : 0) + n_anon_blocks;
  size_t total_blocks = n_meta_blocks + 2;
  EnsureLogSpaceLocked(total_blocks * kBlockSize);
  auto store_block = [this]() {
    if (write_cursor_ + kBlockSize > journal_bytes_) {
      write_cursor_ = 0;
    }
    uint64_t off = journal_start_ + write_cursor_;
    dev_->StoreNt(off, scratch.data(), kBlockSize, sim::PmWriteKind::kJournal);
    write_cursor_ += kBlockSize;
    return off;
  };
  // Descriptor + logged metadata blocks first; they are the commit record's payload
  // (rule (b), strict: the record must reach a *later* fence than every payload
  // block, or a crash between them can expose a committed-looking transaction whose
  // body never drained).
  for (size_t i = 0; i + 1 < total_blocks; ++i) {
    uint64_t off = store_block();
    analysis::CoverPayload(dev_, off, kBlockSize);
  }
  if (!legacy_commit_order_for_test_) {
    // JBD2's ordering: fence the payload, then store the commit record, then fence
    // it. The payload fence persists n_meta_blocks+1 nt-stores (pm_store_fence_ns);
    // the old order issued both fences after the record, leaving the second one
    // empty (fence_ns) and the record ordered *with* its payload, not after it.
    dev_->Fence();
    uint64_t rec_off = store_block();
    analysis::SealCover(dev_, rec_off, kBlockSize, /*strict=*/true, "journal.commit");
    dev_->Fence();
  } else {
    // Test-only mutation (set_legacy_commit_order_for_test): the pre-fix order —
    // record stored with the payload, both fences after. The checker's strict
    // publish-before-persist rule must flag the record persisting at the same
    // fence as its payload, and the second fence is an empty-fence lint hit.
    uint64_t rec_off = store_block();
    analysis::SealCover(dev_, rec_off, kBlockSize, /*strict=*/true, "journal.commit");
    dev_->Fence();
    dev_->Fence();
  }
  ctx_->ChargeCpu(ctx_->model.ext4_journal_commit_cpu_ns);
  ctx_->stats.AddJournalCommit();
  commits_.fetch_add(1, std::memory_order_relaxed);
  // The transaction now occupies log space until checkpoint writeback retires it.
  LoggedTx logged;
  logged.blocks = total_blocks;
  logged.anon_blocks = n_anon_blocks;
  if (dirty_ids != nullptr) {
    logged.ids.assign(dirty_ids->begin(), dirty_ids->end());
    for (uint64_t id : logged.ids) {
      ++live_logged_[id];
    }
  }
  checkpoint_queue_.push_back(std::move(logged));
  log_used_bytes_.fetch_add(total_blocks * kBlockSize, std::memory_order_acq_rel);
}

void Journal::NoteCommitRequest(const char* who, uint64_t tid) {
  std::lock_guard<std::mutex> lock(attr_mu_);
  uint64_t& pending = pending_attr_[who];
  pending = std::max(pending, tid);
  attr_stamps_[who];  // Materialize the stamp so the gauge can read it.
}

void Journal::AttributeCommitService(uint64_t target, uint64_t dt) {
  std::vector<sim::ResourceStamp*> satisfied;
  {
    std::lock_guard<std::mutex> lock(attr_mu_);
    for (auto it = pending_attr_.begin(); it != pending_attr_.end();) {
      if (it->second <= target) {
        satisfied.push_back(&attr_stamps_[it->first]);
        it = pending_attr_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (satisfied.empty() || dt == 0) {
    return;
  }
  // Equal split: every satisfied tag's durability horizon needed this one writeout,
  // and the writeout's cost is dominated by the shared descriptor/record/fence
  // machinery, not any one tag's dirty blocks.
  uint64_t share = dt / satisfied.size();
  for (sim::ResourceStamp* stamp : satisfied) {
    stamp->AddBusy(&ctx_->clock, share);
  }
}

uint64_t Journal::AttributedCommitServiceNs(const std::string& who) const {
  std::lock_guard<std::mutex> lock(attr_mu_);
  auto it = attr_stamps_.find(who);
  return it == attr_stamps_.end() ? 0 : it->second.busy_ns();
}

void Journal::CommitRunning(bool fsync_barrier, const char* who) {
  // Durability horizon under state_mu_: the running transaction if it carries
  // anything, else everything before it. The RunningEmpty predicate must match the
  // commit's own notion of "nothing to do" — a transaction holding only a deferred
  // inode free still needs its commit record.
  uint64_t target;
  bool in_flight;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    target = running_->Empty() ? running_->tid - 1 : running_->tid;
    in_flight = committing_tid_ != 0 && committing_tid_ >= target;
  }
  if (CommittedTid() >= target) {
    return;  // Clean journal: fsync returns without the commit-thread handshake.
  }
  if (who != nullptr) {
    NoteCommitRequest(who, target);
  }
  if (in_flight) {
    // The horizon is already being written out by another thread: log_wait_commit
    // instead of queueing for the pipeline slot.
    WaitForCommit(target);
    return;
  }
  if (service_pool_ != nullptr && !service_pool_->OnWorkerThread()) {
    // Shared commit service: record the tid, hand the writeout to the pool, and
    // sleep in log_wait_commit. The fsync commit-thread handshake is the *caller's*
    // cost (it exists precisely because the committer is another thread), so it is
    // charged here on the caller's timeline; the pass itself commits barrier-free.
    if (fsync_barrier) {
      ctx_->ChargeCpu(ctx_->model.ext4_fsync_barrier_ns);
    }
    uint64_t prev = requested_tid_.load(std::memory_order_relaxed);
    while (prev < target &&
           !requested_tid_.compare_exchange_weak(prev, target,
                                                 std::memory_order_acq_rel)) {
    }
    service_pool_->Submit(reinterpret_cast<uint64_t>(this),
                          [this] { ServiceCommitPass(); },
                          /*dedup_queued=*/true);
    WaitForCommit(target);
    return;
  }
  CommitTid(target, fsync_barrier);
}

void Journal::ServiceCommitPass() {
  // The pass binds a clock lane: its device stores and cpu charges accrue to a
  // private timeline and the commit stamp, so lane-bound waiters fast-forward past
  // exactly the service time a caller-side commit would have rendered.
  sim::Clock::Lane lane(&ctx_->clock);
  for (;;) {
    uint64_t want = requested_tid_.load(std::memory_order_acquire);
    if (CommittedTid() >= want) {
      return;
    }
    CommitTid(want, /*fsync_barrier=*/false);
  }
}

void Journal::SetServicePool(common::ServicePool* pool) {
  if (service_pool_ != nullptr && pool == nullptr) {
    service_pool_->Drain(reinterpret_cast<uint64_t>(this));
  }
  service_pool_ = pool;
}

void Journal::CommitTid(uint64_t target, bool fsync_barrier) {
  // The pipeline slot: one transaction writes out at a time. Queueing here is the
  // real jbd2 wait "for the previous commit to finish before starting ours".
  std::unique_lock<std::mutex> pipeline(commit_mu_);
  analysis::ScopedLockNote pipeline_note(analysis::LockWitness::Global(), PipelineSite());
  if (CommittedTid() >= target) {
    // Another committer carried our tid (or a later one sealed it into its own
    // commit) while we queued; we really waited for that service time.
    uint64_t w = commit_stamp_.AcquireShared(&ctx_->clock);
    obs::ReportWait(&ctx_->obs, &ctx_->clock, "journal.pipeline_slot", w);
    return;
  }
  // Per-tag attribution measures the same bracket on this thread's own timeline
  // (the window, seal, writeout, and actions below); the split happens after the
  // tid publishes.
  uint64_t attr_t0 = ctx_->clock.Now();
  // Commit service time brackets the seal and the writeout: a serial resource
  // renders at most one second of service per second, and every later waiter's
  // timeline must sit after it. RAII so no exit path — including a crash-injection
  // unwind mid-writeout — can leave the stamp unbalanced.
  sim::ScopedResourceTime service(&commit_stamp_, &ctx_->clock);
  obs::ReportWait(&ctx_->obs, &ctx_->clock, "journal.pipeline_slot", service.waited_ns());

  if (commit_interval_ns_ > 0 && !LogNearFullLocked()) {
    // Commit coalescing (jbd2's j_commit_interval): hold the pipeline slot with the
    // running transaction still open, so fsyncs arriving during the window join the
    // same tid instead of queueing their own commit. The window is charged as
    // commit service time — log_wait_commit latency includes it, which is exactly
    // the latency-for-bandwidth trade the knob buys. Skipped when the log is nearly
    // full: delaying the seal there would only deepen the checkpoint stall.
    obs::ScopedSpan window_span(&ctx_->obs.tracer, &ctx_->clock, "journal",
                                "journal.commit_window", "tid", target);
    if (commit_window_hook_) {
      commit_window_hook_();
    }
    ctx_->clock.Advance(commit_interval_ns_);
    // Real-time grace so concurrently running threads actually reach the running
    // transaction before the seal; virtual cost is the Advance above, not this.
    std::this_thread::sleep_for(kCommitWindowRealGrace);
    coalesced_windows_.fetch_add(1, std::memory_order_relaxed);
  }

  {
    obs::ScopedSpan seal_span(&ctx_->obs.tracer, &ctx_->clock, "journal", "journal.seal",
                              "tid", target);
    // Seal: the exclusive barrier waits for in-flight handles and blocks new ones
    // only for this swap — the commit captures every joined operation complete,
    // none half-done, and T_{n+1} starts accepting handles the moment we release.
    std::unique_lock<std::shared_mutex> barrier(handle_mu_);
    analysis::ScopedLockNote barrier_note(analysis::LockWitness::Global(), BarrierSite());
    std::lock_guard<std::mutex> state(state_mu_);
    analysis::ScopedLockNote state_note(analysis::LockWitness::Global(), StateSite());
    // We hold the pipeline slot and committed < target, so the target can only be
    // the (non-empty) running transaction — unless a recovery discarded it, in
    // which case there is nothing left to write.
    if (running_->Empty() || running_->tid != target) {
      return;
    }
    committing_ = std::move(running_);
    committing_tid_ = target;
    running_ = std::make_unique<Transaction>();
    running_->tid = next_tid_++;
  }

  if (mid_writeout_hook_) {
    mid_writeout_hook_();
  }

  // Writeout, with the barrier released. A crash below unwinds with committing_
  // still holding its undo stack — RecoverDiscardRunning rolls back the fresh
  // running transaction first, then this unsealed one, newest mutation first.
  {
    obs::ScopedSpan writeout_span(&ctx_->obs.tracer, &ctx_->clock, "journal",
                                  "journal.writeout", "tid", target);
    if (fsync_barrier) {
      ctx_->ChargeCpu(ctx_->model.ext4_fsync_barrier_ns);
    }
    ChargeCommitIo(&committing_->dirty, 0);
  }

  // The commit record is durable: drop the undos, then run the deferred actions.
  // Actions execute outside state_mu_ AND outside the barrier: they take inode and
  // allocator locks, and operations take the state mutex *while holding* inode
  // locks (journal_.Dirty inside a write path) — running them under state_mu_
  // would invert that order, and the pipeline means concurrent handles may be
  // mid-operation, so each action synchronizes on the locks it needs.
  std::vector<std::function<void()>> actions;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    committing_->dirty.clear();
    committing_->undo.clear();
    actions.swap(committing_->on_commit);
  }
  for (auto& action : actions) {
    action();
  }
  {
    std::lock_guard<std::mutex> state(state_mu_);
    committing_.reset();
    committing_tid_ = 0;
  }
  committed_tid_.store(target, std::memory_order_release);
  // Split the writeout's measured virtual duration across the tags it satisfied.
  // Off-clock brackets (inline background twins) rewind their charge — consistent
  // with a real background thread, their service is foreground-costless, so it
  // attributes nothing.
  if (!sim::Clock::OffClock()) {
    uint64_t attr_now = ctx_->clock.Now();
    AttributeCommitService(target, attr_now > attr_t0 ? attr_now - attr_t0 : 0);
  }
  {
    // Empty section: a log_wait_commit sleeper that checked the predicate before
    // the store above is inside wait(), so the notify cannot be lost.
    std::lock_guard<std::mutex> wl(wait_mu_);
  }
  commit_cv_.notify_all();
}

void Journal::CommitStandalone(size_t n_meta_blocks) {
  // Serializes on the pipeline slot (the journal region has one write cursor) but
  // bypasses the transaction stream entirely.
  std::lock_guard<std::mutex> pipeline(commit_mu_);
  analysis::ScopedLockNote pipeline_note(analysis::LockWitness::Global(), PipelineSite());
  sim::ScopedResourceTime commit_time(&commit_stamp_, &ctx_->clock);
  obs::ReportWait(&ctx_->obs, &ctx_->clock, "journal.pipeline_slot",
                  commit_time.waited_ns());
  obs::ScopedSpan span(&ctx_->obs.tracer, &ctx_->clock, "journal", "journal.standalone");
  ChargeCommitIo(nullptr, n_meta_blocks);
}

void Journal::RecoverDiscardRunning() {
  std::unique_lock<std::mutex> pipeline(commit_mu_);
  analysis::ScopedLockNote pipeline_note(analysis::LockWitness::Global(), PipelineSite());
  std::unique_lock<std::shared_mutex> barrier(handle_mu_);
  analysis::ScopedLockNote barrier_note(analysis::LockWitness::Global(), BarrierSite());
  // Oldest-first concatenation: an unsealed committing transaction's mutations
  // predate everything in the running transaction.
  std::vector<std::function<void()>> undos;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    if (committing_ != nullptr) {
      undos = std::move(committing_->undo);
    }
    for (auto& u : running_->undo) {
      undos.push_back(std::move(u));
    }
    committing_.reset();  // Deferred frees die with their transactions.
    committing_tid_ = 0;
    running_ = std::make_unique<Transaction>();
    running_->tid = next_tid_++;
    // A remount replays committed tids to their home locations and restarts the
    // log empty: the checkpoint accounting resets with it (the DRAM mirror of the
    // journal superblock's head/tail).
    checkpoint_queue_.clear();
    live_logged_.clear();
    log_used_bytes_.store(0, std::memory_order_release);
    // Every tid below the fresh running transaction is now settled: durable if it
    // committed, rolled back here otherwise — none can ever commit later. Publish
    // that horizon, or every post-recovery clean fsync would chase the discarded
    // tids through the commit path (pipeline slot + exclusive barrier) forever
    // instead of taking the documented clean fast path.
    committed_tid_.store(running_->tid - 1, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> wl(wait_mu_);
  }
  // Defensive: recovery is a quiesce point, so no fsync can legally be sleeping on
  // a tid this rollback discards — but if that contract were ever violated, waking
  // the sleeper beats hanging it forever. (Real jbd2 would abort the journal and
  // surface EIO from log_wait_commit; this model has no journal-abort state.)
  commit_cv_.notify_all();
  // Undos run newest-first outside the state mutex (same discipline as commit
  // actions — they touch the inode table and allocator): the running transaction's
  // mutations unwind before the committing transaction's they were stacked on.
  for (auto it = undos.rbegin(); it != undos.rend(); ++it) {
    (*it)();
  }
}

}  // namespace ext4sim
