#include "src/ext4/journal.h"

#include <array>

#include "src/common/bytes.h"

namespace ext4sim {

using common::kBlockSize;

Journal::Journal(pmem::Device* dev, uint64_t journal_start_block, uint64_t journal_blocks)
    : dev_(dev),
      ctx_(dev->context()),
      journal_start_(journal_start_block * kBlockSize),
      journal_bytes_(journal_blocks * kBlockSize) {
  SPLITFS_CHECK(journal_blocks >= 8);
}

void Journal::Dirty(uint64_t meta_block_id, std::function<void()> undo) {
  running_dirty_.insert(meta_block_id);
  if (undo) {
    running_undo_.push_back(std::move(undo));
  }
}

void Journal::ChargeCommitIo(size_t n_meta_blocks) {
  // JBD2 writes: one descriptor block, each logged metadata block, one commit record.
  // All land in the journal region of PM; the journal area is written with real bytes
  // so wear accounting and the write-amplification comparisons are honest.
  static thread_local std::array<uint8_t, kBlockSize> scratch{};
  size_t total_blocks = n_meta_blocks + 2;
  for (size_t i = 0; i < total_blocks; ++i) {
    if (write_cursor_ + kBlockSize > journal_bytes_) {
      write_cursor_ = 0;
    }
    dev_->StoreNt(journal_start_ + write_cursor_, scratch.data(), kBlockSize,
                  sim::PmWriteKind::kJournal);
    write_cursor_ += kBlockSize;
  }
  // Fence before the commit record, fence after (JBD2's ordering requirement).
  dev_->Fence();
  dev_->Fence();
  ctx_->ChargeCpu(ctx_->model.ext4_journal_commit_cpu_ns);
  ctx_->stats.AddJournalCommit();
  ++commits_;
}

void Journal::CommitRunning(bool fsync_barrier) {
  if (running_dirty_.empty() && running_on_commit_.empty()) {
    return;  // Clean journal: fsync returns without the commit-thread handshake.
  }
  if (fsync_barrier) {
    ctx_->ChargeCpu(ctx_->model.ext4_fsync_barrier_ns);
  }
  ChargeCommitIo(running_dirty_.size());
  running_dirty_.clear();
  running_undo_.clear();  // Mutations are now durable.
  for (auto& action : running_on_commit_) {
    action();
  }
  running_on_commit_.clear();
}

void Journal::CommitStandalone(size_t n_meta_blocks) { ChargeCommitIo(n_meta_blocks); }

void Journal::RecoverDiscardRunning() {
  for (auto it = running_undo_.rbegin(); it != running_undo_.rend(); ++it) {
    (*it)();
  }
  running_undo_.clear();
  running_dirty_.clear();
  running_on_commit_.clear();  // Deferred frees die with the transaction.
}

}  // namespace ext4sim
