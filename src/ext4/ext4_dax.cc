#include "src/ext4/ext4_dax.h"

#include <algorithm>
#include <cstring>
#include <optional>

#include "src/common/bytes.h"
#include "src/vfs/path.h"

namespace ext4sim {

using common::kBlockSize;
using vfs::FileType;
using vfs::Ino;

namespace {

// Sequential-read detection is invalidated when a mutation covers the continuation
// point: a read resuming there would stream over bytes that are no longer the ones
// the previous read left off at.
void InvalidateSeqIfCovered(std::atomic<uint64_t>* last_read_end, uint64_t lo,
                            uint64_t hi) {
  uint64_t lre = last_read_end->load(std::memory_order_relaxed);
  if (lre != 0 && lo <= lre && lre < hi) {
    last_read_end->store(0, std::memory_order_relaxed);
  }
}

}  // namespace

Ext4Dax::Ext4Dax(pmem::Device* dev, Ext4Options opts)
    : dev_(dev),
      ctx_(dev->context()),
      data_start_block_(1 + opts.journal_blocks),
      alloc_(1 + opts.journal_blocks, dev->size() / kBlockSize - 1 - opts.journal_blocks,
             &dev->context()->clock),
      journal_(dev, /*journal_start_block=*/1, opts.journal_blocks,
               opts.commit_interval_ns) {
  auto root = std::make_shared<Inode>(&ctx_->clock, &ctx_->obs);
  root->ino = vfs::kRootIno;
  root->range_lock.SetWitnessOrderKey(vfs::kRootIno);
  root->type = FileType::kDirectory;
  root->nlink = 2;
  root->parent = vfs::kRootIno;  // '/' is its own parent; the cycle walk stops here.
  inodes_[vfs::kRootIno] = std::move(root);
}

// --- Inode table / namespace plumbing -------------------------------------------------

Ext4Dax::InodeRef Ext4Dax::GetInode(Ino ino) const {
  std::shared_lock<std::shared_mutex> lock(itable_mu_);
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : it->second;
}

void Ext4Dax::InsertInode(InodeRef inode) {
  std::unique_lock<std::shared_mutex> lock(itable_mu_);
  Ino ino = inode->ino;
  inodes_[ino] = std::move(inode);
}

void Ext4Dax::EraseInode(Ino ino) {
  std::unique_lock<std::shared_mutex> lock(itable_mu_);
  inodes_.erase(ino);
}

Ext4Dax::NsLock::NsLock(const Ext4Dax* fs, std::initializer_list<vfs::Ino> dirs)
    : fs_(fs) {
  size_t idx[3];
  size_t n = 0;
  for (vfs::Ino d : dirs) {
    size_t s = static_cast<size_t>(d) % kNsShards;
    bool dup = false;
    for (size_t i = 0; i < n; ++i) {
      dup |= idx[i] == s;
    }
    if (!dup) {
      idx[n++] = s;
    }
  }
  std::sort(idx, idx + n);
  uint64_t waited_total = 0;
  analysis::LockWitness* w = analysis::LockWitness::Global();
  for (size_t i = 0; i < n; ++i) {
    NsShard* sh = &fs_->ns_shards_[idx[i]];
    sh->mu.lock();
    if (w != nullptr) {
      // Order key = shard index + 1 (nonzero): the ascending-shard discipline the
      // sort above establishes becomes a checked same-site invariant.
      w->Acquire(DentryShardSite(), idx[i] + 1, analysis::LockWitness::Kind::kBlocking);
    }
    uint64_t waited = 0;
    held_[n_++] = {sh, sh->stamp.Acquire(&fs_->ctx_->clock, &waited), idx[i]};
    waited_total += waited;
  }
  obs::ReportWait(&fs_->ctx_->obs, &fs_->ctx_->clock, "ext4.dentry_shard", waited_total);
}

Ext4Dax::NsLock::~NsLock() {
  analysis::LockWitness* w = analysis::LockWitness::Global();
  while (n_ > 0) {
    Held& h = held_[--n_];
    if (w != nullptr) {
      w->Release(DentryShardSite(), h.idx + 1);
    }
    h.shard->stamp.Release(&fs_->ctx_->clock, h.t0);
    h.shard->mu.unlock();
  }
}

Ext4Dax::InodeRef Ext4Dax::ResolvePath(const std::string& path) {
  std::vector<std::string> parts;
  if (!vfs::SplitPath(path, &parts)) {
    return nullptr;
  }
  InodeRef cur = GetInode(vfs::kRootIno);
  for (const auto& name : parts) {
    if (cur == nullptr || cur->type != FileType::kDirectory) {
      return nullptr;
    }
    Ino next;
    {
      // One shard at a time, shared — resolution never holds two shard locks, so it
      // cannot participate in a lock-order cycle with multi-shard mutators.
      NsShard& sh = NsShardOf(cur->ino);
      std::shared_lock<std::shared_mutex> lk(sh.mu);
      obs::ReportWait(&ctx_->obs, &ctx_->clock, "ext4.dentry_shard",
                      sh.stamp.AcquireShared(&ctx_->clock));
      auto it = cur->dirents.find(name);
      if (it == cur->dirents.end()) {
        return nullptr;
      }
      next = it->second;
    }
    cur = GetInode(next);
  }
  return cur;
}

Ext4Dax::InodeRef Ext4Dax::ResolveParent(const std::string& path, std::string* leaf) {
  std::string parent;
  if (!vfs::SplitParent(path, &parent, leaf)) {
    return nullptr;
  }
  InodeRef dir = ResolvePath(parent);
  if (dir == nullptr || dir->type != FileType::kDirectory) {
    return nullptr;
  }
  return dir;
}

bool Ext4Dax::DirAlive(const InodeRef& dir) const {
  std::shared_lock<std::shared_mutex> lk(dir->mu);
  return dir->type == FileType::kDirectory && dir->nlink > 0;
}

Ext4Dax::InodeRef Ext4Dax::AllocateInode(FileType type) {
  auto inode = std::make_shared<Inode>(&ctx_->clock, &ctx_->obs);
  inode->ino = next_ino_.fetch_add(1, std::memory_order_relaxed);
  // Witness order key: relink takes two inode range locks by ascending ino, and
  // the key turns an inverted pair at that one site into an "order" violation.
  inode->range_lock.SetWitnessOrderKey(inode->ino);
  inode->type = type;
  inode->nlink = type == FileType::kDirectory ? 2 : 1;
  InodeRef ref = inode;
  InsertInode(std::move(inode));
  return ref;
}

void Ext4Dax::FreeInodeBlocks(Inode* inode) {
  std::vector<PhysExtent> extents = inode->extents.Clear();
  for (const auto& e : extents) {
    alloc_.Free(e, ctx_->model.ext4_free_cpu_ns);
  }
}

void Ext4Dax::OrphanAdd(Ino ino) {
  {
    std::lock_guard<std::mutex> lock(orphan_mu_);
    orphans_.insert(ino);
  }
  // The list lives on disk: the insert belongs to the running (unlinking)
  // transaction, and a rollback must take the inode back off the list — otherwise a
  // resurrected file would be reclaimed by the next mount's orphan replay.
  journal_.Dirty(MetaBlockId(MetaKind::kSuperblock, 0),
                 [this, ino] { OrphanRemove(ino); });
}

void Ext4Dax::OrphanRemove(Ino ino) {
  std::lock_guard<std::mutex> lock(orphan_mu_);
  orphans_.erase(ino);
}

void Ext4Dax::ReclaimIfOrphan(Ino ino) {
  // Commit action: the pipelined journal runs this with the barrier released, so
  // metadata operations (and OpenByIno, which never took handles) may be concurrent.
  // Safety is carried entirely by the whole-file range lock (range-granular writers
  // no longer hold mu, so the freeing below must exclude them too) + exclusive
  // inode lock, plus the keyed re-check — a resurrecting rollback, a reopen, or a
  // racing second reclaim all resolve under those locks, never by barrier
  // quiescence.
  InodeRef inode = GetInode(ino);
  if (inode == nullptr) {
    OrphanRemove(ino);  // Already reclaimed by an earlier commit action.
    return;
  }
  {
    vfs::RangeWriteGuard range(&inode->range_lock, 0, vfs::RangeLock::kWholeFile);
    std::unique_lock<std::shared_mutex> il(inode->mu);
    if (!inode->unlinked || inode->open_count > 0) {
      return;  // Resurrected by a rollback, or reopened via OpenByIno: keep it.
    }
    FreeInodeBlocks(inode.get());
    inode->size = 0;  // A straggler holding a stale reference reads EOF, never garbage.
    EraseInode(ino);  // The inode-table lock is a leaf; safe under the inode lock.
  }
  OrphanRemove(ino);  // Reclamation committed: the inode leaves the on-disk list.
}

int64_t Ext4Dax::EnsureBlocks(const InodeRef& inode, uint64_t off, uint64_t len) {
  if (len == 0) {
    return 0;
  }
  uint64_t first = off / kBlockSize;
  uint64_t last = (off + len - 1) / kBlockSize;
  int64_t allocated = 0;
  for (uint64_t lb = first; lb <= last;) {
    auto hit = inode->extents.Lookup(lb);
    if (hit) {
      lb += hit->count;  // Run of mapped blocks; skip it.
      continue;
    }
    // Hole: find how far it extends (up to `last`) and allocate in one mballoc call.
    uint64_t hole_end = lb;
    while (hole_end <= last && !inode->extents.Lookup(hole_end)) {
      ++hole_end;
    }
    uint64_t want = hole_end - lb;
    std::vector<PhysExtent> pieces;
    // The mballoc CPU cost is charged inside the allocator's group-locked section,
    // so it serializes on the group's ResourceStamp in virtual time.
    if (!alloc_.AllocateBlocks(want, &pieces, /*goal=*/0,
                               ctx_->model.ext4_alloc_cpu_ns)) {
      return -ENOSPC;
    }
    uint64_t cur = lb;
    for (const auto& p : pieces) {
      ctx_->ChargeCpu(ctx_->model.ext4_extent_cpu_ns);
      inode->extents.Insert(cur, p.start, p.count);
      cur += p.count;
      allocated += static_cast<int64_t>(p.count);
      // Roll back mapping + allocation if the transaction never commits. The
      // InodeRef capture keeps the inode alive however the table changes.
      InodeRef captured = inode;
      uint64_t at = cur - p.count;
      PhysExtent pe = p;
      journal_.Dirty(MetaBlockId(MetaKind::kExtentTree, inode->ino),
                     [this, captured, at, pe] {
                       captured->extents.RemoveRange(at, pe.count);
                       alloc_.Free(pe);
                     });
    }
    journal_.Dirty(MetaBlockId(MetaKind::kBlockBitmap, pieces.front().start / 32768),
                   nullptr);
    lb = hole_end;
  }
  return allocated;
}

// --- Open/close -----------------------------------------------------------------------

int Ext4Dax::Open(const std::string& path, int flags) {
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(ctx_->model.ext4_open_path_ns);

  InodeRef inode = ResolvePath(path);
  if (inode == nullptr && (flags & vfs::kCreate) != 0) {
    std::string leaf;
    InodeRef dir = ResolveParent(path, &leaf);
    if (dir == nullptr) {
      return -ENOENT;
    }
    Journal::Handle handle(&journal_);
    std::shared_lock<std::shared_mutex> ns(rename_mu_);
    analysis::ScopedLockNote ns_note(analysis::LockWitness::Global(), NamespaceSite());
    NsLock shard(this, {dir->ino});
    if (!DirAlive(dir)) {
      return -ENOENT;  // Parent removed between resolution and the shard lock.
    }
    auto it = dir->dirents.find(leaf);
    if (it == dir->dirents.end()) {
      ctx_->ChargeCpu(ctx_->model.ext4_create_extra_ns + ctx_->model.ext4_dir_op_cpu_ns +
                      ctx_->model.ext4_journal_dirty_cpu_ns);
      InodeRef fresh = AllocateInode(FileType::kRegular);
      Ino ino = fresh->ino;
      Ino dir_ino = dir->ino;
      dir->dirents[leaf] = ino;
      journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, ino / 16),
                     [this, ino] { EraseInode(ino); });
      journal_.Dirty(MetaBlockId(MetaKind::kDirBlock, dir_ino), [this, dir_ino, leaf] {
        if (InodeRef d = GetInode(dir_ino)) {
          d->dirents.erase(leaf);
        }
      });
      {
        std::unique_lock<std::shared_mutex> il(fresh->mu);
        ++fresh->open_count;
      }
      return fds_.Allocate(ino, flags);
    }
    inode = GetInode(it->second);  // A racing creator won; continue as a plain open.
  }
  if (inode == nullptr) {
    return -ENOENT;
  }
  if ((flags & vfs::kCreate) != 0 && (flags & vfs::kExcl) != 0) {
    return -EEXIST;
  }
  if (inode->type == FileType::kDirectory && vfs::WantsWrite(flags)) {
    return -EISDIR;
  }
  if ((flags & vfs::kTrunc) != 0 && inode->type == FileType::kRegular) {
    Journal::Handle handle(&journal_);
    vfs::RangeWriteGuard range(&inode->range_lock, 0, vfs::RangeLock::kWholeFile);
    std::unique_lock<std::shared_mutex> il(inode->mu);
    sim::ScopedResourceTime time(&inode->stamp, &ctx_->clock);
    obs::ReportWait(&ctx_->obs, &ctx_->clock, "ext4.inode_lock", time.waited_ns());
    if (inode->size > 0) {
      TruncateLocked(inode, 0);
    }
    ++inode->open_count;
    return fds_.Allocate(inode->ino, flags);
  }
  {
    std::unique_lock<std::shared_mutex> il(inode->mu);
    ++inode->open_count;
  }
  return fds_.Allocate(inode->ino, flags);
}

int Ext4Dax::Close(int fd) {
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(ctx_->model.kernel_work_ns / 2);
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  InodeRef inode = GetInode(of->ino);
  int rc = fds_.Release(fd);
  if (rc != 0) {
    return rc;
  }
  if (inode != nullptr) {
    bool last_orphan = false;
    {
      std::unique_lock<std::shared_mutex> il(inode->mu);
      last_orphan = --inode->open_count == 0 && inode->unlinked;
    }
    if (last_orphan) {
      // Orphan cleanup on last close — journaled: if the unlink's transaction rolls
      // back at a crash, the resurrected dirent must point at a live inode, so the
      // free happens only when the transaction commits — and is keyed by ino, so a
      // rollback or an OpenByIno reopen cancels it instead of use-after-freeing.
      Ino gone = inode->ino;
      journal_.OnCommit([this, gone] { ReclaimIfOrphan(gone); });
    }
  }
  return 0;
}

int Ext4Dax::Dup(int fd) {
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of != nullptr) {
    if (InodeRef inode = GetInode(of->ino)) {
      std::unique_lock<std::shared_mutex> il(inode->mu);
      ++inode->open_count;
    }
  }
  return fds_.Dup(fd);
}

// --- Data path ------------------------------------------------------------------------

ssize_t Ext4Dax::PwriteInode(const InodeRef& inode, int flags, const void* buf,
                             uint64_t n, uint64_t off) {
  if (inode->type != FileType::kRegular) {
    return -EBADF;
  }
  if (!vfs::WantsWrite(flags)) {
    return -EBADF;
  }
  if (n == 0) {
    return 0;
  }
  ctx_->ChargeCpu(ctx_->model.ext4_write_path_ns);

  bool extends = off + n > inode->size;
  int64_t allocated = EnsureBlocks(inode, off, n);
  if (allocated < 0) {
    return allocated;
  }
  if (allocated > 0) {
    ctx_->ChargeCpu(ctx_->model.ext4_journal_dirty_cpu_ns);
  }
  if (extends) {
    ctx_->ChargeCpu(ctx_->model.ext4_append_extra_ns);
    uint64_t old_size = inode->size;
    inode->size = off + n;
    InodeRef captured = inode;
    journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, inode->ino / 16),
                   [captured, old_size] { captured->size = old_size; });
  }

  // DAX write: copy user bytes straight to the PM blocks with non-temporal stores.
  const auto* src = static_cast<const uint8_t*>(buf);
  uint64_t remaining = n;
  uint64_t cur = off;
  while (remaining > 0) {
    auto m = inode->extents.Lookup(cur / kBlockSize);
    SPLITFS_CHECK(m.has_value());  // EnsureBlocks covered the range.
    uint64_t in_block = cur % kBlockSize;
    uint64_t span = std::min(remaining, m->count * kBlockSize - in_block);
    dev_->StoreNt(m->phys * kBlockSize + in_block, src, span, sim::PmWriteKind::kUserData);
    src += span;
    cur += span;
    remaining -= span;
  }
  InvalidateSeqIfCovered(&inode->last_read_end, off, off + n);
  return static_cast<ssize_t>(n);
}

ssize_t Ext4Dax::PreadInode(const InodeRef& inode, void* buf, uint64_t n, uint64_t off) {
  if (inode->type != FileType::kRegular) {
    return -EBADF;
  }
  ctx_->ChargeCpu(ctx_->model.ext4_read_path_ns);
  if (off >= inode->size) {
    return 0;
  }
  uint64_t to_read = std::min(n, inode->size - off);
  auto* dst = static_cast<uint8_t*>(buf);
  uint64_t remaining = to_read;
  uint64_t cur = off;
  // An access continuing where the last read on this inode ended streams at the
  // sequential latency class; anything else pays the random-access latency first.
  // last_read_end is atomic: readers hold only the shared inode lock, and mutators
  // (overlapping writes, truncate, relink) invalidate it.
  bool sequential =
      off == inode->last_read_end.load(std::memory_order_relaxed) && off != 0;
  while (remaining > 0) {
    uint64_t in_block = cur % kBlockSize;
    auto m = inode->extents.Lookup(cur / kBlockSize);
    if (!m) {  // Hole reads as zeroes.
      uint64_t span = std::min(remaining, kBlockSize - in_block);
      std::memset(dst, 0, span);
      dst += span;
      cur += span;
      remaining -= span;
      continue;
    }
    uint64_t span = std::min(remaining, m->count * kBlockSize - in_block);
    dev_->Load(m->phys * kBlockSize + in_block, dst, span, sequential,
               sim::PmReadKind::kUserData);
    sequential = true;  // Continuation segments of one call stream.
    dst += span;
    cur += span;
    remaining -= span;
  }
  inode->last_read_end.store(off + to_read, std::memory_order_relaxed);
  return static_cast<ssize_t>(to_read);
}

ssize_t Ext4Dax::LockedPwrite(const InodeRef& inode, int flags, const void* buf,
                              uint64_t n, uint64_t off) {
  for (;;) {
    // Lock-free classification: `size` is atomic, and whichever way the race with a
    // shape change goes, the acquisition below re-validates it.
    bool extends = off + n > inode->size.load(std::memory_order_acquire);
    if (extends) {
      vfs::RangeWriteGuard range(&inode->range_lock, 0, vfs::RangeLock::kWholeFile);
      std::unique_lock<std::shared_mutex> il(inode->mu);
      sim::ScopedResourceTime time(&inode->stamp, &ctx_->clock);
      obs::ReportWait(&ctx_->obs, &ctx_->clock, "ext4.inode_lock", time.waited_ns());
      return PwriteInode(inode, flags, buf, n, off);
    }
    // Size-preserving: take only the write's blocks. Block granularity (not byte)
    // because same-block writers share extent-allocation state — EnsureBlocks'
    // hole-check-then-insert must be serial per block.
    uint64_t lo = common::AlignDown(off, kBlockSize);
    uint64_t hi = common::AlignUp(off + n, kBlockSize);
    inode->range_lock.LockExclusive(lo, hi - lo);
    if (off + n > inode->size.load(std::memory_order_acquire)) {
      // A truncate shrank the file while we classified (it held the whole file, so
      // it is gone now): this write extends after all. Reclassify.
      inode->range_lock.UnlockExclusive(lo, hi - lo);
      continue;
    }
    ssize_t rc = PwriteInode(inode, flags, buf, n, off);
    inode->range_lock.UnlockExclusive(lo, hi - lo);
    return rc;
  }
}

ssize_t Ext4Dax::Pwrite(int fd, const void* buf, uint64_t n, uint64_t off) {
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  InodeRef inode = GetInode(of->ino);
  if (inode == nullptr) {
    return -EBADF;
  }
  Journal::Handle handle(&journal_);
  return LockedPwrite(inode, of->flags, buf, n, off);
}

ssize_t Ext4Dax::Pread(int fd, void* buf, uint64_t n, uint64_t off) {
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  InodeRef inode = GetInode(of->ino);
  if (inode == nullptr) {
    return -EBADF;
  }
  // Data reads take only their byte range shared: disjoint-range writers and
  // readers of one file no longer touch the same lock word's exclusive side.
  vfs::RangeReadGuard range(&inode->range_lock, off, n);
  return PreadInode(inode, buf, n, off);
}

ssize_t Ext4Dax::Write(int fd, const void* buf, uint64_t n) {
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  InodeRef inode = GetInode(of->ino);
  if (inode == nullptr) {
    return -EBADF;
  }
  Journal::Handle handle(&journal_);
  std::lock_guard<std::mutex> flock(of->mu);
  if ((of->flags & vfs::kAppend) != 0) {
    // The O_APPEND offset is the size *at write time*: reading it and writing must
    // be one exclusive section, which is what makes multithreaded appends atomic —
    // and appends change the size, so the section is whole-file.
    vfs::RangeWriteGuard range(&inode->range_lock, 0, vfs::RangeLock::kWholeFile);
    std::unique_lock<std::shared_mutex> il(inode->mu);
    sim::ScopedResourceTime time(&inode->stamp, &ctx_->clock);
    obs::ReportWait(&ctx_->obs, &ctx_->clock, "ext4.inode_lock", time.waited_ns());
    uint64_t off = inode->size.load(std::memory_order_relaxed);
    ssize_t rc = PwriteInode(inode, of->flags, buf, n, off);
    if (rc > 0) {
      of->offset = off + static_cast<uint64_t>(rc);
    }
    return rc;
  }
  uint64_t off = of->offset;
  ssize_t rc = LockedPwrite(inode, of->flags, buf, n, off);
  if (rc > 0) {
    of->offset = off + static_cast<uint64_t>(rc);
  }
  return rc;
}

ssize_t Ext4Dax::Read(int fd, void* buf, uint64_t n) {
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  InodeRef inode = GetInode(of->ino);
  if (inode == nullptr) {
    return -EBADF;
  }
  std::lock_guard<std::mutex> flock(of->mu);
  vfs::RangeReadGuard range(&inode->range_lock, of->offset, n);
  ssize_t rc = PreadInode(inode, buf, n, of->offset);
  if (rc > 0) {
    of->offset += static_cast<uint64_t>(rc);
  }
  return rc;
}

int64_t Ext4Dax::Lseek(int fd, int64_t off, vfs::Whence whence) {
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  InodeRef inode = GetInode(of->ino);
  std::lock_guard<std::mutex> flock(of->mu);
  int64_t base = 0;
  switch (whence) {
    case vfs::Whence::kSet:
      base = 0;
      break;
    case vfs::Whence::kCur:
      base = static_cast<int64_t>(of->offset);
      break;
    case vfs::Whence::kEnd:
      if (inode != nullptr) {
        std::shared_lock<std::shared_mutex> il(inode->mu);
        base = static_cast<int64_t>(inode->size);
      }
      break;
  }
  int64_t target = base + off;
  if (target < 0) {
    return -EINVAL;
  }
  of->offset = static_cast<uint64_t>(target);
  return target;
}

// --- Durability -----------------------------------------------------------------------

int Ext4Dax::Fsync(int fd) { return Fsync(fd, /*who=*/nullptr); }

int Ext4Dax::Fsync(int fd, const char* who) {
  ctx_->ChargeSyscall();
  if (fds_.Get(fd) == nullptr) {
    return -EBADF;
  }
  // jbd2 semantics: commit the running transaction's tid and wait for it
  // (log_start_commit + log_wait_commit). If the durability horizon is already in
  // the committing slot, CommitRunning waits on that tid instead of starting a new
  // writeout; meanwhile other threads' metadata operations keep joining the fresh
  // running transaction — fsync no longer freezes the filesystem.
  journal_.CommitRunning(/*fsync_barrier=*/true, who);
  return 0;
}

void Ext4Dax::TruncateLocked(const InodeRef& inode, uint64_t size) {
  ctx_->ChargeCpu(ctx_->model.ext4_journal_dirty_cpu_ns);
  uint64_t old_size = inode->size;
  InodeRef captured = inode;
  journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, inode->ino / 16),
                 [captured, old_size] { captured->size = old_size; });
  if (size < inode->size) {
    uint64_t first_gone = common::DivCeil(size, kBlockSize);
    uint64_t last = common::DivCeil(inode->size, kBlockSize);
    std::vector<PhysExtent> freed = inode->extents.RemoveRange(first_gone, last - first_gone);
    // The freed extents were contiguous pieces starting at `first_gone`, in order;
    // save the mapping so rollback can re-insert them.
    std::vector<MappedExtent> saved;
    uint64_t lb = first_gone;
    for (const auto& e : freed) {
      saved.push_back({lb, e.start, e.count});
      lb += e.count;
    }
    journal_.Dirty(MetaBlockId(MetaKind::kExtentTree, inode->ino), [captured, saved] {
      for (const auto& m : saved) {
        captured->extents.Insert(m.logical, m.phys, m.count);
      }
    });
    for (const auto& e : freed) {
      ctx_->ChargeCpu(ctx_->model.ext4_free_cpu_ns);
      journal_.OnCommit([this, e] { alloc_.Free(e); });
    }
  }
  inode->size = size;
  // A shrink below the sequential continuation point leaves it pointing at removed
  // bytes; whatever appears there later is not a media-stream continuation.
  uint64_t lre = inode->last_read_end.load(std::memory_order_relaxed);
  if (lre != 0 && size < lre) {
    inode->last_read_end.store(0, std::memory_order_relaxed);
  }
}

int Ext4Dax::Ftruncate(int fd, uint64_t size) {
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  InodeRef inode = GetInode(of->ino);
  if (inode == nullptr || inode->type != FileType::kRegular) {
    return -EBADF;
  }
  Journal::Handle handle(&journal_);
  vfs::RangeWriteGuard range(&inode->range_lock, 0, vfs::RangeLock::kWholeFile);
  std::unique_lock<std::shared_mutex> il(inode->mu);
  sim::ScopedResourceTime time(&inode->stamp, &ctx_->clock);
  obs::ReportWait(&ctx_->obs, &ctx_->clock, "ext4.inode_lock", time.waited_ns());
  TruncateLocked(inode, size);
  return 0;
}

int Ext4Dax::Fallocate(int fd, uint64_t off, uint64_t len, bool keep_size) {
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  InodeRef inode = GetInode(of->ino);
  if (inode == nullptr || inode->type != FileType::kRegular) {
    return -EBADF;
  }
  Journal::Handle handle(&journal_);
  for (;;) {
    // Size-preserving preallocation (keep_size, or in-bounds) only needs the
    // affected blocks; a size-changing one takes the whole file like any extend.
    bool grows = !keep_size && off + len > inode->size.load(std::memory_order_acquire);
    if (grows) {
      vfs::RangeWriteGuard range(&inode->range_lock, 0, vfs::RangeLock::kWholeFile);
      std::unique_lock<std::shared_mutex> il(inode->mu);
      sim::ScopedResourceTime time(&inode->stamp, &ctx_->clock);
      obs::ReportWait(&ctx_->obs, &ctx_->clock, "ext4.inode_lock", time.waited_ns());
      int64_t rc = EnsureBlocks(inode, off, len);
      if (rc < 0) {
        return static_cast<int>(rc);
      }
      ctx_->ChargeCpu(ctx_->model.ext4_journal_dirty_cpu_ns);
      if (off + len > inode->size) {
        uint64_t old_size = inode->size;
        inode->size = off + len;
        InodeRef captured = inode;
        journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, inode->ino / 16),
                       [captured, old_size] { captured->size = old_size; });
      }
      return 0;
    }
    uint64_t lo = common::AlignDown(off, kBlockSize);
    uint64_t hi = common::AlignUp(off + len, kBlockSize);
    inode->range_lock.LockExclusive(lo, hi - lo);
    if (!keep_size && off + len > inode->size.load(std::memory_order_acquire)) {
      inode->range_lock.UnlockExclusive(lo, hi - lo);  // Shrunk underneath us.
      continue;
    }
    int64_t rc = EnsureBlocks(inode, off, len);
    if (rc >= 0) {
      ctx_->ChargeCpu(ctx_->model.ext4_journal_dirty_cpu_ns);
    }
    inode->range_lock.UnlockExclusive(lo, hi - lo);
    return rc < 0 ? static_cast<int>(rc) : 0;
  }
}

// --- Namespace ------------------------------------------------------------------------

int Ext4Dax::Unlink(const std::string& path) {
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(ctx_->model.ext4_open_path_ns + ctx_->model.ext4_dir_op_cpu_ns +
                  ctx_->model.ext4_journal_dirty_cpu_ns + ctx_->model.ext4_unlink_extra_ns);
  std::string leaf;
  InodeRef dir = ResolveParent(path, &leaf);
  if (dir == nullptr) {
    return -ENOENT;
  }
  Journal::Handle handle(&journal_);
  std::shared_lock<std::shared_mutex> ns(rename_mu_);
  analysis::ScopedLockNote ns_note(analysis::LockWitness::Global(), NamespaceSite());
  NsLock shard(this, {dir->ino});
  if (!DirAlive(dir)) {
    return -ENOENT;
  }
  auto it = dir->dirents.find(leaf);
  if (it == dir->dirents.end()) {
    return -ENOENT;
  }
  InodeRef inode = GetInode(it->second);
  if (inode == nullptr || inode->type != FileType::kRegular) {
    return inode == nullptr ? -ENOENT : -EISDIR;
  }
  Ino dir_ino = dir->ino;
  Ino ino = inode->ino;
  dir->dirents.erase(it);
  journal_.Dirty(MetaBlockId(MetaKind::kDirBlock, dir_ino), [this, dir_ino, leaf, ino] {
    if (InodeRef d = GetInode(dir_ino)) {
      d->dirents[leaf] = ino;
    }
    if (InodeRef victim = GetInode(ino)) {
      victim->unlinked = false;  // Rollback resurrects the file fully.
      victim->nlink = 1;
    }
  });
  journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, ino / 16), nullptr);
  bool last = false;
  {
    std::unique_lock<std::shared_mutex> il(inode->mu);
    inode->unlinked = true;
    inode->nlink = 0;
    last = inode->open_count == 0;
  }
  // Every unlinked inode joins the on-disk orphan list inside this transaction;
  // it leaves the list only when its blocks are actually reclaimed. If the
  // deferred reclamation never runs — it dies with a rolled-back later
  // transaction, or the crash beats the last close — mount-time Recover() replays
  // the list instead of leaking the inode until the next unlink.
  OrphanAdd(ino);
  if (last) {
    // Defer the actual free to commit (jbd2 rule), keyed by ino: a rollback that
    // resurrects the file, or a reopen through OpenByIno, cancels the reclamation.
    journal_.OnCommit([this, ino] { ReclaimIfOrphan(ino); });
  }
  return 0;
}

int Ext4Dax::Rename(const std::string& from, const std::string& to) {
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(2 * ctx_->model.ext4_open_path_ns + 2 * ctx_->model.ext4_dir_op_cpu_ns +
                  ctx_->model.ext4_journal_dirty_cpu_ns);
  std::string from_leaf, to_leaf;
  InodeRef from_dir = ResolveParent(from, &from_leaf);
  InodeRef to_dir = ResolveParent(to, &to_leaf);
  if (from_dir == nullptr || to_dir == nullptr) {
    return -ENOENT;
  }
  Journal::Handle handle(&journal_);
  bool dir_move = false;
  for (;;) {
    // File renames hold the rename lock shared; directory renames hold it exclusive
    // (Linux's s_vfs_rename_mutex), which freezes the tree shape: the ancestor walk
    // of the cycle check and a displaced directory's emptiness are stable without
    // taking further shard locks.
    std::shared_lock<std::shared_mutex> ns_shared;
    std::unique_lock<std::shared_mutex> ns_excl;
    if (dir_move) {
      ns_excl = std::unique_lock<std::shared_mutex>(rename_mu_);
    } else {
      ns_shared = std::shared_lock<std::shared_mutex>(rename_mu_);
    }
    analysis::ScopedLockNote ns_note(analysis::LockWitness::Global(), NamespaceSite());
    NsLock shards(this, {from_dir->ino, to_dir->ino});
    if (!DirAlive(from_dir) || !DirAlive(to_dir)) {
      return -ENOENT;
    }
    auto it = from_dir->dirents.find(from_leaf);
    if (it == from_dir->dirents.end()) {
      return -ENOENT;
    }
    InodeRef moved = GetInode(it->second);
    if (moved == nullptr) {
      return -ENOENT;
    }
    if (moved->type == FileType::kDirectory && !dir_move) {
      dir_move = true;  // Restart with the rename lock held exclusively.
      continue;
    }
    Ino moved_ino = moved->ino;

    // Destination handling: same-file no-op, then type compatibility (rename(2)).
    std::optional<Ino> displaced;
    InodeRef victim;
    auto dit = to_dir->dirents.find(to_leaf);
    if (dit != to_dir->dirents.end()) {
      if (dit->second == moved_ino) {
        return 0;  // Same file (covers rename(p, p) too): do nothing.
      }
      victim = GetInode(dit->second);
      if (victim != nullptr) {
        if (moved->type == FileType::kDirectory) {
          if (victim->type != FileType::kDirectory) {
            return -ENOTDIR;
          }
          // Empty-check is stable: rename_mu_ is exclusive here, so no mutator can
          // touch victim->dirents, whichever shard it hashes to.
          if (!victim->dirents.empty()) {
            return -ENOTEMPTY;
          }
        } else if (victim->type == FileType::kDirectory) {
          return -EISDIR;
        }
        displaced = dit->second;
      }
    }

    if (moved->type == FileType::kDirectory) {
      // Cycle check: moving a directory into its own subtree (or onto itself) would
      // disconnect it from the root. Walk `to_dir`'s ancestor chain; stable under
      // the exclusive rename lock.
      for (Ino p = to_dir->ino; p != vfs::kRootIno;) {
        if (p == moved_ino) {
          return -EINVAL;
        }
        InodeRef ancestor = GetInode(p);
        if (ancestor == nullptr) {
          break;
        }
        std::shared_lock<std::shared_mutex> al(ancestor->mu);
        if (ancestor->parent == p) {
          break;  // Defensive: never spin on a self-loop other than root.
        }
        p = ancestor->parent;
        if (p == vfs::kInvalidIno) {
          break;
        }
      }
    }

    Ino from_ino = from_dir->ino, to_ino = to_dir->ino;
    from_dir->dirents.erase(it);
    to_dir->dirents[to_leaf] = moved_ino;
    journal_.Dirty(MetaBlockId(MetaKind::kDirBlock, from_ino),
                   [this, from_ino, from_leaf, moved_ino] {
                     if (InodeRef d = GetInode(from_ino)) {
                       d->dirents[from_leaf] = moved_ino;
                     }
                   });
    journal_.Dirty(MetaBlockId(MetaKind::kDirBlock, to_ino),
                   [this, to_ino, to_leaf, displaced] {
                     if (InodeRef d = GetInode(to_ino)) {
                       if (displaced) {
                         d->dirents[to_leaf] = *displaced;
                         if (InodeRef v = GetInode(*displaced)) {
                           v->unlinked = false;  // Fully resurrected.
                           v->nlink = v->type == FileType::kDirectory ? 2 : 1;
                         }
                       } else {
                         d->dirents.erase(to_leaf);
                       }
                     }
                   });

    if (victim != nullptr && displaced) {
      if (victim->type == FileType::kDirectory) {
        // An empty directory victim disappears like an rmdir: the parent loses its
        // '..' link and the inode leaves the table (the undo re-inserts it).
        {
          std::unique_lock<std::shared_mutex> vl(victim->mu);
          victim->nlink = 0;
        }
        {
          std::unique_lock<std::shared_mutex> tl(to_dir->mu);
          --to_dir->nlink;
        }
        EraseInode(victim->ino);
        InodeRef victim_ref = victim;
        journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, victim->ino / 16),
                       [this, victim_ref, to_ino] {
                         victim_ref->nlink = 2;
                         InsertInode(victim_ref);
                         if (InodeRef d = GetInode(to_ino)) {
                           ++d->nlink;
                         }
                       });
      } else {
        bool last = false;
        {
          std::unique_lock<std::shared_mutex> vl(victim->mu);
          victim->unlinked = true;
          victim->nlink = 0;
          last = victim->open_count == 0;
        }
        OrphanAdd(*displaced);  // Same orphan-list protocol as Unlink.
        if (last) {
          // Keyed by ino, not by pointer: a rollback resurrecting the victim or an
          // OpenByIno reopen cancels the deferred free (the old raw-pointer capture
          // was a use-after-free and a double-free waiting for exactly those races).
          Ino victim_ino = *displaced;
          journal_.OnCommit([this, victim_ino] { ReclaimIfOrphan(victim_ino); });
        }
      }
    }

    if (moved->type == FileType::kDirectory && from_ino != to_ino) {
      // The directory's '..' now points at to_dir: move the parent link count.
      {
        std::unique_lock<std::shared_mutex> fl(from_dir->mu);
        --from_dir->nlink;
      }
      {
        std::unique_lock<std::shared_mutex> tl(to_dir->mu);
        ++to_dir->nlink;
      }
      {
        std::unique_lock<std::shared_mutex> ml(moved->mu);
        moved->parent = to_ino;
      }
      InodeRef moved_ref = moved;
      journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, moved_ino / 16),
                     [this, moved_ref, from_ino, to_ino] {
                       moved_ref->parent = from_ino;
                       if (InodeRef f = GetInode(from_ino)) {
                         ++f->nlink;
                       }
                       if (InodeRef t = GetInode(to_ino)) {
                         --t->nlink;
                       }
                     });
    }
    return 0;
  }
}

int Ext4Dax::Mkdir(const std::string& path) {
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(ctx_->model.ext4_open_path_ns + ctx_->model.ext4_create_extra_ns +
                  ctx_->model.ext4_dir_op_cpu_ns + ctx_->model.ext4_journal_dirty_cpu_ns);
  std::string leaf;
  InodeRef dir = ResolveParent(path, &leaf);
  if (dir == nullptr) {
    return -ENOENT;
  }
  Journal::Handle handle(&journal_);
  std::shared_lock<std::shared_mutex> ns(rename_mu_);
  analysis::ScopedLockNote ns_note(analysis::LockWitness::Global(), NamespaceSite());
  NsLock shard(this, {dir->ino});
  if (!DirAlive(dir)) {
    return -ENOENT;
  }
  if (dir->dirents.count(leaf) != 0) {
    return -EEXIST;
  }
  InodeRef child = AllocateInode(FileType::kDirectory);
  child->parent = dir->ino;  // Fresh inode, not yet visible: no lock needed.
  Ino ino = child->ino;
  Ino dir_ino = dir->ino;
  dir->dirents[leaf] = ino;
  {
    std::unique_lock<std::shared_mutex> dl(dir->mu);
    ++dir->nlink;  // The child's '..'.
  }
  journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, ino / 16),
                 [this, ino] { EraseInode(ino); });
  journal_.Dirty(MetaBlockId(MetaKind::kDirBlock, dir_ino), [this, dir_ino, leaf] {
    if (InodeRef d = GetInode(dir_ino)) {
      d->dirents.erase(leaf);
      --d->nlink;
    }
  });
  return 0;
}

int Ext4Dax::Rmdir(const std::string& path) {
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(ctx_->model.ext4_open_path_ns + ctx_->model.ext4_dir_op_cpu_ns +
                  ctx_->model.ext4_journal_dirty_cpu_ns);
  std::string leaf;
  InodeRef dir = ResolveParent(path, &leaf);
  if (dir == nullptr) {
    return -ENOENT;
  }
  Journal::Handle handle(&journal_);
  std::shared_lock<std::shared_mutex> ns(rename_mu_);
  analysis::ScopedLockNote ns_note(analysis::LockWitness::Global(), NamespaceSite());
  // Removes `gone` from `dir`; the caller holds the shard locks covering both (one
  // NsLock covering dir and gone), so the emptiness check and the unlink are atomic.
  auto remove = [this, &dir, &leaf](Ino gone) -> int {
    InodeRef target = GetInode(gone);
    if (target == nullptr || target->type != FileType::kDirectory) {
      return -ENOTDIR;
    }
    if (!target->dirents.empty()) {
      return -ENOTEMPTY;
    }
    Ino dir_ino = dir->ino;
    dir->dirents.erase(leaf);
    {
      std::unique_lock<std::shared_mutex> dl(dir->mu);
      --dir->nlink;  // The removed child's '..'.
    }
    {
      std::unique_lock<std::shared_mutex> tl(target->mu);
      target->nlink = 0;
    }
    EraseInode(gone);
    InodeRef target_ref = target;
    std::string leaf_copy = leaf;
    journal_.Dirty(MetaBlockId(MetaKind::kDirBlock, dir_ino),
                   [this, dir_ino, leaf_copy, gone, target_ref] {
                     if (InodeRef d = GetInode(dir_ino)) {
                       d->dirents[leaf_copy] = gone;
                       ++d->nlink;
                     }
                     target_ref->nlink = 2;
                     InsertInode(target_ref);
                   });
    return 0;
  };
  for (;;) {
    Ino target_ino;
    {
      NsLock shard(this, {dir->ino});
      if (!DirAlive(dir)) {
        return -ENOENT;
      }
      auto it = dir->dirents.find(leaf);
      if (it == dir->dirents.end()) {
        return -ENOENT;
      }
      target_ino = it->second;
      if (&NsShardOf(target_ino) == &NsShardOf(dir->ino)) {
        return remove(target_ino);
      }
    }
    // Target hashes to a different shard: retake both in ascending order and
    // re-validate that the dirent still names the same inode.
    NsLock shards(this, {dir->ino, target_ino});
    if (!DirAlive(dir)) {
      return -ENOENT;
    }
    auto it = dir->dirents.find(leaf);
    if (it == dir->dirents.end()) {
      return -ENOENT;
    }
    if (it->second != target_ino) {
      continue;  // Raced with a rename; retry against the new target.
    }
    return remove(target_ino);
  }
}

int Ext4Dax::ReadDir(const std::string& path, std::vector<std::string>* names) {
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(ctx_->model.ext4_open_path_ns);
  InodeRef dir = ResolvePath(path);
  if (dir == nullptr) {
    return -ENOENT;
  }
  if (dir->type != FileType::kDirectory) {
    return -ENOTDIR;
  }
  NsShard& sh = NsShardOf(dir->ino);
  std::shared_lock<std::shared_mutex> lk(sh.mu);
  obs::ReportWait(&ctx_->obs, &ctx_->clock, "ext4.dentry_shard",
                  sh.stamp.AcquireShared(&ctx_->clock));
  names->clear();
  for (const auto& [name, ino] : dir->dirents) {
    ctx_->ChargeCpu(ctx_->model.kernel_work_ns / 4);
    names->push_back(name);
  }
  return 0;
}

int Ext4Dax::Stat(const std::string& path, vfs::StatBuf* out) {
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(ctx_->model.ext4_open_path_ns / 2);
  InodeRef inode = ResolvePath(path);
  if (inode == nullptr) {
    return -ENOENT;
  }
  std::shared_lock<std::shared_mutex> il(inode->mu);
  obs::ReportWait(&ctx_->obs, &ctx_->clock, "ext4.inode_lock",
                  inode->stamp.AcquireShared(&ctx_->clock));
  out->ino = inode->ino;
  out->size = inode->size;
  out->blocks = inode->extents.MappedBlocks();
  out->nlink = inode->nlink;
  out->type = inode->type;
  return 0;
}

int Ext4Dax::Fstat(int fd, vfs::StatBuf* out) {
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  InodeRef inode = GetInode(of->ino);
  if (inode == nullptr) {
    return -EBADF;
  }
  std::shared_lock<std::shared_mutex> il(inode->mu);
  obs::ReportWait(&ctx_->obs, &ctx_->clock, "ext4.inode_lock",
                  inode->stamp.AcquireShared(&ctx_->clock));
  out->ino = inode->ino;
  out->size = inode->size;
  out->blocks = inode->extents.MappedBlocks();
  out->nlink = inode->nlink;
  out->type = inode->type;
  return 0;
}

int Ext4Dax::CommitJournal(bool fsync_barrier, const char* who) {
  journal_.CommitRunning(fsync_barrier, who);
  return 0;
}

int Ext4Dax::Recover() {
  // Recovery is a quiesce point: RecoverDiscardRunning takes the pipeline slot and
  // the journal barrier exclusively, rolling back the running transaction and then
  // any committing transaction whose writeout the crash cut short (newest mutation
  // first); the undo closures mutate namespace/inode state without further locks,
  // which is valid because no operation can be in flight across a crash.
  journal_.RecoverDiscardRunning();
  // The orphan replay below holds the same exclusivity for the live-call case
  // (tests run Recover on a mounted instance): no handle may be in flight and no
  // commit writeout may race the replay's unjournaled frees. The replay itself
  // takes no handles, so this cannot self-deadlock.
  ext4sim::Journal::Quiescence quiesce = journal_.Quiesce();
  // Orphan list replay (ext4's mount-time orphan processing): an inode unlinked in
  // a committed transaction but still open at the crash relies on a *later*
  // transaction's commit action for its reclamation — if that transaction rolled
  // back (or the last close never happened), the inode would leak until the next
  // unlink. Descriptors do not survive a crash, so every inode still listed is
  // reclaimable now; entries whose unlink itself rolled back were already removed
  // by the journal undo above.
  std::vector<Ino> orphans;
  {
    std::lock_guard<std::mutex> lock(orphan_mu_);
    orphans.assign(orphans_.begin(), orphans_.end());
  }
  for (Ino ino : orphans) {
    InodeRef inode = GetInode(ino);
    if (inode == nullptr) {
      OrphanRemove(ino);  // Reclaimed before the crash; the list entry is stale.
      continue;
    }
    {
      vfs::RangeWriteGuard range(&inode->range_lock, 0, vfs::RangeLock::kWholeFile);
      std::unique_lock<std::shared_mutex> il(inode->mu);
      if (!inode->unlinked) {
        il.unlock();
        OrphanRemove(ino);  // Resurrected by the rollback: keep the file.
        continue;
      }
      inode->open_count = 0;  // No descriptor survives a crash.
      ctx_->ChargeCpu(ctx_->model.ext4_unlink_extra_ns);  // Orphan truncate path.
      FreeInodeBlocks(inode.get());
      inode->size = 0;
      EraseInode(ino);
    }
    OrphanRemove(ino);
  }
  return 0;
}

// --- DAX / relink extension -------------------------------------------------------------

int Ext4Dax::DaxMap(int fd, uint64_t off, uint64_t len,
                    std::vector<DaxMapping>* out) {
  out->clear();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  InodeRef inode = GetInode(of->ino);
  if (inode == nullptr || inode->type != FileType::kRegular) {
    return -EBADF;
  }
  vfs::RangeReadGuard range(&inode->range_lock, off, len);
  uint64_t first = off / kBlockSize;
  uint64_t count = common::DivCeil(off + len, kBlockSize) - first;
  for (const auto& m : inode->extents.FindRange(first, count)) {
    out->push_back({m.logical * kBlockSize, m.phys * kBlockSize, m.count * kBlockSize});
  }
  return 0;
}

int Ext4Dax::OpenByIno(vfs::Ino ino, int flags) {
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(ctx_->model.kernel_work_ns);
  InodeRef inode = GetInode(ino);
  if (inode == nullptr || inode->type != FileType::kRegular) {
    return -ENOENT;
  }
  {
    // The open_count increment under the inode lock is what makes a pending
    // ReclaimIfOrphan for this ino back off instead of freeing a file someone
    // just reopened.
    std::unique_lock<std::shared_mutex> il(inode->mu);
    ++inode->open_count;
  }
  return fds_.Allocate(ino, flags);
}

vfs::Ino Ext4Dax::InoOf(int fd) const {
  auto of = fds_.Get(fd);
  return of == nullptr ? vfs::kInvalidIno : of->ino;
}

int Ext4Dax::SwapExtentsForRelink(int src_fd, uint64_t src_off, int dst_fd,
                                  uint64_t dst_off, uint64_t len, uint64_t new_dst_size,
                                  bool defer_commit) {
  ctx_->ChargeSyscall();  // The ioctl trap.
  if (len == 0) {
    return 0;
  }
  if (!common::IsAligned(src_off, kBlockSize) || !common::IsAligned(dst_off, kBlockSize)) {
    return -EINVAL;
  }
  auto src_of = fds_.Get(src_fd);
  auto dst_of = fds_.Get(dst_fd);
  if (src_of == nullptr || dst_of == nullptr) {
    return -EBADF;
  }
  InodeRef src = GetInode(src_of->ino);
  InodeRef dst = GetInode(dst_of->ino);
  if (src == nullptr || dst == nullptr || src == dst) {
    return -EINVAL;
  }
  {
    Journal::Handle handle(&journal_);
    // The only two-inode exclusive section in the kernel model; lock order is
    // ascending ino at both levels (whole-file range locks, then inode locks).
    // U-Split's fsync batching (many deferred relinks, one commit) and op-log
    // recovery replay both funnel through here, so every concurrent publisher
    // orders src/dst pairs the same way — deadlock-free by construction. The
    // whole-file range acquisition excludes every in-flight range writer/reader on
    // either file: a relink restructures both extent maps and the dst size.
    Inode* lo = src->ino < dst->ino ? src.get() : dst.get();
    Inode* hi = src->ino < dst->ino ? dst.get() : src.get();
    vfs::RangeWriteGuard r1(&lo->range_lock, 0, vfs::RangeLock::kWholeFile);
    vfs::RangeWriteGuard r2(&hi->range_lock, 0, vfs::RangeLock::kWholeFile);
    std::unique_lock<std::shared_mutex> l1(lo->mu);
    analysis::ScopedLockNote n1(analysis::LockWitness::Global(), InodeMuSite(), lo->ino);
    std::unique_lock<std::shared_mutex> l2(hi->mu);
    analysis::ScopedLockNote n2(analysis::LockWitness::Global(), InodeMuSite(), hi->ino);
    sim::ScopedResourceTime t1(&lo->stamp, &ctx_->clock);
    sim::ScopedResourceTime t2(&hi->stamp, &ctx_->clock);
    obs::ReportWait(&ctx_->obs, &ctx_->clock, "ext4.inode_lock",
                    t1.waited_ns() + t2.waited_ns());

    uint64_t first_src = src_off / kBlockSize;
    uint64_t first_dst = dst_off / kBlockSize;
    uint64_t nblocks = common::DivCeil(len, kBlockSize);

    // The paper's implementation trick (§3.5): MOVE_EXT requires blocks allocated on
    // both sides, so relink allocates transient blocks at the destination, swaps, and
    // frees them. The transient allocation takes the goal-directed fast path.
    ctx_->ChargeCpu(ctx_->model.ext4_relink_alloc_cpu_ns);

    // Collect the source mappings; every block in the range must be mapped.
    std::vector<MappedExtent> moved = src->extents.FindRange(first_src, nblocks);
    uint64_t mapped = 0;
    for (const auto& m : moved) {
      mapped += m.count;
    }
    if (mapped != nblocks) {
      return -EINVAL;  // Source range has holes; nothing to relink there.
    }

    // Deallocate whatever the destination currently maps in the target range (these
    // are the "existing data blocks are de-allocated" of the relink definition). The
    // frees are deferred to commit — jbd2's rule: blocks released by an uncommitted
    // transaction must not be reused, or a rollback would leave them aliased.
    std::vector<MappedExtent> displaced_mapped = dst->extents.FindRange(first_dst, nblocks);
    std::vector<PhysExtent> displaced = dst->extents.RemoveRange(first_dst, nblocks);
    for (const auto& e : displaced) {
      ctx_->ChargeCpu(ctx_->model.ext4_free_cpu_ns);
      journal_.OnCommit([this, e] { alloc_.Free(e); });
    }

    // Move the physical blocks: remove from source, insert at destination with the
    // logical shift applied. Metadata-only; the data bytes never move, and any DAX
    // mapping of these physical blocks remains valid.
    ctx_->ChargeCpu(2 * ctx_->model.ext4_swap_extent_cpu_ns);
    src->extents.RemoveRange(first_src, nblocks);
    for (const auto& m : moved) {
      dst->extents.Insert(first_dst + (m.logical - first_src), m.phys, m.count);
    }

    uint64_t old_dst_size = dst->size;
    if (new_dst_size > dst->size) {
      dst->size = new_dst_size;
    }

    // One journal transaction covering both extent trees and the destination inode,
    // committed immediately without the fsync barrier path. jbd2 has a single
    // transaction stream, so any metadata already dirtied by earlier operations
    // commits alongside (which is why an fsync that relinks need not also run the
    // barrier path). The undo reverses the whole swap — a crash before the commit
    // record must leave both files exactly as they were, or op-log replay would find
    // holes where the staged blocks used to be and silently lose acknowledged
    // appends. The InodeRef captures keep both inodes alive for the undo however
    // the inode table changes in between.
    journal_.Dirty(MetaBlockId(MetaKind::kExtentTree, src->ino), nullptr);
    journal_.Dirty(MetaBlockId(MetaKind::kExtentTree, dst->ino),
                   [src, dst, moved, displaced_mapped, first_dst, nblocks, old_dst_size] {
                     dst->extents.RemoveRange(first_dst, nblocks);
                     for (const auto& m : moved) {
                       src->extents.Insert(m.logical, m.phys, m.count);
                     }
                     for (const auto& m : displaced_mapped) {
                       dst->extents.Insert(m.logical, m.phys, m.count);
                     }
                     dst->size = old_dst_size;
                   });
    journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, dst->ino / 16), nullptr);
    InvalidateSeqIfCovered(&src->last_read_end, src_off, src_off + nblocks * kBlockSize);
    InvalidateSeqIfCovered(&dst->last_read_end, dst_off, dst_off + nblocks * kBlockSize);
  }
  if (!defer_commit) {
    journal_.CommitRunning(/*fsync_barrier=*/false);
  }
  ctx_->stats.AddRelink();
  return 0;
}

}  // namespace ext4sim
