#include "src/ext4/ext4_dax.h"

#include <algorithm>
#include <cstring>

#include "src/common/bytes.h"
#include "src/vfs/path.h"

namespace ext4sim {

using common::kBlockSize;
using vfs::FileType;
using vfs::Ino;

Ext4Dax::Ext4Dax(pmem::Device* dev, Ext4Options opts)
    : dev_(dev),
      ctx_(dev->context()),
      data_start_block_(1 + opts.journal_blocks),
      alloc_(1 + opts.journal_blocks, dev->size() / kBlockSize - 1 - opts.journal_blocks),
      journal_(dev, /*journal_start_block=*/1, opts.journal_blocks) {
  auto root = std::make_unique<Inode>();
  root->ino = vfs::kRootIno;
  root->type = FileType::kDirectory;
  root->nlink = 2;
  inodes_[vfs::kRootIno] = std::move(root);
}

Ext4Dax::Inode* Ext4Dax::GetInode(Ino ino) {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : it->second.get();
}

Ext4Dax::Inode* Ext4Dax::ResolvePath(const std::string& path) {
  std::vector<std::string> parts;
  if (!vfs::SplitPath(path, &parts)) {
    return nullptr;
  }
  Inode* cur = GetInode(vfs::kRootIno);
  for (const auto& name : parts) {
    if (cur == nullptr || cur->type != FileType::kDirectory) {
      return nullptr;
    }
    auto it = cur->dirents.find(name);
    if (it == cur->dirents.end()) {
      return nullptr;
    }
    cur = GetInode(it->second);
  }
  return cur;
}

Ext4Dax::Inode* Ext4Dax::ResolveParent(const std::string& path, std::string* leaf) {
  std::string parent;
  if (!vfs::SplitParent(path, &parent, leaf)) {
    return nullptr;
  }
  Inode* dir = ResolvePath(parent);
  if (dir == nullptr || dir->type != FileType::kDirectory) {
    return nullptr;
  }
  return dir;
}

Ino Ext4Dax::AllocateInode(FileType type) {
  Ino ino = next_ino_++;
  auto inode = std::make_unique<Inode>();
  inode->ino = ino;
  inode->type = type;
  inode->nlink = type == FileType::kDirectory ? 2 : 1;
  inodes_[ino] = std::move(inode);
  return ino;
}

void Ext4Dax::FreeInodeBlocks(Inode* inode) {
  std::vector<PhysExtent> extents = inode->extents.Clear();
  for (const auto& e : extents) {
    ctx_->ChargeCpu(ctx_->model.ext4_free_cpu_ns);
    alloc_.Free(e);
  }
}

int64_t Ext4Dax::EnsureBlocks(Inode* inode, uint64_t off, uint64_t len) {
  if (len == 0) {
    return 0;
  }
  uint64_t first = off / kBlockSize;
  uint64_t last = (off + len - 1) / kBlockSize;
  int64_t allocated = 0;
  for (uint64_t lb = first; lb <= last;) {
    auto hit = inode->extents.Lookup(lb);
    if (hit) {
      lb += hit->count;  // Run of mapped blocks; skip it.
      continue;
    }
    // Hole: find how far it extends (up to `last`) and allocate in one mballoc call.
    uint64_t hole_end = lb;
    while (hole_end <= last && !inode->extents.Lookup(hole_end)) {
      ++hole_end;
    }
    uint64_t want = hole_end - lb;
    std::vector<PhysExtent> pieces;
    ctx_->ChargeCpu(ctx_->model.ext4_alloc_cpu_ns);
    if (!alloc_.AllocateBlocks(want, &pieces)) {
      return -ENOSPC;
    }
    uint64_t cur = lb;
    for (const auto& p : pieces) {
      ctx_->ChargeCpu(ctx_->model.ext4_extent_cpu_ns);
      inode->extents.Insert(cur, p.start, p.count);
      cur += p.count;
      allocated += static_cast<int64_t>(p.count);
      // Roll back mapping + allocation if the transaction never commits.
      Inode* captured = inode;
      uint64_t at = cur - p.count;
      PhysExtent pe = p;
      journal_.Dirty(MetaBlockId(MetaKind::kExtentTree, inode->ino), [this, captured, at, pe] {
        captured->extents.RemoveRange(at, pe.count);
        alloc_.Free(pe);
      });
    }
    journal_.Dirty(MetaBlockId(MetaKind::kBlockBitmap, pieces.front().start / 32768), nullptr);
    lb = hole_end;
  }
  return allocated;
}

// --- Open/close -----------------------------------------------------------------------

int Ext4Dax::Open(const std::string& path, int flags) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(ctx_->model.ext4_open_path_ns);

  Inode* inode = ResolvePath(path);
  if (inode == nullptr) {
    if ((flags & vfs::kCreate) == 0) {
      return -ENOENT;
    }
    std::string leaf;
    Inode* dir = ResolveParent(path, &leaf);
    if (dir == nullptr) {
      return -ENOENT;
    }
    ctx_->ChargeCpu(ctx_->model.ext4_create_extra_ns + ctx_->model.ext4_dir_op_cpu_ns +
                    ctx_->model.ext4_journal_dirty_cpu_ns);
    Ino ino = AllocateInode(FileType::kRegular);
    dir->dirents[leaf] = ino;
    inode = GetInode(ino);
    Ino dir_ino = dir->ino;
    journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, ino / 16), [this, ino] {
      inodes_.erase(ino);
    });
    journal_.Dirty(MetaBlockId(MetaKind::kDirBlock, dir_ino), [this, dir_ino, leaf] {
      if (Inode* d = GetInode(dir_ino)) {
        d->dirents.erase(leaf);
      }
    });
  } else if ((flags & vfs::kCreate) != 0 && (flags & vfs::kExcl) != 0) {
    return -EEXIST;
  }
  if (inode->type == FileType::kDirectory && vfs::WantsWrite(flags)) {
    return -EISDIR;
  }
  if ((flags & vfs::kTrunc) != 0 && inode->type == FileType::kRegular && inode->size > 0) {
    uint64_t old_size = inode->size;
    inode->size = 0;
    std::vector<PhysExtent> freed =
        inode->extents.RemoveRange(0, common::DivCeil(old_size, kBlockSize));
    ctx_->ChargeCpu(ctx_->model.ext4_journal_dirty_cpu_ns);
    Inode* captured = inode;
    journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, inode->ino / 16),
                   [captured, old_size] { captured->size = old_size; });
    // The freed extents were contiguous pieces starting at logical 0, in order;
    // save the mapping so rollback can re-insert them.
    uint64_t lb = 0;
    std::vector<MappedExtent> saved;
    for (const auto& e : freed) {
      saved.push_back({lb, e.start, e.count});
      lb += e.count;
    }
    journal_.Dirty(MetaBlockId(MetaKind::kExtentTree, inode->ino), [captured, saved] {
      for (const auto& m : saved) {
        captured->extents.Insert(m.logical, m.phys, m.count);
      }
    });
    for (const auto& e : freed) {
      ctx_->ChargeCpu(ctx_->model.ext4_free_cpu_ns);
      journal_.OnCommit([this, e] { alloc_.Free(e); });
    }
  }
  ++inode->open_count;
  return fds_.Allocate(inode->ino, flags);
}

int Ext4Dax::Close(int fd) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(ctx_->model.kernel_work_ns / 2);
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  Inode* inode = GetInode(of->ino);
  int rc = fds_.Release(fd);
  if (rc != 0) {
    return rc;
  }
  if (inode != nullptr && --inode->open_count == 0 && inode->unlinked) {
    // Orphan cleanup on last close — journaled: if the unlink's transaction rolls
    // back at a crash, the resurrected dirent must point at a live inode, so the
    // free happens only when the transaction commits.
    Ino gone = inode->ino;
    journal_.OnCommit([this, inode, gone] {
      FreeInodeBlocks(inode);
      inodes_.erase(gone);
    });
  }
  return 0;
}

int Ext4Dax::Dup(int fd) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of != nullptr) {
    if (Inode* inode = GetInode(of->ino)) {
      ++inode->open_count;
    }
  }
  return fds_.Dup(fd);
}

// --- Data path ------------------------------------------------------------------------

ssize_t Ext4Dax::PwriteLocked(std::shared_ptr<vfs::OpenFile> of, const void* buf,
                              uint64_t n, uint64_t off) {
  Inode* inode = GetInode(of->ino);
  if (inode == nullptr || inode->type != FileType::kRegular) {
    return -EBADF;
  }
  if (!vfs::WantsWrite(of->flags)) {
    return -EBADF;
  }
  if (n == 0) {
    return 0;
  }
  ctx_->ChargeCpu(ctx_->model.ext4_write_path_ns);

  bool extends = off + n > inode->size;
  int64_t allocated = EnsureBlocks(inode, off, n);
  if (allocated < 0) {
    return allocated;
  }
  if (allocated > 0) {
    ctx_->ChargeCpu(ctx_->model.ext4_journal_dirty_cpu_ns);
  }
  if (extends) {
    ctx_->ChargeCpu(ctx_->model.ext4_append_extra_ns);
    uint64_t old_size = inode->size;
    inode->size = off + n;
    Inode* captured = inode;
    journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, inode->ino / 16),
                   [captured, old_size] { captured->size = old_size; });
  }

  // DAX write: copy user bytes straight to the PM blocks with non-temporal stores.
  const auto* src = static_cast<const uint8_t*>(buf);
  uint64_t remaining = n;
  uint64_t cur = off;
  while (remaining > 0) {
    auto m = inode->extents.Lookup(cur / kBlockSize);
    SPLITFS_CHECK(m.has_value());  // EnsureBlocks covered the range.
    uint64_t in_block = cur % kBlockSize;
    uint64_t span = std::min(remaining, m->count * kBlockSize - in_block);
    dev_->StoreNt(m->phys * kBlockSize + in_block, src, span, sim::PmWriteKind::kUserData);
    src += span;
    cur += span;
    remaining -= span;
  }
  return static_cast<ssize_t>(n);
}

ssize_t Ext4Dax::PreadLocked(std::shared_ptr<vfs::OpenFile> of, void* buf, uint64_t n,
                             uint64_t off) {
  Inode* inode = GetInode(of->ino);
  if (inode == nullptr || inode->type != FileType::kRegular) {
    return -EBADF;
  }
  ctx_->ChargeCpu(ctx_->model.ext4_read_path_ns);
  if (off >= inode->size) {
    return 0;
  }
  uint64_t to_read = std::min(n, inode->size - off);
  auto* dst = static_cast<uint8_t*>(buf);
  uint64_t remaining = to_read;
  uint64_t cur = off;
  // An access continuing where the last read on this inode ended streams at the
  // sequential latency class; anything else pays the random-access latency first.
  bool sequential = off == inode->last_read_end && off != 0;
  while (remaining > 0) {
    uint64_t in_block = cur % kBlockSize;
    auto m = inode->extents.Lookup(cur / kBlockSize);
    if (!m) {  // Hole reads as zeroes.
      uint64_t span = std::min(remaining, kBlockSize - in_block);
      std::memset(dst, 0, span);
      dst += span;
      cur += span;
      remaining -= span;
      continue;
    }
    uint64_t span = std::min(remaining, m->count * kBlockSize - in_block);
    dev_->Load(m->phys * kBlockSize + in_block, dst, span, sequential,
               /*user_data=*/true);
    sequential = true;  // Continuation segments of one call stream.
    dst += span;
    cur += span;
    remaining -= span;
  }
  inode->last_read_end = off + to_read;
  return static_cast<ssize_t>(to_read);
}

ssize_t Ext4Dax::Pwrite(int fd, const void* buf, uint64_t n, uint64_t off) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  return PwriteLocked(of, buf, n, off);
}

ssize_t Ext4Dax::Pread(int fd, void* buf, uint64_t n, uint64_t off) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  return PreadLocked(of, buf, n, off);
}

ssize_t Ext4Dax::Write(int fd, const void* buf, uint64_t n) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  std::lock_guard<std::mutex> flock(of->mu);
  uint64_t off = of->offset;
  if ((of->flags & vfs::kAppend) != 0) {
    Inode* inode = GetInode(of->ino);
    if (inode != nullptr) {
      off = inode->size;
    }
  }
  ssize_t rc = PwriteLocked(of, buf, n, off);
  if (rc > 0) {
    of->offset = off + static_cast<uint64_t>(rc);
  }
  return rc;
}

ssize_t Ext4Dax::Read(int fd, void* buf, uint64_t n) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  std::lock_guard<std::mutex> flock(of->mu);
  ssize_t rc = PreadLocked(of, buf, n, of->offset);
  if (rc > 0) {
    of->offset += static_cast<uint64_t>(rc);
  }
  return rc;
}

int64_t Ext4Dax::Lseek(int fd, int64_t off, vfs::Whence whence) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  Inode* inode = GetInode(of->ino);
  std::lock_guard<std::mutex> flock(of->mu);
  int64_t base = 0;
  switch (whence) {
    case vfs::Whence::kSet:
      base = 0;
      break;
    case vfs::Whence::kCur:
      base = static_cast<int64_t>(of->offset);
      break;
    case vfs::Whence::kEnd:
      base = inode == nullptr ? 0 : static_cast<int64_t>(inode->size);
      break;
  }
  int64_t target = base + off;
  if (target < 0) {
    return -EINVAL;
  }
  of->offset = static_cast<uint64_t>(target);
  return target;
}

// --- Durability -----------------------------------------------------------------------

int Ext4Dax::Fsync(int fd) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  if (fds_.Get(fd) == nullptr) {
    return -EBADF;
  }
  journal_.CommitRunning(/*fsync_barrier=*/true);
  return 0;
}

int Ext4Dax::Ftruncate(int fd, uint64_t size) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  Inode* inode = GetInode(of->ino);
  if (inode == nullptr || inode->type != FileType::kRegular) {
    return -EBADF;
  }
  ctx_->ChargeCpu(ctx_->model.ext4_journal_dirty_cpu_ns);
  uint64_t old_size = inode->size;
  Inode* captured = inode;
  journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, inode->ino / 16),
                 [captured, old_size] { captured->size = old_size; });
  if (size < inode->size) {
    uint64_t first_gone = common::DivCeil(size, kBlockSize);
    uint64_t last = common::DivCeil(inode->size, kBlockSize);
    std::vector<PhysExtent> freed = inode->extents.RemoveRange(first_gone, last - first_gone);
    std::vector<MappedExtent> saved;
    uint64_t lb = first_gone;
    for (const auto& e : freed) {
      saved.push_back({lb, e.start, e.count});
      lb += e.count;
    }
    journal_.Dirty(MetaBlockId(MetaKind::kExtentTree, inode->ino), [captured, saved] {
      for (const auto& m : saved) {
        captured->extents.Insert(m.logical, m.phys, m.count);
      }
    });
    for (const auto& e : freed) {
      ctx_->ChargeCpu(ctx_->model.ext4_free_cpu_ns);
      journal_.OnCommit([this, e] { alloc_.Free(e); });
    }
  }
  inode->size = size;
  return 0;
}

int Ext4Dax::Fallocate(int fd, uint64_t off, uint64_t len, bool keep_size) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  Inode* inode = GetInode(of->ino);
  if (inode == nullptr || inode->type != FileType::kRegular) {
    return -EBADF;
  }
  int64_t rc = EnsureBlocks(inode, off, len);
  if (rc < 0) {
    return static_cast<int>(rc);
  }
  ctx_->ChargeCpu(ctx_->model.ext4_journal_dirty_cpu_ns);
  if (!keep_size && off + len > inode->size) {
    uint64_t old_size = inode->size;
    inode->size = off + len;
    Inode* captured = inode;
    journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, inode->ino / 16),
                   [captured, old_size] { captured->size = old_size; });
  }
  return 0;
}

// --- Namespace ------------------------------------------------------------------------

int Ext4Dax::Unlink(const std::string& path) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(ctx_->model.ext4_open_path_ns + ctx_->model.ext4_dir_op_cpu_ns +
                  ctx_->model.ext4_journal_dirty_cpu_ns + ctx_->model.ext4_unlink_extra_ns);
  std::string leaf;
  Inode* dir = ResolveParent(path, &leaf);
  if (dir == nullptr) {
    return -ENOENT;
  }
  auto it = dir->dirents.find(leaf);
  if (it == dir->dirents.end()) {
    return -ENOENT;
  }
  Inode* inode = GetInode(it->second);
  if (inode == nullptr || inode->type != FileType::kRegular) {
    return inode == nullptr ? -ENOENT : -EISDIR;
  }
  Ino dir_ino = dir->ino;
  Ino ino = inode->ino;
  dir->dirents.erase(it);
  Inode* captured = inode;
  journal_.Dirty(MetaBlockId(MetaKind::kDirBlock, dir_ino),
                 [this, dir_ino, leaf, ino, captured] {
    if (Inode* d = GetInode(dir_ino)) {
      d->dirents[leaf] = ino;
    }
    captured->unlinked = false;  // Rollback resurrects the file fully.
  });
  journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, ino / 16), nullptr);
  inode->unlinked = true;
  if (inode->open_count == 0) {
    // Defer the actual free to commit (jbd2 rule), then drop the inode.
    Inode* captured = inode;
    journal_.OnCommit([this, captured, ino] {
      FreeInodeBlocks(captured);
      inodes_.erase(ino);
    });
  }
  return 0;
}

int Ext4Dax::Rename(const std::string& from, const std::string& to) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(2 * ctx_->model.ext4_open_path_ns + 2 * ctx_->model.ext4_dir_op_cpu_ns +
                  ctx_->model.ext4_journal_dirty_cpu_ns);
  std::string from_leaf, to_leaf;
  Inode* from_dir = ResolveParent(from, &from_leaf);
  Inode* to_dir = ResolveParent(to, &to_leaf);
  if (from_dir == nullptr || to_dir == nullptr) {
    return -ENOENT;
  }
  auto it = from_dir->dirents.find(from_leaf);
  if (it == from_dir->dirents.end()) {
    return -ENOENT;
  }
  Ino moved = it->second;
  // If the destination exists, it is replaced (regular files only, as rename(2)).
  std::optional<Ino> displaced;
  auto dit = to_dir->dirents.find(to_leaf);
  if (dit != to_dir->dirents.end()) {
    if (dit->second == moved) {
      return 0;  // rename(2): same file, do nothing.
    }
    Inode* existing = GetInode(dit->second);
    if (existing != nullptr && existing->type == FileType::kDirectory) {
      return -EISDIR;
    }
    displaced = dit->second;
  }
  Ino from_ino = from_dir->ino, to_ino = to_dir->ino;
  from_dir->dirents.erase(it);
  to_dir->dirents[to_leaf] = moved;
  journal_.Dirty(MetaBlockId(MetaKind::kDirBlock, from_ino),
                 [this, from_ino, from_leaf, moved] {
                   if (Inode* d = GetInode(from_ino)) {
                     d->dirents[from_leaf] = moved;
                   }
                 });
  journal_.Dirty(MetaBlockId(MetaKind::kDirBlock, to_ino),
                 [this, to_ino, to_leaf, displaced] {
                   if (Inode* d = GetInode(to_ino)) {
                     if (displaced) {
                       d->dirents[to_leaf] = *displaced;
                       if (Inode* victim = GetInode(*displaced)) {
                         victim->unlinked = false;  // Fully resurrected.
                       }
                     } else {
                       d->dirents.erase(to_leaf);
                     }
                   }
                 });
  if (displaced) {
    Inode* old = GetInode(*displaced);
    if (old != nullptr) {
      old->unlinked = true;
      if (old->open_count == 0) {
        Ino old_ino = *displaced;
        journal_.OnCommit([this, old, old_ino] {
          FreeInodeBlocks(old);
          inodes_.erase(old_ino);
        });
      }
    }
  }
  return 0;
}

int Ext4Dax::Mkdir(const std::string& path) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(ctx_->model.ext4_open_path_ns + ctx_->model.ext4_create_extra_ns +
                  ctx_->model.ext4_dir_op_cpu_ns + ctx_->model.ext4_journal_dirty_cpu_ns);
  std::string leaf;
  Inode* dir = ResolveParent(path, &leaf);
  if (dir == nullptr) {
    return -ENOENT;
  }
  if (dir->dirents.count(leaf) != 0) {
    return -EEXIST;
  }
  Ino ino = AllocateInode(FileType::kDirectory);
  dir->dirents[leaf] = ino;
  Ino dir_ino = dir->ino;
  journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, ino / 16),
                 [this, ino] { inodes_.erase(ino); });
  journal_.Dirty(MetaBlockId(MetaKind::kDirBlock, dir_ino), [this, dir_ino, leaf] {
    if (Inode* d = GetInode(dir_ino)) {
      d->dirents.erase(leaf);
    }
  });
  return 0;
}

int Ext4Dax::Rmdir(const std::string& path) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(ctx_->model.ext4_open_path_ns + ctx_->model.ext4_dir_op_cpu_ns +
                  ctx_->model.ext4_journal_dirty_cpu_ns);
  std::string leaf;
  Inode* dir = ResolveParent(path, &leaf);
  if (dir == nullptr) {
    return -ENOENT;
  }
  auto it = dir->dirents.find(leaf);
  if (it == dir->dirents.end()) {
    return -ENOENT;
  }
  Inode* target = GetInode(it->second);
  if (target == nullptr || target->type != FileType::kDirectory) {
    return -ENOTDIR;
  }
  if (!target->dirents.empty()) {
    return -ENOTEMPTY;
  }
  Ino dir_ino = dir->ino;
  Ino gone = it->second;
  auto inode_holder = std::move(inodes_[gone]);  // Keep alive for potential undo.
  dir->dirents.erase(it);
  inodes_.erase(gone);
  auto shared_holder = std::make_shared<std::unique_ptr<Inode>>(std::move(inode_holder));
  journal_.Dirty(MetaBlockId(MetaKind::kDirBlock, dir_ino),
                 [this, dir_ino, leaf, gone, shared_holder] {
                   if (Inode* d = GetInode(dir_ino)) {
                     d->dirents[leaf] = gone;
                   }
                   if (*shared_holder != nullptr) {
                     inodes_[gone] = std::move(*shared_holder);
                   }
                 });
  return 0;
}

int Ext4Dax::ReadDir(const std::string& path, std::vector<std::string>* names) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(ctx_->model.ext4_open_path_ns);
  Inode* dir = ResolvePath(path);
  if (dir == nullptr) {
    return -ENOENT;
  }
  if (dir->type != FileType::kDirectory) {
    return -ENOTDIR;
  }
  names->clear();
  for (const auto& [name, ino] : dir->dirents) {
    ctx_->ChargeCpu(ctx_->model.kernel_work_ns / 4);
    names->push_back(name);
  }
  return 0;
}

int Ext4Dax::Stat(const std::string& path, vfs::StatBuf* out) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(ctx_->model.ext4_open_path_ns / 2);
  Inode* inode = ResolvePath(path);
  if (inode == nullptr) {
    return -ENOENT;
  }
  out->ino = inode->ino;
  out->size = inode->size;
  out->blocks = inode->extents.MappedBlocks();
  out->nlink = inode->nlink;
  out->type = inode->type;
  return 0;
}

int Ext4Dax::Fstat(int fd, vfs::StatBuf* out) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  Inode* inode = GetInode(of->ino);
  if (inode == nullptr) {
    return -EBADF;
  }
  out->ino = inode->ino;
  out->size = inode->size;
  out->blocks = inode->extents.MappedBlocks();
  out->nlink = inode->nlink;
  out->type = inode->type;
  return 0;
}

int Ext4Dax::CommitJournal(bool fsync_barrier) {
  KernelSection lock(this);
  journal_.CommitRunning(fsync_barrier);
  return 0;
}

int Ext4Dax::Recover() {
  KernelSection lock(this);
  journal_.RecoverDiscardRunning();
  return 0;
}

// --- DAX / relink extension -------------------------------------------------------------

int Ext4Dax::DaxMap(int fd, uint64_t off, uint64_t len,
                    std::vector<DaxMapping>* out) {
  KernelSection lock(this);
  out->clear();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  Inode* inode = GetInode(of->ino);
  if (inode == nullptr || inode->type != FileType::kRegular) {
    return -EBADF;
  }
  uint64_t first = off / kBlockSize;
  uint64_t count = common::DivCeil(off + len, kBlockSize) - first;
  for (const auto& m : inode->extents.FindRange(first, count)) {
    out->push_back({m.logical * kBlockSize, m.phys * kBlockSize, m.count * kBlockSize});
  }
  return 0;
}

int Ext4Dax::OpenByIno(vfs::Ino ino, int flags) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(ctx_->model.kernel_work_ns);
  Inode* inode = GetInode(ino);
  if (inode == nullptr || inode->type != FileType::kRegular) {
    return -ENOENT;
  }
  ++inode->open_count;
  return fds_.Allocate(ino, flags);
}

vfs::Ino Ext4Dax::InoOf(int fd) const {
  auto of = fds_.Get(fd);
  return of == nullptr ? vfs::kInvalidIno : of->ino;
}

int Ext4Dax::SwapExtentsForRelink(int src_fd, uint64_t src_off, int dst_fd,
                                  uint64_t dst_off, uint64_t len, uint64_t new_dst_size,
                                  bool defer_commit) {
  KernelSection lock(this);
  ctx_->ChargeSyscall();  // The ioctl trap.
  if (len == 0) {
    return 0;
  }
  if (!common::IsAligned(src_off, kBlockSize) || !common::IsAligned(dst_off, kBlockSize)) {
    return -EINVAL;
  }
  auto src_of = fds_.Get(src_fd);
  auto dst_of = fds_.Get(dst_fd);
  if (src_of == nullptr || dst_of == nullptr) {
    return -EBADF;
  }
  Inode* src = GetInode(src_of->ino);
  Inode* dst = GetInode(dst_of->ino);
  if (src == nullptr || dst == nullptr || src == dst) {
    return -EINVAL;
  }

  uint64_t first_src = src_off / kBlockSize;
  uint64_t first_dst = dst_off / kBlockSize;
  uint64_t nblocks = common::DivCeil(len, kBlockSize);

  // The paper's implementation trick (§3.5): MOVE_EXT requires blocks allocated on both
  // sides, so relink allocates transient blocks at the destination, swaps, and frees
  // them. The transient allocation takes the goal-directed fast path.
  ctx_->ChargeCpu(ctx_->model.ext4_relink_alloc_cpu_ns);

  // Collect the source mappings; every block in the range must be mapped.
  std::vector<MappedExtent> moved = src->extents.FindRange(first_src, nblocks);
  uint64_t mapped = 0;
  for (const auto& m : moved) {
    mapped += m.count;
  }
  if (mapped != nblocks) {
    return -EINVAL;  // Source range has holes; nothing to relink there.
  }

  // Deallocate whatever the destination currently maps in the target range (these are
  // the "existing data blocks are de-allocated" of the relink definition). The frees
  // are deferred to commit — jbd2's rule: blocks released by an uncommitted
  // transaction must not be reused, or a rollback would leave them aliased.
  std::vector<MappedExtent> displaced_mapped = dst->extents.FindRange(first_dst, nblocks);
  std::vector<PhysExtent> displaced = dst->extents.RemoveRange(first_dst, nblocks);
  for (const auto& e : displaced) {
    ctx_->ChargeCpu(ctx_->model.ext4_free_cpu_ns);
    journal_.OnCommit([this, e] { alloc_.Free(e); });
  }

  // Move the physical blocks: remove from source, insert at destination with the
  // logical shift applied. Metadata-only; the data bytes never move, and any DAX
  // mapping of these physical blocks remains valid.
  ctx_->ChargeCpu(2 * ctx_->model.ext4_swap_extent_cpu_ns);
  src->extents.RemoveRange(first_src, nblocks);
  for (const auto& m : moved) {
    dst->extents.Insert(first_dst + (m.logical - first_src), m.phys, m.count);
  }

  uint64_t old_dst_size = dst->size;
  if (new_dst_size > dst->size) {
    dst->size = new_dst_size;
  }

  // One journal transaction covering both extent trees and the destination inode,
  // committed immediately without the fsync barrier path. jbd2 has a single
  // transaction stream, so any metadata already dirtied by earlier operations commits
  // alongside (which is why an fsync that relinks need not also run the barrier path).
  // The undo reverses the whole swap — a crash before the commit record must leave
  // both files exactly as they were, or op-log replay would find holes where the
  // staged blocks used to be and silently lose acknowledged appends.
  journal_.Dirty(MetaBlockId(MetaKind::kExtentTree, src->ino), nullptr);
  journal_.Dirty(MetaBlockId(MetaKind::kExtentTree, dst->ino),
                 [src, dst, moved, displaced_mapped, first_dst, nblocks, old_dst_size] {
                   dst->extents.RemoveRange(first_dst, nblocks);
                   for (const auto& m : moved) {
                     src->extents.Insert(m.logical, m.phys, m.count);
                   }
                   for (const auto& m : displaced_mapped) {
                     dst->extents.Insert(m.logical, m.phys, m.count);
                   }
                   dst->size = old_dst_size;
                 });
  journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, dst->ino / 16), nullptr);
  if (!defer_commit) {
    journal_.CommitRunning(/*fsync_barrier=*/false);
  }
  ctx_->stats.AddRelink();
  return 0;
}

}  // namespace ext4sim
