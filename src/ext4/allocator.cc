#include "src/ext4/allocator.h"

#include <algorithm>
#include <array>
#include <functional>
#include <thread>

namespace ext4sim {

namespace {

// Group sizing: at least 32768 blocks (128 MiB of 4 KiB blocks) per group so tiny
// test allocators collapse to one group (exact legacy behaviour), capped at 16 groups.
constexpr uint64_t kMinGroupBlocks = 32768;
constexpr uint64_t kMaxGroups = 16;

// Per-thread group affinity, one cached entry per thread (threads drive one
// allocator at a time in practice; a miss just re-derives the hash).
struct Affinity {
  const void* alloc = nullptr;
  size_t group = 0;
};
thread_local Affinity g_affinity;

}  // namespace

BlockAllocator::BlockAllocator(uint64_t first_block, uint64_t n_blocks, sim::Clock* clock)
    : first_block_(first_block),
      n_blocks_(n_blocks),
      clock_(clock),
      free_blocks_(n_blocks),
      bits_((n_blocks + 63) / 64, 0) {
  SPLITFS_CHECK(n_blocks > 0);
  uint64_t want =
      std::min<uint64_t>(kMaxGroups, std::max<uint64_t>(1, n_blocks / kMinGroupBlocks));
  // Word-aligned group width so each bitmap word belongs to exactly one group.
  blocks_per_group_ = ((n_blocks + want - 1) / want + 63) & ~uint64_t{63};
  n_groups_ = static_cast<size_t>((n_blocks + blocks_per_group_ - 1) / blocks_per_group_);
  groups_ = std::make_unique<Group[]>(n_groups_);
  for (size_t g = 0; g < n_groups_; ++g) {
    groups_[g].lo = g * blocks_per_group_;
    groups_[g].hi = std::min(n_blocks_, (g + 1) * blocks_per_group_);
    groups_[g].cursor = groups_[g].lo;
    groups_[g].free_blocks = groups_[g].hi - groups_[g].lo;
  }
}

size_t BlockAllocator::PreferredGroup() const {
  if (g_affinity.alloc != this) {
    g_affinity.alloc = this;
    g_affinity.group =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) % n_groups_;
  }
  // Clamp defensively: the cache is keyed by address, and an allocator constructed
  // where a bigger one used to live would otherwise inherit an out-of-range group.
  return g_affinity.group % n_groups_;
}

void BlockAllocator::UpdateAffinity(size_t group) const {
  g_affinity.alloc = this;
  g_affinity.group = group;
}

PhysExtent BlockAllocator::ScanRange(uint64_t lo, uint64_t hi, uint64_t count,
                                     uint64_t charge_ns, bool* charged) {
  if (lo >= hi) {
    return {};
  }
  struct HeldGroup {
    Group* g;
    uint64_t t0;
  };
  std::array<HeldGroup, kMaxGroups> held;
  size_t n_held = 0;
  auto lock_group = [&](size_t gi) {
    Group& g = groups_[gi];
    g.mu.lock();
    uint64_t t0 = 0;
    if (clock_ != nullptr) {
      t0 = g.stamp.Acquire(clock_);
      if (!*charged && charge_ns != 0) {
        clock_->Advance(charge_ns);
        *charged = true;
      }
    }
    held[n_held++] = {&g, t0};
  };
  auto unlock_all = [&] {
    while (n_held > 0) {
      HeldGroup& h = held[--n_held];
      if (clock_ != nullptr) {
        h.g->stamp.Release(clock_, h.t0);
      }
      h.g->mu.unlock();
    }
  };

  size_t cur_g = GroupOf(lo);
  lock_group(cur_g);
  uint64_t i = lo;
  while (i < hi) {
    if (i >= groups_[cur_g].hi) {
      // Advanced past this group without finding a free bit: move the lock forward
      // (no run is in progress, so nothing older needs to stay held).
      unlock_all();
      cur_g = GroupOf(i);
      lock_group(cur_g);
    }
    if (TestBit(i)) {
      ++i;
      continue;
    }
    // First free bit: extend the run (first-fit grants partial runs), taking the
    // next group's lock — ascending order, deadlock-free — when it crosses a
    // boundary. Crossing into a neighbour is the rebalancing slow path.
    uint64_t run = 1;
    while (run < count && i + run < hi) {
      if (i + run >= groups_[cur_g].hi) {
        cur_g = GroupOf(i + run);
        lock_group(cur_g);
      }
      if (TestBit(i + run)) {
        break;
      }
      ++run;
    }
    for (uint64_t k = 0; k < run; ++k) {
      SetBit(i + k);
    }
    for (size_t h = 0; h < n_held; ++h) {
      Group* g = held[h].g;
      uint64_t o_lo = std::max(i, g->lo);
      uint64_t o_hi = std::min(i + run, g->hi);
      if (o_lo < o_hi) {
        g->free_blocks -= o_hi - o_lo;
        g->cursor = o_hi < g->hi ? o_hi : g->lo;
      }
    }
    free_blocks_.fetch_sub(run, std::memory_order_relaxed);
    size_t landing = GroupOf(i + run - 1);
    unlock_all();
    if (clock_ != nullptr && clock_->HasLane()) {
      UpdateAffinity(landing);  // Next allocation starts where this one landed.
    }
    return {first_block_ + i, run};
  }
  unlock_all();
  return {};
}

PhysExtent BlockAllocator::AllocateInternal(uint64_t count, uint64_t goal,
                                            uint64_t charge_ns, bool* charged) {
  if (count == 0 || FreeBlocks() == 0) {
    return {};
  }
  bool lane = clock_ != nullptr && clock_->HasLane();
  uint64_t start_idx;
  if (goal >= first_block_ && goal < first_block_ + n_blocks_) {
    start_idx = goal - first_block_;
  } else if (lane) {
    // Concurrent fast path: start at the calling thread's preferred group cursor so
    // parallel allocators stay out of each other's groups.
    Group& g = groups_[PreferredGroup()];
    std::lock_guard<std::mutex> lk(g.mu);
    start_idx = g.cursor;
  } else {
    start_idx = cursor_.load(std::memory_order_relaxed);
  }
  // Scan forward from the hint, wrapping once, looking for the first free run —
  // logically the same first-fit scan as the unsharded allocator.
  for (int pass = 0; pass < 2; ++pass) {
    uint64_t lo = pass == 0 ? start_idx : 0;
    uint64_t hi = pass == 0 ? n_blocks_ : start_idx;
    PhysExtent e = ScanRange(lo, hi, count, charge_ns, charged);
    if (e.count != 0) {
      if (!lane) {
        cursor_.store((e.start - first_block_ + e.count) % n_blocks_,
                      std::memory_order_relaxed);
      }
      return e;
    }
  }
  return {};
}

PhysExtent BlockAllocator::Allocate(uint64_t count, uint64_t goal, uint64_t charge_ns) {
  bool charged = false;
  PhysExtent e = AllocateInternal(count, goal, charge_ns, &charged);
  if (!charged && clock_ != nullptr && charge_ns != 0) {
    clock_->Advance(charge_ns);  // The CPU cost is paid even when allocation fails.
  }
  return e;
}

bool BlockAllocator::AllocateBlocks(uint64_t count, std::vector<PhysExtent>* out,
                                    uint64_t goal, uint64_t charge_ns) {
  bool charged = false;
  bool ok = count <= FreeBlocks();
  if (ok) {
    size_t first_new = out->size();
    uint64_t remaining = count;
    uint64_t hint = goal;
    while (remaining > 0) {
      PhysExtent e = AllocateInternal(remaining, hint, charge_ns, &charged);
      if (e.count == 0) {
        // The up-front free-count check is advisory under concurrency: a racing
        // allocator may have drained the space since. Undo the partial allocation.
        for (size_t i = first_new; i < out->size(); ++i) {
          Free((*out)[i]);
        }
        out->resize(first_new);
        ok = false;
        break;
      }
      out->push_back(e);
      remaining -= e.count;
      hint = e.start + e.count;  // Keep subsequent pieces as close as possible.
    }
  }
  if (!charged && clock_ != nullptr && charge_ns != 0) {
    clock_->Advance(charge_ns);  // Paid once regardless of outcome.
  }
  return ok;
}

void BlockAllocator::Free(const PhysExtent& e, uint64_t charge_ns) {
  SPLITFS_CHECK(e.start >= first_block_ && e.start + e.count <= first_block_ + n_blocks_);
  bool charged = false;
  uint64_t idx = e.start - first_block_;
  uint64_t end = idx + e.count;
  while (idx < end) {
    Group& g = groups_[GroupOf(idx)];
    std::lock_guard<std::mutex> lk(g.mu);
    uint64_t t0 = clock_ != nullptr ? g.stamp.Acquire(clock_) : 0;
    if (clock_ != nullptr && !charged && charge_ns != 0) {
      clock_->Advance(charge_ns);
      charged = true;
    }
    uint64_t span_end = std::min(end, g.hi);
    for (uint64_t k = idx; k < span_end; ++k) {
      SPLITFS_CHECK(TestBit(k));  // Double-free guard.
      ClearBit(k);
    }
    g.free_blocks += span_end - idx;
    if (clock_ != nullptr) {
      g.stamp.Release(clock_, t0);
    }
    idx = span_end;
  }
  free_blocks_.fetch_add(e.count, std::memory_order_relaxed);
}

bool BlockAllocator::IsAllocated(uint64_t block) const {
  SPLITFS_CHECK(block >= first_block_ && block < first_block_ + n_blocks_);
  uint64_t idx = block - first_block_;
  const Group& g = groups_[GroupOf(idx)];
  std::lock_guard<std::mutex> lk(g.mu);
  return TestBit(idx);
}

uint64_t BlockAllocator::LargestFreeRun() const {
  uint64_t best = 0, run = 0;
  for (size_t gi = 0; gi < n_groups_; ++gi) {
    const Group& g = groups_[gi];
    std::lock_guard<std::mutex> lk(g.mu);
    for (uint64_t i = g.lo; i < g.hi; ++i) {
      if (!TestBit(i)) {
        best = std::max(best, ++run);  // `run` carries across group boundaries.
      } else {
        run = 0;
      }
    }
  }
  return best;
}

}  // namespace ext4sim
