#include "src/ext4/allocator.h"

#include <algorithm>

namespace ext4sim {

BlockAllocator::BlockAllocator(uint64_t first_block, uint64_t n_blocks)
    : first_block_(first_block),
      n_blocks_(n_blocks),
      free_blocks_(n_blocks),
      bits_((n_blocks + 63) / 64, 0) {
  SPLITFS_CHECK(n_blocks > 0);
}

PhysExtent BlockAllocator::Allocate(uint64_t count, uint64_t goal) {
  if (count == 0 || free_blocks_ == 0) {
    return {};
  }
  uint64_t start_idx = cursor_;
  if (goal >= first_block_ && goal < first_block_ + n_blocks_) {
    start_idx = goal - first_block_;
  }
  // Scan forward from the hint, wrapping once, looking for the first free run.
  for (uint64_t pass = 0; pass < 2; ++pass) {
    uint64_t lo = pass == 0 ? start_idx : 0;
    uint64_t hi = pass == 0 ? n_blocks_ : start_idx;
    uint64_t i = lo;
    while (i < hi) {
      if (TestBit(i)) {
        ++i;
        continue;
      }
      uint64_t run = 1;
      while (run < count && i + run < hi && !TestBit(i + run)) {
        ++run;
      }
      for (uint64_t k = 0; k < run; ++k) {
        SetBit(i + k);
      }
      free_blocks_ -= run;
      cursor_ = (i + run) % n_blocks_;
      return {first_block_ + i, run};
    }
  }
  return {};
}

bool BlockAllocator::AllocateBlocks(uint64_t count, std::vector<PhysExtent>* out,
                                    uint64_t goal) {
  if (count > free_blocks_) {
    return false;
  }
  size_t first_new = out->size();
  uint64_t remaining = count;
  uint64_t hint = goal;
  while (remaining > 0) {
    PhysExtent e = Allocate(remaining, hint);
    if (e.count == 0) {
      // Undo partial allocation; cannot happen unless free_blocks_ was inconsistent.
      for (size_t i = first_new; i < out->size(); ++i) {
        Free((*out)[i]);
      }
      out->resize(first_new);
      return false;
    }
    out->push_back(e);
    remaining -= e.count;
    hint = e.start + e.count;  // Keep subsequent pieces as close as possible.
  }
  return true;
}

void BlockAllocator::Free(const PhysExtent& e) {
  SPLITFS_CHECK(e.start >= first_block_ && e.start + e.count <= first_block_ + n_blocks_);
  for (uint64_t k = 0; k < e.count; ++k) {
    uint64_t idx = e.start - first_block_ + k;
    SPLITFS_CHECK(TestBit(idx));  // Double-free guard.
    ClearBit(idx);
  }
  free_blocks_ += e.count;
}

bool BlockAllocator::IsAllocated(uint64_t block) const {
  SPLITFS_CHECK(block >= first_block_ && block < first_block_ + n_blocks_);
  return TestBit(block - first_block_);
}

uint64_t BlockAllocator::LargestFreeRun() const {
  uint64_t best = 0, run = 0;
  for (uint64_t i = 0; i < n_blocks_; ++i) {
    if (!TestBit(i)) {
      best = std::max(best, ++run);
    } else {
      run = 0;
    }
  }
  return best;
}

}  // namespace ext4sim
