// Per-inode extent map: logical block -> physical extent, with merge/split/swap.
//
// This is the structure EXT4_IOC_MOVE_EXT manipulates; relink (§3.5) is implemented as
// metadata-only moves between two of these maps, so its correctness (no lost or aliased
// blocks, mappings preserved) is what the extent-map unit and property tests pin down.
//
// Thread safety: the map carries its own reader/writer lock. With range-granular inode
// locking, disjoint-offset writers mutate one inode's map concurrently (each inserts
// extents for its own blocks) while readers translate through it with no inode-level
// exclusion — the internal lock is what keeps the std::map coherent. It is a leaf:
// nothing is acquired while it is held, and journal undo closures (which run with
// operations quiesced or under the inode's exclusive locks) take it like any caller.
#ifndef SRC_EXT4_EXTENT_MAP_H_
#define SRC_EXT4_EXTENT_MAP_H_

#include <cstdint>
#include <map>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "src/ext4/allocator.h"

namespace ext4sim {

// A logical->physical mapping piece.
struct MappedExtent {
  uint64_t logical = 0;  // First logical block.
  uint64_t phys = 0;     // First physical block.
  uint64_t count = 0;
};

class ExtentMap {
 public:
  // Returns the physical block backing `logical`, plus the length of the contiguous
  // run starting there, or nullopt for a hole.
  std::optional<MappedExtent> Lookup(uint64_t logical) const;

  // Inserts a mapping for [logical, logical+count) -> phys. The range must currently
  // be a hole (ext4 never double-maps); merges with adjacent extents when contiguous.
  void Insert(uint64_t logical, uint64_t phys, uint64_t count);

  // Removes mappings overlapping [logical, logical+count), splitting boundary extents.
  // Returns the physical extents that were removed (for deallocation).
  std::vector<PhysExtent> RemoveRange(uint64_t logical, uint64_t count);

  // Enumerates mappings overlapping [logical, logical+count), clipped to the range.
  std::vector<MappedExtent> FindRange(uint64_t logical, uint64_t count) const;

  uint64_t MappedBlocks() const;
  size_t ExtentCount() const;
  bool Empty() const;

  // Removes everything, returning all physical extents.
  std::vector<PhysExtent> Clear();

 private:
  std::vector<MappedExtent> FindRangeLocked(uint64_t logical, uint64_t count) const;

  mutable std::shared_mutex mu_;
  // Key: first logical block of the extent. Guarded by mu_.
  std::map<uint64_t, MappedExtent> map_;
};

}  // namespace ext4sim

#endif  // SRC_EXT4_EXTENT_MAP_H_
