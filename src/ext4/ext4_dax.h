// ext4 in DAX mode, modeled in user space: the K-Split half of SplitFS.
//
// Reproduces the boundary SplitFS depends on:
//   * full POSIX file/dir namespace with extent-based files and a JBD2-style journal;
//   * DAX semantics — file data lives at stable physical offsets on the PM device,
//     exposed to U-Split via DaxMap() (the moral equivalent of mmap on a DAX file);
//   * the modified EXT4_IOC_MOVE_EXT ioctl (SwapExtentsForRelink) added by the paper's
//     500-line kernel patch: metadata-only, journaled, mapping-preserving.
//
// Every public entry point charges one kernel trap plus the CPU/journal/media costs of
// the real ext4 code path it models (see sim::CostModel for the calibration).
#ifndef SRC_EXT4_EXT4_DAX_H_
#define SRC_EXT4_EXT4_DAX_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ext4/allocator.h"
#include "src/ext4/extent_map.h"
#include "src/ext4/journal.h"
#include "src/pmem/device.h"
#include "src/vfs/fd_table.h"
#include "src/vfs/file_system.h"

namespace ext4sim {

struct FsckReport;
class Ext4Dax;
FsckReport RunFsck(Ext4Dax* fs);

struct Ext4Options {
  uint64_t journal_blocks = 2048;  // 8 MB journal, scaled-down jbd2 default.
};

class Ext4Dax : public vfs::FileSystem {
 public:
  Ext4Dax(pmem::Device* dev, Ext4Options opts = {});
  ~Ext4Dax() override = default;

  std::string Name() const override { return "ext4-DAX"; }

  // --- vfs::FileSystem ------------------------------------------------------------------
  int Open(const std::string& path, int flags) override;
  int Close(int fd) override;
  int Unlink(const std::string& path) override;
  int Rename(const std::string& from, const std::string& to) override;
  ssize_t Pread(int fd, void* buf, uint64_t n, uint64_t off) override;
  ssize_t Pwrite(int fd, const void* buf, uint64_t n, uint64_t off) override;
  ssize_t Read(int fd, void* buf, uint64_t n) override;
  ssize_t Write(int fd, const void* buf, uint64_t n) override;
  int64_t Lseek(int fd, int64_t off, vfs::Whence whence) override;
  int Fsync(int fd) override;
  int Ftruncate(int fd, uint64_t size) override;
  int Fallocate(int fd, uint64_t off, uint64_t len, bool keep_size) override;
  int Stat(const std::string& path, vfs::StatBuf* out) override;
  int Fstat(int fd, vfs::StatBuf* out) override;
  int Mkdir(const std::string& path) override;
  int Rmdir(const std::string& path) override;
  int ReadDir(const std::string& path, std::vector<std::string>* names) override;
  int Recover() override;

  // Duplicates a descriptor (shares offset, as POSIX dup()).
  int Dup(int fd);

  // --- DAX / SplitFS extension surface ---------------------------------------------------

  // One piece of a DAX mapping: file byte range -> device byte range.
  struct DaxMapping {
    uint64_t file_off = 0;
    uint64_t dev_off = 0;
    uint64_t len = 0;
  };

  // Resolves [off, off+len) of the file behind `fd` to device byte ranges. Holes are
  // simply absent from the result. This is the kernel half of mmap(MAP_SHARED) on a
  // DAX file; the caller (U-Split) charges mmap()/fault costs.
  int DaxMap(int fd, uint64_t off, uint64_t len, std::vector<DaxMapping>* out);

  // The relink primitive (modified EXT4_IOC_MOVE_EXT, §3.5). Logically and atomically
  // moves [src_off, src_off+len) of src_fd to [dst_off, ...) of dst_fd:
  //   * block-aligned core is moved by swapping extent-tree entries (no data copy,
  //     no flush), wrapped in a dedicated journal transaction;
  //   * blocks previously mapped at the destination are deallocated;
  //   * the source range becomes a hole;
  //   * dst file size grows to max(current, new_dst_size) when new_dst_size > 0 —
  //     this is how staged appends publish the true (possibly unaligned) file size.
  // Non-block-aligned edges are NOT handled here — U-Split copies partial blocks
  // itself, as the paper describes. Returns 0 or -errno (-EINVAL for misalignment).
  //
  // With defer_commit=true the ioctl leaves its dirtied metadata in the running
  // transaction instead of committing; an fsync publishing many staged ranges issues
  // one relink per contiguous run and then a single CommitJournal(false) — jbd2
  // batches the handles into one commit.
  int SwapExtentsForRelink(int src_fd, uint64_t src_off, int dst_fd, uint64_t dst_off,
                           uint64_t len, uint64_t new_dst_size,
                           bool defer_commit = false);

  // Inode number behind an fd (0 if bad fd) — U-Split keys its caches by inode.
  vfs::Ino InoOf(int fd) const;

  // Opens a file by inode number (the open_by_handle_at analog). Used by SplitFS
  // op-log recovery, where log entries identify files by inode. Returns fd or -errno.
  int OpenByIno(vfs::Ino ino, int flags);

  // Commits the running journal transaction. U-Split's sync/strict modes use the
  // non-barrier path to make metadata operations synchronous without paying the
  // fsync commit-thread handshake.
  int CommitJournal(bool fsync_barrier);

  pmem::Device* device() const { return dev_; }
  sim::Context* context() const { return ctx_; }

  // Test/bench introspection.
  uint64_t FreeBlocks() const { return alloc_.FreeBlocks(); }
  uint64_t JournalCommits() const { return journal_.commits(); }
  BlockAllocator* allocator_for_test() { return &alloc_; }


  friend FsckReport RunFsck(Ext4Dax* fs);

 private:
  struct Inode {
    vfs::Ino ino = vfs::kInvalidIno;
    vfs::FileType type = vfs::FileType::kRegular;
    uint64_t size = 0;
    uint32_t nlink = 1;
    ExtentMap extents;
    std::map<std::string, vfs::Ino> dirents;  // Directories only.
    uint32_t open_count = 0;
    bool unlinked = false;  // Orphaned: free on last close.
    uint64_t last_read_end = 0;  // Sequential-access detection (Table 2 latency class).
  };

  Inode* GetInode(vfs::Ino ino);
  Inode* ResolvePath(const std::string& path);
  // Resolves the parent directory of `path`; fills leaf name.
  Inode* ResolveParent(const std::string& path, std::string* leaf);

  vfs::Ino AllocateInode(vfs::FileType type);
  void FreeInodeBlocks(Inode* inode);
  // Ensures blocks exist for [off, off+len); returns number of newly allocated blocks
  // or -ENOSPC. Journals the allocation.
  int64_t EnsureBlocks(Inode* inode, uint64_t off, uint64_t len);

  ssize_t PwriteLocked(std::shared_ptr<vfs::OpenFile> of, const void* buf, uint64_t n,
                       uint64_t off);
  ssize_t PreadLocked(std::shared_ptr<vfs::OpenFile> of, void* buf, uint64_t n,
                      uint64_t off);

  // RAII big-kernel-lock section: takes mu_ and brackets the critical section with
  // the kernel's ResourceStamp, so time spent under the (real) lock serializes in
  // the per-thread virtual timelines too — N user threads overlap their user-space
  // data path but queue for the kernel, exactly like threads trapping into one ext4.
  class KernelSection {
   public:
    explicit KernelSection(const Ext4Dax* fs)
        : lock_(fs->mu_), time_(&fs->kernel_stamp_, &fs->ctx_->clock) {}

   private:
    std::lock_guard<std::mutex> lock_;
    sim::ScopedResourceTime time_;
  };

  pmem::Device* dev_;
  sim::Context* ctx_;
  uint64_t data_start_block_;
  BlockAllocator alloc_;
  Journal journal_;

  mutable std::mutex mu_;  // Protects the namespace + inode table (big kernel lock).
  mutable sim::ResourceStamp kernel_stamp_;
  std::unordered_map<vfs::Ino, std::unique_ptr<Inode>> inodes_;
  vfs::Ino next_ino_ = vfs::kRootIno + 1;
  vfs::FdTable fds_;
};

}  // namespace ext4sim

#endif  // SRC_EXT4_EXT4_DAX_H_
