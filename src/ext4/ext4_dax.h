// ext4 in DAX mode, modeled in user space: the K-Split half of SplitFS.
//
// Reproduces the boundary SplitFS depends on:
//   * full POSIX file/dir namespace with extent-based files and a JBD2-style journal;
//   * DAX semantics — file data lives at stable physical offsets on the PM device,
//     exposed to U-Split via DaxMap() (the moral equivalent of mmap on a DAX file);
//   * the modified EXT4_IOC_MOVE_EXT ioctl (SwapExtentsForRelink) added by the paper's
//     500-line kernel patch: metadata-only, journaled, mapping-preserving.
//
// Every public entry point charges one kernel trap plus the CPU/journal/media costs of
// the real ext4 code path it models (see sim::CostModel for the calibration).
//
// Locking model (mirrors real ext4, replacing the former big kernel lock). A thread
// only ever acquires downward in this list:
//
//   1. Journal handle (shared side of the jbd2 barrier): every metadata-mutating
//      operation holds one. The commit pipeline takes the barrier exclusively only
//      for the short seal window that swaps the running transaction into the
//      committing slot — a commit never captures half an operation, but the
//      writeout and the deferred commit actions run with the barrier released, so
//      actions synchronize on inode/allocator locks themselves (ReclaimIfOrphan's
//      keyed re-check). Recovery and fsck quiesce harder: pipeline slot + barrier.
//   2. rename_mu_: shared by all namespace mutations; exclusive only for directory
//      renames, freezing the tree shape so the cycle (ancestor) walk and a displaced
//      directory's emptiness check are stable — Linux's s_vfs_rename_mutex.
//   3. Namespace (dentry) shard locks, keyed by directory inode, ascending shard
//      index when two or three are needed: guard dirent maps. Path resolution locks
//      one shard at a time (shared) and never holds two.
//   4. Per-inode byte-range locks (vfs::RangeLock, ledger resource
//      "ext4.inode_range"), ascending ino when two are needed (relink).
//      Size-preserving data writes and in-bounds Fallocate take only their
//      block-aligned byte range exclusively (block granularity serializes same-block
//      writers, which share extent-allocation and byte-overlap state); data reads
//      take their range shared. Anything that changes the file's shape — extends,
//      truncate, O_TRUNC, relink, orphan reclamation — takes the whole file
//      (kWholeFile), which excludes every range holder.
//   5. Per-inode reader/writer locks (mu), ascending ino when two are needed:
//      guard nlink/open_count/unlinked and, for shape changes, size. A range-locked
//      data write does NOT take mu — the whole-file range acquisition of every
//      shape-changing path is what keeps size and extents stable under it; `size`
//      is atomic so lock-free classification reads stay defined. Metadata readers
//      (Stat/Fstat/Lseek) still take mu shared.
//   6. Leaves, never held while acquiring any of the above: the inode table's
//      shared_mutex, the extent map's internal lock, the allocator's per-group
//      locks, the journal's state mutex.
//
// Virtual-time accounting follows the same granularity: each inode, namespace shard,
// allocator group, and the journal commit path carries a sim::ResourceStamp, so
// lane-bound threads serialize their timelines only where the real locks serialize
// them — concurrent writes to different files or creates in different directories
// no longer queue on one global stamp. Single-timeline (no-lane) runs are
// bit-identical to the big-kernel-lock model.
#ifndef SRC_EXT4_EXT4_DAX_H_
#define SRC_EXT4_EXT4_DAX_H_

#include <array>
#include <atomic>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ext4/allocator.h"
#include "src/ext4/extent_map.h"
#include "src/ext4/journal.h"
#include "src/pmem/device.h"
#include "src/vfs/fd_table.h"
#include "src/vfs/file_system.h"
#include "src/vfs/range_lock.h"

namespace ext4sim {

struct FsckReport;
class Ext4Dax;
FsckReport RunFsck(Ext4Dax* fs);

struct Ext4Options {
  uint64_t journal_blocks = 2048;  // 8 MB journal, scaled-down jbd2 default.
  // jbd2's j_commit_interval: how long a committer holds the pipeline slot open so
  // concurrent fsyncs merge into one sealed transaction. 0 = seal immediately
  // (bit-identical to the pre-coalescing pipeline).
  uint64_t commit_interval_ns = 0;
};

class Ext4Dax : public vfs::FileSystem {
 public:
  Ext4Dax(pmem::Device* dev, Ext4Options opts = {});
  ~Ext4Dax() override = default;

  std::string Name() const override { return "ext4-DAX"; }

  // --- vfs::FileSystem ------------------------------------------------------------------
  int Open(const std::string& path, int flags) override;
  int Close(int fd) override;
  int Unlink(const std::string& path) override;
  int Rename(const std::string& from, const std::string& to) override;
  ssize_t Pread(int fd, void* buf, uint64_t n, uint64_t off) override;
  ssize_t Pwrite(int fd, const void* buf, uint64_t n, uint64_t off) override;
  ssize_t Read(int fd, void* buf, uint64_t n) override;
  ssize_t Write(int fd, const void* buf, uint64_t n) override;
  int64_t Lseek(int fd, int64_t off, vfs::Whence whence) override;
  int Fsync(int fd) override;
  int Ftruncate(int fd, uint64_t size) override;
  int Fallocate(int fd, uint64_t off, uint64_t len, bool keep_size) override;
  int Stat(const std::string& path, vfs::StatBuf* out) override;
  int Fstat(int fd, vfs::StatBuf* out) override;
  int Mkdir(const std::string& path) override;
  int Rmdir(const std::string& path) override;
  int ReadDir(const std::string& path, std::vector<std::string>* names) override;
  int Recover() override;

  // Duplicates a descriptor (shares offset, as POSIX dup()).
  int Dup(int fd);

  // --- DAX / SplitFS extension surface ---------------------------------------------------

  // One piece of a DAX mapping: file byte range -> device byte range.
  struct DaxMapping {
    uint64_t file_off = 0;
    uint64_t dev_off = 0;
    uint64_t len = 0;
  };

  // Resolves [off, off+len) of the file behind `fd` to device byte ranges. Holes are
  // simply absent from the result. This is the kernel half of mmap(MAP_SHARED) on a
  // DAX file; the caller (U-Split) charges mmap()/fault costs.
  int DaxMap(int fd, uint64_t off, uint64_t len, std::vector<DaxMapping>* out);

  // The relink primitive (modified EXT4_IOC_MOVE_EXT, §3.5). Logically and atomically
  // moves [src_off, src_off+len) of src_fd to [dst_off, ...) of dst_fd:
  //   * block-aligned core is moved by swapping extent-tree entries (no data copy,
  //     no flush), wrapped in a dedicated journal transaction;
  //   * blocks previously mapped at the destination are deallocated;
  //   * the source range becomes a hole;
  //   * dst file size grows to max(current, new_dst_size) when new_dst_size > 0 —
  //     this is how staged appends publish the true (possibly unaligned) file size.
  // Non-block-aligned edges are NOT handled here — U-Split copies partial blocks
  // itself, as the paper describes. Returns 0 or -errno (-EINVAL for misalignment).
  //
  // With defer_commit=true the ioctl leaves its dirtied metadata in the running
  // transaction instead of committing; an fsync publishing many staged ranges issues
  // one relink per contiguous run and then a single CommitJournal(false) — jbd2
  // batches the handles into one commit.
  //
  // Takes both inode locks, ascending ino — the documented two-inode lock order that
  // keeps concurrent relinks (fsync batching, op-log recovery replay) deadlock-free.
  int SwapExtentsForRelink(int src_fd, uint64_t src_off, int dst_fd, uint64_t dst_off,
                           uint64_t len, uint64_t new_dst_size,
                           bool defer_commit = false);

  // Inode number behind an fd (0 if bad fd) — U-Split keys its caches by inode.
  vfs::Ino InoOf(int fd) const;

  // Opens a file by inode number (the open_by_handle_at analog). Used by SplitFS
  // op-log recovery, where log entries identify files by inode. Returns fd or -errno.
  int OpenByIno(vfs::Ino ino, int flags);

  // Commits the running journal transaction. U-Split's sync/strict modes use the
  // non-barrier path to make metadata operations synchronous without paying the
  // fsync commit-thread handshake. `who`, when set, tags the request for per-caller
  // commit-service attribution (the tenant router passes the tenant id): a coalesced
  // writeout splits its service time across the tags it satisfied.
  int CommitJournal(bool fsync_barrier, const char* who = nullptr);

  // Fsync with commit-service attribution (see CommitJournal); the virtual override
  // forwards who=nullptr.
  int Fsync(int fd, const char* who);

  pmem::Device* device() const { return dev_; }
  sim::Context* context() const { return ctx_; }

  // Test/bench introspection.
  uint64_t FreeBlocks() const { return alloc_.FreeBlocks(); }
  uint64_t JournalCommits() const { return journal_.commits(); }
  BlockAllocator* allocator_for_test() { return &alloc_; }
  // Pipeline introspection/hook access for the directed commit-pipeline tests.
  Journal* journal_for_test() { return &journal_; }
  // Inodes currently on the on-disk orphan list (unlinked, awaiting reclamation).
  size_t OrphanCount() const {
    std::lock_guard<std::mutex> lock(orphan_mu_);
    return orphans_.size();
  }


  friend FsckReport RunFsck(Ext4Dax* fs);

 private:
  struct Inode {
    Inode(sim::Clock* clock, obs::Observability* obs)
        : range_lock(clock, obs, "ext4.inode_range") {}

    // Immutable after creation.
    vfs::Ino ino = vfs::kInvalidIno;
    vfs::FileType type = vfs::FileType::kRegular;

    // Atomic so range-locked writers can classify (extend vs. in-place) without mu.
    // Mutated only under range_lock whole-file exclusive + mu exclusive, so it is
    // stable while any byte range is held.
    std::atomic<uint64_t> size{0};

    // Guarded by mu: exclusive for mutation, shared for reads. `dirents` is the
    // exception — it is guarded by the owning directory's namespace shard lock;
    // `extents` carries its own internal lock (range-disjoint writers mutate it
    // concurrently).
    uint32_t nlink = 1;  // Dirs: 2 + #subdirs ('.' + parent entry + childrens' '..').
    vfs::Ino parent = vfs::kInvalidIno;  // Directories: containing directory's ino.
    ExtentMap extents;
    std::map<std::string, vfs::Ino> dirents;  // Directories only; ns-shard guarded.
    uint32_t open_count = 0;
    bool unlinked = false;  // Orphaned: free on last close.

    // Sequential-access detection (Table 2 latency class). Atomic: updated by
    // readers holding only the shared inode lock, and invalidated by writers.
    std::atomic<uint64_t> last_read_end{0};

    // Byte-range lock, level 4: data-path granularity. Per-range virtual-time
    // stamps live inside it (ledger resource "ext4.inode_range").
    mutable vfs::RangeLock range_lock;
    mutable std::shared_mutex mu;
    mutable sim::ResourceStamp stamp;  // Busy time of mu's exclusive side.
  };
  using InodeRef = std::shared_ptr<Inode>;

  static constexpr size_t kNsShards = 16;
  struct alignas(64) NsShard {
    mutable std::shared_mutex mu;
    mutable sim::ResourceStamp stamp;
  };
  NsShard& NsShardOf(vfs::Ino dir_ino) const {
    return ns_shards_[static_cast<size_t>(dir_ino) % kNsShards];
  }

  // Locks the namespace shards of the given directories (deduplicated) in ascending
  // shard order, bracketing each with its ResourceStamp.
  class NsLock {
   public:
    NsLock(const Ext4Dax* fs, std::initializer_list<vfs::Ino> dirs);
    ~NsLock();
    NsLock(const NsLock&) = delete;
    NsLock& operator=(const NsLock&) = delete;

   private:
    const Ext4Dax* fs_;
    size_t n_ = 0;
    struct Held {
      NsShard* shard;
      uint64_t t0;
      size_t idx;  // Shard index; witness order key is idx + 1.
    } held_[3];
  };

  // Witness site ids for the namespace-level locks (see the lock-order comment at
  // the top of this file). The per-inode range locks report through vfs::RangeLock
  // itself ("ext4.inode_range", order key = ino).
  static int NamespaceSite() {
    static const int kSite = analysis::LockSite("ksplit.namespace");
    return kSite;
  }
  static int DentryShardSite() {
    static const int kSite = analysis::LockSite("ksplit.dentry_shard");
    return kSite;
  }
  static int InodeMuSite() {
    static const int kSite = analysis::LockSite("ksplit.inode_mu");
    return kSite;
  }

  InodeRef GetInode(vfs::Ino ino) const;       // Inode-table shared lock (leaf).
  void InsertInode(InodeRef inode);            // Inode-table unique lock (leaf).
  void EraseInode(vfs::Ino ino);               // Inode-table unique lock (leaf).
  InodeRef ResolvePath(const std::string& path);
  // Resolves the parent directory of `path`; fills leaf name.
  InodeRef ResolveParent(const std::string& path, std::string* leaf);
  // A directory that still has a dirent pointing at it (nlink > 0). Re-checked under
  // the shard lock before inserting into a directory that may have been removed.
  bool DirAlive(const InodeRef& dir) const;

  InodeRef AllocateInode(vfs::FileType type);
  void FreeInodeBlocks(Inode* inode);
  // On-disk orphan list maintenance (ext4's s_last_orphan chain, modeled as a set).
  // OrphanAdd is called inside the unlinking transaction and registers a journal
  // undo, so a rolled-back unlink also takes the inode back off the list; removal
  // happens when the inode is actually reclaimed (commit action or Recover()).
  void OrphanAdd(vfs::Ino ino);
  void OrphanRemove(vfs::Ino ino);
  // Commit action for deferred inode reclamation: re-looks the inode up by ino and
  // frees it only if it is still an orphan (unlinked, no opens). Keying by ino —
  // never by captured pointer — makes a rollback that resurrects the inode, or a
  // reopen via OpenByIno, cancel the free instead of use-after-freeing it.
  void ReclaimIfOrphan(vfs::Ino ino);
  // Ensures blocks exist for [off, off+len); returns number of newly allocated blocks
  // or -ENOSPC. Journals the allocation. Caller holds a range-write (block-aligned,
  // covering [off, off+len)) or whole-file lock, and a journal handle.
  int64_t EnsureBlocks(const InodeRef& inode, uint64_t off, uint64_t len);
  // Truncates a regular file to `size`; shared by Ftruncate and O_TRUNC. Caller
  // holds the whole-file range lock + inode lock exclusively and a journal handle.
  void TruncateLocked(const InodeRef& inode, uint64_t size);

  // Write body behind Pwrite/Write: classifies the write (extending vs.
  // size-preserving) and takes either the whole file (range + mu, with mu's
  // ResourceStamp) or just the block-aligned byte range exclusively, retrying if a
  // concurrent truncate invalidates the classification. Caller holds a journal
  // handle and nothing else on this inode.
  ssize_t LockedPwrite(const InodeRef& inode, int flags, const void* buf, uint64_t n,
                       uint64_t off);

  // Data-path bodies; the caller holds the locks LockedPwrite/the read path
  // describe (write: range-write or whole-file; read: shared range) and, for
  // writes, a journal handle.
  ssize_t PwriteInode(const InodeRef& inode, int flags, const void* buf, uint64_t n,
                      uint64_t off);
  ssize_t PreadInode(const InodeRef& inode, void* buf, uint64_t n, uint64_t off);

  pmem::Device* dev_;
  sim::Context* ctx_;
  uint64_t data_start_block_;
  BlockAllocator alloc_;
  Journal journal_;

  mutable std::shared_mutex rename_mu_;
  mutable std::array<NsShard, kNsShards> ns_shards_;
  mutable std::shared_mutex itable_mu_;  // Guards the inode table's structure only.
  std::unordered_map<vfs::Ino, InodeRef> inodes_;
  // On-disk orphan list (leaf lock): unlinked inodes whose blocks are still
  // allocated. Mount-time recovery (Recover) reclaims whatever is left on it — the
  // deferred last-close reclamation may have died with a rolled-back transaction.
  mutable std::mutex orphan_mu_;
  std::set<vfs::Ino> orphans_;
  std::atomic<vfs::Ino> next_ino_{vfs::kRootIno + 1};
  vfs::FdTable fds_;
};

}  // namespace ext4sim

#endif  // SRC_EXT4_EXT4_DAX_H_
