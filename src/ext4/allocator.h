// Bitmap block allocator for the data region of the emulated PM device.
//
// Models ext4's mballoc at the interface level: callers ask for up-to-`count`
// physically contiguous blocks near a goal and receive one extent per call; large
// requests therefore decay into multiple extents under fragmentation, which is exactly
// the behaviour that makes huge-page-backed mmaps fragile (§4 of the paper).
//
// Concurrency: the block space is partitioned into per-group free lists — contiguous,
// word-aligned block-group ranges, each with its own mutex and sim::ResourceStamp —
// mirroring ext4's per-group allocation locks. The first-fit scan is logically
// identical to the pre-sharding single-bitmap scan (a free run may cross group
// boundaries; the scan takes group locks in ascending order as it advances), so a
// single-threaded caller sees bit-identical placement. A thread with a bound clock
// lane instead starts at its own preferred group's rotating cursor — the fast path
// that keeps concurrent allocators out of each other's groups — and spills into
// neighbouring groups only when its preferred group cannot satisfy the request (the
// rebalancing slow path, charged to the neighbours' stamps). Its preferred group
// migrates to wherever the allocation landed, so a thread that drained one group
// rebalances itself onto fresh ones instead of rescanning exhausted space.
#ifndef SRC_EXT4_ALLOCATOR_H_
#define SRC_EXT4_ALLOCATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/status.h"
#include "src/sim/clock.h"

namespace ext4sim {

struct PhysExtent {
  uint64_t start = 0;  // First physical block.
  uint64_t count = 0;  // Number of blocks.
};

class BlockAllocator {
 public:
  // Manages blocks [first_block, first_block + n_blocks). `clock` enables the
  // per-group ResourceStamp accounting and per-thread group affinity for lane-bound
  // threads; with clock == nullptr the allocator behaves exactly like the legacy
  // single-cursor allocator (modulo internal locking, which is then uncontended).
  BlockAllocator(uint64_t first_block, uint64_t n_blocks, sim::Clock* clock = nullptr);

  // Allocates up to `count` contiguous blocks starting the search at `goal`
  // (0 = the rotating cursor — the shared one, or the calling thread's preferred
  // group's when a clock lane is bound). Returns an extent with count in
  // [1, count], or count == 0 if the device is full. `charge_ns` is CPU time
  // charged to the caller's timeline inside the first group's critical section,
  // so allocation CPU serializes on the group lock in virtual time.
  PhysExtent Allocate(uint64_t count, uint64_t goal = 0, uint64_t charge_ns = 0);

  // Allocates exactly `count` blocks as a list of extents (first-fit, possibly
  // fragmented). Returns false (and allocates nothing) if space is insufficient.
  // `charge_ns` is charged once, not per piece.
  bool AllocateBlocks(uint64_t count, std::vector<PhysExtent>* out, uint64_t goal = 0,
                      uint64_t charge_ns = 0);

  // Frees an extent (which may span group boundaries; it is split internally).
  void Free(const PhysExtent& e, uint64_t charge_ns = 0);

  uint64_t FreeBlocks() const { return free_blocks_.load(std::memory_order_relaxed); }
  uint64_t TotalBlocks() const { return n_blocks_; }
  bool IsAllocated(uint64_t block) const;

  // Largest contiguous free run; tests use this to assert fragmentation behaviour.
  uint64_t LargestFreeRun() const;

  size_t Groups() const { return n_groups_; }

 private:
  struct alignas(64) Group {
    uint64_t lo = 0;      // First block index (word-aligned) owned by this group.
    uint64_t hi = 0;      // One past the last block index.
    uint64_t cursor = 0;  // Rotating allocation hint within [lo, hi); guarded by mu.
    uint64_t free_blocks = 0;  // Guarded by mu; the atomic total is authoritative.
    mutable std::mutex mu;
    mutable sim::ResourceStamp stamp;
  };

  // Word-granular bits_ plus word-aligned group boundaries keep each 64-bit word
  // owned by exactly one group, so bit updates under the group lock never race.
  bool TestBit(uint64_t idx) const { return (bits_[idx >> 6] >> (idx & 63)) & 1; }
  void SetBit(uint64_t idx) { bits_[idx >> 6] |= (1ull << (idx & 63)); }
  void ClearBit(uint64_t idx) { bits_[idx >> 6] &= ~(1ull << (idx & 63)); }

  size_t GroupOf(uint64_t idx) const {
    size_t g = static_cast<size_t>(idx / blocks_per_group_);
    return g >= n_groups_ ? n_groups_ - 1 : g;
  }
  // The calling thread's preferred group (lane-bound threads only); sticky until
  // UpdateAffinity migrates it to where an allocation last succeeded.
  size_t PreferredGroup() const;
  void UpdateAffinity(size_t group) const;

  // First-fit scan over [lo, hi) with group-lock coupling; returns the first free
  // run (up to `count` blocks) or an empty extent. Sets *charged the first time a
  // group section charges `charge_ns`.
  PhysExtent ScanRange(uint64_t lo, uint64_t hi, uint64_t count, uint64_t charge_ns,
                       bool* charged);
  PhysExtent AllocateInternal(uint64_t count, uint64_t goal, uint64_t charge_ns,
                              bool* charged);

  uint64_t first_block_;
  uint64_t n_blocks_;
  uint64_t blocks_per_group_;
  size_t n_groups_;
  sim::Clock* clock_;
  std::atomic<uint64_t> free_blocks_;
  // Shared rotating hint (index, not block number) used when no lane is bound —
  // the legacy single-threaded behaviour.
  std::atomic<uint64_t> cursor_{0};
  std::vector<uint64_t> bits_;
  std::unique_ptr<Group[]> groups_;
};

}  // namespace ext4sim

#endif  // SRC_EXT4_ALLOCATOR_H_
