// Bitmap block allocator for the data region of the emulated PM device.
//
// Models ext4's mballoc at the interface level: callers ask for up-to-`count`
// physically contiguous blocks near a goal and receive one extent per call; large
// requests therefore decay into multiple extents under fragmentation, which is exactly
// the behaviour that makes huge-page-backed mmaps fragile (§4 of the paper).
#ifndef SRC_EXT4_ALLOCATOR_H_
#define SRC_EXT4_ALLOCATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace ext4sim {

struct PhysExtent {
  uint64_t start = 0;  // First physical block.
  uint64_t count = 0;  // Number of blocks.
};

class BlockAllocator {
 public:
  // Manages blocks [first_block, first_block + n_blocks).
  BlockAllocator(uint64_t first_block, uint64_t n_blocks);

  // Allocates up to `count` contiguous blocks starting the search at `goal`
  // (0 = allocator's rotating cursor). Returns an extent with count in
  // [1, count], or count == 0 if the device is full.
  PhysExtent Allocate(uint64_t count, uint64_t goal = 0);

  // Allocates exactly `count` blocks as a list of extents (first-fit, possibly
  // fragmented). Returns false (and allocates nothing) if space is insufficient.
  bool AllocateBlocks(uint64_t count, std::vector<PhysExtent>* out, uint64_t goal = 0);

  void Free(const PhysExtent& e);

  uint64_t FreeBlocks() const { return free_blocks_; }
  uint64_t TotalBlocks() const { return n_blocks_; }
  bool IsAllocated(uint64_t block) const;

  // Largest contiguous free run; tests use this to assert fragmentation behaviour.
  uint64_t LargestFreeRun() const;

 private:
  bool TestBit(uint64_t idx) const { return (bits_[idx >> 6] >> (idx & 63)) & 1; }
  void SetBit(uint64_t idx) { bits_[idx >> 6] |= (1ull << (idx & 63)); }
  void ClearBit(uint64_t idx) { bits_[idx >> 6] &= ~(1ull << (idx & 63)); }

  uint64_t first_block_;
  uint64_t n_blocks_;
  uint64_t free_blocks_;
  uint64_t cursor_ = 0;  // Rotating allocation hint (index, not block number).
  std::vector<uint64_t> bits_;
};

}  // namespace ext4sim

#endif  // SRC_EXT4_ALLOCATOR_H_
