// Offline consistency checker for the ext4-DAX model ("e2fsck for the simulator").
//
// Validates the invariants that journaling + relink are supposed to preserve, so
// crash-consistency tests can assert *file-system integrity* — the paper's blanket
// guarantee ("across all modes, SplitFS ensures the file system retains its integrity
// across crashes") — not just per-file contents:
//   * every block referenced by an extent tree is marked allocated in the bitmap;
//   * no physical block is referenced by two extents (no aliasing, the relink hazard);
//   * allocator free counts agree with the union of extent references;
//   * the directory graph is a tree rooted at '/' and every inode is reachable or a
//     legitimate orphan (unlinked-but-open);
//   * file sizes are consistent with their block mappings.
#ifndef SRC_EXT4_FSCK_H_
#define SRC_EXT4_FSCK_H_

#include <string>
#include <vector>

namespace ext4sim {

class Ext4Dax;

struct FsckReport {
  bool clean = true;
  std::vector<std::string> problems;

  void Problem(std::string what) {
    clean = false;
    problems.push_back(std::move(what));
  }
};

// Runs all checks; cheap enough to call after every crash-recovery in tests.
FsckReport RunFsck(Ext4Dax* fs);

}  // namespace ext4sim

#endif  // SRC_EXT4_FSCK_H_
