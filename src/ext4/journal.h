// JBD2-style metadata journal model with a two-transaction commit pipeline.
//
// ext4 keeps one *running transaction* that every metadata-dirtying operation joins;
// fsync() forces a commit of the whole running transaction (this is why ext4 fsync is
// expensive, Table 6: 28.98 us). The modified EXT4_IOC_MOVE_EXT ioctl that implements
// relink wraps its own small set of metadata blocks in a dedicated transaction and
// commits it without the fsync barrier path — which is why SplitFS fsync (relink) costs
// 6.85 us on the same hardware.
//
// Three concerns are modeled:
//  * Cost: a commit writes one descriptor block, each distinct dirtied metadata block,
//    and a commit record into the journal region of the PM device, with the fences JBD2
//    issues; the fsync path additionally pays the commit-thread handshake.
//  * Crash atomicity: mutations register undo closures; Crash-then-Recover rolls back
//    everything that never reached its commit record — the running transaction first,
//    then a committing transaction whose writeout was cut short, newest mutation first.
//    Committed state is durable.
//  * Handle concurrency (jbd2's journal_start/journal_stop): a metadata operation
//    brackets itself with a Handle — a shared lock on the transaction barrier. Commit
//    is *pipelined* like real jbd2: it takes the barrier exclusively only for a short
//    seal window that atomically swaps the running transaction into the committing
//    slot and opens a fresh running transaction, then performs the descriptor/
//    metadata/commit-record writeout and the deferred on-commit actions with the
//    barrier released — transaction T_{n+1} accepts handles while T_n writes out.
//    Each transaction carries a tid; fsync commits its tid and waits for its
//    completion (jbd2's log_start_commit + log_wait_commit). Only one transaction
//    writes out at a time (commit_mu_ is the pipeline slot, depth two: one running,
//    one committing).
//
//    Virtual time follows the real waits, not the old writeout-length freeze: commit
//    service time accumulates in a ResourceStamp, and only true waiters fast-forward
//    past it — an fsync whose tid has not completed, a committer queued behind an
//    in-flight writeout, or a handle that raced the seal window. Handles that join
//    the running transaction while a commit writes out (the common pipelined case)
//    pay nothing, which is exactly what shrinks the commit shadow fsync-heavy
//    workloads used to see. Single-timeline (no-lane) runs are bit-identical.
//
// Two production-traffic behaviors layer on the pipeline:
//  * Commit coalescing (jbd2's j_commit_interval): with a nonzero commit interval the
//    committer holds the seal open for a delay window before swapping the running
//    transaction out. Every log_start_commit that arrives during the window targets
//    the still-running transaction — its dirt and its durability wait merge into the
//    one writeout, trading per-fsync latency (the window is charged as commit
//    service time, so tid waiters fast-forward past it) for writeout amortization.
//    Interval 0 (the default) skips the window code entirely: timelines are
//    bit-identical to the plain pipeline. A nearly-full journal forces an immediate
//    seal — delaying a commit the log cannot absorb would only deepen the stall.
//  * Checkpoint writeback (jbd2 checkpointing / Strata log digestion): the journal is
//    a circular log whose space is only reclaimed by writing still-live logged
//    metadata blocks back to their home locations and advancing the tail. A commit
//    that does not fit stalls, pops the oldest logged transactions, writes back each
//    block whose newest logged copy lives there (a later re-log supersedes the old
//    copy — the digest optimization), updates the tail, and only then writes itself.
//    The stall is charged to the committer (media + cpu), attributed in the
//    contention ledger under "journal.checkpoint", and surfaced by the
//    "journal.free_space" / "journal.checkpoint_stall" gauge pair.
#ifndef SRC_EXT4_JOURNAL_H_
#define SRC_EXT4_JOURNAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/lock_witness.h"
#include "src/pmem/device.h"
#include "src/sim/context.h"

namespace common {
class ServicePool;
}

namespace ext4sim {

// Identifies a distinct metadata block for dirty-set dedup within a transaction.
enum class MetaKind : uint64_t {
  kInodeTable = 1,
  kBlockBitmap = 2,
  kExtentTree = 3,
  kDirBlock = 4,
  kGroupDesc = 5,
  kSuperblock = 6,
};

constexpr uint64_t MetaBlockId(MetaKind kind, uint64_t id) {
  return (static_cast<uint64_t>(kind) << 48) | id;
}

class Journal {
 public:
  // The journal occupies device blocks [journal_start, journal_start + journal_blocks).
  // `commit_interval_ns` is the coalescing delay window (0 = seal immediately, the
  // bit-identical pre-coalescing behavior).
  Journal(pmem::Device* dev, uint64_t journal_start_block, uint64_t journal_blocks,
          uint64_t commit_interval_ns = 0);
  ~Journal();

  // RAII jbd2 handle: joins the running transaction. Hold one across every metadata
  // operation (Dirty/OnCommit calls plus the in-memory mutations they cover); never
  // hold one while calling CommitRunning — the seal takes the barrier exclusively
  // and would self-deadlock.
  class Handle {
   public:
    explicit Handle(Journal* j) : j_(j) {
      // Pipelined fast path: the barrier is free during a commit's writeout, so a
      // handle normally joins the running transaction immediately and pays nothing.
      analysis::LockWitness::Kind k = analysis::LockWitness::Kind::kTry;
      if (!j_->handle_mu_.try_lock_shared()) {
        // Racing the seal window: the thread really waits for the swap, behind
        // which sits the commit service time already rendered — a lane-bound
        // virtual timeline must not sit before work the pipeline already did.
        j_->handle_mu_.lock_shared();
        k = analysis::LockWitness::Kind::kBlocking;
        uint64_t w = j_->commit_stamp_.AcquireShared(&j_->ctx_->clock);
        obs::ReportWait(&j_->ctx_->obs, &j_->ctx_->clock, "journal.handle_seal_race", w);
      }
      if (analysis::LockWitness* w = analysis::LockWitness::Global(); w != nullptr) {
        w->Acquire(BarrierSite(), 0, k);
      }
    }
    ~Handle() {
      if (analysis::LockWitness* w = analysis::LockWitness::Global(); w != nullptr) {
        w->Release(BarrierSite(), 0);
      }
      j_->handle_mu_.unlock_shared();
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

   private:
    Journal* j_;
  };

  // Witness site ids for the journal's documented lock order
  // commit_mu_ -> handle_mu_ -> state_mu_ (interned once, process-wide).
  static int PipelineSite() {
    static const int kSite = analysis::LockSite("journal.pipeline");
    return kSite;
  }
  static int BarrierSite() {
    static const int kSite = analysis::LockSite("journal.barrier");
    return kSite;
  }
  static int StateSite() {
    static const int kSite = analysis::LockSite("journal.state");
    return kSite;
  }

  // Marks a metadata block dirty in the running transaction and registers the inverse
  // mutation used if the transaction never commits. Caller holds a Handle.
  void Dirty(uint64_t meta_block_id, std::function<void()> undo);

  // Defers an action (e.g. freeing blocks) until the running transaction commits;
  // discarded if the transaction is rolled back. Mirrors jbd2's deferred-free rule:
  // blocks released by an uncommitted transaction must not be reused before commit.
  // Caller holds a Handle. Actions run after the commit record, with the barrier
  // *released* (the pipeline no longer quiesces the namespace), so every action must
  // take the locks it needs — see Ext4Dax::ReclaimIfOrphan for the pattern.
  void OnCommit(std::function<void()> action);

  // Number of distinct dirty metadata blocks in the running transaction.
  size_t RunningDirtyBlocks() const;
  // True when the running transaction carries nothing a commit would have to make
  // durable: no dirty block, no undo, and no deferred on-commit action. The same
  // predicate gates CommitRunning's clean-fsync fast path — a transaction holding
  // only a deferred inode free is NOT empty (the free must still reach its commit).
  bool RunningEmpty() const;

  // Tid of the transaction currently accepting handles. Tids are dense and start at
  // 1; transaction t is settled once CommittedTid() >= t — durable, or discarded by
  // crash recovery (a discarded tid can never commit, so waiting on it must not
  // block; recovery advances the horizon past everything it rolled back).
  uint64_t RunningTid() const;
  uint64_t CommittedTid() const {
    return committed_tid_.load(std::memory_order_acquire);
  }
  // jbd2's log_wait_commit: blocks until transaction `tid` has fully committed
  // (commit record written, deferred actions run). A lane-bound waiter fast-forwards
  // past the commit service time rendered while it slept.
  void WaitForCommit(uint64_t tid);

  // Commits the running transaction and waits for its completion. `fsync_barrier`
  // selects the heavyweight path (commit-thread handshake + wait), used by fsync;
  // the timer/background path and the relink ioctl path skip it. Clean fast path:
  // if the running transaction is empty and every prior tid has committed, returns
  // without touching the barrier. If the durability horizon is an in-flight commit,
  // waits on its tid instead of starting a new writeout. Must not be called while
  // holding a Handle.
  //
  // `who`, when set, tags the request for per-caller commit-service attribution: a
  // coalesced writeout measures its own virtual duration and splits it equally
  // across the tags whose requested tids it satisfied (the tenant router passes
  // tenant ids, so cross-tenant commits no longer merge into one anonymous stamp).
  // The merged commit_stamp_ is untouched — attribution is an additional view.
  void CommitRunning(bool fsync_barrier, const char* who = nullptr);

  // Accumulated commit-service time attributed to `who` (gauge basis:
  // tenant.<id>.commit_service_ns). 0 for never-seen tags.
  uint64_t AttributedCommitServiceNs(const std::string& who) const;

  // Commits a self-contained transaction that dirtied `n_meta_blocks` blocks (the
  // standalone relink ioctl shape). The caller guarantees the mutations are
  // consistent as a unit, so no undos are kept. Takes the pipeline slot (commit_mu_)
  // so its journal writes serialize with an in-flight pipelined writeout, but never
  // touches the handle barrier or the running transaction.
  void CommitStandalone(size_t n_meta_blocks);

  // Crash recovery: discard everything that never reached its commit record, newest
  // mutation first — the running transaction's undos, then (if a crash cut a
  // writeout short) the unsealed committing transaction's. Takes the pipeline slot
  // and the barrier exclusively; the caller is the only thread running (recovery is
  // a quiesce point), so undo closures may mutate filesystem state freely.
  void RecoverDiscardRunning();

  // Exclusive journal quiescence for offline inspection (fsck) and orphan replay:
  // excludes every metadata operation AND any in-flight commit writeout while held
  // (the barrier alone no longer implies commit exclusion — the pipeline writes out
  // with the barrier released). Lock order: pipeline slot before barrier, matching
  // the committer.
  struct Quiescence {
    std::unique_lock<std::mutex> pipeline;
    std::unique_lock<std::shared_mutex> barrier;
  };
  Quiescence Quiesce() {
    std::unique_lock<std::mutex> pipeline(commit_mu_);
    // Witness: the pipeline -> barrier edge is recorded (and released) here; the
    // Quiescence holder keeps the real locks, but any ordering violation against
    // this pair manifests at acquisition, which is what the note brackets.
    std::unique_lock<std::shared_mutex> barrier(handle_mu_);
    if (analysis::LockWitness* w = analysis::LockWitness::Global(); w != nullptr) {
      w->Acquire(PipelineSite(), 0, analysis::LockWitness::Kind::kBlocking);
      w->Acquire(BarrierSite(), 0, analysis::LockWitness::Kind::kBlocking);
      w->Release(BarrierSite(), 0);
      w->Release(PipelineSite(), 0);
    }
    return {std::move(pipeline), std::move(barrier)};
  }

  uint64_t commits() const { return commits_.load(std::memory_order_relaxed); }

  // Shared journal-commit service (multi-tenant deployments). With a pool set,
  // CommitRunning no longer performs the writeout on the calling thread: the caller
  // records the tid it needs durable, registers one commit pass with the pool
  // (queued passes dedup — one pass serves every tid requested before it runs), and
  // sleeps in log_wait_commit. The pass runs on a pool worker under its own clock
  // lane, so commit service time still accumulates in the commit stamp and waiters
  // still fast-forward past it — the virtual-time cost of a commit is unchanged;
  // only which thread renders it moves. Null (the default) keeps the caller-commits
  // behavior bit-identical. Swapping to null drains in-flight passes first. Must
  // not be called concurrently with commits (mount/unmount points only).
  void SetServicePool(common::ServicePool* pool);

  // Journal bytes not occupied by logged-but-not-yet-checkpointed transactions.
  // Monotone within a commit; replenished by checkpoint writeback.
  uint64_t FreeLogBytes() const {
    uint64_t used = log_used_bytes_.load(std::memory_order_acquire);
    return used >= journal_bytes_ ? 0 : journal_bytes_ - used;
  }
  // Commits that stalled for checkpoint writeback before they could write.
  uint64_t CheckpointStalls() const {
    return checkpoint_stalls_.load(std::memory_order_relaxed);
  }

  // Test-only: invoked by the committer after the seal (fresh running transaction
  // live, barrier released) and before the writeout's journal stores. Lets tests
  // populate T_{n+1} or arm a crash injector exactly inside the pipeline window.
  void SetMidWriteoutHookForTest(std::function<void()> hook) {
    mid_writeout_hook_ = std::move(hook);
  }
  // Test-only: invoked inside the coalescing delay window — after the committer
  // claimed the pipeline slot for `target`, before the window charge and the seal.
  // The running transaction is still accepting handles, so the hook can stack
  // mutations that merge into the delayed writeout, or arm a crash injector.
  void SetCommitWindowHookForTest(std::function<void()> hook) {
    commit_window_hook_ = std::move(hook);
  }
  // Test-only: invoked when a commit stalls for checkpoint writeback, before the
  // writeback stores. Lets crash tests arm an injector mid-checkpoint.
  void SetCheckpointHookForTest(std::function<void()> hook) {
    checkpoint_hook_ = std::move(hook);
  }
  // Test-only mutation hook (analysis self-tests): revert ChargeCommitIo to the
  // pre-fix order — commit record stored together with its payload, both fences
  // after — so the PersistChecker's strict publish-before-persist rule and the
  // empty-fence lint both fire.
  void set_legacy_commit_order_for_test(bool v) { legacy_commit_order_for_test_ = v; }

 private:
  // One jbd2 transaction: the dirty-block set for commit IO sizing, the undo stack
  // for rollback, and actions deferred to commit.
  struct Transaction {
    uint64_t tid = 0;
    std::set<uint64_t> dirty;
    std::vector<std::function<void()>> undo;
    std::vector<std::function<void()>> on_commit;
    bool Empty() const { return dirty.empty() && undo.empty() && on_commit.empty(); }
  };

  // One logged-but-not-checkpointed transaction: how much journal space it pins and
  // which metadata blocks its log copies cover (for writeback dedup). Standalone
  // commits log `anon_blocks` with no id; those are always written back.
  struct LoggedTx {
    uint64_t blocks = 0;
    std::vector<uint64_t> ids;
    uint64_t anon_blocks = 0;
  };

  // Writes the descriptor/metadata/commit-record blocks for one transaction into the
  // journal region, reserving space first (checkpointing if the log is full) and
  // retiring the transaction into the checkpoint queue after. `dirty_ids` may be
  // null (standalone commit: `n_anon_blocks` anonymous metadata blocks). Caller
  // holds commit_mu_.
  void ChargeCommitIo(const std::set<uint64_t>* dirty_ids, size_t n_anon_blocks);
  // Checkpoint writeback: pops oldest logged transactions and writes back every
  // block whose newest logged copy they hold until `needed_bytes` (plus slack) fit.
  // Caller holds commit_mu_.
  void EnsureLogSpaceLocked(uint64_t needed_bytes);
  // True when the log cannot absorb roughly two more transactions the size of the
  // running one — the coalescing window must not delay a commit the log is about to
  // stall on. Caller holds commit_mu_.
  bool LogNearFullLocked() const;
  // Seals the running transaction (short exclusive barrier swap), writes it out with
  // the barrier released, runs deferred actions, publishes the tid. Caller must NOT
  // hold commit_mu_ — this takes it.
  void CommitTid(uint64_t target, bool fsync_barrier);
  // One shared-pool pass: commits until every requested tid is durable.
  void ServiceCommitPass();
  // Records that `who` needs `tid` durable (attribution bookkeeping).
  void NoteCommitRequest(const char* who, uint64_t tid);
  // Splits `dt` of commit service equally across every tag whose pending request
  // `target` satisfies, crediting each tag's stamp and retiring the requests.
  void AttributeCommitService(uint64_t target, uint64_t dt);

  pmem::Device* dev_;
  sim::Context* ctx_;
  uint64_t journal_start_;  // Byte offset of journal region on the device.
  uint64_t journal_bytes_;
  uint64_t commit_interval_ns_ = 0;  // Coalescing delay window; 0 = off.
  uint64_t write_cursor_ = 0;  // Circular position; guarded by commit_mu_.

  // Checkpoint model, guarded by commit_mu_ (mutations happen only inside a commit).
  // log_used_bytes_ is additionally atomic so the free-space gauge can read it
  // without taking the pipeline slot mid-writeout.
  std::deque<LoggedTx> checkpoint_queue_;
  std::unordered_map<uint64_t, uint32_t> live_logged_;  // id -> logged copies in queue.
  std::atomic<uint64_t> log_used_bytes_{0};
  std::atomic<uint64_t> checkpoint_stalls_{0};
  std::atomic<uint64_t> checkpoint_writeback_blocks_{0};
  std::atomic<uint64_t> coalesced_windows_{0};

  // handle_mu_ is the transaction barrier: shared = operation handle, exclusive =
  // the commit seal window / recovery / fsck. commit_mu_ is the pipeline slot: held
  // for a whole writeout, so at most one transaction commits at a time while the
  // next accepts handles. state_mu_ guards the running transaction's in-memory sets
  // (operations on different inodes append concurrently) plus the committing slot's
  // identity. Lock order: commit_mu_ -> handle_mu_ -> state_mu_.
  mutable std::shared_mutex handle_mu_;
  mutable std::mutex commit_mu_;
  mutable std::mutex state_mu_;
  mutable sim::ResourceStamp commit_stamp_;

  // Guarded by state_mu_. committing_ keeps its undo stack until the commit record
  // is durable so a crash that unwinds mid-writeout still has everything recovery
  // needs to roll back.
  std::unique_ptr<Transaction> running_;
  std::unique_ptr<Transaction> committing_;
  uint64_t committing_tid_ = 0;  // 0 = no writeout in flight.
  uint64_t next_tid_ = 1;

  std::atomic<uint64_t> committed_tid_{0};
  std::mutex wait_mu_;  // log_wait_commit sleepers.
  std::condition_variable commit_cv_;

  std::function<void()> mid_writeout_hook_;    // Test-only; see setter.
  std::function<void()> commit_window_hook_;   // Test-only; see setter.
  std::function<void()> checkpoint_hook_;      // Test-only; see setter.
  bool legacy_commit_order_for_test_ = false;  // Test-only; see setter.
  std::atomic<uint64_t> commits_{0};

  // Shared commit service (SetServicePool). requested_tid_ is the newest tid any
  // caller has asked the service to make durable; a pass loops until the committed
  // horizon covers it, so a request recorded while a pass runs is never lost.
  common::ServicePool* service_pool_ = nullptr;
  std::atomic<uint64_t> requested_tid_{0};

  // Per-tag commit-service attribution (see CommitRunning). pending_attr_ maps a
  // tag to the newest tid it asked for; a completing commit collects every tag its
  // target covers and credits each an equal share of the measured service duration.
  // Stamps live in a node-based map because ResourceStamp is unmovable.
  mutable std::mutex attr_mu_;
  std::map<std::string, uint64_t> pending_attr_;
  std::map<std::string, sim::ResourceStamp> attr_stamps_;
};

}  // namespace ext4sim

#endif  // SRC_EXT4_JOURNAL_H_
