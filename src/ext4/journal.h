// JBD2-style metadata journal model.
//
// ext4 keeps one *running transaction* that every metadata-dirtying operation joins;
// fsync() forces a commit of the whole running transaction (this is why ext4 fsync is
// expensive, Table 6: 28.98 us). The modified EXT4_IOC_MOVE_EXT ioctl that implements
// relink wraps its own small set of metadata blocks in a dedicated transaction and
// commits it without the fsync barrier path — which is why SplitFS fsync (relink) costs
// 6.85 us on the same hardware.
//
// Two concerns are modeled:
//  * Cost: a commit writes one descriptor block, each distinct dirtied metadata block,
//    and a commit record into the journal region of the PM device, with the fences JBD2
//    issues; the fsync path additionally pays the commit-thread handshake.
//  * Crash atomicity: mutations register undo closures; Crash-then-Recover rolls back
//    everything in the running (uncommitted) transaction. Committed state is durable.
#ifndef SRC_EXT4_JOURNAL_H_
#define SRC_EXT4_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "src/pmem/device.h"
#include "src/sim/context.h"

namespace ext4sim {

// Identifies a distinct metadata block for dirty-set dedup within a transaction.
enum class MetaKind : uint64_t {
  kInodeTable = 1,
  kBlockBitmap = 2,
  kExtentTree = 3,
  kDirBlock = 4,
  kGroupDesc = 5,
  kSuperblock = 6,
};

constexpr uint64_t MetaBlockId(MetaKind kind, uint64_t id) {
  return (static_cast<uint64_t>(kind) << 48) | id;
}

class Journal {
 public:
  // The journal occupies device blocks [journal_start, journal_start + journal_blocks).
  Journal(pmem::Device* dev, uint64_t journal_start_block, uint64_t journal_blocks);

  // Marks a metadata block dirty in the running transaction and registers the inverse
  // mutation used if the transaction never commits.
  void Dirty(uint64_t meta_block_id, std::function<void()> undo);

  // Defers an action (e.g. freeing blocks) until the running transaction commits;
  // discarded if the transaction is rolled back. Mirrors jbd2's deferred-free rule:
  // blocks released by an uncommitted transaction must not be reused before commit.
  void OnCommit(std::function<void()> action) { running_on_commit_.push_back(std::move(action)); }

  // Number of distinct dirty metadata blocks in the running transaction.
  size_t RunningDirtyBlocks() const { return running_dirty_.size(); }
  bool RunningEmpty() const { return running_dirty_.empty() && running_undo_.empty(); }

  // Commits the running transaction. `fsync_barrier` selects the heavyweight path
  // (commit-thread handshake + wait), used by fsync; the timer/background path and the
  // relink ioctl path skip it.
  void CommitRunning(bool fsync_barrier);

  // Commits a self-contained transaction that dirtied `n_meta_blocks` blocks (relink).
  // The caller guarantees the mutations are consistent as a unit, so no undos are kept.
  void CommitStandalone(size_t n_meta_blocks);

  // Crash recovery: roll back the running transaction's mutations (newest first).
  void RecoverDiscardRunning();

  uint64_t commits() const { return commits_; }

 private:
  void ChargeCommitIo(size_t n_meta_blocks);

  pmem::Device* dev_;
  sim::Context* ctx_;
  uint64_t journal_start_;  // Byte offset of journal region on the device.
  uint64_t journal_bytes_;
  uint64_t write_cursor_ = 0;  // Circular position within the journal region.

  std::set<uint64_t> running_dirty_;
  std::vector<std::function<void()>> running_undo_;
  std::vector<std::function<void()>> running_on_commit_;
  uint64_t commits_ = 0;
};

}  // namespace ext4sim

#endif  // SRC_EXT4_JOURNAL_H_
