// JBD2-style metadata journal model.
//
// ext4 keeps one *running transaction* that every metadata-dirtying operation joins;
// fsync() forces a commit of the whole running transaction (this is why ext4 fsync is
// expensive, Table 6: 28.98 us). The modified EXT4_IOC_MOVE_EXT ioctl that implements
// relink wraps its own small set of metadata blocks in a dedicated transaction and
// commits it without the fsync barrier path — which is why SplitFS fsync (relink) costs
// 6.85 us on the same hardware.
//
// Three concerns are modeled:
//  * Cost: a commit writes one descriptor block, each distinct dirtied metadata block,
//    and a commit record into the journal region of the PM device, with the fences JBD2
//    issues; the fsync path additionally pays the commit-thread handshake.
//  * Crash atomicity: mutations register undo closures; Crash-then-Recover rolls back
//    everything in the running (uncommitted) transaction. Committed state is durable.
//  * Handle concurrency (jbd2's journal_start/journal_stop): a metadata operation
//    brackets itself with a Handle — a shared lock on the transaction barrier — while
//    a commit takes the barrier exclusively. A commit therefore waits for in-flight
//    operations to finish and blocks new ones from starting, so it never captures half
//    an operation's dirty set; and while the barrier is held exclusively the namespace
//    is quiescent, which is what lets deferred commit actions (orphan reclamation)
//    inspect inode state safely. Commit service time accumulates in a ResourceStamp:
//    handle acquisition fast-forwards a lane-bound thread past the commit work it
//    would really have waited for, making jbd2 the honest scalability ceiling.
#ifndef SRC_EXT4_JOURNAL_H_
#define SRC_EXT4_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <vector>

#include "src/pmem/device.h"
#include "src/sim/context.h"

namespace ext4sim {

// Identifies a distinct metadata block for dirty-set dedup within a transaction.
enum class MetaKind : uint64_t {
  kInodeTable = 1,
  kBlockBitmap = 2,
  kExtentTree = 3,
  kDirBlock = 4,
  kGroupDesc = 5,
  kSuperblock = 6,
};

constexpr uint64_t MetaBlockId(MetaKind kind, uint64_t id) {
  return (static_cast<uint64_t>(kind) << 48) | id;
}

class Journal {
 public:
  // The journal occupies device blocks [journal_start, journal_start + journal_blocks).
  Journal(pmem::Device* dev, uint64_t journal_start_block, uint64_t journal_blocks);

  // RAII jbd2 handle: joins the running transaction. Hold one across every metadata
  // operation (Dirty/OnCommit calls plus the in-memory mutations they cover); never
  // hold one while calling CommitRunning — commit takes the barrier exclusively and
  // would self-deadlock.
  class Handle {
   public:
    explicit Handle(Journal* j) : j_(j) {
      j_->handle_mu_.lock_shared();
      // A real thread that had to wait for a commit resumes after it; a lane-bound
      // virtual timeline must not sit before the commit work already rendered.
      j_->commit_stamp_.AcquireShared(&j_->ctx_->clock);
    }
    ~Handle() { j_->handle_mu_.unlock_shared(); }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

   private:
    Journal* j_;
  };

  // Marks a metadata block dirty in the running transaction and registers the inverse
  // mutation used if the transaction never commits. Caller holds a Handle.
  void Dirty(uint64_t meta_block_id, std::function<void()> undo);

  // Defers an action (e.g. freeing blocks) until the running transaction commits;
  // discarded if the transaction is rolled back. Mirrors jbd2's deferred-free rule:
  // blocks released by an uncommitted transaction must not be reused before commit.
  // Caller holds a Handle; the action runs with the barrier held exclusively.
  void OnCommit(std::function<void()> action);

  // Number of distinct dirty metadata blocks in the running transaction.
  size_t RunningDirtyBlocks() const;
  bool RunningEmpty() const;

  // Commits the running transaction. `fsync_barrier` selects the heavyweight path
  // (commit-thread handshake + wait), used by fsync; the timer/background path and the
  // relink ioctl path skip it. Must not be called while holding a Handle.
  void CommitRunning(bool fsync_barrier);

  // Commits a self-contained transaction that dirtied `n_meta_blocks` blocks (relink).
  // The caller guarantees the mutations are consistent as a unit, so no undos are kept.
  void CommitStandalone(size_t n_meta_blocks);

  // Crash recovery: roll back the running transaction's mutations (newest first).
  // Takes the barrier exclusively; the caller is the only thread running (recovery
  // is a quiesce point), so undo closures may mutate filesystem state freely.
  void RecoverDiscardRunning();

  // Exclusive barrier for offline inspection (fsck): excludes every metadata
  // operation and commit while held, so inode/namespace state can be read unlocked.
  std::unique_lock<std::shared_mutex> Quiesce() {
    return std::unique_lock<std::shared_mutex>(handle_mu_);
  }

  uint64_t commits() const { return commits_.load(std::memory_order_relaxed); }

 private:
  void ChargeCommitIo(size_t n_meta_blocks);

  pmem::Device* dev_;
  sim::Context* ctx_;
  uint64_t journal_start_;  // Byte offset of journal region on the device.
  uint64_t journal_bytes_;
  uint64_t write_cursor_ = 0;  // Circular position; guarded by state_mu_.

  // handle_mu_ is the transaction barrier (shared = operation handle, exclusive =
  // commit/recovery/fsck); state_mu_ guards the running transaction's in-memory
  // sets, which operations on different inodes append to concurrently.
  mutable std::shared_mutex handle_mu_;
  mutable std::mutex state_mu_;
  mutable sim::ResourceStamp commit_stamp_;

  std::set<uint64_t> running_dirty_;
  std::vector<std::function<void()>> running_undo_;
  std::vector<std::function<void()>> running_on_commit_;
  std::atomic<uint64_t> commits_{0};
};

}  // namespace ext4sim

#endif  // SRC_EXT4_JOURNAL_H_
