// Mergeable log-bucketed latency histogram (virtual nanoseconds).
//
// One histogram records the latency distribution of one (operation x mode) stream:
// power-of-two buckets over ns, so sixty-four counters cover 1 ns .. ~584 years with
// <= 2x relative quantile error, constant memory, and O(1) recording. Recording is a
// pair of relaxed atomic increments — safe from any number of writer threads, cheap
// enough for the hot path, and free of any simulated-clock effect (observability never
// advances virtual time).
//
// Histograms MERGE: per-worker (or per-cell) histograms fold into an aggregate by
// adding bucket counts, which is exact — merging is associative and commutative, a
// property the obs tests pin down. Percentile queries return the inclusive upper bound
// of the bucket containing the requested rank, clamped to the exact recorded maximum,
// so p100 is exact and every reported quantile is a valid upper bound.
#ifndef SRC_OBS_HISTOGRAM_H_
#define SRC_OBS_HISTOGRAM_H_

#include <atomic>
#include <bit>
#include <cstdint>

namespace obs {

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  LatencyHistogram() = default;
  // Copy = relaxed snapshot of the counters (lets result structs carry histograms by
  // value). Not a consistent cut under concurrent writers; callers copy after joins.
  LatencyHistogram(const LatencyHistogram& other) { CopyFrom(other); }
  LatencyHistogram& operator=(const LatencyHistogram& other) {
    if (this != &other) {
      CopyFrom(other);
    }
    return *this;
  }

  // Bucket i holds values whose bit width is i: bucket 0 = {0}, bucket 1 = {1},
  // bucket 2 = [2,3], bucket 3 = [4,7], ..., bucket 63 = [2^62, 2^63).
  static int BucketOf(uint64_t v) {
    int b = std::bit_width(v);  // 0 for v == 0.
    return b < kBuckets ? b : kBuckets - 1;
  }
  // Inclusive upper bound of bucket `b` (the value a percentile query reports).
  static uint64_t BucketUpperBound(int b) {
    if (b <= 0) {
      return 0;
    }
    if (b >= kBuckets - 1) {
      return UINT64_MAX;
    }
    return (uint64_t{1} << b) - 1;
  }

  void Record(uint64_t ns) {
    counts_[BucketOf(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ns, std::memory_order_relaxed);
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (cur < ns && !max_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
    }
  }

  // Folds `other` into this histogram (exact: bucket counts add).
  void MergeFrom(const LatencyHistogram& other) {
    for (int i = 0; i < kBuckets; ++i) {
      uint64_t n = other.counts_[i].load(std::memory_order_acquire);
      if (n != 0) {
        counts_[i].fetch_add(n, std::memory_order_relaxed);
      }
    }
    sum_.fetch_add(other.sum_.load(std::memory_order_acquire), std::memory_order_relaxed);
    uint64_t om = other.max_.load(std::memory_order_acquire);
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (cur < om && !max_.compare_exchange_weak(cur, om, std::memory_order_relaxed)) {
    }
  }

  uint64_t Count() const {
    uint64_t total = 0;
    for (const auto& c : counts_) {
      total += c.load(std::memory_order_acquire);
    }
    return total;
  }
  uint64_t Sum() const { return sum_.load(std::memory_order_acquire); }
  uint64_t Max() const { return max_.load(std::memory_order_acquire); }
  uint64_t BucketCount(int b) const { return counts_[b].load(std::memory_order_acquire); }

  // Value at quantile `p` in [0, 1]: the upper bound of the bucket holding the
  // ceil(p * count)-th smallest sample, clamped to the exact recorded maximum.
  // Returns 0 on an empty histogram.
  uint64_t Percentile(double p) const {
    uint64_t total = Count();
    if (total == 0) {
      return 0;
    }
    if (p < 0) {
      p = 0;
    }
    if (p > 1) {
      p = 1;
    }
    uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
    if (rank < 1) {
      rank = 1;
    }
    if (rank > total) {
      rank = total;
    }
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts_[i].load(std::memory_order_acquire);
      if (seen >= rank) {
        uint64_t bound = BucketUpperBound(i);
        uint64_t max = Max();
        return bound < max ? bound : max;
      }
    }
    return Max();
  }

  double MeanNs() const {
    uint64_t n = Count();
    return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
  }

  void Reset() {
    for (auto& c : counts_) {
      c.store(0, std::memory_order_relaxed);
    }
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void CopyFrom(const LatencyHistogram& other) {
    for (int i = 0; i < kBuckets; ++i) {
      counts_[i].store(other.counts_[i].load(std::memory_order_acquire),
                       std::memory_order_relaxed);
    }
    sum_.store(other.sum_.load(std::memory_order_acquire), std::memory_order_relaxed);
    max_.store(other.max_.load(std::memory_order_acquire), std::memory_order_relaxed);
  }

  std::atomic<uint64_t> counts_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace obs

#endif  // SRC_OBS_HISTOGRAM_H_
