#include "src/obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace obs {

namespace {

// Tracer identities for the thread-local ring cache. A thread that outlives one
// testbed and records into the next must not reuse a stale ring pointer; comparing a
// monotonically-assigned id (never a recycled address) makes the cache safe.
std::atomic<uint64_t> g_next_tracer_id{1};

struct TlsRingCache {
  uint64_t tracer_id = 0;
  void* ring = nullptr;
};
thread_local TlsRingCache tls_ring_cache;

}  // namespace

Tracer::Tracer() : tracer_id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

void Tracer::Enable(size_t ring_capacity) {
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    ring_capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (auto& ring : rings_) {
    ring->size.store(0, std::memory_order_relaxed);
    ring->drops.store(0, std::memory_order_relaxed);
  }
}

Tracer::Ring* Tracer::RingOfThisThread() {
  if (tls_ring_cache.tracer_id == tracer_id_) {
    return static_cast<Ring*>(tls_ring_cache.ring);
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  rings_.push_back(
      std::make_unique<Ring>(static_cast<uint32_t>(rings_.size()), ring_capacity_));
  Ring* ring = rings_.back().get();
  tls_ring_cache = {tracer_id_, ring};
  return ring;
}

bool Tracer::Record(const SpanRecord& span) {
  Ring* ring = RingOfThisThread();
  size_t n = ring->size.load(std::memory_order_relaxed);
  if (n >= ring->slots.size()) {
    ring->drops.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  ring->slots[n] = span;
  ring->slots[n].tid = ring->tid;
  ring->size.store(n + 1, std::memory_order_release);
  return true;
}

uint32_t Tracer::EnterDepth() { return RingOfThisThread()->depth++; }

void Tracer::ExitDepth() {
  Ring* ring = RingOfThisThread();
  if (ring->depth > 0) {
    --ring->depth;
  }
}

uint32_t Tracer::CurrentDepthForTest() { return RingOfThisThread()->depth; }

uint64_t Tracer::SpanCount() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->size.load(std::memory_order_acquire);
  }
  return total;
}

uint64_t Tracer::Drops() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->drops.load(std::memory_order_acquire);
  }
  return total;
}

void Tracer::ForEachSpan(const std::function<void(const SpanRecord&)>& fn) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& ring : rings_) {
    size_t n = ring->size.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) {
      fn(ring->slots[i]);
    }
  }
}

uint64_t Tracer::TopLevelSpanNs() const {
  uint64_t total = 0;
  ForEachSpan([&total](const SpanRecord& s) {
    if (s.depth == 0 && s.end_ns > s.start_ns) {
      total += s.end_ns - s.start_ns;
    }
  });
  return total;
}

uint64_t Tracer::MediaNs() const {
  uint64_t total = 0;
  ForEachSpan([&total](const SpanRecord& s) { total += s.media_ns; });
  return total;
}

bool Tracer::ExportChromeTrace(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  // Chrome trace-event format: "X" complete events, ts/dur in microseconds. Virtual
  // nanoseconds are emitted with three decimals, so nothing is lost to the unit.
  std::fprintf(f, "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n");
  bool first = true;
  ForEachSpan([f, &first](const SpanRecord& s) {
    uint64_t dur = s.end_ns > s.start_ns ? s.end_ns - s.start_ns : 0;
    std::fprintf(f,
                 "%s{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                 "\"ts\": %" PRIu64 ".%03" PRIu64 ", \"dur\": %" PRIu64 ".%03" PRIu64
                 ", \"pid\": 1, \"tid\": %u, \"args\": {\"depth\": %u",
                 first ? "" : ",\n", s.name, s.category, s.start_ns / 1000,
                 s.start_ns % 1000, dur / 1000, dur % 1000, s.tid, s.depth);
    if (s.arg_name != nullptr) {
      std::fprintf(f, ", \"%s\": %" PRIu64, s.arg_name, s.arg);
    }
    if (s.media_ns != 0) {
      std::fprintf(f, ", \"media_ns\": %" PRIu64, s.media_ns);
    }
    std::fprintf(f, "}}");
    first = false;
  });
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return true;
}

}  // namespace obs
