// Aggregate observability state of one simulated machine.
//
// One Observability instance rides inside sim::Context, so every layer that can
// charge time can also report where the time went: the span tracer (virtual-time
// trace, off unless enabled), the pull-model metrics registry (always registered,
// evaluated only when dumped), and the contention ledger (always on — it records only
// when a lane actually fast-forwarded, i.e. on real contention).
//
// Nothing in this directory ever advances, rewinds, or fast-forwards the simulated
// clock. That is the load-bearing invariant behind the "tracing off => bit-identical
// timelines" acceptance bar — and it holds with tracing *on* too, which is why the
// benches can emit latency percentiles without perturbing their throughput cells.
#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#include "src/obs/contention.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace obs {

struct Observability {
  Tracer tracer;
  MetricsRegistry metrics;
  ContentionLedger ledger;

  // Clears measurement state (recorded spans, wait totals, counter values) without
  // tearing down registrations; invoked by sim::Context::Reset so testbed setup does
  // not pollute the measured phase.
  void Reset() {
    tracer.Reset();
    ledger.Reset();
    metrics.ResetCounters();
  }
};

// Reports one contended acquisition: `waited_ns` virtual nanoseconds of fast-forward
// attributed to `resource` in the ledger, plus — when the tracer is recording — a
// retroactive wait span [now - waited, now] on the waiting thread's own track (the
// "who waited" half of the attribution). No-op when nothing was waited, so call
// sites report unconditionally.
inline void ReportWait(Observability* obs, sim::Clock* clock, const char* resource,
                       uint64_t waited_ns) {
  if (waited_ns == 0) {
    return;
  }
  obs->ledger.RecordWait(resource, waited_ns);
  if (obs->tracer.enabled() && !sim::Clock::OffClock()) {
    SpanRecord span;
    span.name = resource;
    span.category = "wait";
    uint64_t now = clock->Now();
    span.end_ns = now;
    span.start_ns = now - waited_ns;
    // The wait ended at the current nesting level; balance is untouched.
    span.depth = obs->tracer.EnterDepth();
    obs->tracer.ExitDepth();
    obs->tracer.Record(span);
  }
}

}  // namespace obs

#endif  // SRC_OBS_OBS_H_
