#include "src/obs/metrics.h"

namespace obs {

Counter* MetricsRegistry::RegisterCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) {
    return it->second;
  }
  counter_storage_.emplace_back();
  Counter* c = &counter_storage_.back();
  counters_.emplace(name, c);
  return c;
}

void MetricsRegistry::RegisterGauge(const std::string& name, GaugeFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = std::move(fn);
}

void MetricsRegistry::DeregisterGauges(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = gauges_.lower_bound(prefix); it != gauges_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    it = gauges_.erase(it);
  }
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back({name, counter->Value(), /*is_counter=*/true});
  }
  for (const auto& [name, fn] : gauges_) {
    out.push_back({name, fn(), /*is_counter=*/false});
  }
  return out;
}

void MetricsRegistry::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : counter_storage_) {
    c.Reset();
  }
}

}  // namespace obs
