// Contention ledger: attributes every virtual-time fast-forward to its resource.
//
// sim::ResourceStamp is the single mechanism by which waiting appears in virtual
// time — an acquirer's lane fast-forwards past the busy time of the serial resource
// it queued behind (the journal pipeline, a contended file range, an inode lock, the
// staging slow path). The stamp answers *how much* a lane jumped, but not *on what*;
// this ledger adds the attribution: each acquisition site reports the fast-forward it
// consumed under a resource name ("journal.tid_wait", "splitfs.range_lock",
// "ext4.inode_lock", ...), and the ledger keeps per-resource totals — waits, summed
// waited ns, and the worst single wait.
//
// Recording happens only when a wait actually moved a lane (waited_ns > 0), which in
// the busy-time model means real cross-thread contention — a rare event by
// construction — so a mutex-guarded map is cheap enough and trivially TSan-clean.
// Like all of src/obs, the ledger only observes: it never touches the clock, so
// timelines are identical with or without it.
//
// "Who waited" lives in the trace: when a Tracer is enabled, acquisition sites also
// record a wait span on the waiting thread's own track, carrying the resource name.
#ifndef SRC_OBS_CONTENTION_H_
#define SRC_OBS_CONTENTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace obs {

class ContentionLedger {
 public:
  struct Entry {
    uint64_t waits = 0;
    uint64_t waited_ns = 0;
    uint64_t max_wait_ns = 0;
  };

  ContentionLedger() = default;
  ContentionLedger(const ContentionLedger&) = delete;
  ContentionLedger& operator=(const ContentionLedger&) = delete;

  // Attributes one fast-forward of `ns` virtual nanoseconds to `resource` (a string
  // literal naming the serial resource waited on). No-op for ns == 0, so call sites
  // can report unconditionally.
  void RecordWait(const char* resource, uint64_t ns) {
    if (ns == 0) {
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    Entry& e = entries_[resource];
    e.waits += 1;
    e.waited_ns += ns;
    if (ns > e.max_wait_ns) {
      e.max_wait_ns = ns;
    }
  }

  // Sorted-by-name copy of the per-resource totals (one consistent cut).
  std::vector<std::pair<std::string, Entry>> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return {entries_.begin(), entries_.end()};
  }

  uint64_t TotalWaitedNs() const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const auto& [name, e] : entries_) {
      total += e.waited_ns;
    }
    return total;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace obs

#endif  // SRC_OBS_CONTENTION_H_
