// Pull-model metrics registry: named counters and gauges.
//
// Subsystems register what they can report; nothing is pushed. A *counter* is a
// monotonically increasing atomic owned by the registry (stable address, relaxed
// increments on the hot path). A *gauge* is a callback evaluated at snapshot time —
// journal pipeline depth, publisher queue depth, staging-pool occupancy, epoch
// retire-list length, oplog fill — so the instantaneous value is read from the owning
// structure under that structure's own synchronization.
//
// Snapshot discipline (the DumpMetrics race fix): every dump takes the registry lock
// and evaluates each gauge exactly once into one vector — one atomic cut per dump,
// never a value re-read mid-formatting. Gauge callbacks must themselves read shared
// state with acquire loads (or under the owning lock); the registry's contract is that
// it never caches or re-reads a gauge within a dump, so a torn pair of reads of a
// mutating value cannot appear in one snapshot. The obs test suite runs concurrent
// dumps against mutating gauges under TSan to keep this honest.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace obs {

// Registry-owned monotonic counter. Stable address for the lifetime of the registry.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_acquire); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class MetricsRegistry {
 public:
  using GaugeFn = std::function<uint64_t()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returns the counter registered under `name`, creating it on first use (so two
  // subsystems naming the same counter share it, and re-registration is idempotent).
  Counter* RegisterCounter(const std::string& name);

  // Registers (or replaces) the gauge `name`. The callback is evaluated only inside
  // Snapshot(), under the registry lock; it must read its sources with acquire loads
  // or the owning structure's lock, and must not call back into the registry.
  void RegisterGauge(const std::string& name, GaugeFn fn);
  // Removes gauges whose name starts with `prefix` (owners deregister on teardown so
  // a later dump cannot call into a destroyed structure).
  void DeregisterGauges(const std::string& prefix);

  struct Sample {
    std::string name;
    uint64_t value = 0;
    bool is_counter = false;
  };
  // One atomic cut: every gauge evaluated exactly once, every counter loaded once,
  // under the registry lock; sorted by name (the map order) for stable output.
  std::vector<Sample> Snapshot() const;

  // Zeroes all counters (gauges are live views and have nothing to reset). Benches
  // call this via sim::Context::Reset after testbed setup.
  void ResetCounters();

 private:
  mutable std::mutex mu_;
  // Counters live in a deque: stable addresses across growth.
  std::deque<Counter> counter_storage_;
  std::map<std::string, Counter*> counters_;
  std::map<std::string, GaugeFn> gauges_;
};

}  // namespace obs

#endif  // SRC_OBS_METRICS_H_
