// Span tracer keyed to the simulated clock.
//
// Records enter/exit spans (operation, subsystem phase, lock wait) with *virtual*
// nanosecond timestamps, so a whole run opens in a trace viewer on the same timeline
// the benches report. Design constraints, in order:
//
//  1. Zero effect on virtual time. The tracer only ever reads sim::Clock::Now(); it
//     never advances, rewinds, or fast-forwards. Timelines with tracing on are
//     bit-identical to timelines with tracing off.
//  2. Near-zero cost when disabled: one relaxed atomic load per ScopedSpan.
//  3. Lock-free recording when enabled: each thread owns a private ring of completed
//     spans — the owning thread is the only writer; a span is published by a release
//     store of the ring size, and the exporter (which runs after workers join, or at
//     quiescence) reads it back with an acquire load. No shared cache line is written
//     on the recording path. When a ring fills, further spans are dropped and counted
//     (never silently).
//
// A span is recorded at *exit* as one complete record (start, end, depth), which makes
// ring contents trivially well-formed: nesting balance is enforced by RAII, and the
// exporter never needs to pair begin/end events. Work bracketed by sim::ScopedOffClock
// (inline background work whose charge is rewound) is not recorded — its virtual
// interval is retracted from the timeline, so a span over it would overlap its
// successors and double-count rewound time in the reconciliation identity.
//
// The exporter writes Chrome trace-event JSON ("X" complete events, microsecond
// timestamps), which Perfetto and chrome://tracing load directly; each thread's lane
// appears as its own track of the virtual timeline.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/sim/clock.h"

namespace obs {

// One completed span. Name/category are string literals (never owned).
struct SpanRecord {
  const char* name = nullptr;
  const char* category = nullptr;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint32_t tid = 0;    // Tracer-local thread index (ring identity).
  uint32_t depth = 0;  // Nesting depth at entry; 0 = top-level.
  // Optional argument (file ino, tid waited on, ...). arg_name == nullptr when unset.
  const char* arg_name = nullptr;
  uint64_t arg = 0;
  // PM media time charged inside this span (top-level op spans only; 0 elsewhere).
  // Lets the exporter and the reconciliation identity split span time into software
  // self-time + media time, the paper's §5.7 decomposition.
  uint64_t media_ns = 0;
};

class Tracer {
 public:
  Tracer();
  ~Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Turns recording on. `ring_capacity` is the per-thread span budget; a full ring
  // drops (and counts) further spans rather than growing or overwriting.
  void Enable(size_t ring_capacity = 1 << 16);
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Drops all recorded spans and drop counts (benches reset after testbed setup so
  // the exported trace covers only the measured phase). Recording threads must be
  // quiescent (same contract as Export).
  void Reset();

  // Recording-side API (used by ScopedSpan; also directly by instrumentation that
  // records a fully-formed wait span). Returns false if the span was dropped.
  bool Record(const SpanRecord& span);
  // Per-thread nesting depth bookkeeping for ScopedSpan.
  uint32_t EnterDepth();
  void ExitDepth();
  uint32_t CurrentDepthForTest();
  uint32_t ThreadIdForTest() { return RingOfThisThread()->tid; }

  // --- Export / inspection (call after recording threads have joined) ---------------
  uint64_t SpanCount() const;
  uint64_t Drops() const;
  // Visits every recorded span (ring order per thread; threads in registration order).
  void ForEachSpan(const std::function<void(const SpanRecord&)>& fn) const;
  // Writes Chrome trace-event JSON loadable by Perfetto / chrome://tracing.
  // Returns false if the file cannot be written.
  bool ExportChromeTrace(const std::string& path) const;

  // Sum of top-level (depth 0) span durations, per the reconciliation identity
  // Σ top-level span time ≈ clock.Now() (single-timeline runs; see README).
  uint64_t TopLevelSpanNs() const;
  // Sum of media_ns across all spans.
  uint64_t MediaNs() const;

 private:
  struct Ring {
    explicit Ring(uint32_t tid_in, size_t capacity) : tid(tid_in), slots(capacity) {}
    const uint32_t tid;
    std::vector<SpanRecord> slots;
    // Owner thread stores slots then publishes with a release store of size; the
    // exporter acquires size and reads the prefix.
    std::atomic<size_t> size{0};
    std::atomic<uint64_t> drops{0};
    uint32_t depth = 0;  // Owner-thread only.
  };

  Ring* RingOfThisThread();

  std::atomic<bool> enabled_{false};
  size_t ring_capacity_ = 1 << 16;
  const uint64_t tracer_id_;  // Distinguishes tracers in the thread-local ring cache.

  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

// RAII span. Inert when the tracer is null/disabled or the calling thread is inside a
// sim::ScopedOffClock bracket (rewound work must not appear on the timeline).
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, sim::Clock* clock, const char* category, const char* name,
             const char* arg_name = nullptr, uint64_t arg = 0)
      : tracer_(tracer), clock_(clock) {
    if (tracer_ == nullptr || !tracer_->enabled() || sim::Clock::OffClock()) {
      tracer_ = nullptr;
      return;
    }
    span_.name = name;
    span_.category = category;
    span_.arg_name = arg_name;
    span_.arg = arg;
    span_.depth = tracer_->EnterDepth();
    span_.start_ns = clock_->Now();
  }
  ~ScopedSpan() {
    if (tracer_ == nullptr) {
      return;
    }
    span_.end_ns = clock_->Now();
    tracer_->ExitDepth();
    tracer_->Record(span_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return tracer_ != nullptr; }
  uint64_t start_ns() const { return span_.start_ns; }
  // Media attribution for top-level op spans (set just before destruction).
  void set_media_ns(uint64_t ns) { span_.media_ns = ns; }

 private:
  Tracer* tracer_;
  sim::Clock* clock_;
  SpanRecord span_;
};

}  // namespace obs

#endif  // SRC_OBS_TRACE_H_
