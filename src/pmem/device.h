// Emulated byte-addressable persistent-memory device.
//
// Substitutes for the Intel Optane DC PMM used in the paper (§5.1). Two concerns:
//
//  1. Timing: every access charges simulated nanoseconds through sim::CostModel,
//     calibrated against Table 2 (latency/bandwidth) and the Table 1 anchor
//     ("it takes 671 ns to write 4 KB to PM").
//
//  2. Persistence semantics: x86 PM semantics are modeled at cacheline granularity.
//     Regular (temporal) stores are volatile until CLWB + SFENCE; non-temporal stores
//     become persistent at the next SFENCE. `Crash()` rolls every line that has not
//     reached its persistence point back to its pre-store image (optionally persisting
//     a random subset, to model torn writes). Crash-consistency tests for every file
//     system in this repo are built on this.
//
// Persistence tracking is opt-in (`EnableCrashTracking`): benchmarks run with tracking
// off so multi-gigabyte workloads don't pay for the shadow images.
#ifndef SRC_PMEM_DEVICE_H_
#define SRC_PMEM_DEVICE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/sim/context.h"

namespace analysis {
class PersistChecker;
}

namespace pmem {

// Observation hooks for the crash harness (src/crash). The device reports every
// store, flush, and fence so a shadow-recording layer can journal the persistence
// traffic and a crash injector can fire at an exact store/fence boundary. Callbacks
// run outside the device lock; OnFence runs *before* the fence persists anything, so
// an observer that unwinds (crash injection) sees the pre-fence pending set intact.
class DeviceObserver {
 public:
  virtual ~DeviceObserver() = default;
  // After the store's bytes have landed. `persists_at_fence` is true for
  // non-temporal stores (durable at the next fence without an explicit flush).
  virtual void OnStore(uint64_t off, uint64_t n, bool persists_at_fence) = 0;
  virtual void OnClwb(uint64_t off, uint64_t n) = 0;
  // At the start of a fence; `epoch` counts fences completed so far.
  virtual void OnFence(uint64_t epoch) = 0;
  // After CrashWith decided every pending line's fate: the observer's shadow of
  // the volatile state must reset with the DRAM it models. Default no-op (the
  // crash harness's ShadowLog is reinstalled per world and never needs it).
  virtual void OnCrash() {}
};

class Device {
 public:
  // Creates a device of `size` bytes, zero-initialized, charging time to `ctx`.
  // With SPLITFS_ANALYSIS=1 in the environment, a halt-on-violation
  // analysis::PersistChecker is created and installed automatically (see
  // src/analysis/), so every existing suite runs checked without source
  // changes. Out-of-line dtor: the owned checker's type is incomplete here.
  Device(sim::Context* ctx, uint64_t size);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  uint64_t size() const { return data_.size(); }
  sim::Context* context() const { return ctx_; }

  // --- Persistence-tracked access ----------------------------------------------------

  // Regular temporal stores: contents land in "cache"; volatile until Clwb + Fence.
  void StoreTemporal(uint64_t off, const void* src, uint64_t n, sim::PmWriteKind kind);

  // Non-temporal (movnt) stores: bypass cache; persistent at the next Fence.
  // Charges full PM write cost (store + persistence) at the store, per the
  // "671 ns per 4 KB" calibration anchor.
  void StoreNt(uint64_t off, const void* src, uint64_t n, sim::PmWriteKind kind);

  // Flushes the cachelines covering [off, off+n): they persist at the next Fence.
  void Clwb(uint64_t off, uint64_t n);

  // Store fence: everything flushed or written non-temporally is now persistent.
  void Fence();

  // Loads [off, off+n) into dst. `sequential` selects the latency class (Table 2);
  // `kind` classifies the read for accounting — kUserData marks payload reads for
  // the software-overhead split, the rest refine pm_read_bytes by purpose.
  void Load(uint64_t off, void* dst, uint64_t n, bool sequential, sim::PmReadKind kind) const;

  // --- DAX window --------------------------------------------------------------------
  // Raw pointer into the device, the moral equivalent of a DAX mmap target. Callers
  // that use it for data access must charge time themselves (U-Split does; tests that
  // just inspect contents don't need to).
  uint8_t* DirectMap(uint64_t off) {
    SPLITFS_CHECK(off <= data_.size());
    return data_.data() + off;
  }
  const uint8_t* DirectMap(uint64_t off) const {
    SPLITFS_CHECK(off <= data_.size());
    return data_.data() + off;
  }

  // --- Observation (crash harness) -----------------------------------------------------
  // Installs (or, with nullptr, removes) the single observer notified of every store,
  // flush, and fence. Costs one branch per access when unset. Observers are a
  // single-threaded facility (the crash harness drives one workload thread); the
  // epoch counter itself stays race-free under concurrent fencing.
  void SetObserver(DeviceObserver* observer) { observer_ = observer; }
  uint64_t FenceEpoch() const { return fence_epoch_.load(std::memory_order_relaxed); }

  // --- Observation (analysis layer) ----------------------------------------------------
  // A second, dedicated observer slot for the persistence-ordering checker: the
  // crash harness owns SetObserver, and the two must compose (the checker keeps
  // shadowing while a crash injector arms and fires). Notified after the primary
  // observer — a crash injector that unwinds from OnFence skips the checker's
  // fence, and CrashWith's OnCrash resets the checker's shadow state instead.
  // Installs a non-owned checker (tests); pass nullptr to remove.
  void SetPersistChecker(analysis::PersistChecker* checker) { checker_ = checker; }
  // Installed checker, or nullptr — annotation helpers branch on this.
  analysis::PersistChecker* persist_checker() const { return checker_; }

  // --- Crash simulation ----------------------------------------------------------------
  void EnableCrashTracking(bool on);
  bool crash_tracking() const { return tracking_; }

  // Simulates power loss: every line that has not persisted reverts to its pre-store
  // image. If `rng` is non-null, each unpersisted line instead *persists* with
  // probability 1/2 — modeling the arbitrary subset of cachelines that may have been
  // evicted before the crash (this is what makes torn log entries possible).
  void Crash(common::Rng* rng = nullptr);

  // Fine-grained, deterministic power loss. `fate(line, ordinal)` is evaluated for
  // each dirty-but-unpersisted line in ascending line order (`ordinal` counts from 0)
  // and returns an 8-bit survival mask: bit i covers bytes [8i, 8(i+1)) of the line —
  // set keeps the new store, clear reverts to the pre-store image. 0x00 drops the
  // whole line, 0xFF persists it, anything in between models a torn store (the
  // write-combining buffer drained partially before power was cut).
  using LineFateFn = std::function<uint8_t(uint64_t line, uint64_t ordinal)>;
  void CrashWith(const LineFateFn& fate);

  // Number of cachelines currently dirty-but-unpersisted (test introspection).
  uint64_t UnpersistedLines() const;
  // Their indices, sorted ascending (crash-state enumeration).
  std::vector<uint64_t> PendingLineIndices() const;

 private:
  struct LineState {
    std::array<uint8_t, common::kCacheLineSize> old_image;
    bool flushed = false;  // Flushed (or nt-written): persists at next fence.
  };

  void TrackStore(uint64_t off, uint64_t n, bool flushed);
  // Caller holds mu_.
  std::vector<uint64_t> SortedPendingLinesLocked() const;

  sim::Context* ctx_;
  std::vector<uint8_t> data_;
  bool tracking_ = false;
  DeviceObserver* observer_ = nullptr;
  analysis::PersistChecker* checker_ = nullptr;
  std::unique_ptr<analysis::PersistChecker> owned_checker_;  // Env auto-install.
  std::atomic<uint64_t> fence_epoch_{0};

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, LineState> pending_;  // line index -> state
  uint64_t pending_flush_bytes_ = 0;                 // For fence cost selection.
};

}  // namespace pmem

#endif  // SRC_PMEM_DEVICE_H_
