// Emulated byte-addressable persistent-memory device.
//
// Substitutes for the Intel Optane DC PMM used in the paper (§5.1). Two concerns:
//
//  1. Timing: every access charges simulated nanoseconds through sim::CostModel,
//     calibrated against Table 2 (latency/bandwidth) and the Table 1 anchor
//     ("it takes 671 ns to write 4 KB to PM").
//
//  2. Persistence semantics: x86 PM semantics are modeled at cacheline granularity.
//     Regular (temporal) stores are volatile until CLWB + SFENCE; non-temporal stores
//     become persistent at the next SFENCE. `Crash()` rolls every line that has not
//     reached its persistence point back to its pre-store image (optionally persisting
//     a random subset, to model torn writes). Crash-consistency tests for every file
//     system in this repo are built on this.
//
// Persistence tracking is opt-in (`EnableCrashTracking`): benchmarks run with tracking
// off so multi-gigabyte workloads don't pay for the shadow images.
#ifndef SRC_PMEM_DEVICE_H_
#define SRC_PMEM_DEVICE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/sim/context.h"

namespace pmem {

class Device {
 public:
  // Creates a device of `size` bytes, zero-initialized, charging time to `ctx`.
  Device(sim::Context* ctx, uint64_t size);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  uint64_t size() const { return data_.size(); }
  sim::Context* context() const { return ctx_; }

  // --- Persistence-tracked access ----------------------------------------------------

  // Regular temporal stores: contents land in "cache"; volatile until Clwb + Fence.
  void StoreTemporal(uint64_t off, const void* src, uint64_t n, sim::PmWriteKind kind);

  // Non-temporal (movnt) stores: bypass cache; persistent at the next Fence.
  // Charges full PM write cost (store + persistence) at the store, per the
  // "671 ns per 4 KB" calibration anchor.
  void StoreNt(uint64_t off, const void* src, uint64_t n, sim::PmWriteKind kind);

  // Flushes the cachelines covering [off, off+n): they persist at the next Fence.
  void Clwb(uint64_t off, uint64_t n);

  // Store fence: everything flushed or written non-temporally is now persistent.
  void Fence();

  // Loads [off, off+n) into dst. `sequential` selects the latency class (Table 2);
  // `user_data` marks payload reads for the software-overhead accounting.
  void Load(uint64_t off, void* dst, uint64_t n, bool sequential, bool user_data) const;

  // --- DAX window --------------------------------------------------------------------
  // Raw pointer into the device, the moral equivalent of a DAX mmap target. Callers
  // that use it for data access must charge time themselves (U-Split does; tests that
  // just inspect contents don't need to).
  uint8_t* DirectMap(uint64_t off) {
    SPLITFS_CHECK(off <= data_.size());
    return data_.data() + off;
  }
  const uint8_t* DirectMap(uint64_t off) const {
    SPLITFS_CHECK(off <= data_.size());
    return data_.data() + off;
  }

  // --- Crash simulation ----------------------------------------------------------------
  void EnableCrashTracking(bool on);
  bool crash_tracking() const { return tracking_; }

  // Simulates power loss: every line that has not persisted reverts to its pre-store
  // image. If `rng` is non-null, each unpersisted line instead *persists* with
  // probability 1/2 — modeling the arbitrary subset of cachelines that may have been
  // evicted before the crash (this is what makes torn log entries possible).
  void Crash(common::Rng* rng = nullptr);

  // Number of cachelines currently dirty-but-unpersisted (test introspection).
  uint64_t UnpersistedLines() const;

 private:
  struct LineState {
    std::array<uint8_t, common::kCacheLineSize> old_image;
    bool flushed = false;  // Flushed (or nt-written): persists at next fence.
  };

  void TrackStore(uint64_t off, uint64_t n, bool flushed);

  sim::Context* ctx_;
  std::vector<uint8_t> data_;
  bool tracking_ = false;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, LineState> pending_;  // line index -> state
  uint64_t pending_flush_bytes_ = 0;                 // For fence cost selection.
};

}  // namespace pmem

#endif  // SRC_PMEM_DEVICE_H_
