#include "src/pmem/device.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "src/analysis/persist_checker.h"

namespace pmem {

using common::kCacheLineSize;

namespace {
bool EnvAnalysisOn() {
  const char* v = std::getenv("SPLITFS_ANALYSIS");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}
}  // namespace

Device::Device(sim::Context* ctx, uint64_t size) : ctx_(ctx), data_(size, 0) {
  SPLITFS_CHECK(ctx != nullptr);
  SPLITFS_CHECK(size > 0);
  if (EnvAnalysisOn()) {
    // Analysis mode: every device gets its own halt-on-violation checker, wired
    // into this context's metrics registry for the per-site lint gauges.
    owned_checker_ = std::make_unique<analysis::PersistChecker>(
        analysis::PersistChecker::Mode::kHalt, &ctx->obs.metrics);
    checker_ = owned_checker_.get();
  }
}

Device::~Device() = default;

void Device::EnableCrashTracking(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  tracking_ = on;
  if (!on) {
    pending_.clear();
    pending_flush_bytes_ = 0;
  }
}

void Device::TrackStore(uint64_t off, uint64_t n, bool flushed) {
  // Caller holds mu_. Saves the pre-store image of every line touched so Crash() can
  // revert it; a line already pending keeps its original (oldest) image.
  uint64_t first = off / kCacheLineSize;
  uint64_t last = (off + n - 1) / kCacheLineSize;
  for (uint64_t line = first; line <= last; ++line) {
    auto [it, inserted] = pending_.try_emplace(line);
    if (inserted) {
      std::memcpy(it->second.old_image.data(), data_.data() + line * kCacheLineSize,
                  kCacheLineSize);
    }
    it->second.flushed = flushed;
    if (flushed) {
      pending_flush_bytes_ += kCacheLineSize;
    }
  }
}

void Device::StoreTemporal(uint64_t off, const void* src, uint64_t n,
                           sim::PmWriteKind kind) {
  SPLITFS_CHECK(off + n <= data_.size());
  if (n == 0) {
    return;
  }
  if (tracking_) {
    std::lock_guard<std::mutex> lock(mu_);
    TrackStore(off, n, /*flushed=*/false);
    std::memcpy(data_.data() + off, src, n);
  } else {
    std::memcpy(data_.data() + off, src, n);
  }
  if (observer_ != nullptr) {
    observer_->OnStore(off, n, /*persists_at_fence=*/false);
  }
  if (checker_ != nullptr) {
    checker_->OnStore(off, n, /*persists_at_fence=*/false);
  }
  // Temporal stores land in cache: cheap now, media cost charged at Clwb time.
  uint64_t ns = static_cast<uint64_t>(ctx_->model.dram_ns_per_byte * n);
  ctx_->clock.Advance(ns);
  ctx_->stats.AddPmWrite(kind, n, /*media_ns=*/0);
}

void Device::StoreNt(uint64_t off, const void* src, uint64_t n, sim::PmWriteKind kind) {
  SPLITFS_CHECK(off + n <= data_.size());
  if (n == 0) {
    return;
  }
  if (tracking_) {
    std::lock_guard<std::mutex> lock(mu_);
    TrackStore(off, n, /*flushed=*/true);
    std::memcpy(data_.data() + off, src, n);
  } else {
    std::memcpy(data_.data() + off, src, n);
  }
  if (observer_ != nullptr) {
    observer_->OnStore(off, n, /*persists_at_fence=*/true);
  }
  if (checker_ != nullptr) {
    checker_->OnStore(off, n, /*persists_at_fence=*/true);
  }
  // Full media cost at the store: this is the Table 1 calibration anchor
  // (91 + 4096 * 0.1416 ≈ 671 ns for one 4 KB block).
  uint64_t ns = ctx_->model.PmWriteCost(n);
  ctx_->clock.Advance(ns);
  ctx_->stats.AddPmWrite(kind, n, ns);
}

void Device::Clwb(uint64_t off, uint64_t n) {
  SPLITFS_CHECK(off + n <= data_.size());
  if (n == 0) {
    return;
  }
  uint64_t first = common::AlignDown(off, kCacheLineSize);
  uint64_t last = common::AlignDown(off + n - 1, kCacheLineSize);
  uint64_t lines = (last - first) / kCacheLineSize + 1;
  if (tracking_) {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t line = first / kCacheLineSize; line <= last / kCacheLineSize; ++line) {
      auto it = pending_.find(line);
      if (it != pending_.end() && !it->second.flushed) {
        it->second.flushed = true;
        pending_flush_bytes_ += kCacheLineSize;
      }
    }
  }
  if (observer_ != nullptr) {
    observer_->OnClwb(off, n);
  }
  if (checker_ != nullptr) {
    checker_->OnClwb(off, n);
  }
  // Write-back of dirty lines at PM write bandwidth.
  uint64_t bytes = lines * kCacheLineSize;
  ctx_->clock.Advance(static_cast<uint64_t>(ctx_->model.pm_write_ns_per_byte * bytes));
}

void Device::Fence() {
  // Observer runs before anything persists: a crash injected here still sees every
  // un-fenced store as vulnerable.
  uint64_t epoch = fence_epoch_.fetch_add(1, std::memory_order_relaxed);
  if (observer_ != nullptr) {
    // The primary observer goes first: a crash injector that unwinds from here
    // leaves the checker's pre-fence shadow intact — CrashWith then resets it
    // through OnCrash, matching the lines it reverted.
    observer_->OnFence(epoch);
  }
  if (checker_ != nullptr) {
    checker_->OnFence(epoch);
  }
  bool persisting = false;
  if (tracking_) {
    std::lock_guard<std::mutex> lock(mu_);
    persisting = pending_flush_bytes_ > 0;
    // Every flushed / nt-written line is now durable: forget its undo image.
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.flushed) {
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    pending_flush_bytes_ = 0;
  }
  ctx_->clock.Advance(persisting ? ctx_->model.pm_store_fence_ns : ctx_->model.fence_ns);
  ctx_->stats.AddFence();
}

void Device::Load(uint64_t off, void* dst, uint64_t n, bool sequential,
                  sim::PmReadKind kind) const {
  SPLITFS_CHECK(off + n <= data_.size());
  if (n == 0) {
    return;
  }
  std::memcpy(dst, data_.data() + off, n);
  uint64_t ns = ctx_->model.PmReadCost(n, sequential);
  ctx_->clock.Advance(ns);
  ctx_->stats.AddPmRead(kind, n, ns);
}

void Device::Crash(common::Rng* rng) {
  // Lines are visited in ascending order so a seeded Rng produces the same crash
  // state on every run (unordered_map iteration order must not leak into results).
  CrashWith([rng](uint64_t, uint64_t) -> uint8_t {
    return rng != nullptr && rng->OneIn(2) ? 0xFF : 0x00;
  });
}

std::vector<uint64_t> Device::SortedPendingLinesLocked() const {
  std::vector<uint64_t> lines;
  lines.reserve(pending_.size());
  for (const auto& [line, state] : pending_) {
    lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

void Device::CrashWith(const LineFateFn& fate) {
  std::lock_guard<std::mutex> lock(mu_);
  SPLITFS_CHECK(tracking_);
  std::vector<uint64_t> lines = SortedPendingLinesLocked();
  constexpr uint64_t kChunk = 8;  // One survival bit per 8-byte drain unit.
  for (uint64_t ordinal = 0; ordinal < lines.size(); ++ordinal) {
    uint64_t line = lines[ordinal];
    uint8_t mask = fate(line, ordinal);
    const LineState& state = pending_.at(line);
    for (uint64_t chunk = 0; chunk < kCacheLineSize / kChunk; ++chunk) {
      if ((mask & (1u << chunk)) == 0) {
        std::memcpy(data_.data() + line * kCacheLineSize + chunk * kChunk,
                    state.old_image.data() + chunk * kChunk, kChunk);
      }
    }
  }
  pending_.clear();
  pending_flush_bytes_ = 0;
  if (checker_ != nullptr) {
    checker_->OnCrash();
  }
  if (observer_ != nullptr) {
    observer_->OnCrash();
  }
}

uint64_t Device::UnpersistedLines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

std::vector<uint64_t> Device::PendingLineIndices() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SortedPendingLinesLocked();
}

}  // namespace pmem
