// AofStore: a Redis-shaped in-memory store with an append-only file.
//
// Substitutes for Redis in Append-Only-File mode (§5.2): every SET is an in-DRAM hash
// update plus an AOF append; the AOF is fsync'd every `fsync_interval_ops` operations
// (modeling Redis's everysec policy on the simulated clock's scale). On open the store
// replays the AOF. A rewrite (BGREWRITEAOF-style) compacts the log when it exceeds a
// multiple of the live data size.
#ifndef SRC_APPS_AOF_STORE_H_
#define SRC_APPS_AOF_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/sim/clock.h"
#include "src/vfs/file_system.h"

namespace apps {

struct AofOptions {
  uint64_t fsync_interval_ops = 1000;  // "everysec" stand-in.
  double rewrite_growth = 4.0;         // Rewrite when AOF > growth * live bytes.
  // Application + client CPU per command: RESP parsing, hash update, and the
  // loopback round trip of a redis-benchmark style client. Dominates per-op cost on
  // a real deployment, which is why the paper's Redis speedup is ~27%, not 5x.
  sim::Clock* clock = nullptr;
  uint64_t app_cpu_ns = 25000;
};

class AofStore {
 public:
  AofStore(vfs::FileSystem* fs, std::string dir, AofOptions opts = {});
  ~AofStore();

  AofStore(const AofStore&) = delete;
  AofStore& operator=(const AofStore&) = delete;

  int Set(const std::string& key, const std::string& value);
  std::optional<std::string> Get(const std::string& key) const;
  int Del(const std::string& key);
  size_t Size() const { return map_.size(); }
  uint64_t Rewrites() const { return rewrites_; }

 private:
  int Append(const std::string& line);
  int MaybeRewrite();
  void Replay();

  vfs::FileSystem* fs_;
  std::string dir_;
  AofOptions opts_;
  std::unordered_map<std::string, std::string> map_;
  int aof_fd_ = -1;
  uint64_t aof_bytes_ = 0;
  uint64_t live_bytes_ = 0;
  uint64_t ops_since_fsync_ = 0;
  uint64_t rewrites_ = 0;
};

}  // namespace apps

#endif  // SRC_APPS_AOF_STORE_H_
