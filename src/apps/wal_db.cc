#include "src/apps/wal_db.h"

#include <cstring>

#include "src/common/checksum.h"
#include "src/common/status.h"

namespace apps {

namespace {
constexpr uint64_t kFrameHeader = 16;  // [page_id u64][crc u32][pad u32]
}

WalDb::WalDb(vfs::FileSystem* fs, std::string path, WalDbOptions opts)
    : fs_(fs), path_(std::move(path)), opts_(opts) {
  db_fd_ = fs_->Open(path_, vfs::kRdWr | vfs::kCreate);
  SPLITFS_CHECK(db_fd_ >= 0);
  wal_fd_ = fs_->Open(path_ + "-wal", vfs::kRdWr | vfs::kCreate);
  SPLITFS_CHECK(wal_fd_ >= 0);

  // Recover the WAL index from any frames left by a previous run.
  vfs::StatBuf st;
  fs_->Fstat(wal_fd_, &st);
  uint64_t frame_bytes = kFrameHeader + opts_.page_bytes;
  std::vector<uint8_t> frame(frame_bytes);
  for (uint64_t off = 0; off + frame_bytes <= st.size; off += frame_bytes) {
    if (fs_->Pread(wal_fd_, frame.data(), frame_bytes, off) !=
        static_cast<ssize_t>(frame_bytes)) {
      break;
    }
    uint64_t page_id;
    uint32_t crc;
    std::memcpy(&page_id, frame.data(), 8);
    std::memcpy(&crc, frame.data() + 8, 4);
    if (crc != common::Crc32c(frame.data() + kFrameHeader, opts_.page_bytes)) {
      break;  // Torn frame: everything after it is discarded, as SQLite does.
    }
    wal_index_[page_id] = off;
    ++wal_frames_;
  }
}

WalDb::~WalDb() {
  Checkpoint();
  if (db_fd_ >= 0) {
    fs_->Close(db_fd_);
  }
  if (wal_fd_ >= 0) {
    fs_->Close(wal_fd_);
  }
}

void WalDb::Begin() {
  SPLITFS_CHECK(!in_txn_);
  in_txn_ = true;
  txn_pages_.clear();
}

int WalDb::ReadPageInternal(uint64_t page_id, void* buf) {
  // WAL index first (newest committed version), then the main file.
  auto wit = wal_index_.find(page_id);
  if (wit != wal_index_.end()) {
    ssize_t rc = fs_->Pread(wal_fd_, buf, opts_.page_bytes, wit->second + kFrameHeader);
    return rc == static_cast<ssize_t>(opts_.page_bytes) ? 0 : -EIO;
  }
  auto cit = cache_.find(page_id);
  if (cit != cache_.end()) {
    std::memcpy(buf, cit->second.data(), opts_.page_bytes);
    return 0;
  }
  ssize_t rc = fs_->Pread(db_fd_, buf, opts_.page_bytes, page_id * opts_.page_bytes);
  if (rc < 0) {
    return static_cast<int>(rc);
  }
  if (rc < static_cast<ssize_t>(opts_.page_bytes)) {
    std::memset(static_cast<uint8_t*>(buf) + rc, 0, opts_.page_bytes - rc);
  }
  if (cache_.size() < opts_.cache_pages) {
    auto& slot = cache_[page_id];
    slot.assign(static_cast<uint8_t*>(buf), static_cast<uint8_t*>(buf) + opts_.page_bytes);
  }
  return 0;
}

int WalDb::ReadPage(uint64_t page_id, void* buf) {
  if (in_txn_) {
    auto it = txn_pages_.find(page_id);
    if (it != txn_pages_.end()) {
      std::memcpy(buf, it->second.data(), opts_.page_bytes);
      return 0;
    }
  }
  return ReadPageInternal(page_id, buf);
}

int WalDb::WritePage(uint64_t page_id, const void* buf) {
  SPLITFS_CHECK(in_txn_);
  auto& page = txn_pages_[page_id];
  page.assign(static_cast<const uint8_t*>(buf),
              static_cast<const uint8_t*>(buf) + opts_.page_bytes);
  return 0;
}

int WalDb::Commit() {
  SPLITFS_CHECK(in_txn_);
  in_txn_ = false;
  if (txn_pages_.empty()) {
    return 0;
  }
  // Append one frame per dirty page, then one fsync for the whole commit.
  uint64_t frame_bytes = kFrameHeader + opts_.page_bytes;
  std::vector<uint8_t> frame(frame_bytes);
  std::vector<std::pair<uint64_t, uint64_t>> staged;  // page -> frame offset
  for (const auto& [page_id, data] : txn_pages_) {
    uint64_t off = wal_frames_ * frame_bytes;
    uint32_t crc = common::Crc32c(data.data(), data.size());
    std::memcpy(frame.data(), &page_id, 8);
    std::memcpy(frame.data() + 8, &crc, 4);
    std::memset(frame.data() + 12, 0, 4);
    std::memcpy(frame.data() + kFrameHeader, data.data(), opts_.page_bytes);
    ssize_t rc = fs_->Pwrite(wal_fd_, frame.data(), frame_bytes, off);
    if (rc != static_cast<ssize_t>(frame_bytes)) {
      return rc < 0 ? static_cast<int>(rc) : -EIO;
    }
    staged.push_back({page_id, off});
    ++wal_frames_;
    cache_.erase(page_id);
  }
  int rc = fs_->Fsync(wal_fd_);
  if (rc != 0) {
    return rc;
  }
  for (const auto& [page_id, off] : staged) {
    wal_index_[page_id] = off;
  }
  txn_pages_.clear();
  if (wal_frames_ >= opts_.checkpoint_frames) {
    return Checkpoint();
  }
  return 0;
}

void WalDb::Rollback() {
  in_txn_ = false;
  txn_pages_.clear();
}

int WalDb::Checkpoint() {
  if (wal_index_.empty()) {
    wal_frames_ = 0;
    return 0;
  }
  // Copy the newest version of each page back into the main file (in-place
  // overwrites), fsync it, then reset the WAL.
  std::vector<uint8_t> page(opts_.page_bytes);
  for (const auto& [page_id, off] : wal_index_) {
    if (fs_->Pread(wal_fd_, page.data(), opts_.page_bytes, off + kFrameHeader) !=
        static_cast<ssize_t>(opts_.page_bytes)) {
      return -EIO;
    }
    ssize_t rc = fs_->Pwrite(db_fd_, page.data(), opts_.page_bytes,
                             page_id * opts_.page_bytes);
    if (rc != static_cast<ssize_t>(opts_.page_bytes)) {
      return rc < 0 ? static_cast<int>(rc) : -EIO;
    }
  }
  int rc = fs_->Fsync(db_fd_);
  if (rc != 0) {
    return rc;
  }
  rc = fs_->Ftruncate(wal_fd_, 0);
  if (rc != 0) {
    return rc;
  }
  rc = fs_->Fsync(wal_fd_);
  if (rc != 0) {
    return rc;
  }
  wal_index_.clear();
  wal_frames_ = 0;
  ++checkpoints_;
  return 0;
}

}  // namespace apps
