#include "src/apps/aof_store.h"

#include <vector>

#include "src/common/status.h"

namespace apps {

namespace {
// AOF line: "S <klen> <vlen>\n<key><value>" or "D <klen>\n<key>". Plain text sizes keep
// replay simple; Redis's RESP framing would add nothing to the FS behaviour.
std::string SetLine(const std::string& k, const std::string& v) {
  return "S " + std::to_string(k.size()) + " " + std::to_string(v.size()) + "\n" + k + v;
}
std::string DelLine(const std::string& k) {
  return "D " + std::to_string(k.size()) + "\n" + k;
}
}  // namespace

AofStore::AofStore(vfs::FileSystem* fs, std::string dir, AofOptions opts)
    : fs_(fs), dir_(std::move(dir)), opts_(opts) {
  fs_->Mkdir(dir_);
  Replay();
  if (aof_fd_ < 0) {
    aof_fd_ = fs_->Open(dir_ + "/appendonly.aof", vfs::kRdWr | vfs::kCreate | vfs::kAppend);
    SPLITFS_CHECK(aof_fd_ >= 0);
  }
}

AofStore::~AofStore() {
  if (aof_fd_ >= 0) {
    fs_->Fsync(aof_fd_);
    fs_->Close(aof_fd_);
  }
}

int AofStore::Append(const std::string& line) {
  ssize_t rc = fs_->Write(aof_fd_, line.data(), line.size());
  if (rc != static_cast<ssize_t>(line.size())) {
    return rc < 0 ? static_cast<int>(rc) : -EIO;
  }
  aof_bytes_ += line.size();
  if (++ops_since_fsync_ >= opts_.fsync_interval_ops) {
    ops_since_fsync_ = 0;
    return fs_->Fsync(aof_fd_);
  }
  return 0;
}

int AofStore::Set(const std::string& key, const std::string& value) {
  if (opts_.clock != nullptr) {
    opts_.clock->Advance(opts_.app_cpu_ns);
  }
  int rc = Append(SetLine(key, value));
  if (rc != 0) {
    return rc;
  }
  auto it = map_.find(key);
  if (it != map_.end()) {
    live_bytes_ -= it->second.size() + key.size();
  }
  live_bytes_ += key.size() + value.size();
  map_[key] = value;
  return MaybeRewrite();
}

std::optional<std::string> AofStore::Get(const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return std::nullopt;
  }
  return it->second;
}

int AofStore::Del(const std::string& key) {
  if (opts_.clock != nullptr) {
    opts_.clock->Advance(opts_.app_cpu_ns);
  }
  auto it = map_.find(key);
  if (it == map_.end()) {
    return 0;
  }
  int rc = Append(DelLine(key));
  if (rc != 0) {
    return rc;
  }
  live_bytes_ -= it->second.size() + key.size();
  map_.erase(it);
  return MaybeRewrite();
}

int AofStore::MaybeRewrite() {
  if (live_bytes_ == 0 ||
      aof_bytes_ < static_cast<uint64_t>(opts_.rewrite_growth * live_bytes_) ||
      aof_bytes_ < 1024 * 1024) {
    return 0;
  }
  // BGREWRITEAOF: dump the live map into a fresh AOF, fsync, atomically swap in.
  std::string tmp = dir_ + "/appendonly.aof.rewrite";
  int fd = fs_->Open(tmp, vfs::kRdWr | vfs::kCreate | vfs::kTrunc);
  if (fd < 0) {
    return fd;
  }
  uint64_t bytes = 0;
  for (const auto& [k, v] : map_) {
    std::string line = SetLine(k, v);
    ssize_t rc = fs_->Write(fd, line.data(), line.size());
    if (rc != static_cast<ssize_t>(line.size())) {
      fs_->Close(fd);
      return -EIO;
    }
    bytes += line.size();
  }
  fs_->Fsync(fd);
  fs_->Close(fd);
  fs_->Close(aof_fd_);
  int rc = fs_->Rename(tmp, dir_ + "/appendonly.aof");
  if (rc != 0) {
    return rc;
  }
  aof_fd_ = fs_->Open(dir_ + "/appendonly.aof", vfs::kRdWr | vfs::kAppend);
  SPLITFS_CHECK(aof_fd_ >= 0);
  aof_bytes_ = bytes;
  ops_since_fsync_ = 0;
  ++rewrites_;
  return 0;
}

void AofStore::Replay() {
  int fd = fs_->Open(dir_ + "/appendonly.aof", vfs::kRdWr);
  if (fd < 0) {
    return;
  }
  vfs::StatBuf st;
  fs_->Fstat(fd, &st);
  std::vector<char> content(st.size);
  if (st.size > 0 &&
      fs_->Pread(fd, content.data(), st.size, 0) != static_cast<ssize_t>(st.size)) {
    fs_->Close(fd);
    return;
  }
  size_t pos = 0;
  auto read_num = [&](size_t* out) {
    size_t v = 0;
    bool any = false;
    while (pos < content.size() && content[pos] >= '0' && content[pos] <= '9') {
      v = v * 10 + static_cast<size_t>(content[pos++] - '0');
      any = true;
    }
    *out = v;
    return any;
  };
  while (pos < content.size()) {
    char op = content[pos];
    pos += 2;  // Opcode + space.
    size_t klen = 0, vlen = 0;
    if (!read_num(&klen)) {
      break;
    }
    if (op == 'S') {
      ++pos;  // Space.
      if (!read_num(&vlen)) {
        break;
      }
    }
    ++pos;  // Newline.
    if (pos + klen + vlen > content.size()) {
      break;  // Torn tail.
    }
    std::string key(content.data() + pos, klen);
    pos += klen;
    if (op == 'S') {
      std::string value(content.data() + pos, vlen);
      pos += vlen;
      live_bytes_ += key.size() + value.size();
      map_[key] = std::move(value);
    } else {
      auto it = map_.find(key);
      if (it != map_.end()) {
        live_bytes_ -= it->second.size() + key.size();
        map_.erase(it);
      }
    }
  }
  aof_bytes_ = st.size;
  fs_->Close(fd);
  aof_fd_ = fd >= 0 ? fs_->Open(dir_ + "/appendonly.aof", vfs::kRdWr | vfs::kAppend) : -1;
}

}  // namespace apps
