// WalDb: a SQLite-shaped page store in Write-Ahead-Logging mode.
//
// Substitutes for SQLite WAL mode in the paper's TPC-C evaluation (§5.2). The
// file-system footprint matches SQLite's:
//   * the database is a page file (4 KB pages) read with pread();
//   * a transaction's dirty pages are appended to the -wal file with one header per
//     page frame, then a single fsync publishes the commit;
//   * readers consult the WAL index (DRAM) before the main file;
//   * a checkpoint copies WAL frames back into the page file, fsyncs it, and resets
//     the WAL — the overwrite-heavy phase where in-place writes shine.
#ifndef SRC_APPS_WAL_DB_H_
#define SRC_APPS_WAL_DB_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/vfs/file_system.h"

namespace apps {

struct WalDbOptions {
  uint64_t page_bytes = 4096;
  uint64_t checkpoint_frames = 1000;  // Checkpoint when the WAL holds this many frames.
  uint64_t cache_pages = 256;         // DRAM page cache entries.
};

class WalDb {
 public:
  WalDb(vfs::FileSystem* fs, std::string path, WalDbOptions opts = {});
  ~WalDb();

  WalDb(const WalDb&) = delete;
  WalDb& operator=(const WalDb&) = delete;

  // Transactions: modify pages between Begin and Commit; Commit makes them durable
  // with one WAL append batch + fsync. Rollback discards the transaction's writes.
  void Begin();
  int ReadPage(uint64_t page_id, void* buf);
  int WritePage(uint64_t page_id, const void* buf);
  int Commit();
  void Rollback();

  uint64_t Checkpoints() const { return checkpoints_; }
  uint64_t WalFrames() const { return wal_frames_; }
  // Forces a checkpoint (tests and shutdown).
  int Checkpoint();

 private:
  int ReadPageInternal(uint64_t page_id, void* buf);

  vfs::FileSystem* fs_;
  std::string path_;
  WalDbOptions opts_;
  int db_fd_ = -1;
  int wal_fd_ = -1;
  bool in_txn_ = false;
  std::map<uint64_t, std::vector<uint8_t>> txn_pages_;      // Dirty pages of open txn.
  std::unordered_map<uint64_t, uint64_t> wal_index_;        // page -> WAL frame offset.
  std::unordered_map<uint64_t, std::vector<uint8_t>> cache_;  // DRAM page cache.
  uint64_t wal_frames_ = 0;
  uint64_t checkpoints_ = 0;
};

}  // namespace apps

#endif  // SRC_APPS_WAL_DB_H_
