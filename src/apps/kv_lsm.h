// KvLsm: a LevelDB-shaped LSM key-value store over the VFS interface.
//
// Substitutes for LevelDB in the paper's YCSB evaluation (§5.2, Table 5/7, Figure 6).
// It reproduces LevelDB's file-system footprint — the part that matters for a file-
// system benchmark:
//   * every write appends a record to a write-ahead log, optionally fsync'd;
//   * a sorted memtable flushes to an immutable SSTable (CRC-protected blocks) when it
//     exceeds its budget, then the WAL is truncated;
//   * tiered compaction merges level-0 tables when too many accumulate, rewriting
//     their contents to a new table (bulk sequential reads + writes);
//   * point reads consult memtable, then tables newest-first via a DRAM index;
//   * range scans merge across memtable and all tables (YCSB workload E).
#ifndef SRC_APPS_KV_LSM_H_
#define SRC_APPS_KV_LSM_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/clock.h"
#include "src/vfs/file_system.h"

namespace apps {

struct KvLsmOptions {
  uint64_t memtable_bytes = 4 * 1024 * 1024;  // Flush threshold.
  uint64_t sstable_block_bytes = 4096;        // Data block size.
  int l0_compaction_trigger = 4;  // Merge when this many L0 tables exist.
  // fsync the WAL after every write. LevelDB's default (and the configuration the
  // paper's YCSB throughput implies) is false: appends stream into the WAL and
  // durability comes from memtable-flush fsyncs.
  bool sync_writes = false;
  // Application-side CPU per operation (key comparison, memtable skiplist, iterator
  // setup...). The paper observes LevelDB spends 60-80% of its time in POSIX calls on
  // PM file systems (§4); this models the remaining application share. Charged to
  // `clock` when provided.
  sim::Clock* clock = nullptr;
  uint64_t app_cpu_ns = 1500;
};

class KvLsm {
 public:
  // Creates or reopens a store rooted at `dir` (recovers from WAL + tables on open).
  KvLsm(vfs::FileSystem* fs, std::string dir, KvLsmOptions opts = {});
  ~KvLsm();

  KvLsm(const KvLsm&) = delete;
  KvLsm& operator=(const KvLsm&) = delete;

  int Put(const std::string& key, const std::string& value);
  int Delete(const std::string& key);
  std::optional<std::string> Get(const std::string& key);
  // Up to `limit` key/value pairs with key >= start, in key order.
  std::vector<std::pair<std::string, std::string>> Scan(const std::string& start,
                                                        size_t limit);

  // Introspection.
  uint64_t Flushes() const { return flushes_; }
  uint64_t Compactions() const { return compactions_; }
  size_t TableCount() const { return tables_.size(); }

 private:
  struct TableEntry {
    std::string path;
    int fd = -1;  // Cached open descriptor, as LevelDB's table cache keeps.
    // Sparse DRAM index: first key of each block -> (file offset, block length).
    std::map<std::string, std::pair<uint64_t, uint32_t>> index;
    uint64_t seq = 0;  // Newer tables shadow older ones.
  };

  void ChargeAppCpu();
  int WalAppend(uint8_t op, const std::string& key, const std::string& value);
  int FlushMemtable();
  int MaybeCompact();
  int WriteTable(const std::map<std::string, std::string>& entries, TableEntry* out);
  bool LookupInTable(TableEntry& t, const std::string& key, std::string* value,
                     bool* deleted);
  void LoadTableForScan(const TableEntry& t, std::map<std::string, std::string>* into,
                        std::map<std::string, bool>* tombstones);
  int RecoverFromDisk();

  vfs::FileSystem* fs_;
  std::string dir_;
  KvLsmOptions opts_;
  std::map<std::string, std::string> memtable_;  // value "" + tombstone flag below.
  std::map<std::string, bool> tombstones_;       // Keys deleted in the memtable.
  uint64_t memtable_bytes_ = 0;
  int wal_fd_ = -1;
  uint64_t next_table_ = 0;
  uint64_t next_wal_ = 0;
  std::vector<TableEntry> tables_;  // Sorted by seq ascending.
  uint64_t flushes_ = 0;
  uint64_t compactions_ = 0;
};

}  // namespace apps

#endif  // SRC_APPS_KV_LSM_H_
