#include "src/apps/kv_lsm.h"

#include <algorithm>
#include <cstring>

#include "src/common/checksum.h"
#include "src/common/status.h"

namespace apps {

namespace {
constexpr uint8_t kOpPut = 1;
constexpr uint8_t kOpDelete = 2;

void Put32(std::string* s, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    s->push_back(static_cast<char>(v >> (8 * i)));
  }
}

uint32_t Get32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}
}  // namespace

KvLsm::KvLsm(vfs::FileSystem* fs, std::string dir, KvLsmOptions opts)
    : fs_(fs), dir_(std::move(dir)), opts_(opts) {
  fs_->Mkdir(dir_);  // EEXIST on reopen is fine.
  SPLITFS_CHECK_OK(RecoverFromDisk());
  if (wal_fd_ < 0) {
    wal_fd_ = fs_->Open(dir_ + "/wal-" + std::to_string(next_wal_++),
                        vfs::kRdWr | vfs::kCreate | vfs::kAppend);
    SPLITFS_CHECK(wal_fd_ >= 0);
  }
}

KvLsm::~KvLsm() {
  if (wal_fd_ >= 0) {
    fs_->Close(wal_fd_);
  }
  for (auto& t : tables_) {
    if (t.fd >= 0) {
      fs_->Close(t.fd);
    }
  }
}

void KvLsm::ChargeAppCpu() {
  if (opts_.clock != nullptr) {
    opts_.clock->Advance(opts_.app_cpu_ns);
  }
}

int KvLsm::WalAppend(uint8_t op, const std::string& key, const std::string& value) {
  // Record: [crc32c u32][op u8][klen u32][vlen u32][key][value]
  std::string rec;
  rec.reserve(13 + key.size() + value.size());
  Put32(&rec, 0);  // CRC placeholder.
  rec.push_back(static_cast<char>(op));
  Put32(&rec, static_cast<uint32_t>(key.size()));
  Put32(&rec, static_cast<uint32_t>(value.size()));
  rec.append(key);
  rec.append(value);
  uint32_t crc = common::Crc32c(rec.data() + 4, rec.size() - 4);
  std::memcpy(rec.data(), &crc, 4);

  ssize_t rc = fs_->Write(wal_fd_, rec.data(), rec.size());
  if (rc != static_cast<ssize_t>(rec.size())) {
    return rc < 0 ? static_cast<int>(rc) : -EIO;
  }
  if (opts_.sync_writes) {
    return fs_->Fsync(wal_fd_);
  }
  return 0;
}

int KvLsm::Put(const std::string& key, const std::string& value) {
  ChargeAppCpu();
  int rc = WalAppend(kOpPut, key, value);
  if (rc != 0) {
    return rc;
  }
  memtable_[key] = value;
  tombstones_.erase(key);
  memtable_bytes_ += key.size() + value.size() + 32;
  if (memtable_bytes_ >= opts_.memtable_bytes) {
    return FlushMemtable();
  }
  return 0;
}

int KvLsm::Delete(const std::string& key) {
  ChargeAppCpu();
  int rc = WalAppend(kOpDelete, key, "");
  if (rc != 0) {
    return rc;
  }
  memtable_.erase(key);
  tombstones_[key] = true;
  memtable_bytes_ += key.size() + 32;
  if (memtable_bytes_ >= opts_.memtable_bytes) {
    return FlushMemtable();
  }
  return 0;
}

std::optional<std::string> KvLsm::Get(const std::string& key) {
  ChargeAppCpu();
  auto mit = memtable_.find(key);
  if (mit != memtable_.end()) {
    return mit->second;
  }
  if (tombstones_.count(key) != 0) {
    return std::nullopt;
  }
  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    std::string value;
    bool deleted = false;
    if (LookupInTable(*it, key, &value, &deleted)) {
      if (deleted) {
        return std::nullopt;
      }
      return value;
    }
  }
  return std::nullopt;
}

int KvLsm::WriteTable(const std::map<std::string, std::string>& entries,
                      TableEntry* out) {
  out->path = dir_ + "/sst-" + std::to_string(next_table_) + ".sst";
  out->seq = next_table_++;
  int fd = fs_->Open(out->path, vfs::kRdWr | vfs::kCreate | vfs::kTrunc);
  if (fd < 0) {
    return fd;
  }
  // Blocks of ~block_bytes: [crc u32][count u32]([klen u32][vlen u32][key][val])*
  std::string block;
  std::string first_key;
  uint32_t count = 0;
  uint64_t file_off = 0;
  auto flush_block = [&]() -> int {
    if (count == 0) {
      return 0;
    }
    std::string full;
    Put32(&full, 0);
    Put32(&full, count);
    full.append(block);
    uint32_t crc = common::Crc32c(full.data() + 4, full.size() - 4);
    std::memcpy(full.data(), &crc, 4);
    ssize_t rc = fs_->Pwrite(fd, full.data(), full.size(), file_off);
    if (rc != static_cast<ssize_t>(full.size())) {
      return rc < 0 ? static_cast<int>(rc) : -EIO;
    }
    out->index[first_key] = {file_off, static_cast<uint32_t>(full.size())};
    file_off += full.size();
    block.clear();
    count = 0;
    return 0;
  };
  for (const auto& [key, value] : entries) {
    if (count == 0) {
      first_key = key;
    }
    Put32(&block, static_cast<uint32_t>(key.size()));
    Put32(&block, static_cast<uint32_t>(value.size()));
    block.append(key);
    block.append(value);
    ++count;
    if (block.size() >= opts_.sstable_block_bytes) {
      int rc = flush_block();
      if (rc != 0) {
        fs_->Close(fd);
        return rc;
      }
    }
  }
  int rc = flush_block();
  if (rc == 0) {
    rc = fs_->Fsync(fd);
  }
  fs_->Close(fd);
  return rc;
}

int KvLsm::FlushMemtable() {
  if (memtable_.empty() && tombstones_.empty()) {
    return 0;
  }
  // Deletions are encoded as "\x00DEL" sentinel values in the table.
  std::map<std::string, std::string> entries = memtable_;
  for (const auto& [key, dead] : tombstones_) {
    entries[key] = std::string("\x00" "DEL", 4);
  }
  TableEntry t;
  int rc = WriteTable(entries, &t);
  if (rc != 0) {
    return rc;
  }
  tables_.push_back(std::move(t));
  ++flushes_;

  // Retire the WAL and start a fresh one.
  std::string old_wal = dir_ + "/wal-" + std::to_string(next_wal_ - 1);
  fs_->Close(wal_fd_);
  fs_->Unlink(old_wal);
  wal_fd_ = fs_->Open(dir_ + "/wal-" + std::to_string(next_wal_++),
                      vfs::kRdWr | vfs::kCreate | vfs::kAppend);
  SPLITFS_CHECK(wal_fd_ >= 0);
  memtable_.clear();
  tombstones_.clear();
  memtable_bytes_ = 0;
  return MaybeCompact();
}

int KvLsm::MaybeCompact() {
  if (static_cast<int>(tables_.size()) < opts_.l0_compaction_trigger) {
    return 0;
  }
  // Merge every table (newest shadows oldest) into one.
  std::map<std::string, std::string> merged;
  std::map<std::string, bool> dead;
  for (const auto& t : tables_) {  // Oldest first; later tables overwrite.
    LoadTableForScan(t, &merged, &dead);
  }
  for (const auto& [key, flag] : dead) {
    merged.erase(key);
  }
  TableEntry t;
  int rc = WriteTable(merged, &t);
  if (rc != 0) {
    return rc;
  }
  for (auto& old : tables_) {
    if (old.fd >= 0) {
      fs_->Close(old.fd);
    }
    fs_->Unlink(old.path);
  }
  tables_.clear();
  tables_.push_back(std::move(t));
  ++compactions_;
  return 0;
}

bool KvLsm::LookupInTable(TableEntry& t, const std::string& key,
                          std::string* value, bool* deleted) {
  auto it = t.index.upper_bound(key);
  if (it == t.index.begin()) {
    return false;
  }
  --it;
  auto [off, len] = it->second;
  std::vector<uint8_t> block(len);
  if (t.fd < 0) {
    t.fd = fs_->Open(t.path, vfs::kRdOnly);  // Cached afterwards (LevelDB table cache).
    if (t.fd < 0) {
      return false;
    }
  }
  ssize_t rc = fs_->Pread(t.fd, block.data(), len, off);
  if (rc != static_cast<ssize_t>(len)) {
    return false;
  }
  uint32_t crc = Get32(block.data());
  SPLITFS_CHECK(crc == common::Crc32c(block.data() + 4, len - 4));
  uint32_t count = Get32(block.data() + 4);
  size_t pos = 8;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t klen = Get32(block.data() + pos);
    uint32_t vlen = Get32(block.data() + pos + 4);
    pos += 8;
    std::string_view k(reinterpret_cast<const char*>(block.data() + pos), klen);
    pos += klen;
    std::string_view v(reinterpret_cast<const char*>(block.data() + pos), vlen);
    pos += vlen;
    if (k == key) {
      *deleted = v == std::string_view("\x00" "DEL", 4);
      value->assign(v);
      return true;
    }
  }
  return false;
}

void KvLsm::LoadTableForScan(const TableEntry& t, std::map<std::string, std::string>* into,
                             std::map<std::string, bool>* tombs) {
  int fd = fs_->Open(t.path, vfs::kRdOnly);
  if (fd < 0) {
    return;
  }
  for (const auto& [first_key, loc] : t.index) {
    auto [off, len] = loc;
    std::vector<uint8_t> block(len);
    if (fs_->Pread(fd, block.data(), len, off) != static_cast<ssize_t>(len)) {
      continue;
    }
    uint32_t count = Get32(block.data() + 4);
    size_t pos = 8;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t klen = Get32(block.data() + pos);
      uint32_t vlen = Get32(block.data() + pos + 4);
      pos += 8;
      std::string k(reinterpret_cast<const char*>(block.data() + pos), klen);
      pos += klen;
      std::string v(reinterpret_cast<const char*>(block.data() + pos), vlen);
      pos += vlen;
      if (v == std::string("\x00" "DEL", 4)) {
        tombs->emplace(k, true);
        into->erase(k);
      } else {
        (*into)[k] = std::move(v);
        tombs->erase(k);
      }
    }
  }
  fs_->Close(fd);
}

std::vector<std::pair<std::string, std::string>> KvLsm::Scan(const std::string& start,
                                                             size_t limit) {
  // Merge view: tables oldest->newest, then the memtable, then drop tombstones.
  std::map<std::string, std::string> merged;
  std::map<std::string, bool> dead;
  for (const auto& t : tables_) {
    LoadTableForScan(t, &merged, &dead);
  }
  for (const auto& [k, v] : memtable_) {
    merged[k] = v;
  }
  for (const auto& [k, flag] : tombstones_) {
    merged.erase(k);
  }
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = merged.lower_bound(start); it != merged.end() && out.size() < limit;
       ++it) {
    out.push_back(*it);
  }
  return out;
}

int KvLsm::RecoverFromDisk() {
  // Rebuild table list and replay any WAL found in the directory.
  std::vector<std::string> names;
  if (fs_->ReadDir(dir_, &names) != 0) {
    return 0;  // Fresh directory.
  }
  std::vector<std::string> wals;
  std::vector<std::string> ssts;
  for (const auto& n : names) {
    if (n.rfind("sst-", 0) == 0) {
      ssts.push_back(n);
    } else if (n.rfind("wal-", 0) == 0) {
      wals.push_back(n);
    }
  }
  std::sort(ssts.begin(), ssts.end(), [](const std::string& a, const std::string& b) {
    return std::stoull(a.substr(4)) < std::stoull(b.substr(4));
  });
  for (const auto& n : ssts) {
    // Rebuild the block index by scanning the table.
    TableEntry t;
    t.path = dir_ + "/" + n;
    t.seq = std::stoull(n.substr(4));
    next_table_ = std::max<uint64_t>(next_table_, t.seq + 1);
    int fd = fs_->Open(t.path, vfs::kRdOnly);
    if (fd < 0) {
      continue;
    }
    vfs::StatBuf st;
    fs_->Fstat(fd, &st);
    uint64_t off = 0;
    std::vector<uint8_t> header(8);
    while (off + 8 <= st.size) {
      if (fs_->Pread(fd, header.data(), 8, off) != 8) {
        break;
      }
      uint32_t count = Get32(header.data() + 4);
      // Walk the block to find its length and first key.
      // Blocks were written back-to-back; reconstruct by parsing entries.
      uint64_t pos = off + 8;
      std::string first_key;
      std::vector<uint8_t> lenbuf(8);
      for (uint32_t i = 0; i < count; ++i) {
        if (fs_->Pread(fd, lenbuf.data(), 8, pos) != 8) {
          break;
        }
        uint32_t klen = Get32(lenbuf.data());
        uint32_t vlen = Get32(lenbuf.data() + 4);
        if (i == 0) {
          first_key.resize(klen);
          fs_->Pread(fd, first_key.data(), klen, pos + 8);
        }
        pos += 8 + klen + vlen;
      }
      t.index[first_key] = {off, static_cast<uint32_t>(pos - off)};
      off = pos;
    }
    fs_->Close(fd);
    tables_.push_back(std::move(t));
  }
  std::sort(tables_.begin(), tables_.end(),
            [](const TableEntry& a, const TableEntry& b) { return a.seq < b.seq; });

  // Replay WALs in order.
  std::sort(wals.begin(), wals.end(), [](const std::string& a, const std::string& b) {
    return std::stoull(a.substr(4)) < std::stoull(b.substr(4));
  });
  for (const auto& n : wals) {
    next_wal_ = std::max<uint64_t>(next_wal_, std::stoull(n.substr(4)) + 1);
    std::string path = dir_ + "/" + n;
    int fd = fs_->Open(path, vfs::kRdOnly);
    if (fd < 0) {
      continue;
    }
    vfs::StatBuf st;
    fs_->Fstat(fd, &st);
    uint64_t off = 0;
    std::vector<uint8_t> hdr(13);
    while (off + 13 <= st.size) {
      if (fs_->Pread(fd, hdr.data(), 13, off) != 13) {
        break;
      }
      uint32_t crc = Get32(hdr.data());
      uint8_t op = hdr[4];
      uint32_t klen = Get32(hdr.data() + 5);
      uint32_t vlen = Get32(hdr.data() + 9);
      if (off + 13 + klen + vlen > st.size) {
        break;  // Torn tail record.
      }
      std::vector<uint8_t> body(9 + klen + vlen);
      fs_->Pread(fd, body.data(), body.size(), off + 4);
      if (crc != common::Crc32c(body.data(), body.size())) {
        break;  // Torn record: stop replay here, as LevelDB does.
      }
      std::string key(reinterpret_cast<char*>(body.data() + 9), klen);
      std::string value(reinterpret_cast<char*>(body.data() + 9 + klen), vlen);
      if (op == kOpPut) {
        memtable_[key] = value;
        tombstones_.erase(key);
        memtable_bytes_ += key.size() + value.size() + 32;
      } else if (op == kOpDelete) {
        memtable_.erase(key);
        tombstones_[key] = true;
      }
      off += 13 + klen + vlen;
    }
    fs_->Close(fd);
    // Continue appending to the newest WAL; older ones are folded into the memtable.
    if (&n == &wals.back()) {
      wal_fd_ = fs_->Open(path, vfs::kRdWr | vfs::kAppend);
    } else {
      fs_->Unlink(path);
    }
  }
  return 0;
}

}  // namespace apps
