#include "src/nova/nova.h"

#include <array>
#include <cstring>
#include <vector>

#include "src/common/bytes.h"

namespace novasim {

using common::kBlockSize;
using common::kCacheLineSize;

namespace {
constexpr uint64_t kLogRegionBlocks = 4096;  // 16 MB of per-inode log space.
}

Nova::Nova(pmem::Device* dev, bool strict)
    : PmFsBase(dev, kLogRegionBlocks), strict_(strict) {}

void Nova::AppendLogEntry(BaseInode* inode) {
  // Log entry (one cache line), fence, then the persisted tail pointer (second line),
  // fence again: the "at least two cache lines and two fences" of §3.3.
  static const std::array<uint8_t, kCacheLineSize> entry{};
  if (log_cursor_ + 2 * kCacheLineSize > meta_region_bytes_) {
    log_cursor_ = 0;
  }
  ctx_->ChargeCpu(ctx_->model.nova_log_cpu_ns);
  dev_->StoreNt(meta_region_start_ + log_cursor_, entry.data(), kCacheLineSize,
                sim::PmWriteKind::kLog);
  dev_->Fence();
  log_cursor_ += kCacheLineSize;
  dev_->StoreNt(meta_region_start_ + log_cursor_, entry.data(), 8,
                sim::PmWriteKind::kLog);
  dev_->Fence();
  log_cursor_ += kCacheLineSize;
}

ssize_t Nova::WriteCow(BaseInode* inode, const void* buf, uint64_t n, uint64_t off,
                       std::vector<ext4sim::PhysExtent>* fresh_out) {
  // Copy-on-write: fresh blocks for the whole covered range; partial head/tail blocks
  // merge old contents (read-modify-write), then the old blocks are freed.
  uint64_t first = off / kBlockSize;
  uint64_t last = (off + n - 1) / kBlockSize;
  uint64_t nblocks = last - first + 1;

  ctx_->ChargeCpu(ctx_->model.nova_alloc_cpu_ns);
  std::vector<ext4sim::PhysExtent> fresh;
  if (!alloc_.AllocateBlocks(nblocks, &fresh)) {
    return -ENOSPC;
  }

  // Build the new block contents: old data merged with the write.
  std::vector<uint8_t> block(kBlockSize);
  const auto* src = static_cast<const uint8_t*>(buf);
  uint64_t fresh_idx = 0, fresh_used = 0;
  for (uint64_t lb = first; lb <= last; ++lb) {
    uint64_t block_start = lb * kBlockSize;
    uint64_t copy_from = std::max(off, block_start);
    uint64_t copy_to = std::min(off + n, block_start + kBlockSize);
    bool partial = copy_from != block_start || copy_to != block_start + kBlockSize;
    if (partial) {
      auto old = inode->extents.Lookup(lb);
      if (old && block_start < inode->size) {
        dev_->Load(old->phys * kBlockSize, block.data(), kBlockSize,
                   /*sequential=*/true, sim::PmReadKind::kLog);
      } else {
        std::memset(block.data(), 0, kBlockSize);
      }
      std::memcpy(block.data() + (copy_from - block_start), src, copy_to - copy_from);
    } else {
      std::memcpy(block.data(), src, kBlockSize);
    }
    src += copy_to - copy_from;

    uint64_t phys = fresh[fresh_idx].start + fresh_used;
    dev_->StoreNt(phys * kBlockSize, block.data(), kBlockSize,
                  sim::PmWriteKind::kUserData);
    if (++fresh_used == fresh[fresh_idx].count) {
      ++fresh_idx;
      fresh_used = 0;
    }
  }

  *fresh_out = std::move(fresh);
  return static_cast<ssize_t>(n);
}

void Nova::InstallCow(BaseInode* inode, uint64_t off, uint64_t n,
                      const std::vector<ext4sim::PhysExtent>& fresh) {
  uint64_t first = off / kBlockSize;
  uint64_t last = (off + n - 1) / kBlockSize;
  uint64_t nblocks = last - first + 1;
  for (const auto& e : inode->extents.RemoveRange(first, nblocks)) {
    alloc_.Free(e);
  }
  uint64_t lb = first;
  for (const auto& e : fresh) {
    inode->extents.Insert(lb, e.start, e.count);
    lb += e.count;
  }
}

ssize_t Nova::WriteData(BaseInode* inode, const void* buf, uint64_t n, uint64_t off) {
  ctx_->ChargeCpu(ctx_->model.nova_write_path_ns);
  bool extends = off + n > inode->size;

  if (strict_ || extends) {
    // Strict always COWs; appends allocate fresh blocks in both flavors.
    std::vector<ext4sim::PhysExtent> fresh;
    ssize_t rc = WriteCow(inode, buf, n, off, &fresh);
    if (rc < 0) {
      return rc;
    }
    // Crash ordering: the COW blocks persist at the log entry's fences, and only
    // then does the mapping adopt them — a crash mid-operation must leave the old
    // (durable) blocks reachable, never a fresh block that might not have drained.
    AppendLogEntry(inode);  // write entry + tail, two fences.
    InstallCow(inode, off, n, fresh);
    if (extends) {
      inode->size = off + n;
    }
  } else {
    // Relaxed: in-place data update plus the per-op log append (§5.7: paying the log
    // update on every in-place write is what gives NOVA-relaxed its TPCC overhead).
    // The data stores go first so the log entry's fences also persist them — an
    // acknowledged relaxed write is durable, it just isn't atomic.
    ssize_t rc = WriteExtentsInPlace(inode, buf, n, off, ctx_->model.nova_alloc_cpu_ns);
    if (rc < 0) {
      return rc;
    }
    AppendLogEntry(inode);  // write entry + tail, two fences.
  }
  ctx_->ChargeCpu(ctx_->model.nova_mem_bookkeep_ns);  // DRAM radix-tree update.
  return static_cast<ssize_t>(n);
}

ssize_t Nova::ReadData(BaseInode* inode, void* buf, uint64_t n, uint64_t off) {
  ctx_->ChargeCpu(ctx_->model.nova_mem_bookkeep_ns);  // Radix lookup.
  return ReadExtents(inode, buf, n, off);
}

int Nova::SyncFile(BaseInode* inode) {
  // All operations were synchronous; nothing to flush.
  dev_->Fence();
  return 0;
}

void Nova::OnMetadataOp(BaseInode* inode, const char* what) {
  // Namespace changes write a dirent log entry in the directory's log AND an inode
  // log entry (NOVA journals multi-inode ops with its lightweight journal), so a
  // metadata op costs two entry+tail appends plus setup CPU.
  ctx_->ChargeCpu(ctx_->model.nova_log_cpu_ns + ctx_->model.nova_write_path_ns / 2);
  if (inode != nullptr) {
    AppendLogEntry(inode);
    AppendLogEntry(inode);
  }
}

}  // namespace novasim
