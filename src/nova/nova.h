// NOVA baseline (Xu & Swanson, FAST'16), modeled.
//
// Design reproduced: per-inode logs on PM holding one entry per operation, per-CPU
// free-list allocation (near pointer-bump), DRAM radix tree for block lookup, and the
// two flavors the paper compares against (§3.2):
//   * NOVA-strict: copy-on-write data updates -> atomic + synchronous everything;
//   * NOVA-relaxed: in-place data updates (still logging the inode log entry first),
//     checksums off -> the PMFS-equivalent "sync" guarantee level.
// NOVA's logging writes at least two cache lines (log entry + tail pointer) and issues
// two fences per operation — the pattern SplitFS's single-line/single-fence op log is
// benchmarked against (§3.3).
#ifndef SRC_NOVA_NOVA_H_
#define SRC_NOVA_NOVA_H_

#include "src/vfs/pm_fs_base.h"

namespace novasim {

class Nova : public vfs::PmFsBase {
 public:
  // strict=true -> NOVA-strict (COW), strict=false -> NOVA-relaxed (in-place).
  Nova(pmem::Device* dev, bool strict);

  std::string Name() const override { return strict_ ? "NOVA-strict" : "NOVA-relaxed"; }
  bool strict() const { return strict_; }

 protected:
  ssize_t WriteData(BaseInode* inode, const void* buf, uint64_t n, uint64_t off) override;
  ssize_t ReadData(BaseInode* inode, void* buf, uint64_t n, uint64_t off) override;
  int SyncFile(BaseInode* inode) override;
  void OnMetadataOp(BaseInode* inode, const char* what) override;
  uint64_t OpenPathCost() const override { return ctx_->model.nova_open_path_ns; }
  uint64_t DirOpCost() const override { return ctx_->model.nova_dir_op_cpu_ns; }

 private:
  // Appends one entry to the inode's log: entry line + tail line, two fences.
  void AppendLogEntry(BaseInode* inode);
  // COW write covering whole blocks; merges partial head/tail blocks from old data
  // into freshly allocated blocks. Fills `fresh_out` but does NOT install the new
  // mapping: the caller adopts it with InstallCow only after the data has persisted
  // (NOVA orders data durability before the log entry commits the new mapping).
  ssize_t WriteCow(BaseInode* inode, const void* buf, uint64_t n, uint64_t off,
                   std::vector<ext4sim::PhysExtent>* fresh_out);
  // Swaps the covered range over to `fresh`, freeing the displaced blocks.
  void InstallCow(BaseInode* inode, uint64_t off, uint64_t n,
                  const std::vector<ext4sim::PhysExtent>& fresh);

  bool strict_;
  uint64_t log_cursor_ = 0;
};

}  // namespace novasim

#endif  // SRC_NOVA_NOVA_H_
