#include "src/analysis/lock_witness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace analysis {

namespace {

// Process-wide site registry: annotation sites intern their names once into
// static ids, independent of which witness instance (global or test-local) is
// active when the annotation runs.
struct SiteRegistry {
  std::mutex mu;
  std::map<std::string, int> ids;
  std::vector<std::string> names;
};

SiteRegistry& Registry() {
  static SiteRegistry* r = new SiteRegistry();  // Leaked: outlives static dtors.
  return *r;
}

bool EnvAnalysisOn() {
  const char* v = std::getenv("SPLITFS_ANALYSIS");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

std::mutex g_global_mu;
LockWitness* g_override = nullptr;
bool g_override_set = false;

}  // namespace

int LockWitness::RegisterSite(const std::string& name) {
  SiteRegistry& r = Registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto [it, inserted] = r.ids.try_emplace(name, static_cast<int>(r.names.size()));
  if (inserted) {
    r.names.push_back(name);
  }
  return it->second;
}

std::string LockWitness::SiteName(int site) {
  SiteRegistry& r = Registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (site < 0 || site >= static_cast<int>(r.names.size())) {
    return "<unknown-site>";
  }
  return r.names[site];
}

int LockSite(const std::string& name) { return LockWitness::RegisterSite(name); }

LockWitness* LockWitness::Global() {
  {
    std::lock_guard<std::mutex> lock(g_global_mu);
    if (g_override_set) {
      return g_override;
    }
  }
  // Env gating decided once: tests that want a different mode install an
  // override before touching any annotated path.
  static LockWitness* env_witness =
      EnvAnalysisOn() ? new LockWitness(Mode::kHalt) : nullptr;
  return env_witness;
}

void LockWitness::SetGlobalForTest(LockWitness* w) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  g_override = w;
  g_override_set = (w != nullptr);
}

void LockWitness::Acquire(int site, uint64_t order_key, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Held>& stack = stacks_[std::this_thread::get_id()];
  if (kind == Kind::kBlocking) {
    for (const Held& held : stack) {
      if (held.site == site) {
        // Same-site nesting: the only legal pattern is a strictly ascending
        // order-key discipline (two-inode locks by ascending ino, multi-shard
        // locks by ascending index). Key 0 opts out.
        if (held.order_key != 0 && order_key != 0 && order_key <= held.order_key) {
          ReportLocked(
              "order",
              SiteName(site) + ": acquired key " + std::to_string(order_key) +
                  " while holding key " + std::to_string(held.order_key) +
                  " (same-site nesting must use strictly ascending keys)");
        }
      } else {
        AddEdgeLocked(held.site, site);
      }
    }
  }
  stack.push_back({site, order_key, kind});
}

void LockWitness::Release(int site, uint64_t order_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stacks_.find(std::this_thread::get_id());
  if (it == stacks_.end()) {
    return;
  }
  std::vector<Held>& stack = it->second;
  for (auto rit = stack.rbegin(); rit != stack.rend(); ++rit) {
    if (rit->site == site && rit->order_key == order_key) {
      stack.erase(std::next(rit).base());
      break;
    }
  }
  if (stack.empty()) {
    stacks_.erase(it);
  }
}

void LockWitness::AddEdgeLocked(int from, int to) {
  auto [it, inserted] = edges_[from].insert(to);
  (void)it;
  if (!inserted) {
    return;  // Known edge: already checked when first recorded.
  }
  std::vector<int> path;
  if (PathExistsLocked(to, from, &path)) {
    std::string detail = SiteName(from);
    for (int node : path) {
      detail += " -> " + SiteName(node);
    }
    detail += " -> " + SiteName(from);
    ReportLocked("cycle", detail);
  }
}

bool LockWitness::PathExistsLocked(int from, int target,
                                   std::vector<int>* path) const {
  path->push_back(from);
  if (from == target) {
    return true;
  }
  auto it = edges_.find(from);
  if (it != edges_.end()) {
    for (int next : it->second) {
      // The graph is small (dozens of sites); plain DFS with the path as the
      // visited set is enough and yields the cycle for the report.
      bool on_path = false;
      for (int node : *path) {
        if (node == next) {
          on_path = true;
          break;
        }
      }
      if (on_path && next != target) {
        continue;
      }
      if (next == target) {
        return true;
      }
      if (PathExistsLocked(next, target, path)) {
        return true;
      }
    }
  }
  path->pop_back();
  return false;
}

void LockWitness::ReportLocked(const std::string& kind, const std::string& detail) {
  violations_.push_back({kind, detail});
  if (mode_ == Mode::kHalt) {
    std::fprintf(stderr, "\n[analysis] LockWitness %s violation:\n  %s\n",
                 kind.c_str(), detail.c_str());
    std::fprintf(stderr, "[analysis] accumulated lock-order edges:\n");
    for (const auto& [from, tos] : edges_) {
      for (int to : tos) {
        std::fprintf(stderr, "  %s -> %s\n", SiteName(from).c_str(),
                     SiteName(to).c_str());
      }
    }
    std::abort();
  }
}

std::vector<LockWitness::Violation> LockWitness::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_;
}

size_t LockWitness::violation_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_.size();
}

size_t LockWitness::edge_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [from, tos] : edges_) {
    (void)from;
    n += tos.size();
  }
  return n;
}

std::vector<std::string> LockWitness::EdgeList() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [from, tos] : edges_) {
    for (int to : tos) {
      out.push_back(SiteName(from) + " -> " + SiteName(to));
    }
  }
  return out;
}

}  // namespace analysis
