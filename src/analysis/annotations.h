// Annotation entry points for the persistence-ordering checker. Call sites
// (op log append, journal commit writeout, staged-write/publish paths) declare
// their durability contracts through these helpers; every helper is a single
// null-pointer branch when no checker is installed on the device (the default),
// so annotated code costs nothing and stays bit-identical in normal builds.
//
// See src/analysis/persist_checker.h for rule semantics and README
// "Analysis & sanitizers" for how to read a violation report.
#ifndef SRC_ANALYSIS_ANNOTATIONS_H_
#define SRC_ANALYSIS_ANNOTATIONS_H_

#include "src/analysis/persist_checker.h"
#include "src/pmem/device.h"

namespace analysis {

// Rule (a): record that the next durability point for `key` (U-Split: the file
// ino) acknowledges the durability of device bytes [off, off+n).
inline void AddDep(pmem::Device* dev, uint64_t key, uint64_t off, uint64_t n) {
  if (PersistChecker* pc = dev->persist_checker()) {
    pc->AddDep(key, off, n);
  }
}

// The staged bytes left the contract without a durability point (published,
// truncated, unlinked): forget any dep intersecting the range.
inline void DropDeps(pmem::Device* dev, uint64_t key, uint64_t off, uint64_t n) {
  if (PersistChecker* pc = dev->persist_checker()) {
    pc->DropDeps(key, off, n);
  }
}

inline void DropAllDeps(pmem::Device* dev, uint64_t key) {
  if (PersistChecker* pc = dev->persist_checker()) {
    pc->DropAllDeps(key);
  }
}

// Rule (a): fsync/close-style ack point — everything registered for `key` must
// be flushed+fenced now; the dep set clears.
inline void DurabilityPoint(pmem::Device* dev, uint64_t key, const char* site) {
  if (PersistChecker* pc = dev->persist_checker()) {
    pc->DurabilityPoint(key, site);
  }
}

// Rule (a), immediate form.
inline void RequireDurable(pmem::Device* dev, uint64_t off, uint64_t n,
                           const char* site) {
  if (PersistChecker* pc = dev->persist_checker()) {
    pc->RequireDurable(off, n, site);
  }
}

// Rule (b): declare payload bytes the next sealed record covers (per-thread).
inline void CoverPayload(pmem::Device* dev, uint64_t off, uint64_t n) {
  if (PersistChecker* pc = dev->persist_checker()) {
    pc->CoverPayload(off, n);
  }
}

// Rule (b): the record at [rec_off, rec_off+rec_len) covers the declared
// payload. `strict` = payload must persist at an earlier fence than the record
// (jbd2 commit record); non-strict allows the op log's shared single fence.
inline void SealCover(pmem::Device* dev, uint64_t rec_off, uint64_t rec_len,
                      bool strict, const char* site) {
  if (PersistChecker* pc = dev->persist_checker()) {
    pc->SealCover(rec_off, rec_len, strict, site);
  }
}

inline void AbandonCover(pmem::Device* dev) {
  if (PersistChecker* pc = dev->persist_checker()) {
    pc->AbandonCover();
  }
}

}  // namespace analysis

#endif  // SRC_ANALYSIS_ANNOTATIONS_H_
