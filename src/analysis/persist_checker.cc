#include "src/analysis/persist_checker.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/common/bytes.h"
#include "src/obs/metrics.h"

namespace analysis {

using common::kCacheLineSize;

namespace {
thread_local const char* t_lint_site = nullptr;
}  // namespace

ScopedLintSite::ScopedLintSite(const char* site) : prev_(t_lint_site) {
  t_lint_site = site;
}
ScopedLintSite::~ScopedLintSite() { t_lint_site = prev_; }

void PersistChecker::SetLintSite(const char* site) { t_lint_site = site; }

const char* PersistChecker::LintSiteOrDefault() const {
  return t_lint_site != nullptr ? t_lint_site : "unannotated";
}

PersistChecker::PersistChecker(Mode mode, obs::MetricsRegistry* metrics)
    : mode_(mode), metrics_(metrics) {
  if (metrics_ != nullptr) {
    metrics_->RegisterGauge("analysis.redundant_flush_total",
                            [this] { return redundant_flushes(); });
    metrics_->RegisterGauge("analysis.empty_fence_total",
                            [this] { return empty_fences(); });
    metrics_->RegisterGauge("analysis.persist_violations",
                            [this] { return static_cast<uint64_t>(violation_count()); });
  }
}

PersistChecker::~PersistChecker() {
  if (metrics_ != nullptr) {
    metrics_->DeregisterGauges("analysis.");
  }
}

void PersistChecker::ForEachLineLocked(
    uint64_t off, uint64_t n, const std::function<void(uint64_t)>& fn) const {
  if (n == 0) {
    return;
  }
  uint64_t first = off / kCacheLineSize;
  uint64_t last = (off + n - 1) / kCacheLineSize;
  for (uint64_t line = first; line <= last; ++line) {
    fn(line);
  }
}

void PersistChecker::OnStore(uint64_t off, uint64_t n, bool persists_at_fence) {
  std::lock_guard<std::mutex> lock(mu_);
  ForEachLineLocked(off, n, [&](uint64_t line) {
    LineInfo& info = lines_[line];
    info.pending = true;
    // Mirrors Device::TrackStore: a temporal store to an already-flushed pending
    // line re-dirties it (the flush covered the old contents, not these bytes).
    info.flushed = persists_at_fence;
    if (persists_at_fence) {
      armed_.insert(line);
    } else {
      armed_.erase(line);
    }
  });
}

void PersistChecker::OnClwb(uint64_t off, uint64_t n) {
  bool register_gauge = false;
  std::string site;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool any_effect = false;
    ForEachLineLocked(off, n, [&](uint64_t line) {
      auto it = lines_.find(line);
      if (it != lines_.end() && it->second.pending && !it->second.flushed) {
        it->second.flushed = true;
        armed_.insert(line);
        any_effect = true;
      }
    });
    if (any_effect) {
      return;
    }
    site = LintSiteOrDefault();
    ++redundant_flushes_;
    ++redundant_by_site_[site];
    register_gauge =
        metrics_ != nullptr && gauged_sites_.insert("rf:" + site).second;
  }
  // Registered outside mu_: Snapshot evaluates gauges under the registry's own
  // mutex, so the only permitted lock order is registry -> checker.
  if (register_gauge) {
    metrics_->RegisterGauge("analysis.redundant_flush." + site, [this, site] {
      std::lock_guard<std::mutex> l(mu_);
      auto it = redundant_by_site_.find(site);
      return it == redundant_by_site_.end() ? uint64_t{0} : it->second;
    });
  }
}

void PersistChecker::OnFence(uint64_t epoch) {
  (void)epoch;  // The shadow keeps its own ordinal; the device epoch is shared
                // with crash injection and may skip notifications on unwind.
  bool register_gauge = false;
  std::string site;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++fence_ordinal_;
    if (armed_.empty()) {
      site = LintSiteOrDefault();
      ++empty_fences_;
      ++empty_by_site_[site];
      register_gauge =
          metrics_ != nullptr && gauged_sites_.insert("ef:" + site).second;
    } else {
      for (uint64_t line : armed_) {
        LineInfo& info = lines_[line];
        info.pending = false;
        info.flushed = false;
        info.persist_epoch = fence_ordinal_;
      }
      armed_.clear();
    }
    ResolveCoversLocked(fence_ordinal_);
  }
  if (register_gauge) {
    metrics_->RegisterGauge("analysis.empty_fence." + site, [this, site] {
      std::lock_guard<std::mutex> l(mu_);
      auto it = empty_by_site_.find(site);
      return it == empty_by_site_.end() ? uint64_t{0} : it->second;
    });
  }
}

void PersistChecker::OnCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.clear();
  armed_.clear();
  deps_.clear();
  open_covers_.clear();
  sealed_covers_.clear();
}

bool PersistChecker::RangeDurableLocked(const Range& r,
                                        uint64_t* first_volatile) const {
  bool ok = true;
  ForEachLineLocked(r.off, r.len, [&](uint64_t line) {
    if (!ok) {
      return;
    }
    auto it = lines_.find(line);
    if (it != lines_.end() && it->second.pending) {
      ok = false;
      if (first_volatile != nullptr) {
        *first_volatile = line;
      }
    }
  });
  return ok;
}

void PersistChecker::AddDep(uint64_t key, uint64_t off, uint64_t n) {
  if (n == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  deps_[key].push_back({off, n});
}

void PersistChecker::DropDeps(uint64_t key, uint64_t off, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = deps_.find(key);
  if (it == deps_.end()) {
    return;
  }
  auto& ranges = it->second;
  ranges.erase(std::remove_if(ranges.begin(), ranges.end(),
                              [&](const Range& r) {
                                return r.off < off + n && off < r.off + r.len;
                              }),
               ranges.end());
  if (ranges.empty()) {
    deps_.erase(it);
  }
}

void PersistChecker::DropAllDeps(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  deps_.erase(key);
}

void PersistChecker::DurabilityPoint(uint64_t key, const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = deps_.find(key);
  if (it == deps_.end()) {
    return;
  }
  for (const Range& r : it->second) {
    uint64_t line = 0;
    if (!RangeDurableLocked(r, &line)) {
      ReportLocked("acked_but_volatile", site,
                   "durability point reached with depended-on line " +
                       std::to_string(line) + " (dev range [" +
                       std::to_string(r.off) + ", " +
                       std::to_string(r.off + r.len) +
                       ")) not flushed+fenced — acked but volatile");
    }
  }
  deps_.erase(it);
}

void PersistChecker::RequireDurable(uint64_t off, uint64_t n, const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t line = 0;
  if (!RangeDurableLocked({off, n}, &line)) {
    ReportLocked("acked_but_volatile", site,
                 "required-durable range [" + std::to_string(off) + ", " +
                     std::to_string(off + n) + ") has unpersisted line " +
                     std::to_string(line));
  }
}

void PersistChecker::CoverPayload(uint64_t off, uint64_t n) {
  if (n == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  open_covers_[std::this_thread::get_id()].payload.push_back({off, n});
}

void PersistChecker::SealCover(uint64_t rec_off, uint64_t rec_len, bool strict,
                               const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  Cover cover;
  auto it = open_covers_.find(std::this_thread::get_id());
  if (it != open_covers_.end()) {
    cover = std::move(it->second);
    open_covers_.erase(it);
  }
  cover.record = {rec_off, rec_len};
  cover.strict = strict;
  cover.site = site;
  sealed_covers_.push_back(std::move(cover));
}

void PersistChecker::AbandonCover() {
  std::lock_guard<std::mutex> lock(mu_);
  open_covers_.erase(std::this_thread::get_id());
}

void PersistChecker::ResolveCoversLocked(uint64_t fence_ordinal) {
  for (auto it = sealed_covers_.begin(); it != sealed_covers_.end();) {
    // A cover resolves at the fence that makes its record fully persistent.
    if (!RangeDurableLocked(it->record, nullptr)) {
      ++it;
      continue;
    }
    uint64_t record_epoch = 0;
    ForEachLineLocked(it->record.off, it->record.len, [&](uint64_t line) {
      auto li = lines_.find(line);
      if (li != lines_.end()) {
        record_epoch = std::max(record_epoch, li->second.persist_epoch);
      }
    });
    for (const Range& p : it->payload) {
      bool bad = false;
      uint64_t bad_line = 0;
      ForEachLineLocked(p.off, p.len, [&](uint64_t line) {
        if (bad) {
          return;
        }
        auto li = lines_.find(line);
        if (li == lines_.end()) {
          return;  // Never stored: durable since forever.
        }
        if (li->second.pending) {
          bad = true;  // Record durable, payload still volatile.
          bad_line = line;
        } else if (it->strict && li->second.persist_epoch >= record_epoch) {
          bad = true;  // Payload persisted at (or after) the record's fence.
          bad_line = line;
        }
      });
      if (bad) {
        ReportLocked(
            "publish_before_persist", it->site,
            std::string("record at [") + std::to_string(it->record.off) + ", " +
                std::to_string(it->record.off + it->record.len) +
                ") persisted at fence " + std::to_string(record_epoch) +
                (it->strict ? " without its payload strictly before it"
                            : " while its payload is still volatile") +
                " (payload line " + std::to_string(bad_line) + ", fence " +
                std::to_string(fence_ordinal) + ")");
      }
    }
    it = sealed_covers_.erase(it);
  }
}

void PersistChecker::ReportLocked(const char* rule, const std::string& site,
                                  const std::string& detail) {
  violations_.push_back({rule, site, detail});
  if (mode_ == Mode::kHalt) {
    std::fprintf(stderr, "\n[analysis] PersistChecker %s violation at %s:\n  %s\n",
                 rule, site.c_str(), detail.c_str());
    std::abort();
  }
}

std::vector<PersistChecker::Violation> PersistChecker::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_;
}

size_t PersistChecker::violation_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_.size();
}

uint64_t PersistChecker::redundant_flushes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return redundant_flushes_;
}

uint64_t PersistChecker::empty_fences() const {
  std::lock_guard<std::mutex> lock(mu_);
  return empty_fences_;
}

std::map<std::string, uint64_t> PersistChecker::redundant_flushes_by_site() const {
  std::lock_guard<std::mutex> lock(mu_);
  return redundant_by_site_;
}

std::map<std::string, uint64_t> PersistChecker::empty_fences_by_site() const {
  std::lock_guard<std::mutex> lock(mu_);
  return empty_by_site_;
}

}  // namespace analysis
