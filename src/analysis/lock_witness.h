// LockWitness: a witness-style runtime lock-order checker (FreeBSD WITNESS,
// lockdep). Every annotated acquisition site registers the edges "site already
// held -> site being acquired" in a process-global order graph keyed by static
// site id; a cycle in the accumulated graph is a lock-order violation and is
// reported the moment the closing edge is inserted — even if no schedule ever
// produced the actual deadlock. This turns the lock-hierarchy comments in
// split_fs.h / ext4_dax.h / journal.h into a checked invariant.
//
// Semantics:
//   * Blocking acquisitions add an edge from every lock currently held by the
//     thread (however that lock was acquired) to the new lock: holding A while
//     blocking on B is the half of a deadlock the graph records.
//   * Try-acquisitions (and ResourceStamp brackets, which never block) add NO
//     edges — a try-lock cannot deadlock — but stay on the held stack so later
//     blocking acquisitions still record edges out of them. This is what keeps
//     the strict checkpoint's try-lock sweep (checkpoint_mu_ held, file range
//     locks tried) from reporting the false cycle range_lock -> checkpoint ->
//     range_lock.
//   * Same-site nested blocking acquisitions (two inode locks at one call site)
//     are checked for strictly ascending order keys when both carry a nonzero
//     key — the ascending-ino / ascending-shard disciplines become violations
//     when inverted. Key 0 opts a site out of the same-site check.
//
// The witness never touches the virtual clock: enabling it cannot move a single
// timeline charge. Disabled (the default), every annotation is one null-pointer
// branch.
//
// Enable process-wide with SPLITFS_ANALYSIS=1 (violations print and abort, like
// TSAN_OPTIONS=halt_on_error=1) or construct a private kCollect instance in a
// test and inspect violations().
#ifndef SRC_ANALYSIS_LOCK_WITNESS_H_
#define SRC_ANALYSIS_LOCK_WITNESS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace analysis {

class LockWitness {
 public:
  enum class Mode {
    kCollect,  // Accumulate violations; tests inspect them.
    kHalt,     // Print the report and abort() on the first violation.
  };

  explicit LockWitness(Mode mode = Mode::kCollect) : mode_(mode) {}

  // Process-global witness, or nullptr when analysis mode is off. Enabled by
  // SPLITFS_ANALYSIS=1 in the environment (kHalt) or EnableGlobalForTest.
  static LockWitness* Global();
  // Test hook: installs `w` as the global witness (nullptr restores env gating).
  static void SetGlobalForTest(LockWitness* w);

  // Interns an acquisition-site name -> dense site id. Thread-safe; idempotent.
  // The registry is process-wide (shared by every witness instance) so static
  // site ids taken at annotation sites stay valid across test-local witnesses.
  static int RegisterSite(const std::string& name);
  static std::string SiteName(int site);

  enum class Kind {
    kBlocking,  // mutex lock / shared_mutex lock / RangeLock::Lock.
    kTry,       // try_lock that succeeded, or a non-blocking ResourceStamp.
  };

  // Records an acquisition at `site` by the calling thread. `order_key` orders
  // same-site nested acquisitions (ino, shard index); 0 = unordered.
  void Acquire(int site, uint64_t order_key, Kind kind);
  // Pops the newest matching (site, order_key) entry off the thread's stack.
  void Release(int site, uint64_t order_key);

  struct Violation {
    std::string kind;    // "cycle" or "order".
    std::string detail;  // Human-readable path / key pair.
  };
  std::vector<Violation> violations() const;
  size_t violation_count() const;
  // Distinct edges accumulated so far (coverage introspection).
  size_t edge_count() const;
  // One line per edge, "from -> to", sorted (teardown report / debugging).
  std::vector<std::string> EdgeList() const;

 private:
  struct Held {
    int site;
    uint64_t order_key;
    Kind kind;
  };

  // Caller holds mu_. Adds the edge and runs cycle detection when it is new.
  void AddEdgeLocked(int from, int to);
  // Caller holds mu_. DFS: is `target` reachable from `from`?
  bool PathExistsLocked(int from, int target, std::vector<int>* path) const;
  void ReportLocked(const std::string& kind, const std::string& detail);

  Mode mode_;
  mutable std::mutex mu_;
  std::map<int, std::set<int>> edges_;
  std::map<std::thread::id, std::vector<Held>> stacks_;
  std::vector<Violation> violations_;
};

// RAII acquisition note. Place immediately after taking the lock, in the same
// scope; the destructor records the release. Inert when `w` is nullptr, so
//   analysis::ScopedLockNote note(analysis::LockWitness::Global(), kSite, ino);
// costs one branch in a default build.
class ScopedLockNote {
 public:
  ScopedLockNote(LockWitness* w, int site, uint64_t order_key = 0,
                 LockWitness::Kind kind = LockWitness::Kind::kBlocking)
      : w_(w), site_(site), key_(order_key) {
    if (w_ != nullptr) {
      w_->Acquire(site_, key_, kind);
    }
  }
  ~ScopedLockNote() {
    if (w_ != nullptr) {
      w_->Release(site_, key_);
    }
  }
  ScopedLockNote(const ScopedLockNote&) = delete;
  ScopedLockNote& operator=(const ScopedLockNote&) = delete;

 private:
  LockWitness* w_;
  int site_;
  uint64_t key_;
};

// Interns `name` once per call site:
//   static const int kSite = analysis::LockSite("usplit.checkpoint");
// Safe to call before main; registration goes to the global registry shared by
// every witness instance (site ids are process-wide).
int LockSite(const std::string& name);

}  // namespace analysis

#endif  // SRC_ANALYSIS_LOCK_WITNESS_H_
