// PersistChecker: a pmem::Device observer (PMTest / XFDetector style) that
// shadows every store's flush/fence lifecycle at cacheline granularity and
// enforces the durability contracts the code declares through the annotation
// API below. Three rules:
//
//  (a) "Acked but volatile": a byte range a durability point depends on (staged
//      data at fsync return, an op-log entry after its fence) must have been
//      flushed AND fenced by the time the point is reached. Checked by
//      RequireDurable / DurabilityPoint against the shadow line states.
//
//  (b) Publish-before-persist: a commit/done record must not become persistent
//      before the payload it covers. Declared with CoverPayload + SealCover;
//      resolved at the fence that makes the record durable. `strict` requires
//      the payload to have persisted at an EARLIER fence (jbd2's commit record);
//      non-strict allows payload and record to share one fence (the op log's
//      single-fence-per-operation design, §3.3).
//
//  (c) Performance lint: redundant flushes (a CLWB covering no line that needed
//      flushing) and empty fences (an SFENCE with nothing armed to persist),
//      counted per annotated call site (ScopedLintSite) and exported through
//      the obs metrics registry as analysis.redundant_flush.* /
//      analysis.empty_fence.* gauges.
//
// The checker performs no clock access whatsoever: enabling it does not move a
// single virtual-time charge, so checked runs keep bit-identical timelines.
// Installed automatically on every Device when SPLITFS_ANALYSIS=1 is set in the
// environment (kHalt: print + abort on the first violation), or constructed
// directly in kCollect mode by tests.
#ifndef SRC_ANALYSIS_PERSIST_CHECKER_H_
#define SRC_ANALYSIS_PERSIST_CHECKER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/pmem/device.h"

namespace obs {
class MetricsRegistry;
}

namespace analysis {

class PersistChecker : public pmem::DeviceObserver {
 public:
  enum class Mode {
    kCollect,  // Accumulate violations; tests inspect them.
    kHalt,     // Print the report and abort() on the first violation.
  };

  // `metrics`, when set, receives the per-site lint gauges (deregistered by the
  // "analysis." prefix in the destructor).
  explicit PersistChecker(Mode mode, obs::MetricsRegistry* metrics = nullptr);
  ~PersistChecker() override;

  // --- pmem::DeviceObserver ----------------------------------------------------------
  void OnStore(uint64_t off, uint64_t n, bool persists_at_fence) override;
  void OnClwb(uint64_t off, uint64_t n) override;
  void OnFence(uint64_t epoch) override;
  // Power loss: every pending line is decided by the crash harness; the shadow
  // state, open covers, and dependency sets reset with the DRAM they model.
  void OnCrash() override;

  // --- Annotation API ----------------------------------------------------------------
  // Rule (a). `key` scopes a dependency set (U-Split uses the file ino): writes
  // record the device ranges whose durability the file's next fsync/close will
  // acknowledge; the durability point checks and clears them. Ranges are dropped
  // when their staged bytes leave the contract some other way (published,
  // truncated, unlinked).
  void AddDep(uint64_t key, uint64_t off, uint64_t n);
  void DropDeps(uint64_t key, uint64_t off, uint64_t n);
  void DropAllDeps(uint64_t key);
  void DurabilityPoint(uint64_t key, const char* site);
  // Immediate form: [off, off+n) must be durable right now.
  void RequireDurable(uint64_t off, uint64_t n, const char* site);

  // Rule (b). CoverPayload accumulates payload ranges in a per-thread open
  // cover; SealCover closes it against the record at [rec_off, rec_off+rec_len)
  // and arms the check, resolved at the fence that persists the record.
  void CoverPayload(uint64_t off, uint64_t n);
  void SealCover(uint64_t rec_off, uint64_t rec_len, bool strict, const char* site);
  // Drops the calling thread's open (unsealed) cover, if any.
  void AbandonCover();

  // Rule (c): the lint site active for the calling thread (see ScopedLintSite).
  static void SetLintSite(const char* site);

  // --- Results -----------------------------------------------------------------------
  struct Violation {
    std::string rule;    // "acked_but_volatile" or "publish_before_persist".
    std::string site;
    std::string detail;
  };
  std::vector<Violation> violations() const;
  size_t violation_count() const;
  uint64_t redundant_flushes() const;
  uint64_t empty_fences() const;
  // Per-site lint counts ("<site>" -> count).
  std::map<std::string, uint64_t> redundant_flushes_by_site() const;
  std::map<std::string, uint64_t> empty_fences_by_site() const;

 private:
  struct LineInfo {
    bool pending = false;       // Stored, not yet persistent.
    bool flushed = false;       // Will persist at the next fence.
    uint64_t persist_epoch = 0; // Fence ordinal that made it durable (0 = never
                                // stored, durable since forever).
  };
  struct Range {
    uint64_t off;
    uint64_t len;
  };
  struct Cover {
    std::vector<Range> payload;
    Range record{0, 0};
    bool strict = false;
    std::string site;
  };

  // Caller holds mu_.
  void ForEachLineLocked(uint64_t off, uint64_t n,
                         const std::function<void(uint64_t)>& fn) const;
  bool RangeDurableLocked(const Range& r, uint64_t* first_volatile) const;
  void ReportLocked(const char* rule, const std::string& site,
                    const std::string& detail);
  void ResolveCoversLocked(uint64_t fence_ordinal);
  const char* LintSiteOrDefault() const;

  Mode mode_;
  obs::MetricsRegistry* metrics_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, LineInfo> lines_;
  std::unordered_set<uint64_t> armed_;  // pending && flushed: persist next fence.
  uint64_t fence_ordinal_ = 0;          // Fences observed (1-based after first).

  std::map<uint64_t, std::vector<Range>> deps_;           // key -> dep ranges.
  std::map<std::thread::id, Cover> open_covers_;          // Unsealed, per thread.
  std::vector<Cover> sealed_covers_;                      // Awaiting record fence.

  std::vector<Violation> violations_;
  uint64_t redundant_flushes_ = 0;
  uint64_t empty_fences_ = 0;
  std::map<std::string, uint64_t> redundant_by_site_;
  std::map<std::string, uint64_t> empty_by_site_;
  // Sites that already have registered gauges (lazily, on first count).
  std::unordered_set<std::string> gauged_sites_;
};

// RAII lint-site label: while alive, redundant flushes / empty fences observed
// on this thread are attributed to `site` instead of "unannotated". Nested
// scopes restore the outer site. Static (thread-local) — works across every
// checker instance the thread's stores reach.
class ScopedLintSite {
 public:
  explicit ScopedLintSite(const char* site);
  ~ScopedLintSite();
  ScopedLintSite(const ScopedLintSite&) = delete;
  ScopedLintSite& operator=(const ScopedLintSite&) = delete;

 private:
  const char* prev_;
};

}  // namespace analysis

#endif  // SRC_ANALYSIS_PERSIST_CHECKER_H_
