// Path normalization and splitting for the simulated file systems.
// Paths are absolute, '/'-separated; "." and ".." are resolved lexically.
#ifndef SRC_VFS_PATH_H_
#define SRC_VFS_PATH_H_

#include <string>
#include <vector>

namespace vfs {

// Splits "/a/b/c" into {"a","b","c"}, resolving "." and "..". Returns false for
// malformed paths (empty, relative, or ".." escaping the root).
bool SplitPath(const std::string& path, std::vector<std::string>* parts);

// Splits into (parent path, leaf name): "/a/b/c" -> ("/a/b", "c"). Root has no leaf.
bool SplitParent(const std::string& path, std::string* parent, std::string* leaf);

// Joins parts back into an absolute path.
std::string JoinPath(const std::vector<std::string>& parts);

}  // namespace vfs

#endif  // SRC_VFS_PATH_H_
