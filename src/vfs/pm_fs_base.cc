#include "src/vfs/pm_fs_base.h"

#include <algorithm>
#include <cstring>

#include "src/common/bytes.h"
#include "src/vfs/path.h"

namespace vfs {

using common::kBlockSize;

PmFsBase::PmFsBase(pmem::Device* dev, uint64_t meta_region_blocks)
    : dev_(dev),
      ctx_(dev->context()),
      alloc_(1 + meta_region_blocks,
             dev->size() / kBlockSize - 1 - meta_region_blocks),
      meta_region_start_(kBlockSize),
      meta_region_bytes_(meta_region_blocks * kBlockSize) {
  auto root = std::make_unique<BaseInode>();
  root->ino = kRootIno;
  root->type = FileType::kDirectory;
  root->nlink = 2;
  inodes_[kRootIno] = std::move(root);
}

PmFsBase::BaseInode* PmFsBase::GetInode(Ino ino) {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : it->second.get();
}

PmFsBase::BaseInode* PmFsBase::ResolvePath(const std::string& path) {
  std::vector<std::string> parts;
  if (!SplitPath(path, &parts)) {
    return nullptr;
  }
  BaseInode* cur = GetInode(kRootIno);
  for (const auto& name : parts) {
    if (cur == nullptr || cur->type != FileType::kDirectory) {
      return nullptr;
    }
    auto it = cur->dirents.find(name);
    if (it == cur->dirents.end()) {
      return nullptr;
    }
    cur = GetInode(it->second);
  }
  return cur;
}

PmFsBase::BaseInode* PmFsBase::ResolveParent(const std::string& path, std::string* leaf) {
  std::string parent;
  if (!SplitParent(path, &parent, leaf)) {
    return nullptr;
  }
  BaseInode* dir = ResolvePath(parent);
  return (dir != nullptr && dir->type == FileType::kDirectory) ? dir : nullptr;
}

Ino PmFsBase::AllocateInode(FileType type) {
  Ino ino = next_ino_++;
  auto inode = std::make_unique<BaseInode>();
  inode->ino = ino;
  inode->type = type;
  inode->nlink = type == FileType::kDirectory ? 2 : 1;
  inodes_[ino] = std::move(inode);
  return ino;
}

void PmFsBase::FreeInodeBlocks(BaseInode* inode) {
  for (const auto& e : inode->extents.Clear()) {
    alloc_.Free(e);
  }
}

int PmFsBase::Open(const std::string& path, int flags) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(OpenPathCost());
  BaseInode* inode = ResolvePath(path);
  if (inode == nullptr) {
    if ((flags & kCreate) == 0) {
      return -ENOENT;
    }
    std::string leaf;
    BaseInode* dir = ResolveParent(path, &leaf);
    if (dir == nullptr) {
      return -ENOENT;
    }
    ctx_->ChargeCpu(DirOpCost());
    Ino ino = AllocateInode(FileType::kRegular);
    dir->dirents[leaf] = ino;
    inode = GetInode(ino);
    OnMetadataOp(inode, "create");
  } else if ((flags & kCreate) != 0 && (flags & kExcl) != 0) {
    return -EEXIST;
  }
  if (inode->type == FileType::kDirectory && WantsWrite(flags)) {
    return -EISDIR;
  }
  if ((flags & kTrunc) != 0 && inode->size > 0) {
    FreeInodeBlocks(inode);
    inode->size = 0;
    OnMetadataOp(inode, "truncate");
  }
  ++inode->open_count;
  return fds_.Allocate(inode->ino, flags);
}

int PmFsBase::Close(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  BaseInode* inode = GetInode(of->ino);
  int rc = fds_.Release(fd);
  if (rc != 0) {
    return rc;
  }
  if (inode != nullptr && --inode->open_count == 0 && inode->unlinked) {
    FreeInodeBlocks(inode);
    inodes_.erase(inode->ino);
  }
  return 0;
}

ssize_t PmFsBase::ReadExtents(BaseInode* inode, void* buf, uint64_t n, uint64_t off) {
  if (off >= inode->size) {
    return 0;
  }
  uint64_t to_read = std::min(n, inode->size - off);
  auto* dst = static_cast<uint8_t*>(buf);
  uint64_t cur = off;
  uint64_t remaining = to_read;
  bool sequential = off == inode->last_read_end && off != 0;
  while (remaining > 0) {
    uint64_t in_block = cur % kBlockSize;
    auto m = inode->extents.Lookup(cur / kBlockSize);
    if (!m) {
      uint64_t span = std::min(remaining, kBlockSize - in_block);
      std::memset(dst, 0, span);
      dst += span;
      cur += span;
      remaining -= span;
      continue;
    }
    uint64_t span = std::min(remaining, m->count * kBlockSize - in_block);
    dev_->Load(m->phys * kBlockSize + in_block, dst, span, sequential,
               sim::PmReadKind::kUserData);
    sequential = true;
    dst += span;
    cur += span;
    remaining -= span;
  }
  inode->last_read_end = off + to_read;
  return static_cast<ssize_t>(to_read);
}

ssize_t PmFsBase::WriteExtentsInPlace(BaseInode* inode, const void* buf, uint64_t n,
                                      uint64_t off, uint64_t alloc_cpu_ns) {
  // Allocate any holes in [off, off+n).
  uint64_t first = off / kBlockSize;
  uint64_t last = (off + n - 1) / kBlockSize;
  for (uint64_t lb = first; lb <= last;) {
    auto hit = inode->extents.Lookup(lb);
    if (hit) {
      lb += hit->count;
      continue;
    }
    uint64_t hole_end = lb;
    while (hole_end <= last && !inode->extents.Lookup(hole_end)) {
      ++hole_end;
    }
    ctx_->ChargeCpu(alloc_cpu_ns);
    std::vector<ext4sim::PhysExtent> pieces;
    if (!alloc_.AllocateBlocks(hole_end - lb, &pieces)) {
      return -ENOSPC;
    }
    uint64_t cur = lb;
    for (const auto& p : pieces) {
      inode->extents.Insert(cur, p.start, p.count);
      cur += p.count;
    }
    lb = hole_end;
  }
  const auto* src = static_cast<const uint8_t*>(buf);
  uint64_t cur = off;
  uint64_t remaining = n;
  while (remaining > 0) {
    auto m = inode->extents.Lookup(cur / kBlockSize);
    SPLITFS_CHECK(m.has_value());
    uint64_t in_block = cur % kBlockSize;
    uint64_t span = std::min(remaining, m->count * kBlockSize - in_block);
    dev_->StoreNt(m->phys * kBlockSize + in_block, src, span, sim::PmWriteKind::kUserData);
    src += span;
    cur += span;
    remaining -= span;
  }
  return static_cast<ssize_t>(n);
}

ssize_t PmFsBase::ReadData(BaseInode* inode, void* buf, uint64_t n, uint64_t off) {
  return ReadExtents(inode, buf, n, off);
}

ssize_t PmFsBase::Pread(int fd, void* buf, uint64_t n, uint64_t off) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  BaseInode* inode = GetInode(of->ino);
  if (inode == nullptr || inode->type != FileType::kRegular) {
    return -EBADF;
  }
  return ReadData(inode, buf, n, off);
}

ssize_t PmFsBase::Pwrite(int fd, const void* buf, uint64_t n, uint64_t off) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr || !WantsWrite(of->flags)) {
    return -EBADF;
  }
  BaseInode* inode = GetInode(of->ino);
  if (inode == nullptr || inode->type != FileType::kRegular) {
    return -EBADF;
  }
  return WriteData(inode, buf, n, off);
}

ssize_t PmFsBase::Read(int fd, void* buf, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  BaseInode* inode = GetInode(of->ino);
  if (inode == nullptr || inode->type != FileType::kRegular) {
    return -EBADF;
  }
  std::lock_guard<std::mutex> flock(of->mu);
  ssize_t rc = ReadData(inode, buf, n, of->offset);
  if (rc > 0) {
    of->offset += static_cast<uint64_t>(rc);
  }
  return rc;
}

ssize_t PmFsBase::Write(int fd, const void* buf, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr || !WantsWrite(of->flags)) {
    return -EBADF;
  }
  BaseInode* inode = GetInode(of->ino);
  if (inode == nullptr || inode->type != FileType::kRegular) {
    return -EBADF;
  }
  std::lock_guard<std::mutex> flock(of->mu);
  uint64_t off = (of->flags & kAppend) != 0 ? inode->size : of->offset;
  ssize_t rc = WriteData(inode, buf, n, off);
  if (rc > 0) {
    of->offset = off + static_cast<uint64_t>(rc);
  }
  return rc;
}

int64_t PmFsBase::Lseek(int fd, int64_t off, Whence whence) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  BaseInode* inode = GetInode(of->ino);
  std::lock_guard<std::mutex> flock(of->mu);
  int64_t base = 0;
  switch (whence) {
    case Whence::kSet:
      base = 0;
      break;
    case Whence::kCur:
      base = static_cast<int64_t>(of->offset);
      break;
    case Whence::kEnd:
      base = inode == nullptr ? 0 : static_cast<int64_t>(inode->size);
      break;
  }
  int64_t target = base + off;
  if (target < 0) {
    return -EINVAL;
  }
  of->offset = static_cast<uint64_t>(target);
  return target;
}

int PmFsBase::Fsync(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  BaseInode* inode = GetInode(of->ino);
  if (inode == nullptr) {
    return -EBADF;
  }
  return SyncFile(inode);
}

int PmFsBase::Ftruncate(int fd, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  BaseInode* inode = GetInode(of->ino);
  if (inode == nullptr || inode->type != FileType::kRegular) {
    return -EBADF;
  }
  if (size < inode->size) {
    uint64_t first_gone = common::DivCeil(size, kBlockSize);
    uint64_t last = common::DivCeil(inode->size, kBlockSize);
    for (const auto& e : inode->extents.RemoveRange(first_gone, last - first_gone)) {
      alloc_.Free(e);
    }
  }
  inode->size = size;
  OnMetadataOp(inode, "truncate");
  return 0;
}

int PmFsBase::Fallocate(int fd, uint64_t off, uint64_t len, bool keep_size) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  BaseInode* inode = GetInode(of->ino);
  if (inode == nullptr) {
    return -EBADF;
  }
  uint64_t first = off / kBlockSize;
  uint64_t last = (off + len - 1) / kBlockSize;
  for (uint64_t lb = first; lb <= last;) {
    auto hit = inode->extents.Lookup(lb);
    if (hit) {
      lb += hit->count;
      continue;
    }
    std::vector<ext4sim::PhysExtent> pieces;
    if (!alloc_.AllocateBlocks(1, &pieces)) {
      return -ENOSPC;
    }
    inode->extents.Insert(lb, pieces[0].start, pieces[0].count);
    ++lb;
  }
  if (!keep_size && off + len > inode->size) {
    inode->size = off + len;
  }
  OnMetadataOp(inode, "fallocate");
  return 0;
}

int PmFsBase::Unlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(OpenPathCost() + DirOpCost());
  std::string leaf;
  BaseInode* dir = ResolveParent(path, &leaf);
  if (dir == nullptr) {
    return -ENOENT;
  }
  auto it = dir->dirents.find(leaf);
  if (it == dir->dirents.end()) {
    return -ENOENT;
  }
  BaseInode* inode = GetInode(it->second);
  if (inode == nullptr || inode->type != FileType::kRegular) {
    return inode == nullptr ? -ENOENT : -EISDIR;
  }
  dir->dirents.erase(it);
  OnMetadataOp(inode, "unlink");
  inode->unlinked = true;
  if (inode->open_count == 0) {
    Ino ino = inode->ino;
    FreeInodeBlocks(inode);
    inodes_.erase(ino);
  }
  return 0;
}

int PmFsBase::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(2 * OpenPathCost() + 2 * DirOpCost());
  std::string from_leaf, to_leaf;
  BaseInode* from_dir = ResolveParent(from, &from_leaf);
  BaseInode* to_dir = ResolveParent(to, &to_leaf);
  if (from_dir == nullptr || to_dir == nullptr) {
    return -ENOENT;
  }
  auto it = from_dir->dirents.find(from_leaf);
  if (it == from_dir->dirents.end()) {
    return -ENOENT;
  }
  Ino moved = it->second;
  auto dit = to_dir->dirents.find(to_leaf);
  if (dit != to_dir->dirents.end()) {
    if (dit->second == moved) {
      return 0;  // rename(2): same file, do nothing.
    }
    BaseInode* displaced = GetInode(dit->second);
    if (displaced != nullptr && displaced->type == FileType::kDirectory) {
      return -EISDIR;
    }
    if (displaced != nullptr) {
      displaced->unlinked = true;
      if (displaced->open_count == 0) {
        Ino dino = displaced->ino;
        FreeInodeBlocks(displaced);
        inodes_.erase(dino);
      }
    }
  }
  from_dir->dirents.erase(it);
  to_dir->dirents[to_leaf] = moved;
  OnMetadataOp(GetInode(moved), "rename");
  return 0;
}

int PmFsBase::Mkdir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(OpenPathCost() + DirOpCost());
  std::string leaf;
  BaseInode* dir = ResolveParent(path, &leaf);
  if (dir == nullptr) {
    return -ENOENT;
  }
  if (dir->dirents.count(leaf) != 0) {
    return -EEXIST;
  }
  Ino ino = AllocateInode(FileType::kDirectory);
  dir->dirents[leaf] = ino;
  OnMetadataOp(GetInode(ino), "mkdir");
  return 0;
}

int PmFsBase::Rmdir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(OpenPathCost() + DirOpCost());
  std::string leaf;
  BaseInode* dir = ResolveParent(path, &leaf);
  if (dir == nullptr) {
    return -ENOENT;
  }
  auto it = dir->dirents.find(leaf);
  if (it == dir->dirents.end()) {
    return -ENOENT;
  }
  BaseInode* target = GetInode(it->second);
  if (target == nullptr || target->type != FileType::kDirectory) {
    return -ENOTDIR;
  }
  if (!target->dirents.empty()) {
    return -ENOTEMPTY;
  }
  OnMetadataOp(target, "rmdir");
  Ino gone = it->second;
  dir->dirents.erase(it);
  inodes_.erase(gone);
  return 0;
}

int PmFsBase::ReadDir(const std::string& path, std::vector<std::string>* names) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(OpenPathCost());
  BaseInode* dir = ResolvePath(path);
  if (dir == nullptr) {
    return -ENOENT;
  }
  if (dir->type != FileType::kDirectory) {
    return -ENOTDIR;
  }
  names->clear();
  for (const auto& [name, ino] : dir->dirents) {
    names->push_back(name);
  }
  return 0;
}

int PmFsBase::Stat(const std::string& path, StatBuf* out) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_->ChargeSyscall();
  ctx_->ChargeCpu(OpenPathCost() / 2);
  BaseInode* inode = ResolvePath(path);
  if (inode == nullptr) {
    return -ENOENT;
  }
  out->ino = inode->ino;
  out->size = inode->size;
  out->blocks = inode->extents.MappedBlocks();
  out->nlink = inode->nlink;
  out->type = inode->type;
  return 0;
}

int PmFsBase::Fstat(int fd, StatBuf* out) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_->ChargeSyscall();
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return -EBADF;
  }
  BaseInode* inode = GetInode(of->ino);
  if (inode == nullptr) {
    return -EBADF;
  }
  out->ino = inode->ino;
  out->size = inode->size;
  out->blocks = inode->extents.MappedBlocks();
  out->nlink = inode->nlink;
  out->type = inode->type;
  return 0;
}

int PmFsBase::Recover() { return 0; }

}  // namespace vfs
