// Reusable open-file-description table.
//
// POSIX separates file *descriptors* (small ints, per-process) from open file
// *descriptions* (offset + flags, shared after dup()). SplitFS §3.5 specifically
// handles dup() by keeping a single offset per open file and pointing descriptors at
// it; this table implements exactly that structure so every FS in the repo (and
// U-Split itself) gets correct dup()/lseek() interaction for free.
#ifndef SRC_VFS_FD_TABLE_H_
#define SRC_VFS_FD_TABLE_H_

#include <algorithm>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/common/status.h"
#include "src/vfs/types.h"

namespace vfs {

// One open file description; shared between dup'ed descriptors.
struct OpenFile {
  Ino ino = kInvalidIno;
  int flags = 0;
  uint64_t offset = 0;  // Guarded by mu for multi-threaded cursor updates.
  std::mutex mu;
};

class FdTable {
 public:
  FdTable() = default;

  // Allocates a new fd bound to a fresh description.
  int Allocate(Ino ino, int flags) {
    std::lock_guard<std::mutex> lock(mu_);
    int fd = next_fd_++;
    auto of = std::make_shared<OpenFile>();
    of->ino = ino;
    of->flags = flags;
    table_[fd] = std::move(of);
    return fd;
  }

  // dup(): a new fd sharing the existing description (offset included).
  int Dup(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = table_.find(fd);
    if (it == table_.end()) {
      return -EBADF;
    }
    int nfd = next_fd_++;
    table_[nfd] = it->second;
    return nfd;
  }

  // Re-installs a description at a specific descriptor number. Used when restoring
  // open-file state across execve() (SplitFS §3.5: state is carried over a shm file
  // and descriptors must keep their numbers).
  void Restore(int fd, Ino ino, int flags, uint64_t offset) {
    std::lock_guard<std::mutex> lock(mu_);
    auto of = std::make_shared<OpenFile>();
    of->ino = ino;
    of->flags = flags;
    of->offset = offset;
    table_[fd] = std::move(of);
    next_fd_ = std::max(next_fd_, fd + 1);
  }

  std::shared_ptr<OpenFile> Get(int fd) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = table_.find(fd);
    return it == table_.end() ? nullptr : it->second;
  }

  int Release(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    return table_.erase(fd) == 1 ? 0 : -EBADF;
  }

  // Number of live descriptors (not descriptions).
  size_t Count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return table_.size();
  }

  // True if any live descriptor refers to `ino` (used for unlink-while-open checks).
  bool HasOpen(Ino ino) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [fd, of] : table_) {
      if (of->ino == ino) {
        return true;
      }
    }
    return false;
  }

 private:
  mutable std::mutex mu_;
  int next_fd_ = 3;  // 0/1/2 reserved, as in a real process.
  std::unordered_map<int, std::shared_ptr<OpenFile>> table_;
};

}  // namespace vfs

#endif  // SRC_VFS_FD_TABLE_H_
