// Reusable open-file-description table.
//
// POSIX separates file *descriptors* (small ints, per-process) from open file
// *descriptions* (offset + flags, shared after dup()). SplitFS §3.5 specifically
// handles dup() by keeping a single offset per open file and pointing descriptors at
// it; this table implements exactly that structure so every FS in the repo (and
// U-Split itself) gets correct dup()/lseek() interaction for free.
//
// Concurrency: the table is sharded by descriptor number, with one shared_mutex per
// shard — threads operating on different descriptors never touch the same shard line,
// and Get() (the data-path lookup) takes only a reader lock. Descriptor numbers come
// from a single atomic counter, so allocation order stays sequential (0/1/2 reserved,
// as in a real process) and single-threaded numbering is unchanged. dup()/close()
// races resolve the way the kernel's file table resolves them: close() removes
// exactly one descriptor, a concurrent dup() of that descriptor either observes it
// (and shares the description) or returns EBADF — never a dangling description.
#ifndef SRC_VFS_FD_TABLE_H_
#define SRC_VFS_FD_TABLE_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "src/common/status.h"
#include "src/vfs/types.h"

namespace vfs {

// One open file description; shared between dup'ed descriptors.
struct OpenFile {
  Ino ino = kInvalidIno;
  int flags = 0;
  uint64_t offset = 0;  // Guarded by mu for multi-threaded cursor updates.
  std::mutex mu;
};

class FdTable {
 public:
  FdTable() = default;

  // Allocates a new fd bound to a fresh description.
  int Allocate(Ino ino, int flags) {
    int fd = next_fd_.fetch_add(1, std::memory_order_relaxed);
    auto of = std::make_shared<OpenFile>();
    of->ino = ino;
    of->flags = flags;
    Shard& s = ShardOf(fd);
    std::lock_guard<std::shared_mutex> lock(s.mu);
    s.map[fd] = std::move(of);
    return fd;
  }

  // dup(): a new fd sharing the existing description (offset included).
  int Dup(int fd) {
    std::shared_ptr<OpenFile> of = Get(fd);
    if (of == nullptr) {
      return -EBADF;
    }
    int nfd = next_fd_.fetch_add(1, std::memory_order_relaxed);
    Shard& s = ShardOf(nfd);
    std::lock_guard<std::shared_mutex> lock(s.mu);
    s.map[nfd] = std::move(of);
    return nfd;
  }

  // Re-installs a description at a specific descriptor number. Used when restoring
  // open-file state across execve() (SplitFS §3.5: state is carried over a shm file
  // and descriptors must keep their numbers).
  void Restore(int fd, Ino ino, int flags, uint64_t offset) {
    auto of = std::make_shared<OpenFile>();
    of->ino = ino;
    of->flags = flags;
    of->offset = offset;
    {
      Shard& s = ShardOf(fd);
      std::lock_guard<std::shared_mutex> lock(s.mu);
      s.map[fd] = std::move(of);
    }
    int cur = next_fd_.load(std::memory_order_relaxed);
    while (cur < fd + 1 &&
           !next_fd_.compare_exchange_weak(cur, fd + 1, std::memory_order_relaxed)) {
    }
  }

  std::shared_ptr<OpenFile> Get(int fd) const {
    if (fd < 0) {
      return nullptr;
    }
    const Shard& s = ShardOf(fd);
    std::shared_lock<std::shared_mutex> lock(s.mu);
    auto it = s.map.find(fd);
    return it == s.map.end() ? nullptr : it->second;
  }

  int Release(int fd) {
    if (fd < 0) {
      return -EBADF;
    }
    Shard& s = ShardOf(fd);
    std::lock_guard<std::shared_mutex> lock(s.mu);
    return s.map.erase(fd) == 1 ? 0 : -EBADF;
  }

  // Number of live descriptors (not descriptions).
  size_t Count() const {
    size_t n = 0;
    for (const Shard& s : shards_) {
      std::shared_lock<std::shared_mutex> lock(s.mu);
      n += s.map.size();
    }
    return n;
  }

  // True if any live descriptor refers to `ino` (used for unlink-while-open checks).
  bool HasOpen(Ino ino) const {
    for (const Shard& s : shards_) {
      std::shared_lock<std::shared_mutex> lock(s.mu);
      for (const auto& [fd, of] : s.map) {
        if (of->ino == ino) {
          return true;
        }
      }
    }
    return false;
  }

 private:
  static constexpr size_t kShards = 8;

  struct alignas(64) Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<int, std::shared_ptr<OpenFile>> map;
  };

  Shard& ShardOf(int fd) { return shards_[static_cast<size_t>(fd) % kShards]; }
  const Shard& ShardOf(int fd) const { return shards_[static_cast<size_t>(fd) % kShards]; }

  std::atomic<int> next_fd_{3};  // 0/1/2 reserved, as in a real process.
  std::array<Shard, kShards> shards_;
};

}  // namespace vfs

#endif  // SRC_VFS_FD_TABLE_H_
