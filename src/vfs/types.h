// Shared VFS vocabulary: inode numbers, open flags, stat, whence.
#ifndef SRC_VFS_TYPES_H_
#define SRC_VFS_TYPES_H_

#include <cstdint>
#include <sys/types.h>

namespace vfs {

using Ino = uint64_t;
inline constexpr Ino kInvalidIno = 0;
inline constexpr Ino kRootIno = 1;

// Open flags, a subset of POSIX O_* sufficient for the paper's 35 supported calls.
enum OpenFlag : int {
  kRdOnly = 0x0,
  kWrOnly = 0x1,
  kRdWr = 0x2,
  kCreate = 0x40,
  kExcl = 0x80,
  kTrunc = 0x200,
  kAppend = 0x400,
};

inline bool WantsWrite(int flags) { return (flags & (kWrOnly | kRdWr)) != 0; }
inline bool WantsRead(int flags) { return (flags & kWrOnly) == 0; }

enum class FileType : uint8_t { kRegular, kDirectory };

struct StatBuf {
  Ino ino = kInvalidIno;
  uint64_t size = 0;
  uint64_t blocks = 0;  // 4 KB blocks allocated.
  uint32_t nlink = 0;
  FileType type = FileType::kRegular;
  uint32_t mode = 0644;
};

enum class Whence : int { kSet = 0, kCur = 1, kEnd = 2 };

}  // namespace vfs

#endif  // SRC_VFS_TYPES_H_
