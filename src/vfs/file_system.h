// The file-system interface every PM file system in this repository implements:
// ext4sim::Ext4Dax, pmfssim::Pmfs, novasim::Nova, stratasim::Strata, and
// splitfs::SplitFs (which layers over Ext4Dax).
//
// Error convention is kernel-style: `int` / `ssize_t` returns, negative value = -errno.
// Every implementation charges simulated time for each call, including the user/kernel
// trap where one occurs (SplitFS's whole point is that its data ops don't trap).
#ifndef SRC_VFS_FILE_SYSTEM_H_
#define SRC_VFS_FILE_SYSTEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/vfs/types.h"

namespace vfs {

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  // Human-readable name for bench output, e.g. "ext4-DAX", "SplitFS-strict".
  virtual std::string Name() const = 0;

  // --- File lifecycle -----------------------------------------------------------------
  // Returns a new fd (>= 0) or -errno.
  virtual int Open(const std::string& path, int flags) = 0;
  virtual int Close(int fd) = 0;
  virtual int Unlink(const std::string& path) = 0;
  virtual int Rename(const std::string& from, const std::string& to) = 0;

  // --- Data ---------------------------------------------------------------------------
  virtual ssize_t Pread(int fd, void* buf, uint64_t n, uint64_t off) = 0;
  virtual ssize_t Pwrite(int fd, const void* buf, uint64_t n, uint64_t off) = 0;
  // Cursor-based variants; implementations share the cursor per open file description.
  virtual ssize_t Read(int fd, void* buf, uint64_t n) = 0;
  virtual ssize_t Write(int fd, const void* buf, uint64_t n) = 0;
  virtual int64_t Lseek(int fd, int64_t off, Whence whence) = 0;

  // --- Durability / size --------------------------------------------------------------
  virtual int Fsync(int fd) = 0;
  virtual int Ftruncate(int fd, uint64_t size) = 0;
  // Pre-allocates blocks for [off, off+len) without changing file size semantics
  // (mode ~ FALLOC_FL_KEEP_SIZE when keep_size is true).
  virtual int Fallocate(int fd, uint64_t off, uint64_t len, bool keep_size) = 0;

  // --- Metadata -----------------------------------------------------------------------
  virtual int Stat(const std::string& path, StatBuf* out) = 0;
  virtual int Fstat(int fd, StatBuf* out) = 0;
  virtual int Mkdir(const std::string& path) = 0;
  virtual int Rmdir(const std::string& path) = 0;
  virtual int ReadDir(const std::string& path, std::vector<std::string>* names) = 0;

  // --- Crash recovery -----------------------------------------------------------------
  // Runs the file system's crash-recovery procedure (journal replay, log scan, ...).
  // Returns 0 or -errno. Called by crash tests after pmem::Device::Crash().
  virtual int Recover() = 0;
};

}  // namespace vfs

#endif  // SRC_VFS_FILE_SYSTEM_H_
