// Reader/writer byte-range lock for one file (SplitFS concurrency model).
//
// The paper targets multi-threaded POSIX applications; U-Split therefore lets
// disjoint-offset reads and writes of one file proceed in parallel while operations
// that restructure the file — relink publication, truncate, unlink teardown — take the
// whole file exclusively. This lock provides exactly that vocabulary:
//
//   * LockShared(off, len)     — a read of [off, off+len): excludes overlapping
//                                writers, admits any other readers;
//   * LockExclusive(off, len)  — a write of [off, off+len): excludes any overlap;
//   * kWholeFile               — len for publish/truncate/teardown: excludes everything.
//
// Waiting writers gate new readers (writer preference), so a relink cannot be starved
// by a stream of preads.
//
// Virtual time is range-granular: the lock keeps one sim::ResourceStamp per contended
// byte range, created when an exclusive holder releases while someone overlapping
// waits, merged when a later contended release spans several stamps (their exclusive
// sections were serialized by the lock, so service times add), and retired once no
// holder or waiter overlaps the range — every queued acquirer has consumed its
// service debt by then, and the range's serial resource is idle. An acquisition that
// had to wait fast-forwards the caller's sim::Clock lane past the busy time of the
// stamps its own range overlaps, and only those: disjoint-offset writers that never
// really contend no longer fast-forward each other's virtual timelines the way the
// previous single per-file stamp did. Uncontended acquisitions charge nothing, so
// deterministic single-threaded timelines are unchanged.
//
// The implementation is a held-range list under one small mutex + condvar. The list is
// short in practice (the number of in-flight operations on one file), and the lock is
// per-file, so this does not become a global hot spot.
#ifndef SRC_VFS_RANGE_LOCK_H_
#define SRC_VFS_RANGE_LOCK_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <vector>

#include "src/analysis/lock_witness.h"
#include "src/obs/obs.h"
#include "src/sim/clock.h"

namespace vfs {

class RangeLock {
 public:
  static constexpr uint64_t kWholeFile = UINT64_MAX;

  // `clock` may be null (no virtual-time accounting, e.g. unit tests). `ledger`, when
  // set, receives every virtual-time wait this lock induces, attributed under
  // `resource` (a string literal; per-file locks share one name — the per-file detail
  // lives in the trace's wait spans).
  explicit RangeLock(sim::Clock* clock = nullptr, obs::Observability* obs = nullptr,
                     const char* resource = "vfs.range_lock")
      : clock_(clock), obs_(obs), resource_(resource) {}
  RangeLock(const RangeLock&) = delete;
  RangeLock& operator=(const RangeLock&) = delete;

  // Lock-order witness key for same-site nested acquisitions: K-Split's
  // per-inode range locks set their ino (the documented ascending-ino
  // discipline becomes a checked invariant); 0 (the default) opts out of the
  // same-site ordering check. The witness site id itself is the `resource`
  // name, so every RangeLock acquisition is graph-visible when analysis mode
  // is on (one null branch otherwise).
  void SetWitnessOrderKey(uint64_t key) { witness_key_ = key; }

  void LockShared(uint64_t off, uint64_t len) { Lock(off, len, /*exclusive=*/false); }
  void LockExclusive(uint64_t off, uint64_t len) { Lock(off, len, /*exclusive=*/true); }

  // Non-blocking whole-file exclusive acquisition (checkpoint sweep: never block on a
  // file whose owner may itself be waiting for the checkpoint to finish).
  bool TryLockExclusive(uint64_t off, uint64_t len) {
    std::unique_lock<std::mutex> ul(mu_);
    if (ConflictsLocked(off, EndOf(off, len), /*exclusive=*/true) || waiting_exclusive_ > 0) {
      return false;
    }
    held_.push_back({off, EndOf(off, len), true, clock_ != nullptr ? clock_->Now() : 0});
    WitnessAcquireLocked(analysis::LockWitness::Kind::kTry);
    return true;
  }

  void Unlock(uint64_t off, uint64_t len, bool exclusive) {
    bool contended;
    {
      std::lock_guard<std::mutex> lg(mu_);
      uint64_t end = EndOf(off, len);
      uint64_t t0 = 0;
      for (auto it = held_.begin(); it != held_.end(); ++it) {
        if (it->off == off && it->end == end && it->exclusive == exclusive) {
          t0 = it->t0;
          held_.erase(it);
          break;
        }
      }
      contended = !waiters_.empty();
      if (analysis::LockWitness* w = analysis::LockWitness::Global();
          w != nullptr && site_ >= 0) {
        w->Release(site_, witness_key_);
      }
      if (clock_ != nullptr && exclusive && AnyWaiterOverlaps(off, end)) {
        // Somebody overlapping is blocked on this range right now: account our
        // section's duration into the range's busy time, so the waiters' virtual
        // timelines cannot end up ahead of the serialized work they really waited
        // for. Waiters on disjoint ranges are not charged — they never waited for
        // these bytes.
        MergedStampFor(off, end).stamp.Release(clock_, t0);
      }
      if (clock_ != nullptr) {
        RetireQuiescentStamps();
      }
    }
    if (contended) {
      cv_.notify_all();
    }
  }

  void UnlockShared(uint64_t off, uint64_t len) { Unlock(off, len, false); }
  void UnlockExclusive(uint64_t off, uint64_t len) { Unlock(off, len, true); }

  // Contended-range stamps currently alive (introspection for tests).
  size_t StampCountForTest() {
    std::lock_guard<std::mutex> lg(mu_);
    return stamps_.size();
  }

 private:
  struct Held {
    uint64_t off;
    uint64_t end;  // Exclusive; kWholeFile-safe (saturated).
    bool exclusive;
    uint64_t t0;  // Holder's virtual time at acquisition (busy accounting).
  };
  struct Waiter {
    uint64_t off;
    uint64_t end;
  };
  // One virtual-time stamp per contended byte range; ranges merge on overlap and
  // retire at quiescence (no overlapping holder or waiter).
  struct RangeStamp {
    uint64_t off = 0;
    uint64_t end = 0;
    sim::ResourceStamp stamp;
  };

  static uint64_t EndOf(uint64_t off, uint64_t len) {
    uint64_t end = off + len;
    return end < off ? UINT64_MAX : end;  // Saturate (kWholeFile, huge ranges).
  }
  static bool Overlaps(uint64_t a_off, uint64_t a_end, uint64_t b_off, uint64_t b_end) {
    return a_off < b_end && b_off < a_end;
  }

  bool ConflictsLocked(uint64_t off, uint64_t end, bool exclusive) const {
    for (const Held& h : held_) {
      if (Overlaps(h.off, h.end, off, end) && (exclusive || h.exclusive)) {
        return true;
      }
    }
    return false;
  }

  bool AnyWaiterOverlaps(uint64_t off, uint64_t end) const {
    for (const Waiter* w : waiters_) {
      if (Overlaps(w->off, w->end, off, end)) {
        return true;
      }
    }
    return false;
  }

  // Finds the stamp for [off, end), merging every stamp the range overlaps into one
  // whose range is the union (the real lock serialized their exclusive sections, so
  // busy times add); creates a fresh stamp when none overlaps.
  RangeStamp& MergedStampFor(uint64_t off, uint64_t end) {
    auto target = stamps_.end();
    for (auto it = stamps_.begin(); it != stamps_.end();) {
      if (Overlaps(it->off, it->end, off, end)) {
        if (target == stamps_.end()) {
          it->off = std::min(it->off, off);
          it->end = std::max(it->end, end);
          target = it++;
        } else {
          target->off = std::min(target->off, it->off);
          target->end = std::max(target->end, it->end);
          target->stamp.MergeFrom(&it->stamp, clock_);
          it = stamps_.erase(it);
        }
      } else {
        ++it;
      }
    }
    if (target == stamps_.end()) {
      stamps_.emplace_back();
      target = std::prev(stamps_.end());
      target->off = off;
      target->end = end;
    }
    return *target;
  }

  // Drops stamps with no overlapping holder and no overlapping waiter: everyone who
  // queued behind the range has acquired (and consumed the busy total) and released,
  // so the serial resource is idle and the next contention episode starts clean.
  void RetireQuiescentStamps() {
    stamps_.remove_if([this](const RangeStamp& rs) {
      for (const Held& h : held_) {
        if (Overlaps(h.off, h.end, rs.off, rs.end)) {
          return false;
        }
      }
      for (const Waiter* w : waiters_) {
        if (Overlaps(w->off, w->end, rs.off, rs.end)) {
          return false;
        }
      }
      return true;
    });
  }

  void Lock(uint64_t off, uint64_t len, bool exclusive) {
    uint64_t end = EndOf(off, len);
    std::unique_lock<std::mutex> ul(mu_);
    bool waited = false;
    Waiter self{off, end};
    if (exclusive) {
      ++waiting_exclusive_;
      if (ConflictsLocked(off, end, true)) {
        waiters_.push_back(&self);
        do {
          waited = true;
          cv_.wait(ul);
        } while (ConflictsLocked(off, end, true));
        waiters_.erase(std::find(waiters_.begin(), waiters_.end(), &self));
      }
      --waiting_exclusive_;
    } else {
      // Writer preference: a reader also yields to writers already queued, so
      // publish/truncate cannot starve under a read storm.
      if (ConflictsLocked(off, end, false) || waiting_exclusive_ > 0) {
        waiters_.push_back(&self);
        do {
          waited = true;
          cv_.wait(ul);
        } while (ConflictsLocked(off, end, false) || waiting_exclusive_ > 0);
        waiters_.erase(std::find(waiters_.begin(), waiters_.end(), &self));
      }
    }
    uint64_t t0 = 0;
    if (clock_ != nullptr) {
      if (waited) {
        // A waiter resumes no earlier than the accumulated busy time of the ranges
        // it actually waited behind (stamps overlapping its own range).
        uint64_t waited_ns = 0;
        for (RangeStamp& rs : stamps_) {
          if (Overlaps(rs.off, rs.end, off, end)) {
            waited_ns += rs.stamp.AcquireShared(clock_);
          }
        }
        if (obs_ != nullptr) {
          obs::ReportWait(obs_, clock_, resource_, waited_ns);
        }
      }
      t0 = clock_->Now();
    }
    held_.push_back({off, end, exclusive, t0});
    WitnessAcquireLocked(analysis::LockWitness::Kind::kBlocking);
  }

  // Caller holds mu_ (site_ initialization is serialized by it).
  void WitnessAcquireLocked(analysis::LockWitness::Kind kind) {
    analysis::LockWitness* w = analysis::LockWitness::Global();
    if (w == nullptr) {
      return;
    }
    if (site_ < 0) {
      site_ = analysis::LockWitness::RegisterSite(resource_);
    }
    w->Acquire(site_, witness_key_, kind);
  }

  sim::Clock* clock_;
  obs::Observability* obs_;
  const char* resource_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Held> held_;
  std::vector<Waiter*> waiters_;   // Registered while blocked (stack nodes).
  std::list<RangeStamp> stamps_;   // ResourceStamp is unmovable: node storage.
  int waiting_exclusive_ = 0;
  uint64_t witness_key_ = 0;       // Same-site order key (K-Split: ino).
  int site_ = -1;                  // Lazily interned witness site id.
};

// RAII guards. Length kWholeFile locks the entire file.
class RangeReadGuard {
 public:
  RangeReadGuard(RangeLock* lock, uint64_t off, uint64_t len)
      : lock_(lock), off_(off), len_(len) {
    lock_->LockShared(off_, len_);
  }
  ~RangeReadGuard() { lock_->UnlockShared(off_, len_); }
  RangeReadGuard(const RangeReadGuard&) = delete;
  RangeReadGuard& operator=(const RangeReadGuard&) = delete;

 private:
  RangeLock* lock_;
  uint64_t off_, len_;
};

class RangeWriteGuard {
 public:
  RangeWriteGuard(RangeLock* lock, uint64_t off, uint64_t len)
      : lock_(lock), off_(off), len_(len) {
    lock_->LockExclusive(off_, len_);
  }
  ~RangeWriteGuard() {
    if (lock_ != nullptr) {
      lock_->UnlockExclusive(off_, len_);
    }
  }
  RangeWriteGuard(const RangeWriteGuard&) = delete;
  RangeWriteGuard& operator=(const RangeWriteGuard&) = delete;

 private:
  RangeLock* lock_;
  uint64_t off_, len_;
};

}  // namespace vfs

#endif  // SRC_VFS_RANGE_LOCK_H_
