// Reader/writer byte-range lock for one file (SplitFS concurrency model).
//
// The paper targets multi-threaded POSIX applications; U-Split therefore lets
// disjoint-offset reads and writes of one file proceed in parallel while operations
// that restructure the file — relink publication, truncate, unlink teardown — take the
// whole file exclusively. This lock provides exactly that vocabulary:
//
//   * LockShared(off, len)     — a read of [off, off+len): excludes overlapping
//                                writers, admits any other readers;
//   * LockExclusive(off, len)  — a write of [off, off+len): excludes any overlap;
//   * kWholeFile               — len for publish/truncate/teardown: excludes everything.
//
// Waiting writers gate new readers (writer preference), so a relink cannot be starved
// by a stream of preads. Acquisitions that had to wait fast-forward the caller's
// sim::Clock lane past the conflicting holders' release time, which is how real lock
// contention becomes visible in the simulated-time scalability results; uncontended
// acquisitions charge nothing, so the deterministic single-threaded timelines are
// unchanged.
//
// The implementation is a held-range list under one small mutex + condvar. The list is
// short in practice (the number of in-flight operations on one file), and the lock is
// per-file, so this does not become a global hot spot.
#ifndef SRC_VFS_RANGE_LOCK_H_
#define SRC_VFS_RANGE_LOCK_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/sim/clock.h"

namespace vfs {

class RangeLock {
 public:
  static constexpr uint64_t kWholeFile = UINT64_MAX;

  // `clock` may be null (no virtual-time accounting, e.g. unit tests).
  explicit RangeLock(sim::Clock* clock = nullptr) : clock_(clock) {}
  RangeLock(const RangeLock&) = delete;
  RangeLock& operator=(const RangeLock&) = delete;

  void LockShared(uint64_t off, uint64_t len) { Lock(off, len, /*exclusive=*/false); }
  void LockExclusive(uint64_t off, uint64_t len) { Lock(off, len, /*exclusive=*/true); }

  // Non-blocking whole-file exclusive acquisition (checkpoint sweep: never block on a
  // file whose owner may itself be waiting for the checkpoint to finish).
  bool TryLockExclusive(uint64_t off, uint64_t len) {
    std::unique_lock<std::mutex> ul(mu_);
    if (ConflictsLocked(off, EndOf(off, len), /*exclusive=*/true) || waiting_exclusive_ > 0) {
      return false;
    }
    held_.push_back({off, EndOf(off, len), true, clock_ != nullptr ? clock_->Now() : 0});
    return true;
  }

  void Unlock(uint64_t off, uint64_t len, bool exclusive) {
    bool contended;
    {
      std::lock_guard<std::mutex> lg(mu_);
      uint64_t end = EndOf(off, len);
      uint64_t t0 = 0;
      for (auto it = held_.begin(); it != held_.end(); ++it) {
        if (it->off == off && it->end == end && it->exclusive == exclusive) {
          t0 = it->t0;
          held_.erase(it);
          break;
        }
      }
      contended = waiting_ > 0;
      if (contended && exclusive && clock_ != nullptr) {
        // Somebody is blocked on this file right now: account our section's duration
        // into the lock's busy time, so the waiters' virtual timelines cannot end up
        // ahead of the serialized work they really waited for.
        contention_stamp_.Release(clock_, t0);
      }
    }
    if (contended) {
      cv_.notify_all();
    }
  }

  void UnlockShared(uint64_t off, uint64_t len) { Unlock(off, len, false); }
  void UnlockExclusive(uint64_t off, uint64_t len) { Unlock(off, len, true); }

 private:
  struct Held {
    uint64_t off;
    uint64_t end;  // Exclusive; kWholeFile-safe (saturated).
    bool exclusive;
    uint64_t t0;  // Holder's virtual time at acquisition (busy accounting).
  };

  static uint64_t EndOf(uint64_t off, uint64_t len) {
    uint64_t end = off + len;
    return end < off ? UINT64_MAX : end;  // Saturate (kWholeFile, huge ranges).
  }

  bool ConflictsLocked(uint64_t off, uint64_t end, bool exclusive) const {
    for (const Held& h : held_) {
      if (h.off < end && off < h.end && (exclusive || h.exclusive)) {
        return true;
      }
    }
    return false;
  }

  void Lock(uint64_t off, uint64_t len, bool exclusive) {
    uint64_t end = EndOf(off, len);
    std::unique_lock<std::mutex> ul(mu_);
    bool waited = false;
    if (exclusive) {
      ++waiting_exclusive_;
      while (ConflictsLocked(off, end, true)) {
        waited = true;
        ++waiting_;
        cv_.wait(ul);
        --waiting_;
      }
      --waiting_exclusive_;
    } else {
      // Writer preference: a reader also yields to writers already queued, so
      // publish/truncate cannot starve under a read storm.
      while (ConflictsLocked(off, end, false) || waiting_exclusive_ > 0) {
        waited = true;
        ++waiting_;
        cv_.wait(ul);
        --waiting_;
      }
    }
    uint64_t t0 = 0;
    if (clock_ != nullptr) {
      // A waiter resumes no earlier than the lock's accumulated busy time.
      t0 = waited ? contention_stamp_.Acquire(clock_) : clock_->Now();
    }
    held_.push_back({off, end, exclusive, t0});
  }

  sim::Clock* clock_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Held> held_;
  int waiting_ = 0;
  int waiting_exclusive_ = 0;
  sim::ResourceStamp contention_stamp_;
};

// RAII guards. Length kWholeFile locks the entire file.
class RangeReadGuard {
 public:
  RangeReadGuard(RangeLock* lock, uint64_t off, uint64_t len)
      : lock_(lock), off_(off), len_(len) {
    lock_->LockShared(off_, len_);
  }
  ~RangeReadGuard() { lock_->UnlockShared(off_, len_); }
  RangeReadGuard(const RangeReadGuard&) = delete;
  RangeReadGuard& operator=(const RangeReadGuard&) = delete;

 private:
  RangeLock* lock_;
  uint64_t off_, len_;
};

class RangeWriteGuard {
 public:
  RangeWriteGuard(RangeLock* lock, uint64_t off, uint64_t len)
      : lock_(lock), off_(off), len_(len) {
    lock_->LockExclusive(off_, len_);
  }
  ~RangeWriteGuard() {
    if (lock_ != nullptr) {
      lock_->UnlockExclusive(off_, len_);
    }
  }
  RangeWriteGuard(const RangeWriteGuard&) = delete;
  RangeWriteGuard& operator=(const RangeWriteGuard&) = delete;

 private:
  RangeLock* lock_;
  uint64_t off_, len_;
};

}  // namespace vfs

#endif  // SRC_VFS_RANGE_LOCK_H_
