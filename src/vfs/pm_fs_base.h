// Shared skeleton for the baseline PM file systems (PMFS, NOVA, Strata).
//
// The baselines differ in their *data-path mechanics and persistence protocol* —
// exactly what the paper compares — but share ordinary namespace plumbing: inode
// table, directories, descriptor table, cursor handling. That plumbing lives here;
// each baseline implements the virtual hooks and charges its own mechanism's costs.
//
// Reuses the extent-map and bitmap-allocator building blocks from the ext4 library
// (they model "logical block -> physical block" bookkeeping, common to all designs).
#ifndef SRC_VFS_PM_FS_BASE_H_
#define SRC_VFS_PM_FS_BASE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ext4/allocator.h"
#include "src/ext4/extent_map.h"
#include "src/pmem/device.h"
#include "src/vfs/fd_table.h"
#include "src/vfs/file_system.h"

namespace vfs {

class PmFsBase : public FileSystem {
 public:
  // `meta_region_blocks` is reserved at the device start for the FS's own structures
  // (journals / logs); data blocks follow.
  PmFsBase(pmem::Device* dev, uint64_t meta_region_blocks);
  ~PmFsBase() override = default;

  int Open(const std::string& path, int flags) override;
  int Close(int fd) override;
  int Unlink(const std::string& path) override;
  int Rename(const std::string& from, const std::string& to) override;
  ssize_t Pread(int fd, void* buf, uint64_t n, uint64_t off) override;
  ssize_t Pwrite(int fd, const void* buf, uint64_t n, uint64_t off) override;
  ssize_t Read(int fd, void* buf, uint64_t n) override;
  ssize_t Write(int fd, const void* buf, uint64_t n) override;
  int64_t Lseek(int fd, int64_t off, Whence whence) override;
  int Fsync(int fd) override;
  int Ftruncate(int fd, uint64_t size) override;
  int Fallocate(int fd, uint64_t off, uint64_t len, bool keep_size) override;
  int Stat(const std::string& path, StatBuf* out) override;
  int Fstat(int fd, StatBuf* out) override;
  int Mkdir(const std::string& path) override;
  int Rmdir(const std::string& path) override;
  int ReadDir(const std::string& path, std::vector<std::string>* names) override;
  int Recover() override;

 protected:
  struct BaseInode {
    Ino ino = kInvalidIno;
    FileType type = FileType::kRegular;
    uint64_t size = 0;
    uint32_t nlink = 1;
    ext4sim::ExtentMap extents;
    std::map<std::string, Ino> dirents;
    uint32_t open_count = 0;
    bool unlinked = false;
    uint64_t last_read_end = 0;  // Sequential-access detection.
  };

  // --- Hooks each baseline implements ---------------------------------------------------
  // Full data write: allocation policy (in-place vs COW), logging, persistence.
  virtual ssize_t WriteData(BaseInode* inode, const void* buf, uint64_t n, uint64_t off) = 0;
  // Data read beyond the shared extent walk (e.g. Strata's private-log lookup).
  virtual ssize_t ReadData(BaseInode* inode, void* buf, uint64_t n, uint64_t off);
  // Durability point. Baselines with synchronous ops make this cheap.
  virtual int SyncFile(BaseInode* inode) = 0;
  // Per-metadata-op persistence protocol (journal entries, log appends).
  virtual void OnMetadataOp(BaseInode* inode, const char* what) = 0;
  // Path-walk CPU cost.
  virtual uint64_t OpenPathCost() const = 0;
  virtual uint64_t DirOpCost() const = 0;

  BaseInode* GetInode(Ino ino);
  BaseInode* ResolvePath(const std::string& path);
  BaseInode* ResolveParent(const std::string& path, std::string* leaf);
  Ino AllocateInode(FileType type);
  void FreeInodeBlocks(BaseInode* inode);

  // Shared extent-walking helpers usable by subclasses.
  ssize_t ReadExtents(BaseInode* inode, void* buf, uint64_t n, uint64_t off);
  // Writes into existing blocks in place with nt stores (allocating holes first).
  ssize_t WriteExtentsInPlace(BaseInode* inode, const void* buf, uint64_t n, uint64_t off,
                              uint64_t alloc_cpu_ns);

  pmem::Device* dev_;
  sim::Context* ctx_;
  ext4sim::BlockAllocator alloc_;
  uint64_t meta_region_start_ = 0;  // Device byte offset of the FS's meta region.
  uint64_t meta_region_bytes_ = 0;

  mutable std::mutex mu_;
  std::unordered_map<Ino, std::unique_ptr<BaseInode>> inodes_;
  Ino next_ino_ = kRootIno + 1;
  FdTable fds_;
};

}  // namespace vfs

#endif  // SRC_VFS_PM_FS_BASE_H_
