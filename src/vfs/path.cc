#include "src/vfs/path.h"

namespace vfs {

bool SplitPath(const std::string& path, std::vector<std::string>* parts) {
  parts->clear();
  if (path.empty() || path[0] != '/') {
    return false;
  }
  size_t i = 1;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) {
      j = path.size();
    }
    std::string comp = path.substr(i, j - i);
    if (comp.empty() || comp == ".") {
      // Skip.
    } else if (comp == "..") {
      if (parts->empty()) {
        return false;  // Escapes the root.
      }
      parts->pop_back();
    } else {
      parts->push_back(std::move(comp));
    }
    i = j + 1;
  }
  return true;
}

bool SplitParent(const std::string& path, std::string* parent, std::string* leaf) {
  std::vector<std::string> parts;
  if (!SplitPath(path, &parts) || parts.empty()) {
    return false;
  }
  *leaf = parts.back();
  parts.pop_back();
  *parent = JoinPath(parts);
  return true;
}

std::string JoinPath(const std::vector<std::string>& parts) {
  if (parts.empty()) {
    return "/";
  }
  std::string out;
  for (const auto& p : parts) {
    out.push_back('/');
    out.append(p);
  }
  return out;
}

}  // namespace vfs
