#include "src/workloads/ycsb.h"

#include <cstdio>

#include "src/common/status.h"

namespace wl {

const char* YcsbName(YcsbWorkload w) {
  switch (w) {
    case YcsbWorkload::kLoadA:
      return "LoadA";
    case YcsbWorkload::kA:
      return "RunA";
    case YcsbWorkload::kB:
      return "RunB";
    case YcsbWorkload::kC:
      return "RunC";
    case YcsbWorkload::kD:
      return "RunD";
    case YcsbWorkload::kE:
      return "RunE";
    case YcsbWorkload::kF:
      return "RunF";
    case YcsbWorkload::kLoadE:
      return "LoadE";
  }
  return "?";
}

Ycsb::Ycsb(apps::KvLsm* store, YcsbConfig cfg)
    : store_(store),
      cfg_(cfg),
      rng_(cfg.seed),
      zipf_(cfg.record_count, 0.99, cfg.seed + 1),
      inserted_(cfg.record_count) {}

std::string Ycsb::KeyFor(uint64_t n) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%016llu", static_cast<unsigned long long>(n));
  return buf;
}

std::string Ycsb::MakeValue(uint64_t n) const {
  std::string v(cfg_.value_bytes, 'x');
  for (size_t i = 0; i < v.size(); i += 97) {
    v[i] = static_cast<char>('a' + (n + i) % 26);
  }
  return v;
}

YcsbResult Ycsb::Load(sim::Clock* clock) {
  uint64_t t0 = clock->Now();
  for (uint64_t i = 0; i < cfg_.record_count; ++i) {
    SPLITFS_CHECK_OK(store_->Put(KeyFor(i), MakeValue(i)));
  }
  inserted_ = cfg_.record_count;
  return {cfg_.record_count, clock->Now() - t0};
}

YcsbResult Ycsb::Run(YcsbWorkload w, sim::Clock* clock) {
  uint64_t t0 = clock->Now();
  for (uint64_t i = 0; i < cfg_.op_count; ++i) {
    uint64_t dice = rng_.Uniform(100);
    uint64_t key_n = zipf_.NextScrambled();
    switch (w) {
      case YcsbWorkload::kLoadA:
      case YcsbWorkload::kLoadE:
        SPLITFS_CHECK_OK(store_->Put(KeyFor(i % cfg_.record_count), MakeValue(i)));
        break;
      case YcsbWorkload::kA:
        if (dice < 50) {
          store_->Get(KeyFor(key_n));
        } else {
          SPLITFS_CHECK_OK(store_->Put(KeyFor(key_n), MakeValue(i)));
        }
        break;
      case YcsbWorkload::kB:
        if (dice < 95) {
          store_->Get(KeyFor(key_n));
        } else {
          SPLITFS_CHECK_OK(store_->Put(KeyFor(key_n), MakeValue(i)));
        }
        break;
      case YcsbWorkload::kC:
        store_->Get(KeyFor(key_n));
        break;
      case YcsbWorkload::kD:
        if (dice < 95) {
          // Read latest: bias toward recently inserted keys.
          uint64_t latest = inserted_ - 1 - std::min<uint64_t>(zipf_.Next(), inserted_ - 1);
          store_->Get(KeyFor(latest));
        } else {
          SPLITFS_CHECK_OK(store_->Put(KeyFor(inserted_++), MakeValue(i)));
        }
        break;
      case YcsbWorkload::kE:
        if (dice < 95) {
          uint64_t len = 1 + rng_.Uniform(cfg_.scan_max_len);
          store_->Scan(KeyFor(key_n), len);
        } else {
          SPLITFS_CHECK_OK(store_->Put(KeyFor(inserted_++), MakeValue(i)));
        }
        break;
      case YcsbWorkload::kF:
        if (dice < 50) {
          store_->Get(KeyFor(key_n));
        } else {
          auto old = store_->Get(KeyFor(key_n));
          std::string v = old.value_or(MakeValue(i));
          if (!v.empty()) {
            v[0] = static_cast<char>('A' + i % 26);
          }
          SPLITFS_CHECK_OK(store_->Put(KeyFor(key_n), v));
        }
        break;
    }
  }
  return {cfg_.op_count, clock->Now() - t0};
}

}  // namespace wl
