#include "src/workloads/microbench.h"

#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace wl {

using common::kBlockSize;

SyscallLatencies RunVarmail(vfs::FileSystem* fs, sim::Clock* clock, int iterations,
                            const std::string& dir) {
  fs->Mkdir(dir);
  std::map<std::string, double> total;
  std::map<std::string, uint64_t> count;
  auto timed = [&](const std::string& name, auto&& call) {
    uint64_t t0 = clock->Now();
    call();
    total[name] += static_cast<double>(clock->Now() - t0);
    count[name] += 1;
  };
  std::vector<uint8_t> block(kBlockSize, 0x42);
  std::vector<uint8_t> readbuf(4 * kBlockSize);
  for (int i = 0; i < iterations; ++i) {
    std::string path = dir + "/vm-" + std::to_string(i);
    int fd = -1;
    timed("open", [&] { fd = fs->Open(path, vfs::kRdWr | vfs::kCreate); });
    SPLITFS_CHECK(fd >= 0);
    for (int a = 0; a < 4; ++a) {
      timed("append", [&] { fs->Write(fd, block.data(), block.size()); });
      timed("fsync", [&] { fs->Fsync(fd); });
    }
    timed("close", [&] { fs->Close(fd); });
    timed("open", [&] { fd = fs->Open(path, vfs::kRdWr); });
    timed("read", [&] { fs->Read(fd, readbuf.data(), readbuf.size()); });
    timed("close", [&] { fs->Close(fd); });
    timed("open", [&] { fd = fs->Open(path, vfs::kRdWr); });
    timed("close", [&] { fs->Close(fd); });
    timed("unlink", [&] { fs->Unlink(path); });
  }
  SyscallLatencies out;
  for (const auto& [name, sum] : total) {
    out.mean_ns[name] = sum / static_cast<double>(count[name]);
  }
  return out;
}

IoResult RunAppend(vfs::FileSystem* fs, sim::Clock* clock, const std::string& path,
                   uint64_t total_bytes, uint64_t op_bytes, uint64_t fsync_every) {
  int fd = fs->Open(path, vfs::kRdWr | vfs::kCreate | vfs::kTrunc);
  SPLITFS_CHECK(fd >= 0);
  std::vector<uint8_t> buf(op_bytes, 0x5A);
  IoResult r;
  uint64_t t0 = clock->Now();
  uint64_t since_sync = 0;
  for (uint64_t off = 0; off < total_bytes; off += op_bytes) {
    SPLITFS_CHECK(fs->Write(fd, buf.data(), op_bytes) ==
                  static_cast<ssize_t>(op_bytes));
    ++r.ops;
    r.bytes += op_bytes;
    if (fsync_every != 0 && ++since_sync == fsync_every) {
      SPLITFS_CHECK_OK(fs->Fsync(fd));
      since_sync = 0;
    }
  }
  if (fsync_every != 0) {
    SPLITFS_CHECK_OK(fs->Fsync(fd));
  }
  r.sim_ns = clock->Now() - t0;
  fs->Close(fd);
  return r;
}

IoResult RunSeqOverwrite(vfs::FileSystem* fs, sim::Clock* clock, const std::string& path,
                         uint64_t total_bytes, uint64_t op_bytes, uint64_t fsync_every) {
  int fd = fs->Open(path, vfs::kRdWr);
  SPLITFS_CHECK(fd >= 0);
  std::vector<uint8_t> buf(op_bytes, 0x7B);
  IoResult r;
  uint64_t t0 = clock->Now();
  uint64_t since_sync = 0;
  for (uint64_t off = 0; off < total_bytes; off += op_bytes) {
    SPLITFS_CHECK(fs->Pwrite(fd, buf.data(), op_bytes, off) ==
                  static_cast<ssize_t>(op_bytes));
    ++r.ops;
    r.bytes += op_bytes;
    if (fsync_every != 0 && ++since_sync == fsync_every) {
      SPLITFS_CHECK_OK(fs->Fsync(fd));
      since_sync = 0;
    }
  }
  if (fsync_every != 0) {
    SPLITFS_CHECK_OK(fs->Fsync(fd));
  }
  r.sim_ns = clock->Now() - t0;
  fs->Close(fd);
  return r;
}

IoResult RunRandOverwrite(vfs::FileSystem* fs, sim::Clock* clock, const std::string& path,
                          uint64_t file_bytes, uint64_t op_bytes, uint64_t ops,
                          uint64_t fsync_every, uint64_t seed) {
  int fd = fs->Open(path, vfs::kRdWr);
  SPLITFS_CHECK(fd >= 0);
  common::Rng rng(seed);
  std::vector<uint8_t> buf(op_bytes, 0x3C);
  uint64_t slots = file_bytes / op_bytes;
  IoResult r;
  uint64_t t0 = clock->Now();
  uint64_t since_sync = 0;
  for (uint64_t i = 0; i < ops; ++i) {
    uint64_t off = rng.Uniform(slots) * op_bytes;
    SPLITFS_CHECK(fs->Pwrite(fd, buf.data(), op_bytes, off) ==
                  static_cast<ssize_t>(op_bytes));
    ++r.ops;
    r.bytes += op_bytes;
    if (fsync_every != 0 && ++since_sync == fsync_every) {
      SPLITFS_CHECK_OK(fs->Fsync(fd));
      since_sync = 0;
    }
  }
  r.sim_ns = clock->Now() - t0;
  fs->Close(fd);
  return r;
}

IoResult RunSeqRead(vfs::FileSystem* fs, sim::Clock* clock, const std::string& path,
                    uint64_t total_bytes, uint64_t op_bytes) {
  int fd = fs->Open(path, vfs::kRdOnly);
  SPLITFS_CHECK(fd >= 0);
  std::vector<uint8_t> buf(op_bytes);
  IoResult r;
  uint64_t t0 = clock->Now();
  for (uint64_t off = 0; off < total_bytes; off += op_bytes) {
    SPLITFS_CHECK(fs->Pread(fd, buf.data(), op_bytes, off) ==
                  static_cast<ssize_t>(op_bytes));
    ++r.ops;
    r.bytes += op_bytes;
  }
  r.sim_ns = clock->Now() - t0;
  fs->Close(fd);
  return r;
}

IoResult RunRandRead(vfs::FileSystem* fs, sim::Clock* clock, const std::string& path,
                     uint64_t file_bytes, uint64_t op_bytes, uint64_t ops,
                     uint64_t seed) {
  int fd = fs->Open(path, vfs::kRdOnly);
  SPLITFS_CHECK(fd >= 0);
  common::Rng rng(seed);
  std::vector<uint8_t> buf(op_bytes);
  uint64_t slots = file_bytes / op_bytes;
  IoResult r;
  uint64_t t0 = clock->Now();
  for (uint64_t i = 0; i < ops; ++i) {
    uint64_t off = rng.Uniform(slots) * op_bytes;
    SPLITFS_CHECK(fs->Pread(fd, buf.data(), op_bytes, off) ==
                  static_cast<ssize_t>(op_bytes));
    ++r.ops;
    r.bytes += op_bytes;
  }
  r.sim_ns = clock->Now() - t0;
  fs->Close(fd);
  return r;
}

void PrepareFile(vfs::FileSystem* fs, const std::string& path, uint64_t total_bytes) {
  int fd = fs->Open(path, vfs::kRdWr | vfs::kCreate | vfs::kTrunc);
  SPLITFS_CHECK(fd >= 0);
  std::vector<uint8_t> buf(256 * common::kKiB, 0x11);
  for (uint64_t off = 0; off < total_bytes; off += buf.size()) {
    uint64_t n = std::min<uint64_t>(buf.size(), total_bytes - off);
    SPLITFS_CHECK(fs->Pwrite(fd, buf.data(), n, off) == static_cast<ssize_t>(n));
  }
  SPLITFS_CHECK_OK(fs->Fsync(fd));
  fs->Close(fd);
}

}  // namespace wl
