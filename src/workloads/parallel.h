// Multithreaded workload drivers for the concurrent U-Split (SplitFS §5 on N cores).
//
// Each driver spawns N real std::threads against one file system instance. Every
// worker binds a sim::Clock::Lane, so its charges accrue to a private virtual
// timeline; the phase's elapsed simulated time is the slowest worker's lane delta —
// the virtual-time model of an N-core host. Serialized sections (the kernel lock,
// contended file ranges, the staging slow path) fast-forward waiters' lanes through
// sim::ResourceStamp, so lock contention degrades the reported scaling exactly where
// it would degrade wall-clock scaling on real hardware.
//
// The drivers double as correctness harnesses: each one verifies its invariants
// (sizes, record integrity) after joining and reports failures in the result.
#ifndef SRC_WORKLOADS_PARALLEL_H_
#define SRC_WORKLOADS_PARALLEL_H_

#include <cstdint>
#include <string>

#include "src/obs/histogram.h"
#include "src/sim/clock.h"
#include "src/vfs/file_system.h"

namespace wl {

struct ParallelResult {
  uint64_t ops = 0;          // Aggregate operations across all threads.
  uint64_t bytes = 0;        // Aggregate payload bytes.
  uint64_t elapsed_ns = 0;   // max over workers of (lane end - lane start).
  uint64_t errors = 0;       // Failed calls or post-run verification mismatches.
  // Per-op virtual latency, one sample per counted operation unit (a write plus any
  // fsync it triggered; a read; a KV get/put), merged across all worker lanes.
  obs::LatencyHistogram latency;
  double MopsPerSec() const {
    return elapsed_ns == 0 ? 0
                           : static_cast<double>(ops) * 1e3 / static_cast<double>(elapsed_ns);
  }
  double OpsPerSec() const {
    return elapsed_ns == 0 ? 0
                           : static_cast<double>(ops) * 1e9 / static_cast<double>(elapsed_ns);
  }
};

// Disjoint-file append: each thread creates its own file under `dir` and appends
// `bytes_per_thread` in `op_bytes` chunks, fsync'ing every `fsync_every` ops and once
// at the end. Verifies each file's published size. This is the scalability
// acceptance workload: the data path is pure user space, so it should scale nearly
// linearly with threads.
ParallelResult RunParallelAppend(vfs::FileSystem* fs, sim::Clock* clock, int threads,
                                 const std::string& dir, uint64_t bytes_per_thread,
                                 uint64_t op_bytes, uint64_t fsync_every);

// Read-heavy: each thread preads `ops_per_thread` random `op_bytes` chunks from its
// own pre-created `file_bytes` file. Verifies the read contents' seed bytes.
ParallelResult RunParallelRead(vfs::FileSystem* fs, sim::Clock* clock, int threads,
                               const std::string& dir, uint64_t file_bytes,
                               uint64_t op_bytes, uint64_t ops_per_thread, uint64_t seed);

// Shared hot file: every thread overwrites disjoint `op_bytes` strides of ONE
// preallocated file (thread t owns slots i*threads + t), size-preserving. The file
// is created, sized, and warmed in an untimed prepare phase and published with one
// fsync after the join, so the timed phase is pure in-size data writes — the workload that used to
// serialize on the whole-inode lock and now scales on the byte-range locks. Verifies
// every slot's first/last payload byte after joining.
ParallelResult RunParallelSharedHotFile(vfs::FileSystem* fs, sim::Clock* clock,
                                        int threads, const std::string& dir,
                                        uint64_t bytes_per_thread, uint64_t op_bytes);

// YCSB-A-shaped mix (50% read / 50% update, zipfian keys) over per-thread KvLsm
// stores sharing one file system — the paper's LevelDB setup, one store per app
// thread, all traffic through the same U-Split instance.
ParallelResult RunParallelYcsbA(vfs::FileSystem* fs, sim::Clock* clock, int threads,
                                const std::string& dir, uint64_t records_per_thread,
                                uint64_t ops_per_thread, uint64_t seed);

// YCSB-C-shaped read-only phase (100% zipfian gets) over per-thread KvLsm stores
// loaded — and flushed to SSTables — before the timed phase, so every get walks the
// table path (U-Split preads through the lock-free mmap-cache translation). The
// load runs on the caller's thread and background publishes are drained before
// timing starts, keeping the measured cells deterministic.
ParallelResult RunParallelYcsbC(vfs::FileSystem* fs, sim::Clock* clock, int threads,
                                const std::string& dir, uint64_t records_per_thread,
                                uint64_t ops_per_thread, uint64_t seed);

// Completion fence for asynchronous background work (the async relink publisher):
// no-op for file systems without one. Drivers call it between an untimed prepare
// phase and the timed phase, so measurements never depend on publisher timing.
void DrainBackground(vfs::FileSystem* fs);

}  // namespace wl

#endif  // SRC_WORKLOADS_PARALLEL_H_
