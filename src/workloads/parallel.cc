#include "src/workloads/parallel.h"

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/apps/kv_lsm.h"
#include "src/common/random.h"
#include "src/common/threading.h"
#include "src/core/split_fs.h"

namespace wl {

void DrainBackground(vfs::FileSystem* fs) {
  if (auto* sfs = dynamic_cast<splitfs::SplitFs*>(fs)) {
    sfs->WaitForPublishes();
  }
}

namespace {

// Deterministic per-(thread, offset) payload byte, so verification needs no side
// buffer.
inline uint8_t PayloadByte(int thread, uint64_t off) {
  return static_cast<uint8_t>(0x5A ^ (thread * 131) ^ (off * 13 >> 3));
}

// Runs `body(thread_index)` on `threads` real threads, each with a bound clock lane;
// returns the slowest worker's lane delta. Each worker pins its index as its
// structure-lane (staging pool, op log): thread-id hashes vary run to run, and
// which workers collided on a lane used to perturb reported virtual time.
template <typename Body>
uint64_t RunWorkers(sim::Clock* clock, int threads, const Body& body) {
  std::vector<uint64_t> lane_ns(static_cast<size_t>(threads), 0);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([clock, t, &lane_ns, &body] {
      common::ScopedThreadLane pin(static_cast<size_t>(t));
      sim::Clock::Lane lane(clock);
      uint64_t t0 = lane.Now();
      body(t);
      lane_ns[static_cast<size_t>(t)] = lane.Now() - t0;
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  uint64_t elapsed = 0;
  for (uint64_t ns : lane_ns) {
    elapsed = std::max(elapsed, ns);
  }
  return elapsed;
}

}  // namespace

ParallelResult RunParallelAppend(vfs::FileSystem* fs, sim::Clock* clock, int threads,
                                 const std::string& dir, uint64_t bytes_per_thread,
                                 uint64_t op_bytes, uint64_t fsync_every) {
  fs->Mkdir(dir);
  ParallelResult res;
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> errors{0};
  std::vector<obs::LatencyHistogram> hists(static_cast<size_t>(threads));

  res.elapsed_ns = RunWorkers(clock, threads, [&](int t) {
    obs::LatencyHistogram& hist = hists[static_cast<size_t>(t)];
    std::string path = dir + "/append-" + std::to_string(t);
    int fd = fs->Open(path, vfs::kRdWr | vfs::kCreate);
    if (fd < 0) {
      errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::vector<uint8_t> buf(op_bytes);
    uint64_t off = 0;
    uint64_t my_ops = 0;
    while (off < bytes_per_thread) {
      for (uint64_t i = 0; i < op_bytes; ++i) {
        buf[i] = PayloadByte(t, off + i);
      }
      // One latency sample covers the write plus the fsync it triggers (if any):
      // the unit of work a caller observes per counted op.
      uint64_t op_t0 = clock->Now();
      if (fs->Pwrite(fd, buf.data(), op_bytes, off) != static_cast<ssize_t>(op_bytes)) {
        errors.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      off += op_bytes;
      ++my_ops;
      if (fsync_every != 0 && my_ops % fsync_every == 0 && fs->Fsync(fd) != 0) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
      hist.Record(clock->Now() - op_t0);
    }
    if (fs->Fsync(fd) != 0) {
      errors.fetch_add(1, std::memory_order_relaxed);
    }
    vfs::StatBuf st;
    if (fs->Fstat(fd, &st) != 0 || st.size != off) {
      errors.fetch_add(1, std::memory_order_relaxed);
    }
    fs->Close(fd);
    ops.fetch_add(my_ops, std::memory_order_relaxed);
  });

  res.ops = ops.load();
  res.bytes = res.ops * op_bytes;
  res.errors = errors.load();
  for (const obs::LatencyHistogram& h : hists) {
    res.latency.MergeFrom(h);
  }
  return res;
}

ParallelResult RunParallelRead(vfs::FileSystem* fs, sim::Clock* clock, int threads,
                               const std::string& dir, uint64_t file_bytes,
                               uint64_t op_bytes, uint64_t ops_per_thread,
                               uint64_t seed) {
  fs->Mkdir(dir);
  // Prepare one file per thread (sequential, not timed).
  for (int t = 0; t < threads; ++t) {
    std::string path = dir + "/read-" + std::to_string(t);
    int fd = fs->Open(path, vfs::kRdWr | vfs::kCreate);
    SPLITFS_CHECK(fd >= 0);
    std::vector<uint8_t> buf(64 * 1024);
    for (uint64_t off = 0; off < file_bytes; off += buf.size()) {
      uint64_t span = std::min<uint64_t>(buf.size(), file_bytes - off);
      for (uint64_t i = 0; i < span; ++i) {
        buf[i] = PayloadByte(t, off + i);
      }
      SPLITFS_CHECK(fs->Pwrite(fd, buf.data(), span, off) == static_cast<ssize_t>(span));
    }
    SPLITFS_CHECK_OK(fs->Fsync(fd));
    SPLITFS_CHECK_OK(fs->Close(fd));
  }
  DrainBackground(fs);  // Reads must hit published files, whatever publishes cost.

  ParallelResult res;
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> errors{0};
  std::vector<obs::LatencyHistogram> hists(static_cast<size_t>(threads));
  res.elapsed_ns = RunWorkers(clock, threads, [&](int t) {
    obs::LatencyHistogram& hist = hists[static_cast<size_t>(t)];
    std::string path = dir + "/read-" + std::to_string(t);
    int fd = fs->Open(path, vfs::kRdOnly);
    if (fd < 0) {
      errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    common::Rng rng(seed + static_cast<uint64_t>(t) * 0x9E37ull);
    std::vector<uint8_t> buf(op_bytes);
    uint64_t my_ops = 0;
    uint64_t slots = file_bytes / op_bytes;
    for (uint64_t i = 0; i < ops_per_thread; ++i) {
      uint64_t off = rng.Uniform(slots) * op_bytes;
      uint64_t op_t0 = clock->Now();
      if (fs->Pread(fd, buf.data(), op_bytes, off) != static_cast<ssize_t>(op_bytes)) {
        errors.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      hist.Record(clock->Now() - op_t0);
      // Spot-check first/last byte of every read.
      if (buf[0] != PayloadByte(t, off) ||
          buf[op_bytes - 1] != PayloadByte(t, off + op_bytes - 1)) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
      ++my_ops;
    }
    fs->Close(fd);
    ops.fetch_add(my_ops, std::memory_order_relaxed);
  });

  res.ops = ops.load();
  res.bytes = res.ops * op_bytes;
  res.errors = errors.load();
  for (const obs::LatencyHistogram& h : hists) {
    res.latency.MergeFrom(h);
  }
  return res;
}

ParallelResult RunParallelSharedHotFile(vfs::FileSystem* fs, sim::Clock* clock,
                                        int threads, const std::string& dir,
                                        uint64_t bytes_per_thread, uint64_t op_bytes) {
  fs->Mkdir(dir);
  const std::string path = dir + "/hot";
  const uint64_t file_bytes = static_cast<uint64_t>(threads) * bytes_per_thread;
  const uint64_t slots_per_thread = bytes_per_thread / op_bytes;
  // Untimed prepare, all on the caller's thread: create and size the one shared
  // file so every timed write is size-preserving (in-size overwrites take only
  // their byte range; a growing write would need whole-file exclusive), then warm
  // the mmap translation with a read sweep. Without the sweep, which worker wins
  // each region-mapping race — and so which lane the mmap and huge-page-fault
  // charges land on — varies with OS scheduling, perturbing the reported cells.
  int fd = fs->Open(path, vfs::kRdWr | vfs::kCreate);
  SPLITFS_CHECK(fd >= 0);
  SPLITFS_CHECK_OK(fs->Fallocate(fd, 0, file_bytes, /*keep_size=*/false));
  SPLITFS_CHECK_OK(fs->Fsync(fd));
  {
    std::vector<uint8_t> warm(64 * 1024);
    for (uint64_t off = 0; off < file_bytes; off += warm.size()) {
      uint64_t span = std::min<uint64_t>(warm.size(), file_bytes - off);
      SPLITFS_CHECK(fs->Pread(fd, warm.data(), span, off) ==
                    static_cast<ssize_t>(span));
    }
  }
  DrainBackground(fs);

  // Timed phase: pure in-size data writes through ONE shared open file — the path
  // the range-granular locks parallelize. No per-thread fsync/close inside the
  // phase: fsync and close publish under a whole-file guard, so an early finisher
  // would convoy the still-writing threads behind its exclusive waiter, and the
  // convoy's shape (pure OS scheduling) would leak into the virtual-time cells.
  // Publication is driven once, below, on the caller's thread.
  ParallelResult res;
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> errors{0};
  std::vector<obs::LatencyHistogram> hists(static_cast<size_t>(threads));
  res.elapsed_ns = RunWorkers(clock, threads, [&](int t) {
    obs::LatencyHistogram& hist = hists[static_cast<size_t>(t)];
    std::vector<uint8_t> buf(op_bytes);
    uint64_t my_ops = 0;
    // Thread t owns slots t, t+threads, t+2*threads, ... — disjoint op_bytes
    // strides interleaved across the file, so neighbours hammer adjacent ranges.
    for (uint64_t i = 0; i < slots_per_thread; ++i) {
      uint64_t off = (i * static_cast<uint64_t>(threads) + static_cast<uint64_t>(t)) *
                     op_bytes;
      for (uint64_t b = 0; b < op_bytes; ++b) {
        buf[b] = PayloadByte(t, off + b);
      }
      uint64_t op_t0 = clock->Now();
      if (fs->Pwrite(fd, buf.data(), op_bytes, off) != static_cast<ssize_t>(op_bytes)) {
        errors.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      hist.Record(clock->Now() - op_t0);
      ++my_ops;
    }
    ops.fetch_add(my_ops, std::memory_order_relaxed);
  });

  // Publish + verify on the caller's thread: every slot carries its owning
  // thread's payload, and the size never moved.
  if (fs->Fsync(fd) != 0) {
    ++res.errors;
  }
  DrainBackground(fs);
  vfs::StatBuf st;
  if (fs->Fstat(fd, &st) != 0 || st.size != file_bytes) {
    ++res.errors;
  }
  {
    std::vector<uint8_t> buf(op_bytes);
    for (int t = 0; t < threads; ++t) {
      for (uint64_t i = 0; i < slots_per_thread; ++i) {
        uint64_t off = (i * static_cast<uint64_t>(threads) +
                        static_cast<uint64_t>(t)) * op_bytes;
        if (fs->Pread(fd, buf.data(), op_bytes, off) !=
            static_cast<ssize_t>(op_bytes)) {
          ++res.errors;
          break;
        }
        if (buf[0] != PayloadByte(t, off) ||
            buf[op_bytes - 1] != PayloadByte(t, off + op_bytes - 1)) {
          ++res.errors;
        }
      }
    }
  }
  fs->Close(fd);

  res.ops = ops.load();
  res.bytes = res.ops * op_bytes;
  res.errors += errors.load();
  for (const obs::LatencyHistogram& h : hists) {
    res.latency.MergeFrom(h);
  }
  return res;
}

ParallelResult RunParallelYcsbA(vfs::FileSystem* fs, sim::Clock* clock, int threads,
                                const std::string& dir, uint64_t records_per_thread,
                                uint64_t ops_per_thread, uint64_t seed) {
  fs->Mkdir(dir);
  ParallelResult res;
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> errors{0};
  constexpr uint32_t kValueBytes = 1024;  // YCSB standard 10 fields x 100 B, rounded.
  std::vector<obs::LatencyHistogram> hists(static_cast<size_t>(threads));

  res.elapsed_ns = RunWorkers(clock, threads, [&](int t) {
    obs::LatencyHistogram& hist = hists[static_cast<size_t>(t)];
    // One LevelDB-shaped store per application thread, all over the shared U-Split
    // instance (the paper's multi-application scenario, §3.2).
    apps::KvLsmOptions kopts;
    kopts.clock = clock;
    apps::KvLsm store(fs, dir + "/ycsb-" + std::to_string(t), kopts);
    auto key_for = [t](uint64_t k) {
      return "user" + std::to_string(t) + "-" + std::to_string(k);
    };
    std::string value(kValueBytes, static_cast<char>('a' + t % 26));
    for (uint64_t k = 0; k < records_per_thread; ++k) {
      if (store.Put(key_for(k), value) != 0) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
    common::Rng rng(seed + static_cast<uint64_t>(t) * 77);
    common::ZipfianGenerator zipf(records_per_thread, 0.99,
                                  seed + static_cast<uint64_t>(t) * 31 + 1);
    uint64_t my_ops = 0;
    uint64_t my_bytes = 0;
    for (uint64_t i = 0; i < ops_per_thread; ++i) {
      uint64_t k = zipf.NextScrambled();
      uint64_t op_t0 = clock->Now();
      if (rng.OneIn(2)) {
        auto got = store.Get(key_for(k));
        if (!got.has_value()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        } else {
          my_bytes += got->size();
        }
      } else {
        if (store.Put(key_for(k), value) != 0) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
        my_bytes += kValueBytes;
      }
      hist.Record(clock->Now() - op_t0);
      ++my_ops;
    }
    ops.fetch_add(my_ops, std::memory_order_relaxed);
    bytes.fetch_add(my_bytes, std::memory_order_relaxed);
  });

  res.ops = ops.load();
  res.bytes = bytes.load();
  res.errors = errors.load();
  for (const obs::LatencyHistogram& h : hists) {
    res.latency.MergeFrom(h);
  }
  return res;
}

ParallelResult RunParallelYcsbC(vfs::FileSystem* fs, sim::Clock* clock, int threads,
                                const std::string& dir, uint64_t records_per_thread,
                                uint64_t ops_per_thread, uint64_t seed) {
  fs->Mkdir(dir);
  constexpr uint32_t kValueBytes = 1024;
  // Load phase (untimed, caller's thread): a small memtable budget forces flushes,
  // so the timed gets walk SSTables through U-Split preads instead of returning
  // straight from DRAM.
  std::vector<std::unique_ptr<apps::KvLsm>> stores;
  stores.reserve(static_cast<size_t>(threads));
  auto key_for = [](int t, uint64_t k) {
    return "user" + std::to_string(t) + "-" + std::to_string(k);
  };
  for (int t = 0; t < threads; ++t) {
    apps::KvLsmOptions kopts;
    kopts.clock = clock;
    kopts.memtable_bytes = 256 * 1024;
    stores.push_back(std::make_unique<apps::KvLsm>(
        fs, dir + "/ycsbc-" + std::to_string(t), kopts));
    std::string value(kValueBytes, static_cast<char>('a' + t % 26));
    for (uint64_t k = 0; k < records_per_thread; ++k) {
      SPLITFS_CHECK_OK(stores.back()->Put(key_for(t, k), value));
    }
  }
  DrainBackground(fs);  // Timed gets read published tables, deterministically.

  ParallelResult res;
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> errors{0};
  std::vector<obs::LatencyHistogram> hists(static_cast<size_t>(threads));
  res.elapsed_ns = RunWorkers(clock, threads, [&](int t) {
    obs::LatencyHistogram& hist = hists[static_cast<size_t>(t)];
    apps::KvLsm& store = *stores[static_cast<size_t>(t)];
    common::ZipfianGenerator zipf(records_per_thread, 0.99,
                                  seed + static_cast<uint64_t>(t) * 131 + 7);
    char expect = static_cast<char>('a' + t % 26);
    uint64_t my_ops = 0;
    uint64_t my_bytes = 0;
    for (uint64_t i = 0; i < ops_per_thread; ++i) {
      uint64_t k = zipf.NextScrambled();
      uint64_t op_t0 = clock->Now();
      auto got = store.Get(key_for(t, k));
      if (!got.has_value() || got->size() != kValueBytes || (*got)[0] != expect) {
        errors.fetch_add(1, std::memory_order_relaxed);
      } else {
        my_bytes += got->size();
      }
      hist.Record(clock->Now() - op_t0);
      ++my_ops;
    }
    ops.fetch_add(my_ops, std::memory_order_relaxed);
    bytes.fetch_add(my_bytes, std::memory_order_relaxed);
  });

  res.ops = ops.load();
  res.bytes = bytes.load();
  res.errors = errors.load();
  for (const obs::LatencyHistogram& h : hists) {
    res.latency.MergeFrom(h);
  }
  return res;
}

}  // namespace wl
