// Metadata-heavy utility workloads: git, tar, rsync (§5.2, §5.9, Figure 6 right).
//
// The utilities matter to the evaluation only as file-system op mixes, which these
// drivers replay:
//   * git add/commit: hash-object writes (many small immutable files created under
//     fan-out directories, written once, fsync'd, renamed into place) plus index
//     rewrites — the paper runs 10 add+commit rounds over a kernel-sized tree;
//   * tar: read every file of a tree sequentially and append it to one archive;
//   * rsync: replicate a tree file-by-file — create temp, write, fsync, rename.
#ifndef SRC_WORKLOADS_UTILITIES_H_
#define SRC_WORKLOADS_UTILITIES_H_

#include <cstdint>
#include <string>

#include "src/common/random.h"
#include "src/sim/clock.h"
#include "src/vfs/file_system.h"

namespace wl {

struct UtilityResult {
  uint64_t files = 0;
  uint64_t bytes = 0;
  uint64_t sim_ns = 0;
  double Seconds() const { return static_cast<double>(sim_ns) * 1e-9; }
};

struct TreeSpec {
  uint32_t dirs = 20;
  uint32_t files_per_dir = 40;
  uint64_t mean_file_bytes = 8192;  // Small source files.
  uint64_t seed = 11;
};

// Creates a source tree under `root` (the "repository checkout" / backup dataset).
UtilityResult BuildTree(vfs::FileSystem* fs, sim::Clock* clock, const std::string& root,
                        const TreeSpec& spec);

// git add + commit of the tree: write loose objects for `dirty_fraction` of files,
// rewrite the index, write commit/tree objects, repeat `rounds` times.
UtilityResult RunGit(vfs::FileSystem* fs, sim::Clock* clock, const std::string& tree_root,
                     const std::string& git_dir, const TreeSpec& spec, int rounds,
                     double dirty_fraction = 0.2);

// tar the tree into one archive file.
UtilityResult RunTar(vfs::FileSystem* fs, sim::Clock* clock, const std::string& tree_root,
                     const std::string& archive_path, const TreeSpec& spec);

// rsync the tree into a new destination root.
UtilityResult RunRsync(vfs::FileSystem* fs, sim::Clock* clock,
                       const std::string& tree_root, const std::string& dst_root,
                       const TreeSpec& spec);

}  // namespace wl

#endif  // SRC_WORKLOADS_UTILITIES_H_
