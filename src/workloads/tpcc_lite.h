// TPC-C-lite: the five-transaction OLTP mix over WalDb — the paper's "TPC-C on
// SQLite (WAL mode)" workload (§5.2).
//
// Schema-on-pages: warehouses, districts, customers, stock, orders each occupy page
// ranges of the WalDb file; a transaction reads and dirties the pages its TPC-C
// counterpart would touch, then commits (one WAL append batch + fsync). The standard
// mix is used: New-Order 45%, Payment 43%, Order-Status 4%, Delivery 4%,
// Stock-Level 4%.
#ifndef SRC_WORKLOADS_TPCC_LITE_H_
#define SRC_WORKLOADS_TPCC_LITE_H_

#include <cstdint>

#include "src/apps/wal_db.h"
#include "src/common/random.h"
#include "src/sim/clock.h"

namespace wl {

struct TpccConfig {
  // SQLite-side CPU per transaction: SQL parsing, B-tree traversal, row encoding.
  uint64_t app_cpu_ns_per_txn = 30000;
  uint32_t warehouses = 4;
  uint32_t districts_per_wh = 10;
  uint32_t customers_per_district = 300;
  uint32_t items = 1000;
  uint64_t seed = 7;
};

struct TpccResult {
  uint64_t txns = 0;
  uint64_t sim_ns = 0;
  double Ktps() const {
    return sim_ns == 0 ? 0 : static_cast<double>(txns) * 1e6 / static_cast<double>(sim_ns);
  }
};

class TpccLite {
 public:
  TpccLite(apps::WalDb* db, TpccConfig cfg);

  // Populates the tables (initial database load).
  void Load(sim::Clock* clock);
  // Runs `txn_count` transactions of the standard mix.
  TpccResult Run(uint64_t txn_count, sim::Clock* clock);

  uint64_t NewOrders() const { return new_orders_; }

 private:
  // Page-range layout of the "tables".
  uint64_t WarehousePage(uint32_t w) const;
  uint64_t DistrictPage(uint32_t w, uint32_t d) const;
  uint64_t CustomerPage(uint32_t w, uint32_t d, uint32_t c) const;
  uint64_t StockPage(uint32_t item) const;
  uint64_t OrderPage(uint64_t order_id) const;

  void TouchRead(uint64_t page);
  void TouchWrite(uint64_t page);

  void TxNewOrder();
  void TxPayment();
  void TxOrderStatus();
  void TxDelivery();
  void TxStockLevel();

  apps::WalDb* db_;
  TpccConfig cfg_;
  common::Rng rng_;
  uint64_t next_order_ = 0;
  uint64_t new_orders_ = 0;
};

}  // namespace wl

#endif  // SRC_WORKLOADS_TPCC_LITE_H_
