#include "src/workloads/utilities.h"

#include <vector>

#include "src/common/checksum.h"
#include "src/common/status.h"

namespace wl {

namespace {

std::string DirName(const std::string& root, uint32_t d) {
  return root + "/d" + std::to_string(d);
}
std::string FileName(const std::string& root, uint32_t d, uint32_t f) {
  return DirName(root, d) + "/f" + std::to_string(f);
}

uint64_t FileSizeFor(const TreeSpec& spec, uint32_t d, uint32_t f) {
  // Deterministic per-file size: mean +/- 50%.
  common::Rng rng(spec.seed * 1000003 + d * 1009 + f);
  return spec.mean_file_bytes / 2 + rng.Uniform(spec.mean_file_bytes);
}

void FillPattern(std::vector<uint8_t>* buf, uint64_t tag) {
  for (size_t i = 0; i < buf->size(); i += 64) {
    (*buf)[i] = static_cast<uint8_t>(tag + i);
  }
}

}  // namespace

UtilityResult BuildTree(vfs::FileSystem* fs, sim::Clock* clock, const std::string& root,
                        const TreeSpec& spec) {
  UtilityResult r;
  uint64_t t0 = clock->Now();
  fs->Mkdir(root);
  std::vector<uint8_t> buf;
  for (uint32_t d = 0; d < spec.dirs; ++d) {
    SPLITFS_CHECK_OK(fs->Mkdir(DirName(root, d)));
    for (uint32_t f = 0; f < spec.files_per_dir; ++f) {
      uint64_t size = FileSizeFor(spec, d, f);
      buf.assign(size, 0);
      FillPattern(&buf, d * 131 + f);
      int fd = fs->Open(FileName(root, d, f), vfs::kRdWr | vfs::kCreate | vfs::kTrunc);
      SPLITFS_CHECK(fd >= 0);
      SPLITFS_CHECK(fs->Write(fd, buf.data(), buf.size()) ==
                    static_cast<ssize_t>(buf.size()));
      SPLITFS_CHECK_OK(fs->Fsync(fd));
      SPLITFS_CHECK_OK(fs->Close(fd));
      ++r.files;
      r.bytes += size;
    }
  }
  r.sim_ns = clock->Now() - t0;
  return r;
}

UtilityResult RunGit(vfs::FileSystem* fs, sim::Clock* clock, const std::string& tree_root,
                     const std::string& git_dir, const TreeSpec& spec, int rounds,
                     double dirty_fraction) {
  UtilityResult r;
  uint64_t t0 = clock->Now();
  fs->Mkdir(git_dir);
  fs->Mkdir(git_dir + "/objects");
  common::Rng rng(spec.seed + 99);
  std::vector<uint8_t> buf;
  uint64_t object_id = 0;

  for (int round = 0; round < rounds; ++round) {
    // "git add": hash dirty files into loose objects under objects/xx/.
    for (uint32_t d = 0; d < spec.dirs; ++d) {
      for (uint32_t f = 0; f < spec.files_per_dir; ++f) {
        if (rng.NextDouble() >= dirty_fraction) {
          continue;
        }
        // Read the source file (hash-object reads the worktree file).
        uint64_t size = FileSizeFor(spec, d, f);
        buf.resize(size);
        int sfd = fs->Open(FileName(tree_root, d, f), vfs::kRdOnly);
        SPLITFS_CHECK(sfd >= 0);
        SPLITFS_CHECK(fs->Read(sfd, buf.data(), size) == static_cast<ssize_t>(size));
        fs->Close(sfd);
        // Write the loose object: fan-out dir, temp file, fsync, rename into place.
        std::string fan = git_dir + "/objects/" + std::to_string(object_id % 256);
        fs->Mkdir(fan);  // Usually EEXIST.
        std::string tmp = fan + "/tmp_obj";
        std::string final_name = fan + "/" + std::to_string(object_id++);
        int ofd = fs->Open(tmp, vfs::kRdWr | vfs::kCreate | vfs::kTrunc);
        SPLITFS_CHECK(ofd >= 0);
        SPLITFS_CHECK(fs->Write(ofd, buf.data(), size) == static_cast<ssize_t>(size));
        // git does not fsync loose objects by default (core.fsyncObjectFiles=false).
        SPLITFS_CHECK_OK(fs->Close(ofd));
        SPLITFS_CHECK_OK(fs->Rename(tmp, final_name));
        ++r.files;
        r.bytes += size;
      }
    }
    // Index rewrite: write index.lock, fsync, rename over index.
    {
      uint64_t index_bytes = static_cast<uint64_t>(spec.dirs) * spec.files_per_dir * 64;
      buf.assign(index_bytes, 0);
      FillPattern(&buf, round);
      int ifd = fs->Open(git_dir + "/index.lock", vfs::kRdWr | vfs::kCreate | vfs::kTrunc);
      SPLITFS_CHECK(ifd >= 0);
      SPLITFS_CHECK(fs->Write(ifd, buf.data(), buf.size()) ==
                    static_cast<ssize_t>(buf.size()));
      SPLITFS_CHECK_OK(fs->Fsync(ifd));
      SPLITFS_CHECK_OK(fs->Close(ifd));
      SPLITFS_CHECK_OK(fs->Rename(git_dir + "/index.lock", git_dir + "/index"));
    }
    // "git commit": tree + commit objects and a ref update.
    for (int obj = 0; obj < 2; ++obj) {
      buf.assign(512, 0);
      std::string fan = git_dir + "/objects/" + std::to_string(object_id % 256);
      fs->Mkdir(fan);
      std::string path = fan + "/" + std::to_string(object_id++);
      int cfd = fs->Open(path, vfs::kRdWr | vfs::kCreate);
      SPLITFS_CHECK(cfd >= 0);
      SPLITFS_CHECK(fs->Write(cfd, buf.data(), buf.size()) ==
                    static_cast<ssize_t>(buf.size()));
      SPLITFS_CHECK_OK(fs->Close(cfd));
      ++r.files;
      r.bytes += buf.size();
    }
    {
      int rfd = fs->Open(git_dir + "/HEAD.lock", vfs::kRdWr | vfs::kCreate | vfs::kTrunc);
      SPLITFS_CHECK(rfd >= 0);
      SPLITFS_CHECK(fs->Write(rfd, "ref", 3) == 3);
      SPLITFS_CHECK_OK(fs->Fsync(rfd));
      SPLITFS_CHECK_OK(fs->Close(rfd));
      SPLITFS_CHECK_OK(fs->Rename(git_dir + "/HEAD.lock", git_dir + "/HEAD"));
    }
  }
  r.sim_ns = clock->Now() - t0;
  return r;
}

UtilityResult RunTar(vfs::FileSystem* fs, sim::Clock* clock, const std::string& tree_root,
                     const std::string& archive_path, const TreeSpec& spec) {
  UtilityResult r;
  uint64_t t0 = clock->Now();
  int afd = fs->Open(archive_path, vfs::kRdWr | vfs::kCreate | vfs::kTrunc);
  SPLITFS_CHECK(afd >= 0);
  std::vector<uint8_t> header(512, 0);
  std::vector<uint8_t> buf;
  for (uint32_t d = 0; d < spec.dirs; ++d) {
    for (uint32_t f = 0; f < spec.files_per_dir; ++f) {
      uint64_t size = FileSizeFor(spec, d, f);
      buf.resize(size);
      int sfd = fs->Open(FileName(tree_root, d, f), vfs::kRdOnly);
      SPLITFS_CHECK(sfd >= 0);
      SPLITFS_CHECK(fs->Read(sfd, buf.data(), size) == static_cast<ssize_t>(size));
      fs->Close(sfd);
      // 512 B header + payload padded to 512.
      SPLITFS_CHECK(fs->Write(afd, header.data(), header.size()) == 512);
      SPLITFS_CHECK(fs->Write(afd, buf.data(), size) == static_cast<ssize_t>(size));
      uint64_t pad = (512 - size % 512) % 512;
      if (pad != 0) {
        SPLITFS_CHECK(fs->Write(afd, header.data(), pad) == static_cast<ssize_t>(pad));
      }
      ++r.files;
      r.bytes += size;
    }
  }
  SPLITFS_CHECK_OK(fs->Fsync(afd));
  SPLITFS_CHECK_OK(fs->Close(afd));
  r.sim_ns = clock->Now() - t0;
  return r;
}

UtilityResult RunRsync(vfs::FileSystem* fs, sim::Clock* clock,
                       const std::string& tree_root, const std::string& dst_root,
                       const TreeSpec& spec) {
  UtilityResult r;
  uint64_t t0 = clock->Now();
  fs->Mkdir(dst_root);
  std::vector<uint8_t> buf;
  for (uint32_t d = 0; d < spec.dirs; ++d) {
    SPLITFS_CHECK_OK(fs->Mkdir(DirName(dst_root, d)));
    for (uint32_t f = 0; f < spec.files_per_dir; ++f) {
      uint64_t size = FileSizeFor(spec, d, f);
      buf.resize(size);
      int sfd = fs->Open(FileName(tree_root, d, f), vfs::kRdOnly);
      SPLITFS_CHECK(sfd >= 0);
      SPLITFS_CHECK(fs->Read(sfd, buf.data(), size) == static_cast<ssize_t>(size));
      fs->Close(sfd);
      // rsync writes .tmp and renames into place (no per-file fsync by default).
      std::string tmp = FileName(dst_root, d, f) + ".tmp";
      int dfd = fs->Open(tmp, vfs::kRdWr | vfs::kCreate | vfs::kTrunc);
      SPLITFS_CHECK(dfd >= 0);
      SPLITFS_CHECK(fs->Write(dfd, buf.data(), size) == static_cast<ssize_t>(size));
      SPLITFS_CHECK_OK(fs->Close(dfd));
      SPLITFS_CHECK_OK(fs->Rename(tmp, FileName(dst_root, d, f)));
      ++r.files;
      r.bytes += size;
    }
  }
  r.sim_ns = clock->Now() - t0;
  return r;
}

}  // namespace wl
