// File-system microbenchmarks from the paper's evaluation:
//   * Varmail-like per-syscall latency sequence (§5.4, Table 6);
//   * IO-pattern sweeps: seq/rand read, seq/rand write, append (§5.6, Figure 4);
//   * append / sequential-overwrite loops with periodic fsync (§5.5, Figure 3;
//     Table 1's 4 KB-append overhead).
#ifndef SRC_WORKLOADS_MICROBENCH_H_
#define SRC_WORKLOADS_MICROBENCH_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/random.h"
#include "src/sim/clock.h"
#include "src/vfs/file_system.h"

namespace wl {

// --- Table 6: varmail-like syscall latency ----------------------------------------------

struct SyscallLatencies {
  // Mean simulated nanoseconds per call, keyed by syscall name
  // (open/close/append/fsync/read/unlink).
  std::map<std::string, double> mean_ns;
};

// Runs `iterations` of the paper's sequence: create + 4x(4K append + fsync), close,
// open, read 16K, close, open+close, unlink — measuring each call class.
SyscallLatencies RunVarmail(vfs::FileSystem* fs, sim::Clock* clock, int iterations,
                            const std::string& dir);

// --- Figures 3/4 and Table 1: data-path loops ---------------------------------------------

struct IoResult {
  uint64_t ops = 0;
  uint64_t bytes = 0;
  uint64_t sim_ns = 0;
  double MopsPerSec() const {
    return sim_ns == 0 ? 0 : static_cast<double>(ops) * 1e3 / static_cast<double>(sim_ns);
  }
  double NsPerOp() const {
    return ops == 0 ? 0 : static_cast<double>(sim_ns) / static_cast<double>(ops);
  }
};

// Appends `total_bytes` in `op_bytes` chunks; fsync every `fsync_every` ops
// (0 = never). Fresh file at `path`.
IoResult RunAppend(vfs::FileSystem* fs, sim::Clock* clock, const std::string& path,
                   uint64_t total_bytes, uint64_t op_bytes, uint64_t fsync_every);

// Sequential overwrite over an existing file of `total_bytes`.
IoResult RunSeqOverwrite(vfs::FileSystem* fs, sim::Clock* clock, const std::string& path,
                         uint64_t total_bytes, uint64_t op_bytes, uint64_t fsync_every);

// Random 4K overwrites, `ops` operations over a `file_bytes` file.
IoResult RunRandOverwrite(vfs::FileSystem* fs, sim::Clock* clock, const std::string& path,
                          uint64_t file_bytes, uint64_t op_bytes, uint64_t ops,
                          uint64_t fsync_every, uint64_t seed);

// Sequential / random reads over an existing file.
IoResult RunSeqRead(vfs::FileSystem* fs, sim::Clock* clock, const std::string& path,
                    uint64_t total_bytes, uint64_t op_bytes);
IoResult RunRandRead(vfs::FileSystem* fs, sim::Clock* clock, const std::string& path,
                     uint64_t file_bytes, uint64_t op_bytes, uint64_t ops, uint64_t seed);

// Creates a file of `total_bytes` (written + fsync'd) for read benchmarks.
void PrepareFile(vfs::FileSystem* fs, const std::string& path, uint64_t total_bytes);

}  // namespace wl

#endif  // SRC_WORKLOADS_MICROBENCH_H_
