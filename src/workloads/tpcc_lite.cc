#include "src/workloads/tpcc_lite.h"

#include <vector>

#include "src/common/status.h"

namespace wl {

namespace {
constexpr uint64_t kPage = 4096;
}

TpccLite::TpccLite(apps::WalDb* db, TpccConfig cfg)
    : db_(db), cfg_(cfg), rng_(cfg.seed) {}

// Table layout: consecutive page ranges.
uint64_t TpccLite::WarehousePage(uint32_t w) const { return w; }
uint64_t TpccLite::DistrictPage(uint32_t w, uint32_t d) const {
  return cfg_.warehouses + static_cast<uint64_t>(w) * cfg_.districts_per_wh + d;
}
uint64_t TpccLite::CustomerPage(uint32_t w, uint32_t d, uint32_t c) const {
  uint64_t base = cfg_.warehouses + static_cast<uint64_t>(cfg_.warehouses) * cfg_.districts_per_wh;
  uint64_t per_page = kPage / 512;  // 512 B customer rows.
  uint64_t idx = (static_cast<uint64_t>(w) * cfg_.districts_per_wh + d) *
                     cfg_.customers_per_district +
                 c;
  return base + idx / per_page;
}
uint64_t TpccLite::StockPage(uint32_t item) const {
  uint64_t cust_pages = static_cast<uint64_t>(cfg_.warehouses) * cfg_.districts_per_wh *
                            cfg_.customers_per_district / (kPage / 512) +
                        1;
  uint64_t base = cfg_.warehouses +
                  static_cast<uint64_t>(cfg_.warehouses) * cfg_.districts_per_wh +
                  cust_pages;
  return base + item / (kPage / 256);  // 256 B stock rows.
}
uint64_t TpccLite::OrderPage(uint64_t order_id) const {
  uint64_t stock_pages = cfg_.items / (kPage / 256) + 1;
  return StockPage(cfg_.items - 1) + stock_pages + order_id / (kPage / 1024);
}

void TpccLite::TouchRead(uint64_t page) {
  std::vector<uint8_t> buf(kPage);
  SPLITFS_CHECK_OK(db_->ReadPage(page, buf.data()));
}

void TpccLite::TouchWrite(uint64_t page) {
  std::vector<uint8_t> buf(kPage);
  SPLITFS_CHECK_OK(db_->ReadPage(page, buf.data()));
  buf[rng_.Uniform(kPage)] = static_cast<uint8_t>(rng_.Next());
  SPLITFS_CHECK_OK(db_->WritePage(page, buf.data()));
}

void TpccLite::Load(sim::Clock* clock) {
  (void)clock;
  std::vector<uint8_t> page(kPage, 0);
  db_->Begin();
  uint64_t last = OrderPage(0);
  for (uint64_t p = 0; p <= last; ++p) {
    for (size_t i = 0; i < page.size(); i += 64) {
      page[i] = static_cast<uint8_t>(rng_.Next());
    }
    SPLITFS_CHECK_OK(db_->WritePage(p, page.data()));
    if (p % 64 == 63) {  // Commit in batches to bound txn size.
      SPLITFS_CHECK_OK(db_->Commit());
      db_->Begin();
    }
  }
  SPLITFS_CHECK_OK(db_->Commit());
}

void TpccLite::TxNewOrder() {
  uint32_t w = static_cast<uint32_t>(rng_.Uniform(cfg_.warehouses));
  uint32_t d = static_cast<uint32_t>(rng_.Uniform(cfg_.districts_per_wh));
  uint32_t c = static_cast<uint32_t>(rng_.Uniform(cfg_.customers_per_district));
  db_->Begin();
  TouchRead(WarehousePage(w));
  TouchWrite(DistrictPage(w, d));  // Next order id.
  TouchRead(CustomerPage(w, d, c));
  uint32_t lines = 5 + static_cast<uint32_t>(rng_.Uniform(11));  // 5-15 order lines.
  for (uint32_t l = 0; l < lines; ++l) {
    uint32_t item = static_cast<uint32_t>(rng_.Uniform(cfg_.items));
    TouchRead(StockPage(item));
    TouchWrite(StockPage(item));  // Quantity decrement.
  }
  TouchWrite(OrderPage(next_order_++));
  SPLITFS_CHECK_OK(db_->Commit());
  ++new_orders_;
}

void TpccLite::TxPayment() {
  uint32_t w = static_cast<uint32_t>(rng_.Uniform(cfg_.warehouses));
  uint32_t d = static_cast<uint32_t>(rng_.Uniform(cfg_.districts_per_wh));
  uint32_t c = static_cast<uint32_t>(rng_.Uniform(cfg_.customers_per_district));
  db_->Begin();
  TouchWrite(WarehousePage(w));  // YTD amount.
  TouchWrite(DistrictPage(w, d));
  TouchWrite(CustomerPage(w, d, c));  // Balance.
  SPLITFS_CHECK_OK(db_->Commit());
}

void TpccLite::TxOrderStatus() {
  uint32_t w = static_cast<uint32_t>(rng_.Uniform(cfg_.warehouses));
  uint32_t d = static_cast<uint32_t>(rng_.Uniform(cfg_.districts_per_wh));
  uint32_t c = static_cast<uint32_t>(rng_.Uniform(cfg_.customers_per_district));
  db_->Begin();
  TouchRead(CustomerPage(w, d, c));
  if (next_order_ > 0) {
    TouchRead(OrderPage(rng_.Uniform(next_order_)));
  }
  SPLITFS_CHECK_OK(db_->Commit());
}

void TpccLite::TxDelivery() {
  db_->Begin();
  for (uint32_t d = 0; d < cfg_.districts_per_wh; ++d) {
    if (next_order_ > 0) {
      TouchWrite(OrderPage(rng_.Uniform(next_order_)));  // Carrier assignment.
    }
  }
  SPLITFS_CHECK_OK(db_->Commit());
}

void TpccLite::TxStockLevel() {
  db_->Begin();
  for (int i = 0; i < 20; ++i) {
    TouchRead(StockPage(static_cast<uint32_t>(rng_.Uniform(cfg_.items))));
  }
  SPLITFS_CHECK_OK(db_->Commit());
}

TpccResult TpccLite::Run(uint64_t txn_count, sim::Clock* clock) {
  uint64_t t0 = clock->Now();
  for (uint64_t i = 0; i < txn_count; ++i) {
    clock->Advance(cfg_.app_cpu_ns_per_txn);
    uint64_t dice = rng_.Uniform(100);
    if (dice < 45) {
      TxNewOrder();
    } else if (dice < 88) {
      TxPayment();
    } else if (dice < 92) {
      TxOrderStatus();
    } else if (dice < 96) {
      TxDelivery();
    } else {
      TxStockLevel();
    }
  }
  return {txn_count, clock->Now() - t0};
}

}  // namespace wl
