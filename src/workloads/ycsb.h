// YCSB workload driver (Cooper et al., SoCC'10) over KvLsm — the paper's LevelDB
// benchmark (§5.2, §5.8, Table 7).
//
// Workload mixes (YCSB core):
//   A: 50% read / 50% update           B: 95% read / 5% update
//   C: 100% read                       D: 95% read-latest / 5% insert
//   E: 95% scan / 5% insert            F: 50% read / 50% read-modify-write
// Keys are zipfian (theta 0.99, scrambled); values default to 1 KB, YCSB's standard
// 10 fields x 100 B.
#ifndef SRC_WORKLOADS_YCSB_H_
#define SRC_WORKLOADS_YCSB_H_

#include <cstdint>
#include <string>

#include "src/apps/kv_lsm.h"
#include "src/common/random.h"
#include "src/sim/clock.h"

namespace wl {

enum class YcsbWorkload { kLoadA, kA, kB, kC, kD, kE, kF, kLoadE };

const char* YcsbName(YcsbWorkload w);

struct YcsbConfig {
  uint64_t record_count = 100000;  // Keyspace size (paper's small-scale run: 1M).
  uint64_t op_count = 100000;
  uint32_t value_bytes = 1024;
  uint32_t scan_max_len = 100;  // YCSB E scans up to 100 records.
  uint64_t seed = 42;
};

struct YcsbResult {
  uint64_t ops = 0;
  uint64_t sim_ns = 0;
  double Kops() const {
    return sim_ns == 0 ? 0 : static_cast<double>(ops) * 1e6 / static_cast<double>(sim_ns);
  }
};

class Ycsb {
 public:
  Ycsb(apps::KvLsm* store, YcsbConfig cfg);

  // Phase 1: load `record_count` records (this is "Load A"/"Load E").
  YcsbResult Load(sim::Clock* clock);
  // Phase 2: run `op_count` operations of the given mix.
  YcsbResult Run(YcsbWorkload w, sim::Clock* clock);

 private:
  std::string KeyFor(uint64_t n) const;
  std::string MakeValue(uint64_t n) const;

  apps::KvLsm* store_;
  YcsbConfig cfg_;
  common::Rng rng_;
  common::ZipfianGenerator zipf_;
  uint64_t inserted_;  // Grows with D/E inserts.
};

}  // namespace wl

#endif  // SRC_WORKLOADS_YCSB_H_
