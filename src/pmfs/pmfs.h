// PMFS baseline (Rao et al., EuroSys'14), modeled.
//
// Design reproduced: in-place data writes through direct PM access (no page cache),
// synchronous but non-atomic data operations, and fine-grained metadata journaling —
// small undo-log records (64 B) with clwb+fence per record, not whole-block journaling.
// This is the "sync" guarantee level SplitFS-sync is compared against (Table 3,
// Figure 4 middle group; Table 1: 4150 ns per 4 KB append).
#ifndef SRC_PMFS_PMFS_H_
#define SRC_PMFS_PMFS_H_

#include "src/vfs/pm_fs_base.h"

namespace pmfssim {

class Pmfs : public vfs::PmFsBase {
 public:
  explicit Pmfs(pmem::Device* dev);

  std::string Name() const override { return "PMFS"; }

 protected:
  ssize_t WriteData(BaseInode* inode, const void* buf, uint64_t n, uint64_t off) override;
  int SyncFile(BaseInode* inode) override;
  void OnMetadataOp(BaseInode* inode, const char* what) override;
  uint64_t OpenPathCost() const override { return ctx_->model.pmfs_open_path_ns; }
  uint64_t DirOpCost() const override { return ctx_->model.pmfs_dir_op_cpu_ns; }

 private:
  // Writes `n_entries` 64 B undo-log records + commit record, with PMFS's
  // flush/fence pattern, into the journal area.
  void JournalRecords(size_t n_entries);

  uint64_t journal_cursor_ = 0;
};

}  // namespace pmfssim

#endif  // SRC_PMFS_PMFS_H_
