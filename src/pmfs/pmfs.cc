#include "src/pmfs/pmfs.h"

#include <array>

#include "src/common/bytes.h"

namespace pmfssim {

using common::kBlockSize;
using common::kCacheLineSize;

namespace {
constexpr uint64_t kJournalBlocks = 1024;  // 4 MB undo-journal area.
}

Pmfs::Pmfs(pmem::Device* dev) : PmFsBase(dev, kJournalBlocks) {}

void Pmfs::JournalRecords(size_t n_entries) {
  // PMFS journals metadata with small undo records: temporal store + clwb per record,
  // one fence before and one after the commit record.
  static const std::array<uint8_t, kCacheLineSize> record{};
  for (size_t i = 0; i <= n_entries; ++i) {  // +1 for the commit record.
    if (journal_cursor_ + kCacheLineSize > meta_region_bytes_) {
      journal_cursor_ = 0;
    }
    dev_->StoreTemporal(meta_region_start_ + journal_cursor_, record.data(),
                        kCacheLineSize, sim::PmWriteKind::kJournal);
    dev_->Clwb(meta_region_start_ + journal_cursor_, kCacheLineSize);
    ctx_->ChargeCpu(ctx_->model.pmfs_journal_entry_cpu_ns);
    if (i == n_entries - 1) {
      dev_->Fence();  // Records persist before the commit record is written.
    }
    journal_cursor_ += kCacheLineSize;
  }
  dev_->Fence();
}

ssize_t Pmfs::WriteData(BaseInode* inode, const void* buf, uint64_t n, uint64_t off) {
  ctx_->ChargeCpu(ctx_->model.pmfs_write_path_ns);
  bool extends = off + n > inode->size;
  bool allocates = extends || !inode->extents.Lookup(off / kBlockSize).has_value();
  if (allocates) {
    // Allocation mutates the inode B-tree and allocator state: journaled (inode,
    // B-tree node, allocator bitmap).
    ctx_->ChargeCpu(ctx_->model.pmfs_btree_cpu_ns);
    JournalRecords(3);
  }
  ssize_t rc = WriteExtentsInPlace(inode, buf, n, off, ctx_->model.pmfs_alloc_cpu_ns);
  if (rc < 0) {
    return rc;
  }
  if (extends) {
    inode->size = off + n;
    // i_size update: one persistent inode line, flushed synchronously.
    static const std::array<uint8_t, kCacheLineSize> line{};
    dev_->StoreTemporal(meta_region_start_, line.data(), kCacheLineSize,
                        sim::PmWriteKind::kMetadata);
    dev_->Clwb(meta_region_start_, kCacheLineSize);
  }
  dev_->Fence();  // PMFS data ops are synchronous (Table 3: sync guarantee).
  return rc;
}

int Pmfs::SyncFile(BaseInode* inode) {
  // Everything was persisted at operation time; fsync only drains the pipeline.
  dev_->Fence();
  return 0;
}

void Pmfs::OnMetadataOp(BaseInode* inode, const char* what) {
  ctx_->ChargeCpu(ctx_->model.pmfs_btree_cpu_ns);
  JournalRecords(3);
}

}  // namespace pmfssim
