// Deterministic pseudo-random generators for workloads and property tests.
//
// xoshiro-style 64-bit PRNG plus the YCSB scrambled-zipfian distribution used by the
// paper's key-value workloads (§5.2). All generators are seedable so every benchmark and
// test run is reproducible.
#ifndef SRC_COMMON_RANDOM_H_
#define SRC_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "src/common/status.h"

namespace common {

// SplitMix64/xorshift-based PRNG. Small, fast, and good enough for workload generation.
class Rng {
 public:
  explicit Rng(uint64_t seed = kDefaultSeed) : state_(seed ? seed : kDefaultSeed) {}

  uint64_t Next() {
    // splitmix64 step.
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    SPLITFS_CHECK(n > 0);
    return Next() % n;
  }

  // Uniform in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) {
    SPLITFS_CHECK(lo <= hi);
    return lo + Uniform(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

 private:
  static constexpr uint64_t kDefaultSeed = 0x853C49E6748FEA9Bull;
  uint64_t state_;
};

// Zipfian generator over [0, n) with YCSB's default theta = 0.99, including the
// "scrambled" variant YCSB uses so hot keys are spread across the keyspace.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 1)
      : n_(n), theta_(theta), rng_(seed) {
    SPLITFS_CHECK(n > 0);
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) / (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() {
    double u = rng_.NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    return static_cast<uint64_t>(static_cast<double>(n_) *
                                 std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

  // YCSB-style scrambled zipfian: hash the rank so hot items are scattered.
  uint64_t NextScrambled() {
    uint64_t v = Next();
    v = v * 0xC6A4A7935BD1E995ull;
    v ^= v >> 47;
    return v % n_;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  Rng rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace common

#endif  // SRC_COMMON_RANDOM_H_
