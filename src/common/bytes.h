// Byte-size literals and alignment helpers shared across the whole stack.
#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>

namespace common {

inline constexpr uint64_t kKiB = 1024ull;
inline constexpr uint64_t kMiB = 1024ull * kKiB;
inline constexpr uint64_t kGiB = 1024ull * kMiB;

inline constexpr uint64_t kCacheLineSize = 64;
inline constexpr uint64_t kBlockSize = 4096;       // FS block == PM page.
inline constexpr uint64_t kHugePageSize = 2 * kMiB;

// Rounds `v` down to a multiple of `align` (power of two not required).
constexpr uint64_t AlignDown(uint64_t v, uint64_t align) { return v - (v % align); }

// Rounds `v` up to a multiple of `align`.
constexpr uint64_t AlignUp(uint64_t v, uint64_t align) {
  return AlignDown(v + align - 1, align);
}

constexpr bool IsAligned(uint64_t v, uint64_t align) { return v % align == 0; }

// Number of `unit`-sized chunks needed to cover `v` bytes.
constexpr uint64_t DivCeil(uint64_t v, uint64_t unit) { return (v + unit - 1) / unit; }

}  // namespace common

#endif  // SRC_COMMON_BYTES_H_
