#include "src/common/service_pool.h"

#include <algorithm>
#include <utility>

namespace common {

thread_local const ServicePool* ServicePool::tls_running_in_ = nullptr;

ServicePool::ServicePool(std::string name, int threads) : name_(std::move(name)) {
  int n = std::max(1, threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServicePool::~ServicePool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
  // Jobs still queued at destruction are dropped; clients fence their own work
  // with Drain() before letting go of the pool.
}

void ServicePool::Submit(uint64_t client_key, std::function<void()> job,
                         bool dedup_queued) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) {
      return;
    }
    if (dedup_queued) {
      // pending_ counts queued + running; only a *queued* twin may absorb this
      // submit. queued-for-key = pending - running-for-key, but tracking running
      // per key would cost a second map — instead scan the (short, bounded by
      // clients) queue directly.
      for (const Job& q : queue_) {
        if (q.key == client_key) {
          return;
        }
      }
    }
    queue_.push_back(Job{client_key, std::move(job)});
    ++pending_[client_key];
  }
  work_cv_.notify_one();
}

void ServicePool::Drain(uint64_t client_key) {
  std::unique_lock<std::mutex> lk(mu_);
  drain_cv_.wait(lk, [&] {
    return stop_ || pending_.find(client_key) == pending_.end();
  });
}

void ServicePool::DrainAll() {
  std::unique_lock<std::mutex> lk(mu_);
  drain_cv_.wait(lk, [&] { return stop_ || (queue_.empty() && running_total_ == 0); });
}

size_t ServicePool::QueueDepth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

void ServicePool::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (stop_) {
      return;
    }
    Job job = std::move(queue_.front());
    queue_.pop_front();
    ++running_total_;
    lk.unlock();
    tls_running_in_ = this;
    job.fn();
    tls_running_in_ = nullptr;
    lk.lock();
    --running_total_;
    auto it = pending_.find(job.key);
    if (it != pending_.end() && --it->second == 0) {
      pending_.erase(it);
    }
    drain_cv_.notify_all();
  }
}

}  // namespace common
