// Shared bounded service-thread pool (ROADMAP item 1, multi-tenant scale-out).
//
// One SplitFs instance per tenant used to mean one publisher thread + one staging
// replenisher thread per tenant, so N tenants cost O(N) service threads. A
// ServicePool inverts that: a fixed handful of workers serve jobs that any number
// of client instances *register* with, keyed by client so one tenant's teardown can
// fence exactly its own work. The tenant router owns three of these (publisher,
// staging replenisher, journal commit) and every mounted tenant shares them —
// total service threads are O(pools), not O(tenants).
//
// Simulation note: pool workers bind no sim::Clock::Lane, exactly like the private
// per-instance threads they replace, so their virtual-time charges land on the
// shared timeline that lane-based measurements ignore. Swapping a private thread
// for a pool is invisible to every foreground timeline.
#ifndef SRC_COMMON_SERVICE_POOL_H_
#define SRC_COMMON_SERVICE_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace common {

class ServicePool {
 public:
  // Spawns `threads` workers immediately (>= 1).
  ServicePool(std::string name, int threads = 1);
  ~ServicePool();
  ServicePool(const ServicePool&) = delete;
  ServicePool& operator=(const ServicePool&) = delete;

  // Enqueues `job` attributed to `client_key` (typically the client instance
  // pointer). With `dedup_queued`, the submit is dropped if a not-yet-running job
  // with the same key is already queued — a queued pass will observe the newer
  // state when it runs. Jobs already *running* never dedup a submit: a running
  // pass may have sampled state from before the caller's update, so dropping the
  // submit could lose the request (the journal-commit service depends on this).
  void Submit(uint64_t client_key, std::function<void()> job,
              bool dedup_queued = false);

  // Blocks until no queued or running job for `client_key` remains. Jobs submitted
  // concurrently with the drain (including by the drained jobs themselves) are
  // waited for too — the fence is "key is quiet", not "jobs as of entry are done".
  void Drain(uint64_t client_key);

  // Blocks until the pool is fully quiet (all keys).
  void DrainAll();

  size_t QueueDepth() const;
  int threads() const { return static_cast<int>(workers_.size()); }
  const std::string& name() const { return name_; }

  // True while the calling thread is a worker of *this* pool executing a job.
  // Clients that must not fence on their own service pass (the publisher's
  // checkpoint re-entry) consult this the way they used to compare thread ids
  // against their private thread.
  bool OnWorkerThread() const { return tls_running_in_ == this; }

 private:
  struct Job {
    uint64_t key;
    std::function<void()> fn;
  };

  void WorkerLoop();

  const std::string name_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for jobs / stop
  std::condition_variable drain_cv_;  // Drain()/DrainAll() waiters
  std::deque<Job> queue_;
  // Queued + running job count per client key (erased at zero).
  std::unordered_map<uint64_t, uint32_t> pending_;
  size_t running_total_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  static thread_local const ServicePool* tls_running_in_;
};

}  // namespace common

#endif  // SRC_COMMON_SERVICE_POOL_H_
