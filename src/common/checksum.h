// CRC32C (Castagnoli) used for the SplitFS operation-log transactional checksum (§3.3)
// and for SSTable block integrity in the example applications.
#ifndef SRC_COMMON_CHECKSUM_H_
#define SRC_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace common {

// Computes CRC32C over `data[0, n)`, seeded with `seed` (pass 0 for a fresh CRC).
// Software slice-by-1 implementation; speed is irrelevant here because benches report
// simulated time, but correctness (torn-entry detection) is load-bearing.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

// Convenience for "checksum everything except the checksum field itself" layouts:
// computes CRC32C over [p, p+skip_offset) ++ [p+skip_offset+4, p+n).
uint32_t Crc32cSkip4(const void* data, size_t n, size_t skip_offset);

}  // namespace common

#endif  // SRC_COMMON_CHECKSUM_H_
