// Minimal error-handling vocabulary for the repository.
//
// The VFS boundary speaks POSIX: `int` / `ssize_t` returns where negative values are
// -errno, exactly like kernel file-system code. Above that boundary, `Expected<T>`
// carries either a value or an errno code without exceptions.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace common {

// A POSIX error code; 0 means success. Stored positive (e.g. ENOENT).
class Errno {
 public:
  constexpr Errno() : code_(0) {}
  constexpr explicit Errno(int code) : code_(code < 0 ? -code : code) {}

  constexpr bool ok() const { return code_ == 0; }
  constexpr int code() const { return code_; }
  // The kernel-style negative form, suitable for ssize_t returns.
  constexpr int negated() const { return -code_; }

  friend constexpr bool operator==(Errno a, Errno b) { return a.code_ == b.code_; }

 private:
  int code_;
};

// Either a T or an Errno. Intentionally tiny; no exceptions involved.
template <typename T>
class Expected {
 public:
  Expected(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Errno err) : repr_(err) {}             // NOLINT(google-explicit-constructor)
  static Expected FromErrno(int code) { return Expected(Errno(code)); }

  bool ok() const { return std::holds_alternative<T>(repr_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Errno error() const { return ok() ? Errno() : std::get<Errno>(repr_); }

  T value_or(T fallback) const { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Errno> repr_;
};

namespace internal {
[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}
}  // namespace internal

}  // namespace common

// Invariant checks. These guard programmer errors (not user input) and stay enabled in
// release builds: a simulated storage stack that silently corrupts state is worthless.
#define SPLITFS_CHECK(expr)                                          \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::common::internal::CheckFailed(__FILE__, __LINE__, #expr);    \
    }                                                                \
  } while (0)

#define SPLITFS_CHECK_OK(expr)                                       \
  do {                                                               \
    auto _splitfs_check_rc = (expr);                                 \
    if (_splitfs_check_rc < 0) {                                     \
      ::common::internal::CheckFailed(__FILE__, __LINE__, #expr);    \
    }                                                                \
  } while (0)

#endif  // SRC_COMMON_STATUS_H_
