// Shared helpers for thread-laned structures (staging pool lanes, op-log lanes).
#ifndef SRC_COMMON_THREADING_H_
#define SRC_COMMON_THREADING_H_

#include <cstddef>
#include <functional>
#include <thread>

namespace common {

// Index of the calling thread's lane in [0, lanes): a stable hash of the thread id.
// Hash collisions (two threads sharing a lane) must only cost performance in the
// structures keyed by this, never correctness.
inline size_t ThreadLaneIndex(size_t lanes) {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % lanes;
}

}  // namespace common

#endif  // SRC_COMMON_THREADING_H_
