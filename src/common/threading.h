// Shared helpers for thread-laned structures (staging pool lanes, op-log lanes).
#ifndef SRC_COMMON_THREADING_H_
#define SRC_COMMON_THREADING_H_

#include <cstddef>
#include <functional>
#include <thread>

namespace common {

namespace internal {
// -1: no explicit lane pinned; fall back to hashing the thread id.
inline thread_local ptrdiff_t pinned_lane = -1;
}  // namespace internal

// Index of the calling thread's lane in [0, lanes). Pinned threads (workload
// workers, via ScopedThreadLane) get their worker index — the same lane every
// run, so lane collisions, and with them staging allocation order and every
// virtual-time charge downstream, are reproducible. Unpinned threads get a
// stable hash of the thread id; its collisions must only cost performance in
// the structures keyed by this, never correctness.
inline size_t ThreadLaneIndex(size_t lanes) {
  if (internal::pinned_lane >= 0) {
    return static_cast<size_t>(internal::pinned_lane) % lanes;
  }
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % lanes;
}

// RAII pin of this thread's lane index. Benchmark workers pin their worker index
// so repeated runs report identical virtual-time numbers; std::thread::id values
// vary run to run, and which workers happened to collide on a lane used to vary
// with them.
class ScopedThreadLane {
 public:
  explicit ScopedThreadLane(size_t lane)
      : prev_(internal::pinned_lane) {
    internal::pinned_lane = static_cast<ptrdiff_t>(lane);
  }
  ~ScopedThreadLane() { internal::pinned_lane = prev_; }
  ScopedThreadLane(const ScopedThreadLane&) = delete;
  ScopedThreadLane& operator=(const ScopedThreadLane&) = delete;

 private:
  ptrdiff_t prev_;
};

}  // namespace common

#endif  // SRC_COMMON_THREADING_H_
