// Epoch-based reclamation (EBR) for read-mostly snapshot structures.
//
// The lock-free read path (MmapCache translation snapshots) publishes immutable
// objects through a raw atomic pointer. Readers must be able to dereference the
// pointer without taking any shared-write atomic — a shared_ptr refcount bump would
// reintroduce exactly the contended cache line the refactor removes — so retired
// snapshots cannot be freed until every reader that might still hold them has moved
// on. This header provides the classic three-part answer:
//
//   * a global epoch counter, advanced by writers at each retirement;
//   * one *per-thread* reader slot: entering a read-side critical section pins the
//     current epoch into the calling thread's own cache line (no shared write);
//   * a retire list kept by each writer: an object retired at epoch E is freed once
//     every pinned slot has observed an epoch >= E (quiescence).
//
// The reader registry is process-global and shared by every domain user: a thread is
// either inside *some* read-side section or it is not, so one slot per thread
// suffices. Slots are registered on a thread's first pin and recycled when the
// thread exits. Writers (who already serialize on their structure's update mutex)
// pay the registry walk; readers never touch it after registration.
//
// Memory-order recipe (the standard EBR validation loop): a reader pins by storing
// the observed global epoch seq_cst and re-validating that the global epoch did not
// move; a writer unlinks the object, *then* advances the epoch, *then* scans the
// slots. In the seq_cst total order any reader the scan misses must re-validate
// after the advance, sees the new epoch, and therefore reloads the structure pointer
// after the unlink — it can never hold the retired object.
//
// None of this charges simulated time: epoch bookkeeping is DRAM-only work already
// folded into the read path's per-op CPU cost, which keeps single-threaded virtual
// timelines bit-identical to the mutex-based cache it replaces.
#ifndef SRC_COMMON_EPOCH_H_
#define SRC_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace common {

class EpochGc {
 private:
  struct Slot;  // Per-thread reader slot; defined below.

 public:
  // The process-wide reader registry + epoch counter.
  static EpochGc& Global() {
    static EpochGc* gc = new EpochGc();  // Leaked: threads may outlive any user.
    return *gc;
  }

  // RAII read-side critical section. While live, objects retired at or after the
  // pinned epoch stay allocated. Cheap: two stores to this thread's own slot plus a
  // validation load of the (read-mostly) global epoch.
  class ReadGuard {
   public:
    explicit ReadGuard(EpochGc* gc) : slot_(gc->SlotOfThisThread()) {
      for (;;) {
        uint64_t e = gc->epoch_.load(std::memory_order_seq_cst);
        slot_->pinned.store(e, std::memory_order_seq_cst);
        if (gc->epoch_.load(std::memory_order_seq_cst) == e) {
          return;  // Validated: any later retirement scan will see this pin.
        }
        // A writer advanced the epoch mid-pin; re-pin at the new epoch so the
        // structure pointer we are about to load is at least as new as the advance.
      }
    }
    ~ReadGuard() { slot_->pinned.store(kIdle, std::memory_order_release); }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    Slot* slot_;
  };

  // Writer side, called with the retiring structure's update lock held (calls from
  // different structures may race; the epoch counter and registry are internally
  // synchronized). Returns the retirement epoch to store alongside the object.
  uint64_t BeginRetire() { return epoch_.fetch_add(1, std::memory_order_seq_cst) + 1; }

  // True when every reader either is idle or pinned an epoch >= `retire_epoch`, i.e.
  // no read-side section can still reference an object retired at `retire_epoch`.
  bool Quiesced(uint64_t retire_epoch) {
    return retire_epoch <= QuiescedHorizon();
  }

  // One registry walk answering the quiescence question for *every* retirement at
  // once: all objects retired at an epoch <= the returned horizon are unreachable.
  // A reader pinned at epoch E validated the pin after any epoch-E retirement's
  // unlink, so it can hold only objects retired at epochs > E; the horizon is the
  // minimum pinned epoch (UINT64_MAX when no reader is pinned). This is what lets a
  // batched sweep free a whole retire list for the cost of a single walk instead of
  // one walk per retired object.
  uint64_t QuiescedHorizon() {
    std::lock_guard<std::mutex> lock(registry_mu_);
    uint64_t horizon = UINT64_MAX;
    for (const Slot* s : slots_) {
      uint64_t pinned = s->pinned.load(std::memory_order_seq_cst);
      if (pinned != kIdle && pinned < horizon) {
        horizon = pinned;
      }
    }
    return horizon;
  }

 private:
  static constexpr uint64_t kIdle = 0;  // Epochs start at 1, so 0 is never pinned.

  struct alignas(64) Slot {
    std::atomic<uint64_t> pinned{0};
  };

  EpochGc() = default;

  Slot* SlotOfThisThread() {
    thread_local Registration reg(this);
    return reg.slot;
  }

  // Registers a slot on the thread's first pin; recycles it at thread exit. The
  // slot object itself is never freed (retired slots go to a free list), so a
  // concurrent registry scan can always read `pinned` safely.
  struct Registration {
    explicit Registration(EpochGc* gc_in) : gc(gc_in) {
      std::lock_guard<std::mutex> lock(gc->registry_mu_);
      if (!gc->free_slots_.empty()) {
        slot = gc->free_slots_.back();
        gc->free_slots_.pop_back();
      } else {
        slot = new Slot();
        gc->slots_.push_back(slot);
      }
    }
    ~Registration() {
      slot->pinned.store(kIdle, std::memory_order_seq_cst);
      std::lock_guard<std::mutex> lock(gc->registry_mu_);
      gc->free_slots_.push_back(slot);
    }
    EpochGc* gc;
    Slot* slot = nullptr;
  };

  std::atomic<uint64_t> epoch_{1};
  std::mutex registry_mu_;
  std::vector<Slot*> slots_;       // Every slot ever created.
  std::vector<Slot*> free_slots_;  // Recyclable (owning thread exited).
};

// Per-structure retire list: objects unlinked from the structure but possibly still
// pinned by readers. The owner calls Retire() under its own update mutex; sweeps are
// *deferred* — a generation counter lets kSweepGeneration retirements accumulate
// before the next registry walk, so an invalidation storm (many back-to-back
// updates) pays one walk per batch instead of one per update, and each walk frees
// the whole quiesced prefix via a single QuiescedHorizon() query. Drain() busy-waits
// for full quiescence — destructor use, when the structure itself is going away.
template <typename T>
class RetireList {
 public:
  // Retirements between registry walks. Bounds the garbage a storm can pile up to a
  // constant factor while cutting the walk rate by the same factor. No size-based
  // backstop: a reader pinned across the storm blocks reclamation no matter how
  // often we sweep, so extra walks while the list is long would only re-create the
  // per-update walk cost this deferral removes (the list shrinks the moment the
  // pin drops and the next generation sweep runs).
  static constexpr uint64_t kSweepGeneration = 8;

  ~RetireList() {
    // Destructor contract: the owner is unreachable, so no reader can be pinned on
    // *these* objects even if other readers are mid-section elsewhere.
    for (const Entry& e : retired_) {
      delete e.object;
    }
  }

  void Retire(const T* object) {
    uint64_t epoch = EpochGc::Global().BeginRetire();
    retired_.push_back({object, epoch});
    if (++generation_ >= kSweepGeneration) {
      Sweep();
    }
  }

  // Frees every retired object whose epoch has quiesced: one registry walk for the
  // whole list, then a compaction of the survivors. Resets the sweep generation.
  void Sweep() {
    generation_ = 0;
    if (retired_.empty()) {
      return;
    }
    uint64_t horizon = EpochGc::Global().QuiescedHorizon();
    size_t kept = 0;
    for (size_t i = 0; i < retired_.size(); ++i) {
      if (retired_[i].epoch <= horizon) {
        delete retired_[i].object;
      } else {
        retired_[kept++] = retired_[i];
      }
    }
    retired_.resize(kept);
  }

  // Spins until every retired object is freed (readers are short critical sections).
  void Drain() {
    while (!retired_.empty()) {
      Sweep();
      if (!retired_.empty()) {
        std::this_thread::yield();
      }
    }
  }

  size_t PendingForTest() const { return retired_.size(); }

 private:
  struct Entry {
    const T* object;
    uint64_t epoch;
  };
  std::vector<Entry> retired_;
  uint64_t generation_ = 0;  // Retirements since the last sweep.
};

}  // namespace common

#endif  // SRC_COMMON_EPOCH_H_
