// Strata baseline (Kwon et al., SOSP'17), PM-only configuration, modeled.
//
// Design reproduced (§2.3, §6 of the SplitFS paper):
//   * LibFS writes every update — data and metadata — to a per-process *private log*
//     on PM. Writes are synchronous and atomic once in the log (strict guarantees).
//   * A digest step coalesces log entries and copies surviving data into the shared
//     area; digested data is what other processes see. Appends cannot be coalesced,
//     so append-heavy workloads write every byte twice (the 2× write-IO / PM-wear
//     claim SplitFS makes in §5.8).
//   * Reads consult the private-log index first, then the shared area.
//   * Digestion runs when the log passes a utilization threshold; under write-heavy
//     workloads it stalls the application, which is the structural reason SplitFS
//     outperforms Strata 1.7–2.25× on YCSB (Table 7).
#ifndef SRC_STRATA_STRATA_H_
#define SRC_STRATA_STRATA_H_

#include <map>

#include "src/vfs/pm_fs_base.h"

namespace stratasim {

struct StrataOptions {
  uint64_t private_log_bytes = 1024ull * 1024 * 1024;  // Paper used up to 20 GB.
  double digest_threshold = 0.30;  // Digest when the log is this full (Strata's 30%).
};

class Strata : public vfs::PmFsBase {
 public:
  Strata(pmem::Device* dev, StrataOptions opts = {});

  std::string Name() const override { return "Strata"; }

  // Test/bench introspection.
  uint64_t Digests() const { return digests_; }
  uint64_t LogUsedBytes() const { return log_used_; }
  // Forces a digest (tests; also models Strata's background digestion at idle).
  void DigestNow();

 protected:
  ssize_t WriteData(BaseInode* inode, const void* buf, uint64_t n, uint64_t off) override;
  ssize_t ReadData(BaseInode* inode, void* buf, uint64_t n, uint64_t off) override;
  int SyncFile(BaseInode* inode) override;
  void OnMetadataOp(BaseInode* inode, const char* what) override;
  uint64_t OpenPathCost() const override {
    return ctx_->model.kernel_work_ns + ctx_->model.strata_lease_cpu_ns;
  }
  uint64_t DirOpCost() const override { return ctx_->model.strata_log_cpu_ns; }

 private:
  // A not-yet-digested byte range living in the private log.
  struct LogPiece {
    uint64_t log_off = 0;  // Offset within the private log region.
    uint64_t len = 0;
  };

  // Appends a header + payload to the private log, digesting first if full.
  int LogAppend(BaseInode* inode, const void* buf, uint64_t n, uint64_t off);
  void Digest();

  StrataOptions opts_;
  uint64_t log_used_ = 0;
  uint64_t digests_ = 0;
  // Undigested pieces per inode, keyed by file offset (non-overlapping: a new write
  // over a pending piece replaces it in place — that is Strata's coalescing).
  std::map<vfs::Ino, std::map<uint64_t, LogPiece>> pending_;
};

}  // namespace stratasim

#endif  // SRC_STRATA_STRATA_H_
