#include "src/strata/strata.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

#include "src/common/bytes.h"

namespace stratasim {

using common::kBlockSize;
using common::kCacheLineSize;

namespace {
uint64_t MetaBlocksFor(pmem::Device* dev, const StrataOptions& opts) {
  // The private log cannot exceed a quarter of the device in this model.
  uint64_t bytes = std::min(opts.private_log_bytes, dev->size() / 4);
  return std::max<uint64_t>(bytes / kBlockSize, 64);
}
}  // namespace

Strata::Strata(pmem::Device* dev, StrataOptions opts)
    : PmFsBase(dev, MetaBlocksFor(dev, opts)), opts_(opts) {
  opts_.private_log_bytes = meta_region_bytes_;
}

int Strata::LogAppend(BaseInode* inode, const void* buf, uint64_t n, uint64_t off) {
  // Digest synchronously if the log is past its utilization threshold — this stall is
  // the structural cost SplitFS's relink avoids.
  uint64_t need = common::AlignUp(kCacheLineSize + n, kCacheLineSize);
  if (log_used_ + need >
      static_cast<uint64_t>(opts_.digest_threshold * opts_.private_log_bytes)) {
    Digest();
  }
  if (log_used_ + need > opts_.private_log_bytes) {
    return -ENOSPC;
  }
  ctx_->ChargeCpu(ctx_->model.strata_log_cpu_ns);

  // Header line + payload, non-temporal, one fence: the log write IS the synchronous,
  // atomic data operation.
  static const std::array<uint8_t, kCacheLineSize> header{};
  dev_->StoreNt(meta_region_start_ + log_used_, header.data(), kCacheLineSize,
                sim::PmWriteKind::kLog);
  uint64_t payload_off = log_used_ + kCacheLineSize;
  dev_->StoreNt(meta_region_start_ + payload_off, buf, n, sim::PmWriteKind::kUserData);
  dev_->Fence();

  // Index the piece, replacing (coalescing with) any overlapping pending pieces.
  auto& pieces = pending_[inode->ino];
  uint64_t end = off + n;
  auto it = pieces.upper_bound(off);
  if (it != pieces.begin()) {
    --it;
  }
  while (it != pieces.end() && it->first < end) {
    uint64_t p_start = it->first;
    LogPiece p = it->second;
    uint64_t p_end = p_start + p.len;
    if (p_end <= off) {
      ++it;
      continue;
    }
    it = pieces.erase(it);
    if (p_start < off) {
      pieces[p_start] = LogPiece{p.log_off, off - p_start};
    }
    if (p_end > end) {
      pieces[end] = LogPiece{p.log_off + (end - p_start), p_end - end};
    }
  }
  pieces[off] = LogPiece{payload_off, n};
  log_used_ += need;
  return 0;
}

void Strata::Digest() {
  ++digests_;
  std::vector<uint8_t> block(kBlockSize);
  for (auto& [ino, pieces] : pending_) {
    BaseInode* inode = GetInode(ino);
    if (inode == nullptr) {
      continue;
    }
    for (const auto& [off, piece] : pieces) {
      // Digest granularity is a block: even a small surviving entry costs a full
      // block write into the shared area (appends don't coalesce, §2.3).
      uint64_t first = off / kBlockSize;
      uint64_t last = (off + piece.len - 1) / kBlockSize;
      for (uint64_t lb = first; lb <= last; ++lb) {
        ctx_->ChargeCpu(ctx_->model.strata_digest_cpu_ns);
        auto hit = inode->extents.Lookup(lb);
        if (!hit) {
          std::vector<ext4sim::PhysExtent> fresh;
          if (!alloc_.AllocateBlocks(1, &fresh)) {
            continue;  // Shared area full; piece stays in the log.
          }
          inode->extents.Insert(lb, fresh[0].start, fresh[0].count);
          hit = inode->extents.Lookup(lb);
        }
        // Merge the logged bytes into the shared block and write it whole: this is
        // the second copy of the data (2x write IO on append-heavy workloads).
        uint64_t block_start = lb * kBlockSize;
        uint64_t from = std::max(off, block_start);
        uint64_t to = std::min(off + piece.len, block_start + kBlockSize);
        dev_->Load(hit->phys * kBlockSize, block.data(), kBlockSize,
                   /*sequential=*/true, sim::PmReadKind::kLog);
        dev_->Load(meta_region_start_ + piece.log_off + (from - off),
                   block.data() + (from - block_start), to - from,
                   /*sequential=*/true, sim::PmReadKind::kLog);
        dev_->StoreNt(hit->phys * kBlockSize, block.data(), kBlockSize,
                      sim::PmWriteKind::kLog);
      }
    }
    pieces.clear();
  }
  dev_->Fence();
  std::erase_if(pending_, [](const auto& kv) { return kv.second.empty(); });
  log_used_ = 0;
}

void Strata::DigestNow() {
  std::lock_guard<std::mutex> lock(mu_);
  Digest();
}

ssize_t Strata::WriteData(BaseInode* inode, const void* buf, uint64_t n, uint64_t off) {
  // LibFS: no kernel trap on the data path. PmFsBase::Pwrite charged one syscall
  // before calling us; refund it — Strata's whole point is user-level operation.
  ctx_->clock.Rewind(ctx_->model.syscall_ns);
  int rc = LogAppend(inode, buf, n, off);
  if (rc != 0) {
    return rc;
  }
  if (off + n > inode->size) {
    inode->size = off + n;
  }
  return static_cast<ssize_t>(n);
}

ssize_t Strata::ReadData(BaseInode* inode, void* buf, uint64_t n, uint64_t off) {
  ctx_->clock.Rewind(ctx_->model.syscall_ns);  // User-level read path.
  ctx_->ChargeCpu(ctx_->model.strata_read_path_ns);
  if (off >= inode->size) {
    return 0;
  }
  uint64_t end = std::min(off + n, inode->size);
  auto* dst = static_cast<uint8_t*>(buf);
  uint64_t cur = off;
  auto pit = pending_.find(inode->ino);

  while (cur < end) {
    const LogPiece* covering = nullptr;
    uint64_t piece_start = 0;
    uint64_t next_piece = end;
    if (pit != pending_.end()) {
      auto it = pit->second.upper_bound(cur);
      if (it != pit->second.begin()) {
        auto prev = std::prev(it);
        if (cur < prev->first + prev->second.len) {
          covering = &prev->second;
          piece_start = prev->first;
        }
      }
      if (covering == nullptr && it != pit->second.end()) {
        next_piece = std::min(end, it->first);
      }
    }
    if (covering != nullptr) {
      uint64_t delta = cur - piece_start;
      uint64_t span = std::min(end - cur, covering->len - delta);
      dev_->Load(meta_region_start_ + covering->log_off + delta, dst, span,
                 /*sequential=*/n >= kBlockSize, sim::PmReadKind::kUserData);
      dst += span;
      cur += span;
      continue;
    }
    uint64_t span = next_piece - cur;
    ssize_t rc = ReadExtents(inode, dst, span, cur);
    if (rc < 0) {
      return rc;
    }
    if (rc == 0) {
      std::memset(dst, 0, span);  // Hole.
      rc = static_cast<ssize_t>(span);
    }
    dst += rc;
    cur += static_cast<uint64_t>(rc);
  }
  return static_cast<ssize_t>(end - off);
}

int Strata::SyncFile(BaseInode* inode) {
  dev_->Fence();  // Log writes were already synchronous.
  return 0;
}

void Strata::OnMetadataOp(BaseInode* inode, const char* what) {
  // Metadata updates are log records too.
  static const std::array<uint8_t, kCacheLineSize> rec{};
  if (log_used_ + kCacheLineSize <= opts_.private_log_bytes) {
    dev_->StoreNt(meta_region_start_ + log_used_, rec.data(), kCacheLineSize,
                  sim::PmWriteKind::kLog);
    dev_->Fence();
    log_used_ += kCacheLineSize;
  }
  ctx_->ChargeCpu(ctx_->model.strata_log_cpu_ns);
  if (inode != nullptr && std::string_view(what) == "unlink") {
    pending_.erase(inode->ino);
  }
}

}  // namespace stratasim
