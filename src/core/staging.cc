#include "src/core/staging.h"

#include <algorithm>

#include "src/common/bytes.h"

namespace splitfs {

StagingPool::StagingPool(ext4sim::Ext4Dax* kfs, MmapCache* mmaps, const Options& opts,
                         const std::string& instance_tag)
    : kfs_(kfs), mmaps_(mmaps), ctx_(kfs->context()), opts_(opts) {
  dir_ = opts.runtime_dir + "/stage-" + instance_tag;
  kfs_->Mkdir(opts.runtime_dir);  // Idempotent; EEXIST is fine.
  SPLITFS_CHECK_OK(kfs_->Mkdir(dir_));
  for (uint32_t i = 0; i < opts_.num_staging_files; ++i) {
    SPLITFS_CHECK(CreateStageFile(/*background=*/false));
  }
}

StagingPool::~StagingPool() {
  for (auto& sf : files_) {
    if (sf.fd >= 0) {
      kfs_->Close(sf.fd);
    }
  }
  for (auto& sf : consumed_) {
    if (sf.fd >= 0) {
      kfs_->Close(sf.fd);
    }
  }
}

bool StagingPool::CreateStageFile(bool background) {
  uint64_t t0 = ctx_->clock.Now();
  StageFile sf;
  std::string path = dir_ + "/s" + std::to_string(files_created_);
  sf.path = path;
  sf.fd = kfs_->Open(path, vfs::kRdWr | vfs::kCreate);
  if (sf.fd < 0) {
    return false;
  }
  // Full-size fallocate (not KEEP_SIZE): crash recovery reads partial-block staged
  // bytes back through the kernel, which clips reads at i_size.
  int rc = kfs_->Fallocate(sf.fd, 0, opts_.staging_file_bytes, /*keep_size=*/false);
  if (rc != 0) {
    kfs_->Close(sf.fd);
    kfs_->Unlink(path);
    return false;
  }
  sf.ino = kfs_->InoOf(sf.fd);
  rc = kfs_->DaxMap(sf.fd, 0, opts_.staging_file_bytes, &sf.mappings);
  SPLITFS_CHECK(rc == 0 && !sf.mappings.empty());
  // The staging file is mapped once, up front; these mappings are what relink retains.
  ctx_->ChargeCpu(ctx_->model.mmap_syscall_ns);
  for (uint64_t chunk = 0; chunk < opts_.staging_file_bytes; chunk += common::kHugePageSize) {
    ctx_->ChargeHugePageSetup();
  }
  files_.push_back(std::move(sf));
  ++files_created_;
  if (background) {
    // Replenishment happens on the paper's background thread: take it off the
    // foreground clock (the work itself — allocation, mapping — really happened).
    ctx_->clock.Rewind(ctx_->clock.Now() - t0);
    ++background_creations_;
  }
  return true;
}

uint64_t StagingPool::DevOffsetOf(const StageFile& sf, uint64_t file_off) const {
  for (const auto& m : sf.mappings) {
    if (file_off >= m.file_off && file_off < m.file_off + m.len) {
      return m.dev_off + (file_off - m.file_off);
    }
  }
  SPLITFS_CHECK(false && "staging offset outside pre-allocated range");
  return 0;
}

bool StagingPool::ExtendInPlace(StagingAlloc* a, uint64_t n) {
  if (files_.empty()) {
    return false;
  }
  StageFile& sf = files_.front();
  if (sf.ino != a->staging_ino || sf.used != a->staging_off + a->len ||
      sf.used + n > opts_.staging_file_bytes) {
    return false;
  }
  // Must also stay within one device-contiguous mapping piece.
  for (const auto& m : sf.mappings) {
    if (a->staging_off >= m.file_off &&
        a->staging_off + a->len + n <= m.file_off + m.len) {
      sf.used += n;
      sf.handed_out += n;
      a->len += n;
      return true;
    }
  }
  return false;
}

void StagingPool::MarkRelinked(vfs::Ino ino, uint64_t end_off) {
  for (auto& sf : files_) {
    if (sf.ino == ino) {
      sf.used = std::max(sf.used,
                         std::min(common::AlignUp(end_off, common::kBlockSize),
                                  opts_.staging_file_bytes));
      return;
    }
  }
}

void StagingPool::Retire(StageFile* sf) {
  // The namespace work (close + unlink of the dead staging file) happens on the
  // paper's background thread: the work is real, the foreground clock doesn't pay.
  uint64_t t0 = ctx_->clock.Now();
  if (sf->fd >= 0) {
    kfs_->Close(sf->fd);
    sf->fd = -1;
  }
  kfs_->Unlink(sf->path);
  ctx_->clock.Rewind(ctx_->clock.Now() - t0);
  ++files_retired_;
}

void StagingPool::Release(const StagingAlloc& a) {
  for (auto& sf : files_) {
    if (sf.ino == a.staging_ino) {
      sf.handed_out -= std::min(sf.handed_out, a.len);
      return;  // Still in the allocation deque: never retired here.
    }
  }
  for (auto it = consumed_.begin(); it != consumed_.end(); ++it) {
    if (it->ino == a.staging_ino) {
      it->handed_out -= std::min(it->handed_out, a.len);
      if (it->handed_out == 0) {
        Retire(&*it);
        consumed_.erase(it);
      }
      return;
    }
  }
}

bool StagingPool::Allocate(uint64_t len, uint64_t align_mod,
                           std::vector<StagingAlloc>* out) {
  out->clear();
  uint64_t remaining = len;
  while (remaining > 0) {
    if (files_.empty() && !CreateStageFile(/*background=*/false)) {
      return false;
    }
    StageFile& sf = files_.front();
    // Two invariants: (1) a new allocation NEVER shares a block with a previous one
    // (relink moves whole blocks, including partially-used tails), and (2) the
    // staged offset is congruent to the target file offset mod the block size so
    // the aligned core can be relinked. Only ExtendInPlace continues mid-block.
    uint64_t desired_mod = (align_mod + (len - remaining)) % common::kBlockSize;
    uint64_t base = common::AlignUp(sf.used, common::kBlockSize);
    sf.used = std::min(base + desired_mod, opts_.staging_file_bytes);
    uint64_t avail = opts_.staging_file_bytes - sf.used;
    if (avail == 0) {
      // Active file consumed: drop it from the pool and let the background thread
      // replace it. The file and its fd stay alive only while StagedRange records
      // still reference staged bytes in it; once those are released it is retired.
      if (sf.handed_out == 0) {
        Retire(&sf);
      } else {
        consumed_.push_back(std::move(sf));
      }
      files_.pop_front();
      if (files_.empty()) {
        SPLITFS_CHECK(CreateStageFile(/*background=*/false));
      } else {
        CreateStageFile(/*background=*/true);
      }
      continue;
    }
    // Also respect physical-piece boundaries so each alloc is device-contiguous.
    uint64_t take = std::min(remaining, avail);
    uint64_t dev_off = DevOffsetOf(sf, sf.used);
    // Clip to the containing mapping piece.
    for (const auto& m : sf.mappings) {
      if (sf.used >= m.file_off && sf.used < m.file_off + m.len) {
        take = std::min(take, m.file_off + m.len - sf.used);
        break;
      }
    }
    out->push_back({sf.ino, sf.fd, sf.used, dev_off, take});
    sf.used += take;
    sf.handed_out += take;
    remaining -= take;
  }
  return true;
}

uint64_t StagingPool::MemoryUsageBytes() const {
  uint64_t total = sizeof(*this);
  for (const auto& sf : files_) {
    total += sizeof(sf) + sf.mappings.size() * sizeof(ext4sim::Ext4Dax::DaxMapping);
  }
  for (const auto& sf : consumed_) {
    total += sizeof(sf) + sf.mappings.size() * sizeof(ext4sim::Ext4Dax::DaxMapping);
  }
  return total;
}

}  // namespace splitfs
