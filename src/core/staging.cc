#include "src/core/staging.h"

#include <algorithm>

#include "src/common/bytes.h"
#include "src/common/service_pool.h"
#include "src/common/threading.h"
#include "src/sim/token_bucket.h"

namespace splitfs {

StagingPool::StagingPool(ext4sim::Ext4Dax* kfs, MmapCache* mmaps, const Options& opts,
                         const std::string& instance_tag, const Services& services)
    : kfs_(kfs), mmaps_(mmaps), ctx_(kfs->context()), opts_(opts), services_(services) {
  dir_ = opts.runtime_dir + "/stage-" + instance_tag;
  qos_resource_ = "tenant." + instance_tag + ".staging_throttle";
  kfs_->Mkdir(opts.runtime_dir);  // Idempotent; EEXIST is fine.
  // A prior incarnation of this tag (tenant remount churn) may have left the dir
  // and scratch files behind; staging contents are meaningless until relinked, so
  // reuse is safe.
  int mkdir_rc = kfs_->Mkdir(dir_);
  SPLITFS_CHECK(mkdir_rc == 0 || mkdir_rc == -EEXIST);
  lanes_.reserve(std::max<uint32_t>(opts_.staging_lanes, 1));
  for (uint32_t i = 0; i < std::max<uint32_t>(opts_.staging_lanes, 1); ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  {
    std::lock_guard<std::mutex> pl(pool_mu_);
    for (uint32_t i = 0; i < opts_.num_staging_files; ++i) {
      SPLITFS_CHECK(CreateStageFileLocked(CreateMode::kForeground));
    }
  }
  // Shared-pool replenishment substitutes for the private thread; with neither,
  // the deterministic inline fallback stands in.
  if (opts_.replenish_thread && !UseReplenishPool()) {
    replenisher_ = std::thread([this] { ReplenishLoop(); });
  }
}

StagingPool::~StagingPool() {
  if (replenisher_.joinable()) {
    {
      std::lock_guard<std::mutex> pl(pool_mu_);
      stop_ = true;
    }
    replenish_cv_.notify_all();
    replenisher_.join();
  } else if (UseReplenishPool()) {
    {
      std::lock_guard<std::mutex> pl(pool_mu_);
      stop_ = true;
    }
    // Fence our replenish jobs out of the shared pool before tearing down the
    // queues they push into.
    services_.replenisher_pool->Drain(reinterpret_cast<uint64_t>(this));
  }
  for (auto& lane : lanes_) {
    if (lane->active && lane->active->fd >= 0) {
      kfs_->Close(lane->active->fd);
    }
  }
  for (auto& sf : spare_) {
    if (sf.fd >= 0) {
      kfs_->Close(sf.fd);
    }
  }
  for (auto& sf : consumed_) {
    if (sf.fd >= 0) {
      kfs_->Close(sf.fd);
    }
  }
}

StagingPool::Lane& StagingPool::LaneOfThisThread() {
  return *lanes_[common::ThreadLaneIndex(lanes_.size())];
}

bool StagingPool::CreateStageFile(CreateMode mode, StageFile* out) {
  // Deterministic background mode: the work happens inline (same store sequence
  // every run) but is attributed to the §3.5 background thread — the charge is
  // rewound and no resource stamp accumulates it, exactly as when the real
  // replenisher (which has no lane) does it.
  std::optional<sim::ScopedOffClock> off;
  if (mode == CreateMode::kBackgroundInline) {
    off.emplace(&ctx_->clock);
  }
  StageFile sf;
  std::string path = dir_ + "/s" +
                     std::to_string(files_created_.fetch_add(1, std::memory_order_relaxed));
  sf.path = path;
  sf.fd = kfs_->Open(path, vfs::kRdWr | vfs::kCreate);
  if (sf.fd < 0) {
    return false;
  }
  // Full-size fallocate (not KEEP_SIZE): crash recovery reads partial-block staged
  // bytes back through the kernel, which clips reads at i_size.
  int rc = kfs_->Fallocate(sf.fd, 0, opts_.staging_file_bytes, /*keep_size=*/false);
  if (rc != 0) {
    kfs_->Close(sf.fd);
    kfs_->Unlink(path);
    return false;
  }
  sf.ino = kfs_->InoOf(sf.fd);
  rc = kfs_->DaxMap(sf.fd, 0, opts_.staging_file_bytes, &sf.mappings);
  SPLITFS_CHECK(rc == 0 && !sf.mappings.empty());
  // The staging file is mapped once, up front; these mappings are what relink retains.
  ctx_->ChargeCpu(ctx_->model.mmap_syscall_ns);
  for (uint64_t chunk = 0; chunk < opts_.staging_file_bytes; chunk += common::kHugePageSize) {
    ctx_->ChargeHugePageSetup();
  }
  if (mode != CreateMode::kForeground) {
    background_creations_.fetch_add(1, std::memory_order_relaxed);
  }
  *out = std::move(sf);
  return true;
}

bool StagingPool::CreateStageFileLocked(CreateMode mode) {
  StageFile sf;
  if (!CreateStageFile(mode, &sf)) {
    return false;
  }
  spare_.push_back(std::move(sf));
  return true;
}

bool StagingPool::RefillLaneLocked(Lane* lane) {
  // QoS admission: one token per staging file this lane takes. The throttle
  // advances only the taker's own timeline and is attributed to the tenant.
  if (services_.staging_tokens != nullptr) {
    uint64_t throttled = services_.staging_tokens->Take(&ctx_->clock);
    obs::ReportWait(&ctx_->obs, &ctx_->clock, qos_resource_.c_str(), throttled);
  }
  std::lock_guard<std::mutex> pl(pool_mu_);
  if (spare_.empty()) {
    // Exhausted faster than replenishment: the application pays for the new file, as
    // it would if the paper's background thread fell behind.
    sim::ScopedResourceTime serial(&pool_stamp_, &ctx_->clock);
    obs::ReportWait(&ctx_->obs, &ctx_->clock, "staging.slow_path", serial.waited_ns());
    obs::ScopedSpan span(&ctx_->obs.tracer, &ctx_->clock, "staging",
                         "staging.foreground_create");
    if (!CreateStageFileLocked(CreateMode::kForeground)) {
      return false;
    }
  }
  lane->active = std::move(spare_.front());
  spare_.pop_front();
  if (spare_.size() < opts_.num_staging_files) {
    KickReplenisherLocked();
  }
  return true;
}

void StagingPool::ConsumeActiveLocked(Lane* lane) {
  std::lock_guard<std::mutex> pl(pool_mu_);
  StageFile sf = std::move(*lane->active);
  lane->active.reset();
  if (sf.handed_out == 0) {
    Retire(&sf);
  } else {
    consumed_.push_back(std::move(sf));
  }
  // Trigger the replacement now, so the pool's working set stays at its configured
  // size. Deterministic mode creates it inline (cost rewound); thread and
  // shared-pool modes wake their replenisher. When the spare queue is already empty
  // the next refill creates the file in the foreground — same as the
  // pre-concurrency pool.
  if (opts_.replenish_thread) {
    KickReplenisherLocked();
  } else if (!spare_.empty()) {
    CreateStageFileLocked(CreateMode::kBackgroundInline);
  }
}

bool StagingPool::UseReplenishPool() const {
  return opts_.replenish_thread && services_.replenisher_pool != nullptr;
}

void StagingPool::KickReplenisherLocked() {
  if (!opts_.replenish_thread) {
    return;
  }
  if (UseReplenishPool()) {
    // Queued-pass dedup: one pending pass tops the queue up however far it has
    // drained by the time a worker runs it.
    services_.replenisher_pool->Submit(reinterpret_cast<uint64_t>(this),
                                       [this] { ReplenishPassOnPool(); },
                                       /*dedup_queued=*/true);
    return;
  }
  replenish_cv_.notify_one();
}

void StagingPool::ReplenishPassOnPool() {
  std::unique_lock<std::mutex> ul(pool_mu_);
  while (!stop_ && spare_.size() < opts_.num_staging_files) {
    // Same shape as ReplenishLoop: the kernel work runs outside pool_mu_ so
    // foreground refills are never stalled behind a background create.
    ul.unlock();
    StageFile sf;
    bool ok = CreateStageFile(CreateMode::kBackgroundThread, &sf);
    ul.lock();
    if (!ok) {
      return;  // Out of space; foreground allocations will surface ENOSPC.
    }
    spare_.push_back(std::move(sf));
  }
}

void StagingPool::ReplenishLoop() {
  std::unique_lock<std::mutex> ul(pool_mu_);
  while (true) {
    replenish_cv_.wait(ul, [this] {
      return stop_ || spare_.size() < opts_.num_staging_files;
    });
    if (stop_) {
      return;
    }
    while (!stop_ && spare_.size() < opts_.num_staging_files) {
      // Create outside pool_mu_: the kernel work (open + fallocate + map) is the
      // slow part, and holding the pool lock across it would stall every foreground
      // refill — the §3.5 critical-path cost this thread exists to absorb.
      ul.unlock();
      StageFile sf;
      bool ok = CreateStageFile(CreateMode::kBackgroundThread, &sf);
      ul.lock();
      if (!ok) {
        break;  // Out of space; foreground allocations will surface ENOSPC.
      }
      spare_.push_back(std::move(sf));
    }
  }
}

uint64_t StagingPool::DevOffsetOf(const StageFile& sf, uint64_t file_off) const {
  for (const auto& m : sf.mappings) {
    if (file_off >= m.file_off && file_off < m.file_off + m.len) {
      return m.dev_off + (file_off - m.file_off);
    }
  }
  SPLITFS_CHECK(false && "staging offset outside pre-allocated range");
  return 0;
}

bool StagingPool::ExtendInPlace(StagingAlloc* a, uint64_t n) {
  Lane& lane = LaneOfThisThread();
  std::lock_guard<std::mutex> lg(lane.mu);
  if (!lane.active) {
    return false;
  }
  StageFile& sf = *lane.active;
  if (sf.ino != a->staging_ino || sf.used != a->staging_off + a->len ||
      sf.used + n > opts_.staging_file_bytes) {
    return false;
  }
  // Must also stay within one device-contiguous mapping piece.
  for (const auto& m : sf.mappings) {
    if (a->staging_off >= m.file_off &&
        a->staging_off + a->len + n <= m.file_off + m.len) {
      sf.used += n;
      sf.handed_out += n;
      a->len += n;
      return true;
    }
  }
  return false;
}

void StagingPool::MarkRelinked(vfs::Ino ino, uint64_t end_off) {
  for (auto& lane : lanes_) {
    std::lock_guard<std::mutex> lg(lane->mu);
    if (lane->active && lane->active->ino == ino) {
      StageFile& sf = *lane->active;
      sf.used = std::max(sf.used,
                         std::min(common::AlignUp(end_off, common::kBlockSize),
                                  opts_.staging_file_bytes));
      return;
    }
  }
}

void StagingPool::Retire(StageFile* sf) {
  // The namespace work (close + unlink of the dead staging file) happens on the
  // paper's background thread: the work is real, the foreground clock doesn't pay.
  sim::ScopedOffClock off(&ctx_->clock);
  if (sf->fd >= 0) {
    kfs_->Close(sf->fd);
    sf->fd = -1;
  }
  kfs_->Unlink(sf->path);
  files_retired_.fetch_add(1, std::memory_order_relaxed);
}

void StagingPool::Release(const StagingAlloc& a) {
  // Still active in some lane: never retired here.
  for (auto& lane : lanes_) {
    std::lock_guard<std::mutex> lg(lane->mu);
    if (lane->active && lane->active->ino == a.staging_ino) {
      StageFile& sf = *lane->active;
      sf.handed_out -= std::min(sf.handed_out, a.len);
      return;
    }
  }
  std::lock_guard<std::mutex> pl(pool_mu_);
  for (auto it = consumed_.begin(); it != consumed_.end(); ++it) {
    if (it->ino == a.staging_ino) {
      it->handed_out -= std::min(it->handed_out, a.len);
      if (it->handed_out == 0) {
        Retire(&*it);
        consumed_.erase(it);
      }
      return;
    }
  }
}

bool StagingPool::Allocate(uint64_t len, uint64_t align_mod,
                           std::vector<StagingAlloc>* out) {
  out->clear();
  Lane& lane = LaneOfThisThread();
  std::lock_guard<std::mutex> lg(lane.mu);
  uint64_t remaining = len;
  while (remaining > 0) {
    if (!lane.active && !RefillLaneLocked(&lane)) {
      return false;
    }
    StageFile& sf = *lane.active;
    // Two invariants: (1) a new allocation NEVER shares a block with a previous one
    // (relink moves whole blocks, including partially-used tails), and (2) the
    // staged offset is congruent to the target file offset mod the block size so
    // the aligned core can be relinked. Only ExtendInPlace continues mid-block.
    uint64_t desired_mod = (align_mod + (len - remaining)) % common::kBlockSize;
    uint64_t base = common::AlignUp(sf.used, common::kBlockSize);
    sf.used = std::min(base + desired_mod, opts_.staging_file_bytes);
    uint64_t avail = opts_.staging_file_bytes - sf.used;
    if (avail == 0) {
      // Active file consumed: hand it to the consumed list (it stays alive while
      // StagedRange records still reference staged bytes in it) and replenish.
      ConsumeActiveLocked(&lane);
      continue;
    }
    // Also respect physical-piece boundaries so each alloc is device-contiguous.
    uint64_t take = std::min(remaining, avail);
    uint64_t dev_off = DevOffsetOf(sf, sf.used);
    // Clip to the containing mapping piece.
    for (const auto& m : sf.mappings) {
      if (sf.used >= m.file_off && sf.used < m.file_off + m.len) {
        take = std::min(take, m.file_off + m.len - sf.used);
        break;
      }
    }
    out->push_back({sf.ino, sf.fd, sf.used, dev_off, take});
    sf.used += take;
    sf.handed_out += take;
    remaining -= take;
  }
  return true;
}

uint64_t StagingPool::LiveFiles() const {
  uint64_t n = 0;
  for (const auto& lane : lanes_) {
    std::lock_guard<std::mutex> lg(lane->mu);
    if (lane->active) {
      ++n;
    }
  }
  std::lock_guard<std::mutex> pl(pool_mu_);
  return n + spare_.size() + consumed_.size();
}

uint64_t StagingPool::MemoryUsageBytes() const {
  uint64_t total = sizeof(*this);
  auto file_bytes = [](const StageFile& sf) {
    return sizeof(sf) + sf.mappings.size() * sizeof(ext4sim::Ext4Dax::DaxMapping);
  };
  for (const auto& lane : lanes_) {
    std::lock_guard<std::mutex> lg(lane->mu);
    total += sizeof(Lane);
    if (lane->active) {
      total += file_bytes(*lane->active);
    }
  }
  std::lock_guard<std::mutex> pl(pool_mu_);
  for (const auto& sf : spare_) {
    total += file_bytes(sf);
  }
  for (const auto& sf : consumed_) {
    total += file_bytes(sf);
  }
  return total;
}

}  // namespace splitfs
