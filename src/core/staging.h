// Staging-file pool (§3.3, §3.5).
//
// Appends (all modes) and overwrites (strict mode) are redirected to pre-allocated
// staging files on K-Split and later relinked into the target file. The pool:
//   * pre-creates `num_staging_files` files of `staging_file_bytes` at startup,
//     fallocate()d and DAX-mapped up front so the critical path never traps;
//   * hands out contiguous byte ranges with a bump allocator per file;
//   * models the background replenishment thread: when a file is consumed, a fresh one
//     is created with its cost charged off the application's critical path (the
//     paper's background thread; we keep the simulation deterministic by doing the
//     work inline but not advancing the shared clock).
#ifndef SRC_CORE_STAGING_H_
#define SRC_CORE_STAGING_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/core/mmap_cache.h"
#include "src/core/options.h"
#include "src/ext4/ext4_dax.h"

namespace splitfs {

// One allocation handed to a data operation.
struct StagingAlloc {
  vfs::Ino staging_ino = vfs::kInvalidIno;
  int staging_fd = -1;        // K-Split fd of the staging file.
  uint64_t staging_off = 0;   // Byte offset within the staging file.
  uint64_t dev_off = 0;       // Device byte offset (staging files are fully mapped).
  uint64_t len = 0;
};

class StagingPool {
 public:
  // `instance_tag` keeps staging namespaces of concurrent U-Split instances apart.
  StagingPool(ext4sim::Ext4Dax* kfs, MmapCache* mmaps, const Options& opts,
              const std::string& instance_tag);
  ~StagingPool();

  StagingPool(const StagingPool&) = delete;
  StagingPool& operator=(const StagingPool&) = delete;

  // Allocates `len` staged bytes whose starting offset is congruent to `align_mod`
  // modulo the block size — relink requires staged blocks to line up with the target
  // file's block grid. May split across staging files; returns one alloc per
  // contiguous piece. Returns false if the device is out of space.
  bool Allocate(uint64_t len, uint64_t align_mod, std::vector<StagingAlloc>* out);

  // Grows `a` by `n` bytes if it ends exactly at the active file's bump pointer
  // (the sequential-append fast path). Returns false when not extendable.
  bool ExtendInPlace(StagingAlloc* a, uint64_t n);

  // Relink moved staging blocks [.., end_off)-rounded-up out of `ino`; the space up
  // to the next block boundary must never be handed out again (the physical blocks
  // now belong to the target file).
  void MarkRelinked(vfs::Ino ino, uint64_t end_off);

  // Returns a previously handed-out allocation: its bytes were published (relinked or
  // copied into the target) or died with their file (unlink, truncate). Once every
  // handed-out byte of a *consumed* staging file has been returned, the file is
  // closed and unlinked — the out-of-band garbage collection a real restart performs
  // on its runtime directory. Without this, a long-running instance leaks one open
  // descriptor plus one dead file per consumed pool file.
  void Release(const StagingAlloc& a);

  // Number of staging files created over the pool's lifetime (bench introspection).
  uint64_t FilesCreated() const { return files_created_; }
  uint64_t BackgroundCreations() const { return background_creations_; }
  // Consumed files whose staged bytes were all released and that were deleted.
  uint64_t FilesRetired() const { return files_retired_; }
  // Files currently held by the pool: the active allocation deque plus consumed
  // files still referenced by unpublished staged ranges.
  uint64_t LiveFiles() const { return files_.size() + consumed_.size(); }

  uint64_t MemoryUsageBytes() const;

 private:
  struct StageFile {
    vfs::Ino ino = vfs::kInvalidIno;
    int fd = -1;
    std::string path;
    uint64_t used = 0;        // Bump pointer.
    uint64_t handed_out = 0;  // Bytes allocated to staged ranges, not yet released.
    std::vector<ext4sim::Ext4Dax::DaxMapping> mappings;
  };

  // Creates + fallocates + maps one staging file. When `background` is true the cost
  // is not charged to the shared clock (paper's replenishment thread).
  bool CreateStageFile(bool background);
  // Device offset backing `file_off` of `sf` (staging files are fully allocated).
  uint64_t DevOffsetOf(const StageFile& sf, uint64_t file_off) const;
  // Closes + unlinks a fully-released consumed file, off the foreground clock.
  void Retire(StageFile* sf);

  ext4sim::Ext4Dax* kfs_;
  MmapCache* mmaps_;
  sim::Context* ctx_;
  Options opts_;
  std::string dir_;
  std::deque<StageFile> files_;    // Front = currently active.
  std::deque<StageFile> consumed_; // Fully bump-allocated, awaiting release of ranges.
  uint64_t files_created_ = 0;
  uint64_t background_creations_ = 0;
  uint64_t files_retired_ = 0;
};

}  // namespace splitfs

#endif  // SRC_CORE_STAGING_H_
