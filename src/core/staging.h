// Staging-file pool (§3.3, §3.5).
//
// Appends (all modes) and overwrites (strict mode) are redirected to pre-allocated
// staging files on K-Split and later relinked into the target file. The pool:
//   * pre-creates `num_staging_files` files of `staging_file_bytes` at startup,
//     fallocate()d and DAX-mapped up front so the critical path never traps;
//   * hands out contiguous byte ranges with a bump allocator, one *lane* per thread:
//     each application thread owns an active staging file and bumps it without
//     touching any shared state, so concurrent appends to different files never
//     contend on the pool;
//   * replenishes consumed files off the critical path (the paper's §3.5 background
//     thread). Two modes: with Options::replenish_thread a real std::thread keeps the
//     shared spare-file queue full; without it (the default) the replacement is
//     created inline but its cost is rewound off the foreground clock — equivalent
//     accounting with a fully deterministic store sequence, which the crash harness
//     depends on.
//
// Lock order inside the pool: lane.mu, then pool_mu_. Both are leaves with respect to
// the rest of the stack (the pool calls into K-Split while holding them, never the
// other way around).
#ifndef SRC_CORE_STAGING_H_
#define SRC_CORE_STAGING_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/mmap_cache.h"
#include "src/core/options.h"
#include "src/ext4/ext4_dax.h"

namespace splitfs {

// One allocation handed to a data operation.
struct StagingAlloc {
  vfs::Ino staging_ino = vfs::kInvalidIno;
  int staging_fd = -1;        // K-Split fd of the staging file.
  uint64_t staging_off = 0;   // Byte offset within the staging file.
  uint64_t dev_off = 0;       // Device byte offset (staging files are fully mapped).
  uint64_t len = 0;
};

class StagingPool {
 public:
  // `instance_tag` keeps staging namespaces of concurrent U-Split instances apart.
  // `services` (optional) wires the pool into a multi-tenant deployment: with
  // `replenisher_pool` set (and Options::replenish_thread on), replenishment jobs
  // are registered with the shared pool instead of spawning a private thread; with
  // `staging_tokens` set, each staging file a lane takes costs one token, pacing
  // the tenant's staging consumption on its own timeline.
  StagingPool(ext4sim::Ext4Dax* kfs, MmapCache* mmaps, const Options& opts,
              const std::string& instance_tag, const Services& services = {});
  ~StagingPool();

  StagingPool(const StagingPool&) = delete;
  StagingPool& operator=(const StagingPool&) = delete;

  // Allocates `len` staged bytes whose starting offset is congruent to `align_mod`
  // modulo the block size — relink requires staged blocks to line up with the target
  // file's block grid. May split across staging files; returns one alloc per
  // contiguous piece. Returns false if the device is out of space. Allocates from the
  // calling thread's lane.
  bool Allocate(uint64_t len, uint64_t align_mod, std::vector<StagingAlloc>* out);

  // Grows `a` by `n` bytes if it ends exactly at the calling thread's lane bump
  // pointer (the sequential-append fast path). Returns false when not extendable.
  bool ExtendInPlace(StagingAlloc* a, uint64_t n);

  // Relink moved staging blocks [.., end_off)-rounded-up out of `ino`; the space up
  // to the next block boundary must never be handed out again (the physical blocks
  // now belong to the target file).
  void MarkRelinked(vfs::Ino ino, uint64_t end_off);

  // Returns a previously handed-out allocation: its bytes were published (relinked or
  // copied into the target) or died with their file (unlink, truncate). Once every
  // handed-out byte of a *consumed* staging file has been returned, the file is
  // closed and unlinked — the out-of-band garbage collection a real restart performs
  // on its runtime directory. Without this, a long-running instance leaks one open
  // descriptor plus one dead file per consumed pool file.
  void Release(const StagingAlloc& a);

  // Number of staging files created over the pool's lifetime (bench introspection).
  uint64_t FilesCreated() const { return files_created_.load(std::memory_order_relaxed); }
  uint64_t BackgroundCreations() const {
    return background_creations_.load(std::memory_order_relaxed);
  }
  // Consumed files whose staged bytes were all released and that were deleted.
  uint64_t FilesRetired() const { return files_retired_.load(std::memory_order_relaxed); }
  // Files currently held by the pool: lane-active files, the spare queue, and
  // consumed files still referenced by unpublished staged ranges.
  uint64_t LiveFiles() const;
  // Pre-created files waiting in the spare queue (pool occupancy gauge).
  uint64_t SpareFiles() const {
    std::lock_guard<std::mutex> pl(pool_mu_);
    return spare_.size();
  }

  uint64_t MemoryUsageBytes() const;

 private:
  struct StageFile {
    vfs::Ino ino = vfs::kInvalidIno;
    int fd = -1;
    std::string path;
    uint64_t used = 0;        // Bump pointer.
    uint64_t handed_out = 0;  // Bytes allocated to staged ranges, not yet released.
    std::vector<ext4sim::Ext4Dax::DaxMapping> mappings;
  };

  // Per-thread allocation lane. Threads hash onto lanes; the lane mutex is therefore
  // uncontended in steady state and exists only for the hash-collision case.
  struct alignas(64) Lane {
    std::mutex mu;
    std::optional<StageFile> active;
  };

  enum class CreateMode {
    kForeground,        // Cost on the caller's clock (startup, pool exhaustion).
    kBackgroundInline,  // Cost rewound off the caller's clock (deterministic mode).
    kBackgroundThread,  // Created by the replenisher thread; its charges land on the
                        // shared (non-lane) timeline, which lane-based measurements
                        // ignore — the §3.5 point: the cost is off every app thread's
                        // critical path.
  };

  Lane& LaneOfThisThread();
  // Creates + fallocates + maps one staging file into *out. Thread-safe without
  // pool_mu_ (the file number is reserved atomically); the caller pushes the result
  // onto spare_ under pool_mu_.
  bool CreateStageFile(CreateMode mode, StageFile* out);
  // CreateStageFile + push to spare_. Caller holds pool_mu_.
  bool CreateStageFileLocked(CreateMode mode);
  // Moves a spare file into `lane.active`, triggering replenishment. Caller holds
  // lane.mu; takes pool_mu_.
  bool RefillLaneLocked(Lane* lane);
  // Hands the lane's consumed active file to consumed_ (or retires it). Caller holds
  // lane.mu; takes pool_mu_.
  void ConsumeActiveLocked(Lane* lane);
  // Device offset backing `file_off` of `sf` (staging files are fully allocated).
  uint64_t DevOffsetOf(const StageFile& sf, uint64_t file_off) const;
  // Closes + unlinks a fully-released consumed file, off the foreground clock.
  void Retire(StageFile* sf);
  void ReplenishLoop();
  // True when background replenishment runs on the shared service pool instead of
  // a private thread.
  bool UseReplenishPool() const;
  // One shared-pool pass: tops the spare queue back up to the configured size.
  void ReplenishPassOnPool();
  // Wakes whichever replenisher this pool has (private thread or shared pool).
  void KickReplenisherLocked();

  ext4sim::Ext4Dax* kfs_;
  MmapCache* mmaps_;
  sim::Context* ctx_;
  Options opts_;
  Services services_;
  std::string dir_;
  // Ledger resource name for staging-token throttling, per tenant.
  std::string qos_resource_;

  std::vector<std::unique_ptr<Lane>> lanes_;

  mutable std::mutex pool_mu_;  // Guards spare_, consumed_, file creation order.
  std::deque<StageFile> spare_;     // Pre-created, untouched files.
  std::deque<StageFile> consumed_;  // Fully bump-allocated, awaiting release of ranges.
  sim::ResourceStamp pool_stamp_;   // Virtual-time serialization of the slow path.

  std::atomic<uint64_t> files_created_{0};
  std::atomic<uint64_t> background_creations_{0};
  std::atomic<uint64_t> files_retired_{0};

  // §3.5 replenisher (Options::replenish_thread).
  std::thread replenisher_;
  std::condition_variable replenish_cv_;
  bool stop_ = false;  // Guarded by pool_mu_.
};

}  // namespace splitfs

#endif  // SRC_CORE_STAGING_H_
