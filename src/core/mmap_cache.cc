#include "src/core/mmap_cache.h"

#include <algorithm>

#include "src/common/bytes.h"

namespace splitfs {

using common::kHugePageSize;

MmapCache::MmapCache(ext4sim::Ext4Dax* kfs, uint64_t mmap_size)
    : kfs_(kfs), ctx_(kfs->context()), mmap_size_(mmap_size), table_(new Table()) {
  SPLITFS_CHECK(mmap_size >= 2 * common::kMiB);
}

MmapCache::~MmapCache() {
  // No caller may be mid-Translate once the owner destroys the cache; free the live
  // snapshot directly and let the retire lists delete whatever is still pending.
  const Table* t = table_.load(std::memory_order_relaxed);
  for (const auto& [ino, snap] : t->files) {
    delete snap;
  }
  delete t;
}

std::optional<MmapCache::Hit> MmapCache::Translate(vfs::Ino ino, uint64_t off) const {
  common::EpochGc::ReadGuard pin(&common::EpochGc::Global());
  const Table* t = CurrentTable();
  auto fit = t->files.find(ino);
  if (fit == t->files.end()) {
    return std::nullopt;
  }
  const auto& pieces = fit->second->pieces;
  // First piece with file_off > off, then step back — the snapshot analog of the old
  // std::map::upper_bound walk.
  auto it = std::upper_bound(
      pieces.begin(), pieces.end(), off,
      [](uint64_t o, const std::pair<uint64_t, Piece>& p) { return o < p.first; });
  if (it == pieces.begin()) {
    return std::nullopt;
  }
  --it;
  uint64_t start = it->first;
  const Piece& p = it->second;
  if (off >= start + p.len) {
    return std::nullopt;
  }
  uint64_t delta = off - start;
  return Hit{p.dev_off + delta, p.len - delta};
}

void MmapCache::InsertPiece(FileBuilder* fb, uint64_t file_off, uint64_t dev_off,
                            uint64_t len) {
  // Insert only sub-ranges not already covered; existing mappings stay authoritative.
  uint64_t cur = file_off;
  uint64_t end = file_off + len;
  while (cur < end) {
    // Find existing piece covering or after `cur`.
    auto it = fb->pieces.upper_bound(cur);
    uint64_t covered_until = cur;
    if (it != fb->pieces.begin()) {
      auto prev = std::prev(it);
      uint64_t p_end = prev->first + prev->second.len;
      if (p_end > cur) {
        covered_until = p_end;  // `cur` already mapped.
      }
    }
    if (covered_until > cur) {
      cur = std::min(covered_until, end);
      continue;
    }
    uint64_t next_start = it == fb->pieces.end() ? end : std::min(it->first, end);
    if (next_start > cur) {
      uint64_t piece_dev = dev_off + (cur - file_off);
      uint64_t piece_len = next_start - cur;
      // Merge with a contiguous predecessor (same file gap-free AND same device
      // run): one virtual mapping region, one latency charge per access run.
      auto pit = fb->pieces.upper_bound(cur);
      if (pit != fb->pieces.begin()) {
        auto prev = std::prev(pit);
        if (prev->first + prev->second.len == cur &&
            prev->second.dev_off + prev->second.len == piece_dev) {
          prev->second.len += piece_len;
          cur = next_start;
          // Try to also swallow a contiguous successor.
          auto next = fb->pieces.find(cur);
          if (next != fb->pieces.end() &&
              prev->second.dev_off + prev->second.len == next->second.dev_off) {
            prev->second.len += next->second.len;
            fb->pieces.erase(next);
          }
          continue;
        }
      }
      fb->pieces[cur] = Piece{piece_dev, piece_len};
      // Merge with a contiguous successor.
      auto self = fb->pieces.find(cur);
      auto next = std::next(self);
      if (next != fb->pieces.end() && cur + piece_len == next->first &&
          piece_dev + piece_len == next->second.dev_off) {
        self->second.len += next->second.len;
        fb->pieces.erase(next);
      }
      cur = next_start;
    }
  }
}

MmapCache::FileBuilder MmapCache::BuilderFrom(const FileSnapshot& snap) {
  FileBuilder fb;
  fb.pieces.insert(snap.pieces.begin(), snap.pieces.end());
  fb.regions = snap.regions;
  fb.mmap_count = snap.mmap_count;
  return fb;
}

const MmapCache::FileSnapshot* MmapCache::SealAndPublish(vfs::Ino ino,
                                                         FileBuilder&& fb) {
  auto* snap = new FileSnapshot();
  snap->pieces.assign(fb.pieces.begin(), fb.pieces.end());
  snap->regions = std::move(fb.regions);
  snap->mmap_count = fb.mmap_count;
  const Table* old = CurrentTable();
  auto* next = new Table(*old);
  const FileSnapshot* replaced = nullptr;
  auto it = next->files.find(ino);
  if (it != next->files.end()) {
    replaced = it->second;
    it->second = snap;
  } else {
    next->files[ino] = snap;
  }
  // Swap first: an object may only be retired once it is unreachable from the live
  // table, or a reader pinning between the retire and the swap could still walk it
  // while the GC already considers it quiesced.
  PublishTable(next);
  if (replaced != nullptr) {
    retired_files_.Retire(replaced);
  }
  return snap;
}

void MmapCache::PublishTable(const Table* next) {
  const Table* old = table_.exchange(next, std::memory_order_seq_cst);
  retired_tables_.Retire(old);
}

bool MmapCache::EnsureRegion(vfs::Ino ino, int kernel_fd, uint64_t off) {
  uint64_t region_start = common::AlignDown(off, mmap_size_);
  {
    common::EpochGc::ReadGuard pin(&common::EpochGc::Global());
    const Table* t = CurrentTable();
    auto fit = t->files.find(ino);
    if (fit != t->files.end() &&
        std::binary_search(fit->second->regions.begin(), fit->second->regions.end(),
                           region_start)) {
      return true;  // Region already set up (holes included by design).
    }
  }
  // The kernel call runs outside the update mutex: it queues on K-Split's locks and
  // charges mmap + fault costs, and serializing it behind other files' region
  // creation would stall unrelated threads in real time.
  std::vector<ext4sim::Ext4Dax::DaxMapping> mappings;
  int rc = kfs_->DaxMap(kernel_fd, region_start, mmap_size_, &mappings);
  if (rc != 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(update_mu_);
  const Table* t = CurrentTable();
  auto fit = t->files.find(ino);
  FileBuilder fb =
      fit != t->files.end() ? BuilderFrom(*fit->second) : FileBuilder{};
  if (std::binary_search(fb.regions.begin(), fb.regions.end(), region_start)) {
    return true;  // A racing thread mapped the same region; keep its pieces.
  }
  // mmap() trap + pre-populated (MAP_POPULATE) huge-page faults: one per 2 MB chunk.
  ctx_->ChargeCpu(ctx_->model.mmap_syscall_ns);
  ctx_->stats.AddSyscall();
  for (uint64_t chunk = 0; chunk < mmap_size_; chunk += kHugePageSize) {
    ctx_->ChargeHugePageSetup();
  }
  for (const auto& m : mappings) {
    InsertPiece(&fb, m.file_off, m.dev_off, m.len);
  }
  fb.regions.insert(
      std::upper_bound(fb.regions.begin(), fb.regions.end(), region_start),
      region_start);
  ++fb.mmap_count;
  SealAndPublish(ino, std::move(fb));
  total_regions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void MmapCache::InsertPieces(vfs::Ino ino,
                             const std::vector<ext4sim::Ext4Dax::DaxMapping>& pieces) {
  std::lock_guard<std::mutex> lock(update_mu_);
  const Table* t = CurrentTable();
  auto fit = t->files.find(ino);
  FileBuilder fb =
      fit != t->files.end() ? BuilderFrom(*fit->second) : FileBuilder{};
  for (const auto& m : pieces) {
    ctx_->ChargeCpu(ctx_->model.user_work_ns);
    InsertPiece(&fb, m.file_off, m.dev_off, m.len);
  }
  SealAndPublish(ino, std::move(fb));
}

void MmapCache::InvalidateFile(vfs::Ino ino) {
  std::lock_guard<std::mutex> lock(update_mu_);
  const Table* t = CurrentTable();
  auto fit = t->files.find(ino);
  if (fit == t->files.end()) {
    return;
  }
  // munmap + TLB shootdown per region created by mmap (§3.5: this is why unlink is
  // SplitFS's most expensive call).
  const FileSnapshot* snap = fit->second;
  for (uint64_t i = 0; i < std::max<uint64_t>(snap->mmap_count, 1); ++i) {
    ctx_->ChargeCpu(ctx_->model.munmap_ns);
  }
  total_regions_.fetch_sub(snap->mmap_count, std::memory_order_relaxed);
  auto* next = new Table(*t);
  next->files.erase(ino);
  PublishTable(next);  // Unreachable-before-retire, as in SealAndPublish.
  retired_files_.Retire(snap);
}

void MmapCache::InvalidateRange(vfs::Ino ino, uint64_t off, uint64_t len) {
  std::lock_guard<std::mutex> lock(update_mu_);
  const Table* t = CurrentTable();
  auto fit = t->files.find(ino);
  if (fit == t->files.end() || len == 0) {
    return;
  }
  FileBuilder fb = BuilderFrom(*fit->second);
  auto& pieces = fb.pieces;
  uint64_t end = off + len;
  auto it = pieces.upper_bound(off);
  if (it != pieces.begin()) {
    --it;
  }
  while (it != pieces.end() && it->first < end) {
    uint64_t p_start = it->first;
    Piece p = it->second;
    uint64_t p_end = p_start + p.len;
    if (p_end <= off) {
      ++it;
      continue;
    }
    it = pieces.erase(it);
    if (p_start < off) {  // Keep the left part.
      pieces[p_start] = Piece{p.dev_off, off - p_start};
    }
    if (p_end > end) {  // Keep the right part.
      pieces[end] = Piece{p.dev_off + (end - p_start), p_end - end};
    }
  }
  SealAndPublish(ino, std::move(fb));
}

void MmapCache::Clear() {
  std::lock_guard<std::mutex> lock(update_mu_);
  const Table* t = CurrentTable();
  std::vector<const FileSnapshot*> snaps;  // PublishTable may free `t` itself.
  snaps.reserve(t->files.size());
  for (const auto& [ino, snap] : t->files) {
    snaps.push_back(snap);
  }
  PublishTable(new Table());  // Unreachable-before-retire, as in SealAndPublish.
  for (const FileSnapshot* snap : snaps) {
    retired_files_.Retire(snap);
  }
  total_regions_.store(0, std::memory_order_relaxed);
}

uint64_t MmapCache::MemoryUsageBytes() const {
  common::EpochGc::ReadGuard pin(&common::EpochGc::Global());
  const Table* t = CurrentTable();
  uint64_t total = sizeof(*this);
  for (const auto& [ino, snap] : t->files) {
    total += sizeof(*snap) + snap->pieces.size() * (sizeof(uint64_t) + sizeof(Piece) + 48) +
             snap->regions.size() * (sizeof(uint64_t) + 48);
  }
  return total;
}

size_t MmapCache::RetiredSnapshotsForTest() const {
  std::lock_guard<std::mutex> lock(update_mu_);
  return retired_tables_.PendingForTest() + retired_files_.PendingForTest();
}

}  // namespace splitfs
