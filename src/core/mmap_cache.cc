#include "src/core/mmap_cache.h"

#include <algorithm>

#include "src/common/bytes.h"

namespace splitfs {

using common::kHugePageSize;

MmapCache::MmapCache(ext4sim::Ext4Dax* kfs, uint64_t mmap_size)
    : kfs_(kfs), ctx_(kfs->context()), mmap_size_(mmap_size) {
  SPLITFS_CHECK(mmap_size >= 2 * common::kMiB);
}

std::optional<MmapCache::Hit> MmapCache::Translate(vfs::Ino ino, uint64_t off) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto fit = files_.find(ino);
  if (fit == files_.end()) {
    return std::nullopt;
  }
  const auto& pieces = fit->second.pieces;
  auto it = pieces.upper_bound(off);
  if (it == pieces.begin()) {
    return std::nullopt;
  }
  --it;
  uint64_t start = it->first;
  const Piece& p = it->second;
  if (off >= start + p.len) {
    return std::nullopt;
  }
  uint64_t delta = off - start;
  return Hit{p.dev_off + delta, p.len - delta};
}

void MmapCache::InsertPiece(FileMaps* fm, uint64_t file_off, uint64_t dev_off,
                            uint64_t len) {
  // Insert only sub-ranges not already covered; existing mappings stay authoritative.
  uint64_t cur = file_off;
  uint64_t end = file_off + len;
  while (cur < end) {
    // Find existing piece covering or after `cur`.
    auto it = fm->pieces.upper_bound(cur);
    uint64_t covered_until = cur;
    if (it != fm->pieces.begin()) {
      auto prev = std::prev(it);
      uint64_t p_end = prev->first + prev->second.len;
      if (p_end > cur) {
        covered_until = p_end;  // `cur` already mapped.
      }
    }
    if (covered_until > cur) {
      cur = std::min(covered_until, end);
      continue;
    }
    uint64_t next_start = it == fm->pieces.end() ? end : std::min(it->first, end);
    if (next_start > cur) {
      uint64_t piece_dev = dev_off + (cur - file_off);
      uint64_t piece_len = next_start - cur;
      // Merge with a contiguous predecessor (same file gap-free AND same device
      // run): one virtual mapping region, one latency charge per access run.
      auto pit = fm->pieces.upper_bound(cur);
      if (pit != fm->pieces.begin()) {
        auto prev = std::prev(pit);
        if (prev->first + prev->second.len == cur &&
            prev->second.dev_off + prev->second.len == piece_dev) {
          prev->second.len += piece_len;
          cur = next_start;
          // Try to also swallow a contiguous successor.
          auto next = fm->pieces.find(cur);
          if (next != fm->pieces.end() &&
              prev->second.dev_off + prev->second.len == next->second.dev_off) {
            prev->second.len += next->second.len;
            fm->pieces.erase(next);
          }
          continue;
        }
      }
      fm->pieces[cur] = Piece{piece_dev, piece_len};
      // Merge with a contiguous successor.
      auto self = fm->pieces.find(cur);
      auto next = std::next(self);
      if (next != fm->pieces.end() && cur + piece_len == next->first &&
          piece_dev + piece_len == next->second.dev_off) {
        self->second.len += next->second.len;
        fm->pieces.erase(next);
      }
      cur = next_start;
    }
  }
}

bool MmapCache::EnsureRegion(vfs::Ino ino, int kernel_fd, uint64_t off) {
  uint64_t region_start = common::AlignDown(off, mmap_size_);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto fit = files_.find(ino);
    if (fit != files_.end() &&
        fit->second.regions.find(region_start) != fit->second.regions.end()) {
      return true;  // Region already set up (holes included by design).
    }
  }
  // The kernel call runs outside the cache lock: it queues on K-Split's kernel lock
  // and charges mmap + fault costs, and holding mu_ exclusively across it would
  // stall every other thread's Translate — for unrelated files — in real time.
  std::vector<ext4sim::Ext4Dax::DaxMapping> mappings;
  int rc = kfs_->DaxMap(kernel_fd, region_start, mmap_size_, &mappings);
  if (rc != 0) {
    return false;
  }
  std::lock_guard<std::shared_mutex> lock(mu_);
  FileMaps& fm = files_[ino];
  if (fm.regions.find(region_start) != fm.regions.end()) {
    return true;  // A racing thread mapped the same region; keep its pieces.
  }
  // mmap() trap + pre-populated (MAP_POPULATE) huge-page faults: one per 2 MB chunk.
  ctx_->ChargeCpu(ctx_->model.mmap_syscall_ns);
  ctx_->stats.AddSyscall();
  for (uint64_t chunk = 0; chunk < mmap_size_; chunk += kHugePageSize) {
    ctx_->ChargeHugePageSetup();
  }
  for (const auto& m : mappings) {
    InsertPiece(&fm, m.file_off, m.dev_off, m.len);
  }
  fm.regions[region_start] = true;
  ++fm.mmap_count;
  ++total_regions_;
  return true;
}

void MmapCache::InsertPieces(vfs::Ino ino,
                             const std::vector<ext4sim::Ext4Dax::DaxMapping>& pieces) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  FileMaps& fm = files_[ino];
  for (const auto& m : pieces) {
    ctx_->ChargeCpu(ctx_->model.user_work_ns);
    InsertPiece(&fm, m.file_off, m.dev_off, m.len);
  }
}

void MmapCache::InvalidateFile(vfs::Ino ino) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  auto it = files_.find(ino);
  if (it == files_.end()) {
    return;
  }
  // munmap + TLB shootdown per region created by mmap (§3.5: this is why unlink is
  // SplitFS's most expensive call).
  for (uint64_t i = 0; i < std::max<uint64_t>(it->second.mmap_count, 1); ++i) {
    ctx_->ChargeCpu(ctx_->model.munmap_ns);
  }
  total_regions_ -= it->second.mmap_count;
  files_.erase(it);
}

void MmapCache::InvalidateRange(vfs::Ino ino, uint64_t off, uint64_t len) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  auto fit = files_.find(ino);
  if (fit == files_.end() || len == 0) {
    return;
  }
  auto& pieces = fit->second.pieces;
  uint64_t end = off + len;
  auto it = pieces.upper_bound(off);
  if (it != pieces.begin()) {
    --it;
  }
  while (it != pieces.end() && it->first < end) {
    uint64_t p_start = it->first;
    Piece p = it->second;
    uint64_t p_end = p_start + p.len;
    if (p_end <= off) {
      ++it;
      continue;
    }
    it = pieces.erase(it);
    if (p_start < off) {  // Keep the left part.
      pieces[p_start] = Piece{p.dev_off, off - p_start};
    }
    if (p_end > end) {  // Keep the right part.
      pieces[end] = Piece{p.dev_off + (end - p_start), p_end - end};
    }
  }
}

uint64_t MmapCache::MemoryUsageBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  uint64_t total = sizeof(*this);
  for (const auto& [ino, fm] : files_) {
    total += sizeof(fm) + fm.pieces.size() * (sizeof(uint64_t) + sizeof(Piece) + 48) +
             fm.regions.size() * (sizeof(uint64_t) + 48);
  }
  return total;
}

}  // namespace splitfs
