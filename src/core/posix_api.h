// The POSIX interception surface (§3.5).
//
// Real SplitFS uses LD_PRELOAD to intercept glibc's POSIX wrappers; the paper found
// that supporting 35 common calls (pwrite(), pread64(), fread(), readv(),
// ftruncate64(), openat(), ...) covers a wide range of applications. This facade is
// that surface without the symbol-interposition mechanics: applications written
// against POSIX names and flag conventions (O_CREAT, SEEK_SET, iovec, FILE-style
// buffered streams) run unmodified against a SplitFs instance.
//
// Everything here is translation + stdio buffering; the routing decisions (what stays
// in user space vs. what traps) all live in SplitFs itself.
//
// Thread safety: fd-based calls are as thread-safe as the underlying SplitFs (the
// descriptor table is sharded and dup()/close() races resolve like the kernel's file
// table: close removes exactly one descriptor, a concurrent dup of it either shares
// the description or gets EBADF). The directory-fd and stream registries are guarded
// by mu_. Streams lock themselves per call, like glibc's internal flockfile, so two
// threads fwrite-ing one FILE* interleave at call granularity; using a stream
// concurrently with its own fclose() is undefined, as it is in glibc.
#ifndef SRC_CORE_POSIX_API_H_
#define SRC_CORE_POSIX_API_H_

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/split_fs.h"

namespace splitfs {

// A FILE*-style buffered stream over a SplitFS descriptor (fopen/fread/fwrite/...).
struct PosixFile;

class Posix {
 public:
  explicit Posix(SplitFs* fs) : fs_(fs) {}

  // --- fd-based calls (flags/whence use the host's <fcntl.h> constants) -------------
  int open(const char* path, int oflag, mode_t mode = 0644);
  int open64(const char* path, int oflag, mode_t mode = 0644) {
    return open(path, oflag, mode);
  }
  // openat with AT_FDCWD or a directory fd previously opened through this facade.
  int openat(int dirfd, const char* path, int oflag, mode_t mode = 0644);
  int creat(const char* path, mode_t mode) {
    return open(path, O_WRONLY | O_CREAT | O_TRUNC, mode);
  }
  int close(int fd);
  int dup(int fd);

  ssize_t read(int fd, void* buf, size_t n);
  ssize_t write(int fd, const void* buf, size_t n);
  ssize_t pread(int fd, void* buf, size_t n, off_t off);
  ssize_t pread64(int fd, void* buf, size_t n, off_t off) { return pread(fd, buf, n, off); }
  ssize_t pwrite(int fd, const void* buf, size_t n, off_t off);
  ssize_t pwrite64(int fd, const void* buf, size_t n, off_t off) {
    return pwrite(fd, buf, n, off);
  }
  ssize_t readv(int fd, const struct iovec* iov, int iovcnt);
  ssize_t writev(int fd, const struct iovec* iov, int iovcnt);
  off_t lseek(int fd, off_t off, int whence);
  off_t lseek64(int fd, off_t off, int whence) { return lseek(fd, off, whence); }

  int fsync(int fd);
  int fdatasync(int fd) { return fsync(fd); }
  int ftruncate(int fd, off_t length);
  int ftruncate64(int fd, off_t length) { return ftruncate(fd, length); }
  int fallocate(int fd, int mode, off_t off, off_t len);
  int posix_fallocate(int fd, off_t off, off_t len) { return -fallocate(fd, 0, off, len); }

  int fstat(int fd, struct stat* st);
  int stat(const char* path, struct stat* st);
  int lstat(const char* path, struct stat* st) { return stat(path, st); }
  int access(const char* path, int amode);

  // --- path-based calls ---------------------------------------------------------------
  int unlink(const char* path);
  int unlinkat(int dirfd, const char* path, int flags);
  int rename(const char* from, const char* to);
  int mkdir(const char* path, mode_t mode);
  int rmdir(const char* path);

  // --- stdio-style buffered streams -----------------------------------------------------
  PosixFile* fopen(const char* path, const char* mode);
  size_t fread(void* ptr, size_t size, size_t nmemb, PosixFile* stream);
  size_t fwrite(const void* ptr, size_t size, size_t nmemb, PosixFile* stream);
  int fseek(PosixFile* stream, long off, int whence);
  long ftell(PosixFile* stream);
  int fflush(PosixFile* stream);
  int fclose(PosixFile* stream);
  int fileno(PosixFile* stream);

  SplitFs* fs() { return fs_; }

 private:
  // Translates host O_* flags to the VFS flag set. Returns false on unsupported flags.
  static int TranslateFlags(int oflag);
  // Flushes with the stream lock already held (fwrite/fread/fseek internal path).
  int FlushLocked(PosixFile* stream);

  SplitFs* fs_;
  std::mutex mu_;
  // Directory fds opened through this facade: fd -> absolute path (for openat).
  std::unordered_map<int, std::string> dir_fds_;
  int next_dir_fd_ = 1 << 20;  // Disjoint from SplitFs's data fds.
  std::vector<std::unique_ptr<PosixFile>> streams_;
};

struct PosixFile {
  Posix* owner = nullptr;
  int fd = -1;
  bool writable = false;
  bool append = false;
  // Per-stream lock (glibc's flockfile): guards wbuf/failed so concurrent stdio
  // calls on one stream interleave at call granularity instead of corrupting the
  // write-behind buffer.
  std::mutex mu;
  // Write-behind buffer (stdio's default block buffering, 4 KB).
  std::vector<uint8_t> wbuf;
  bool failed = false;
};

}  // namespace splitfs

#endif  // SRC_CORE_POSIX_API_H_
