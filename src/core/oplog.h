// Optimized operation log (§3.3).
//
// In strict mode every operation is made atomic + synchronous by logical redo logging:
//   * one cache-line (64 B) entry per common operation, written with non-temporal
//     stores and made persistent with a single memory fence;
//   * a 4 B transactional CRC32C checksum inside the entry distinguishes valid from
//     torn entries, halving the fences NOVA needs (one instead of two);
//   * the tail lives only in DRAM and is advanced with compare-and-swap by concurrent
//     threads — it is reconstructed from checksums at recovery, never persisted;
//   * the log file is zeroed at initialization; recovery treats any nonzero, checksum-
//     valid 64 B slot as a (potentially replayable) entry. Replay is idempotent.
//   * entries do not carry file data — they point at the staging file holding it.
#ifndef SRC_CORE_OPLOG_H_
#define SRC_CORE_OPLOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/ext4/ext4_dax.h"

namespace splitfs {

enum class LogOp : uint8_t {
  kInvalid = 0,
  kAppend = 1,     // Staged append: relink staging->target at replay.
  kOverwrite = 2,  // Staged (COW) overwrite: same replay as append.
  kCreate = 3,     // Metadata ops: kernel journaling already makes them atomic;
  kUnlink = 4,     //   logged so recovery can cross-check, replayed as no-ops.
  kTruncate = 5,
  kRenameFrom = 6,  // Rename needs two entries (the paper's "uncommon multi-entry op").
  kRenameTo = 7,
};

// Exactly one cache line. The checksum covers bytes [4, 64).
struct alignas(64) LogEntry {
  uint32_t checksum = 0;
  LogOp op = LogOp::kInvalid;
  uint8_t pad[3] = {0, 0, 0};
  uint64_t seq = 0;  // Monotonic, nonzero for valid entries.
  uint64_t target_ino = 0;
  uint64_t file_off = 0;
  uint64_t staging_ino = 0;
  uint64_t staging_off = 0;
  uint64_t len = 0;
  uint8_t reserved[8] = {};

  void Seal();            // Computes and stores the checksum.
  bool ValidSealed() const;  // Nonzero seq + checksum matches.
};
static_assert(sizeof(LogEntry) == 64, "log entry must be one cache line");

class OpLog {
 public:
  // Creates (or truncates) the log file at `path` on K-Split, `bytes` long, zeroes it,
  // and maps it. Charged to the caller: this is instance startup, off the hot path.
  OpLog(ext4sim::Ext4Dax* kfs, const std::string& path, uint64_t bytes);
  ~OpLog();

  OpLog(const OpLog&) = delete;
  OpLog& operator=(const OpLog&) = delete;

  // Appends one entry: compose (user work) + CAS tail + 64 B nt-store + one fence.
  // Returns false when the log is full — caller must Checkpoint() and retry.
  bool Append(LogEntry entry);

  // True when fewer than `slack` slots remain.
  bool NearlyFull(uint64_t slack = 16) const;

  // Zeroes the log and resets the tail. The caller has already relinked all staged
  // data (checkpoint, §3.3).
  void Reset();

  uint64_t EntriesLogged() const { return seq_.load(std::memory_order_relaxed); }
  uint64_t Capacity() const { return capacity_; }
  vfs::Ino ino() const { return ino_; }

  // Recovery: scans the whole log area for checksum-valid entries, sorted by seq.
  // Works purely from the device contents — DRAM state is assumed lost.
  std::vector<LogEntry> ScanForRecovery() const;

 private:
  uint64_t SlotDevOffset(uint64_t slot) const;
  void ZeroLogArea();

  ext4sim::Ext4Dax* kfs_;
  sim::Context* ctx_;
  int fd_ = -1;
  vfs::Ino ino_ = vfs::kInvalidIno;
  uint64_t capacity_ = 0;  // Slots.
  std::vector<ext4sim::Ext4Dax::DaxMapping> mappings_;
  std::atomic<uint64_t> tail_{0};  // DRAM-only next slot; never persisted.
  std::atomic<uint64_t> seq_{0};
};

}  // namespace splitfs

#endif  // SRC_CORE_OPLOG_H_
