// Optimized operation log (§3.3).
//
// In strict mode every operation is made atomic + synchronous by logical redo logging:
//   * one cache-line (64 B) entry per common operation, written with non-temporal
//     stores and made persistent with a single memory fence;
//   * a 4 B transactional CRC32C checksum inside the entry distinguishes valid from
//     torn entries, halving the fences NOVA needs (one instead of two);
//   * the tail lives only in DRAM and is advanced with compare-and-swap by concurrent
//     threads — it is reconstructed from checksums at recovery, never persisted;
//   * the log file is zeroed at initialization; recovery treats any nonzero, checksum-
//     valid 64 B slot as a (potentially replayable) entry. Replay is idempotent.
//   * entries do not carry file data — they point at the staging file holding it.
#ifndef SRC_CORE_OPLOG_H_
#define SRC_CORE_OPLOG_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/ext4/ext4_dax.h"

namespace splitfs {

enum class LogOp : uint8_t {
  kInvalid = 0,
  kAppend = 1,     // Staged append: relink staging->target at replay.
  kOverwrite = 2,  // Staged (COW) overwrite: same replay as append.
  kCreate = 3,     // Metadata ops: kernel journaling already makes them atomic;
  kUnlink = 4,     //   logged so recovery can cross-check, replayed as no-ops.
  kTruncate = 5,
  kRenameFrom = 6,  // Rename needs two entries (the paper's "uncommon multi-entry op").
  kRenameTo = 7,
  // Async relink publication. An intent records one staged run an acknowledged
  // fsync()/close() has promised to publish; replay treats it exactly like kAppend
  // (kOverwrite for the staged-overwrite variant — replay must know a run is an
  // overwrite, or it would relink its partial tail block whole and clobber settled
  // bytes past the run). A done record (target_ino + seq) marks every earlier data
  // entry of that inode as published-and-committed, so replay skips them — without
  // it, a stale intent could resurrect bytes a later unlogged in-place overwrite
  // (POSIX/sync modes) replaced.
  kRelinkIntent = 8,
  kRelinkDone = 9,
  kRelinkIntentOverwrite = 10,
};

// Recovery-scan structural validation rejects any op code above this: a checksum
// collision must never make replay act on fields it cannot interpret. Keep in sync
// with the last enumerator.
inline constexpr LogOp kMaxLogOp = LogOp::kRelinkIntentOverwrite;

// Exactly one cache line *by size* — the fields pack to 64 bytes and the
// static_assert holds the layout. Deliberately not alignas(64): entries live in
// the log at slot offsets (alignment of the in-memory copy is irrelevant to the
// device image), and over-alignment is UB through std::stable_sort's temporary
// buffer, which allocates without honoring extended alignment (UBSan caught the
// misaligned stores in ScanForRecovery). The checksum covers bytes [4, 64).
struct LogEntry {
  uint32_t checksum = 0;
  LogOp op = LogOp::kInvalid;
  uint8_t pad[3] = {0, 0, 0};
  uint64_t seq = 0;  // Monotonic, nonzero for valid entries.
  uint64_t target_ino = 0;
  uint64_t file_off = 0;
  uint64_t staging_ino = 0;
  uint64_t staging_off = 0;
  uint64_t len = 0;
  uint8_t reserved[8] = {};

  void Seal();            // Computes and stores the checksum.
  bool ValidSealed() const;  // Nonzero seq + checksum matches.
};
static_assert(sizeof(LogEntry) == 64, "log entry must be one cache line");

class OpLog {
 public:
  // Creates (or truncates) the log file at `path` on K-Split, `bytes` long, zeroes it,
  // and maps it. Charged to the caller: this is instance startup, off the hot path.
  OpLog(ext4sim::Ext4Dax* kfs, const std::string& path, uint64_t bytes);
  ~OpLog();

  OpLog(const OpLog&) = delete;
  OpLog& operator=(const OpLog&) = delete;

  // Appends one entry: compose (user work) + slot reservation + 64 B nt-store + one
  // fence. Returns false when the log is full — caller must Checkpoint() and retry.
  //
  // Concurrency (§3.3 "the tail is advanced with compare-and-swap by concurrent
  // threads"): each thread owns a lane that claims *chunks* of consecutive slots from
  // the shared tail with one fetch-add, then bump-allocates within its chunk with no
  // shared traffic; the per-entry `seq` comes from a global atomic, so recovery's
  // seq-sorted replay stitches the lanes back into one total order. A single-threaded
  // process fills slots 0,1,2,... exactly as before (one lane, consecutive chunks),
  // keeping the crash matrix byte-identical.
  bool Append(LogEntry entry);

  // True when fewer than `slack` slots remain.
  bool NearlyFull(uint64_t slack = 16) const;

  // Zeroes the log and resets the tail + every lane. The caller has already relinked
  // all staged data (checkpoint, §3.3). Excludes in-flight Appends (they hold the
  // reset lock shared), and bumps ResetEpoch() so a caller that lost the race to
  // checkpoint can tell the log was already recycled.
  void Reset() { ResetIfQuiesced(nullptr); }

  // Reset guarded by a predicate evaluated *after* in-flight appends have drained
  // (under the exclusive reset lock): the checkpoint passes "no file has unpublished
  // staged data". Needed because per-thread lanes can satisfy an Append from
  // leftover chunk slots even once the log looks full — without the re-check, a
  // reset could zero an entry appended between the checkpoint's last sweep and the
  // lock acquisition, losing the only record of unpublished staged data. Returns
  // false (log untouched) when the predicate fails.
  bool ResetIfQuiesced(const std::function<bool()>& quiesced);

  uint64_t ResetEpoch() const { return reset_epoch_.load(std::memory_order_acquire); }

  uint64_t EntriesLogged() const { return seq_.load(std::memory_order_relaxed); }
  uint64_t Capacity() const { return capacity_; }
  // Slots reserved since the last reset, clamped to capacity (fill-fraction gauge;
  // the tail over-reserves in lane chunks, so this is the pessimistic fill).
  uint64_t SlotsReserved() const {
    return std::min(tail_.load(std::memory_order_acquire), capacity_);
  }
  vfs::Ino ino() const { return ino_; }

  // Recovery: scans the whole log area for checksum-valid entries, sorted by seq.
  // Works purely from the device contents — DRAM state is assumed lost.
  std::vector<LogEntry> ScanForRecovery() const;

  // Test-only mutation hook (analysis self-tests): drop THE single fence after
  // the entry store, so the PersistChecker's rule-(a) check on the entry fires.
  void set_skip_fence_for_test(bool skip) { skip_fence_for_test_ = skip; }

 private:
  // Slots claimed per tail fetch-add. Any value preserves the single-threaded slot
  // layout (one lane consumes its chunk fully before claiming the next).
  static constexpr uint64_t kLaneChunkSlots = 32;
  static constexpr size_t kLanes = 16;

  struct alignas(64) Lane {
    std::mutex mu;       // Uncontended in steady state (threads hash onto lanes).
    uint64_t next = 0;   // Next slot within the claimed chunk.
    uint64_t end = 0;    // One past the chunk; next == end means claim a new chunk.
  };

  uint64_t SlotDevOffset(uint64_t slot) const;
  void ZeroLogArea();

  ext4sim::Ext4Dax* kfs_;
  sim::Context* ctx_;
  int fd_ = -1;
  vfs::Ino ino_ = vfs::kInvalidIno;
  uint64_t capacity_ = 0;  // Slots.
  std::vector<ext4sim::Ext4Dax::DaxMapping> mappings_;
  // Appenders hold this shared; Reset holds it exclusive so it never zeroes a slot
  // mid-store.
  mutable std::shared_mutex reset_mu_;
  std::array<Lane, kLanes> lanes_;
  std::atomic<uint64_t> tail_{0};  // DRAM-only slot reservation; never persisted.
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> reset_epoch_{0};
  bool skip_fence_for_test_ = false;
};

}  // namespace splitfs

#endif  // SRC_CORE_OPLOG_H_
