// SplitFS per-instance configuration: consistency mode (§3.2) and the tunable
// parameters of §3.6, plus feature toggles used by the Figure 3 ablation bench.
#ifndef SRC_CORE_OPTIONS_H_
#define SRC_CORE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "src/common/bytes.h"

namespace common {
class ServicePool;
}
namespace sim {
class TokenBucket;
}

namespace splitfs {

// Consistency modes (Table 3). Concurrent SplitFs instances over the same K-Split may
// use different modes without interfering.
enum class Mode {
  kPosix,   // Metadata consistency; atomic appends; in-place synchronous overwrites.
  kSync,    // + synchronous data operations (no atomicity for overwrites).
  kStrict,  // + atomic, synchronous everything (op logging + staged COW overwrites).
};

const char* ModeName(Mode mode);

struct Options {
  Mode mode = Mode::kPosix;

  // mmap() granularity for the collection of memory-maps. 2 MB default (huge pages,
  // pre-populated); configurable 2 MB .. 512 MB (§3.6).
  uint64_t mmap_size = 2 * common::kMiB;

  // Staging file pool (§3.5): files pre-created at startup; a background thread
  // replaces each one as it is consumed.
  uint32_t num_staging_files = 10;
  uint64_t staging_file_bytes = 160 * common::kMiB;

  // Number of per-thread staging lanes: each application thread bump-allocates from
  // its own active staging file, so disjoint-file appends never contend on the pool.
  // Threads hash onto lanes; a single-threaded process uses exactly one lane and
  // allocates the same byte sequence as the pre-concurrency pool.
  uint32_t staging_lanes = 16;

  // Run the §3.5 replenishment thread for real: a dedicated std::thread pre-creates
  // staging files off the critical path. Off by default — the crash harness and the
  // deterministic single-threaded tests require a fully deterministic store sequence,
  // which the (equivalent, inline, clock-rewound) fallback provides. Multithreaded
  // benches and the concurrency tests turn it on.
  bool replenish_thread = false;

  // Operation log (strict mode): zeroed pre-allocated file; one 64 B entry per op;
  // checkpoint-and-reset when full (§3.3).
  uint64_t oplog_bytes = 128 * common::kMiB;

  // Asynchronous relink publication (ROADMAP follow-on to the concurrency PRs).
  // When on, fsync()/close() of a file with staged data logs one relink-intent
  // record per staged run to the op log (created in every mode when this is set),
  // fences it, and defers the actual relink + journal commit; recovery replays
  // intent records exactly like staged-append records, so fsync durability holds
  // from the moment the intent is fenced. Off by default: the synchronous publish
  // path stays byte-identical for the crash matrix and every deterministic test.
  bool async_relink = false;
  // Run the publisher for real: a dedicated std::thread drains the publish queue,
  // so the relink ioctls and their journal commit leave the application threads'
  // critical path (their charges land on the shared timeline, off every lane).
  // Off by default — the deferred publish then runs inline at the end of fsync with
  // its cost rewound (sim::ScopedOffClock): equivalent accounting with a fully
  // deterministic store sequence, which the async crash-matrix column depends on.
  bool publisher_thread = false;
  // How many queued files the publisher thread drains under ONE kernel journal
  // commit per pass. 1 = one commit per file (the pre-batching behavior). Larger
  // values amortize the commit writeout across an fsync storm's worth of files;
  // the log-full checkpoint waits on the publisher's completion fence, so a batch
  // in flight always finishes under its single commit before the op log resets.
  // 0 = auto: each pass drains the whole queue as it stands — the batch sizes
  // itself from queue depth, so a deeper backlog amortizes into fewer commits
  // without tuning. Ignored by the inline (publisher_thread=false) publisher,
  // which is deterministic per call by design.
  uint32_t publish_batch = 1;

  // Record virtual-time spans (op entry/exit, journal seal/writeout, publisher
  // drains) into the context's tracer, and per-op latency histograms, when the
  // tracer is enabled. Purely observational: the obs layer never touches the clock,
  // so timelines are identical with this on or off.
  bool tracing = false;

  // Directory (on K-Split) for staging files and the op log.
  std::string runtime_dir = "/.splitfs";

  // --- Ablation toggles (Figure 3). Production configuration leaves both true. -------
  // When false, appends bypass staging and go straight to the kernel FS ("split" bar).
  bool enable_staging = true;
  // When false, fsync copies staged bytes into the target file instead of relinking
  // ("+staging" bar vs "+relink" bar).
  bool enable_relink = true;
};

// Shared-service wiring for multi-tenant deployments (src/tenant/). All pointers
// are borrowed (the tenant router outlives every instance it mounts) and all
// default to null, which means "own your services": a private publisher thread, a
// private replenisher thread, inline journal commits — today's single-tenant
// behavior, bit-identical. With a pool set, the instance registers work with the
// shared pool instead of spawning a thread; with a token bucket set, foreground
// admission to that service is paced on the caller's virtual timeline.
struct Services {
  common::ServicePool* publisher_pool = nullptr;
  common::ServicePool* replenisher_pool = nullptr;
  // QoS: paces staging-file consumption (one token per staging file a lane takes).
  sim::TokenBucket* staging_tokens = nullptr;
  // QoS: paces foreground journal commits (fsync/metadata-sync forced commits).
  sim::TokenBucket* journal_credits = nullptr;
};

}  // namespace splitfs

#endif  // SRC_CORE_OPTIONS_H_
