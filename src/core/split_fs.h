// SplitFS: the user-space library file system (U-Split) over ext4-DAX (K-Split).
//
// This is the paper's primary contribution (§3). One SplitFs instance corresponds to
// one LD_PRELOAD-ed process; several instances — possibly with different consistency
// modes — can share a single Ext4Dax, exactly as concurrent applications share one
// mounted SplitFS.
//
// Responsibilities split:
//   * data operations (read / overwrite) are served in user space from the collection
//     of memory-maps, with loads and non-temporal stores — no kernel trap;
//   * appends (all modes) and overwrites (strict mode) are redirected to staging files
//     and published atomically by relink on fsync()/close();
//   * metadata operations (open, close, unlink, rename, mkdir, ...) are passed through
//     to K-Split, with U-Split bookkeeping layered on top;
//   * strict mode additionally writes one 64 B op-log entry + one fence per operation.
//
// POSIX quirks the paper calls out are reproduced: dup() shares one offset (fd_table),
// fork()/execve() state carryover (CloneForFork / SaveForExec + RestoreAfterExec),
// attribute caching across close, and mmap retention until unlink.
//
// Concurrency model (one instance, N application threads):
//   * the FD table and the path→inode / inode→state maps are sharded by hash with a
//     shared_mutex per shard — lookups (the common case) take reader locks;
//   * every FileState carries a byte-range reader/writer lock: reads take the range
//     shared; in-place overwrites take the range exclusive; appends, truncate,
//     publish (relink), and unlink teardown take the whole file. Strict-mode writes
//     that stay inside the current size also take only their byte range: each one
//     appends its own per-range op-log entry while registered with the checkpoint
//     epoch gate (below), so disjoint-offset strict writers scale like disjoint
//     files instead of serializing on one whole-file lock;
//   * the strict log-full checkpoint quiesces by epoch instead of seizing every
//     file: it closes the gate (epoch goes odd), waits out the in-flight per-range
//     writers — who only ever *try* range locks while registered, never block, so
//     the drain always terminates — sweeps and publishes the dirty files with
//     try-locks, resets the log, and reopens the gate (epoch even again). A writer
//     arriving at a closed gate falls back to the whole-file path and charges the
//     deferral to "splitfs.strict_range_log" in the contention ledger;
//   * a small per-file metadata mutex guards the size/staged-range bookkeeping so
//     disjoint-range operations can update the shared map structure;
//   * lock order: fd-table shard → path/file shard → OpenFile cursor → checkpoint
//     epoch gate (entered before the range lock; registered writers try-lock only)
//     → file range lock → file metadata mutex → mmap-cache/staging/op-log internals
//     → K-Split's locks. The op-log checkpoint acquires other files only with
//     try-lock, so "holds own file, waits for checkpoint" and "holds checkpoint,
//     sweeps files" cannot deadlock.
//
// K-Split is no longer a big kernel lock: Ext4Dax has per-inode reader/writer locks,
// namespace (dentry) shards, a sharded allocator, and jbd2-style journal handles
// (lock order documented in src/ext4/ext4_dax.h). U-Split never holds a K-Split lock
// across its own — every kfs_ call is a self-contained trap — so the two lock
// hierarchies compose trivially. The two-inode operations U-Split drives are ordered
// inside the kernel model itself:
//   * SwapExtentsForRelink locks {staging inode, target inode} by ascending ino;
//   * an fsync that publishes many staged runs issues relinks with defer_commit and
//     one CommitJournal — each relink reorders its own pair, and the commit takes
//     the journal barrier with no inode lock held;
//   * op-log recovery's OpenByIno + relink replay goes through the same ioctl, so
//     crash replay obeys the same order as the live path.
#ifndef SRC_CORE_SPLIT_FS_H_
#define SRC_CORE_SPLIT_FS_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/mmap_cache.h"
#include "src/core/oplog.h"
#include "src/core/options.h"
#include "src/core/staging.h"
#include "src/ext4/ext4_dax.h"
#include "src/obs/histogram.h"
#include "src/obs/obs.h"
#include "src/vfs/fd_table.h"
#include "src/vfs/file_system.h"
#include "src/vfs/range_lock.h"

namespace splitfs {

// Public operations instrumented by SplitFs::OpScope: one top-level trace span and
// one latency-histogram record per call when Options::tracing is set.
enum class OpKind {
  kOpen, kClose, kUnlink, kRename, kPread, kPwrite, kRead, kWrite, kLseek, kFsync,
  kFtruncate, kFallocate, kStat, kFstat, kMkdir, kRmdir, kReadDir, kRecover,
};
inline constexpr size_t kOpKindCount = static_cast<size_t>(OpKind::kRecover) + 1;
const char* OpKindName(OpKind op);

class SplitFs : public vfs::FileSystem {
 public:
  // `instance_tag` names this U-Split instance's runtime files (staging, op log).
  // `services` (optional) wires the instance into a multi-tenant deployment
  // (src/tenant/): shared publisher/replenisher pools replace the private service
  // threads, and token buckets pace this tenant's staging-file and journal-commit
  // consumption. The defaults (all null) keep the single-tenant private-thread /
  // inline behavior bit-identical.
  SplitFs(ext4sim::Ext4Dax* kfs, Options opts, const std::string& instance_tag = "u0",
          const Services& services = {});
  ~SplitFs() override;

  std::string Name() const override;
  Mode mode() const { return opts_.mode; }

  // --- vfs::FileSystem ------------------------------------------------------------------
  int Open(const std::string& path, int flags) override;
  int Close(int fd) override;
  int Unlink(const std::string& path) override;
  int Rename(const std::string& from, const std::string& to) override;
  ssize_t Pread(int fd, void* buf, uint64_t n, uint64_t off) override;
  ssize_t Pwrite(int fd, const void* buf, uint64_t n, uint64_t off) override;
  ssize_t Read(int fd, void* buf, uint64_t n) override;
  ssize_t Write(int fd, const void* buf, uint64_t n) override;
  int64_t Lseek(int fd, int64_t off, vfs::Whence whence) override;
  int Fsync(int fd) override;
  int Ftruncate(int fd, uint64_t size) override;
  int Fallocate(int fd, uint64_t off, uint64_t len, bool keep_size) override;
  int Stat(const std::string& path, vfs::StatBuf* out) override;
  int Fstat(int fd, vfs::StatBuf* out) override;
  int Mkdir(const std::string& path) override;
  int Rmdir(const std::string& path) override;
  int ReadDir(const std::string& path, std::vector<std::string>* names) override;
  int Recover() override;

  // --- POSIX process plumbing (§3.5) -----------------------------------------------------
  int Dup(int fd);
  // fork(): the child inherits the library state (copied address space).
  std::unique_ptr<SplitFs> CloneForFork(const std::string& child_tag) const;
  // execve(): open-file state is serialized to a shm file keyed by pid and restored
  // after the exec replaces the address space.
  std::vector<uint8_t> SaveForExec() const;
  static std::unique_ptr<SplitFs> RestoreAfterExec(ext4sim::Ext4Dax* kfs, Options opts,
                                                   const std::string& instance_tag,
                                                   const std::vector<uint8_t>& blob);

  // --- Introspection (tests / §5.10 resource bench) ---------------------------------------
  uint64_t StagedBytes() const;
  uint64_t MemoryUsageBytes() const;
  uint64_t OpLogEntries() const { return oplog_ ? oplog_->EntriesLogged() : 0; }
  uint64_t Relinks() const { return relinks_.load(std::memory_order_relaxed); }
  uint64_t Checkpoints() const { return checkpoints_.load(std::memory_order_relaxed); }
  uint64_t AsyncPublishes() const {
    return async_publishes_.load(std::memory_order_relaxed);
  }
  uint64_t PublishErrors() const {
    return publish_errors_.load(std::memory_order_relaxed);
  }
  // Completion fence of the async publisher: returns once every queued publish has
  // finished. No-op when the publisher thread is off (inline mode publishes before
  // fsync/close return). In shared-pool mode it first re-arms a publish pass, so a
  // queued file whose pass raced a pause/unpause is never waited on forever.
  void WaitForPublishes();
  // Files queued for async publication right now (router QoS gauge).
  size_t PublishQueueDepth() const {
    std::lock_guard<std::mutex> lg(publish_mu_);
    return publish_queue_.size();
  }
  // True when publishes run asynchronously — on the private publisher thread or on
  // the shared publisher pool.
  bool HasAsyncPublisher() const {
    return publisher_.joinable() || UsePublisherPool();
  }
  // Pops everything currently queued and publishes it on the calling thread. Tenant
  // unmount drains through here (after stopping new enqueues) so queued publishes —
  // data the tenant's fsyncs already acknowledged — are on K-Split before the
  // instance is destroyed; crash tests use it to walk the batched publish
  // deterministically with the publisher paused.
  void DrainQueuedPublishes();

  // Test-only: parks the publisher (thread or pool pass) before it pops the next
  // queue entry, so a crash test can build the acknowledged-but-unpublished state
  // (intents fenced, relinks pending) deterministically and drive recovery through
  // intent replay. StopPublisher overrides the pause so teardown never hangs.
  void set_publisher_paused_for_test(bool paused) {
    {
      std::lock_guard<std::mutex> lg(publish_mu_);
      publisher_paused_ = paused;
    }
    publish_cv_.notify_all();
    if (!paused) {
      SchedulePublishPass();  // Pool mode: re-arm a pass for anything queued.
    }
  }

  // Test-only: invoked right after the kernel rename, before the path-cache
  // updates — inside Rename's dual path-shard critical section. The rename-vs-
  // first-open regression test uses it to park the rename in the historical race
  // window while another thread attempts a first open of the destination;
  // single-core CI cannot land preemption inside a sub-microsecond window, so the
  // interleaving must be forced. Set to nullptr (the default) outside tests.
  void set_rename_race_hook_for_test(std::function<void()> hook) {
    rename_race_hook_ = std::move(hook);
  }

  // Historical test-entry name for DrainQueuedPublishes().
  void DrainQueuedPublishesForTest() { DrainQueuedPublishes(); }
  const StagingPool& staging_pool() const { return *staging_; }
  ext4sim::Ext4Dax* kernel_fs() const { return kfs_; }

  // --- Observability ----------------------------------------------------------------
  // One consistent cut of every registered counter and gauge (publisher queue depth,
  // staging occupancy, oplog fill, journal pipeline state, ...). Each gauge is
  // evaluated exactly once per dump — see obs::MetricsRegistry::Snapshot.
  std::vector<obs::MetricsRegistry::Sample> DumpMetrics() const {
    return ctx_->obs.metrics.Snapshot();
  }
  // Per-op virtual-time latency histogram, recorded when Options::tracing is set.
  const obs::LatencyHistogram& OpHistogram(OpKind op) const {
    return op_hist_[static_cast<size_t>(op)];
  }

 private:
  struct StagedRange {
    uint64_t file_off = 0;
    StagingAlloc alloc;  // alloc.len is the range length.
    bool is_overwrite = false;
    // Async relink: prefix of the run already covered by a fenced kRelinkIntent
    // record. A later fsync logs only the delta; recovery's run coalescing stitches
    // the contiguous intent entries back together.
    uint64_t intent_len = 0;
  };

  struct FileState {
    explicit FileState(sim::Clock* clock, obs::Observability* obs = nullptr)
        : rlock(clock, obs, "splitfs.range_lock") {}

    // Immutable after creation.
    vfs::Ino ino = vfs::kInvalidIno;
    int kernel_fd = -1;

    // Everything below is guarded by meta_mu (brief critical sections: bookkeeping
    // only, never device access), except as noted. kernel_size is only touched while
    // the whole-file range lock is held exclusively (publish/truncate paths).
    std::string path;
    uint64_t size = 0;         // Application-visible size (includes staged appends).
    uint64_t kernel_size = 0;  // Size K-Split believes (after last relink).
    bool metadata_dirty = false;  // Create/truncate not yet committed by a kernel sync.
    std::map<uint64_t, StagedRange> staged;  // Keyed by file_off; non-overlapping.
    uint32_t open_count = 0;
    uint64_t last_read_end = 0;  // Sequential-access detection.
    // Torn down by unlink (or rename displacement): the kernel fd is closed and the
    // state is out of the shards, but a thread that grabbed the FileRef before the
    // teardown may still be queued on the range lock. Every operation re-checks this
    // after acquiring its lock and bails with EBADF — staging data into an orphan
    // would leak allocations and wedge the strict-mode checkpoint (its dirty count
    // could never drain).
    bool defunct = false;
    // Async relink: the file sits on the publish queue (or is being published).
    // Purely an enqueue-dedup flag — correctness never depends on it.
    bool publish_pending = false;

    vfs::RangeLock rlock;       // Byte-range lock; kWholeFile for restructuring ops.
    mutable std::mutex meta_mu;
  };
  using FileRef = std::shared_ptr<FileState>;

  static constexpr size_t kStateShards = 16;
  struct FileShard {
    mutable std::shared_mutex mu;
    std::unordered_map<vfs::Ino, FileRef> map;
  };
  struct PathShard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::string, vfs::Ino> map;
  };

  FileShard& FileShardOf(vfs::Ino ino) const {
    return file_shards_[std::hash<vfs::Ino>{}(ino) % kStateShards];
  }
  PathShard& PathShardOf(const std::string& path) const {
    return path_shards_[std::hash<std::string>{}(path) % kStateShards];
  }

  FileRef FileOf(vfs::Ino ino) const;
  vfs::Ino LookupPath(const std::string& path) const;
  // Tears down the cached state of a file displaced by rename (same teardown as
  // Unlink): staged bytes return to the pool, the state goes defunct, mappings are
  // invalidated, the kernel fd closes. No-op if `displaced` has no cached state or
  // its state no longer names `path`.
  void TeardownDisplacedState(const std::string& path, vfs::Ino displaced);
  // State behind a descriptor (and optionally its open-file description).
  FileRef StateOf(int fd, std::shared_ptr<vfs::OpenFile>* of_out = nullptr) const;
  std::vector<FileRef> SnapshotFiles() const;
  bool IsDefunct(FileState* fs) const {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    return fs->defunct;
  }

  // Context of a strict-mode write that holds only its byte range (not the whole
  // file): LogDataOp needs the coordinates to release and reacquire the range
  // around a log-full checkpoint.
  struct RangeWriteCtx {
    uint64_t off = 0;
    uint64_t len = 0;
  };

  // --- Strict checkpoint epoch gate ---------------------------------------------------
  // Per-range strict writers register here so the log-full checkpoint can quiesce
  // them without seizing every file. Even epoch = gate open; odd = a checkpoint is
  // draining/sweeping. Invariant: a registered writer NEVER blocks on a range lock
  // (try-only) — that is what makes the checkpoint's drain terminate.
  bool TryEnterRangeWrite();  // Fails (without registering) when the gate is closed.
  void EnterRangeWrite();     // Blocks until the gate opens, then registers.
  void ExitRangeWrite();
  // Charges a writer the closed gate deflected or delayed: fast-forwards behind the
  // checkpoint's rendered service time and reports the wait into the contention
  // ledger as "splitfs.strict_range_log".
  void ChargeEpochGateWait();
  // After a log-full back-out forced a per-range logger to drop its range: is the
  // staged run it was logging still the same un-published run (same staging bytes)?
  // False means a checkpoint publish, truncate, or unlink already made the bytes
  // durable or moot — the entry must NOT be re-logged (see LogDataOp).
  bool StagedRunStillOurs(FileState* fs, uint64_t file_off, const StagingAlloc& a);

  // Acquires the right range lock for a write and runs WriteAt: exclusive on
  // [off, off+n) for writes that stay inside the current size (in-place overwrites;
  // in strict mode, gate-registered COW overwrites with per-range log entries), the
  // whole file for anything that appends or bypasses staging.
  ssize_t LockedWrite(FileState* fs, const void* buf, uint64_t n, uint64_t off);

  // Data-path helpers; the caller holds the covering range lock (whole file where a
  // helper restructures the staged set), or — when `range` is non-null — exactly
  // that byte range plus an epoch-gate registration.
  ssize_t ReadAt(FileState* fs, void* buf, uint64_t n, uint64_t off);
  ssize_t WriteAt(FileState* fs, const void* buf, uint64_t n, uint64_t off,
                  const RangeWriteCtx* range = nullptr);
  ssize_t AppendStaged(FileState* fs, const uint8_t* buf, uint64_t n, uint64_t off,
                       bool is_overwrite, const RangeWriteCtx* range = nullptr);
  ssize_t OverwriteInPlace(FileState* fs, const uint8_t* buf, uint64_t n, uint64_t off);
  // Writes into already-staged bytes overlapping [off, off+n); returns bytes written
  // from the front, 0 if the front of the range is not staged.
  uint64_t OverwriteStagedOverlap(FileState* fs, const uint8_t* buf, uint64_t n,
                                  uint64_t off);

  // Publishes all staged ranges of `fs` into the target file (relink or, with the
  // Figure 3 ablation toggle off, copy). Returns 0 or -errno. Caller holds the
  // whole-file lock exclusively. `log_done` appends the async-relink publish seal
  // (kRelinkDone); the log-full checkpoint passes false — it resets the log right
  // after, which retires every intent wholesale, and a done append against the
  // still-full log would recurse into the checkpoint and deadlock on its mutex.
  // `defer_commit` stops after the relink loop: the caller (PublishBatch) issues
  // one journal commit covering several files and then finishes each file's
  // bookkeeping itself — the dirty count must not drop before that shared commit,
  // or a log reset could retire intents whose relinks are not yet durable.
  int PublishStaged(FileState* fs, bool log_done = true, bool defer_commit = false);

  // --- Async relink publication -----------------------------------------------------
  // fsync/close entry point; caller holds the whole-file lock exclusively. Sync
  // configuration: publishes inline. Async: commits dirty metadata (the fsync
  // contract covers it), logs + fences relink intents, and either publishes inline
  // with the cost rewound (deterministic mode) or sets *enqueue — the caller must
  // then call EnqueuePublish AFTER dropping the file lock: the enqueue can block on
  // queue backpressure while the publisher blocks on this very file's lock.
  int PublishOrIntend(FileState* fs, bool* enqueue);
  // Logs one kRelinkIntent per staged run (or run delta) not yet intent-covered.
  // POSIX/sync modes only — strict logged every run at write time. Caller holds the
  // whole-file lock exclusively.
  int LogRelinkIntents(FileState* fs);
  void EnqueuePublish(FileRef fs);
  void PublisherLoop();
  // Publishes up to Options::publish_batch queued files under ONE journal commit:
  // per-file relink loops run with defer_commit, then a single CommitJournal seals
  // every file's relinks, then all dirty counts drop before any kRelinkDone append
  // (a done append can recurse into the log-full checkpoint, which spins for a zero
  // dirty count — later batch files must already be off it). Files whose whole-file
  // lock is contended are returned for requeue, unless their staged set is already
  // empty (the lock holder published them) — then the stale pending flag is cleared
  // and they are dropped.
  std::vector<FileRef> PublishBatch(std::vector<FileRef> batch);
  void StopPublisher();
  // True when async publishes run as registered passes on the shared publisher pool
  // instead of a private thread.
  bool UsePublisherPool() const {
    return opts_.async_relink && opts_.publisher_thread &&
           services_.publisher_pool != nullptr;
  }
  // Pool mode: registers a queue-deduplicated publish pass with the shared pool.
  // No-op in thread/inline modes.
  void SchedulePublishPass();
  // One shared-pool pass: drains the publish queue batch by batch, mirroring one
  // PublisherLoop iteration per batch. Runs on a pool worker thread.
  void PublishPassOnPool();
  int RelinkRun(FileState* fs, uint64_t file_off, const StagedRange& r);
  int CopyStagedRun(FileState* fs, const StagedRange& r);

  // sync/strict modes: commit the kernel journal (non-barrier) so the metadata
  // operation that just completed is synchronous, per Table 3.
  void MakeMetadataSynchronous(FileState* fs);

  // Multi-tenant QoS: takes one commit credit from this tenant's journal bucket
  // before a foreground journal commit. The wait (if any) lands on the caller's
  // lane and is attributed to the tenant's throttle resource in the contention
  // ledger. No-op without Services wiring.
  void TakeJournalCredit();

  // `held` is the file whose whole-file lock the caller owns (nullptr when none): on
  // a full log the checkpoint publishes it directly instead of try-locking it.
  // With `range` set, the caller holds only that byte range of `held` plus an
  // epoch-gate registration; on a full log both are dropped around the checkpoint
  // and reacquired, and the append retries only while the staged run is still ours.
  // Returns false when the run went moot (published/truncated/unlinked during the
  // back-out): the bytes are already durable or gone, and re-logging the entry
  // would let a post-crash replay resurrect them over later overwrites. The range
  // lock and gate registration are held again on either return.
  bool LogDataOp(LogOp op, FileState* held, uint64_t file_off, const StagingAlloc& a,
                 const RangeWriteCtx* range = nullptr);
  void LogMetaOp(LogOp op, vfs::Ino target, uint64_t aux, FileState* held);
  void CheckpointForFull(FileState* held);

  // RAII bracket at every public operation entry: a top-level trace span named after
  // the op (carrying the op's PM media-time delta, the §5.7 split) plus one latency
  // record into op_hist_. Inert — one branch — unless Options::tracing is set; inert
  // inside ScopedOffClock brackets (rewound work has no place on the timeline).
  class OpScope {
   public:
    OpScope(SplitFs* fs, OpKind op, uint64_t arg = 0)
        : fs_(fs), op_(op),
          span_(fs->opts_.tracing ? &fs->ctx_->obs.tracer : nullptr, &fs->ctx_->clock,
                "op", OpKindName(op), "arg", arg) {
      if (fs_->opts_.tracing && !sim::Clock::OffClock()) {
        active_ = true;
        start_ns_ = fs_->ctx_->clock.Now();
        media0_ = fs_->ctx_->stats.data_media_ns();
      }
    }
    ~OpScope() {
      if (!active_) {
        return;
      }
      uint64_t end = fs_->ctx_->clock.Now();
      if (span_.active()) {
        // Media time charged while this op ran. Exact on one thread; concurrent
        // threads' media charges can leak into each other's spans (the counter is
        // process-wide), which the README's reconciliation section spells out.
        span_.set_media_ns(fs_->ctx_->stats.data_media_ns() - media0_);
      }
      if (end >= start_ns_) {
        fs_->op_hist_[static_cast<size_t>(op_)].Record(end - start_ns_);
      }
    }
    OpScope(const OpScope&) = delete;
    OpScope& operator=(const OpScope&) = delete;

   private:
    SplitFs* fs_;
    OpKind op_;
    bool active_ = false;
    uint64_t start_ns_ = 0;
    uint64_t media0_ = 0;
    obs::ScopedSpan span_;
  };

  // Registers (tag-prefixed) gauges for this instance's queues and pools; the dtor
  // deregisters by prefix before any member is torn down.
  void RegisterGauges();

  ext4sim::Ext4Dax* kfs_;
  sim::Context* ctx_;
  Options opts_;
  std::string tag_;
  Services services_;
  // Ledger resource name for journal-credit throttling, per tenant.
  std::string journal_qos_resource_;

  mutable std::array<FileShard, kStateShards> file_shards_;
  mutable std::array<PathShard, kStateShards> path_shards_;
  vfs::FdTable fds_;
  MmapCache mmaps_;
  std::unique_ptr<StagingPool> staging_;
  std::unique_ptr<OpLog> oplog_;  // Strict mode only.

  std::atomic<uint64_t> relinks_{0};
  std::atomic<uint64_t> checkpoints_{0};
  // Files whose staged set is nonempty; the log-full checkpoint resets the log only
  // once this reaches zero (every entry is then dead).
  std::atomic<int64_t> dirty_files_{0};
  std::mutex checkpoint_mu_;  // Single-flight log checkpoint.

  // Strict checkpoint epoch gate (see TryEnterRangeWrite). range_epoch_ even = open,
  // odd = a checkpoint is draining; range_writers_ counts registered per-range
  // writers. Both guarded by epoch_mu_; epoch_cv_ signals both directions (writers
  // draining to zero, gate reopening).
  std::mutex epoch_mu_;
  std::condition_variable epoch_cv_;
  uint64_t range_epoch_ = 0;
  uint64_t range_writers_ = 0;
  // Virtual-time service window of the epoch'd checkpoint (drain + sweep): writers
  // the closed gate deflects or delays wait behind it, attributed to
  // "splitfs.strict_range_log" in the contention ledger.
  sim::ResourceStamp strict_epoch_stamp_;

  // --- Async publisher (Options::async_relink + publisher_thread) -------------------
  // Queue of files with intent-logged staged data awaiting publication. Bounded:
  // fsync blocks (real time only — the virtual cost of a publish never lands on a
  // lane) when the publisher falls behind, so staged allocations cannot exhaust the
  // staging pool. The queue holds FileRefs: a file torn down by unlink/rename while
  // queued stays alive until the publisher sees it is defunct and skips it.
  static constexpr size_t kMaxQueuedPublishes = 8;
  std::thread publisher_;
  mutable std::mutex publish_mu_;
  std::condition_variable publish_cv_;       // Publisher wakeup.
  std::condition_variable publish_idle_cv_;  // Backpressure + completion fence.
  std::deque<FileRef> publish_queue_;
  size_t publishes_inflight_ = 0;  // Guarded by publish_mu_.
  bool publisher_stop_ = false;    // Guarded by publish_mu_.
  bool publisher_paused_ = false;  // Guarded by publish_mu_; test-only.
  std::atomic<uint64_t> async_publishes_{0};
  std::atomic<uint64_t> publish_errors_{0};
  // fsync calls that blocked on publisher-queue backpressure (kMaxQueuedPublishes).
  std::atomic<uint64_t> publish_backpressure_{0};

  // Per-op latency histograms (virtual ns), recorded by OpScope under tracing.
  std::array<obs::LatencyHistogram, kOpKindCount> op_hist_;

  std::function<void()> rename_race_hook_;  // Test-only; see the setter.
};

}  // namespace splitfs

#endif  // SRC_CORE_SPLIT_FS_H_
