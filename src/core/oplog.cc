#include "src/core/oplog.h"

#include <algorithm>
#include <cstring>

#include "src/analysis/annotations.h"
#include "src/analysis/persist_checker.h"
#include "src/common/bytes.h"
#include "src/common/checksum.h"
#include "src/common/threading.h"

namespace splitfs {

using common::kCacheLineSize;

void LogEntry::Seal() {
  seq = seq == 0 ? 1 : seq;  // Valid entries are always nonzero in the seq field.
  checksum = common::Crc32c(reinterpret_cast<const uint8_t*>(this) + 4, 60);
}

bool LogEntry::ValidSealed() const {
  // Structural validation first: recovery must never act on a slot whose fields it
  // cannot trust, even if the checksum happens to collide. The checksum is the
  // authority on tearing — a 64 B entry whose store only partially drained fails it.
  if (seq == 0 || op == LogOp::kInvalid || op > kMaxLogOp) {
    return false;
  }
  return checksum == common::Crc32c(reinterpret_cast<const uint8_t*>(this) + 4, 60);
}

OpLog::OpLog(ext4sim::Ext4Dax* kfs, const std::string& path, uint64_t bytes)
    : kfs_(kfs), ctx_(kfs->context()), capacity_(bytes / kCacheLineSize) {
  fd_ = kfs_->Open(path, vfs::kRdWr | vfs::kCreate | vfs::kTrunc);
  SPLITFS_CHECK(fd_ >= 0);
  SPLITFS_CHECK_OK(kfs_->Fallocate(fd_, 0, bytes, /*keep_size=*/false));
  ino_ = kfs_->InoOf(fd_);
  SPLITFS_CHECK_OK(kfs_->DaxMap(fd_, 0, bytes, &mappings_));
  uint64_t mapped = 0;
  for (const auto& m : mappings_) {
    mapped += m.len;
  }
  SPLITFS_CHECK(mapped == bytes);
  ZeroLogArea();
}

OpLog::~OpLog() {
  if (fd_ >= 0) {
    kfs_->Close(fd_);
  }
}

uint64_t OpLog::SlotDevOffset(uint64_t slot) const {
  uint64_t file_off = slot * kCacheLineSize;
  for (const auto& m : mappings_) {
    if (file_off >= m.file_off && file_off < m.file_off + m.len) {
      return m.dev_off + (file_off - m.file_off);
    }
  }
  SPLITFS_CHECK(false && "log slot outside mapped area");
  return 0;
}

void OpLog::ZeroLogArea() {
  static const std::vector<uint8_t> zeros(common::kBlockSize, 0);
  pmem::Device* dev = kfs_->device();
  for (const auto& m : mappings_) {
    for (uint64_t off = 0; off < m.len; off += zeros.size()) {
      uint64_t n = std::min<uint64_t>(zeros.size(), m.len - off);
      dev->StoreNt(m.dev_off + off, zeros.data(), n, sim::PmWriteKind::kLog);
    }
  }
  dev->Fence();
}

bool OpLog::Append(LogEntry entry) {
  // Compose the entry (DRAM), reserve a slot in this thread's lane, nt-store the
  // line, one fence. The fence is core-local and the slot is lane-private, so
  // concurrent strict-mode threads only share the (rare) chunk-claim fetch-add and
  // the seq counter.
  ctx_->ChargeCpu(ctx_->model.user_work_ns + ctx_->model.cas_ns);
  std::shared_lock<std::shared_mutex> no_reset(reset_mu_);
  Lane& lane = lanes_[common::ThreadLaneIndex(kLanes)];
  uint64_t slot;
  {
    std::lock_guard<std::mutex> lm(lane.mu);
    if (lane.next == lane.end) {
      uint64_t start = tail_.fetch_add(kLaneChunkSlots, std::memory_order_relaxed);
      if (start >= capacity_) {
        tail_.fetch_sub(kLaneChunkSlots, std::memory_order_relaxed);
        return false;  // Full: the caller checkpoints and retries.
      }
      lane.next = start;
      lane.end = std::min(start + kLaneChunkSlots, capacity_);
    }
    slot = lane.next++;
  }
  entry.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  entry.Seal();
  pmem::Device* dev = kfs_->device();
  uint64_t entry_off = SlotDevOffset(slot);
  analysis::ScopedLintSite lint("oplog.append");
  dev->StoreNt(entry_off, &entry, kCacheLineSize, sim::PmWriteKind::kLog);
  // Rule (b), non-strict: the entry is the record over whatever payload the
  // caller declared (a strict data op's staged bytes); entry and payload
  // persisting at the SAME fence is the §3.3 design, so strict=false.
  analysis::SealCover(dev, entry_off, kCacheLineSize, /*strict=*/false,
                      "oplog.append");
  if (!skip_fence_for_test_) {
    dev->Fence();  // THE single fence per logged operation.
  }
  // Rule (a): the operation acks durability of its log entry the moment Append
  // returns — with the fence mutation-dropped above, this fires.
  analysis::RequireDurable(dev, entry_off, kCacheLineSize, "oplog.entry");
  ctx_->stats.AddLogEntry();
  return true;
}

bool OpLog::NearlyFull(uint64_t slack) const {
  return tail_.load(std::memory_order_relaxed) + slack >= capacity_;
}

bool OpLog::ResetIfQuiesced(const std::function<bool()>& quiesced) {
  std::lock_guard<std::shared_mutex> exclusive(reset_mu_);
  // Any append that already wrote an entry has released the shared lock, so its
  // effects (including the caller's dirty-state bookkeeping preceding the append)
  // are visible to the predicate here; an append that has not yet started will land
  // in the fresh log.
  if (quiesced && !quiesced()) {
    return false;
  }
  ZeroLogArea();
  for (Lane& lane : lanes_) {
    std::lock_guard<std::mutex> lm(lane.mu);
    lane.next = 0;
    lane.end = 0;
  }
  tail_.store(0, std::memory_order_relaxed);
  reset_epoch_.fetch_add(1, std::memory_order_release);
  return true;
}

std::vector<LogEntry> OpLog::ScanForRecovery() const {
  std::vector<LogEntry> out;
  pmem::Device* dev = kfs_->device();
  for (uint64_t slot = 0; slot < capacity_; ++slot) {
    LogEntry e;
    // Recovery-time reads are sequential scans of the log area.
    dev->Load(SlotDevOffset(slot), &e, kCacheLineSize, /*sequential=*/true,
              sim::PmReadKind::kLog);
    // Zero slot: end of the dense region may still be followed by valid entries after
    // a wrap/reset race, so scan everything (capacity is bounded).
    static const LogEntry kZero{};
    if (std::memcmp(&e, &kZero, kCacheLineSize) == 0) {
      continue;
    }
    if (e.ValidSealed()) {
      out.push_back(e);
    }
    // Nonzero but checksum-invalid: torn entry, discarded (§3.3).
  }
  // Stable sort: if corruption ever produces two checksum-valid entries with equal
  // seq, the one in the earlier log slot deterministically wins on every platform.
  std::stable_sort(out.begin(), out.end(),
                   [](const LogEntry& a, const LogEntry& b) { return a.seq < b.seq; });
  // The log writes each sequence number exactly once; a duplicate is corruption that
  // slipped past the checksum (or a bug) and must not be replayed twice.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const LogEntry& a, const LogEntry& b) { return a.seq == b.seq; }),
            out.end());
  return out;
}

}  // namespace splitfs
