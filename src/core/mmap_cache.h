// The "collection of memory-mappings" (§3.3, Table 4).
//
// U-Split serves reads and overwrites from user space by memory-mapping 2 MB (default)
// regions of DAX files and issuing loads / non-temporal stores. A logical file's data
// may be spread across the original file and staging files, so each inode owns a set of
// mapping pieces: file byte range -> PM device byte range.
//
// Two properties from the paper are preserved:
//  * mappings are created once, pre-populated with huge pages, and reused for the rest
//    of the workload (mappings are discarded only on unlink) — sidestepping huge-page
//    fragility (§4);
//  * relink retains existing mappings: after a relink, the staging region's pieces are
//    re-registered under the target inode with zero mmap/fault cost.
#ifndef SRC_CORE_MMAP_CACHE_H_
#define SRC_CORE_MMAP_CACHE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/ext4/ext4_dax.h"
#include "src/vfs/types.h"

namespace splitfs {

class MmapCache {
 public:
  explicit MmapCache(ext4sim::Ext4Dax* kfs, uint64_t mmap_size);

  // Resolves file offset -> device offset if some cached mapping covers `off`.
  // Returns the device offset and the length of contiguous coverage from `off`.
  struct Hit {
    uint64_t dev_off = 0;
    uint64_t len = 0;
  };
  std::optional<Hit> Translate(vfs::Ino ino, uint64_t off) const;

  // Ensures the mmap-size-aligned region around `off` is mapped, charging mmap() +
  // pre-population (huge-page) costs. Holes in the file stay unmapped. `kernel_fd` is
  // the K-Split descriptor used for the DaxMap call. Returns false if the kernel call
  // failed.
  bool EnsureRegion(vfs::Ino ino, int kernel_fd, uint64_t off);

  // Registers mapping pieces directly, with no mmap cost. Used after relink (the
  // physical blocks and their mappings are retained) and by the staging pool (staging
  // files are mapped once at pre-allocation time). Overlapping subranges are skipped.
  void InsertPieces(vfs::Ino ino, const std::vector<ext4sim::Ext4Dax::DaxMapping>& pieces);

  // Drops every mapping of `ino`, charging one munmap per created region (§3.5:
  // unlink() is expensive in SplitFS precisely because of this).
  void InvalidateFile(vfs::Ino ino);

  // Drops mappings overlapping [off, off+len) without munmap charges (truncate path).
  void InvalidateRange(vfs::Ino ino, uint64_t off, uint64_t len);

  // Drops everything without charges: crash recovery starts from an empty cache.
  void Clear() {
    std::lock_guard<std::shared_mutex> lock(mu_);
    files_.clear();
    total_regions_ = 0;
  }

  // §5.10 accounting: approximate DRAM footprint of the cache structures.
  uint64_t MemoryUsageBytes() const;
  uint64_t RegionCount() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return total_regions_;
  }

 private:
  struct Piece {
    uint64_t dev_off = 0;
    uint64_t len = 0;
  };
  struct FileMaps {
    std::map<uint64_t, Piece> pieces;  // key: file_off
    std::map<uint64_t, bool> regions;  // key: aligned region start -> mapped
    uint64_t mmap_count = 0;           // Regions created via mmap (munmap charge basis).
  };

  void InsertPiece(FileMaps* fm, uint64_t file_off, uint64_t dev_off, uint64_t len);

  ext4sim::Ext4Dax* kfs_;
  sim::Context* ctx_;
  uint64_t mmap_size_;
  // Reader/writer lock: Translate (the per-access hot path) takes it shared; region
  // creation, relink piece insertion, and invalidation take it exclusive. A lock-free
  // lookup structure is a known follow-on (see ROADMAP).
  mutable std::shared_mutex mu_;
  std::unordered_map<vfs::Ino, FileMaps> files_;
  uint64_t total_regions_ = 0;
};

}  // namespace splitfs

#endif  // SRC_CORE_MMAP_CACHE_H_
