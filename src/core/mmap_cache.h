// The "collection of memory-mappings" (§3.3, Table 4).
//
// U-Split serves reads and overwrites from user space by memory-mapping 2 MB (default)
// regions of DAX files and issuing loads / non-temporal stores. A logical file's data
// may be spread across the original file and staging files, so each inode owns a set of
// mapping pieces: file byte range -> PM device byte range.
//
// Two properties from the paper are preserved:
//  * mappings are created once, pre-populated with huge pages, and reused for the rest
//    of the workload (mappings are discarded only on unlink) — sidestepping huge-page
//    fragility (§4);
//  * relink retains existing mappings: after a relink, the staging region's pieces are
//    re-registered under the target inode with zero mmap/fault cost.
//
// Concurrency: the cache is on every user-space read and overwrite, so Translate is
// lock-free. The whole translation state is an immutable snapshot — a table of
// per-file piece/region vectors — published through one atomic pointer. Readers pin
// an epoch (common/epoch.h), load the snapshot, and binary-search it; they never
// write a shared cache line. Updates (region creation, relink piece insertion,
// invalidation) serialize on a small update mutex, build the next snapshot aside,
// swap the pointer, and retire the old snapshot to the epoch garbage collector,
// which frees it at reader quiescence. Virtual-time charges are unchanged from the
// mutex-based cache (snapshot building is DRAM-only work), so single-threaded
// timelines are bit-identical.
#ifndef SRC_CORE_MMAP_CACHE_H_
#define SRC_CORE_MMAP_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/epoch.h"
#include "src/ext4/ext4_dax.h"
#include "src/vfs/types.h"

namespace splitfs {

class MmapCache {
 public:
  explicit MmapCache(ext4sim::Ext4Dax* kfs, uint64_t mmap_size);
  ~MmapCache();

  // Resolves file offset -> device offset if some cached mapping covers `off`.
  // Returns the device offset and the length of contiguous coverage from `off`.
  // Wait-free: epoch pin + snapshot load + binary search; no shared-line write.
  struct Hit {
    uint64_t dev_off = 0;
    uint64_t len = 0;
  };
  std::optional<Hit> Translate(vfs::Ino ino, uint64_t off) const;

  // Ensures the mmap-size-aligned region around `off` is mapped, charging mmap() +
  // pre-population (huge-page) costs. Holes in the file stay unmapped. `kernel_fd` is
  // the K-Split descriptor used for the DaxMap call. Returns false if the kernel call
  // failed.
  bool EnsureRegion(vfs::Ino ino, int kernel_fd, uint64_t off);

  // Registers mapping pieces directly, with no mmap cost. Used after relink (the
  // physical blocks and their mappings are retained) and by the staging pool (staging
  // files are mapped once at pre-allocation time). Overlapping subranges are skipped.
  void InsertPieces(vfs::Ino ino, const std::vector<ext4sim::Ext4Dax::DaxMapping>& pieces);

  // Drops every mapping of `ino`, charging one munmap per created region (§3.5:
  // unlink() is expensive in SplitFS precisely because of this).
  void InvalidateFile(vfs::Ino ino);

  // Drops mappings overlapping [off, off+len) without munmap charges (truncate path).
  void InvalidateRange(vfs::Ino ino, uint64_t off, uint64_t len);

  // Drops everything without charges: crash recovery starts from an empty cache.
  void Clear();

  // §5.10 accounting: approximate DRAM footprint of the cache structures.
  uint64_t MemoryUsageBytes() const;
  uint64_t RegionCount() const {
    return total_regions_.load(std::memory_order_relaxed);
  }
  // Snapshots retired but not yet reclaimed (epoch GC introspection for tests).
  size_t RetiredSnapshotsForTest() const;

 private:
  struct Piece {
    uint64_t dev_off = 0;
    uint64_t len = 0;
  };
  // Immutable once published.
  struct FileSnapshot {
    std::vector<std::pair<uint64_t, Piece>> pieces;  // Sorted by file_off.
    std::vector<uint64_t> regions;                   // Sorted aligned region starts.
    uint64_t mmap_count = 0;  // Regions created via mmap (munmap charge basis).
  };
  struct Table {
    std::unordered_map<vfs::Ino, const FileSnapshot*> files;
  };

  // Mutable build form of a FileSnapshot; the std::map preserves the insertion /
  // merge semantics of the original locked implementation exactly, so the published
  // piece structure (and therefore every downstream Translate span and media charge)
  // is unchanged.
  struct FileBuilder {
    std::map<uint64_t, Piece> pieces;
    std::vector<uint64_t> regions;
    uint64_t mmap_count = 0;
  };
  static void InsertPiece(FileBuilder* fb, uint64_t file_off, uint64_t dev_off,
                          uint64_t len);
  static FileBuilder BuilderFrom(const FileSnapshot& snap);
  const FileSnapshot* SealAndPublish(vfs::Ino ino, FileBuilder&& fb);
  // Loads the current table; caller must hold update_mu_ (writers) or an epoch pin
  // (readers).
  const Table* CurrentTable() const {
    return table_.load(std::memory_order_acquire);
  }
  // Swaps in `next` and retires the previous table. Caller holds update_mu_.
  void PublishTable(const Table* next);

  ext4sim::Ext4Dax* kfs_;
  sim::Context* ctx_;
  uint64_t mmap_size_;

  // Updates serialize here; Translate never touches it. Retire lists are guarded by
  // update_mu_ too (retirement only happens during updates).
  mutable std::mutex update_mu_;
  std::atomic<const Table*> table_;
  common::RetireList<Table> retired_tables_;
  common::RetireList<FileSnapshot> retired_files_;
  std::atomic<uint64_t> total_regions_{0};
};

}  // namespace splitfs

#endif  // SRC_CORE_MMAP_CACHE_H_
