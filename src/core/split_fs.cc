#include "src/core/split_fs.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <thread>

#include "src/analysis/annotations.h"
#include "src/analysis/lock_witness.h"
#include "src/analysis/persist_checker.h"
#include "src/common/bytes.h"
#include "src/common/service_pool.h"
#include "src/sim/token_bucket.h"

namespace splitfs {

using common::kBlockSize;
using vfs::Ino;
using vfs::RangeLock;
using vfs::RangeReadGuard;
using vfs::RangeWriteGuard;

namespace {
// One 4 KB scratch buffer per thread for partial-block staging copies.
thread_local std::vector<uint8_t> g_scratch(common::kBlockSize);

// Internal sentinel (never surfaces to callers): a strict per-range write raced a
// whole-file restructuring — checkpoint publish or truncate — during a log-full
// back-out. The bytes written so far are durable (published) or moot (truncated);
// LockedWrite re-classifies and replays the whole write, which is idempotent.
constexpr ssize_t kRangeWriteRetry = std::numeric_limits<ssize_t>::min();

// Witness site ids for U-Split's documented lock order (split_fs.h top comment).
// The per-file byte-range lock reports through vfs::RangeLock itself
// ("splitfs.range_lock").
int MetaMuSite() {
  static const int kSite = analysis::LockSite("usplit.file_meta");
  return kSite;
}
int CheckpointSite() {
  static const int kSite = analysis::LockSite("usplit.checkpoint");
  return kSite;
}
int EpochGateSite() {
  static const int kSite = analysis::LockSite("usplit.epoch_gate");
  return kSite;
}
}  // namespace

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kPosix:
      return "POSIX";
    case Mode::kSync:
      return "sync";
    case Mode::kStrict:
      return "strict";
  }
  return "?";
}

const char* OpKindName(OpKind op) {
  switch (op) {
    case OpKind::kOpen: return "splitfs.open";
    case OpKind::kClose: return "splitfs.close";
    case OpKind::kUnlink: return "splitfs.unlink";
    case OpKind::kRename: return "splitfs.rename";
    case OpKind::kPread: return "splitfs.pread";
    case OpKind::kPwrite: return "splitfs.pwrite";
    case OpKind::kRead: return "splitfs.read";
    case OpKind::kWrite: return "splitfs.write";
    case OpKind::kLseek: return "splitfs.lseek";
    case OpKind::kFsync: return "splitfs.fsync";
    case OpKind::kFtruncate: return "splitfs.ftruncate";
    case OpKind::kFallocate: return "splitfs.fallocate";
    case OpKind::kStat: return "splitfs.stat";
    case OpKind::kFstat: return "splitfs.fstat";
    case OpKind::kMkdir: return "splitfs.mkdir";
    case OpKind::kRmdir: return "splitfs.rmdir";
    case OpKind::kReadDir: return "splitfs.readdir";
    case OpKind::kRecover: return "splitfs.recover";
  }
  return "splitfs.?";
}

SplitFs::SplitFs(ext4sim::Ext4Dax* kfs, Options opts, const std::string& instance_tag,
                 const Services& services)
    : kfs_(kfs),
      ctx_(kfs->context()),
      opts_(opts),
      tag_(instance_tag),
      services_(services),
      journal_qos_resource_("tenant." + instance_tag + ".journal_throttle"),
      mmaps_(kfs, opts.mmap_size) {
  kfs_->Mkdir(opts_.runtime_dir);  // Idempotent; EEXIST is fine.
  if (opts_.enable_staging) {
    staging_ = std::make_unique<StagingPool>(kfs_, &mmaps_, opts_, tag_, services_);
  }
  if (opts_.mode == Mode::kStrict || opts_.async_relink) {
    // Strict logs every operation; async relink logs fsync's publish intents (any
    // mode) — both need the log replayed at recovery.
    oplog_ = std::make_unique<OpLog>(kfs_, opts_.runtime_dir + "/oplog-" + tag_,
                                     opts_.oplog_bytes);
  }
  // Make the runtime files (staging pool, op log) durable before serving operations:
  // recovery depends on their metadata having committed.
  int fd = kfs_->Open(opts_.runtime_dir + "/.init-" + tag_, vfs::kRdWr | vfs::kCreate);
  SPLITFS_CHECK(fd >= 0);
  SPLITFS_CHECK_OK(kfs_->Fsync(fd));
  SPLITFS_CHECK_OK(kfs_->Close(fd));
  if (opts_.async_relink && opts_.publisher_thread && !UsePublisherPool()) {
    publisher_ = std::thread([this] { PublisherLoop(); });
  }
  RegisterGauges();
}

void SplitFs::RegisterGauges() {
  // Tag-prefixed so concurrent U-Split instances over one Context never collide;
  // the dtor deregisters by the same prefix.
  obs::MetricsRegistry* m = &ctx_->obs.metrics;
  m->RegisterGauge(tag_ + ".publisher.queue_depth", [this]() -> uint64_t {
    std::lock_guard<std::mutex> lg(publish_mu_);
    return publish_queue_.size();
  });
  m->RegisterGauge(tag_ + ".publisher.inflight", [this]() -> uint64_t {
    std::lock_guard<std::mutex> lg(publish_mu_);
    return publishes_inflight_;
  });
  m->RegisterGauge(tag_ + ".publisher.async_publishes", [this]() {
    return async_publishes_.load(std::memory_order_acquire);
  });
  m->RegisterGauge(tag_ + ".publisher.errors", [this]() {
    return publish_errors_.load(std::memory_order_acquire);
  });
  m->RegisterGauge(tag_ + ".publisher.backpressure_waits", [this]() {
    return publish_backpressure_.load(std::memory_order_acquire);
  });
  m->RegisterGauge(tag_ + ".relinks", [this]() {
    return relinks_.load(std::memory_order_acquire);
  });
  m->RegisterGauge(tag_ + ".checkpoints", [this]() {
    return checkpoints_.load(std::memory_order_acquire);
  });
  m->RegisterGauge(tag_ + ".dirty_files", [this]() -> uint64_t {
    int64_t v = dirty_files_.load(std::memory_order_acquire);
    return v > 0 ? static_cast<uint64_t>(v) : 0;
  });
  m->RegisterGauge(tag_ + ".mmap.regions", [this]() { return mmaps_.RegionCount(); });
  m->RegisterGauge(tag_ + ".epoch.retired_snapshots", [this]() {
    return static_cast<uint64_t>(mmaps_.RetiredSnapshotsForTest());
  });
  if (staging_ != nullptr) {
    m->RegisterGauge(tag_ + ".staging.live_files",
                     [this]() { return staging_->LiveFiles(); });
    m->RegisterGauge(tag_ + ".staging.spare_files",
                     [this]() { return staging_->SpareFiles(); });
  }
  if (oplog_ != nullptr) {
    m->RegisterGauge(tag_ + ".oplog.entries",
                     [this]() { return oplog_->EntriesLogged(); });
    m->RegisterGauge(tag_ + ".oplog.fill_permille", [this]() -> uint64_t {
      uint64_t cap = oplog_->Capacity();
      return cap == 0 ? 0 : oplog_->SlotsReserved() * 1000 / cap;
    });
  }
}

SplitFs::~SplitFs() {
  // Gauges read through `this`; drop them before any member state goes away.
  ctx_->obs.metrics.DeregisterGauges(tag_ + ".");
  StopPublisher();  // Drains the queue: staged data promised by fsync publishes.
  for (FileShard& shard : file_shards_) {
    for (auto& [ino, fs] : shard.map) {
      if (fs->kernel_fd >= 0) {
        kfs_->Close(fs->kernel_fd);
      }
    }
  }
}

std::string SplitFs::Name() const { return std::string("SplitFS-") + ModeName(opts_.mode); }

// --- State management --------------------------------------------------------------------

SplitFs::FileRef SplitFs::FileOf(Ino ino) const {
  FileShard& shard = FileShardOf(ino);
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(ino);
  return it == shard.map.end() ? nullptr : it->second;
}

Ino SplitFs::LookupPath(const std::string& path) const {
  PathShard& shard = PathShardOf(path);
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(path);
  return it == shard.map.end() ? vfs::kInvalidIno : it->second;
}

SplitFs::FileRef SplitFs::StateOf(int fd, std::shared_ptr<vfs::OpenFile>* of_out) const {
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return nullptr;
  }
  if (of_out != nullptr) {
    *of_out = of;
  }
  return FileOf(of->ino);
}

std::vector<SplitFs::FileRef> SplitFs::SnapshotFiles() const {
  std::vector<FileRef> out;
  for (FileShard& shard : file_shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [ino, fs] : shard.map) {
      out.push_back(fs);
    }
  }
  return out;
}

// --- Open / close / metadata ---------------------------------------------------------------

int SplitFs::Open(const std::string& path, int flags) {
  OpScope op_scope(this, OpKind::kOpen);
  // Retries only on races with unlink/creation (a cached state going defunct under
  // us, or a creation finishing first); a single-threaded process never loops.
  for (;;) {
    Ino cached_ino = LookupPath(path);
    FileRef fs = cached_ino != vfs::kInvalidIno ? FileOf(cached_ino) : nullptr;
    ctx_->ChargeCpu(fs != nullptr ? ctx_->model.usplit_reopen_cpu_ns
                                  : ctx_->model.usplit_open_cpu_ns);

    if (fs != nullptr) {
      // Reopen of a cached file: the kernel open still happens (the trap and path
      // walk), but U-Split reuses its cached attributes and existing kernel
      // descriptor.
      if ((flags & vfs::kCreate) != 0 && (flags & vfs::kExcl) != 0) {
        return -EEXIST;  // The cached file exists; O_CREAT|O_EXCL must fail.
      }
      ctx_->ChargeSyscall();
      ctx_->ChargeCpu(ctx_->model.ext4_open_path_ns);
      if ((flags & vfs::kTrunc) != 0) {
        RangeWriteGuard guard(&fs->rlock, 0, RangeLock::kWholeFile);
        if (IsDefunct(fs.get())) {
          continue;  // Unlinked while we queued for the lock.
        }
        // Publish-then-truncate, mirroring Ftruncate: simply discarding the staged
        // ranges would leave their op-log append entries valid and the staged blocks
        // in place, so strict-mode crash recovery would resurrect the truncated
        // data. Publishing first turns those staging ranges into holes replay skips.
        int rc = PublishStaged(fs.get());
        if (rc != 0) {
          return rc;
        }
        rc = kfs_->Ftruncate(fs->kernel_fd, 0);
        if (rc != 0) {
          return rc;
        }
        uint64_t old_size;
        {
          std::lock_guard<std::mutex> meta(fs->meta_mu);
          old_size = fs->size;
          fs->size = 0;
          fs->kernel_size = 0;
          fs->metadata_dirty = true;
        }
        mmaps_.InvalidateRange(fs->ino, 0, std::max<uint64_t>(old_size, kBlockSize));
        if (oplog_ != nullptr) {
          // Logged in strict mode *and* async configurations: replay must know the
          // truncate ordered after any intent entries, or their partial-block head
          // copies would resurrect truncated bytes.
          LogMetaOp(LogOp::kTruncate, fs->ino, 0, fs.get());
        }
        MakeMetadataSynchronous(fs.get());
      }
      {
        std::lock_guard<std::mutex> meta(fs->meta_mu);
        if (fs->defunct) {
          continue;  // Unlinked since the lookup; restart as a fresh open.
        }
        ++fs->open_count;
      }
      return fds_.Allocate(fs->ino, flags);
    }

    // First open: create the state under the path-shard lock, which Unlink holds
    // across its kernel unlink — so the kernel open, the attribute snapshot, and the
    // path-cache insert are atomic against deletion (no stale cache entry can ever
    // outlive its file).
    {
      PathShard& pshard = PathShardOf(path);
      std::unique_lock<std::shared_mutex> plock(pshard.mu);
      if (pshard.map.count(path) != 0) {
        continue;  // A racing creator won; retry as a cached reopen.
      }
      int kfd = kfs_->Open(path, flags);
      if (kfd < 0) {
        return kfd;
      }
      Ino ino = kfs_->InoOf(kfd);
      SPLITFS_CHECK(ino != vfs::kInvalidIno);
      // Stat() the file and cache its attributes (§3.5).
      vfs::StatBuf st;
      SPLITFS_CHECK_OK(kfs_->Fstat(kfd, &st));
      fs = std::make_shared<FileState>(&ctx_->clock, &ctx_->obs);
      fs->ino = ino;
      fs->kernel_fd = kfd;
      fs->path = path;
      fs->size = st.size;
      fs->kernel_size = st.size;
      {
        FileShard& shard = FileShardOf(ino);
        std::lock_guard<std::shared_mutex> lock(shard.mu);
        shard.map[ino] = fs;
      }
      pshard.map[path] = ino;
    }
    uint64_t size_now;
    {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      if ((flags & (vfs::kCreate | vfs::kTrunc)) != 0) {
        fs->metadata_dirty = true;
      }
      size_now = fs->size;
    }
    if (opts_.mode == Mode::kStrict && (flags & vfs::kCreate) != 0 && size_now == 0) {
      LogMetaOp(LogOp::kCreate, fs->ino, 0, nullptr);
    }
    if ((flags & vfs::kCreate) != 0 && size_now == 0) {
      MakeMetadataSynchronous(fs.get());
    }
    {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      ++fs->open_count;
    }
    return fds_.Allocate(fs->ino, flags);
  }
}

void SplitFs::MakeMetadataSynchronous(FileState* fs) {
  // Table 3: sync and strict modes guarantee synchronous metadata operations; the
  // kernel journal commits immediately (non-barrier path), like PMFS/NOVA semantics.
  if (opts_.mode == Mode::kPosix) {
    return;
  }
  TakeJournalCredit();
  kfs_->CommitJournal(/*fsync_barrier=*/false, tag_.c_str());
  if (fs != nullptr) {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    fs->metadata_dirty = false;
  }
}

int SplitFs::Close(int fd) {
  OpScope op_scope(this, OpKind::kClose);
  ctx_->ChargeCpu(ctx_->model.usplit_close_cpu_ns);
  FileRef fs = StateOf(fd);
  if (fs == nullptr) {
    return -EBADF;
  }
  // Appends are published on fsync() *or* close() (§3.4).
  bool staged;
  {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    staged = !fs->staged.empty();
  }
  if (staged) {
    bool enqueue = false;
    {
      RangeWriteGuard guard(&fs->rlock, 0, RangeLock::kWholeFile);
      int rc = PublishOrIntend(fs.get(), &enqueue);
      if (rc != 0) {
        return rc;
      }
    }
    if (enqueue) {
      EnqueuePublish(fs);
    } else {
      // Synchronous publish path: close() acks durability of everything this file
      // staged (§3.4). Deferred (async-relink) publishes ack at the intent log
      // instead, so no durability claim is made here.
      analysis::DurabilityPoint(kfs_->device(), fs->ino, "splitfs.close");
    }
  }
  // The application's close traps into the kernel; U-Split keeps its own descriptor
  // and all cached state alive (cache is only cleared by unlink, §3.5).
  ctx_->ChargeSyscall();
  {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    if (fs->open_count > 0) {
      --fs->open_count;
    }
  }
  return fds_.Release(fd);
}

int SplitFs::Dup(int fd) {
  ctx_->ChargeCpu(ctx_->model.user_work_ns);
  ctx_->ChargeSyscall();
  return fds_.Dup(fd);  // Shares the open file description: one offset (§3.5).
}

int SplitFs::Unlink(const std::string& path) {
  OpScope op_scope(this, OpKind::kUnlink);
  ctx_->ChargeCpu(ctx_->model.usplit_unlink_cpu_ns);
  int rc;
  {
    // The path-shard lock is held through the kernel unlink so a racing first open
    // (which creates its state under the same lock) either completes before us — and
    // we tear it down — or starts after the file is really gone.
    PathShard& pshard = PathShardOf(path);
    std::lock_guard<std::shared_mutex> plock(pshard.mu);
    Ino ino = vfs::kInvalidIno;
    auto it = pshard.map.find(path);
    if (it != pshard.map.end()) {
      ino = it->second;
      pshard.map.erase(it);
    }
    if (ino != vfs::kInvalidIno) {
      FileRef fs = FileOf(ino);
      if (fs != nullptr) {
        {
          // Descriptor operations now miss; in-flight ones drain below.
          FileShard& shard = FileShardOf(ino);
          std::lock_guard<std::shared_mutex> lock(shard.mu);
          shard.map.erase(ino);
        }
        RangeWriteGuard guard(&fs->rlock, 0, RangeLock::kWholeFile);
        // Staged-but-unpublished data dies with the file; the pool gets its bytes
        // back and mappings are unmapped here — this is what makes unlink SplitFS's
        // most expensive call (Table 6).
        {
          std::lock_guard<std::mutex> meta(fs->meta_mu);
          if (!fs->staged.empty()) {
            if (staging_) {
              for (const auto& [off, r] : fs->staged) {
                staging_->Release(r.alloc);
              }
            }
            fs->staged.clear();
            dirty_files_.fetch_sub(1, std::memory_order_release);
          }
          fs->defunct = true;  // Queued writers/readers bail with EBADF.
        }
        // Unpublished staged data died with the file: nothing to acknowledge.
        analysis::DropAllDeps(kfs_->device(), fs->ino);
        mmaps_.InvalidateFile(fs->ino);
        if (opts_.mode == Mode::kStrict) {
          LogMetaOp(LogOp::kUnlink, fs->ino, 0, fs.get());
        }
        kfs_->Close(fs->kernel_fd);
      }
    }
    rc = kfs_->Unlink(path);
  }
  if (rc == 0) {
    MakeMetadataSynchronous(nullptr);
  }
  return rc;
}

int SplitFs::Rename(const std::string& from, const std::string& to) {
  OpScope op_scope(this, OpKind::kRename);
  ctx_->ChargeCpu(2 * ctx_->model.user_work_ns);
  {
    // Both path shards are held — ascending address, one lock when the paths
    // collide on a shard — across the kernel rename and the cache updates, the same
    // protocol Unlink applies to its single shard. A racing first Open of either
    // path blocks on its shard until the caches reflect the rename; without this,
    // an Open of the destination in the window after the kernel rename resolved the
    // *moved* inode, built a second FileState for it, and overwrote the cached one
    // — stranding its staged set and dirty-file count (the PR 3 leftover race).
    PathShard& fshard = PathShardOf(from);
    PathShard& tshard = PathShardOf(to);
    PathShard* lo = &fshard < &tshard ? &fshard : &tshard;
    PathShard* hi = &fshard < &tshard ? &tshard : &fshard;
    std::unique_lock<std::shared_mutex> l1(lo->mu);
    std::unique_lock<std::shared_mutex> l2;
    if (lo != hi) {
      l2 = std::unique_lock<std::shared_mutex>(hi->mu);
    }
    int rc = kfs_->Rename(from, to);
    if (rc != 0) {
      return rc;
    }
    if (rename_race_hook_) {
      rename_race_hook_();  // Test-only: park in the historical race window.
    }
    // Rename is the paper's example of a multi-entry logged operation.
    Ino ino = vfs::kInvalidIno;
    {
      auto it = fshard.map.find(from);
      if (it != fshard.map.end()) {
        ino = it->second;
        fshard.map.erase(it);
      }
    }
    // The destination, if it existed and was cached, has been replaced: its stale
    // state must be torn down exactly as on unlink, or the displaced file's kernel
    // descriptor, staged bytes, and mappings leak.
    Ino displaced = vfs::kInvalidIno;
    if (ino != vfs::kInvalidIno) {
      auto it = tshard.map.find(to);
      if (it != tshard.map.end() && it->second != ino) {
        displaced = it->second;
      }
      tshard.map[to] = ino;
    } else {
      auto it = tshard.map.find(to);
      if (it != tshard.map.end()) {
        displaced = it->second;
        tshard.map.erase(it);
      }
    }
    TeardownDisplacedState(to, displaced);
    if (ino != vfs::kInvalidIno) {
      FileRef fs = FileOf(ino);
      if (fs != nullptr) {
        std::lock_guard<std::mutex> meta(fs->meta_mu);
        fs->path = to;
      }
      if (opts_.mode == Mode::kStrict) {
        LogMetaOp(LogOp::kRenameFrom, ino, 0, nullptr);
        LogMetaOp(LogOp::kRenameTo, ino, 0, nullptr);
      }
    }
  }
  MakeMetadataSynchronous(nullptr);
  return 0;
}

void SplitFs::TeardownDisplacedState(const std::string& path, Ino displaced) {
  if (displaced == vfs::kInvalidIno) {
    return;
  }
  FileRef fs = FileOf(displaced);
  bool matches = false;
  if (fs != nullptr) {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    matches = fs->path == path;
  }
  if (!matches) {
    return;
  }
  {
    FileShard& shard = FileShardOf(displaced);
    std::lock_guard<std::shared_mutex> lock(shard.mu);
    shard.map.erase(displaced);
  }
  RangeWriteGuard guard(&fs->rlock, 0, RangeLock::kWholeFile);
  {
    // Same teardown as Unlink: staged-but-unpublished data dies with the displaced
    // file, and its bytes go back to the pool so consumed staging files can retire.
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    if (!fs->staged.empty()) {
      if (staging_) {
        for (const auto& [off, r] : fs->staged) {
          staging_->Release(r.alloc);
        }
      }
      fs->staged.clear();
      dirty_files_.fetch_sub(1, std::memory_order_release);
    }
    fs->defunct = true;
  }
  // Unpublished staged data died with the displaced file: nothing to acknowledge.
  analysis::DropAllDeps(kfs_->device(), fs->ino);
  mmaps_.InvalidateFile(fs->ino);
  kfs_->Close(fs->kernel_fd);
}

int SplitFs::Mkdir(const std::string& path) {
  OpScope op_scope(this, OpKind::kMkdir);
  int rc = kfs_->Mkdir(path);
  if (rc == 0) {
    MakeMetadataSynchronous(nullptr);
  }
  return rc;
}

int SplitFs::Rmdir(const std::string& path) {
  OpScope op_scope(this, OpKind::kRmdir);
  int rc = kfs_->Rmdir(path);
  if (rc == 0) {
    MakeMetadataSynchronous(nullptr);
  }
  return rc;
}

int SplitFs::ReadDir(const std::string& path, std::vector<std::string>* names) {
  OpScope op_scope(this, OpKind::kReadDir);
  int rc = kfs_->ReadDir(path, names);
  if (rc != 0) {
    return rc;
  }
  // Hide U-Split's own runtime directory from directory listings at the root.
  if (path == "/") {
    std::erase_if(*names, [this](const std::string& n) {
      return "/" + n == opts_.runtime_dir;
    });
  }
  return 0;
}

int SplitFs::Stat(const std::string& path, vfs::StatBuf* out) {
  OpScope op_scope(this, OpKind::kStat);
  int rc = kfs_->Stat(path, out);
  if (rc != 0) {
    return rc;
  }
  // Overlay the cached size: the caller sees its own staged appends.
  Ino ino = LookupPath(path);
  if (ino != vfs::kInvalidIno) {
    FileRef fs = FileOf(ino);
    if (fs != nullptr) {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      out->size = fs->size;
    }
  }
  return 0;
}

int SplitFs::Fstat(int fd, vfs::StatBuf* out) {
  OpScope op_scope(this, OpKind::kFstat);
  ctx_->ChargeCpu(ctx_->model.user_work_ns);  // Served from the attribute cache.
  FileRef fs = StateOf(fd);
  if (fs == nullptr) {
    return -EBADF;
  }
  uint64_t size;
  {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    size = fs->size;
  }
  out->ino = fs->ino;
  out->size = size;
  out->blocks = common::DivCeil(size, kBlockSize);
  out->nlink = 1;
  out->type = vfs::FileType::kRegular;
  return 0;
}

int64_t SplitFs::Lseek(int fd, int64_t off, vfs::Whence whence) {
  OpScope op_scope(this, OpKind::kLseek);
  ctx_->ChargeCpu(ctx_->model.user_work_ns);  // Pure user space: no trap.
  std::shared_ptr<vfs::OpenFile> of;
  FileRef fs = StateOf(fd, &of);
  if (of == nullptr || fs == nullptr) {
    return -EBADF;
  }
  std::lock_guard<std::mutex> flock(of->mu);
  int64_t base = 0;
  switch (whence) {
    case vfs::Whence::kSet:
      base = 0;
      break;
    case vfs::Whence::kCur:
      base = static_cast<int64_t>(of->offset);
      break;
    case vfs::Whence::kEnd: {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      base = static_cast<int64_t>(fs->size);
      break;
    }
  }
  int64_t target = base + off;
  if (target < 0) {
    return -EINVAL;
  }
  of->offset = static_cast<uint64_t>(target);
  return target;
}

// --- Data path ----------------------------------------------------------------------------

ssize_t SplitFs::Pread(int fd, void* buf, uint64_t n, uint64_t off) {
  OpScope op_scope(this, OpKind::kPread, n);
  std::shared_ptr<vfs::OpenFile> of;
  FileRef fs = StateOf(fd, &of);
  if (fs == nullptr) {
    return -EBADF;
  }
  if (!vfs::WantsRead(of->flags)) {
    return -EBADF;
  }
  RangeReadGuard guard(&fs->rlock, off, n);
  if (IsDefunct(fs.get())) {
    return -EBADF;  // Unlinked while we queued for the range.
  }
  return ReadAt(fs.get(), buf, n, off);
}

ssize_t SplitFs::Pwrite(int fd, const void* buf, uint64_t n, uint64_t off) {
  OpScope op_scope(this, OpKind::kPwrite, n);
  std::shared_ptr<vfs::OpenFile> of;
  FileRef fs = StateOf(fd, &of);
  if (fs == nullptr) {
    return -EBADF;
  }
  if (!vfs::WantsWrite(of->flags)) {
    return -EBADF;
  }
  return LockedWrite(fs.get(), buf, n, off);
}

ssize_t SplitFs::Read(int fd, void* buf, uint64_t n) {
  OpScope op_scope(this, OpKind::kRead, n);
  std::shared_ptr<vfs::OpenFile> of;
  FileRef fs = StateOf(fd, &of);
  if (fs == nullptr || of == nullptr || !vfs::WantsRead(of->flags)) {
    return -EBADF;
  }
  std::lock_guard<std::mutex> flock(of->mu);
  RangeReadGuard guard(&fs->rlock, of->offset, n);
  if (IsDefunct(fs.get())) {
    return -EBADF;
  }
  ssize_t rc = ReadAt(fs.get(), buf, n, of->offset);
  if (rc > 0) {
    of->offset += static_cast<uint64_t>(rc);
  }
  return rc;
}

ssize_t SplitFs::Write(int fd, const void* buf, uint64_t n) {
  OpScope op_scope(this, OpKind::kWrite, n);
  std::shared_ptr<vfs::OpenFile> of;
  FileRef fs = StateOf(fd, &of);
  if (fs == nullptr || of == nullptr || !vfs::WantsWrite(of->flags)) {
    return -EBADF;
  }
  std::lock_guard<std::mutex> flock(of->mu);
  if ((of->flags & vfs::kAppend) != 0) {
    // O_APPEND: the write offset is the size *at write time*; take the whole file so
    // concurrent appenders see a consistent tail (atomic appends, Table 3).
    RangeWriteGuard guard(&fs->rlock, 0, RangeLock::kWholeFile);
    uint64_t off;
    {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      if (fs->defunct) {
        return -EBADF;
      }
      off = fs->size;
    }
    ssize_t rc = WriteAt(fs.get(), buf, n, off);
    if (rc > 0) {
      of->offset = off + static_cast<uint64_t>(rc);
    }
    return rc;
  }
  uint64_t off = of->offset;
  ssize_t rc = LockedWrite(fs.get(), buf, n, off);
  if (rc > 0) {
    of->offset = off + static_cast<uint64_t>(rc);
  }
  return rc;
}

ssize_t SplitFs::LockedWrite(FileState* fs, const void* buf, uint64_t n, uint64_t off) {
  // Writes that stay strictly inside the current file size take only their byte
  // range, so disjoint-offset writers proceed in parallel: sync/POSIX overwrite in
  // place; strict COW-stages the range and appends a per-range op-log entry while
  // registered with the checkpoint epoch gate. Everything else — appends, EOF
  // crossings, and the no-staging ablation — takes the whole file.
  for (;;) {
    bool whole = !opts_.enable_staging;
    if (!whole) {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      whole = off + n > fs->size;
    }
    if (whole) {
      RangeWriteGuard guard(&fs->rlock, 0, RangeLock::kWholeFile);
      if (IsDefunct(fs)) {
        return -EBADF;  // Unlinked while we queued for the lock.
      }
      return WriteAt(fs, buf, n, off);
    }
    if (opts_.mode == Mode::kStrict) {
      // Per-range strict path. Both steps are try-only: a registered writer must
      // never block on a range lock (the gate-drain invariant), and a closed gate
      // means a checkpoint is quiescing. Any failure falls back to the whole-file
      // path, which is always correct — the checkpoint's try-lock sweep then
      // handles us like any other whole-file writer.
      bool entered = TryEnterRangeWrite();
      if (!entered) {
        ChargeEpochGateWait();  // Deflected by a draining checkpoint.
      } else if (!fs->rlock.TryLockExclusive(off, n)) {
        ExitRangeWrite();
        entered = false;
      }
      if (!entered) {
        RangeWriteGuard guard(&fs->rlock, 0, RangeLock::kWholeFile);
        if (IsDefunct(fs)) {
          return -EBADF;
        }
        return WriteAt(fs, buf, n, off);
      }
      bool defunct;
      bool still_inside;
      {
        std::lock_guard<std::mutex> meta(fs->meta_mu);
        defunct = fs->defunct;
        still_inside = off + n <= fs->size;
      }
      if (defunct || !still_inside) {
        fs->rlock.UnlockExclusive(off, n);
        ExitRangeWrite();
        if (defunct) {
          return -EBADF;
        }
        continue;  // Shrunk between classification and lock; re-classify.
      }
      RangeWriteCtx range{off, n};
      ssize_t rc = WriteAt(fs, buf, n, off, &range);
      fs->rlock.UnlockExclusive(off, n);
      ExitRangeWrite();
      if (rc == kRangeWriteRetry) {
        continue;  // Raced a checkpoint/truncate mid-log; replay is idempotent.
      }
      return rc;
    }
    fs->rlock.LockExclusive(off, n);
    bool still_inside;
    bool defunct;
    {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      still_inside = off + n <= fs->size;
      defunct = fs->defunct;
    }
    if (defunct) {
      fs->rlock.UnlockExclusive(off, n);
      return -EBADF;
    }
    if (!still_inside) {
      // The file shrank between classification and lock acquisition (truncate won
      // the race); re-classify with the whole file.
      fs->rlock.UnlockExclusive(off, n);
      continue;
    }
    ssize_t rc = WriteAt(fs, buf, n, off);
    fs->rlock.UnlockExclusive(off, n);
    return rc;
  }
}

ssize_t SplitFs::ReadAt(FileState* fs, void* buf, uint64_t n, uint64_t off) {
  ctx_->ChargeCpu(ctx_->model.usplit_data_op_cpu_ns);
  uint64_t size;
  bool sequential;
  {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    size = fs->size;
    sequential = off == fs->last_read_end && off != 0;
  }
  if (off >= size || n == 0) {
    return 0;
  }
  uint64_t end = std::min(off + n, size);
  auto* dst = static_cast<uint8_t*>(buf);
  uint64_t cur = off;
  pmem::Device* dev = kfs_->device();

  while (cur < end) {
    // 1. Staged data wins: "later reads to the appended region are routed to the
    //    staging block" (Figure 2). Look up under the metadata mutex and copy the
    //    range descriptor out; the bytes themselves are stable — our shared range
    //    lock excludes writers of this range.
    StagedRange covering;
    bool have_covering = false;
    uint64_t next_staged_start = end;
    {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      auto sit = fs->staged.upper_bound(cur);
      if (sit != fs->staged.begin()) {
        auto prev = std::prev(sit);
        if (cur < prev->first + prev->second.alloc.len) {
          covering = prev->second;
          have_covering = true;
        }
      }
      if (!have_covering && sit != fs->staged.end()) {
        next_staged_start = std::min(end, sit->first);
      }
    }
    if (have_covering) {
      uint64_t delta = cur - covering.file_off;
      uint64_t span = std::min(end - cur, covering.alloc.len - delta);
      dev->Load(covering.alloc.dev_off + delta, dst, span, sequential,
                sim::PmReadKind::kUserData);
      sequential = true;
      dst += span;
      cur += span;
      continue;
    }

    // 2. Unstaged segment up to the next staged range: serve from the collection of
    //    mmaps, creating the surrounding region on first touch.
    uint64_t seg_end = next_staged_start;
    auto hit = mmaps_.Translate(fs->ino, cur);
    if (!hit) {
      mmaps_.EnsureRegion(fs->ino, fs->kernel_fd, cur);
      hit = mmaps_.Translate(fs->ino, cur);
    }
    if (hit) {
      uint64_t span = std::min(seg_end - cur, hit->len);
      dev->Load(hit->dev_off, dst, span, sequential, sim::PmReadKind::kUserData);
      sequential = true;
      dst += span;
      cur += span;
      continue;
    }
    // 3. Hole (sparse file): reads as zeroes, one block quantum at a time.
    uint64_t span = std::min(seg_end - cur, kBlockSize - cur % kBlockSize);
    std::memset(dst, 0, span);
    ctx_->ChargeCpu(ctx_->model.user_work_ns);
    dst += span;
    cur += span;
  }
  {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    fs->last_read_end = end;
  }
  return static_cast<ssize_t>(end - off);
}

uint64_t SplitFs::OverwriteStagedOverlap(FileState* fs, const uint8_t* buf, uint64_t n,
                                         uint64_t off) {
  uint64_t store_dev = 0;
  uint64_t span = 0;
  {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    auto sit = fs->staged.upper_bound(off);
    if (sit == fs->staged.begin()) {
      return 0;
    }
    auto prev = std::prev(sit);
    const StagedRange& r = prev->second;
    if (off >= r.file_off + r.alloc.len) {
      return 0;
    }
    uint64_t delta = off - r.file_off;
    span = std::min(n, r.alloc.len - delta);
    store_dev = r.alloc.dev_off + delta;
  }
  // Update the staged bytes in place: they are not yet published, so this stays
  // atomic with the eventual relink. The caller's range lock covers these bytes.
  kfs_->device()->StoreNt(store_dev, buf, span, sim::PmWriteKind::kUserData);
  // The file's next durability point (fsync/close) acknowledges these bytes.
  analysis::AddDep(kfs_->device(), fs->ino, store_dev, span);
  return span;
}

ssize_t SplitFs::OverwriteInPlace(FileState* fs, const uint8_t* buf, uint64_t n,
                                  uint64_t off) {
  pmem::Device* dev = kfs_->device();
  uint64_t cur = off;
  uint64_t end = off + n;
  const uint8_t* src = buf;
  while (cur < end) {
    auto hit = mmaps_.Translate(fs->ino, cur);
    if (!hit) {
      mmaps_.EnsureRegion(fs->ino, fs->kernel_fd, cur);
      hit = mmaps_.Translate(fs->ino, cur);
    }
    if (!hit) {
      // Hole inside the file (sparse): let the kernel allocate and write.
      uint64_t span = std::min(end - cur, kBlockSize - cur % kBlockSize);
      ssize_t rc = kfs_->Pwrite(fs->kernel_fd, src, span, cur);
      if (rc < 0) {
        return rc;
      }
      mmaps_.InvalidateRange(fs->ino, common::AlignDown(cur, opts_.mmap_size),
                             opts_.mmap_size);
      src += span;
      cur += span;
      continue;
    }
    uint64_t span = std::min(end - cur, hit->len);
    dev->StoreNt(hit->dev_off, src, span, sim::PmWriteKind::kUserData);
    src += span;
    cur += span;
  }
  dev->Fence();  // Overwrites are synchronous in every mode (§3.2).
  return static_cast<ssize_t>(n);
}

ssize_t SplitFs::AppendStaged(FileState* fs, const uint8_t* buf, uint64_t n, uint64_t off,
                              bool is_overwrite, const RangeWriteCtx* range) {
  pmem::Device* dev = kfs_->device();

  // Try to extend the most recent staged range: sequential appends stay physically
  // contiguous, which is what lets fsync publish them with a single relink.
  {
    bool extended = false;
    uint64_t store_dev = 0;
    StagingAlloc piece;
    {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      if (!fs->staged.empty()) {
        auto& [start, last] = *std::prev(fs->staged.end());
        if (!last.is_overwrite && !is_overwrite &&
            last.file_off + last.alloc.len == off &&
            staging_->ExtendInPlace(&last.alloc, n)) {
          extended = true;
          store_dev = last.alloc.dev_off + (last.alloc.len - n);
          piece = last.alloc;
          piece.staging_off += piece.len - n;
          piece.dev_off += piece.len - n;
          piece.len = n;
          fs->size = std::max(fs->size, off + n);
        }
      }
    }
    if (extended) {
      dev->StoreNt(store_dev, buf, n, sim::PmWriteKind::kUserData);
      analysis::AddDep(dev, fs->ino, store_dev, n);
      if (opts_.mode == Mode::kStrict) {
        // The op-log entry is the record over these staged bytes; both persist at
        // the entry's single fence (lax cover, sealed inside OpLog::Append).
        analysis::CoverPayload(dev, store_dev, n);
        LogDataOp(LogOp::kAppend, fs, off, piece);
      } else if (opts_.mode == Mode::kSync) {
        dev->Fence();
      }
      return static_cast<ssize_t>(n);
    }
  }

  std::vector<StagingAlloc> allocs;
  if (!staging_->Allocate(n, off % kBlockSize, &allocs)) {
    return -ENOSPC;
  }
  const uint8_t* src = buf;
  uint64_t cur = off;
  for (size_t i = 0; i < allocs.size(); ++i) {
    const StagingAlloc& a = allocs[i];
    dev->StoreNt(a.dev_off, src, a.len, sim::PmWriteKind::kUserData);
    analysis::AddDep(dev, fs->ino, a.dev_off, a.len);
    StagedRange r;
    r.file_off = cur;
    r.alloc = a;
    r.is_overwrite = is_overwrite;
    {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      if (fs->staged.empty()) {
        dirty_files_.fetch_add(1, std::memory_order_release);
      }
      fs->staged[cur] = r;
    }
    if (opts_.mode == Mode::kStrict) {
      analysis::CoverPayload(dev, a.dev_off, a.len);
      if (!LogDataOp(is_overwrite ? LogOp::kOverwrite : LogOp::kAppend, fs, cur, a,
                     range)) {
        // The run was consumed by a whole-file restructuring mid-back-out; its
        // entry never sealed, so the open cover must not leak into the next op.
        analysis::AbandonCover(dev);
        // Per-range moot: a log-full back-out let a whole-file restructuring
        // (checkpoint publish / truncate / unlink) consume this run — its bytes are
        // durable or gone, never re-logged. Not-yet-inserted pieces go back to the
        // pool; the already-inserted ones were released by whoever consumed them.
        bool defunct;
        {
          std::lock_guard<std::mutex> meta(fs->meta_mu);
          defunct = fs->defunct;
        }
        if (staging_) {
          for (size_t j = i + 1; j < allocs.size(); ++j) {
            staging_->Release(allocs[j]);
          }
        }
        return defunct ? -EBADF : kRangeWriteRetry;
      }
    }
    src += a.len;
    cur += a.len;
  }
  if (opts_.mode == Mode::kSync) {
    dev->Fence();  // Sync mode persists the staged bytes synchronously.
  }
  if (range == nullptr) {
    // Per-range writes are size-preserving by construction; skipping the update
    // also keeps a log-full back-out from resurrecting a size a concurrent
    // truncate shrank.
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    fs->size = std::max(fs->size, off + n);
  }
  return static_cast<ssize_t>(n);
}

ssize_t SplitFs::WriteAt(FileState* fs, const void* buf, uint64_t n, uint64_t off,
                         const RangeWriteCtx* range) {
  if (n == 0) {
    return 0;
  }
  const auto* src = static_cast<const uint8_t*>(buf);
  auto size_of = [fs] {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    return fs->size;
  };

  // Ablation configuration (Figure 3 "split" bar): no staging — every write goes to
  // the kernel, appends included.
  if (!opts_.enable_staging) {
    ctx_->ChargeCpu(ctx_->model.usplit_data_op_cpu_ns);
    if (off + n <= fs->kernel_size) {
      return OverwriteInPlace(fs, src, n, off);  // Overwrites still served in user space.
    }
    ssize_t rc = kfs_->Pwrite(fs->kernel_fd, src, n, off);
    if (rc > 0) {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      fs->kernel_size = std::max(fs->kernel_size, off + static_cast<uint64_t>(rc));
      fs->size = std::max(fs->size, fs->kernel_size);
    }
    return rc;
  }

  // Writing past EOF with a gap: rare; delegate to the kernel for correctness.
  if (off > size_of()) {
    int prc = PublishStaged(fs);
    if (prc != 0) {
      return prc;
    }
    ssize_t rc = kfs_->Pwrite(fs->kernel_fd, src, n, off);
    if (rc > 0) {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      fs->kernel_size = std::max(fs->kernel_size, off + static_cast<uint64_t>(rc));
      fs->size = std::max(fs->size, fs->kernel_size);
      fs->metadata_dirty = true;
    }
    return rc;
  }

  uint64_t size = size_of();
  uint64_t overwrite_len = off + n <= size ? n : size - off;
  uint64_t cur = off;
  uint64_t ow_end = off + overwrite_len;

  if (overwrite_len > 0) {
    ctx_->ChargeCpu(ctx_->model.usplit_data_op_cpu_ns);
  }
  bool staged_updated = false;
  while (cur < ow_end) {
    // Bytes already staged (appended or COW-overwritten earlier) are updated in place
    // in the staging file.
    uint64_t staged_span = OverwriteStagedOverlap(fs, src, ow_end - cur, cur);
    if (staged_span > 0) {
      staged_updated = true;
      src += staged_span;
      cur += staged_span;
      continue;
    }
    // Segment until the next staged range.
    uint64_t seg_end = ow_end;
    {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      auto sit = fs->staged.upper_bound(cur);
      if (sit != fs->staged.end()) {
        seg_end = std::min(seg_end, sit->first);
      }
    }
    uint64_t span = seg_end - cur;
    if (opts_.mode == Mode::kStrict) {
      // Strict: copy-on-write via staging + op log; published atomically on fsync.
      ctx_->ChargeCpu(ctx_->model.usplit_append_cpu_ns);
      ssize_t rc = AppendStaged(fs, src, span, cur, /*is_overwrite=*/true, range);
      if (rc < 0) {
        return rc;  // Includes kRangeWriteRetry: propagate to LockedWrite.
      }
    } else {
      ssize_t rc = OverwriteInPlace(fs, src, span, cur);
      if (rc < 0) {
        return rc;
      }
    }
    src += span;
    cur += span;
  }
  if (staged_updated && (opts_.mode == Mode::kStrict || opts_.async_relink)) {
    // The updated staging bytes are already covered by an earlier op-log entry, so no
    // new entry is needed — but strict mode acknowledges only durable data, and these
    // stores would otherwise stay un-fenced until the next publish. Async relink
    // fences here too: a fenced intent may already point at these bytes, and replay
    // must never publish a torn block.
    kfs_->device()->Fence();
  }

  // Append tail.
  if (off + n > size_of()) {
    uint64_t append_off = std::max(off, size_of());
    uint64_t append_len = off + n - append_off;
    ctx_->ChargeCpu(ctx_->model.usplit_append_cpu_ns);
    ssize_t rc = AppendStaged(fs, src, append_len, append_off, /*is_overwrite=*/false);
    if (rc < 0) {
      return rc;
    }
  }
  return static_cast<ssize_t>(n);
}

// --- Publishing staged data (relink) --------------------------------------------------------

int SplitFs::RelinkRun(FileState* fs, uint64_t file_off, const StagedRange& r) {
  // Layout:  [ head partial | aligned core ... | tail partial ]
  // Head/tail partial blocks are copied (the paper's "SplitFS copies the partial
  // data"); the aligned core moves by extent swap with zero data movement.
  //
  // Deadlock-freedom: the caller holds this file's whole-file range lock (a U-Split
  // lock); the relink ioctl below takes the kernel's two inode locks by ascending
  // ino internally and returns with none held. Concurrent publishers relinking out
  // of a shared staging file therefore order the same {staging, target} pairs
  // identically, and no U-Split lock is ever acquired under a K-Split lock.
  uint64_t s = file_off;
  uint64_t e = file_off + r.alloc.len;
  uint64_t st = r.alloc.staging_off;
  pmem::Device* dev = kfs_->device();

  uint64_t head_end = std::min(e, common::AlignUp(s, kBlockSize));
  if (s % kBlockSize != 0) {
    uint64_t head_len = head_end - s;
    SPLITFS_CHECK(head_len <= g_scratch.size());
    dev->Load(r.alloc.dev_off, g_scratch.data(), head_len, /*sequential=*/true,
              sim::PmReadKind::kStaging);
    ssize_t rc = kfs_->Pwrite(fs->kernel_fd, g_scratch.data(), head_len, s);
    if (rc < 0) {
      return static_cast<int>(rc);
    }
    s = head_end;
    st = common::AlignUp(st, kBlockSize);
  }
  if (s >= e) {
    return 0;
  }

  // Appends may relink their final partial block whole (nothing lives past EOF);
  // overwrites must not clobber target bytes beyond the staged range.
  uint64_t core_end = e;
  bool tail_copy = false;
  if (r.is_overwrite && e % kBlockSize != 0 && e < fs->kernel_size) {
    core_end = common::AlignDown(e, kBlockSize);
    tail_copy = true;
  }

  if (core_end > s) {
    uint64_t aligned_len = common::AlignUp(core_end - s, kBlockSize);
    int rc = kfs_->SwapExtentsForRelink(r.alloc.staging_fd, st, fs->kernel_fd, s,
                                        aligned_len, /*new_dst_size=*/e,
                                        /*defer_commit=*/true);
    if (rc != 0) {
      return rc;
    }
    relinks_.fetch_add(1, std::memory_order_relaxed);
    // Retain the memory mapping: the physical blocks didn't move, so the staging
    // region's mapping becomes the target file's mapping at zero cost (Figure 2).
    uint64_t core_dev_off = r.alloc.dev_off + (s - file_off);
    mmaps_.InvalidateRange(fs->ino, s, aligned_len);
    mmaps_.InsertPieces(fs->ino, {{s, core_dev_off, aligned_len}});
    // The tail block moved whole: the pool must not hand out its remainder.
    if (staging_) {
      staging_->MarkRelinked(r.alloc.staging_ino, r.alloc.staging_off + r.alloc.len);
    }
  }

  if (tail_copy) {
    uint64_t tail_len = e - core_end;
    SPLITFS_CHECK(tail_len <= g_scratch.size());
    dev->Load(r.alloc.dev_off + (core_end - file_off), g_scratch.data(), tail_len,
              /*sequential=*/true, sim::PmReadKind::kStaging);
    ssize_t rc = kfs_->Pwrite(fs->kernel_fd, g_scratch.data(), tail_len, core_end);
    if (rc < 0) {
      return static_cast<int>(rc);
    }
  }
  return 0;
}

int SplitFs::CopyStagedRun(FileState* fs, const StagedRange& r) {
  // Figure 3 "+staging without relink" ablation: publish by copying staged bytes into
  // the target through the kernel — the double write the relink primitive eliminates.
  pmem::Device* dev = kfs_->device();
  uint64_t copied = 0;
  std::vector<uint8_t> buf(std::min<uint64_t>(r.alloc.len, 64 * common::kKiB));
  while (copied < r.alloc.len) {
    uint64_t span = std::min<uint64_t>(buf.size(), r.alloc.len - copied);
    dev->Load(r.alloc.dev_off + copied, buf.data(), span, /*sequential=*/true,
              sim::PmReadKind::kStaging);
    ssize_t rc = kfs_->Pwrite(fs->kernel_fd, buf.data(), span, r.file_off + copied);
    if (rc < 0) {
      return static_cast<int>(rc);
    }
    copied += span;
  }
  return 0;
}

int SplitFs::PublishStaged(FileState* fs, bool log_done, bool defer_commit) {
  {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    if (fs->staged.empty()) {
      return 0;
    }
  }
  obs::ScopedSpan span(opts_.tracing ? &ctx_->obs.tracer : nullptr, &ctx_->clock,
                       "publish", "splitfs.publish", "ino", fs->ino);
  analysis::ScopedLintSite lint("splitfs.publish");
  if (opts_.mode != Mode::kStrict || !log_done) {
    // Drain pending non-temporal stores before making the data reachable. A normal
    // strict publish skips this: every staged run it can see is already durable —
    // fenced by its op-log entry, the staged-update fence in WriteAt, or the
    // per-range back-out fence in LogDataOp — so the fence here was always empty
    // (the checker's empty-fence lint found it). Checkpoint publishes
    // (log_done=false) keep it: a whole-file writer that hits a full log enters
    // CheckpointForFull with its own run stored but its entry unappended and
    // unfenced, and the checkpoint publishes that run (the checker's rule (a)
    // caught the skip).
    kfs_->device()->Fence();
  }
  // Each range is erased as it publishes: a mid-publish failure must leave only the
  // unpublished remainder staged, or the retry would relink — and Release — the
  // already-published ranges a second time (double-releasing could retire a staging
  // file other files still reference).
  for (;;) {
    uint64_t file_off;
    StagedRange r;
    {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      auto it = fs->staged.begin();
      if (it == fs->staged.end()) {
        break;
      }
      file_off = it->first;
      r = it->second;
    }
    // Publish hazard (rule (a)): relink makes these staged bytes reachable and
    // the operation will be acknowledged — they must already be durable.
    analysis::RequireDurable(kfs_->device(), r.alloc.dev_off, r.alloc.len,
                             "splitfs.publish");
    int rc = opts_.enable_relink ? RelinkRun(fs, file_off, r) : CopyStagedRun(fs, r);
    if (rc != 0) {
      return rc;
    }
    {
      // kernel_size only changes under the whole-file lock (held here), but fork/exec
      // snapshots read it under meta_mu alone.
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      fs->kernel_size = std::max(fs->kernel_size, file_off + r.alloc.len);
    }
    if (staging_) {
      staging_->Release(r.alloc);  // Published: the pool may retire consumed files.
    }
    // Published bytes leave the fsync contract; the staging pool may hand the
    // device range to another file, whose pending stores must not be charged to
    // this ino's next durability point.
    analysis::DropDeps(kfs_->device(), fs->ino, r.alloc.dev_off, r.alloc.len);
    {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      fs->staged.erase(file_off);
    }
  }
  if (defer_commit) {
    // PublishBatch commits once for the whole batch and finishes the bookkeeping
    // below itself, in the order its header comment requires.
    return 0;
  }
  if (opts_.enable_relink) {
    // One journal commit covers every relink of this publish (jbd2 batches handles).
    // Each deferred relink released its inode locks and journal handle before
    // returning, so this commit — whose seal takes the journal barrier exclusively
    // and waits out in-flight handles — can never deadlock against our own relinks;
    // by the time CommitJournal returns, the sealed tid has fully written out.
    kfs_->CommitJournal(/*fsync_barrier=*/false, tag_.c_str());
  }
  {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    fs->metadata_dirty = false;  // The commit covered the running transaction too.
  }
  dirty_files_.fetch_sub(1, std::memory_order_release);
  if (log_done && opts_.async_relink && oplog_ != nullptr) {
    // Seal the publish: every data entry of this inode at or below this seq is now
    // relinked and committed, so replay skips it. Without the seal, a stale intent
    // could resurrect bytes a later unlogged in-place overwrite replaced. Logged
    // after the dirty-count decrement: a log-full checkpoint spinning for zero can
    // then finish even while this append blocks on the checkpoint mutex.
    LogMetaOp(LogOp::kRelinkDone, fs->ino, 0, fs);
  }
  return 0;
}

// --- Async relink publication ---------------------------------------------------------

int SplitFs::PublishOrIntend(FileState* fs, bool* enqueue) {
  *enqueue = false;
  if (!opts_.async_relink) {
    TakeJournalCredit();  // Sync publish commits the journal on the caller.
    return PublishStaged(fs);
  }
  // The fsync contract covers the file's metadata too: a create/truncate still
  // sitting in the running kernel transaction could roll back at a crash, and
  // intent replay cannot resurrect a file whose creation was lost. Commit it now
  // (non-barrier, once per dirty window); the relinks themselves stay deferred.
  bool metadata_dirty;
  {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    metadata_dirty = fs->metadata_dirty;
  }
  if (metadata_dirty) {
    TakeJournalCredit();
    kfs_->CommitJournal(/*fsync_barrier=*/false, tag_.c_str());
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    fs->metadata_dirty = false;
  }
  int rc = LogRelinkIntents(fs);
  if (rc != 0) {
    return rc;
  }
  bool was_pending;
  {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    was_pending = fs->publish_pending;
    fs->publish_pending = true;
  }
  if (!opts_.publisher_thread) {
    // Deterministic inline mode: the publish really happens here — same store and
    // fence sequence every run, which the crash matrix depends on — but its cost is
    // rewound off the foreground clock, modeling the background publisher.
    sim::ScopedOffClock off(&ctx_->clock);
    rc = PublishStaged(fs);
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    fs->publish_pending = false;
    return rc;
  }
  *enqueue = !was_pending;  // Already queued: the pending publish covers our runs.
  return 0;
}

int SplitFs::LogRelinkIntents(FileState* fs) {
  if (opts_.mode == Mode::kStrict) {
    return 0;  // Every staged run was already logged (and fenced) at write time.
  }
  analysis::ScopedLintSite lint("splitfs.intent");
  // One pass over the staged map collects every uncovered run tail; the whole-file
  // lock (held by the caller) keeps the set stable while the entries are appended
  // below, outside meta_mu.
  struct IntentDelta {
    uint64_t file_off;
    StagingAlloc alloc;
    bool is_overwrite;
  };
  std::vector<IntentDelta> deltas;
  {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    for (auto& [off, r] : fs->staged) {
      if (r.alloc.len > r.intent_len) {
        // Log only the uncovered tail; recovery's run coalescing merges the
        // contiguous intent entries back into one relink.
        StagingAlloc delta = r.alloc;
        delta.staging_off += r.intent_len;
        delta.dev_off += r.intent_len;
        delta.len -= r.intent_len;
        deltas.push_back({off + r.intent_len, delta, r.is_overwrite});
        r.intent_len = r.alloc.len;
      }
    }
  }
  if (deltas.empty()) {
    // Every staged byte is already intent-covered, and was fenced when its intent
    // was first logged (runs only grow, and growth produces a delta) — the old
    // unconditional fence here was empty on this path, the checker's lint found it.
    return 0;
  }
  // The intents claim the staged bytes are recoverable: drain pending non-temporal
  // stores first (POSIX-mode appends stream unfenced; the op log's own fence per
  // appended entry only covers the entry).
  kfs_->device()->Fence();
  for (const IntentDelta& d : deltas) {
    // Rule (b): each intent entry is a publication record over its staged run
    // (sealed lax inside Append — the fence above already persisted the run).
    analysis::CoverPayload(kfs_->device(), d.alloc.dev_off, d.alloc.len);
    LogEntry e;
    e.op = d.is_overwrite ? LogOp::kRelinkIntentOverwrite : LogOp::kRelinkIntent;
    e.target_ino = fs->ino;
    e.file_off = d.file_off;
    e.staging_ino = d.alloc.staging_ino;
    e.staging_off = d.alloc.staging_off;
    e.len = d.alloc.len;
    if (!oplog_->Append(e)) {
      analysis::AbandonCover(kfs_->device());  // Entry never stored; don't leak the cover.
      // Log full. The checkpoint publishes every staged run of this file first (it
      // holds our whole-file lock through `held`), so the remaining intents are
      // moot — and must NOT be retried into the fresh log: an intent for an
      // already-published run is never sealed by a kRelinkDone (later publishes
      // early-return on the empty staged set), and its replay after a crash would
      // resurrect the staged bytes over any later unlogged in-place overwrite.
      CheckpointForFull(fs);
      return 0;
    }
  }
  // Once the intents are fenced the caller's fsync/close may return: rule (a)
  // ack point for the async-relink path.
  analysis::DurabilityPoint(kfs_->device(), fs->ino, "splitfs.intent");
  return 0;
}

void SplitFs::EnqueuePublish(FileRef fs) {
  std::unique_lock<std::mutex> ul(publish_mu_);
  // Backpressure (real time only): staged bytes awaiting publication are bounded, so
  // a lagging publisher cannot exhaust the staging pool. Never called with a file
  // lock held — the publisher takes file locks to drain the queue.
  if (publish_queue_.size() >= kMaxQueuedPublishes && !publisher_stop_) {
    publish_backpressure_.fetch_add(1, std::memory_order_relaxed);
  }
  publish_idle_cv_.wait(ul, [this] {
    return publish_queue_.size() < kMaxQueuedPublishes || publisher_stop_;
  });
  if (publisher_stop_) {
    return;  // Shutdown race: the instance is tearing down; nothing more queues.
  }
  publish_queue_.push_back(std::move(fs));
  publish_cv_.notify_one();
  ul.unlock();
  SchedulePublishPass();  // Pool mode: register a drain pass for the new entry.
}

std::vector<SplitFs::FileRef> SplitFs::PublishBatch(std::vector<FileRef> batch) {
  // Phase 1: lock + relink each file, deferring the journal commit. Locks are held
  // across the shared commit — a file's relinks must not become visible as
  // "published" (pending cleared, dirty count dropped) before they are durable.
  std::vector<FileRef> busy;
  std::vector<FileRef> locked;
  for (FileRef& fs : batch) {
    if (!fs->rlock.TryLockExclusive(0, RangeLock::kWholeFile)) {
      // Contended. A lock holder that is itself blocked (log-full checkpoint
      // waiting on our completion fence) has already published this file — then
      // the pending flag is stale and the entry must NOT requeue, or the fence
      // never drains. A holder still writing leaves staged data: requeue.
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      if (fs->staged.empty()) {
        fs->publish_pending = false;
        async_publishes_.fetch_add(1, std::memory_order_relaxed);
      } else {
        busy.push_back(std::move(fs));
      }
      continue;
    }
    bool skip;
    {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      skip = fs->defunct || fs->staged.empty();
    }
    int rc = 0;
    if (!skip) {
      rc = PublishStaged(fs.get(), /*log_done=*/true, /*defer_commit=*/true);
      if (rc != 0) {
        publish_errors_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (skip || rc != 0) {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      fs->publish_pending = false;
      fs->rlock.UnlockExclusive(0, RangeLock::kWholeFile);
      async_publishes_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    locked.push_back(std::move(fs));
  }
  if (locked.empty()) {
    return busy;
  }
  // Phase 2: ONE commit seals every batched file's relinks — the amortization the
  // batch buys. Safe for the same reason as the per-file commit: every deferred
  // relink dropped its journal handle before returning.
  if (opts_.enable_relink) {
    kfs_->CommitJournal(/*fsync_barrier=*/false, tag_.c_str());
  }
  // Phase 3: all dirty counts drop BEFORE any kRelinkDone append. A done append
  // against a full log recurses into CheckpointForFull, which spins until the
  // dirty count reaches zero — later batch files we still hold locked must
  // already be off it, or that spin never terminates.
  for (FileRef& fs : locked) {
    {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      fs->metadata_dirty = false;  // The shared commit covered the running tx too.
    }
    dirty_files_.fetch_sub(1, std::memory_order_release);
  }
  // Phase 4: seal each file's intents while its lock is still held — no new intent
  // for the ino can be appended before its done record, so a post-crash replay of a
  // fresh log never resurrects these runs.
  for (FileRef& fs : locked) {
    if (opts_.async_relink && oplog_ != nullptr) {
      LogMetaOp(LogOp::kRelinkDone, fs->ino, 0, fs.get());
    }
    {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      fs->publish_pending = false;
    }
    fs->rlock.UnlockExclusive(0, RangeLock::kWholeFile);
    async_publishes_.fetch_add(1, std::memory_order_relaxed);
  }
  return busy;
}

void SplitFs::PublisherLoop() {
  std::unique_lock<std::mutex> ul(publish_mu_);
  for (;;) {
    publish_cv_.wait(ul, [this] {
      return publisher_stop_ || (!publish_queue_.empty() && !publisher_paused_);
    });
    if (publish_queue_.empty()) {
      if (publisher_stop_) {
        return;  // Queue drained; safe to exit.
      }
      continue;
    }
    // publish_batch == 0 sizes the batch from the queue as it stands: a deep queue
    // (burst of fsyncs) drains under one journal commit instead of one per cap.
    const size_t batch_max = opts_.publish_batch > 0
                                 ? opts_.publish_batch
                                 : std::max<size_t>(size_t{1}, publish_queue_.size());
    std::vector<FileRef> batch;
    while (!publish_queue_.empty() && batch.size() < batch_max) {
      batch.push_back(std::move(publish_queue_.front()));
      publish_queue_.pop_front();
    }
    const size_t popped = batch.size();
    publishes_inflight_ += popped;
    publish_idle_cv_.notify_all();  // Backpressure keys off the queue length.
    ul.unlock();
    std::vector<FileRef> busy;
    {
      // Same locking as a synchronous publish: readers of each file see the staged
      // snapshot until the swap, the published one after — never a torn window. The
      // publisher has no clock lane, so the relink and journal-commit charges land
      // on the shared timeline, off every application thread's critical path.
      obs::ScopedSpan span(opts_.tracing ? &ctx_->obs.tracer : nullptr, &ctx_->clock,
                           "publisher", "publisher.drain", "files", popped);
      busy = PublishBatch(std::move(batch));
    }
    ul.lock();
    // Requeue contended files and drop the inflight count in ONE critical section:
    // the completion fence (queue empty && inflight zero) must never observe the
    // gap between them and declare a still-pending publish finished.
    for (FileRef& fs : busy) {
      publish_queue_.push_back(std::move(fs));
    }
    publishes_inflight_ -= popped;
    publish_idle_cv_.notify_all();
    if (!busy.empty() && busy.size() == popped && !publisher_stop_) {
      // Every file was lock-contended; the holders are mid-operation. Back off a
      // beat of real time instead of spinning on their locks.
      publish_cv_.wait_for(ul, std::chrono::microseconds(100));
    }
  }
}

void SplitFs::SchedulePublishPass() {
  if (!UsePublisherPool()) {
    return;
  }
  // Deduplicated against a QUEUED (not running) pass: a running pass may have
  // emptied its view of the queue already, so a fresh enqueue needs a fresh pass.
  services_.publisher_pool->Submit(reinterpret_cast<uint64_t>(this),
                                   [this] { PublishPassOnPool(); },
                                   /*dedup_queued=*/true);
}

void SplitFs::PublishPassOnPool() {
  std::unique_lock<std::mutex> ul(publish_mu_);
  for (;;) {
    if (publish_queue_.empty() || publisher_paused_) {
      return;  // A later enqueue (or unpause) schedules the next pass.
    }
    const size_t batch_max = opts_.publish_batch > 0
                                 ? opts_.publish_batch
                                 : std::max<size_t>(size_t{1}, publish_queue_.size());
    std::vector<FileRef> batch;
    while (!publish_queue_.empty() && batch.size() < batch_max) {
      batch.push_back(std::move(publish_queue_.front()));
      publish_queue_.pop_front();
    }
    const size_t popped = batch.size();
    publishes_inflight_ += popped;
    publish_idle_cv_.notify_all();  // Backpressure keys off the queue length.
    ul.unlock();
    std::vector<FileRef> busy;
    {
      // Pool workers carry no clock lane, exactly like the private publisher
      // thread: relink and commit charges land on the shared timeline, off every
      // application thread's critical path.
      obs::ScopedSpan span(opts_.tracing ? &ctx_->obs.tracer : nullptr, &ctx_->clock,
                           "publisher", "publisher.drain", "files", popped);
      busy = PublishBatch(std::move(batch));
    }
    ul.lock();
    // Requeue + inflight drop in ONE critical section (see PublisherLoop).
    for (FileRef& fs : busy) {
      publish_queue_.push_back(std::move(fs));
    }
    publishes_inflight_ -= popped;
    publish_idle_cv_.notify_all();
    if (!busy.empty() && busy.size() == popped && !publisher_stop_) {
      // Every file was lock-contended; back off a beat of real time on the shared
      // worker rather than spinning on the holders' locks.
      publish_cv_.wait_for(ul, std::chrono::microseconds(100));
    }
  }
}

void SplitFs::DrainQueuedPublishes() {
  std::vector<FileRef> batch;
  {
    std::lock_guard<std::mutex> lg(publish_mu_);
    while (!publish_queue_.empty()) {
      batch.push_back(std::move(publish_queue_.front()));
      publish_queue_.pop_front();
    }
  }
  while (!batch.empty()) {
    batch = PublishBatch(std::move(batch));
  }
  publish_idle_cv_.notify_all();
}

void SplitFs::StopPublisher() {
  if (publisher_.joinable()) {
    {
      std::lock_guard<std::mutex> lg(publish_mu_);
      publisher_stop_ = true;
    }
    publish_cv_.notify_all();
    publish_idle_cv_.notify_all();
    publisher_.join();
    return;
  }
  if (UsePublisherPool()) {
    {
      std::lock_guard<std::mutex> lg(publish_mu_);
      publisher_stop_ = true;       // Unblocks backpressure waiters; stops enqueues.
      publisher_paused_ = false;    // Teardown overrides a test pause.
    }
    publish_cv_.notify_all();
    publish_idle_cv_.notify_all();
    // Fence the shared pool: after Drain no pass of ours is queued or running.
    services_.publisher_pool->Drain(reinterpret_cast<uint64_t>(this));
    // Anything still queued (e.g. enqueued while a pass was paused) publishes on
    // this thread — staged data promised by fsync must reach K-Split.
    DrainQueuedPublishes();
  }
}

void SplitFs::WaitForPublishes() {
  if (!HasAsyncPublisher()) {
    return;
  }
  SchedulePublishPass();  // Pool mode: make sure a pass is armed for queued work.
  std::unique_lock<std::mutex> ul(publish_mu_);
  publish_idle_cv_.wait(ul, [this] {
    return publish_queue_.empty() && publishes_inflight_ == 0;
  });
}

void SplitFs::TakeJournalCredit() {
  if (services_.journal_credits == nullptr) {
    return;
  }
  uint64_t throttled = services_.journal_credits->Take(&ctx_->clock);
  obs::ReportWait(&ctx_->obs, &ctx_->clock, journal_qos_resource_.c_str(), throttled);
}

int SplitFs::Fsync(int fd) {
  OpScope op_scope(this, OpKind::kFsync);
  ctx_->ChargeCpu(ctx_->model.usplit_fsync_cpu_ns);
  FileRef fs = StateOf(fd);
  if (fs == nullptr) {
    return -EBADF;
  }
  bool enqueue = false;
  int rc = 0;
  {
    RangeWriteGuard guard(&fs->rlock, 0, RangeLock::kWholeFile);
    bool staged;
    bool metadata_dirty;
    {
      std::lock_guard<std::mutex> meta(fs->meta_mu);
      // Records the range_lock -> file_meta edge for the witness.
      analysis::ScopedLockNote mn(analysis::LockWitness::Global(), MetaMuSite());
      if (fs->defunct) {
        return -EBADF;
      }
      staged = !fs->staged.empty();
      metadata_dirty = fs->metadata_dirty;
    }
    if (staged) {
      // Relink path: no fsync barrier (Table 6). Async configuration returns once
      // the intent records are fenced; the relinks run on the publisher.
      rc = PublishOrIntend(fs.get(), &enqueue);
      if (rc == 0 && !enqueue) {
        // fsync() return acks durability of all staged data published above;
        // the async path acks at the intent-log fence, not here.
        analysis::DurabilityPoint(kfs_->device(), fs->ino, "splitfs.fsync");
      }
    } else if (metadata_dirty) {
      TakeJournalCredit();
      rc = kfs_->Fsync(fs->kernel_fd, tag_.c_str());
      if (rc == 0) {
        std::lock_guard<std::mutex> meta(fs->meta_mu);
        fs->metadata_dirty = false;
      }
    } else {
      // Nothing staged, nothing dirty: in-place overwrites were already persisted by
      // their non-temporal stores; the trap still happens.
      ctx_->ChargeSyscall();
    }
  }
  if (enqueue) {
    EnqueuePublish(fs);
  }
  return rc;
}

int SplitFs::Ftruncate(int fd, uint64_t size) {
  OpScope op_scope(this, OpKind::kFtruncate);
  ctx_->ChargeCpu(ctx_->model.user_work_ns);
  FileRef fs = StateOf(fd);
  if (fs == nullptr) {
    return -EBADF;
  }
  RangeWriteGuard guard(&fs->rlock, 0, RangeLock::kWholeFile);
  if (IsDefunct(fs.get())) {
    return -EBADF;
  }
  int rc = PublishStaged(fs.get());
  if (rc != 0) {
    return rc;
  }
  rc = kfs_->Ftruncate(fs->kernel_fd, size);
  if (rc != 0) {
    return rc;
  }
  uint64_t old_size;
  {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    old_size = fs->size;
    fs->size = size;
    fs->kernel_size = size;
    fs->metadata_dirty = true;
  }
  if (size < old_size) {
    mmaps_.InvalidateRange(fs->ino, size, old_size - size);
  }
  if (oplog_ != nullptr) {
    // See Open(O_TRUNC): async configurations need the ordering record too.
    LogMetaOp(LogOp::kTruncate, fs->ino, size, fs.get());
  }
  MakeMetadataSynchronous(fs.get());
  return 0;
}

int SplitFs::Fallocate(int fd, uint64_t off, uint64_t len, bool keep_size) {
  OpScope op_scope(this, OpKind::kFallocate, len);
  FileRef fs = StateOf(fd);
  if (fs == nullptr) {
    return -EBADF;
  }
  RangeWriteGuard guard(&fs->rlock, 0, RangeLock::kWholeFile);
  if (IsDefunct(fs.get())) {
    return -EBADF;
  }
  int rc = kfs_->Fallocate(fs->kernel_fd, off, len, keep_size);
  if (rc == 0 && !keep_size) {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    fs->size = std::max(fs->size, off + len);
    fs->kernel_size = std::max(fs->kernel_size, off + len);
    fs->metadata_dirty = true;
  }
  return rc;
}

// --- Op log ---------------------------------------------------------------------------------

bool SplitFs::LogDataOp(LogOp op, FileState* held, uint64_t file_off,
                        const StagingAlloc& a, const RangeWriteCtx* range) {
  if (!oplog_) {
    return true;
  }
  LogEntry e;
  e.op = op;
  e.target_ino = held->ino;
  e.file_off = file_off;
  e.staging_ino = a.staging_ino;
  e.staging_off = a.staging_off;
  e.len = a.len;
  if (range == nullptr) {
    // Whole-file holder: the checkpoint publishes `held` directly and the entry is
    // simply retried into the fresh log.
    while (!oplog_->Append(e)) {
      CheckpointForFull(held);
    }
    return true;
  }
  // Per-range logger. On a full log the range lock and the epoch-gate registration
  // must both drop before the checkpoint runs — it drains the gate and whole-file
  // try-locks the dirty files, ours included. Afterwards the range is reacquired
  // (try-only while registered: the gate-drain invariant) and the append retries
  // only while the staged run is still the same un-published run. A run the
  // checkpoint published is already durable — strict semantics hold without the
  // entry — and MUST NOT be re-logged: the fresh entry would outlive the publish
  // and a post-crash replay could resurrect the staged bytes over later overwrites.
  while (!oplog_->Append(e)) {
    // Persist the run before dropping the lock. The back-out leaves it staged with
    // no appended entry, and once the range lock is free a concurrent fsync/close
    // can publish it — a normal strict publish does not fence (every run it sees
    // is supposed to be durable already), so an unfenced run here would be
    // relinked and acknowledged while still volatile. The persistence checker's
    // rule (a) caught this window racing a whole-file publisher.
    kfs_->device()->Fence();
    held->rlock.UnlockExclusive(range->off, range->len);
    ExitRangeWrite();
    CheckpointForFull(nullptr);
    for (;;) {
      EnterRangeWrite();
      if (held->rlock.TryLockExclusive(range->off, range->len)) {
        break;
      }
      ExitRangeWrite();
      std::this_thread::yield();
    }
    if (!StagedRunStillOurs(held, file_off, a)) {
      return false;  // Lock + gate re-held; the caller unwinds through its normal path.
    }
  }
  return true;
}

bool SplitFs::StagedRunStillOurs(FileState* fs, uint64_t file_off,
                                 const StagingAlloc& a) {
  std::lock_guard<std::mutex> meta(fs->meta_mu);
  if (fs->defunct) {
    return false;
  }
  auto it = fs->staged.upper_bound(file_off);
  if (it == fs->staged.begin()) {
    return false;
  }
  --it;
  const StagedRange& r = it->second;
  if (file_off >= it->first + r.alloc.len) {
    return false;
  }
  // Identity, not just coverage: the run must still be backed by the same staging
  // bytes (a publish + re-stage cycle could cover the offsets with fresh blocks).
  uint64_t delta = file_off - it->first;
  return r.alloc.staging_ino == a.staging_ino &&
         r.alloc.staging_off + delta == a.staging_off && delta + a.len <= r.alloc.len;
}

bool SplitFs::TryEnterRangeWrite() {
  std::lock_guard<std::mutex> el(epoch_mu_);
  analysis::ScopedLockNote gate(analysis::LockWitness::Global(), EpochGateSite());
  if ((range_epoch_ & 1) != 0) {
    return false;  // A checkpoint is draining; the caller takes the whole file.
  }
  ++range_writers_;
  return true;
}

void SplitFs::EnterRangeWrite() {
  bool waited;
  {
    std::unique_lock<std::mutex> el(epoch_mu_);
    analysis::ScopedLockNote gate(analysis::LockWitness::Global(), EpochGateSite());
    waited = (range_epoch_ & 1) != 0;
    epoch_cv_.wait(el, [this] { return (range_epoch_ & 1) == 0; });
    ++range_writers_;
  }
  if (waited) {
    ChargeEpochGateWait();
  }
}

void SplitFs::ExitRangeWrite() {
  std::lock_guard<std::mutex> el(epoch_mu_);
  analysis::ScopedLockNote gate(analysis::LockWitness::Global(), EpochGateSite());
  if (--range_writers_ == 0) {
    epoch_cv_.notify_all();
  }
}

void SplitFs::ChargeEpochGateWait() {
  uint64_t waited = strict_epoch_stamp_.AcquireShared(&ctx_->clock);
  obs::ReportWait(&ctx_->obs, &ctx_->clock, "splitfs.strict_range_log", waited);
}

void SplitFs::LogMetaOp(LogOp op, Ino target, uint64_t aux, FileState* held) {
  if (!oplog_) {
    return;
  }
  LogEntry e;
  e.op = op;
  e.target_ino = target;
  e.file_off = aux;
  while (!oplog_->Append(e)) {
    CheckpointForFull(held);
  }
}

void SplitFs::CheckpointForFull(FileState* held) {
  // Log full (§3.3): relink every file with staged data, then zero and reuse the log.
  //
  // Concurrent protocol: publish the file we hold first (its entries are then dead
  // and it leaves the dirty set), take the single-flight checkpoint mutex, and sweep
  // the remaining dirty files with *try*-lock only — a writer that holds its file and
  // is itself blocked right here has already published it, so spinning until the
  // dirty count reaches zero always terminates and never deadlocks.
  ctx_->ChargeCpu(ctx_->model.usplit_log_checkpoint_cpu_ns);
  obs::ScopedSpan span(opts_.tracing ? &ctx_->obs.tracer : nullptr, &ctx_->clock,
                       "checkpoint", "splitfs.checkpoint");
  uint64_t epoch = oplog_->ResetEpoch();
  if (held != nullptr) {
    // log_done=false: the reset below retires every intent wholesale, and a done
    // append against the still-full log would recurse back into this checkpoint.
    SPLITFS_CHECK_OK(PublishStaged(held, /*log_done=*/false));
  }
  bool fence = false;
  if (publisher_.joinable()) {
    fence = std::this_thread::get_id() != publisher_.get_id();
  } else if (UsePublisherPool()) {
    fence = !services_.publisher_pool->OnWorkerThread();
  }
  if (fence) {
    // Completion fence: queued/batched publishes finish under their single journal
    // commit before the log resets — the try-lock sweep below cannot see a batch
    // that is mid-commit on the publisher (thread or pool pass), and must not reset
    // the log out from under its still-unsealed intents. Publishing `held` first
    // keeps this deadlock-free: any lock holder blocked here has already emptied
    // its own staged set, so the publisher drops (never requeues) its queue entry.
    // The publisher itself skips the fence — it cannot wait for its own drain.
    WaitForPublishes();
  }
  std::lock_guard<std::mutex> cl(checkpoint_mu_);
  analysis::ScopedLockNote cp_note(analysis::LockWitness::Global(), CheckpointSite());
  if (oplog_->ResetEpoch() != epoch) {
    return;  // Another thread already recycled the log; just retry the append.
  }
  auto sweep_and_reset = [this, held] {
    for (;;) {
      // A fresh snapshot every pass: a file that turned dirty since the last one may
      // belong to a writer whose op-log lane still has pre-claimed slots — it can
      // keep appending without ever noticing the log is full, so only the sweep can
      // clean its file.
      for (const FileRef& f : SnapshotFiles()) {
        if (f.get() == held) {
          continue;
        }
        bool dirty;
        {
          std::lock_guard<std::mutex> meta(f->meta_mu);
          analysis::ScopedLockNote mn(analysis::LockWitness::Global(), MetaMuSite());
          dirty = !f->staged.empty();
        }
        if (!dirty) {
          continue;
        }
        if (f->rlock.TryLockExclusive(0, RangeLock::kWholeFile)) {
          SPLITFS_CHECK_OK(PublishStaged(f.get(), /*log_done=*/false));
          f->rlock.UnlockExclusive(0, RangeLock::kWholeFile);
        }
      }
      // The reset must re-verify quiescence under the op log's exclusive lock: an
      // append satisfied from leftover lane slots can slip in between our sweep and
      // the lock acquisition, and zeroing its entry would lose the only record of
      // unpublished staged data.
      if (dirty_files_.load(std::memory_order_acquire) == 0 &&
          oplog_->ResetIfQuiesced(
              [this] { return dirty_files_.load(std::memory_order_acquire) == 0; })) {
        break;
      }
      std::this_thread::yield();  // A writer still holds a dirty file; it will finish
                                  // its operation or publish and line up behind us.
    }
  };
  if (opts_.mode == Mode::kStrict) {
    // Epoch'd quiescence: close the gate so per-range writers drain (they never
    // block on a range lock while registered, so this terminates) and new ones
    // deflect to the whole-file path, where the try-lock sweep handles them like
    // any other whole-file writer. The drain + sweep window is the checkpoint's
    // service time: deflected writers wait behind strict_epoch_stamp_.
    sim::ScopedResourceTime epoch_time(&strict_epoch_stamp_, &ctx_->clock);
    {
      std::unique_lock<std::mutex> el(epoch_mu_);
      analysis::ScopedLockNote gate(analysis::LockWitness::Global(), EpochGateSite());
      ++range_epoch_;  // Odd: closed.
      epoch_cv_.wait(el, [this] { return range_writers_ == 0; });
    }
    sweep_and_reset();
    {
      std::lock_guard<std::mutex> el(epoch_mu_);
      analysis::ScopedLockNote gate(analysis::LockWitness::Global(), EpochGateSite());
      ++range_epoch_;  // Even: open.
      epoch_cv_.notify_all();
    }
  } else {
    sweep_and_reset();
  }
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
}

// --- Recovery -------------------------------------------------------------------------------

int SplitFs::Recover() {
  OpScope op_scope(this, OpKind::kRecover);
  // A crash wiped the process: every piece of DRAM state is rebuilt from scratch.
  // Recovery runs before the instance serves new operations (single-threaded, as a
  // real restart would be). Queued publishes reference pre-crash state — drop them
  // first (the queue may hold entries a paused/backed-up publisher never started),
  // then wait out any publish already in flight.
  {
    std::lock_guard<std::mutex> lg(publish_mu_);
    publish_queue_.clear();
  }
  WaitForPublishes();
  for (FileShard& shard : file_shards_) {
    std::lock_guard<std::shared_mutex> lock(shard.mu);
    for (auto& [ino, fs] : shard.map) {
      if (fs->kernel_fd >= 0) {
        kfs_->Close(fs->kernel_fd);
      }
    }
    shard.map.clear();
  }
  for (PathShard& shard : path_shards_) {
    std::lock_guard<std::shared_mutex> lock(shard.mu);
    shard.map.clear();
  }
  dirty_files_.store(0, std::memory_order_relaxed);
  mmaps_.Clear();

  if (oplog_ == nullptr) {
    // POSIX / sync without async relink: nothing beyond K-Split's own journal
    // recovery (§5.3).
    return 0;
  }

  // Replay every valid log entry on top of ext4 recovery: strict-mode data ops and
  // async-relink intents alike. Replay is idempotent — a relink whose source range
  // is already a hole is skipped.
  //
  // Consecutive appends that extended one staged run produced one entry per
  // operation but share staging blocks; coalesce them back into runs first, or an
  // earlier entry's whole-block relink would turn a later entry's staging range
  // into a hole mid-replay.
  std::vector<LogEntry> entries = oplog_->ScanForRecovery();
  // Truncates are logged after publishing, so every data entry that precedes one is
  // already committed (or legitimately gone). Its core relink would skip on holes,
  // but the partial-block head copy would not — replaying it would resurrect bytes
  // the truncate removed. Drop data entries older than the file's last truncate.
  std::unordered_map<Ino, uint64_t> last_truncate_seq;
  // kRelinkDone seals a publish: every data entry of that inode with a smaller seq
  // was relinked and journal-committed before the crash. Skipping them is what keeps
  // a stale intent from resurrecting bytes a later unlogged in-place overwrite
  // (POSIX/sync) replaced.
  std::unordered_map<Ino, uint64_t> last_done_seq;
  for (const LogEntry& e : entries) {
    if (e.op == LogOp::kTruncate) {
      uint64_t& seq = last_truncate_seq[e.target_ino];
      seq = std::max(seq, e.seq);
    } else if (e.op == LogOp::kRelinkDone) {
      uint64_t& seq = last_done_seq[e.target_ino];
      seq = std::max(seq, e.seq);
    }
  }
  std::vector<LogEntry> runs;
  for (const LogEntry& e : entries) {
    if (e.op != LogOp::kAppend && e.op != LogOp::kOverwrite &&
        e.op != LogOp::kRelinkIntent && e.op != LogOp::kRelinkIntentOverwrite) {
      continue;  // Metadata ops were made durable by the kernel journal.
    }
    auto trunc = last_truncate_seq.find(e.target_ino);
    if (trunc != last_truncate_seq.end() && trunc->second > e.seq) {
      continue;
    }
    auto done = last_done_seq.find(e.target_ino);
    if (done != last_done_seq.end() && done->second > e.seq) {
      continue;
    }
    bool merged = false;
    for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
      if (it->staging_ino == e.staging_ino && it->target_ino == e.target_ino &&
          it->op == e.op && it->staging_off + it->len == e.staging_off &&
          it->file_off + it->len == e.file_off) {
        it->len += e.len;
        merged = true;
        break;
      }
    }
    if (!merged) {
      runs.push_back(e);
    }
  }
  // Replay opens files by ino (log entries carry no paths) and re-issues the relink
  // ioctl, which applies the same ascending-ino two-inode lock order as the live
  // path. OpenByIno also pins the inode: a deferred reclamation racing the replay
  // (a logged target displaced by a committed rename) backs off while we hold the
  // descriptor instead of freeing the file under us.
  for (const LogEntry& e : runs) {
    int src_fd = kfs_->OpenByIno(e.staging_ino, vfs::kRdWr);
    int dst_fd = kfs_->OpenByIno(e.target_ino, vfs::kRdWr);
    if (src_fd < 0 || dst_fd < 0) {
      if (src_fd >= 0) {
        kfs_->Close(src_fd);
      }
      if (dst_fd >= 0) {
        kfs_->Close(dst_fd);
      }
      continue;  // Target unlinked after logging; nothing to do.
    }
    // The checksum authenticated the 64 bytes of the entry, not the world it points
    // at: never trust the recorded offsets/length beyond the staging file's actual
    // bounds (a replay past EOF would relink unallocated blocks into the target).
    // Overflow-safe form — these are exactly the fields an adversarial or
    // bug-produced entry would wrap.
    vfs::StatBuf src_st;
    if (e.len == 0 || kfs_->Fstat(src_fd, &src_st) != 0 || e.len > src_st.size ||
        e.staging_off > src_st.size - e.len || e.file_off + e.len < e.file_off) {
      kfs_->Close(src_fd);
      kfs_->Close(dst_fd);
      continue;
    }
    uint64_t s = e.file_off;
    uint64_t end = e.file_off + e.len;
    uint64_t st = e.staging_off;
    uint64_t src_base = e.staging_off;  // Staging offset of the run's first byte.
    // Head partial block: copy through the kernel.
    uint64_t head_end = std::min(end, common::AlignUp(s, kBlockSize));
    if (s % kBlockSize != 0) {
      uint64_t head_len = head_end - s;
      std::vector<uint8_t> buf(head_len);
      if (kfs_->Pread(src_fd, buf.data(), head_len, st) ==
          static_cast<ssize_t>(head_len)) {
        kfs_->Pwrite(dst_fd, buf.data(), head_len, s);
      }
      s = head_end;
      st = common::AlignUp(st, kBlockSize);
    }
    // Overwrite runs mirror RelinkRun's tail handling: an unaligned tail strictly
    // inside the recovered file is copied, never relinked whole — relinking would
    // clobber the settled bytes that share its block. Appends may move the final
    // partial block whole (nothing lives past EOF).
    bool is_overwrite =
        e.op == LogOp::kOverwrite || e.op == LogOp::kRelinkIntentOverwrite;
    uint64_t core_end = end;
    bool tail_copy = false;
    vfs::StatBuf dst_st;
    if (is_overwrite && end % kBlockSize != 0 && kfs_->Fstat(dst_fd, &dst_st) == 0 &&
        end < dst_st.size) {
      core_end = common::AlignDown(end, kBlockSize);
      tail_copy = true;
    }
    if (s < core_end) {
      uint64_t aligned_len = common::AlignUp(core_end - s, kBlockSize);
      int rc = kfs_->SwapExtentsForRelink(src_fd, st, dst_fd, s, aligned_len,
                                          /*new_dst_size=*/end);
      (void)rc;  // -EINVAL == already relinked before the crash: idempotent skip.
    }
    if (tail_copy && core_end >= s) {
      uint64_t tail_len = end - core_end;
      std::vector<uint8_t> buf(tail_len);
      if (kfs_->Pread(src_fd, buf.data(), tail_len, src_base + (core_end - e.file_off)) ==
          static_cast<ssize_t>(tail_len)) {
        kfs_->Pwrite(dst_fd, buf.data(), tail_len, core_end);
      }
    }
    kfs_->Close(src_fd);
    kfs_->Close(dst_fd);
  }
  oplog_->Reset();

  // Fresh staging files for the new epoch (unrelinked blocks in old staging files are
  // garbage-collected out of band, as a real restart would clean its runtime dir).
  if (opts_.enable_staging) {
    static std::atomic<uint64_t> recover_epoch{0};
    staging_ = std::make_unique<StagingPool>(
        kfs_, &mmaps_, opts_, tag_ + "-r" + std::to_string(recover_epoch.fetch_add(1)),
        services_);
  }
  return 0;
}

// --- fork/exec plumbing ----------------------------------------------------------------------

std::unique_ptr<SplitFs> SplitFs::CloneForFork(const std::string& child_tag) const {
  // fork() copies the address space: the child arrives with U-Split and its caches
  // intact (§3.5). Kernel descriptors are shared across fork, so they carry over.
  auto child = std::make_unique<SplitFs>(kfs_, opts_, child_tag);
  for (FileShard& shard : file_shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [ino, fs] : shard.map) {
      auto copy = std::make_shared<FileState>(&ctx_->clock, &ctx_->obs);
      {
        std::lock_guard<std::mutex> meta(fs->meta_mu);
        copy->ino = fs->ino;
        copy->kernel_fd = fs->kernel_fd;
        copy->path = fs->path;
        copy->size = fs->size;
        copy->kernel_size = fs->kernel_size;
        copy->metadata_dirty = fs->metadata_dirty;
        copy->staged = fs->staged;
        copy->open_count = fs->open_count;
        copy->last_read_end = fs->last_read_end;
      }
      if (!copy->staged.empty()) {
        child->dirty_files_.fetch_add(1, std::memory_order_relaxed);
      }
      child->FileShardOf(ino).map[ino] = copy;
      child->PathShardOf(copy->path).map[copy->path] = ino;
    }
  }
  return child;
}

std::vector<uint8_t> SplitFs::SaveForExec() const {
  // Serialize open-file state to the shm blob (§3.5: file named by pid on /dev/shm).
  // Layout per record: ino, size, kernel_size, path.
  std::vector<uint8_t> blob;
  auto put64 = [&blob](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      blob.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  };
  std::vector<FileRef> files = SnapshotFiles();
  put64(files.size());
  for (const FileRef& fs : files) {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    put64(fs->ino);
    put64(fs->size);
    put64(fs->kernel_size);
    put64(fs->path.size());
    blob.insert(blob.end(), fs->path.begin(), fs->path.end());
  }
  return blob;
}

std::unique_ptr<SplitFs> SplitFs::RestoreAfterExec(ext4sim::Ext4Dax* kfs, Options opts,
                                                   const std::string& instance_tag,
                                                   const std::vector<uint8_t>& blob) {
  auto inst = std::make_unique<SplitFs>(kfs, opts, instance_tag);
  size_t pos = 0;
  auto get64 = [&blob, &pos]() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(blob[pos++]) << (8 * i);
    }
    return v;
  };
  uint64_t count = get64();
  for (uint64_t i = 0; i < count; ++i) {
    Ino ino = get64();
    uint64_t size = get64();
    uint64_t kernel_size = get64();
    uint64_t path_len = get64();
    std::string path(blob.begin() + pos, blob.begin() + pos + path_len);
    pos += path_len;
    int kfd = kfs->OpenByIno(ino, vfs::kRdWr);
    if (kfd < 0) {
      continue;
    }
    auto fs = std::make_shared<FileState>(&kfs->context()->clock, &kfs->context()->obs);
    fs->ino = ino;
    fs->kernel_fd = kfd;
    fs->path = path;
    fs->size = size;
    fs->kernel_size = kernel_size;
    inst->FileShardOf(ino).map[ino] = fs;
    inst->PathShardOf(path).map[path] = ino;
  }
  return inst;
}

// --- Introspection ---------------------------------------------------------------------------

uint64_t SplitFs::StagedBytes() const {
  uint64_t total = 0;
  for (const FileRef& fs : SnapshotFiles()) {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    for (const auto& [off, r] : fs->staged) {
      total += r.alloc.len;
    }
  }
  return total;
}

uint64_t SplitFs::MemoryUsageBytes() const {
  uint64_t total = sizeof(*this) + mmaps_.MemoryUsageBytes();
  if (staging_) {
    total += staging_->MemoryUsageBytes();
  }
  for (const FileRef& fs : SnapshotFiles()) {
    std::lock_guard<std::mutex> meta(fs->meta_mu);
    total += sizeof(*fs) + fs->path.size() +
             fs->staged.size() * (sizeof(StagedRange) + 48);
    total += fs->path.size() + sizeof(Ino) + 48;  // Path-cache entry.
  }
  if (oplog_) {
    total += 64;  // DRAM tail + bookkeeping; the log itself lives on PM.
  }
  return total;
}

}  // namespace splitfs
