#include "src/core/split_fs.h"

#include <algorithm>
#include <cstring>

#include "src/common/bytes.h"

namespace splitfs {

using common::kBlockSize;
using vfs::Ino;

namespace {
// One 4 KB scratch buffer for partial-block staging copies.
thread_local std::vector<uint8_t> g_scratch(common::kBlockSize);
}  // namespace

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kPosix:
      return "POSIX";
    case Mode::kSync:
      return "sync";
    case Mode::kStrict:
      return "strict";
  }
  return "?";
}

SplitFs::SplitFs(ext4sim::Ext4Dax* kfs, Options opts, const std::string& instance_tag)
    : kfs_(kfs),
      ctx_(kfs->context()),
      opts_(opts),
      tag_(instance_tag),
      mmaps_(kfs, opts.mmap_size) {
  kfs_->Mkdir(opts_.runtime_dir);  // Idempotent; EEXIST is fine.
  if (opts_.enable_staging) {
    staging_ = std::make_unique<StagingPool>(kfs_, &mmaps_, opts_, tag_);
  }
  if (opts_.mode == Mode::kStrict) {
    oplog_ = std::make_unique<OpLog>(kfs_, opts_.runtime_dir + "/oplog-" + tag_,
                                     opts_.oplog_bytes);
  }
  // Make the runtime files (staging pool, op log) durable before serving operations:
  // recovery depends on their metadata having committed.
  int fd = kfs_->Open(opts_.runtime_dir + "/.init-" + tag_, vfs::kRdWr | vfs::kCreate);
  SPLITFS_CHECK(fd >= 0);
  SPLITFS_CHECK_OK(kfs_->Fsync(fd));
  SPLITFS_CHECK_OK(kfs_->Close(fd));
}

SplitFs::~SplitFs() {
  for (auto& [ino, fs] : files_) {
    if (fs.kernel_fd >= 0) {
      kfs_->Close(fs.kernel_fd);
    }
  }
}

std::string SplitFs::Name() const { return std::string("SplitFS-") + ModeName(opts_.mode); }

// --- State management --------------------------------------------------------------------

SplitFs::FileState* SplitFs::StateOf(int fd) {
  auto of = fds_.Get(fd);
  if (of == nullptr) {
    return nullptr;
  }
  auto it = files_.find(of->ino);
  return it == files_.end() ? nullptr : &it->second;
}

SplitFs::FileState* SplitFs::EnsureState(const std::string& path, int kernel_fd) {
  Ino ino = kfs_->InoOf(kernel_fd);
  SPLITFS_CHECK(ino != vfs::kInvalidIno);
  auto it = files_.find(ino);
  if (it != files_.end()) {
    return &it->second;
  }
  // First open: stat() the file and cache its attributes (§3.5).
  vfs::StatBuf st;
  SPLITFS_CHECK_OK(kfs_->Fstat(kernel_fd, &st));
  FileState fs;
  fs.ino = ino;
  fs.kernel_fd = kernel_fd;
  fs.path = path;
  fs.size = st.size;
  fs.kernel_size = st.size;
  path_cache_[path] = ino;
  return &files_.emplace(ino, std::move(fs)).first->second;
}

// --- Open / close / metadata ---------------------------------------------------------------

int SplitFs::Open(const std::string& path, int flags) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto cached = path_cache_.find(path);
  bool have_state = cached != path_cache_.end() && files_.count(cached->second) != 0;
  ctx_->ChargeCpu(have_state ? ctx_->model.usplit_reopen_cpu_ns
                             : ctx_->model.usplit_open_cpu_ns);

  if (have_state) {
    // Reopen of a cached file: the kernel open still happens (the trap and path walk),
    // but U-Split reuses its cached attributes and existing kernel descriptor.
    if ((flags & vfs::kCreate) != 0 && (flags & vfs::kExcl) != 0) {
      return -EEXIST;  // The cached file exists; O_CREAT|O_EXCL must fail.
    }
    FileState& fs = files_[cached->second];
    ctx_->ChargeSyscall();
    ctx_->ChargeCpu(ctx_->model.ext4_open_path_ns);
    if ((flags & vfs::kTrunc) != 0) {
      // Publish-then-truncate, mirroring Ftruncate: simply discarding the staged
      // ranges would leave their op-log append entries valid and the staged blocks
      // in place, so strict-mode crash recovery would resurrect the truncated
      // data. Publishing first turns those staging ranges into holes replay skips.
      int rc = PublishStaged(&fs);
      if (rc != 0) {
        return rc;
      }
      rc = kfs_->Ftruncate(fs.kernel_fd, 0);
      if (rc != 0) {
        return rc;
      }
      mmaps_.InvalidateRange(fs.ino, 0, std::max<uint64_t>(fs.size, kBlockSize));
      fs.size = 0;
      fs.kernel_size = 0;
      fs.metadata_dirty = true;
      if (opts_.mode == Mode::kStrict) {
        LogMetaOp(LogOp::kTruncate, fs.ino, 0);
      }
      MakeMetadataSynchronous(&fs);
    }
    ++fs.open_count;
    return fds_.Allocate(fs.ino, flags);
  }

  int kfd = kfs_->Open(path, flags);
  if (kfd < 0) {
    return kfd;
  }
  FileState* fs = EnsureState(path, kfd);
  if ((flags & (vfs::kCreate | vfs::kTrunc)) != 0) {
    fs->metadata_dirty = true;
  }
  if (opts_.mode == Mode::kStrict && (flags & vfs::kCreate) != 0 && fs->size == 0) {
    LogMetaOp(LogOp::kCreate, fs->ino);
  }
  if ((flags & vfs::kCreate) != 0 && fs->size == 0) {
    MakeMetadataSynchronous(fs);
  }
  ++fs->open_count;
  return fds_.Allocate(fs->ino, flags);
}

void SplitFs::MakeMetadataSynchronous(FileState* fs) {
  // Table 3: sync and strict modes guarantee synchronous metadata operations; the
  // kernel journal commits immediately (non-barrier path), like PMFS/NOVA semantics.
  if (opts_.mode == Mode::kPosix) {
    return;
  }
  kfs_->CommitJournal(/*fsync_barrier=*/false);
  if (fs != nullptr) {
    fs->metadata_dirty = false;
  }
}

int SplitFs::Close(int fd) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ctx_->ChargeCpu(ctx_->model.usplit_close_cpu_ns);
  FileState* fs = StateOf(fd);
  if (fs == nullptr) {
    return -EBADF;
  }
  // Appends are published on fsync() *or* close() (§3.4).
  if (!fs->staged.empty()) {
    int rc = PublishStaged(fs);
    if (rc != 0) {
      return rc;
    }
  }
  // The application's close traps into the kernel; U-Split keeps its own descriptor
  // and all cached state alive (cache is only cleared by unlink, §3.5).
  ctx_->ChargeSyscall();
  if (fs->open_count > 0) {
    --fs->open_count;
  }
  return fds_.Release(fd);
}

int SplitFs::Dup(int fd) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ctx_->ChargeCpu(ctx_->model.user_work_ns);
  ctx_->ChargeSyscall();
  return fds_.Dup(fd);  // Shares the open file description: one offset (§3.5).
}

int SplitFs::Unlink(const std::string& path) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ctx_->ChargeCpu(ctx_->model.usplit_unlink_cpu_ns);
  auto cached = path_cache_.find(path);
  if (cached != path_cache_.end()) {
    auto it = files_.find(cached->second);
    if (it != files_.end()) {
      FileState& fs = it->second;
      // Staged-but-unpublished data dies with the file; the pool gets its bytes back
      // and mappings are unmapped here — this is what makes unlink SplitFS's most
      // expensive call (Table 6).
      if (staging_) {
        for (const auto& [off, r] : fs.staged) {
          staging_->Release(r.alloc);
        }
      }
      fs.staged.clear();
      mmaps_.InvalidateFile(fs.ino);
      if (opts_.mode == Mode::kStrict) {
        LogMetaOp(LogOp::kUnlink, fs.ino);
      }
      kfs_->Close(fs.kernel_fd);
      files_.erase(it);
    }
    path_cache_.erase(cached);
  }
  int rc = kfs_->Unlink(path);
  if (rc == 0) {
    MakeMetadataSynchronous(nullptr);
  }
  return rc;
}

int SplitFs::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ctx_->ChargeCpu(2 * ctx_->model.user_work_ns);
  int rc = kfs_->Rename(from, to);
  if (rc != 0) {
    return rc;
  }
  // Rename is the paper's example of a multi-entry logged operation.
  auto cached = path_cache_.find(from);
  bool had_from_state = cached != path_cache_.end();
  if (had_from_state) {
    Ino ino = cached->second;
    path_cache_.erase(cached);
    path_cache_[to] = ino;
    auto it = files_.find(ino);
    if (it != files_.end()) {
      it->second.path = to;
    }
    if (opts_.mode == Mode::kStrict) {
      LogMetaOp(LogOp::kRenameFrom, ino);
      LogMetaOp(LogOp::kRenameTo, ino);
    }
  }
  // The destination, if it existed and was cached, has been replaced.
  auto dst_cached = path_cache_.find(to);
  if (dst_cached != path_cache_.end() && !had_from_state) {
    // `to` still maps to the displaced file's ino; drop the stale state.
    auto it = files_.find(dst_cached->second);
    if (it != files_.end() && it->second.path == to) {
      mmaps_.InvalidateFile(it->second.ino);
      kfs_->Close(it->second.kernel_fd);
      files_.erase(it);
    }
    path_cache_.erase(dst_cached);
  }
  MakeMetadataSynchronous(nullptr);
  return 0;
}

int SplitFs::Mkdir(const std::string& path) {
  int rc = kfs_->Mkdir(path);
  if (rc == 0) {
    MakeMetadataSynchronous(nullptr);
  }
  return rc;
}

int SplitFs::Rmdir(const std::string& path) {
  int rc = kfs_->Rmdir(path);
  if (rc == 0) {
    MakeMetadataSynchronous(nullptr);
  }
  return rc;
}

int SplitFs::ReadDir(const std::string& path, std::vector<std::string>* names) {
  int rc = kfs_->ReadDir(path, names);
  if (rc != 0) {
    return rc;
  }
  // Hide U-Split's own runtime directory from directory listings at the root.
  if (path == "/") {
    std::erase_if(*names, [this](const std::string& n) {
      return "/" + n == opts_.runtime_dir;
    });
  }
  return 0;
}

int SplitFs::Stat(const std::string& path, vfs::StatBuf* out) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  int rc = kfs_->Stat(path, out);
  if (rc != 0) {
    return rc;
  }
  // Overlay the cached size: the caller sees its own staged appends.
  auto cached = path_cache_.find(path);
  if (cached != path_cache_.end()) {
    auto it = files_.find(cached->second);
    if (it != files_.end()) {
      out->size = it->second.size;
    }
  }
  return 0;
}

int SplitFs::Fstat(int fd, vfs::StatBuf* out) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ctx_->ChargeCpu(ctx_->model.user_work_ns);  // Served from the attribute cache.
  FileState* fs = StateOf(fd);
  if (fs == nullptr) {
    return -EBADF;
  }
  out->ino = fs->ino;
  out->size = fs->size;
  out->blocks = common::DivCeil(fs->size, kBlockSize);
  out->nlink = 1;
  out->type = vfs::FileType::kRegular;
  return 0;
}

int64_t SplitFs::Lseek(int fd, int64_t off, vfs::Whence whence) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ctx_->ChargeCpu(ctx_->model.user_work_ns);  // Pure user space: no trap.
  auto of = fds_.Get(fd);
  FileState* fs = StateOf(fd);
  if (of == nullptr || fs == nullptr) {
    return -EBADF;
  }
  std::lock_guard<std::mutex> flock(of->mu);
  int64_t base = 0;
  switch (whence) {
    case vfs::Whence::kSet:
      base = 0;
      break;
    case vfs::Whence::kCur:
      base = static_cast<int64_t>(of->offset);
      break;
    case vfs::Whence::kEnd:
      base = static_cast<int64_t>(fs->size);
      break;
  }
  int64_t target = base + off;
  if (target < 0) {
    return -EINVAL;
  }
  of->offset = static_cast<uint64_t>(target);
  return target;
}

// --- Data path ----------------------------------------------------------------------------

ssize_t SplitFs::Pread(int fd, void* buf, uint64_t n, uint64_t off) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FileState* fs = StateOf(fd);
  if (fs == nullptr) {
    return -EBADF;
  }
  auto of = fds_.Get(fd);
  if (!vfs::WantsRead(of->flags)) {
    return -EBADF;
  }
  return ReadAt(fs, buf, n, off);
}

ssize_t SplitFs::Pwrite(int fd, const void* buf, uint64_t n, uint64_t off) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FileState* fs = StateOf(fd);
  if (fs == nullptr) {
    return -EBADF;
  }
  auto of = fds_.Get(fd);
  if (!vfs::WantsWrite(of->flags)) {
    return -EBADF;
  }
  return WriteAt(fs, buf, n, off);
}

ssize_t SplitFs::Read(int fd, void* buf, uint64_t n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FileState* fs = StateOf(fd);
  auto of = fds_.Get(fd);
  if (fs == nullptr || of == nullptr || !vfs::WantsRead(of->flags)) {
    return -EBADF;
  }
  std::lock_guard<std::mutex> flock(of->mu);
  ssize_t rc = ReadAt(fs, buf, n, of->offset);
  if (rc > 0) {
    of->offset += static_cast<uint64_t>(rc);
  }
  return rc;
}

ssize_t SplitFs::Write(int fd, const void* buf, uint64_t n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FileState* fs = StateOf(fd);
  auto of = fds_.Get(fd);
  if (fs == nullptr || of == nullptr || !vfs::WantsWrite(of->flags)) {
    return -EBADF;
  }
  std::lock_guard<std::mutex> flock(of->mu);
  uint64_t off = (of->flags & vfs::kAppend) != 0 ? fs->size : of->offset;
  ssize_t rc = WriteAt(fs, buf, n, off);
  if (rc > 0) {
    of->offset = off + static_cast<uint64_t>(rc);
  }
  return rc;
}

ssize_t SplitFs::ReadAt(FileState* fs, void* buf, uint64_t n, uint64_t off) {
  ctx_->ChargeCpu(ctx_->model.usplit_data_op_cpu_ns);
  if (off >= fs->size || n == 0) {
    return 0;
  }
  uint64_t end = std::min(off + n, fs->size);
  auto* dst = static_cast<uint8_t*>(buf);
  uint64_t cur = off;
  pmem::Device* dev = kfs_->device();
  bool sequential = off == fs->last_read_end && off != 0;

  while (cur < end) {
    // 1. Staged data wins: "later reads to the appended region are routed to the
    //    staging block" (Figure 2).
    auto sit = fs->staged.upper_bound(cur);
    const StagedRange* covering = nullptr;
    uint64_t next_staged_start = end;
    if (sit != fs->staged.begin()) {
      auto prev = std::prev(sit);
      if (cur < prev->first + prev->second.alloc.len) {
        covering = &prev->second;
      }
    }
    if (covering == nullptr && sit != fs->staged.end()) {
      next_staged_start = std::min(end, sit->first);
    }
    if (covering != nullptr) {
      uint64_t delta = cur - covering->file_off;
      uint64_t span = std::min(end - cur, covering->alloc.len - delta);
      dev->Load(covering->alloc.dev_off + delta, dst, span, sequential, /*user_data=*/true);
      sequential = true;
      dst += span;
      cur += span;
      continue;
    }

    // 2. Unstaged segment up to the next staged range: serve from the collection of
    //    mmaps, creating the surrounding region on first touch.
    uint64_t seg_end = next_staged_start;
    auto hit = mmaps_.Translate(fs->ino, cur);
    if (!hit) {
      mmaps_.EnsureRegion(fs->ino, fs->kernel_fd, cur);
      hit = mmaps_.Translate(fs->ino, cur);
    }
    if (hit) {
      uint64_t span = std::min(seg_end - cur, hit->len);
      dev->Load(hit->dev_off, dst, span, sequential, /*user_data=*/true);
      sequential = true;
      dst += span;
      cur += span;
      continue;
    }
    // 3. Hole (sparse file): reads as zeroes, one block quantum at a time.
    uint64_t span = std::min(seg_end - cur, kBlockSize - cur % kBlockSize);
    std::memset(dst, 0, span);
    ctx_->ChargeCpu(ctx_->model.user_work_ns);
    dst += span;
    cur += span;
  }
  fs->last_read_end = end;
  return static_cast<ssize_t>(end - off);
}

uint64_t SplitFs::OverwriteStagedOverlap(FileState* fs, const uint8_t* buf, uint64_t n,
                                         uint64_t off) {
  auto sit = fs->staged.upper_bound(off);
  if (sit == fs->staged.begin()) {
    return 0;
  }
  auto prev = std::prev(sit);
  StagedRange& r = prev->second;
  if (off >= r.file_off + r.alloc.len) {
    return 0;
  }
  // Update the staged bytes in place: they are not yet published, so this stays
  // atomic with the eventual relink.
  uint64_t delta = off - r.file_off;
  uint64_t span = std::min(n, r.alloc.len - delta);
  kfs_->device()->StoreNt(r.alloc.dev_off + delta, buf, span, sim::PmWriteKind::kUserData);
  return span;
}

ssize_t SplitFs::OverwriteInPlace(FileState* fs, const uint8_t* buf, uint64_t n,
                                  uint64_t off) {
  pmem::Device* dev = kfs_->device();
  uint64_t cur = off;
  uint64_t end = off + n;
  const uint8_t* src = buf;
  while (cur < end) {
    auto hit = mmaps_.Translate(fs->ino, cur);
    if (!hit) {
      mmaps_.EnsureRegion(fs->ino, fs->kernel_fd, cur);
      hit = mmaps_.Translate(fs->ino, cur);
    }
    if (!hit) {
      // Hole inside the file (sparse): let the kernel allocate and write.
      uint64_t span = std::min(end - cur, kBlockSize - cur % kBlockSize);
      ssize_t rc = kfs_->Pwrite(fs->kernel_fd, src, span, cur);
      if (rc < 0) {
        return rc;
      }
      mmaps_.InvalidateRange(fs->ino, common::AlignDown(cur, opts_.mmap_size),
                             opts_.mmap_size);
      src += span;
      cur += span;
      continue;
    }
    uint64_t span = std::min(end - cur, hit->len);
    dev->StoreNt(hit->dev_off, src, span, sim::PmWriteKind::kUserData);
    src += span;
    cur += span;
  }
  dev->Fence();  // Overwrites are synchronous in every mode (§3.2).
  return static_cast<ssize_t>(n);
}

ssize_t SplitFs::AppendStaged(FileState* fs, const uint8_t* buf, uint64_t n, uint64_t off,
                              bool is_overwrite) {
  pmem::Device* dev = kfs_->device();

  // Try to extend the most recent staged range: sequential appends stay physically
  // contiguous, which is what lets fsync publish them with a single relink.
  if (!fs->staged.empty()) {
    auto& [start, last] = *std::prev(fs->staged.end());
    if (!last.is_overwrite && !is_overwrite &&
        last.file_off + last.alloc.len == off &&
        staging_->ExtendInPlace(&last.alloc, n)) {
      dev->StoreNt(last.alloc.dev_off + (last.alloc.len - n), buf, n,
                   sim::PmWriteKind::kUserData);
      if (opts_.mode == Mode::kStrict) {
        StagingAlloc piece = last.alloc;
        piece.staging_off += piece.len - n;
        piece.dev_off += piece.len - n;
        piece.len = n;
        LogDataOp(LogOp::kAppend, fs->ino, off, piece);
      } else if (opts_.mode == Mode::kSync) {
        dev->Fence();
      }
      fs->size = std::max(fs->size, off + n);
      return static_cast<ssize_t>(n);
    }
  }

  std::vector<StagingAlloc> allocs;
  if (!staging_->Allocate(n, off % kBlockSize, &allocs)) {
    return -ENOSPC;
  }
  const uint8_t* src = buf;
  uint64_t cur = off;
  for (const auto& a : allocs) {
    dev->StoreNt(a.dev_off, src, a.len, sim::PmWriteKind::kUserData);
    StagedRange r;
    r.file_off = cur;
    r.alloc = a;
    r.is_overwrite = is_overwrite;
    fs->staged[cur] = r;
    if (opts_.mode == Mode::kStrict) {
      LogDataOp(is_overwrite ? LogOp::kOverwrite : LogOp::kAppend, fs->ino, cur, a);
    }
    src += a.len;
    cur += a.len;
  }
  if (opts_.mode == Mode::kSync) {
    dev->Fence();  // Sync mode persists the staged bytes synchronously.
  }
  fs->size = std::max(fs->size, off + n);
  return static_cast<ssize_t>(n);
}

ssize_t SplitFs::WriteAt(FileState* fs, const void* buf, uint64_t n, uint64_t off) {
  if (n == 0) {
    return 0;
  }
  const auto* src = static_cast<const uint8_t*>(buf);

  // Ablation configuration (Figure 3 "split" bar): no staging — every write goes to
  // the kernel, appends included.
  if (!opts_.enable_staging) {
    ctx_->ChargeCpu(ctx_->model.usplit_data_op_cpu_ns);
    if (off + n <= fs->kernel_size) {
      return OverwriteInPlace(fs, src, n, off);  // Overwrites still served in user space.
    }
    ssize_t rc = kfs_->Pwrite(fs->kernel_fd, src, n, off);
    if (rc > 0) {
      fs->kernel_size = std::max(fs->kernel_size, off + static_cast<uint64_t>(rc));
      fs->size = std::max(fs->size, fs->kernel_size);
    }
    return rc;
  }

  // Writing past EOF with a gap: rare; delegate to the kernel for correctness.
  if (off > fs->size) {
    int prc = PublishStaged(fs);
    if (prc != 0) {
      return prc;
    }
    ssize_t rc = kfs_->Pwrite(fs->kernel_fd, src, n, off);
    if (rc > 0) {
      fs->kernel_size = std::max(fs->kernel_size, off + static_cast<uint64_t>(rc));
      fs->size = std::max(fs->size, fs->kernel_size);
      fs->metadata_dirty = true;
    }
    return rc;
  }

  uint64_t overwrite_len = off + n <= fs->size ? n : fs->size - off;
  uint64_t cur = off;
  uint64_t ow_end = off + overwrite_len;

  if (overwrite_len > 0) {
    ctx_->ChargeCpu(ctx_->model.usplit_data_op_cpu_ns);
  }
  bool staged_updated = false;
  while (cur < ow_end) {
    // Bytes already staged (appended or COW-overwritten earlier) are updated in place
    // in the staging file.
    uint64_t staged_span = OverwriteStagedOverlap(fs, src, ow_end - cur, cur);
    if (staged_span > 0) {
      staged_updated = true;
      src += staged_span;
      cur += staged_span;
      continue;
    }
    // Segment until the next staged range.
    uint64_t seg_end = ow_end;
    auto sit = fs->staged.upper_bound(cur);
    if (sit != fs->staged.end()) {
      seg_end = std::min(seg_end, sit->first);
    }
    uint64_t span = seg_end - cur;
    if (opts_.mode == Mode::kStrict) {
      // Strict: copy-on-write via staging + op log; published atomically on fsync.
      ctx_->ChargeCpu(ctx_->model.usplit_append_cpu_ns);
      ssize_t rc = AppendStaged(fs, src, span, cur, /*is_overwrite=*/true);
      if (rc < 0) {
        return rc;
      }
    } else {
      ssize_t rc = OverwriteInPlace(fs, src, span, cur);
      if (rc < 0) {
        return rc;
      }
    }
    src += span;
    cur += span;
  }
  if (staged_updated && opts_.mode == Mode::kStrict) {
    // The updated staging bytes are already covered by an earlier op-log entry, so no
    // new entry is needed — but strict mode acknowledges only durable data, and these
    // stores would otherwise stay un-fenced until the next publish.
    kfs_->device()->Fence();
  }

  // Append tail.
  if (off + n > fs->size) {
    uint64_t append_off = std::max(off, fs->size);
    uint64_t append_len = off + n - append_off;
    ctx_->ChargeCpu(ctx_->model.usplit_append_cpu_ns);
    ssize_t rc = AppendStaged(fs, src, append_len, append_off, /*is_overwrite=*/false);
    if (rc < 0) {
      return rc;
    }
  }
  return static_cast<ssize_t>(n);
}

// --- Publishing staged data (relink) --------------------------------------------------------

int SplitFs::RelinkRun(FileState* fs, uint64_t file_off, const StagedRange& r) {
  // Layout:  [ head partial | aligned core ... | tail partial ]
  // Head/tail partial blocks are copied (the paper's "SplitFS copies the partial
  // data"); the aligned core moves by extent swap with zero data movement.
  uint64_t s = file_off;
  uint64_t e = file_off + r.alloc.len;
  uint64_t st = r.alloc.staging_off;
  pmem::Device* dev = kfs_->device();

  uint64_t head_end = std::min(e, common::AlignUp(s, kBlockSize));
  if (s % kBlockSize != 0) {
    uint64_t head_len = head_end - s;
    SPLITFS_CHECK(head_len <= g_scratch.size());
    dev->Load(r.alloc.dev_off, g_scratch.data(), head_len, /*sequential=*/true,
              /*user_data=*/false);
    ssize_t rc = kfs_->Pwrite(fs->kernel_fd, g_scratch.data(), head_len, s);
    if (rc < 0) {
      return static_cast<int>(rc);
    }
    s = head_end;
    st = common::AlignUp(st, kBlockSize);
  }
  if (s >= e) {
    return 0;
  }

  // Appends may relink their final partial block whole (nothing lives past EOF);
  // overwrites must not clobber target bytes beyond the staged range.
  uint64_t core_end = e;
  bool tail_copy = false;
  if (r.is_overwrite && e % kBlockSize != 0 && e < fs->kernel_size) {
    core_end = common::AlignDown(e, kBlockSize);
    tail_copy = true;
  }

  if (core_end > s) {
    uint64_t aligned_len = common::AlignUp(core_end - s, kBlockSize);
    int rc = kfs_->SwapExtentsForRelink(r.alloc.staging_fd, st, fs->kernel_fd, s,
                                        aligned_len, /*new_dst_size=*/e,
                                        /*defer_commit=*/true);
    if (rc != 0) {
      return rc;
    }
    ++relinks_;
    // Retain the memory mapping: the physical blocks didn't move, so the staging
    // region's mapping becomes the target file's mapping at zero cost (Figure 2).
    uint64_t core_dev_off = r.alloc.dev_off + (s - file_off);
    mmaps_.InvalidateRange(fs->ino, s, aligned_len);
    mmaps_.InsertPieces(fs->ino, {{s, core_dev_off, aligned_len}});
    // The tail block moved whole: the pool must not hand out its remainder.
    if (staging_) {
      staging_->MarkRelinked(r.alloc.staging_ino, r.alloc.staging_off + r.alloc.len);
    }
  }

  if (tail_copy) {
    uint64_t tail_len = e - core_end;
    SPLITFS_CHECK(tail_len <= g_scratch.size());
    dev->Load(r.alloc.dev_off + (core_end - file_off), g_scratch.data(), tail_len,
              /*sequential=*/true, /*user_data=*/false);
    ssize_t rc = kfs_->Pwrite(fs->kernel_fd, g_scratch.data(), tail_len, core_end);
    if (rc < 0) {
      return static_cast<int>(rc);
    }
  }
  return 0;
}

int SplitFs::CopyStagedRun(FileState* fs, const StagedRange& r) {
  // Figure 3 "+staging without relink" ablation: publish by copying staged bytes into
  // the target through the kernel — the double write the relink primitive eliminates.
  pmem::Device* dev = kfs_->device();
  uint64_t copied = 0;
  std::vector<uint8_t> buf(std::min<uint64_t>(r.alloc.len, 64 * common::kKiB));
  while (copied < r.alloc.len) {
    uint64_t span = std::min<uint64_t>(buf.size(), r.alloc.len - copied);
    dev->Load(r.alloc.dev_off + copied, buf.data(), span, /*sequential=*/true,
              /*user_data=*/false);
    ssize_t rc = kfs_->Pwrite(fs->kernel_fd, buf.data(), span, r.file_off + copied);
    if (rc < 0) {
      return static_cast<int>(rc);
    }
    copied += span;
  }
  return 0;
}

int SplitFs::PublishStaged(FileState* fs) {
  if (fs->staged.empty()) {
    return 0;
  }
  // Drain pending non-temporal stores before making the data reachable.
  kfs_->device()->Fence();
  // Each range is erased as it publishes: a mid-publish failure must leave only the
  // unpublished remainder staged, or the retry would relink — and Release — the
  // already-published ranges a second time (double-releasing could retire a staging
  // file other files still reference).
  for (auto it = fs->staged.begin(); it != fs->staged.end();) {
    const auto& [file_off, r] = *it;
    int rc = opts_.enable_relink ? RelinkRun(fs, file_off, r) : CopyStagedRun(fs, r);
    if (rc != 0) {
      return rc;
    }
    fs->kernel_size = std::max(fs->kernel_size, file_off + r.alloc.len);
    if (staging_) {
      staging_->Release(r.alloc);  // Published: the pool may retire consumed files.
    }
    it = fs->staged.erase(it);
  }
  if (opts_.enable_relink) {
    // One journal commit covers every relink of this publish (jbd2 batches handles).
    kfs_->CommitJournal(/*fsync_barrier=*/false);
  }
  fs->metadata_dirty = false;  // The commit covered the running transaction too.
  return 0;
}

int SplitFs::Fsync(int fd) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ctx_->ChargeCpu(ctx_->model.usplit_fsync_cpu_ns);
  FileState* fs = StateOf(fd);
  if (fs == nullptr) {
    return -EBADF;
  }
  if (!fs->staged.empty()) {
    return PublishStaged(fs);  // Relink path: no fsync barrier (Table 6).
  }
  if (fs->metadata_dirty) {
    int rc = kfs_->Fsync(fs->kernel_fd);
    if (rc == 0) {
      fs->metadata_dirty = false;
    }
    return rc;
  }
  // Nothing staged, nothing dirty: in-place overwrites were already persisted by
  // their non-temporal stores; the trap still happens.
  ctx_->ChargeSyscall();
  return 0;
}

int SplitFs::Ftruncate(int fd, uint64_t size) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ctx_->ChargeCpu(ctx_->model.user_work_ns);
  FileState* fs = StateOf(fd);
  if (fs == nullptr) {
    return -EBADF;
  }
  int rc = PublishStaged(fs);
  if (rc != 0) {
    return rc;
  }
  rc = kfs_->Ftruncate(fs->kernel_fd, size);
  if (rc != 0) {
    return rc;
  }
  if (size < fs->size) {
    mmaps_.InvalidateRange(fs->ino, size, fs->size - size);
  }
  fs->size = size;
  fs->kernel_size = size;
  fs->metadata_dirty = true;
  if (opts_.mode == Mode::kStrict) {
    LogMetaOp(LogOp::kTruncate, fs->ino, size);
  }
  MakeMetadataSynchronous(fs);
  return 0;
}

int SplitFs::Fallocate(int fd, uint64_t off, uint64_t len, bool keep_size) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FileState* fs = StateOf(fd);
  if (fs == nullptr) {
    return -EBADF;
  }
  int rc = kfs_->Fallocate(fs->kernel_fd, off, len, keep_size);
  if (rc == 0 && !keep_size) {
    fs->size = std::max(fs->size, off + len);
    fs->kernel_size = std::max(fs->kernel_size, off + len);
    fs->metadata_dirty = true;
  }
  return rc;
}

// --- Op log ---------------------------------------------------------------------------------

void SplitFs::LogDataOp(LogOp op, Ino target, uint64_t file_off, const StagingAlloc& a) {
  if (!oplog_) {
    return;
  }
  LogEntry e;
  e.op = op;
  e.target_ino = target;
  e.file_off = file_off;
  e.staging_ino = a.staging_ino;
  e.staging_off = a.staging_off;
  e.len = a.len;
  while (!oplog_->Append(e)) {
    CheckpointOpLog();
  }
}

void SplitFs::LogMetaOp(LogOp op, Ino target, uint64_t aux) {
  if (!oplog_) {
    return;
  }
  LogEntry e;
  e.op = op;
  e.target_ino = target;
  e.file_off = aux;
  while (!oplog_->Append(e)) {
    CheckpointOpLog();
  }
}

void SplitFs::CheckpointOpLog() {
  // Log full (§3.3): relink every file with staged data, then zero and reuse the log.
  ctx_->ChargeCpu(ctx_->model.usplit_log_checkpoint_cpu_ns);
  for (auto& [ino, fs] : files_) {
    SPLITFS_CHECK_OK(PublishStaged(&fs));
  }
  oplog_->Reset();
  ++checkpoints_;
}

// --- Recovery -------------------------------------------------------------------------------

int SplitFs::Recover() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // A crash wiped the process: every piece of DRAM state is rebuilt from scratch.
  for (auto& [ino, fs] : files_) {
    if (fs.kernel_fd >= 0) {
      kfs_->Close(fs.kernel_fd);
    }
  }
  files_.clear();
  path_cache_.clear();
  mmaps_.Clear();

  if (oplog_ == nullptr) {
    // POSIX / sync: nothing beyond K-Split's own journal recovery (§5.3).
    return 0;
  }

  // Strict: replay every valid log entry on top of ext4 recovery. Replay is
  // idempotent — a relink whose source range is already a hole is skipped.
  //
  // Consecutive appends that extended one staged run produced one entry per
  // operation but share staging blocks; coalesce them back into runs first, or an
  // earlier entry's whole-block relink would turn a later entry's staging range
  // into a hole mid-replay.
  std::vector<LogEntry> entries = oplog_->ScanForRecovery();
  // Truncates are logged after publishing, so every data entry that precedes one is
  // already committed (or legitimately gone). Its core relink would skip on holes,
  // but the partial-block head copy would not — replaying it would resurrect bytes
  // the truncate removed. Drop data entries older than the file's last truncate.
  std::unordered_map<Ino, uint64_t> last_truncate_seq;
  for (const LogEntry& e : entries) {
    if (e.op == LogOp::kTruncate) {
      uint64_t& seq = last_truncate_seq[e.target_ino];
      seq = std::max(seq, e.seq);
    }
  }
  std::vector<LogEntry> runs;
  for (const LogEntry& e : entries) {
    if (e.op != LogOp::kAppend && e.op != LogOp::kOverwrite) {
      continue;  // Metadata ops were made durable by the kernel journal.
    }
    auto trunc = last_truncate_seq.find(e.target_ino);
    if (trunc != last_truncate_seq.end() && trunc->second > e.seq) {
      continue;
    }
    bool merged = false;
    for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
      if (it->staging_ino == e.staging_ino && it->target_ino == e.target_ino &&
          it->op == e.op && it->staging_off + it->len == e.staging_off &&
          it->file_off + it->len == e.file_off) {
        it->len += e.len;
        merged = true;
        break;
      }
    }
    if (!merged) {
      runs.push_back(e);
    }
  }
  for (const LogEntry& e : runs) {
    int src_fd = kfs_->OpenByIno(e.staging_ino, vfs::kRdWr);
    int dst_fd = kfs_->OpenByIno(e.target_ino, vfs::kRdWr);
    if (src_fd < 0 || dst_fd < 0) {
      if (src_fd >= 0) {
        kfs_->Close(src_fd);
      }
      if (dst_fd >= 0) {
        kfs_->Close(dst_fd);
      }
      continue;  // Target unlinked after logging; nothing to do.
    }
    // The checksum authenticated the 64 bytes of the entry, not the world it points
    // at: never trust the recorded offsets/length beyond the staging file's actual
    // bounds (a replay past EOF would relink unallocated blocks into the target).
    // Overflow-safe form — these are exactly the fields an adversarial or
    // bug-produced entry would wrap.
    vfs::StatBuf src_st;
    if (e.len == 0 || kfs_->Fstat(src_fd, &src_st) != 0 || e.len > src_st.size ||
        e.staging_off > src_st.size - e.len || e.file_off + e.len < e.file_off) {
      kfs_->Close(src_fd);
      kfs_->Close(dst_fd);
      continue;
    }
    uint64_t s = e.file_off;
    uint64_t end = e.file_off + e.len;
    uint64_t st = e.staging_off;
    // Head partial block: copy through the kernel.
    uint64_t head_end = std::min(end, common::AlignUp(s, kBlockSize));
    if (s % kBlockSize != 0) {
      uint64_t head_len = head_end - s;
      std::vector<uint8_t> buf(head_len);
      if (kfs_->Pread(src_fd, buf.data(), head_len, st) ==
          static_cast<ssize_t>(head_len)) {
        kfs_->Pwrite(dst_fd, buf.data(), head_len, s);
      }
      s = head_end;
      st = common::AlignUp(st, kBlockSize);
    }
    if (s < end) {
      uint64_t aligned_len = common::AlignUp(end - s, kBlockSize);
      int rc = kfs_->SwapExtentsForRelink(src_fd, st, dst_fd, s, aligned_len,
                                          /*new_dst_size=*/end);
      (void)rc;  // -EINVAL == already relinked before the crash: idempotent skip.
    }
    kfs_->Close(src_fd);
    kfs_->Close(dst_fd);
  }
  oplog_->Reset();

  // Fresh staging files for the new epoch (unrelinked blocks in old staging files are
  // garbage-collected out of band, as a real restart would clean its runtime dir).
  if (opts_.enable_staging) {
    static std::atomic<uint64_t> recover_epoch{0};
    staging_ = std::make_unique<StagingPool>(
        kfs_, &mmaps_, opts_, tag_ + "-r" + std::to_string(recover_epoch.fetch_add(1)));
  }
  return 0;
}

// --- fork/exec plumbing ----------------------------------------------------------------------

std::unique_ptr<SplitFs> SplitFs::CloneForFork(const std::string& child_tag) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // fork() copies the address space: the child arrives with U-Split and its caches
  // intact (§3.5). Kernel descriptors are shared across fork, so they carry over.
  auto child = std::make_unique<SplitFs>(kfs_, opts_, child_tag);
  for (const auto& [ino, fs] : files_) {
    FileState copy = fs;
    copy.staged = fs.staged;
    child->files_[ino] = std::move(copy);
  }
  child->path_cache_ = path_cache_;
  return child;
}

std::vector<uint8_t> SplitFs::SaveForExec() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Serialize open-file state to the shm blob (§3.5: file named by pid on /dev/shm).
  // Layout per record: ino, flags, offset, size, kernel_size, path.
  std::vector<uint8_t> blob;
  auto put64 = [&blob](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      blob.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  };
  put64(files_.size());
  for (const auto& [ino, fs] : files_) {
    put64(ino);
    put64(fs.size);
    put64(fs.kernel_size);
    put64(fs.path.size());
    blob.insert(blob.end(), fs.path.begin(), fs.path.end());
  }
  return blob;
}

std::unique_ptr<SplitFs> SplitFs::RestoreAfterExec(ext4sim::Ext4Dax* kfs, Options opts,
                                                   const std::string& instance_tag,
                                                   const std::vector<uint8_t>& blob) {
  auto inst = std::make_unique<SplitFs>(kfs, opts, instance_tag);
  size_t pos = 0;
  auto get64 = [&blob, &pos]() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(blob[pos++]) << (8 * i);
    }
    return v;
  };
  uint64_t count = get64();
  for (uint64_t i = 0; i < count; ++i) {
    Ino ino = get64();
    uint64_t size = get64();
    uint64_t kernel_size = get64();
    uint64_t path_len = get64();
    std::string path(blob.begin() + pos, blob.begin() + pos + path_len);
    pos += path_len;
    int kfd = kfs->OpenByIno(ino, vfs::kRdWr);
    if (kfd < 0) {
      continue;
    }
    FileState fs;
    fs.ino = ino;
    fs.kernel_fd = kfd;
    fs.path = path;
    fs.size = size;
    fs.kernel_size = kernel_size;
    inst->files_[ino] = std::move(fs);
    inst->path_cache_[path] = ino;
  }
  return inst;
}

// --- Introspection ---------------------------------------------------------------------------

uint64_t SplitFs::StagedBytes() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [ino, fs] : files_) {
    for (const auto& [off, r] : fs.staged) {
      total += r.alloc.len;
    }
  }
  return total;
}

uint64_t SplitFs::MemoryUsageBytes() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  uint64_t total = sizeof(*this) + mmaps_.MemoryUsageBytes();
  if (staging_) {
    total += staging_->MemoryUsageBytes();
  }
  for (const auto& [ino, fs] : files_) {
    total += sizeof(fs) + fs.path.size() + fs.staged.size() * (sizeof(StagedRange) + 48);
  }
  for (const auto& [path, ino] : path_cache_) {
    total += path.size() + sizeof(Ino) + 48;
  }
  if (oplog_) {
    total += 64;  // DRAM tail + bookkeeping; the log itself lives on PM.
  }
  return total;
}

}  // namespace splitfs
