#include "src/core/posix_api.h"

#include <cerrno>
#include <cstring>

namespace splitfs {

namespace {
constexpr size_t kStdioBufBytes = 4096;

void SetErrno(int negated_errno) { errno = -negated_errno; }
}  // namespace

int Posix::TranslateFlags(int oflag) {
  int flags = 0;
  switch (oflag & O_ACCMODE) {
    case O_RDONLY:
      flags |= vfs::kRdOnly;
      break;
    case O_WRONLY:
      flags |= vfs::kWrOnly;
      break;
    case O_RDWR:
      flags |= vfs::kRdWr;
      break;
    default:
      return -1;
  }
  if (oflag & O_CREAT) {
    flags |= vfs::kCreate;
  }
  if (oflag & O_EXCL) {
    flags |= vfs::kExcl;
  }
  if (oflag & O_TRUNC) {
    flags |= vfs::kTrunc;
  }
  if (oflag & O_APPEND) {
    flags |= vfs::kAppend;
  }
  return flags;
}

int Posix::open(const char* path, int oflag, mode_t mode) {
  int flags = TranslateFlags(oflag);
  if (flags < 0) {
    errno = EINVAL;
    return -1;
  }
  if (oflag & O_DIRECTORY) {
    // Directory handle: remember the path for *at() resolution.
    vfs::StatBuf st;
    int rc = fs_->Stat(path, &st);
    if (rc != 0) {
      SetErrno(rc);
      return -1;
    }
    if (st.type != vfs::FileType::kDirectory) {
      errno = ENOTDIR;
      return -1;
    }
    std::lock_guard<std::mutex> lock(mu_);
    int fd = next_dir_fd_++;
    dir_fds_[fd] = path;
    return fd;
  }
  int fd = fs_->Open(path, flags);
  if (fd < 0) {
    SetErrno(fd);
    return -1;
  }
  return fd;
}

int Posix::openat(int dirfd, const char* path, int oflag, mode_t mode) {
  if (path[0] == '/' || dirfd == AT_FDCWD) {
    return open(path, oflag, mode);
  }
  std::string base;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = dir_fds_.find(dirfd);
    if (it == dir_fds_.end()) {
      errno = EBADF;
      return -1;
    }
    base = it->second;
  }
  return open((base + "/" + path).c_str(), oflag, mode);
}

int Posix::close(int fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dir_fds_.erase(fd) == 1) {
      return 0;
    }
  }
  int rc = fs_->Close(fd);
  if (rc != 0) {
    SetErrno(rc);
    return -1;
  }
  return 0;
}

int Posix::dup(int fd) {
  int rc = fs_->Dup(fd);
  if (rc < 0) {
    SetErrno(rc);
    return -1;
  }
  return rc;
}

ssize_t Posix::read(int fd, void* buf, size_t n) {
  ssize_t rc = fs_->Read(fd, buf, n);
  if (rc < 0) {
    SetErrno(static_cast<int>(rc));
    return -1;
  }
  return rc;
}

ssize_t Posix::write(int fd, const void* buf, size_t n) {
  ssize_t rc = fs_->Write(fd, buf, n);
  if (rc < 0) {
    SetErrno(static_cast<int>(rc));
    return -1;
  }
  return rc;
}

ssize_t Posix::pread(int fd, void* buf, size_t n, off_t off) {
  if (off < 0) {
    errno = EINVAL;
    return -1;
  }
  ssize_t rc = fs_->Pread(fd, buf, n, static_cast<uint64_t>(off));
  if (rc < 0) {
    SetErrno(static_cast<int>(rc));
    return -1;
  }
  return rc;
}

ssize_t Posix::pwrite(int fd, const void* buf, size_t n, off_t off) {
  if (off < 0) {
    errno = EINVAL;
    return -1;
  }
  ssize_t rc = fs_->Pwrite(fd, buf, n, static_cast<uint64_t>(off));
  if (rc < 0) {
    SetErrno(static_cast<int>(rc));
    return -1;
  }
  return rc;
}

ssize_t Posix::readv(int fd, const struct iovec* iov, int iovcnt) {
  ssize_t total = 0;
  for (int i = 0; i < iovcnt; ++i) {
    ssize_t rc = read(fd, iov[i].iov_base, iov[i].iov_len);
    if (rc < 0) {
      return total > 0 ? total : -1;
    }
    total += rc;
    if (static_cast<size_t>(rc) < iov[i].iov_len) {
      break;  // Short read: EOF.
    }
  }
  return total;
}

ssize_t Posix::writev(int fd, const struct iovec* iov, int iovcnt) {
  ssize_t total = 0;
  for (int i = 0; i < iovcnt; ++i) {
    ssize_t rc = write(fd, iov[i].iov_base, iov[i].iov_len);
    if (rc < 0) {
      return total > 0 ? total : -1;
    }
    total += rc;
  }
  return total;
}

off_t Posix::lseek(int fd, off_t off, int whence) {
  vfs::Whence w;
  switch (whence) {
    case SEEK_SET:
      w = vfs::Whence::kSet;
      break;
    case SEEK_CUR:
      w = vfs::Whence::kCur;
      break;
    case SEEK_END:
      w = vfs::Whence::kEnd;
      break;
    default:
      errno = EINVAL;
      return -1;
  }
  int64_t rc = fs_->Lseek(fd, off, w);
  if (rc < 0) {
    SetErrno(static_cast<int>(rc));
    return -1;
  }
  return static_cast<off_t>(rc);
}

int Posix::fsync(int fd) {
  int rc = fs_->Fsync(fd);
  if (rc != 0) {
    SetErrno(rc);
    return -1;
  }
  return 0;
}

int Posix::ftruncate(int fd, off_t length) {
  if (length < 0) {
    errno = EINVAL;
    return -1;
  }
  int rc = fs_->Ftruncate(fd, static_cast<uint64_t>(length));
  if (rc != 0) {
    SetErrno(rc);
    return -1;
  }
  return 0;
}

int Posix::fallocate(int fd, int mode, off_t off, off_t len) {
  if (off < 0 || len <= 0) {
    errno = EINVAL;
    return -1;
  }
  bool keep_size = (mode & 0x01) != 0;  // FALLOC_FL_KEEP_SIZE.
  int rc = fs_->Fallocate(fd, static_cast<uint64_t>(off), static_cast<uint64_t>(len),
                          keep_size);
  if (rc != 0) {
    SetErrno(rc);
    return -1;
  }
  return 0;
}

namespace {
void FillStat(const vfs::StatBuf& in, struct stat* st) {
  std::memset(st, 0, sizeof(*st));
  st->st_ino = in.ino;
  st->st_size = static_cast<off_t>(in.size);
  st->st_blocks = static_cast<blkcnt_t>(in.blocks * 8);  // 512 B units.
  st->st_blksize = 4096;
  st->st_nlink = in.nlink;
  st->st_mode = (in.type == vfs::FileType::kDirectory ? S_IFDIR : S_IFREG) | in.mode;
}
}  // namespace

int Posix::fstat(int fd, struct stat* st) {
  vfs::StatBuf sb;
  int rc = fs_->Fstat(fd, &sb);
  if (rc != 0) {
    SetErrno(rc);
    return -1;
  }
  FillStat(sb, st);
  return 0;
}

int Posix::stat(const char* path, struct stat* st) {
  vfs::StatBuf sb;
  int rc = fs_->Stat(path, &sb);
  if (rc != 0) {
    SetErrno(rc);
    return -1;
  }
  FillStat(sb, st);
  return 0;
}

int Posix::access(const char* path, int amode) {
  vfs::StatBuf sb;
  int rc = fs_->Stat(path, &sb);
  if (rc != 0) {
    SetErrno(rc);
    return -1;
  }
  return 0;  // Single-user model: existence implies access.
}

int Posix::unlink(const char* path) {
  int rc = fs_->Unlink(path);
  if (rc != 0) {
    SetErrno(rc);
    return -1;
  }
  return 0;
}

int Posix::unlinkat(int dirfd, const char* path, int flags) {
  std::string full = path;
  if (path[0] != '/' && dirfd != AT_FDCWD) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = dir_fds_.find(dirfd);
    if (it == dir_fds_.end()) {
      errno = EBADF;
      return -1;
    }
    full = it->second + "/" + path;
  }
  int rc = (flags & AT_REMOVEDIR) != 0 ? fs_->Rmdir(full) : fs_->Unlink(full);
  if (rc != 0) {
    SetErrno(rc);
    return -1;
  }
  return 0;
}

int Posix::rename(const char* from, const char* to) {
  int rc = fs_->Rename(from, to);
  if (rc != 0) {
    SetErrno(rc);
    return -1;
  }
  return 0;
}

int Posix::mkdir(const char* path, mode_t mode) {
  int rc = fs_->Mkdir(path);
  if (rc != 0) {
    SetErrno(rc);
    return -1;
  }
  return 0;
}

int Posix::rmdir(const char* path) {
  int rc = fs_->Rmdir(path);
  if (rc != 0) {
    SetErrno(rc);
    return -1;
  }
  return 0;
}

// --- stdio-style streams ---------------------------------------------------------------

PosixFile* Posix::fopen(const char* path, const char* mode) {
  int oflag;
  bool writable, append = false;
  if (std::strcmp(mode, "r") == 0 || std::strcmp(mode, "rb") == 0) {
    oflag = O_RDONLY;
    writable = false;
  } else if (std::strcmp(mode, "r+") == 0 || std::strcmp(mode, "rb+") == 0 ||
             std::strcmp(mode, "r+b") == 0) {
    oflag = O_RDWR;
    writable = true;
  } else if (std::strcmp(mode, "w") == 0 || std::strcmp(mode, "wb") == 0) {
    oflag = O_RDWR | O_CREAT | O_TRUNC;
    writable = true;
  } else if (std::strcmp(mode, "a") == 0 || std::strcmp(mode, "ab") == 0) {
    oflag = O_RDWR | O_CREAT | O_APPEND;
    writable = true;
    append = true;
  } else {
    errno = EINVAL;
    return nullptr;
  }
  int fd = open(path, oflag);
  if (fd < 0) {
    return nullptr;
  }
  auto stream = std::make_unique<PosixFile>();
  stream->owner = this;
  stream->fd = fd;
  stream->writable = writable;
  stream->append = append;
  stream->wbuf.reserve(kStdioBufBytes);
  PosixFile* raw = stream.get();
  std::lock_guard<std::mutex> lock(mu_);
  streams_.push_back(std::move(stream));
  return raw;
}

size_t Posix::fwrite(const void* ptr, size_t size, size_t nmemb, PosixFile* stream) {
  if (stream == nullptr || !stream->writable) {
    return 0;
  }
  std::lock_guard<std::mutex> slock(stream->mu);
  size_t bytes = size * nmemb;
  const auto* src = static_cast<const uint8_t*>(ptr);
  // Block-buffered: flush whenever the buffer fills (stdio semantics).
  size_t written = 0;
  while (written < bytes) {
    size_t room = kStdioBufBytes - stream->wbuf.size();
    size_t take = std::min(room, bytes - written);
    stream->wbuf.insert(stream->wbuf.end(), src + written, src + written + take);
    written += take;
    if (stream->wbuf.size() == kStdioBufBytes) {
      if (FlushLocked(stream) != 0) {
        return written / size;
      }
    }
  }
  return nmemb;
}

size_t Posix::fread(void* ptr, size_t size, size_t nmemb, PosixFile* stream) {
  if (stream == nullptr) {
    return 0;
  }
  std::lock_guard<std::mutex> slock(stream->mu);
  if (FlushLocked(stream) != 0) {  // Write-then-read consistency.
    return 0;
  }
  ssize_t rc = read(stream->fd, ptr, size * nmemb);
  if (rc < 0) {
    stream->failed = true;
    return 0;
  }
  return static_cast<size_t>(rc) / size;
}

int Posix::FlushLocked(PosixFile* stream) {
  if (stream->wbuf.empty()) {
    return 0;
  }
  ssize_t rc = write(stream->fd, stream->wbuf.data(), stream->wbuf.size());
  if (rc != static_cast<ssize_t>(stream->wbuf.size())) {
    stream->failed = true;
    return EOF;
  }
  stream->wbuf.clear();
  return 0;
}

int Posix::fflush(PosixFile* stream) {
  if (stream == nullptr) {
    return 0;
  }
  std::lock_guard<std::mutex> slock(stream->mu);
  return FlushLocked(stream);
}

int Posix::fseek(PosixFile* stream, long off, int whence) {
  if (stream == nullptr) {
    return -1;
  }
  std::lock_guard<std::mutex> slock(stream->mu);
  if (FlushLocked(stream) != 0) {
    return -1;
  }
  return lseek(stream->fd, off, whence) < 0 ? -1 : 0;
}

long Posix::ftell(PosixFile* stream) {
  if (stream == nullptr) {
    return -1;
  }
  std::lock_guard<std::mutex> slock(stream->mu);
  off_t pos = lseek(stream->fd, 0, SEEK_CUR);
  if (pos < 0) {
    return -1;
  }
  return static_cast<long>(pos) + static_cast<long>(stream->wbuf.size());
}

int Posix::fileno(PosixFile* stream) { return stream == nullptr ? -1 : stream->fd; }

int Posix::fclose(PosixFile* stream) {
  if (stream == nullptr) {
    return EOF;
  }
  int rc;
  int crc;
  {
    std::lock_guard<std::mutex> slock(stream->mu);
    rc = FlushLocked(stream);
    crc = close(stream->fd);
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(streams_, [stream](const auto& s) { return s.get() == stream; });
  return rc != 0 || crc != 0 ? EOF : 0;
}

}  // namespace splitfs
