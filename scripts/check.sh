#!/usr/bin/env bash
# Configure, build, and test the whole tree.
#
#   scripts/check.sh                   # full suite, including the crash matrix
#   scripts/check.sh -LE crash_matrix  # quick run: skip the full matrix
#   scripts/check.sh -L crash_smoke    # only the crash smoke subset
#   scripts/check.sh -L ext4           # K-Split (ext4 model) tests only
#   scripts/check.sh -L examples       # build + run the examples/ smoke programs
#   scripts/check.sh -L obs            # observability layer: obs_test + the
#                                      # trace_tour export/reconciliation smoke
#   scripts/check.sh -L tenant         # tenant router: path/fd routing, shared
#                                      # service pools, per-tenant QoS, churn
#   scripts/check.sh -L analysis       # analysis layer: checker/witness unit +
#                                      # mutation self-tests, plus the crash-smoke/
#                                      # journal/U-Split/tenant/concurrency suites
#                                      # rerun with SPLITFS_ANALYSIS=1 (halt on any
#                                      # persistence-ordering or lock-order violation)
#   scripts/check.sh --tsan            # ThreadSanitizer build, concurrency tests only
#   scripts/check.sh --asan            # AddressSanitizer build, full quick suite
#   scripts/check.sh --ubsan           # UBSan build, full quick suite
#   scripts/check.sh --tidy            # clang-tidy over src/ (bugprone, concurrency,
#                                      # performance checks; see .clang-tidy)
#
# The default run includes the `examples` label: every examples/*.cpp builds as
# example_<name> and executes as a smoke test, so the worked examples cannot
# silently bit-rot against API changes. It finishes with the fsync-storm bench
# smoke: bench_scalability --trace (commit-coalescing + trace-reconciliation
# self-check), --schema-check (BENCH_scalability.json schema), and --repeat-check
# (determinism gates: posix append + the shared-hot-file range-lock cells).
#
# Extra arguments are forwarded to ctest.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--tsan" ]]; then
  shift
  cmake -B build-tsan -S . -DSPLITFS_TSAN=ON
  cmake --build build-tsan -j"$(nproc)"
  # TSAN_OPTIONS makes any report fail the run even if the test's asserts pass.
  # The `concurrency` label includes the K-Split metadata-stress group (parallel
  # create/rename/unlink/rmdir over the per-inode/dentry-shard locks), the
  # lock-free MmapCache translate-during-churn group (epoch reclamation), and the
  # *_async instantiations, which run every U-Split suite with the async relink
  # publisher enabled (Options::async_relink + a real publisher thread) — so the
  # intent-log/publish/fence protocol is TSan-verified on every pass. The tenant
  # router's mount/unmount churn race suite (tenant_test) rides the same label.
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -L concurrency "$@"
  exit 0
fi

if [[ "${1:-}" == "--asan" || "${1:-}" == "--ubsan" ]]; then
  # Sanitizer passes run the quick suite (crash matrix excluded: the full matrix
  # under ASan takes minutes and the smoke subset exercises the same code paths).
  # halt_on_error makes any report fail the run even when the test's own asserts
  # pass; detect_leaks stays on under ASan (default) so staged-allocation and
  # observer lifetimes are leak-checked too.
  san="${1#--}"
  shift
  opt="SPLITFS_ASAN"
  [[ "$san" == "ubsan" ]] && opt="SPLITFS_UBSAN"
  cmake -B "build-$san" -S . "-D$opt=ON"
  cmake --build "build-$san" -j"$(nproc)"
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --test-dir "build-$san" --output-on-failure -j"$(nproc)" -LE crash_matrix "$@"
  exit 0
fi

if [[ "${1:-}" == "--tidy" ]]; then
  shift
  if ! command -v clang-tidy > /dev/null; then
    echo "check.sh --tidy: clang-tidy not found in PATH; install LLVM clang-tools" >&2
    echo "(checks configured in .clang-tidy: bugprone-*, concurrency-*, performance-*)" >&2
    exit 2
  fi
  # clang-tidy needs a compilation database; reuse (or create) the normal build.
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  mapfile -t tidy_sources < <(find src -name '*.cc' | sort)
  clang-tidy -p build --quiet "${tidy_sources[@]}" "$@"
  exit 0
fi

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)" "$@"

# fsync-storm bench smoke: a 4-thread fsync-per-append run under a nonzero commit
# interval must export a Chrome trace whose spans reconcile with elapsed virtual
# time (per-thread top-level span sums within 5%) and show commit coalescing
# (fewer journal.writeout spans than fsyncs) — the binary self-checks and exits
# nonzero on either failure. --schema-check guards the committed
# BENCH_scalability.json artifact; --repeat-check guards the PR 6 wobble fix and
# the shared-hot-file cells' determinism (1T bit-identical, 8T drift <= 1%).
storm_trace="$(mktemp /tmp/splitfs_storm_trace.XXXXXX.json)"
trap 'rm -f "$storm_trace"' EXIT
./build/bench_scalability --trace="$storm_trace"
./build/bench_scalability --schema-check
./build/bench_scalability --repeat-check
# Multi-tenant QoS bench artifact: BENCH_multitenant.json must keep the
# schema_version-2 shape (per-tenant latency percentiles, contention ledger,
# qos_on/qos_off degradation factors).
./build/bench_multitenant --schema-check
