#!/usr/bin/env bash
# Configure, build, and test the whole tree.
#
#   scripts/check.sh                 # full suite, including the crash matrix
#   scripts/check.sh -LE crash_matrix  # quick run: skip the full matrix
#   scripts/check.sh -L crash_smoke    # only the crash smoke subset
#
# Extra arguments are forwarded to ctest.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)" "$@"
