// Example: the paper's headline application scenario — a LevelDB-style key-value
// store running YCSB, once on plain ext4-DAX and once on SplitFS-POSIX, on identical
// emulated hardware. Prints the side-by-side throughput (Figure 6's POSIX group,
// miniature edition).
//
//   build/examples/kvstore_ycsb
#include <cstdio>
#include <memory>

#include "src/apps/kv_lsm.h"
#include "src/common/bytes.h"
#include "src/core/split_fs.h"
#include "src/workloads/ycsb.h"

namespace {

struct RunResult {
  double load_kops;
  double run_a_kops;
  double run_c_kops;
};

RunResult RunOn(bool use_splitfs) {
  sim::Context ctx;
  pmem::Device pm(&ctx, 4 * common::kGiB);
  ext4sim::Ext4Dax kernel_fs(&pm);
  std::unique_ptr<splitfs::SplitFs> split;
  vfs::FileSystem* fs = &kernel_fs;
  if (use_splitfs) {
    split = std::make_unique<splitfs::SplitFs>(&kernel_fs, splitfs::Options{});
    fs = split.get();
  }

  apps::KvLsmOptions kv_opts;
  kv_opts.clock = &ctx.clock;  // Charge LevelDB-side CPU to the simulated clock.
  apps::KvLsm store(fs, "/leveldb", kv_opts);

  wl::YcsbConfig cfg;
  cfg.record_count = 10000;
  cfg.op_count = 10000;
  wl::Ycsb ycsb(&store, cfg);

  RunResult r;
  r.load_kops = ycsb.Load(&ctx.clock).Kops();
  r.run_a_kops = ycsb.Run(wl::YcsbWorkload::kA, &ctx.clock).Kops();
  r.run_c_kops = ycsb.Run(wl::YcsbWorkload::kC, &ctx.clock).Kops();
  return r;
}

}  // namespace

int main() {
  std::printf("YCSB on a LevelDB-style LSM store (10K records, 10K ops, 1 KB values)\n");
  std::printf("Same workload, same emulated PM; only the file system changes.\n\n");
  RunResult ext4 = RunOn(false);
  RunResult split = RunOn(true);
  std::printf("%-12s %14s %14s %10s\n", "workload", "ext4-DAX", "SplitFS-POSIX",
              "speedup");
  std::printf("%-12s %11.1f K/s %11.1f K/s %9.2fx\n", "Load A", ext4.load_kops,
              split.load_kops, split.load_kops / ext4.load_kops);
  std::printf("%-12s %11.1f K/s %11.1f K/s %9.2fx\n", "Run A (50/50)", ext4.run_a_kops,
              split.run_a_kops, split.run_a_kops / ext4.run_a_kops);
  std::printf("%-12s %11.1f K/s %11.1f K/s %9.2fx\n", "Run C (reads)", ext4.run_c_kops,
              split.run_c_kops, split.run_c_kops / ext4.run_c_kops);
  std::printf("\nWrite-heavy phases gain the most — WAL appends run in user space and\n"
              "publish by relink; read-heavy phases gain less (the paper's §5.8).\n");
  return 0;
}
