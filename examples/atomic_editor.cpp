// Example: strict mode as the paper motivates it (§3.2) — "editors can allow atomic
// changes to the file when the user saves". A toy editor overwrites a document in
// place; power fails before the data is known durable. Three file systems, same
// crash:
//   * ext4-DAX        — the DAX write path copies with nt-stores but nothing fences
//                       until fsync: an unlucky crash leaves a TORN document;
//   * SplitFS-POSIX   — overwrites are synchronous (nt-store + fence in the call):
//                       the save is already durable when the call returns;
//   * SplitFS-strict  — the overwrite is staged + op-logged: after a crash the
//                       document is always exactly the old or the new version.
//
//   build/examples/atomic_editor
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/split_fs.h"

namespace {

std::vector<uint8_t> Document(char fill) {
  std::vector<uint8_t> doc(8 * common::kBlockSize);
  for (size_t i = 0; i < doc.size(); ++i) {
    doc[i] = static_cast<uint8_t>(fill + (i / 1000) % 4);
  }
  return doc;
}

const char* Classify(const std::vector<uint8_t>& got, const std::vector<uint8_t>& v1,
                     const std::vector<uint8_t>& v2) {
  if (got == v1) {
    return "old version (save never happened)";
  }
  if (got == v2) {
    return "new version (save completed)";
  }
  return "*** TORN: a mix of both versions ***";
}

enum class Config { kExt4, kSplitPosix, kSplitStrict };

const char* Name(Config c) {
  switch (c) {
    case Config::kExt4:
      return "ext4-DAX";
    case Config::kSplitPosix:
      return "SplitFS-POSIX";
    case Config::kSplitStrict:
      return "SplitFS-strict";
  }
  return "?";
}

void Experiment(Config config, uint64_t crash_seed) {
  sim::Context ctx;
  pmem::Device pm(&ctx, 512 * common::kMiB);
  ext4sim::Ext4Dax kernel_fs(&pm);
  std::unique_ptr<splitfs::SplitFs> split;
  vfs::FileSystem* fs = &kernel_fs;
  if (config != Config::kExt4) {
    splitfs::Options opts;
    opts.mode = config == Config::kSplitStrict ? splitfs::Mode::kStrict
                                               : splitfs::Mode::kPosix;
    opts.num_staging_files = 2;
    opts.staging_file_bytes = 8 * common::kMiB;
    opts.oplog_bytes = 1 * common::kMiB;
    split = std::make_unique<splitfs::SplitFs>(&kernel_fs, opts);
    fs = split.get();
  }
  pm.EnableCrashTracking(true);

  auto v1 = Document('A');
  auto v2 = Document('M');

  // Save version 1 durably.
  int fd = fs->Open("/novel.txt", vfs::kRdWr | vfs::kCreate);
  fs->Pwrite(fd, v1.data(), v1.size(), 0);
  fs->Fsync(fd);

  // The user saves version 2... and power fails before anything else runs.
  // An arbitrary subset of cachelines that never reached their persistence point
  // survives (torn write).
  fs->Pwrite(fd, v2.data(), v2.size(), 0);
  common::Rng torn(crash_seed);
  pm.Crash(&torn);
  kernel_fs.Recover();
  if (split) {
    split->Recover();
  }

  int fd2 = fs->Open("/novel.txt", vfs::kRdWr);
  std::vector<uint8_t> got(v1.size());
  fs->Pread(fd2, got.data(), got.size(), 0);
  std::printf("  %-16s -> %s\n", Name(config), Classify(got, v1, v2));
  fs->Close(fd2);
}

}  // namespace

int main() {
  std::printf("Atomic document save under power failure (32 KB overwrite, torn crash)\n\n");
  for (uint64_t seed : {11u, 22u, 33u}) {
    std::printf("crash #%llu:\n", static_cast<unsigned long long>(seed));
    Experiment(Config::kExt4, seed);
    Experiment(Config::kSplitPosix, seed);
    Experiment(Config::kSplitStrict, seed);
  }
  std::printf(
      "\next4-DAX tears: its write path has no persistence point until fsync.\n"
      "SplitFS-POSIX overwrites are synchronous, so the save is durable on return.\n"
      "SplitFS-strict additionally guarantees old-XOR-new even when the op-log\n"
      "entry itself is torn (checksum discards it -> clean old version, §3.3).\n");
  return 0;
}
