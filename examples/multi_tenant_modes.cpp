// Example: the SplitFS feature no other PM file system offers (§3.2) — concurrent
// applications choosing *different* consistency modes over one shared file system.
// A strict-mode database and a POSIX-mode log processor share the same ext4-DAX
// instance; each gets its own guarantees and neither interferes with the other.
//
//   build/examples/multi_tenant_modes
#include <cstdio>
#include <string>
#include <vector>

#include "src/apps/wal_db.h"
#include "src/common/bytes.h"
#include "src/core/split_fs.h"

int main() {
  sim::Context ctx;
  pmem::Device pm(&ctx, 2 * common::kGiB);
  ext4sim::Ext4Dax kernel_fs(&pm);

  // Tenant 1: a database wanting atomic+synchronous operations. (Both tenants use a
  // modest staging pool so two instances fit comfortably on the 2 GiB demo device.)
  splitfs::Options strict_opts;
  strict_opts.mode = splitfs::Mode::kStrict;
  strict_opts.num_staging_files = 4;
  strict_opts.staging_file_bytes = 32 * common::kMiB;
  splitfs::SplitFs db_app(&kernel_fs, strict_opts, "tenant-db");

  // Tenant 2: a log cruncher that only needs POSIX semantics, but wants speed.
  splitfs::Options posix_opts;
  posix_opts.mode = splitfs::Mode::kPosix;
  posix_opts.num_staging_files = 4;
  posix_opts.staging_file_bytes = 32 * common::kMiB;
  splitfs::SplitFs log_app(&kernel_fs, posix_opts, "tenant-logs");

  std::printf("tenant 1: %s | tenant 2: %s — sharing one K-Split instance\n\n",
              db_app.Name().c_str(), log_app.Name().c_str());

  // Tenant 1 runs transactions.
  apps::WalDb db(&db_app, "/bank.db");
  std::vector<uint8_t> page(4096, 1);
  uint64_t t0 = ctx.clock.Now();
  for (int i = 0; i < 500; ++i) {
    db.Begin();
    page[0] = static_cast<uint8_t>(i);
    db.WritePage(static_cast<uint64_t>(i % 50), page.data());
    db.Commit();
  }
  double db_us_per_txn = (ctx.clock.Now() - t0) / 500.0 / 1000.0;

  // Tenant 2 streams a log file concurrently (interleaved here; the instances are
  // independent and their modes do not interfere).
  int lfd = log_app.Open("/events.log", vfs::kRdWr | vfs::kCreate | vfs::kAppend);
  std::string line(256, '#');
  t0 = ctx.clock.Now();
  for (int i = 0; i < 20000; ++i) {
    log_app.Write(lfd, line.data(), line.size());
  }
  log_app.Fsync(lfd);
  double log_ns_per_append = static_cast<double>(ctx.clock.Now() - t0) / 20000.0;
  log_app.Close(lfd);

  std::printf("strict tenant:  %.1f us per committed transaction (atomic, synchronous)\n",
              db_us_per_txn);
  std::printf("POSIX tenant:   %.0f ns per 256 B append (amortized, incl. final relink)\n",
              log_ns_per_append);
  std::printf("op-log entries written by strict tenant: %llu; POSIX tenant: %llu\n",
              static_cast<unsigned long long>(db_app.OpLogEntries()),
              static_cast<unsigned long long>(log_app.OpLogEntries()));

  // Cross-tenant visibility: published files are one namespace.
  vfs::StatBuf st;
  if (db_app.Stat("/events.log", &st) == 0) {
    std::printf("\nstrict tenant sees the POSIX tenant's published log: %llu bytes\n",
                static_cast<unsigned long long>(st.size));
  }
  return 0;
}
