// Example: the SplitFS feature no other PM file system offers (§3.2) — concurrent
// applications choosing *different* consistency modes over one shared file system —
// scaled out through the TenantRouter: namespace-rooted tenants behind one POSIX
// entry point, every instance's background work riding three shared service
// threads (publisher, staging replenisher, journal commit), and per-tenant QoS so
// the strict tenant's commit storm pays its own throttle instead of starving the
// POSIX neighbor.
//
//   build/examples/multi_tenant_modes
#include <cstdio>
#include <string>
#include <vector>

#include "src/apps/wal_db.h"
#include "src/common/bytes.h"
#include "src/tenant/tenant_router.h"

int main() {
  sim::Context ctx;
  pmem::Device pm(&ctx, 2 * common::kGiB);
  ext4sim::Ext4Dax kernel_fs(&pm);
  tenant::TenantRouter router(&kernel_fs);

  // Tenant "db": a database wanting atomic+synchronous operations, paced to 20k
  // forced journal commits per second of simulated time. (Both tenants use a
  // modest staging pool so the instances fit comfortably on the 2 GiB demo device.)
  tenant::TenantOptions db_opts;
  db_opts.fs.mode = splitfs::Mode::kStrict;
  db_opts.fs.num_staging_files = 4;
  db_opts.fs.staging_file_bytes = 32 * common::kMiB;
  db_opts.journal_credits_per_sec = 20000.0;
  db_opts.journal_credit_burst = 32.0;
  router.Mount("db", db_opts);

  // Tenant "logs": a log cruncher that only needs POSIX semantics, but wants speed
  // — async relink publication over the shared publisher pool, unthrottled.
  tenant::TenantOptions log_opts;
  log_opts.fs.mode = splitfs::Mode::kPosix;
  log_opts.fs.num_staging_files = 4;
  log_opts.fs.staging_file_bytes = 32 * common::kMiB;
  log_opts.fs.async_relink = true;
  log_opts.fs.publisher_thread = true;
  router.Mount("logs", log_opts);

  std::printf("tenants: db (%s) + logs (%s) — one K-Split instance, %d shared "
              "service threads\n\n",
              router.tenant_fs("db")->Name().c_str(),
              router.tenant_fs("logs")->Name().c_str(), router.ServiceThreads());

  // Tenant "db" runs transactions through the router's namespace.
  apps::WalDb db(&router, "/db/bank.db");
  std::vector<uint8_t> page(4096, 1);
  uint64_t t0 = ctx.clock.Now();
  for (int i = 0; i < 500; ++i) {
    db.Begin();
    page[0] = static_cast<uint8_t>(i);
    db.WritePage(static_cast<uint64_t>(i % 50), page.data());
    db.Commit();
  }
  double db_us_per_txn = (ctx.clock.Now() - t0) / 500.0 / 1000.0;

  // Tenant "logs" streams a log file concurrently (interleaved here; the instances
  // are independent and their modes do not interfere).
  int lfd = router.Open("/logs/events.log", vfs::kRdWr | vfs::kCreate | vfs::kAppend);
  std::string line(256, '#');
  t0 = ctx.clock.Now();
  for (int i = 0; i < 20000; ++i) {
    router.Write(lfd, line.data(), line.size());
  }
  router.Fsync(lfd);
  double log_ns_per_append = static_cast<double>(ctx.clock.Now() - t0) / 20000.0;
  router.Close(lfd);
  router.DrainAllPublishes();

  std::printf("strict tenant:  %.1f us per committed transaction (atomic, synchronous)\n",
              db_us_per_txn);
  std::printf("POSIX tenant:   %.0f ns per 256 B append (amortized, incl. final relink)\n",
              log_ns_per_append);
  std::printf("op-log entries written by strict tenant: %llu; POSIX tenant: %llu\n",
              static_cast<unsigned long long>(router.tenant_fs("db")->OpLogEntries()),
              static_cast<unsigned long long>(router.tenant_fs("logs")->OpLogEntries()));

  // QoS attribution: the strict tenant's pacing shows up under its own name in the
  // contention ledger; the POSIX tenant pays nothing.
  for (const auto& [name, e] : ctx.obs.ledger.Snapshot()) {
    if (name.rfind("tenant.", 0) == 0) {
      std::printf("%-28s %llu waits, %.1f ms throttled\n", name.c_str(),
                  static_cast<unsigned long long>(e.waits), e.waited_ns / 1e6);
    }
  }

  // Cross-tenant visibility goes through the router's shared namespace.
  vfs::StatBuf st;
  if (router.Stat("/logs/events.log", &st) == 0) {
    std::printf("\nstrict tenant sees the POSIX tenant's published log: %llu bytes\n",
                static_cast<unsigned long long>(st.size));
  }
  router.Unmount("logs");
  router.Unmount("db");
  return 0;
}
