// Quickstart: set up an emulated PM machine, mount SplitFS over ext4-DAX, and do
// file IO the way the paper's applications do — then inspect what the split
// architecture did under the hood.
//
//   build/examples/quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/split_fs.h"

int main() {
  // 1. One simulated machine: clock + cost model + an emulated PM device.
  // (SplitFS pre-allocates 10 x 160 MB staging files by default, so give the
  // device room — a real Optane module is hundreds of gigabytes.)
  sim::Context ctx;
  pmem::Device pm(&ctx, 4 * common::kGiB);

  // 2. The kernel file system (K-Split): ext4 in DAX mode.
  ext4sim::Ext4Dax kernel_fs(&pm);

  // 3. The user-space library file system (U-Split). POSIX mode here; see
  //    examples/atomic_editor.cpp for strict mode.
  splitfs::Options opts;
  opts.mode = splitfs::Mode::kPosix;
  splitfs::SplitFs fs(&kernel_fs, opts);

  // 4. Plain POSIX-shaped IO. Appends go to staging files; fsync publishes them
  //    with the relink primitive — no data copy.
  int fd = fs.Open("/hello.txt", vfs::kRdWr | vfs::kCreate);
  if (fd < 0) {
    std::fprintf(stderr, "open failed: %d\n", fd);
    return 1;
  }
  std::string msg = "hello, persistent memory!\n";
  fs.Write(fd, msg.data(), msg.size());

  std::vector<uint8_t> block(4096, 0x42);
  for (int i = 0; i < 1024; ++i) {  // 4 MB of appends.
    fs.Write(fd, block.data(), block.size());
  }
  uint64_t before_fsync = ctx.clock.Now();
  fs.Fsync(fd);
  uint64_t fsync_ns = ctx.clock.Now() - before_fsync;

  // 5. Reads are served from the collection of memory-maps: loads, no kernel trap.
  std::vector<char> back(msg.size());
  fs.Pread(fd, back.data(), back.size(), 0);
  std::printf("read back: %.*s", static_cast<int>(back.size()), back.data());
  fs.Close(fd);

  // 6. What happened underneath:
  std::printf("simulated time:        %.3f ms\n", ctx.clock.Now() / 1e6);
  std::printf("fsync (relink) cost:   %.1f us for 4 MB of staged appends\n",
              fsync_ns / 1e3);
  std::printf("kernel traps:          %llu\n",
              static_cast<unsigned long long>(ctx.stats.syscalls()));
  std::printf("relinks:               %llu\n",
              static_cast<unsigned long long>(ctx.stats.relinks()));
  std::printf("user data written:     %.2f MB\n", ctx.stats.data_bytes() / 1e6);
  std::printf("journal bytes:         %.2f MB\n", ctx.stats.journal_bytes() / 1e6);
  std::printf("software overhead:     %.1f%% of total time\n",
              100.0 * (ctx.clock.Now() - ctx.stats.data_media_ns()) / ctx.clock.Now());
  std::printf("\nNote how ~1000 appends required only a handful of kernel traps:\n"
              "data operations stayed in user space (the paper's core idea).\n");
  return 0;
}
