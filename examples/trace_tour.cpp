// Observability tour: run a small fsync-heavy workload with tracing on, export the
// virtual-time trace, and verify the books balance — every nanosecond the simulated
// clock advanced is attributable to a named top-level span, and the exported JSON is
// structurally a Chrome trace (loadable by Perfetto / chrome://tracing).
//
// This doubles as the CI smoke for the obs layer's end-to-end contract:
//   1. the exported file is well-formed Chrome trace-event JSON;
//   2. reconciliation identity: sum of top-level span durations == clock.Now()
//      within 1% (single-threaded run, so there is one timeline to reconcile);
//   3. attribution: >= 95% of non-media virtual time falls inside named spans.
// Exits nonzero when any check fails.
//
//   build/example_trace_tour [output.json]   (default: trace_tour.json in $PWD)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/split_fs.h"

namespace {

bool Fail(const char* what) {
  std::fprintf(stderr, "FAIL: %s\n", what);
  return false;
}

// Minimal structural validation of the exported Chrome trace: balanced braces and
// brackets outside strings, the required top-level keys, and complete ("X") events
// carrying the fields Perfetto needs. Not a general JSON parser — just enough to
// catch a malformed exporter before a human pastes the file into a viewer.
bool ValidateChromeTrace(const std::string& json, uint64_t expect_spans) {
  long depth_brace = 0;
  long depth_bracket = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++depth_brace; break;
      case '}': --depth_brace; break;
      case '[': ++depth_bracket; break;
      case ']': --depth_bracket; break;
      default: break;
    }
    if (depth_brace < 0 || depth_bracket < 0) {
      return Fail("unbalanced closer in trace JSON");
    }
  }
  if (in_string || depth_brace != 0 || depth_bracket != 0) {
    return Fail("unbalanced trace JSON");
  }
  if (json.find("\"traceEvents\"") == std::string::npos) {
    return Fail("missing traceEvents key");
  }
  if (json.find("\"displayTimeUnit\"") == std::string::npos) {
    return Fail("missing displayTimeUnit key");
  }
  // Count complete events and spot-check the per-event fields.
  uint64_t events = 0;
  size_t pos = 0;
  while ((pos = json.find("\"ph\": \"X\"", pos)) != std::string::npos) {
    ++events;
    pos += 1;
  }
  if (events != expect_spans) {
    std::fprintf(stderr, "FAIL: %llu X events in JSON, tracer recorded %llu spans\n",
                 static_cast<unsigned long long>(events),
                 static_cast<unsigned long long>(expect_spans));
    return false;
  }
  for (const char* field : {"\"name\"", "\"cat\"", "\"ts\"", "\"dur\"", "\"tid\"",
                            "\"pid\""}) {
    if (json.find(field) == std::string::npos) {
      std::fprintf(stderr, "FAIL: trace events missing field %s\n", field);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "trace_tour.json";

  sim::Context ctx;
  pmem::Device pm(&ctx, 2 * common::kGiB);
  ext4sim::Ext4Dax kernel_fs(&pm);

  splitfs::Options opts;
  opts.mode = splitfs::Mode::kSync;
  opts.tracing = true;  // Op entry/exit spans on; still zero clock effect.
  splitfs::SplitFs fs(&kernel_fs, opts);

  // Startup (staging pre-allocation, journal init) is not part of the tour: zero the
  // clock and the obs state, then start recording.
  ctx.Reset();
  ctx.obs.tracer.Enable();

  // The fsync storm: every 4 KB append is immediately fsync'd, so each op crosses
  // the staging pool, the op intents, and the journal pipeline — the worst case the
  // paper's Table 6 dissects, and the richest trace this stack produces.
  int fd = fs.Open("/storm.dat", vfs::kRdWr | vfs::kCreate);
  if (fd < 0) {
    std::fprintf(stderr, "open failed: %d\n", fd);
    return 1;
  }
  std::vector<uint8_t> block(4096, 0x5A);
  constexpr int kOps = 2000;
  for (int i = 0; i < kOps; ++i) {
    if (fs.Write(fd, block.data(), block.size()) !=
        static_cast<ssize_t>(block.size())) {
      std::fprintf(stderr, "write %d failed\n", i);
      return 1;
    }
    if (fs.Fsync(fd) != 0) {
      std::fprintf(stderr, "fsync %d failed\n", i);
      return 1;
    }
  }
  std::vector<uint8_t> back(block.size());
  if (fs.Pread(fd, back.data(), back.size(), 0) != static_cast<ssize_t>(back.size())) {
    std::fprintf(stderr, "readback failed\n");
    return 1;
  }
  fs.Close(fd);

  const uint64_t total_ns = ctx.clock.Now();
  const uint64_t media_ns = ctx.stats.data_media_ns();
  const uint64_t span_ns = ctx.obs.tracer.TopLevelSpanNs();
  const uint64_t span_media_ns = ctx.obs.tracer.MediaNs();
  const uint64_t spans = ctx.obs.tracer.SpanCount();
  const uint64_t drops = ctx.obs.tracer.Drops();

  std::printf("fsync storm: %d x 4 KB append+fsync in %.3f virtual ms\n", kOps,
              total_ns / 1e6);
  std::printf("spans recorded:        %llu (%llu dropped)\n",
              static_cast<unsigned long long>(spans),
              static_cast<unsigned long long>(drops));
  std::printf("top-level span time:   %.3f ms  (clock: %.3f ms)\n", span_ns / 1e6,
              total_ns / 1e6);
  std::printf("media time in spans:   %.3f ms  (stats: %.3f ms)\n", span_media_ns / 1e6,
              media_ns / 1e6);

  bool ok = true;
  if (spans == 0 || drops != 0) {
    ok = Fail("expected a nonempty trace with no drops");
  }

  // Reconciliation identity (single timeline): every virtual nanosecond between
  // Reset() and now was spent inside some top-level op span, so the two totals agree
  // within 1%.
  double identity_err =
      total_ns == 0
          ? 1.0
          : (span_ns > total_ns ? span_ns - total_ns : total_ns - span_ns) /
                static_cast<double>(total_ns);
  std::printf("identity |spans-clock|: %.4f%% of clock\n", 100.0 * identity_err);
  if (identity_err > 0.01) {
    ok = Fail("reconciliation identity off by more than 1%");
  }

  // Attribution: of the time that was NOT payload media movement (the §5.7 software
  // side), at least 95% must be inside named spans.
  uint64_t sw_total = total_ns > media_ns ? total_ns - media_ns : 0;
  uint64_t sw_spans = span_ns > span_media_ns ? span_ns - span_media_ns : 0;
  double attribution =
      sw_total == 0 ? 0.0 : static_cast<double>(sw_spans) / static_cast<double>(sw_total);
  std::printf("software-time attribution: %.2f%% inside named spans\n",
              100.0 * attribution);
  if (attribution < 0.95) {
    ok = Fail("less than 95% of software time attributed to spans");
  }

  if (!ctx.obs.tracer.ExportChromeTrace(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  FILE* f = std::fopen(out_path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot reopen %s\n", out_path.c_str());
    return 1;
  }
  std::string json;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    json.append(buf, n);
  }
  std::fclose(f);
  if (!ValidateChromeTrace(json, spans)) {
    ok = false;
  }

  if (!ok) {
    return 1;
  }
  std::printf("\nwrote %s — open it in Perfetto (ui.perfetto.dev) or chrome://tracing;\n"
              "each virtual-time op appears as a complete event on the app's track.\n",
              out_path.c_str());
  return 0;
}
