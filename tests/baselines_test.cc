// Functional + behaviour tests for the baseline PM file systems (PMFS, NOVA, Strata),
// parameterized over the common VFS contract plus per-design behaviours: NOVA COW,
// NOVA/PMFS logging costs, Strata private-log reads and digest write amplification.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "src/common/bytes.h"
#include "src/nova/nova.h"
#include "src/pmfs/pmfs.h"
#include "src/strata/strata.h"

namespace {

using common::kBlockSize;
using common::kMiB;

struct Factory {
  const char* name;
  std::function<std::unique_ptr<vfs::FileSystem>(pmem::Device*)> make;
};

class BaselineTest : public ::testing::TestWithParam<Factory> {
 protected:
  BaselineTest() : dev_(&ctx_, 256 * kMiB), fs_(GetParam().make(&dev_)) {}

  std::vector<uint8_t> Pattern(size_t n, uint8_t seed) {
    std::vector<uint8_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = static_cast<uint8_t>(seed + i * 3);
    }
    return v;
  }

  sim::Context ctx_;
  pmem::Device dev_;
  std::unique_ptr<vfs::FileSystem> fs_;
};

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineTest,
    ::testing::Values(
        Factory{"PMFS", [](pmem::Device* d) -> std::unique_ptr<vfs::FileSystem> {
                  return std::make_unique<pmfssim::Pmfs>(d);
                }},
        Factory{"NOVAstrict", [](pmem::Device* d) -> std::unique_ptr<vfs::FileSystem> {
                  return std::make_unique<novasim::Nova>(d, true);
                }},
        Factory{"NOVArelaxed", [](pmem::Device* d) -> std::unique_ptr<vfs::FileSystem> {
                  return std::make_unique<novasim::Nova>(d, false);
                }},
        Factory{"Strata", [](pmem::Device* d) -> std::unique_ptr<vfs::FileSystem> {
                  return std::make_unique<stratasim::Strata>(d);
                }}),
    [](const auto& info) { return info.param.name; });

TEST_P(BaselineTest, WriteReadRoundTrip) {
  int fd = fs_->Open("/f", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  auto data = Pattern(3 * kBlockSize + 500, 1);
  ASSERT_EQ(fs_->Pwrite(fd, data.data(), data.size(), 0),
            static_cast<ssize_t>(data.size()));
  std::vector<uint8_t> back(data.size());
  ASSERT_EQ(fs_->Pread(fd, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(back, data);
  EXPECT_EQ(fs_->Fsync(fd), 0);
  EXPECT_EQ(fs_->Close(fd), 0);
}

TEST_P(BaselineTest, OverwriteVisibleImmediately) {
  int fd = fs_->Open("/ow", vfs::kRdWr | vfs::kCreate);
  auto a = Pattern(2 * kBlockSize, 2);
  fs_->Pwrite(fd, a.data(), a.size(), 0);
  auto b = Pattern(kBlockSize, 3);
  fs_->Pwrite(fd, b.data(), b.size(), kBlockSize / 2);  // Unaligned overwrite.
  std::vector<uint8_t> back(kBlockSize);
  fs_->Pread(fd, back.data(), back.size(), kBlockSize / 2);
  EXPECT_EQ(back, b);
  // Bytes before the overwrite untouched.
  std::vector<uint8_t> head(kBlockSize / 2);
  fs_->Pread(fd, head.data(), head.size(), 0);
  EXPECT_EQ(0, std::memcmp(head.data(), a.data(), head.size()));
  fs_->Close(fd);
}

TEST_P(BaselineTest, NamespaceOperations) {
  ASSERT_EQ(fs_->Mkdir("/d"), 0);
  int fd = fs_->Open("/d/f", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  fs_->Write(fd, "abc", 3);
  fs_->Close(fd);
  ASSERT_EQ(fs_->Rename("/d/f", "/d/g"), 0);
  vfs::StatBuf st;
  EXPECT_EQ(fs_->Stat("/d/f", &st), -ENOENT);
  ASSERT_EQ(fs_->Stat("/d/g", &st), 0);
  EXPECT_EQ(st.size, 3u);
  EXPECT_EQ(fs_->Unlink("/d/g"), 0);
  EXPECT_EQ(fs_->Rmdir("/d"), 0);
}

TEST_P(BaselineTest, CursorAndAppendFlag) {
  int fd = fs_->Open("/cur", vfs::kRdWr | vfs::kCreate);
  fs_->Write(fd, "12345", 5);
  int fd2 = fs_->Open("/cur", vfs::kRdWr | vfs::kAppend);
  fs_->Write(fd2, "678", 3);
  vfs::StatBuf st;
  fs_->Fstat(fd, &st);
  EXPECT_EQ(st.size, 8u);
  fs_->Lseek(fd, 0, vfs::Whence::kSet);
  char buf[9] = {};
  fs_->Read(fd, buf, 8);
  EXPECT_STREQ(buf, "12345678");
  fs_->Close(fd);
  fs_->Close(fd2);
}

TEST_P(BaselineTest, TruncateAndSparse) {
  int fd = fs_->Open("/t", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(4 * kBlockSize, 4);
  fs_->Pwrite(fd, data.data(), data.size(), 0);
  ASSERT_EQ(fs_->Ftruncate(fd, kBlockSize), 0);
  vfs::StatBuf st;
  fs_->Fstat(fd, &st);
  EXPECT_EQ(st.size, kBlockSize);
  fs_->Close(fd);
}

// --- Design-specific behaviours -------------------------------------------------------------

TEST(NovaBehaviour, StrictCowMovesBlocks) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 256 * kMiB);
  novasim::Nova nova(&dev, /*strict=*/true);
  int fd = nova.Open("/f", vfs::kRdWr | vfs::kCreate);
  std::vector<uint8_t> a(kBlockSize, 0xA0), b(kBlockSize, 0xB0);
  nova.Pwrite(fd, a.data(), a.size(), 0);
  uint64_t writes_before = ctx.stats.data_bytes();
  nova.Pwrite(fd, b.data(), 100, 50);  // Tiny strict overwrite...
  // ...still writes a whole fresh block (COW read-modify-write).
  EXPECT_EQ(ctx.stats.data_bytes() - writes_before, kBlockSize);
  std::vector<uint8_t> back(kBlockSize);
  nova.Pread(fd, back.data(), kBlockSize, 0);
  EXPECT_EQ(back[49], 0xA0);
  EXPECT_EQ(back[50], 0xB0);
  EXPECT_EQ(back[150], 0xA0);
  nova.Close(fd);
}

TEST(NovaBehaviour, RelaxedWritesInPlace) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 256 * kMiB);
  novasim::Nova nova(&dev, /*strict=*/false);
  int fd = nova.Open("/f", vfs::kRdWr | vfs::kCreate);
  std::vector<uint8_t> a(kBlockSize, 0xA0);
  nova.Pwrite(fd, a.data(), a.size(), 0);
  uint64_t writes_before = ctx.stats.data_bytes();
  nova.Pwrite(fd, a.data(), 100, 50);
  EXPECT_EQ(ctx.stats.data_bytes() - writes_before, 100u);  // No COW amplification.
  nova.Close(fd);
}

TEST(NovaBehaviour, LoggingCostsTwoLinesTwoFences) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 256 * kMiB);
  novasim::Nova nova(&dev, true);
  int fd = nova.Open("/f", vfs::kRdWr | vfs::kCreate);
  std::vector<uint8_t> block(kBlockSize, 1);
  nova.Pwrite(fd, block.data(), kBlockSize, 0);  // Warm.
  uint64_t fences0 = ctx.stats.fences();
  uint64_t log0 = ctx.stats.log_bytes();
  nova.Pwrite(fd, block.data(), kBlockSize, 0);
  EXPECT_EQ(ctx.stats.fences() - fences0, 2u);       // §3.3's comparison point.
  EXPECT_EQ(ctx.stats.log_bytes() - log0, 64u + 8u); // Entry line + tail.
  nova.Close(fd);
}

TEST(StrataBehaviour, ReadsSeePrivateLogBeforeDigest) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 256 * kMiB);
  stratasim::Strata strata(&dev);
  int fd = strata.Open("/f", vfs::kRdWr | vfs::kCreate);
  std::vector<uint8_t> a(kBlockSize, 0xC1);
  strata.Pwrite(fd, a.data(), a.size(), 0);
  EXPECT_EQ(strata.Digests(), 0u);  // Still in the private log.
  std::vector<uint8_t> back(kBlockSize);
  ASSERT_EQ(strata.Pread(fd, back.data(), back.size(), 0),
            static_cast<ssize_t>(kBlockSize));
  EXPECT_EQ(back, a);
  strata.DigestNow();
  EXPECT_EQ(strata.Digests(), 1u);
  back.assign(kBlockSize, 0);
  strata.Pread(fd, back.data(), back.size(), 0);
  EXPECT_EQ(back, a);  // Same contents from the shared area.
  strata.Close(fd);
}

TEST(StrataBehaviour, AppendsWriteDataTwice) {
  // §5.8: Strata cannot coalesce appends; digest copies every byte a second time,
  // doubling PM wear relative to user data.
  sim::Context ctx;
  pmem::Device dev(&ctx, 256 * kMiB);
  stratasim::StrataOptions so;
  so.private_log_bytes = 8 * kMiB;
  so.digest_threshold = 0.5;
  stratasim::Strata strata(&dev, so);
  int fd = strata.Open("/f", vfs::kRdWr | vfs::kCreate);
  std::vector<uint8_t> block(kBlockSize, 2);
  for (int i = 0; i < 2048; ++i) {  // 8 MB of appends: forces digestion.
    strata.Pwrite(fd, block.data(), kBlockSize, static_cast<uint64_t>(i) * kBlockSize);
  }
  strata.DigestNow();
  uint64_t user = ctx.stats.data_bytes();
  uint64_t total = ctx.stats.TotalPmWear();
  EXPECT_GT(strata.Digests(), 0u);
  EXPECT_GE(total, 2 * user - kBlockSize);  // Wear >= 2x the user bytes.
  strata.Close(fd);
}

TEST(StrataBehaviour, OverwritesCoalesceInLog) {
  // Repeated overwrites of one range before digestion keep only one pending piece:
  // that is the coalescing Strata *can* do (unlike appends).
  sim::Context ctx;
  pmem::Device dev(&ctx, 256 * kMiB);
  stratasim::Strata strata(&dev);
  int fd = strata.Open("/f", vfs::kRdWr | vfs::kCreate);
  std::vector<uint8_t> block(kBlockSize, 3);
  for (int i = 0; i < 16; ++i) {
    block[0] = static_cast<uint8_t>(i);
    strata.Pwrite(fd, block.data(), kBlockSize, 0);
  }
  uint64_t log_before_digest = ctx.stats.log_bytes();
  strata.DigestNow();
  // Digest wrote ~one block (+ fences), not 16: older versions were superseded.
  EXPECT_LE(ctx.stats.log_bytes() - log_before_digest, 2 * kBlockSize);
  std::vector<uint8_t> back(kBlockSize);
  strata.Pread(fd, back.data(), back.size(), 0);
  EXPECT_EQ(back[0], 15);
  strata.Close(fd);
}

TEST(PmfsBehaviour, MetadataJournaledWithSmallRecords) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 256 * kMiB);
  pmfssim::Pmfs pmfs(&dev);
  uint64_t journal0 = ctx.stats.journal_bytes();
  int fd = pmfs.Open("/f", vfs::kRdWr | vfs::kCreate);
  uint64_t create_journal = ctx.stats.journal_bytes() - journal0;
  EXPECT_GT(create_journal, 0u);
  EXPECT_LT(create_journal, kBlockSize);  // Fine-grained 64 B records, not 4 KB blocks.
  pmfs.Close(fd);
}

TEST(PmfsBehaviour, DataOpsAreSynchronous) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 256 * kMiB);
  pmfssim::Pmfs pmfs(&dev);
  dev.EnableCrashTracking(true);
  int fd = pmfs.Open("/f", vfs::kRdWr | vfs::kCreate);
  std::vector<uint8_t> data(kBlockSize, 0xEE);
  pmfs.Pwrite(fd, data.data(), data.size(), 0);  // No fsync.
  dev.Crash();
  pmfs.Recover();
  std::vector<uint8_t> back(kBlockSize);
  ASSERT_EQ(pmfs.Pread(fd, back.data(), back.size(), 0),
            static_cast<ssize_t>(kBlockSize));
  EXPECT_EQ(back, data);  // Synchronous: survived without fsync.
}

}  // namespace
