// Tests for the src/analysis correctness-tooling layer: PersistChecker rule
// semantics driven directly against a pmem::Device, LockWitness order-graph
// semantics, the mutation self-tests (each checker rule demonstrated against a
// deliberately broken protocol), and the zero-cost guarantee (bit-identical
// virtual timelines with the checkers installed).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/annotations.h"
#include "src/analysis/lock_witness.h"
#include "src/analysis/persist_checker.h"
#include "src/common/bytes.h"
#include "src/core/oplog.h"
#include "src/core/split_fs.h"
#include "src/ext4/journal.h"
#include "src/pmem/device.h"
#include "src/vfs/range_lock.h"

namespace {

using analysis::LockWitness;
using analysis::PersistChecker;
using common::kBlockSize;
using common::kCacheLineSize;
using common::kMiB;
using ext4sim::Journal;
using ext4sim::MetaBlockId;
using ext4sim::MetaKind;
using splitfs::LogEntry;
using splitfs::LogOp;
using splitfs::Mode;
using splitfs::OpLog;
using splitfs::Options;
using splitfs::SplitFs;

// --- PersistChecker rule semantics (device-level) -------------------------------------

class PersistCheckerTest : public ::testing::Test {
 protected:
  PersistCheckerTest()
      : dev_(&ctx_, 4 * kMiB), checker_(PersistChecker::Mode::kCollect) {
    dev_.SetPersistChecker(&checker_);
  }

  void Store(uint64_t off, uint8_t fill = 0xAB) {
    std::vector<uint8_t> buf(kCacheLineSize, fill);
    dev_.StoreTemporal(off, buf.data(), buf.size(), sim::PmWriteKind::kMetadata);
  }
  void StoreNt(uint64_t off, uint8_t fill = 0xCD) {
    std::vector<uint8_t> buf(kCacheLineSize, fill);
    dev_.StoreNt(off, buf.data(), buf.size(), sim::PmWriteKind::kUserData);
  }

  sim::Context ctx_;
  pmem::Device dev_;
  PersistChecker checker_;
};

TEST_F(PersistCheckerTest, TemporalStoreVolatileUntilClwbAndFence) {
  Store(0);
  checker_.RequireDurable(0, kCacheLineSize, "test.site");
  ASSERT_EQ(checker_.violation_count(), 1u);
  EXPECT_EQ(checker_.violations()[0].rule, "acked_but_volatile");
  EXPECT_EQ(checker_.violations()[0].site, "test.site");

  // Flushed but not fenced: still volatile.
  dev_.Clwb(0, kCacheLineSize);
  checker_.RequireDurable(0, kCacheLineSize, "test.site");
  EXPECT_EQ(checker_.violation_count(), 2u);

  dev_.Fence();
  checker_.RequireDurable(0, kCacheLineSize, "test.site");
  EXPECT_EQ(checker_.violation_count(), 2u);  // Durable now: no new violation.
}

TEST_F(PersistCheckerTest, NtStorePersistsAtFence) {
  StoreNt(kCacheLineSize);
  checker_.RequireDurable(kCacheLineSize, kCacheLineSize, "test.nt");
  EXPECT_EQ(checker_.violation_count(), 1u);
  dev_.Fence();
  checker_.RequireDurable(kCacheLineSize, kCacheLineSize, "test.nt");
  EXPECT_EQ(checker_.violation_count(), 1u);
}

TEST_F(PersistCheckerTest, NeverStoredRangeIsDurable) {
  checker_.RequireDurable(1024, kCacheLineSize, "test.untouched");
  EXPECT_EQ(checker_.violation_count(), 0u);
}

TEST_F(PersistCheckerTest, DurabilityPointChecksAndClearsDeps) {
  constexpr uint64_t kIno = 42;
  StoreNt(0);
  checker_.AddDep(kIno, 0, kCacheLineSize);
  checker_.DurabilityPoint(kIno, "test.fsync");
  ASSERT_EQ(checker_.violation_count(), 1u);
  EXPECT_EQ(checker_.violations()[0].rule, "acked_but_volatile");
  // The point cleared the dep set even though it fired: the next point only
  // answers for writes registered after it.
  checker_.DurabilityPoint(kIno, "test.fsync");
  EXPECT_EQ(checker_.violation_count(), 1u);
}

TEST_F(PersistCheckerTest, DroppedDepsAreNotChecked) {
  constexpr uint64_t kIno = 7;
  StoreNt(0);
  StoreNt(kCacheLineSize);
  checker_.AddDep(kIno, 0, kCacheLineSize);
  checker_.AddDep(kIno, kCacheLineSize, kCacheLineSize);
  // First range leaves the contract (published / truncated away) unfenced...
  checker_.DropDeps(kIno, 0, kCacheLineSize);
  dev_.Fence();
  // ...and the point only answers for the second, now-durable range.
  checker_.DurabilityPoint(kIno, "test.fsync");
  EXPECT_EQ(checker_.violation_count(), 0u);

  StoreNt(2 * kCacheLineSize);
  checker_.AddDep(kIno, 2 * kCacheLineSize, kCacheLineSize);
  checker_.DropAllDeps(kIno);
  checker_.DurabilityPoint(kIno, "test.fsync");
  EXPECT_EQ(checker_.violation_count(), 0u);
}

TEST_F(PersistCheckerTest, LaxCoverAllowsSharedFence) {
  // Op-log §3.3 design: entry and payload persist at one fence.
  StoreNt(0);                                   // Payload.
  checker_.CoverPayload(0, kCacheLineSize);
  StoreNt(kCacheLineSize);                      // Record.
  checker_.SealCover(kCacheLineSize, kCacheLineSize, /*strict=*/false, "test.lax");
  dev_.Fence();
  EXPECT_EQ(checker_.violation_count(), 0u);
}

TEST_F(PersistCheckerTest, StrictCoverRequiresEarlierFence) {
  // jbd2 commit-record discipline: payload must persist at an earlier fence.
  StoreNt(0);
  checker_.CoverPayload(0, kCacheLineSize);
  StoreNt(kCacheLineSize);
  checker_.SealCover(kCacheLineSize, kCacheLineSize, /*strict=*/true, "test.strict");
  dev_.Fence();  // Both persist here: strict violation.
  ASSERT_EQ(checker_.violation_count(), 1u);
  EXPECT_EQ(checker_.violations()[0].rule, "publish_before_persist");
  EXPECT_EQ(checker_.violations()[0].site, "test.strict");
}

TEST_F(PersistCheckerTest, StrictCoverPassesWithInterveningFence) {
  StoreNt(0);
  checker_.CoverPayload(0, kCacheLineSize);
  dev_.Fence();  // Payload durable first.
  StoreNt(kCacheLineSize);
  checker_.SealCover(kCacheLineSize, kCacheLineSize, /*strict=*/true, "test.strict");
  dev_.Fence();
  EXPECT_EQ(checker_.violation_count(), 0u);
}

TEST_F(PersistCheckerTest, RecordPersistingBeforePayloadFailsEvenLax) {
  Store(0);  // Payload: temporal, never flushed — volatile across any fence.
  checker_.CoverPayload(0, kCacheLineSize);
  StoreNt(kCacheLineSize);  // Record: persists at the next fence.
  checker_.SealCover(kCacheLineSize, kCacheLineSize, /*strict=*/false,
                     "test.record_first");
  dev_.Fence();  // Record durable, payload still volatile: the classic hazard.
  ASSERT_EQ(checker_.violation_count(), 1u);
  EXPECT_EQ(checker_.violations()[0].rule, "publish_before_persist");
  EXPECT_EQ(checker_.violations()[0].site, "test.record_first");
}

TEST_F(PersistCheckerTest, AbandonCoverDropsOpenCover) {
  StoreNt(0);
  checker_.CoverPayload(0, kCacheLineSize);
  checker_.AbandonCover();  // Back-out path: the record is never stored.
  StoreNt(kCacheLineSize);
  checker_.SealCover(kCacheLineSize, kCacheLineSize, /*strict=*/true, "test.fresh");
  dev_.Fence();
  // The abandoned payload must not have leaked into the fresh cover: the fresh
  // record covers nothing, so even strict passes.
  EXPECT_EQ(checker_.violation_count(), 0u);
}

TEST_F(PersistCheckerTest, CrashResetsShadowState) {
  StoreNt(0);
  dev_.EnableCrashTracking(true);
  StoreNt(kCacheLineSize);
  dev_.CrashWith([](uint64_t, uint64_t) { return uint8_t{0}; });  // Drop all.
  // Post-crash the shadow resets with the DRAM it models: no stale pending.
  checker_.RequireDurable(0, 2 * kCacheLineSize, "test.postcrash");
  EXPECT_EQ(checker_.violation_count(), 0u);
}

TEST_F(PersistCheckerTest, LintCountsRedundantFlushesAndEmptyFencesPerSite) {
  EXPECT_EQ(checker_.redundant_flushes(), 0u);
  EXPECT_EQ(checker_.empty_fences(), 0u);
  {
    analysis::ScopedLintSite lint("test.hot_path");
    Store(0);
    dev_.Clwb(0, kCacheLineSize);
    dev_.Clwb(0, kCacheLineSize);  // Nothing left to flush: redundant.
    dev_.Fence();
    dev_.Fence();  // Nothing armed: empty.
  }
  EXPECT_EQ(checker_.redundant_flushes(), 1u);
  EXPECT_EQ(checker_.empty_fences(), 1u);
  auto rf = checker_.redundant_flushes_by_site();
  auto ef = checker_.empty_fences_by_site();
  EXPECT_EQ(rf["test.hot_path"], 1u);
  EXPECT_EQ(ef["test.hot_path"], 1u);
  // Outside any scope the counts attribute to "unannotated".
  dev_.Fence();
  EXPECT_EQ(checker_.empty_fences_by_site()["unannotated"], 1u);
}

TEST(PersistCheckerMetricsTest, LintGaugesExportThroughObsRegistry) {
  sim::Context ctx;
  pmem::Device dev(&ctx, kMiB);
  {
    PersistChecker checker(PersistChecker::Mode::kCollect, &ctx.obs.metrics);
    dev.SetPersistChecker(&checker);
    analysis::ScopedLintSite lint("test.gauged");
    dev.Fence();  // Empty: nothing armed.
    bool total_seen = false, site_seen = false;
    for (const auto& s : ctx.obs.metrics.Snapshot()) {
      if (s.name == "analysis.empty_fence_total") {
        total_seen = true;
        EXPECT_EQ(s.value, 1u);
      }
      if (s.name == "analysis.empty_fence.test.gauged") {
        site_seen = true;
        EXPECT_EQ(s.value, 1u);
      }
    }
    EXPECT_TRUE(total_seen);
    EXPECT_TRUE(site_seen);
    dev.SetPersistChecker(nullptr);
  }
  // The destructor deregistered its gauges: a later snapshot cannot call into
  // the destroyed checker.
  for (const auto& s : ctx.obs.metrics.Snapshot()) {
    EXPECT_NE(s.name.rfind("analysis.", 0), 0u) << s.name;
  }
}

// --- LockWitness order-graph semantics ------------------------------------------------

int SiteA() { static const int s = analysis::LockSite("test.A"); return s; }
int SiteB() { static const int s = analysis::LockSite("test.B"); return s; }
int SiteC() { static const int s = analysis::LockSite("test.C"); return s; }

TEST(LockWitnessTest, ConsistentOrderAccumulatesEdgesWithoutViolations) {
  LockWitness w(LockWitness::Mode::kCollect);
  w.Acquire(SiteA(), 0, LockWitness::Kind::kBlocking);
  w.Acquire(SiteB(), 0, LockWitness::Kind::kBlocking);
  w.Release(SiteB(), 0);
  w.Release(SiteA(), 0);
  EXPECT_EQ(w.violation_count(), 0u);
  EXPECT_EQ(w.edge_count(), 1u);
  std::vector<std::string> edges = w.EdgeList();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], "test.A -> test.B");
}

TEST(LockWitnessTest, InvertedOrderReportsCycleWithoutDeadlock) {
  LockWitness w(LockWitness::Mode::kCollect);
  w.Acquire(SiteA(), 0, LockWitness::Kind::kBlocking);
  w.Acquire(SiteB(), 0, LockWitness::Kind::kBlocking);
  w.Release(SiteB(), 0);
  w.Release(SiteA(), 0);
  // Same thread, opposite order, fully serialized — no deadlock ever fires,
  // the witness still reports the cycle the moment the closing edge lands.
  w.Acquire(SiteB(), 0, LockWitness::Kind::kBlocking);
  w.Acquire(SiteA(), 0, LockWitness::Kind::kBlocking);
  w.Release(SiteA(), 0);
  w.Release(SiteB(), 0);
  ASSERT_EQ(w.violation_count(), 1u);
  EXPECT_EQ(w.violations()[0].kind, "cycle");
}

TEST(LockWitnessTest, TransitiveCycleDetected) {
  LockWitness w(LockWitness::Mode::kCollect);
  auto pair = [&w](int a, int b) {
    w.Acquire(a, 0, LockWitness::Kind::kBlocking);
    w.Acquire(b, 0, LockWitness::Kind::kBlocking);
    w.Release(b, 0);
    w.Release(a, 0);
  };
  pair(SiteA(), SiteB());
  pair(SiteB(), SiteC());
  EXPECT_EQ(w.violation_count(), 0u);
  pair(SiteC(), SiteA());  // Closes A -> B -> C -> A.
  ASSERT_EQ(w.violation_count(), 1u);
  EXPECT_EQ(w.violations()[0].kind, "cycle");
}

TEST(LockWitnessTest, TryAcquisitionsAddNoEdgesButStayHeld) {
  LockWitness w(LockWitness::Mode::kCollect);
  // Checkpoint-sweep shape: checkpoint mutex held (blocking), per-file range
  // locks only ever *tried* under it.
  w.Acquire(SiteA(), 0, LockWitness::Kind::kBlocking);
  w.Acquire(SiteB(), 0, LockWitness::Kind::kTry);
  EXPECT_EQ(w.edge_count(), 0u);  // Try adds no A -> B edge.
  // A blocking acquisition while the try-lock is held still records edges out
  // of it: the try-held lock is real for *later* deadlock halves.
  w.Acquire(SiteC(), 0, LockWitness::Kind::kBlocking);
  EXPECT_EQ(w.edge_count(), 2u);  // A -> C and B -> C.
  w.Release(SiteC(), 0);
  w.Release(SiteB(), 0);
  w.Release(SiteA(), 0);
  // The writer-side order B -> A therefore cannot form a cycle with the sweep.
  w.Acquire(SiteB(), 0, LockWitness::Kind::kBlocking);
  w.Acquire(SiteA(), 0, LockWitness::Kind::kBlocking);
  w.Release(SiteA(), 0);
  w.Release(SiteB(), 0);
  EXPECT_EQ(w.violation_count(), 0u);
}

TEST(LockWitnessTest, SameSiteAscendingKeysPassDescendingFail) {
  LockWitness w(LockWitness::Mode::kCollect);
  // Ascending-ino discipline holds...
  w.Acquire(SiteA(), 3, LockWitness::Kind::kBlocking);
  w.Acquire(SiteA(), 5, LockWitness::Kind::kBlocking);
  w.Release(SiteA(), 5);
  w.Release(SiteA(), 3);
  EXPECT_EQ(w.violation_count(), 0u);
  // ...and its inversion is an order violation even though nothing deadlocked.
  w.Acquire(SiteA(), 5, LockWitness::Kind::kBlocking);
  w.Acquire(SiteA(), 3, LockWitness::Kind::kBlocking);
  w.Release(SiteA(), 3);
  w.Release(SiteA(), 5);
  ASSERT_EQ(w.violation_count(), 1u);
  EXPECT_EQ(w.violations()[0].kind, "order");
}

TEST(LockWitnessTest, KeyZeroOptsOutOfSameSiteOrdering) {
  LockWitness w(LockWitness::Mode::kCollect);
  w.Acquire(SiteB(), 0, LockWitness::Kind::kBlocking);
  w.Acquire(SiteB(), 0, LockWitness::Kind::kBlocking);
  w.Release(SiteB(), 0);
  w.Release(SiteB(), 0);
  EXPECT_EQ(w.violation_count(), 0u);
}

// --- Mutation self-tests: every checker rule demonstrated against a broken protocol --

class OpLogMutationTest : public ::testing::Test {
 protected:
  OpLogMutationTest()
      : dev_(&ctx_, 128 * kMiB),
        checker_(PersistChecker::Mode::kCollect),
        kfs_(&dev_),
        log_(&kfs_, "/oplog", 64 * 1024) {
    dev_.SetPersistChecker(&checker_);
  }

  LogEntry MakeEntry(uint64_t n) {
    LogEntry e;
    e.op = LogOp::kAppend;
    e.target_ino = 100 + n;
    e.file_off = n * 4096;
    e.staging_ino = 7;
    e.staging_off = n * 4096;
    e.len = 4096;
    return e;
  }

  sim::Context ctx_;
  pmem::Device dev_;
  PersistChecker checker_;
  ext4sim::Ext4Dax kfs_;
  OpLog log_;
};

TEST_F(OpLogMutationTest, IntactAppendProtocolIsClean) {
  for (uint64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(log_.Append(MakeEntry(i)));
  }
  EXPECT_EQ(checker_.violation_count(), 0u);
}

TEST_F(OpLogMutationTest, RemovedFenceFiresAckedButVolatile) {
  // Mutation for rule (a): drop THE single fence after the entry store. The
  // entry is acked (Append returns true) while its line is still volatile.
  log_.set_skip_fence_for_test(true);
  ASSERT_TRUE(log_.Append(MakeEntry(1)));
  ASSERT_GE(checker_.violation_count(), 1u);
  EXPECT_EQ(checker_.violations()[0].rule, "acked_but_volatile");
  EXPECT_EQ(checker_.violations()[0].site, "oplog.entry");
}

class JournalMutationTest : public ::testing::Test {
 protected:
  JournalMutationTest()
      : dev_(&ctx_, 4 * kMiB),
        checker_(PersistChecker::Mode::kCollect),
        journal_(&dev_, /*journal_start_block=*/1, /*journal_blocks=*/64) {
    dev_.SetPersistChecker(&checker_);
  }

  void DirtyOneBlock() {
    Journal::Handle h(&journal_);
    journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, 1), [] {});
  }

  sim::Context ctx_;
  pmem::Device dev_;
  PersistChecker checker_;
  Journal journal_;
};

TEST_F(JournalMutationTest, CommitRecordStrictlyAfterPayloadIsClean) {
  DirtyOneBlock();
  journal_.CommitRunning(/*fsync_barrier=*/false);
  EXPECT_EQ(journal_.commits(), 1u);
  EXPECT_EQ(checker_.violation_count(), 0u);
  // The fixed writeout has no empty fence: both fences persist something.
  EXPECT_EQ(checker_.empty_fences_by_site()["journal.commit"], 0u);
}

TEST_F(JournalMutationTest, LegacyCommitOrderFiresPublishBeforePersist) {
  // Mutation for rule (b): revert to the pre-fix writeout, where the commit
  // record lands in the same writeout burst as the payload and both persist at
  // one fence (the trailing fence is then empty).
  journal_.set_legacy_commit_order_for_test(true);
  DirtyOneBlock();
  journal_.CommitRunning(/*fsync_barrier=*/false);
  ASSERT_GE(checker_.violation_count(), 1u);
  EXPECT_EQ(checker_.violations()[0].rule, "publish_before_persist");
  EXPECT_EQ(checker_.violations()[0].site, "journal.commit");
  // The lint sees the legacy order's trailing empty fence, attributed to site.
  EXPECT_GE(checker_.empty_fences_by_site()["journal.commit"], 1u);
}

TEST(RangeLockWitnessTest, InvertedInodePairFiresOrderViolation) {
  // Mutation for the witness: K-Split's documented ascending-ino discipline on
  // "ext4.inode_range" locks, inverted. Both locks share the interned site, so
  // the same-site order-key check applies.
  LockWitness w(LockWitness::Mode::kCollect);
  LockWitness::SetGlobalForTest(&w);
  {
    vfs::RangeLock lo(nullptr, nullptr, "ext4.inode_range");
    vfs::RangeLock hi(nullptr, nullptr, "ext4.inode_range");
    lo.SetWitnessOrderKey(3);
    hi.SetWitnessOrderKey(5);
    // Correct discipline first: ascending ino, no violation.
    lo.LockExclusive(0, vfs::RangeLock::kWholeFile);
    hi.LockExclusive(0, vfs::RangeLock::kWholeFile);
    hi.UnlockExclusive(0, vfs::RangeLock::kWholeFile);
    lo.UnlockExclusive(0, vfs::RangeLock::kWholeFile);
    EXPECT_EQ(w.violation_count(), 0u);
    // Inverted pair: the witness reports it even though nothing deadlocks.
    hi.LockExclusive(0, vfs::RangeLock::kWholeFile);
    lo.LockExclusive(0, vfs::RangeLock::kWholeFile);
    lo.UnlockExclusive(0, vfs::RangeLock::kWholeFile);
    hi.UnlockExclusive(0, vfs::RangeLock::kWholeFile);
  }
  LockWitness::SetGlobalForTest(nullptr);
  ASSERT_GE(w.violation_count(), 1u);
  EXPECT_EQ(w.violations()[0].kind, "order");
}

// --- Integration: full U-Split workload under both checkers ---------------------------

Options SmallOptions(Mode mode) {
  Options o;
  o.mode = mode;
  o.num_staging_files = 2;
  o.staging_file_bytes = 4 * kMiB;
  o.oplog_bytes = 1 * kMiB;
  return o;
}

// Runs a small mixed workload; returns the final virtual time.
uint64_t RunWorkload(Mode mode, PersistChecker* checker, LockWitness* witness) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 256 * kMiB);
  if (checker != nullptr) {
    dev.SetPersistChecker(checker);
  }
  LockWitness::SetGlobalForTest(witness);
  {
    ext4sim::Ext4Dax kfs(&dev);
    SplitFs fs(&kfs, SmallOptions(mode));
    std::vector<uint8_t> buf(3 * kBlockSize + 17, 0x5A);
    int fd = fs.Open("/w", vfs::kRdWr | vfs::kCreate);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(fs.Pwrite(fd, buf.data(), buf.size(), 0),
              static_cast<ssize_t>(buf.size()));
    EXPECT_EQ(fs.Fsync(fd), 0);
    EXPECT_EQ(fs.Pwrite(fd, buf.data(), kBlockSize, kBlockSize),  // Overwrite.
              static_cast<ssize_t>(kBlockSize));
    EXPECT_EQ(fs.Pwrite(fd, buf.data(), buf.size(), buf.size()),  // Append more.
              static_cast<ssize_t>(buf.size()));
    EXPECT_EQ(fs.Close(fd), 0);
    EXPECT_EQ(fs.Rename("/w", "/w2"), 0);
    EXPECT_EQ(fs.Unlink("/w2"), 0);
  }
  LockWitness::SetGlobalForTest(nullptr);
  return ctx.clock.Now();
}

class AnalysisIntegrationTest : public ::testing::TestWithParam<Mode> {};

INSTANTIATE_TEST_SUITE_P(AllModes, AnalysisIntegrationTest,
                         ::testing::Values(Mode::kPosix, Mode::kSync, Mode::kStrict),
                         [](const auto& info) { return ModeName(info.param); });

TEST_P(AnalysisIntegrationTest, WorkloadIsCleanUnderBothCheckers) {
  PersistChecker checker(PersistChecker::Mode::kCollect);
  LockWitness witness(LockWitness::Mode::kCollect);
  RunWorkload(GetParam(), &checker, &witness);
  EXPECT_EQ(checker.violation_count(), 0u) << checker.violations()[0].detail;
  EXPECT_EQ(witness.violation_count(), 0u) << witness.violations()[0].detail;
  // Coverage: the annotated hierarchy really showed up in the order graph.
  EXPECT_GT(witness.edge_count(), 0u);
}

TEST_P(AnalysisIntegrationTest, CheckersNeverTouchTheClock) {
  // The zero-cost contract: enabling both checkers must not move one virtual-
  // time charge. Same workload, with and without, bit-identical final clocks.
  uint64_t bare = RunWorkload(GetParam(), nullptr, nullptr);
  PersistChecker checker(PersistChecker::Mode::kCollect);
  LockWitness witness(LockWitness::Mode::kCollect);
  uint64_t checked = RunWorkload(GetParam(), &checker, &witness);
  EXPECT_EQ(bare, checked);
}

TEST(AnalysisGatingTest, CheckersAreOffByDefault) {
  if (std::getenv("SPLITFS_ANALYSIS") != nullptr) {
    GTEST_SKIP() << "Suite running with SPLITFS_ANALYSIS set.";
  }
  sim::Context ctx;
  pmem::Device dev(&ctx, kMiB);
  EXPECT_EQ(dev.persist_checker(), nullptr);
  EXPECT_EQ(LockWitness::Global(), nullptr);
}

}  // namespace
